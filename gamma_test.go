package gamma_test

import (
	"testing"

	"gamma"
)

// TestPublicAPIQuickstart exercises the facade end-to-end: machine
// construction, loading, and all four query classes.
func TestPublicAPIQuickstart(t *testing.T) {
	m := gamma.New(4, 4, nil)
	u1 := gamma.Unique1
	r := m.Load(gamma.LoadSpec{
		Name: "tenktup", Strategy: gamma.Hashed, PartAttr: gamma.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []gamma.Attr{gamma.Unique2},
	}, gamma.Wisconsin(2000, 1))

	sel := m.RunSelect(gamma.SelectQuery{
		Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique2, 0, 19)},
	})
	if sel.Tuples != 20 || sel.Elapsed <= 0 {
		t.Fatalf("select: %d tuples, %v", sel.Tuples, sel.Elapsed)
	}

	b := m.Load(gamma.LoadSpec{Name: "bprime", Strategy: gamma.Hashed, PartAttr: gamma.Unique1},
		gamma.Wisconsin(200, 7))
	join := m.RunJoin(gamma.JoinQuery{
		Build: gamma.ScanSpec{Rel: b, Pred: gamma.All()}, BuildAttr: gamma.Unique2,
		Probe: gamma.ScanSpec{Rel: r, Pred: gamma.All()}, ProbeAttr: gamma.Unique2,
		Mode: gamma.Remote,
	})
	if join.Tuples != 200 {
		t.Fatalf("join: %d tuples", join.Tuples)
	}

	agg := m.RunAgg(gamma.AggQuery{
		Scan: gamma.ScanSpec{Rel: r, Pred: gamma.All()},
		Fn:   gamma.Max, Attr: gamma.Unique1, Mode: gamma.Remote,
	})
	if agg.Groups[0] != 1999 {
		t.Fatalf("agg: max = %d", agg.Groups[0])
	}

	upd := m.RunUpdate(gamma.UpdateQuery{
		Rel: r, Kind: gamma.ModifyNonIndexed, Key: 7, Attr: gamma.Ten, NewValue: 3,
	})
	if upd.Tuples != 1 {
		t.Fatalf("update: %d", upd.Tuples)
	}
}

// TestPublicAPITeradata exercises the baseline machine through the facade.
func TestPublicAPITeradata(t *testing.T) {
	tm := gamma.NewTeradata(nil)
	tr := tm.Load("A", gamma.Unique1, []gamma.Attr{gamma.Unique2}, gamma.Wisconsin(1000, 1))
	if tr.N != 1000 {
		t.Fatalf("loaded %d", tr.N)
	}
}

// TestDeterministicResponseTimes: two identical machines give bit-identical
// simulated times — the property that makes every experiment reproducible.
func TestDeterministicResponseTimes(t *testing.T) {
	run := func() (int, float64) {
		m := gamma.New(4, 4, nil)
		r := m.Load(gamma.LoadSpec{Name: "A", Strategy: gamma.Hashed, PartAttr: gamma.Unique1},
			gamma.Wisconsin(1500, 3))
		res := m.RunSelect(gamma.SelectQuery{
			Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique2, 5, 400)},
		})
		return res.Tuples, res.Elapsed.Seconds()
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d, %v) vs (%d, %v)", n1, t1, n2, t2)
	}
}

// TestConfigOverride: a faster CPU must shorten CPU-bound queries.
func TestConfigOverride(t *testing.T) {
	run := func(mips float64) float64 {
		cfg := gamma.DefaultConfig()
		cfg.CPU.MIPS = mips
		cfg.PageBytes = 32 * 1024 // CPU-bound regime (Figures 5-6)
		m := gamma.New(4, 0, &cfg)
		r := m.Load(gamma.LoadSpec{Name: "A", Strategy: gamma.Hashed, PartAttr: gamma.Unique1},
			gamma.Wisconsin(5000, 1))
		return m.RunSelect(gamma.SelectQuery{
			Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique2, -2, -1), Path: gamma.PathHeap},
		}).Elapsed.Seconds()
	}
	slow, fast := run(0.6), run(6.0)
	if fast >= slow {
		t.Errorf("10x CPU did not help a CPU-bound scan: %v vs %v", fast, slow)
	}
}
