// Package gamma is a from-scratch reproduction of the Gamma database machine
// (DeWitt, Ghandeharizadeh, Schneider: "A Performance Analysis of the Gamma
// Database Machine", SIGMOD 1988): a shared-nothing parallel relational
// engine — hash-declustered relations, dataflow operators connected by split
// tables, distributed hash joins with overflow resolution — executing on a
// calibrated discrete-event simulation of the 1988 hardware, plus a
// simulator of the Teradata DBC/1012 baseline.
//
// Queries run for real (real tuples, real B+-trees, real hash tables); the
// clock is simulated, so a Result's Elapsed field is directly comparable to
// the paper's response times.
//
// Quick start:
//
//	m := gamma.New(8, 8, nil) // 8 disk + 8 diskless processors
//	r := m.Load(gamma.LoadSpec{
//		Name:     "tenktup",
//		Strategy: gamma.Hashed,
//		PartAttr: gamma.Unique1,
//	}, gamma.Wisconsin(10000, 1))
//	res := m.RunSelect(gamma.SelectQuery{
//		Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique2, 0, 99)},
//	})
//	fmt.Printf("%d tuples in %v\n", res.Tuples, res.Elapsed)
package gamma

import (
	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/teradata"
	"gamma/internal/trace"
	"gamma/internal/wisconsin"
)

// Core engine types.
type (
	// Machine is a simulated Gamma configuration.
	Machine = core.Machine
	// Relation is a horizontally declustered relation.
	Relation = core.Relation
	// LoadSpec describes how to create and index a relation.
	LoadSpec = core.LoadSpec
	// ScanSpec is one access-path-resolved relation scan.
	ScanSpec = core.ScanSpec
	// SelectQuery, JoinQuery, AggQuery, and UpdateQuery are the four
	// query classes of the paper's evaluation.
	SelectQuery = core.SelectQuery
	JoinQuery   = core.JoinQuery
	AggQuery    = core.AggQuery
	UpdateQuery = core.UpdateQuery
	// SortQuery retrieves a relation in globally sorted order via the
	// WiSS sort utility at each site plus a merge operator.
	SortQuery = core.SortQuery
	// ConcurrentQuery is one member of a multiuser workload for
	// Machine.RunConcurrent.
	ConcurrentQuery = core.ConcurrentQuery
	// Result reports a query's outcome and simulated response time.
	Result = core.Result
	// AggResult reports an aggregate query's groups.
	AggResult = core.AggResult
	// Config is the calibrated machine cost model.
	Config = config.Params
	// Tuple is one Wisconsin-benchmark record.
	Tuple = rel.Tuple
	// Pred is a compiled range predicate.
	Pred = rel.Pred
	// Attr names one of the thirteen integer attributes.
	Attr = rel.Attr
	// Teradata is the DBC/1012 baseline machine.
	Teradata = teradata.Machine
	// TraceCollector accumulates the structured event stream of a traced
	// machine (Machine.EnableTrace) into a queryable timeline.
	TraceCollector = trace.Collector
	// TraceEvent is one typed record of the stream.
	TraceEvent = trace.Event
	// Verdict is the bottleneck classifier's output: which resource class
	// (disk, CPU, NIC, ring) bound a window of the simulation.
	Verdict = trace.Verdict
)

// Declustering strategies (§2).
const (
	RoundRobin   = core.RoundRobin
	Hashed       = core.Hashed
	RangeUser    = core.RangeUser
	RangeUniform = core.RangeUniform
)

// Join operator placement (§6).
const (
	Local    = core.Local
	Remote   = core.Remote
	AllNodes = core.AllNodes
)

// Join overflow algorithms.
const (
	SimpleHash = core.SimpleHash
	HybridHash = core.HybridHash
)

// Access paths.
const (
	PathAuto         = core.PathAuto
	PathHeap         = core.PathHeap
	PathClustered    = core.PathClustered
	PathNonClustered = core.PathNonClustered
)

// Update kinds (§7).
const (
	AppendTuple      = core.AppendTuple
	DeleteByKey      = core.DeleteByKey
	ModifyKeyAttr    = core.ModifyKeyAttr
	ModifyNonIndexed = core.ModifyNonIndexed
	ModifyIndexed    = core.ModifyIndexed
)

// Aggregate functions.
const (
	Count = core.Count
	Sum   = core.Sum
	Min   = core.Min
	Max   = core.Max
	Avg   = core.Avg
)

// Wisconsin benchmark attributes (§4).
const (
	Unique1        = rel.Unique1
	Unique2        = rel.Unique2
	Two            = rel.Two
	Four           = rel.Four
	Ten            = rel.Ten
	Twenty         = rel.Twenty
	OnePercent     = rel.OnePercent
	TenPercent     = rel.TenPercent
	TwentyPercent  = rel.TwentyPercent
	FiftyPercent   = rel.FiftyPercent
	Unique3        = rel.Unique3
	EvenOnePercent = rel.EvenOnePercent
	OddOnePercent  = rel.OddOnePercent
)

// DefaultConfig returns the calibrated standard configuration: VAX 11/750
// processors, Fujitsu drives, the Proteon ring behind a 4 Mbit/s Unibus, and
// the 4x20x40 Teradata baseline.
func DefaultConfig() Config { return config.Default() }

// New builds a Gamma machine with nDisk disk processors and nDiskless
// diskless processors on a fresh simulation. cfg nil means DefaultConfig.
// The paper's standard configuration is New(8, 8, nil).
func New(nDisk, nDiskless int, cfg *Config) *Machine {
	c := config.Default()
	if cfg != nil {
		c = *cfg
	}
	return core.NewMachine(sim.New(), &c, nDisk, nDiskless)
}

// NewTeradata builds the paper's Teradata DBC/1012 baseline configuration
// (4 IFPs, 20 AMPs, 40 disk storage units).
func NewTeradata(cfg *Config) *Teradata {
	c := config.Default()
	if cfg != nil {
		c = *cfg
	}
	return teradata.NewMachine(sim.New(), &c)
}

// Wisconsin generates the n-tuple Wisconsin benchmark relation selected by
// seed (§4): unique1/unique2 are independent permutations of [0, n).
func Wisconsin(n int, seed uint64) []Tuple { return wisconsin.Generate(n, seed) }

// Eq matches tuples whose attribute equals v.
func Eq(a Attr, v int32) Pred { return rel.Eq(a, v) }

// Between matches lo <= attr <= hi.
func Between(a Attr, lo, hi int32) Pred { return rel.Between(a, lo, hi) }

// All matches every tuple.
func All() Pred { return rel.True() }

// Seconds converts a simulated duration to float seconds.
func Seconds(d sim.Dur) float64 { return d.Seconds() }
