// Command gammatrace runs one query on a simulated Gamma machine and prints
// a per-resource utilization report plus a bottleneck verdict — the tool for
// seeing which resource (disk, CPU, or network interface) bound a query, the
// diagnostic axis of §5.2 and §6.2.
//
// Usage:
//
//	gammatrace [-disk 8] [-diskless 8] [-tuples 100000] [-pagesize 4096]
//	           [-query select|join] [-sel 10] [-mode remote]
//	           [-fault spec]... [-mirror] [-detect 0.25]
//	           [-out trace.jsonl] [-trace]
//
// -sel is the selection percentage; -out exports the structured event stream
// as JSONL; -trace additionally dumps the raw printf simulation trace (very
// verbose).
//
// -fault injects a failure at a simulated instant and may repeat. Specs are
// "site@seconds" (disk-node crash), "drive:site@seconds" (drive only), or
// "nic:node@seconds+dur" (transient NIC outage). Any -fault loads the
// relations with chained-declustered backups and arms mid-query failover;
// -mirror loads the backups without injecting anything, and -detect tunes
// the scheduler's operator-silence timeout in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/fault"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// faultList collects repeated -fault flags.
type faultList []fault.Injection

func (f *faultList) String() string {
	var parts []string
	for _, in := range *f {
		parts = append(parts, in.String())
	}
	return strings.Join(parts, ",")
}

func (f *faultList) Set(s string) error {
	in, err := fault.ParseInjection(s)
	if err != nil {
		return err
	}
	*f = append(*f, in)
	return nil
}

// parseMode resolves a -mode flag value, rejecting unknown strings (instead
// of silently falling through to the zero JoinMode).
func parseMode(s string) (core.JoinMode, error) {
	switch s {
	case "local":
		return core.Local, nil
	case "remote":
		return core.Remote, nil
	case "all", "allnodes":
		return core.AllNodes, nil
	default:
		return 0, fmt.Errorf("unknown join mode %q (want local, remote, or all)", s)
	}
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gammatrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nDisk := fs.Int("disk", 8, "processors with disks")
	nDiskless := fs.Int("diskless", 8, "diskless processors")
	tuples := fs.Int("tuples", 100000, "relation cardinality")
	pageSize := fs.Int("pagesize", 4096, "disk page size in bytes")
	query := fs.String("query", "select", "select | join")
	selPct := fs.Float64("sel", 10, "selection percentage")
	mode := fs.String("mode", "remote", "join mode: local | remote | all")
	out := fs.String("out", "", "write the structured event stream as JSONL to this file")
	rawTrace := fs.Bool("trace", false, "dump the raw simulation trace")
	var faults faultList
	fs.Var(&faults, "fault", "inject a failure: site@sec, drive:site@sec, or nic:node@sec+dur (repeatable)")
	mirror := fs.Bool("mirror", false, "load chained-declustered backup fragments (implied by -fault)")
	detect := fs.Float64("detect", 0, "failover detection timeout in seconds (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "gammatrace: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	jm, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintf(stderr, "gammatrace: %v\n", err)
		fs.Usage()
		return 2
	}

	prm := config.Default()
	prm.PageBytes = *pageSize
	s := sim.New()
	if *rawTrace {
		s.SetTrace(func(at sim.Time, format string, args ...any) {
			fmt.Fprintf(stdout, "%12s  %s\n", at, fmt.Sprintf(format, args...))
		})
	}
	m := core.NewMachine(s, &prm, *nDisk, *nDiskless)
	col := m.EnableTrace()
	if len(faults) > 0 || *mirror {
		m.EnableMirroring()
	}
	u1 := rel.Unique1
	r := m.Load(core.LoadSpec{
		Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(*tuples, 1))
	if len(faults) > 0 {
		fault.Arm(m, fault.Schedule{
			Detect:     sim.Dur(*detect * float64(sim.Second)),
			Injections: faults,
		})
	}

	pred := rel.Between(rel.Unique2, 0, int32(float64(*tuples)**selPct/100)-1)
	snap := m.SnapshotUtil()
	var res core.Result
	switch *query {
	case "select":
		res = m.RunSelect(core.SelectQuery{Scan: core.ScanSpec{Rel: r, Pred: pred, Path: core.PathHeap}})
		fmt.Fprintf(stdout, "select %.0f%%: %d tuples in %.3fs simulated; %d packets, %d short-circuited\n\n",
			*selPct, res.Tuples, res.Elapsed.Seconds(), res.DataPackets, res.LocalMsgs)
	case "join":
		b := m.Load(core.LoadSpec{Name: "Bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
			wisconsin.Generate(*tuples/10, 7))
		res = m.RunJoin(core.JoinQuery{
			Build: core.ScanSpec{Rel: b, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
			Probe: core.ScanSpec{Rel: r, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
			Mode: jm,
		})
		fmt.Fprintf(stdout, "joinABprime (%s): %d tuples in %.3fs simulated; overflow resolutions: %d\n\n",
			*mode, res.Tuples, res.Elapsed.Seconds(), res.Overflows)
	default:
		fmt.Fprintf(stderr, "gammatrace: unknown query %q (want select or join)\n", *query)
		return 2
	}
	m.WriteUtilization(stdout, snap)

	if res.Diag != nil {
		fmt.Fprintf(stdout, "\nverdict: %s\n", res.Diag)
	}
	if evs := col.Faults(); len(evs) > 0 {
		fmt.Fprintf(stdout, "\nfaults:\n")
		for _, e := range evs {
			fmt.Fprintf(stdout, "  %9.3fs  %s node %d\n", float64(e.At)/1e6, e.Class, e.Node)
		}
		for _, e := range col.Failovers() {
			fmt.Fprintf(stdout, "  %9.3fs  failover %s (attempt %d)\n", float64(e.At)/1e6, e.Class, e.N)
		}
	}
	if phases := col.MergedPhases(); len(phases) > 0 {
		fmt.Fprintf(stdout, "\nphases:\n")
		for _, ph := range phases {
			v := col.DiagnoseSpan(ph)
			fmt.Fprintf(stdout, "  %-16s %9.3fs  %s\n", ph.ID, float64(ph.Dur())/1e6, v)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "gammatrace: %v\n", err)
			return 1
		}
		if err := col.WriteJSONL(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "gammatrace: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "gammatrace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nwrote %d events to %s\n", col.Len(), *out)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
