// Command gammatrace runs one query on a simulated Gamma machine and prints
// a per-resource utilization report — the tool for seeing which resource
// (disk, CPU, or network interface) bound a query, the diagnostic axis of
// §5.2 and §6.2.
//
// Usage:
//
//	gammatrace [-disk 8] [-diskless 8] [-tuples 100000] [-pagesize 4096]
//	           [-query select|join] [-sel 10] [-mode remote] [-trace]
//
// -sel is the selection percentage; -trace additionally dumps the raw
// simulation event trace (very verbose).
package main

import (
	"flag"
	"fmt"
	"os"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

func main() {
	nDisk := flag.Int("disk", 8, "processors with disks")
	nDiskless := flag.Int("diskless", 8, "diskless processors")
	tuples := flag.Int("tuples", 100000, "relation cardinality")
	pageSize := flag.Int("pagesize", 4096, "disk page size in bytes")
	query := flag.String("query", "select", "select | join")
	selPct := flag.Float64("sel", 10, "selection percentage")
	mode := flag.String("mode", "remote", "join mode: local | remote | all")
	trace := flag.Bool("trace", false, "dump the raw simulation trace")
	flag.Parse()

	prm := config.Default()
	prm.PageBytes = *pageSize
	s := sim.New()
	if *trace {
		s.SetTrace(func(at sim.Time, format string, args ...any) {
			fmt.Printf("%12s  %s\n", at, fmt.Sprintf(format, args...))
		})
	}
	m := core.NewMachine(s, &prm, *nDisk, *nDiskless)
	u1 := rel.Unique1
	r := m.Load(core.LoadSpec{
		Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(*tuples, 1))

	pred := rel.Between(rel.Unique2, 0, int32(float64(*tuples)**selPct/100)-1)
	snap := m.Snapshot()
	switch *query {
	case "select":
		res := m.RunSelect(core.SelectQuery{Scan: core.ScanSpec{Rel: r, Pred: pred, Path: core.PathHeap}})
		fmt.Printf("select %.0f%%: %d tuples in %.3fs simulated; %d packets, %d short-circuited\n\n",
			*selPct, res.Tuples, res.Elapsed.Seconds(), res.DataPackets, res.LocalMsgs)
	case "join":
		jm := map[string]core.JoinMode{"local": core.Local, "remote": core.Remote, "all": core.AllNodes}[*mode]
		b := m.Load(core.LoadSpec{Name: "Bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
			wisconsin.Generate(*tuples/10, 7))
		res := m.RunJoin(core.JoinQuery{
			Build: core.ScanSpec{Rel: b, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
			Probe: core.ScanSpec{Rel: r, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
			Mode: jm,
		})
		fmt.Printf("joinABprime (%s): %d tuples in %.3fs simulated; overflow resolutions: %d\n\n",
			*mode, res.Tuples, res.Elapsed.Seconds(), res.Overflows)
	default:
		fmt.Fprintf(os.Stderr, "gammatrace: unknown query %q\n", *query)
		os.Exit(1)
	}
	m.WriteUtilization(os.Stdout, snap)
}
