package main

import (
	"os"
	"path/filepath"
	"testing"

	"gamma/internal/core"
)

func TestParseMode(t *testing.T) {
	tests := []struct {
		in      string
		want    core.JoinMode
		wantErr bool
	}{
		{in: "local", want: core.Local},
		{in: "remote", want: core.Remote},
		{in: "all", want: core.AllNodes},
		{in: "allnodes", want: core.AllNodes},
		{in: "", wantErr: true},
		{in: "Remote", wantErr: true},
		{in: "everywhere", wantErr: true},
		// The old lookup-table bug: an unknown mode silently became the
		// zero JoinMode (Remote). It must be rejected instead.
		{in: "bogus", wantErr: true},
	}
	for _, tc := range tests {
		got, err := parseMode(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseMode(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMode(%q): unexpected error %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if code := run([]string{"-query", "join", "-mode", "bogus"}, null, null); code != 2 {
		t.Errorf("run with -mode bogus: exit code %d, want 2", code)
	}
	if code := run([]string{"-query", "nope"}, null, null); code != 2 {
		t.Errorf("run with -query nope: exit code %d, want 2", code)
	}
}

func TestRunSelectWritesJSONL(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	if code := run([]string{"-disk", "2", "-diskless", "0", "-tuples", "2000", "-out", out}, null, null); code != 0 {
		t.Fatalf("run: exit code %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("JSONL export is empty")
	}
}

func TestRunRejectsBadFault(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, args := range [][]string{
		{"-fault", "bogus"},
		{"-fault", "nic:1@0.5"}, // nic outage needs a +dur
		{"-fault", "2@-1"},
		{"-tuples", "2000", "stray-arg"},
	} {
		if code := run(args, null, null); code != 2 {
			t.Errorf("run(%v): exit code %d, want 2", args, code)
		}
	}
}

func TestRunSelectWithFault(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	args := []string{"-disk", "4", "-diskless", "0", "-tuples", "5000", "-fault", "1@0.2"}
	if code := run(args, null, null); code != 0 {
		t.Fatalf("run(%v): exit code %d, want 0", args, code)
	}
}
