// Command gammaload explores Gamma's four declustering strategies (§2):
// it loads a Wisconsin relation under each strategy and reports fragment
// balance plus the response time of an exact-match and a range selection,
// showing why the strategy choice matters per workload.
package main

import (
	"flag"
	"fmt"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

func main() {
	nDisk := flag.Int("disk", 8, "processors with disks")
	tuples := flag.Int("tuples", 20000, "relation cardinality")
	flag.Parse()

	strategies := []core.PartStrategy{core.RoundRobin, core.Hashed, core.RangeUniform}
	ts := wisconsin.Generate(*tuples, 1)

	fmt.Printf("%-16s %-24s %14s %14s\n", "strategy", "fragment sizes", "exact-match", "1% range")
	for _, strat := range strategies {
		prm := config.Default()
		m := core.NewMachine(sim.New(), &prm, *nDisk, 0)
		r := m.Load(core.LoadSpec{Name: "A", Strategy: strat, PartAttr: rel.Unique1}, ts)

		sizes := ""
		for i, fr := range r.Frags {
			if i > 0 {
				sizes += "/"
			}
			sizes += fmt.Sprint(fr.File.Len())
		}

		exact := m.RunSelect(core.SelectQuery{
			Scan:   core.ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, int32(*tuples/2)), Path: core.PathHeap},
			ToHost: true,
		})
		rng := m.RunSelect(core.SelectQuery{
			Scan: core.ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, int32(*tuples/100-1)), Path: core.PathHeap},
		})
		fmt.Printf("%-16s %-24s %13.2fs %13.2fs\n", strat, sizes, exact.Elapsed.Seconds(), rng.Elapsed.Seconds())
	}
	fmt.Println("\nHashed partitioning directs exact-match queries on the key to a single site;")
	fmt.Println("range partitioning additionally confines range queries on the key (§2).")
}
