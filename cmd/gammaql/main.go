// Command gammaql is an interactive mini-QUEL shell against a simulated
// Gamma machine — Gamma's query language was an extended QUEL (§4).
//
// Usage:
//
//	gammaql [-disk 8] [-diskless 8] [-tuples 10000]
//
// The machine starts with the Wisconsin relation "tenktup" (scaled by
// -tuples) loaded with the paper's physical design, plus "bprime" at a tenth
// the size. Meta commands:
//
//	\load <name> <n> [seed]   load another Wisconsin relation
//	\relations                list catalogued relations
//	\mode local|remote|all    join operator placement
//	\help                     statement syntax
//	\quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/quel"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

const help = `statements:
  range of t is tenktup
  retrieve [into name] (t.all) [where t.unique2 < 100 and ...]
  retrieve (count(t.unique1)) [by t.ten] [where ...]
  retrieve into j (a.all) where a.unique2 = b.unique2 [and b.unique2 < 1000]
  append to tenktup (unique1 = 7, unique2 = 12)
  delete t where t.unique1 = 55
  replace t (ten = 3) where t.unique1 = 55
attributes: unique1 unique2 two four ten twenty onePercent tenPercent
            twentyPercent fiftyPercent unique3 evenOnePercent oddOnePercent`

func main() {
	nDisk := flag.Int("disk", 8, "processors with disks")
	nDiskless := flag.Int("diskless", 8, "diskless processors")
	tuples := flag.Int("tuples", 10000, "cardinality of the preloaded relation")
	flag.Parse()

	prm := config.Default()
	m := core.NewMachine(sim.New(), &prm, *nDisk, *nDiskless)
	u1 := rel.Unique1
	m.Load(core.LoadSpec{
		Name: "tenktup", Strategy: core.Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(*tuples, 1))
	m.Load(core.LoadSpec{Name: "bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(*tuples/10, 7))

	ses := quel.NewSession(m)
	fmt.Printf("gammaql: %d disk + %d diskless processors; relations: %s\n",
		*nDisk, *nDiskless, strings.Join(m.Relations(), ", "))
	fmt.Println(`type \help for syntax, \quit to exit`)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("gamma> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, `\`):
			if done := meta(m, ses, line); done {
				return
			}
		default:
			out, err := ses.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
			} else if out.Message != "" {
				fmt.Println(out.Message)
			}
		}
		fmt.Print("gamma> ")
	}
}

func meta(m *core.Machine, ses *quel.Session, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\quit`, `\q`:
		return true
	case `\help`:
		fmt.Println(help)
	case `\relations`:
		for _, name := range m.Relations() {
			r, _ := m.Relation(name)
			fmt.Printf("  %-16s %8d tuples  %s on %s\n", name, r.Count(), r.Strategy, r.PartAttr)
		}
	case `\mode`:
		if len(fields) < 2 {
			fmt.Println("usage: \\mode local|remote|all")
			break
		}
		switch fields[1] {
		case "local":
			ses.Mode = core.Local
		case "remote":
			ses.Mode = core.Remote
		case "all":
			ses.Mode = core.AllNodes
		default:
			fmt.Println("usage: \\mode local|remote|all")
		}
	case `\load`:
		if len(fields) < 3 {
			fmt.Println("usage: \\load <name> <tuples> [seed]")
			break
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			fmt.Println("bad tuple count")
			break
		}
		seed := uint64(1)
		if len(fields) > 3 {
			s, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				fmt.Println("bad seed")
				break
			}
			seed = s
		}
		u1 := rel.Unique1
		m.Load(core.LoadSpec{
			Name: fields[1], Strategy: core.Hashed, PartAttr: rel.Unique1,
			ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
		}, wisconsin.Generate(n, seed))
		fmt.Printf("loaded %s (%d tuples)\n", fields[1], n)
	default:
		fmt.Println("unknown meta command; try \\help")
	}
	return false
}
