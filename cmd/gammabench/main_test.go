package main

import (
	"os"
	"testing"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { null.Close() })
	return null
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-experiment", "table1"}, null, null); code != 2 {
		t.Errorf("unknown flag: exit code %d, want 2", code)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-quick", "table9"}, null, null); code != 2 {
		t.Errorf("unknown experiment: exit code %d, want 2", code)
	}
	// The check must fire before any experiment runs, even when a valid id
	// precedes the bad one.
	if code := run([]string{"-quick", "table1", "table9"}, null, null); code != 2 {
		t.Errorf("valid+unknown experiments: exit code %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-list"}, null, null); code != 0 {
		t.Errorf("-list: exit code %d, want 0", code)
	}
}
