package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func devNull(t *testing.T) *os.File {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { null.Close() })
	return null
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-bogus", "table1"}, null, null); code != 2 {
		t.Errorf("unknown flag: exit code %d, want 2", code)
	}
}

// TestExperimentFlag: -experiment takes a comma-separated id list, combines
// with positional ids, and rejects unknown names before simulating.
func TestExperimentFlag(t *testing.T) {
	null := devNull(t)
	var out bytes.Buffer
	if code := run([]string{"-quick", "-json", "-parallel", "1", "-experiment", "table3,bitvector"}, &out, null); code != 0 {
		t.Fatalf("-experiment run: exit code %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if len(rep.Experiments) != 2 || rep.Experiments[0].ID != "table3" || rep.Experiments[1].ID != "bitvector" {
		t.Errorf("experiments = %+v, want table3 then bitvector", rep.Experiments)
	}
	if code := run([]string{"-quick", "-experiment", "table9"}, null, null); code != 2 {
		t.Errorf("-experiment with unknown id: exit code %d, want 2", code)
	}
}

// TestMultiuserMetricsInJSON: the multiuser experiment's headline metrics —
// including the shared-scan speedup — surface in the -json report.
func TestMultiuserMetricsInJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 16 closed-loop simulations")
	}
	null := devNull(t)
	var out bytes.Buffer
	if code := run([]string{"-quick", "-json", "-parallel", "1", "-experiment", "multiuser"}, &out, null); code != 0 {
		t.Fatalf("multiuser run: exit code %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("got %d experiments, want 1", len(rep.Experiments))
	}
	m := rep.Experiments[0].Metrics
	for _, k := range []string{"qps_private_mpl8", "qps_shared_mpl8", "speedup_mpl8", "shared_pages_saved_mpl8"} {
		if m[k] <= 0 {
			t.Errorf("metrics[%q] = %v, want > 0 (metrics: %v)", k, m[k], m)
		}
	}
	if m["speedup_mpl8"] < 2 {
		t.Errorf("speedup_mpl8 = %.2f, want >= 2 at quick scale", m["speedup_mpl8"])
	}
}

// TestJSONSetupQuerySplitAndCacheCounters: the -json report carries the
// setup/query wall split (old field names intact) and the machine-image
// cache counters, per experiment and as suite totals.
func TestJSONSetupQuerySplitAndCacheCounters(t *testing.T) {
	null := devNull(t)
	var out bytes.Buffer
	// bitvector runs two machines off one image: 1 miss + 1 hit guaranteed.
	if code := run([]string{"-quick", "-json", "-parallel", "1", "-experiment", "bitvector"}, &out, null); code != 0 {
		t.Fatalf("bitvector run: exit code %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("got %d experiments, want 1", len(rep.Experiments))
	}
	e := rep.Experiments[0]
	if e.WallSeconds <= 0 || e.SetupWallSeconds <= 0 || e.QueryWallSeconds <= 0 {
		t.Errorf("wall split: wall=%v setup=%v query=%v, want all > 0",
			e.WallSeconds, e.SetupWallSeconds, e.QueryWallSeconds)
	}
	if got := e.SetupWallSeconds + e.QueryWallSeconds; got > e.WallSeconds*1.001 {
		t.Errorf("serial run: setup+query = %v exceeds wall %v", got, e.WallSeconds)
	}
	if e.ImageCacheHits < 1 || e.ImageCacheMisses < 1 {
		t.Errorf("image cache counters: hits=%d misses=%d, want both >= 1",
			e.ImageCacheHits, e.ImageCacheMisses)
	}
	if rep.ImageCacheHits != e.ImageCacheHits || rep.ImageCacheMisses != e.ImageCacheMisses {
		t.Errorf("suite totals (%d/%d) != experiment counters (%d/%d)",
			rep.ImageCacheHits, rep.ImageCacheMisses, e.ImageCacheHits, e.ImageCacheMisses)
	}
	// Raw field names are part of the tooling contract.
	for _, field := range []string{`"wall_seconds"`, `"setup_wall_seconds"`, `"query_wall_seconds"`,
		`"image_cache_hits"`, `"image_cache_misses"`, `"simulated_events"`} {
		if !bytes.Contains(out.Bytes(), []byte(field)) {
			t.Errorf("-json output missing field %s", field)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-quick", "table9"}, null, null); code != 2 {
		t.Errorf("unknown experiment: exit code %d, want 2", code)
	}
	// The check must fire before any experiment runs, even when a valid id
	// precedes the bad one.
	if code := run([]string{"-quick", "table1", "table9"}, null, null); code != 2 {
		t.Errorf("valid+unknown experiments: exit code %d, want 2", code)
	}
}

// TestGenerationFlag: -generation and GAMMA_GENERATION select a hardware
// generation, reject unknown names with the valid list before anything
// simulates, and the flag wins over the environment.
func TestGenerationFlag(t *testing.T) {
	null := devNull(t)
	var errBuf bytes.Buffer
	if code := run([]string{"-quick", "-generation", "gamma1989", "table3"}, null, &errBuf); code != 2 {
		t.Errorf("-generation with unknown name: exit code %d, want 2", code)
	}
	for _, want := range []string{"unknown generation", "gamma1988", "gbe2015", "rdma"} {
		if !bytes.Contains(errBuf.Bytes(), []byte(want)) {
			t.Errorf("error output missing %q:\n%s", want, errBuf.String())
		}
	}
	t.Setenv("GAMMA_GENERATION", "bogus")
	if code := run([]string{"-quick", "table3"}, null, null); code != 2 {
		t.Errorf("GAMMA_GENERATION=bogus: exit code %d, want 2", code)
	}
	// The explicit flag overrides the (bad) environment value and the -json
	// report echoes the generation.
	var out bytes.Buffer
	if code := run([]string{"-quick", "-json", "-parallel", "1", "-generation", "rdma", "-experiment", "table3"}, &out, null); code != 0 {
		t.Fatalf("-generation rdma run: exit code %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if rep.Generation != "rdma" {
		t.Errorf("json generation = %q, want rdma", rep.Generation)
	}
}

// TestListGenerations: -list-generations enumerates every registered
// generation and exits cleanly.
func TestListGenerations(t *testing.T) {
	null := devNull(t)
	var out bytes.Buffer
	if code := run([]string{"-list-generations"}, &out, null); code != 0 {
		t.Fatalf("-list-generations: exit code %d, want 0", code)
	}
	for _, want := range []string{"gamma1988", "gbe2015", "rdma"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Errorf("-list-generations output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadParallel(t *testing.T) {
	null := devNull(t)
	for _, v := range []string{"0", "-3", "two"} {
		if code := run([]string{"-parallel", v, "table1"}, null, null); code != 2 {
			t.Errorf("-parallel %s: exit code %d, want 2", v, code)
		}
	}
}

func TestRunRejectsBadLookahead(t *testing.T) {
	null := devNull(t)
	for _, v := range []string{"-2", "-100", "x"} {
		if code := run([]string{"-lookahead", v, "table1"}, null, null); code != 2 {
			t.Errorf("-lookahead %s: exit code %d, want 2", v, code)
		}
	}
}

// TestFusionFlag: -fusion rejects unknown modes before running anything,
// the rendered tables are byte-identical across every fusion mode on the
// partitioned kernel (the adaptive policy and the fully-fused start must be
// invisible to results), and the -json report echoes the mode.
func TestFusionFlag(t *testing.T) {
	null := devNull(t)
	var errBuf bytes.Buffer
	if code := run([]string{"-fusion", "everything", "table3"}, null, &errBuf); code != 2 {
		t.Errorf("-fusion with unknown mode: exit code %d, want 2", code)
	}
	for _, want := range []string{"-fusion must be", "adaptive", "off", "all"} {
		if !bytes.Contains(errBuf.Bytes(), []byte(want)) {
			t.Errorf("unknown-fusion error %q does not mention %q", errBuf.String(), want)
		}
	}
	var byMode [3]bytes.Buffer
	for i, mode := range []string{"adaptive", "off", "all"} {
		args := []string{"-quick", "-parallel", "1", "-kernel", "partitioned", "-kernel-workers", "4",
			"-fusion", mode, "-experiment", "bitvector"}
		if code := run(args, &byMode[i], null); code != 0 {
			t.Fatalf("-fusion %s: exit code %d", mode, code)
		}
	}
	if !bytes.Equal(byMode[0].Bytes(), byMode[1].Bytes()) || !bytes.Equal(byMode[0].Bytes(), byMode[2].Bytes()) {
		t.Error("tables differ across fusion modes")
	}
	var out bytes.Buffer
	if code := run([]string{"-quick", "-json", "-parallel", "1", "-kernel", "partitioned",
		"-fusion", "all", "-experiment", "table3"}, &out, null); code != 0 {
		t.Fatalf("-json with -fusion: exit code %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if rep.Fusion != "all" {
		t.Errorf("json fusion = %q, want all", rep.Fusion)
	}
}

// TestLookaheadInvariance: at positive lookahead the rendered tables are
// byte-identical across the serial kernel (the oracle: same partition, one
// worker), the partitioned kernel at the derived floor, and the partitioned
// kernel at an explicit smaller window. -lookahead 0 (the pre-windowing
// serialized model) must also run cleanly, and the -json report echoes the
// flag.
func TestLookaheadInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the same experiments four times")
	}
	null := devNull(t)
	var oracle, derived, explicit bytes.Buffer
	if code := run([]string{"-quick", "-parallel", "1", "table3", "bitvector"}, &oracle, null); code != 0 {
		t.Fatalf("serial kernel: exit code %d", code)
	}
	if code := run([]string{"-quick", "-parallel", "1", "-kernel", "partitioned", "table3", "bitvector"}, &derived, null); code != 0 {
		t.Fatalf("derived lookahead: exit code %d", code)
	}
	if code := run([]string{"-quick", "-parallel", "1", "-kernel", "partitioned", "-lookahead", "100", "table3", "bitvector"}, &explicit, null); code != 0 {
		t.Fatalf("-lookahead 100: exit code %d", code)
	}
	if !bytes.Equal(oracle.Bytes(), derived.Bytes()) {
		t.Error("serial-kernel and partitioned tables differ at derived lookahead")
	}
	if !bytes.Equal(derived.Bytes(), explicit.Bytes()) {
		t.Error("tables differ between derived and explicit positive lookahead")
	}
	if code := run([]string{"-quick", "-parallel", "1", "-lookahead", "0", "-experiment", "bitvector"}, null, null); code != 0 {
		t.Fatalf("-lookahead 0: exit code %d", code)
	}
	var out bytes.Buffer
	if code := run([]string{"-quick", "-json", "-parallel", "1", "-lookahead", "100", "-experiment", "table3"}, &out, null); code != 0 {
		t.Fatalf("-json with -lookahead: exit code %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad -json output: %v", err)
	}
	if rep.LookaheadUS != 100 {
		t.Errorf("lookahead_us = %d, want 100", rep.LookaheadUS)
	}
}

func TestRunRejectsUnwritableProfilePaths(t *testing.T) {
	null := devNull(t)
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.prof")
	// Both failures happen before (cpu) or after (mem) the suite; keep the
	// run cheap with a bad cpu path so nothing simulates.
	if code := run([]string{"-quick", "-cpuprofile", bad, "table3"}, null, null); code != 1 {
		t.Errorf("-cpuprofile to missing dir: exit code %d, want 1", code)
	}
}

func TestRunList(t *testing.T) {
	null := devNull(t)
	if code := run([]string{"-list"}, null, null); code != 0 {
		t.Errorf("-list: exit code %d, want 0", code)
	}
}

// TestRunSerialParallelIdentical asserts the rendered tables are
// byte-identical whether the suite runs on one worker or eight: every data
// point is an independent deterministic simulation, and wall-clock chatter
// goes to stderr.
func TestRunSerialParallelIdentical(t *testing.T) {
	null := devNull(t)
	var serial, parallel bytes.Buffer
	if code := run([]string{"-quick", "-parallel", "1", "table3", "bitvector"}, &serial, null); code != 0 {
		t.Fatalf("-parallel 1: exit code %d", code)
	}
	if code := run([]string{"-quick", "-parallel", "8", "table3", "bitvector"}, &parallel, null); code != 0 {
		t.Fatalf("-parallel 8: exit code %d", code)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("serial and parallel stdout differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if serial.Len() == 0 {
		t.Error("no table output")
	}
}

// TestRunProfilesWritten checks the pprof flags produce non-empty files.
func TestRunProfilesWritten(t *testing.T) {
	null := devNull(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	if code := run([]string{"-quick", "-cpuprofile", cpu, "-memprofile", mem, "table3"}, null, null); code != 0 {
		t.Fatalf("profiled run: exit code %d", code)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
