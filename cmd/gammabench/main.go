// Command gammabench regenerates the paper's tables and figures on the
// simulated Gamma and Teradata machines.
//
// Usage:
//
//	gammabench [-quick] [-list] [-parallel N] [-json] [-kernel serial|partitioned]
//	           [-kernel-workers N] [-fusion adaptive|off|all] [-lookahead US]
//	           [-generation NAME] [-campaign-seed S] [-campaign-faults N]
//	           [-experiment a,b] [experiment ...]
//
// With no experiment arguments every registered experiment runs; experiments
// can be named positionally or as a comma-separated -experiment list (both
// forms combine). -quick uses reduced relation sizes for a fast smoke run;
// the default is paper scale (10k/100k/1M tuples), which regenerates every
// published number.
//
// -parallel N fans experiments and their independent data points across N
// worker goroutines (default GOMAXPROCS). Every data point is its own
// single-threaded simulation with a fixed seed, so the rendered tables are
// byte-identical at any worker count. -json replaces the tables with a
// machine-readable report (wall-clock and simulated-events/sec per
// experiment). -cpuprofile and -memprofile write pprof profiles.
//
// -kernel selects the simulation kernel: "serial" (the default) or
// "partitioned" (one shard per simulated node). Experiments whose Gamma
// workload is safe for windowed execution derive a positive conservative
// lookahead from the network's delivery-latency floor (Net.MinLatency), so
// their partitioned simulations run truly parallel windows; the serial
// kernel runs the identical partition on one worker and stays the
// byte-exact oracle (same tables, JSON, and traces). Experiments that
// inject faults, share machines across concurrent queries, or build
// Teradata machines always run serialized at lookahead 0.
// -kernel-workers bounds the goroutines a partitioned simulation may use
// for conservative windows. -fusion selects the partitioned kernel's
// adaptive shard-fusion mode (DESIGN.md §13): "adaptive" (the default)
// coalesces shards onto shared heaps when barrier rounds run thin and
// re-splits them when traffic returns, "off" pins one shard per group, and
// "all" starts fully fused. -lookahead overrides the derived lookahead in
// simulated microseconds: 0 forces fully serialized scheduling, a positive
// value is capped at the latency floor (the largest provably safe value),
// and -1 (the default) derives it. The GAMMA_KERNEL, GAMMA_KERNEL_WORKERS,
// GAMMA_FUSION, and GAMMA_LOOKAHEAD environment variables provide the same
// knobs to the test suite.
//
// -generation parameterizes every machine with a named hardware generation
// (-list-generations enumerates them; the default is gamma1988, the paper's
// VAX-era build). Unknown names are rejected with the valid list — the
// GAMMA_GENERATION environment variable provides the same knob, and the
// flag wins when both are set. The partitioned kernel derives its windows
// from the generation's network latency floor, so fast generations lean on
// the earliest-output-time scheduler (see DESIGN.md §12); the -json report
// echoes the generation and adds the kernel's window counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"gamma/internal/bench"
	"gamma/internal/config"
	"gamma/internal/sim"
)

// jsonExperiment is one experiment's entry in the -json report.
// wall_seconds keeps its historical meaning (total experiment wall clock);
// setup_wall_seconds/query_wall_seconds split it into machine-image
// build/restore time vs query simulation time. Setup is cumulative across an
// experiment's data points, so under -parallel it can exceed wall_seconds;
// query_wall_seconds is clamped at zero in that case.
type jsonExperiment struct {
	ID               string  `json:"id"`
	Title            string  `json:"title"`
	WallSeconds      float64 `json:"wall_seconds"`
	SetupWallSeconds float64 `json:"setup_wall_seconds"`
	QueryWallSeconds float64 `json:"query_wall_seconds"`
	SimEvents        int64   `json:"simulated_events"`
	EventsPerSec     float64 `json:"events_per_second"`
	ImageCacheHits   int64   `json:"image_cache_hits"`
	ImageCacheMisses int64   `json:"image_cache_misses"`
	// EOT window-scheduler counters, aggregated over every simulation the
	// experiment ran; all zero when it executed on the serial kernel. The
	// counts are deterministic (they depend only on the event schedule and
	// the declared floors/promises, not on worker interleaving).
	// Every counter key is always present — zero-valued when the serial
	// kernel ran — so downstream tooling never needs key-presence checks.
	KernelWindows         int64              `json:"kernel_windows"`
	KernelWindowOccupancy float64            `json:"kernel_window_occupancy"`
	KernelEventsPerWindow float64            `json:"kernel_events_per_window"`
	KernelPromises        int64              `json:"kernel_promises"`
	KernelGroupWindows    int64              `json:"kernel_group_windows"`
	KernelFuseOps         int64              `json:"kernel_fuse_ops"`
	KernelSplitOps        int64              `json:"kernel_split_ops"`
	Metrics               map[string]float64 `json:"metrics,omitempty"`
}

type jsonReport struct {
	Suite      string `json:"suite"`      // "full" or "quick"
	Kernel     string `json:"kernel"`     // "serial" or "partitioned"
	Fusion     string `json:"fusion"`     // shard-fusion mode: "adaptive", "off", or "all"
	Generation string `json:"generation"` // hardware generation the machines were parameterized with
	// LookaheadUS echoes the -lookahead flag: -1 = derived from the
	// network latency floor, 0 = forced serialized, else explicit µs.
	LookaheadUS      int              `json:"lookahead_us"`
	Workers          int              `json:"workers"`
	GoMaxProcs       int              `json:"gomaxprocs"`
	TotalWallSeconds float64          `json:"total_wall_seconds"`
	ImageCacheHits   int64            `json:"image_cache_hits"`
	ImageCacheMisses int64            `json:"image_cache_misses"`
	Experiments      []jsonExperiment `json:"experiments"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gammabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run with reduced relation sizes")
	list := fs.Bool("list", false, "list experiments and exit")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for experiments and independent data points")
	jsonOut := fs.Bool("json", false, "emit a machine-readable report instead of tables")
	kernel := fs.String("kernel", "", "simulation `kernel`: serial (default) or partitioned; partitioned shards each machine one-per-node with the serial order as oracle")
	kernelWorkers := fs.Int("kernel-workers", 0, "worker goroutines per partitioned simulation's conservative windows (models with positive lookahead only)")
	fusionMode := fs.String("fusion", "", "partitioned-kernel shard-fusion `mode`: adaptive (default), off, or all")
	lookahead := fs.Int("lookahead", -1, "conservative-window lookahead in simulated `microseconds` for windowed experiments: -1 derives it from the network latency floor, 0 forces serialized scheduling, positive values are capped at the floor")
	generation := fs.String("generation", "", "hardware `generation` to parameterize the machines with (see -list-generations; default gamma1988)")
	listGens := fs.Bool("list-generations", false, "list hardware generations and exit")
	experiment := fs.String("experiment", "", "comma-separated experiment `ids` to run (adds to positional ids)")
	campaignSeed := fs.Uint64("campaign-seed", 0, "`seed` for the availability experiment's fault campaign (0 = default)")
	campaignFaults := fs.Int("campaign-faults", 0, "faults per availability campaign (0 = default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := fs.String("memprofile", "", "write a heap profile to `file`")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "gammabench: -parallel must be >= 1 (got %d)\n", *parallel)
		fs.Usage()
		return 2
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *listGens {
		for _, g := range config.Generations() {
			fmt.Fprintf(stdout, "%-12s %s\n", g.Name, g.Desc)
		}
		return 0
	}

	opts := bench.Full()
	suite := "full"
	if *quick {
		opts = bench.Quick()
		suite = "quick"
	}
	// -generation wins over the GAMMA_GENERATION environment variable; both
	// are validated strictly — a typo must not silently run gamma1988.
	genName := *generation
	if genName == "" {
		genName = os.Getenv("GAMMA_GENERATION")
	}
	if genName != "" {
		prm, ok := config.ByGeneration(genName)
		if !ok {
			fmt.Fprintf(stderr, "gammabench: unknown generation %q (valid: %s)\n",
				genName, strings.Join(config.GenerationNames(), ", "))
			fs.Usage()
			return 2
		}
		opts.Params = &prm
	} else {
		genName = "gamma1988"
	}
	switch *kernel {
	case "", "serial", "partitioned":
		opts.Kernel = *kernel
	default:
		fmt.Fprintf(stderr, "gammabench: -kernel must be serial or partitioned (got %q)\n", *kernel)
		fs.Usage()
		return 2
	}
	if *kernelWorkers < 0 {
		fmt.Fprintf(stderr, "gammabench: -kernel-workers must be >= 0 (got %d)\n", *kernelWorkers)
		fs.Usage()
		return 2
	}
	opts.KernelWorkers = *kernelWorkers
	switch *fusionMode {
	case "", "adaptive", "off", "all":
		opts.Fusion = *fusionMode
	default:
		fmt.Fprintf(stderr, "gammabench: -fusion must be adaptive, off, or all (got %q)\n", *fusionMode)
		fs.Usage()
		return 2
	}
	switch {
	case *lookahead < -1:
		fmt.Fprintf(stderr, "gammabench: -lookahead must be -1 (derive), 0 (serialize), or a positive microsecond count (got %d)\n", *lookahead)
		fs.Usage()
		return 2
	case *lookahead == 0:
		opts.Lookahead = -1 // force serialized scheduling
	case *lookahead > 0:
		opts.Lookahead = sim.Dur(*lookahead)
	}
	if *campaignFaults < 0 {
		fmt.Fprintf(stderr, "gammabench: -campaign-faults must be >= 0 (got %d)\n", *campaignFaults)
		fs.Usage()
		return 2
	}
	opts.CampaignSeed = *campaignSeed
	opts.CampaignFaults = *campaignFaults

	ids := fs.Args()
	for _, id := range strings.Split(*experiment, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	// Reject unknown experiments up front, before hours of simulation.
	for _, id := range ids {
		if _, ok := bench.Lookup(id); !ok {
			fmt.Fprintf(stderr, "gammabench: unknown experiment %q\n", id)
			fs.Usage()
			fmt.Fprintf(stderr, "experiments (use -list for titles):\n")
			for _, e := range bench.Experiments() {
				fmt.Fprintf(stderr, "  %s\n", e.ID)
			}
			return 2
		}
	}
	var exps []bench.Experiment
	if len(ids) == 0 {
		exps = bench.Experiments()
	} else {
		for _, id := range ids {
			e, _ := bench.Lookup(id)
			exps = append(exps, e)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "gammabench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "gammabench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	reports := bench.RunSuite(exps, opts, *parallel)
	total := time.Since(start)

	if *jsonOut {
		kernelName := *kernel
		if kernelName == "" {
			kernelName = "serial"
		}
		fusionName := *fusionMode
		if fusionName == "" {
			fusionName = "adaptive"
		}
		rep := jsonReport{
			Suite:            suite,
			Kernel:           kernelName,
			Fusion:           fusionName,
			Generation:       genName,
			LookaheadUS:      *lookahead,
			Workers:          *parallel,
			GoMaxProcs:       runtime.GOMAXPROCS(0),
			TotalWallSeconds: total.Seconds(),
		}
		for _, r := range reports {
			rep.ImageCacheHits += r.ImageHits
			rep.ImageCacheMisses += r.ImageMisses
			je := jsonExperiment{
				ID:               r.ID,
				Title:            r.Title,
				WallSeconds:      r.Wall.Seconds(),
				SetupWallSeconds: r.Setup.Seconds(),
				QueryWallSeconds: r.QueryWall().Seconds(),
				SimEvents:        r.Events,
				EventsPerSec:     r.EventsPerSec(),
				ImageCacheHits:   r.ImageHits,
				ImageCacheMisses: r.ImageMisses,
				KernelWindows:      r.Windows.Windows,
				KernelPromises:     r.Windows.Promises,
				KernelGroupWindows: r.Windows.GroupWindows,
				KernelFuseOps:      r.Windows.FuseOps,
				KernelSplitOps:     r.Windows.SplitOps,
				Metrics:            r.Table.Metrics,
			}
			if r.Windows.Windows > 0 {
				je.KernelWindowOccupancy = r.Windows.Occupancy()
				je.KernelEventsPerWindow = float64(r.Windows.WindowEvents) / float64(r.Windows.Windows)
			}
			rep.Experiments = append(rep.Experiments, je)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "gammabench: %v\n", err)
			return 1
		}
	} else {
		// Tables go to stdout; wall-clock chatter goes to stderr so the
		// rendered output is byte-identical at any -parallel setting.
		var hits, misses int64
		for _, r := range reports {
			r.Table.Render(stdout)
			hits += r.ImageHits
			misses += r.ImageMisses
			fmt.Fprintf(stderr, "   [%s regenerated in %.1fs wall time (%.1fs setup + %.1fs query), %.1fM simulated events/s, images %d hit/%d miss]\n\n",
				r.ID, r.Wall.Seconds(), r.Setup.Seconds(), r.QueryWall().Seconds(),
				r.EventsPerSec()/1e6, r.ImageHits, r.ImageMisses)
		}
		fmt.Fprintf(stderr, "   [machine-image cache: %d restores, %d builds]\n", hits, misses)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "gammabench: -memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "gammabench: -memprofile: %v\n", err)
			return 1
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
