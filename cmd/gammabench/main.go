// Command gammabench regenerates the paper's tables and figures on the
// simulated Gamma and Teradata machines.
//
// Usage:
//
//	gammabench [-quick] [-list] [experiment ...]
//
// With no experiment arguments every registered experiment runs. -quick uses
// reduced relation sizes for a fast smoke run; the default is paper scale
// (10k/100k/1M tuples), which regenerates every published number.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gamma/internal/bench"
)

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gammabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run with reduced relation sizes")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
		}
		return 0
	}

	opts := bench.Full()
	if *quick {
		opts = bench.Quick()
	}

	ids := fs.Args()
	// Reject unknown experiments up front, before hours of simulation.
	for _, id := range ids {
		if _, ok := bench.Lookup(id); !ok {
			fmt.Fprintf(stderr, "gammabench: unknown experiment %q\n", id)
			fs.Usage()
			fmt.Fprintf(stderr, "experiments (use -list for titles):\n")
			for _, e := range bench.Experiments() {
				fmt.Fprintf(stderr, "  %s\n", e.ID)
			}
			return 2
		}
	}
	if len(ids) == 0 {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, _ := bench.Lookup(id)
		start := time.Now()
		tbl := e.Run(opts)
		tbl.Render(stdout)
		fmt.Fprintf(stdout, "   [%s regenerated in %.1fs wall time]\n\n", e.ID, time.Since(start).Seconds())
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
