// Command gammabench regenerates the paper's tables and figures on the
// simulated Gamma and Teradata machines.
//
// Usage:
//
//	gammabench [-quick] [-list] [experiment ...]
//
// With no experiment arguments every registered experiment runs. -quick uses
// reduced relation sizes for a fast smoke run; the default is paper scale
// (10k/100k/1M tuples), which regenerates every published number.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gamma/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run with reduced relation sizes")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Full()
	if *quick {
		opts = bench.Quick()
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "gammabench: unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		tbl := e.Run(opts)
		tbl.Render(os.Stdout)
		fmt.Printf("   [%s regenerated in %.1fs wall time]\n\n", e.ID, time.Since(start).Seconds())
	}
}
