module gamma

go 1.22
