// Quickstart: build the paper's standard Gamma configuration, load a
// Wisconsin benchmark relation, and run one of each query class.
package main

import (
	"fmt"

	"gamma"
)

func main() {
	// The standard configuration of §2: 8 processors with disks, 8
	// diskless join processors (plus host and scheduler).
	m := gamma.New(8, 8, nil)

	// Load the 10,000-tuple Wisconsin relation, hash-declustered on
	// unique1 with a clustered index on unique1 and a dense secondary
	// index on unique2 — exactly the paper's benchmark database (§4).
	u1 := gamma.Unique1
	tenk := m.Load(gamma.LoadSpec{
		Name:                "tenktup",
		Strategy:            gamma.Hashed,
		PartAttr:            gamma.Unique1,
		ClusteredIndex:      &u1,
		NonClusteredIndexes: []gamma.Attr{gamma.Unique2},
	}, gamma.Wisconsin(10000, 1))

	// A 1% selection; the optimizer picks the access path (here the
	// clustered index, since the predicate is on unique1).
	sel := m.RunSelect(gamma.SelectQuery{
		Scan: gamma.ScanSpec{Rel: tenk, Pred: gamma.Between(gamma.Unique1, 0, 99)},
	})
	fmt.Printf("1%% selection:      %4d tuples in %8.3fs simulated\n", sel.Tuples, sel.Elapsed.Seconds())

	// joinABprime: join with a relation a tenth the size (§6).
	bprime := m.Load(gamma.LoadSpec{
		Name: "bprime", Strategy: gamma.Hashed, PartAttr: gamma.Unique1,
	}, gamma.Wisconsin(1000, 7))
	join := m.RunJoin(gamma.JoinQuery{
		Build: gamma.ScanSpec{Rel: bprime, Pred: gamma.All()}, BuildAttr: gamma.Unique2,
		Probe: gamma.ScanSpec{Rel: tenk, Pred: gamma.All()}, ProbeAttr: gamma.Unique2,
		Mode: gamma.Remote,
	})
	fmt.Printf("joinABprime:       %4d tuples in %8.3fs simulated\n", join.Tuples, join.Elapsed.Seconds())

	// A grouped aggregate on the diskless processors.
	by := gamma.Ten
	agg := m.RunAgg(gamma.AggQuery{
		Scan: gamma.ScanSpec{Rel: tenk, Pred: gamma.All()},
		Fn:   gamma.Min, Attr: gamma.Unique1, GroupBy: &by, Mode: gamma.Remote,
	})
	fmt.Printf("min by ten:        %4d groups in %8.3fs simulated\n", len(agg.Groups), agg.Elapsed.Seconds())

	// A single-tuple update through the clustered index.
	upd := m.RunUpdate(gamma.UpdateQuery{
		Rel: tenk, Kind: gamma.ModifyNonIndexed,
		Key: 4242, Attr: gamma.OddOnePercent, NewValue: 1,
	})
	fmt.Printf("modify 1 tuple:    %4d tuple  in %8.3fs simulated\n", upd.Tuples, upd.Elapsed.Seconds())
}
