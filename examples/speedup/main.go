// Speedup: reproduce the shape of Figures 1-2 — near-linear selection
// speedup as processors (and disks) are added, with the total database size
// held constant.
package main

import (
	"fmt"

	"gamma"
)

func main() {
	const n = 50000
	fmt.Println("Non-indexed 1% selection on a 50,000-tuple relation (Figures 1-2 shape):")
	fmt.Printf("%-12s %12s %10s\n", "processors", "response(s)", "speedup")
	var base float64
	for d := 1; d <= 8; d++ {
		m := gamma.New(d, d, nil)
		r := m.Load(gamma.LoadSpec{
			Name: "A", Strategy: gamma.Hashed, PartAttr: gamma.Unique1,
		}, gamma.Wisconsin(n, 1))
		res := m.RunSelect(gamma.SelectQuery{
			Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique2, 0, n/100-1), Path: gamma.PathHeap},
		})
		secs := res.Elapsed.Seconds()
		if d == 1 {
			base = secs
		}
		fmt.Printf("%-12d %12.2f %10.2f\n", d, secs, base/secs)
	}
}
