// Pagesize: reproduce the Figures 5-8 trade-off — bigger disk pages help
// sequential scans (until the CPU binds) but hurt non-clustered index
// access, which is why §8 recommends an 8 KB default rather than track-size
// pages.
package main

import (
	"fmt"

	"gamma"
)

func main() {
	const n = 50000
	fmt.Println("Selections on a 50,000-tuple relation vs disk page size (Figures 5-8 shape):")
	fmt.Printf("%-10s %16s %22s %22s\n", "page size", "10% file scan", "1% clustered idx", "1% non-clustered idx")
	for _, ps := range []int{2048, 4096, 8192, 16384, 32768} {
		cfg := gamma.DefaultConfig()
		cfg.PageBytes = ps
		m := gamma.New(8, 8, &cfg)
		u1 := gamma.Unique1
		r := m.Load(gamma.LoadSpec{
			Name: "A", Strategy: gamma.Hashed, PartAttr: gamma.Unique1,
			ClusteredIndex: &u1, NonClusteredIndexes: []gamma.Attr{gamma.Unique2},
		}, gamma.Wisconsin(n, 1))

		scan := m.RunSelect(gamma.SelectQuery{
			Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique2, 0, n/10-1), Path: gamma.PathHeap},
		})
		clus := m.RunSelect(gamma.SelectQuery{
			Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique1, 0, n/100-1), Path: gamma.PathClustered},
		})
		nonc := m.RunSelect(gamma.SelectQuery{
			Scan: gamma.ScanSpec{Rel: r, Pred: gamma.Between(gamma.Unique2, 0, n/100-1), Path: gamma.PathNonClustered},
		})
		fmt.Printf("%6d KB %15.2fs %21.2fs %21.2fs\n",
			ps/1024, scan.Elapsed.Seconds(), clus.Elapsed.Seconds(), nonc.Elapsed.Seconds())
	}
}
