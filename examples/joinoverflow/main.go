// Joinoverflow: reproduce the Figure 13 phenomenon — the distributed Simple
// hash join degrades rapidly as hash-table memory shrinks below the build
// relation, and the Hybrid hash join (the fix §8 announces) does not.
package main

import (
	"fmt"

	"gamma"
)

func run(algo gamma.JoinQuery, ratio float64) (float64, int) {
	const n = 50000
	m := gamma.New(8, 8, nil)
	a := m.Load(gamma.LoadSpec{Name: "A", Strategy: gamma.Hashed, PartAttr: gamma.Unique1},
		gamma.Wisconsin(n, 1))
	bprime := m.Load(gamma.LoadSpec{Name: "Bprime", Strategy: gamma.Hashed, PartAttr: gamma.Unique1},
		gamma.Wisconsin(n/10, 7))
	q := algo
	q.Build = gamma.ScanSpec{Rel: bprime, Pred: gamma.All()}
	q.Probe = gamma.ScanSpec{Rel: a, Pred: gamma.All()}
	q.MemPerJoinBytes = int(ratio * float64((n/10)*208) / 8)
	res := m.RunJoin(q)
	return res.Elapsed.Seconds(), res.Overflows
}

func main() {
	fmt.Println("joinABprime (Remote) as hash-table memory shrinks (Figure 13 shape):")
	fmt.Printf("%-28s %22s %22s\n", "memory/smaller relation", "Simple hash join", "Hybrid hash join")
	for _, ratio := range []float64{1.2, 1.0, 0.8, 0.6, 0.4, 0.2} {
		base := gamma.JoinQuery{
			BuildAttr: gamma.Unique1, ProbeAttr: gamma.Unique1, Mode: gamma.Remote,
		}
		simple := base
		simple.Algorithm = gamma.SimpleHash
		hybrid := base
		hybrid.Algorithm = gamma.HybridHash
		ss, so := run(simple, ratio)
		hs, ho := run(hybrid, ratio)
		fmt.Printf("%-28.2f %14.2fs ovf=%-2d %14.2fs ovf=%-2d\n", ratio, ss, so, hs, ho)
	}
}
