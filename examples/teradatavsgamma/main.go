// Teradatavsgamma: the Table 1 comparison in miniature — the same selection
// workload on both machines, showing why Gamma's clustered B-trees and cheap
// result storage beat the DBC/1012's hash-file-only design for range
// queries, while Teradata's hash access wins exact-match lookups on its own
// terms.
package main

import (
	"fmt"

	"gamma"
	"gamma/internal/rel"
	"gamma/internal/teradata"
)

func main() {
	const n = 20000
	tuples := gamma.Wisconsin(n, 1)

	// Gamma: standard configuration, both physical designs.
	gm := gamma.New(8, 8, nil)
	u1 := gamma.Unique1
	gr := gm.Load(gamma.LoadSpec{
		Name: "A", Strategy: gamma.Hashed, PartAttr: gamma.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []gamma.Attr{gamma.Unique2},
	}, tuples)

	// Teradata: 20 AMPs, hash files, dense secondary index on unique2.
	tm := gamma.NewTeradata(nil)
	tr := tm.Load("A", rel.Unique1, []rel.Attr{rel.Unique2}, tuples)

	onePct := gamma.Between(gamma.Unique2, 0, n/100-1)
	fmt.Printf("%-34s %14s %14s\n", "query (20,000 tuples)", "Teradata", "Gamma")

	ts := tm.RunSelect(tr, onePct, teradata.FileScan, false)
	gs := gm.RunSelect(gamma.SelectQuery{Scan: gamma.ScanSpec{Rel: gr, Pred: onePct, Path: gamma.PathHeap}})
	fmt.Printf("%-34s %13.2fs %13.2fs\n", "1% non-indexed selection", ts.Elapsed.Seconds(), gs.Elapsed.Seconds())

	ti := tm.RunSelect(tr, onePct, teradata.IndexScan, false)
	gi := gm.RunSelect(gamma.SelectQuery{Scan: gamma.ScanSpec{Rel: gr, Pred: onePct, Path: gamma.PathNonClustered}})
	fmt.Printf("%-34s %13.2fs %13.2fs\n", "1% via non-clustered index", ti.Elapsed.Seconds(), gi.Elapsed.Seconds())

	gc := gm.RunSelect(gamma.SelectQuery{
		Scan: gamma.ScanSpec{Rel: gr, Pred: gamma.Between(gamma.Unique1, 0, n/100-1), Path: gamma.PathClustered},
	})
	fmt.Printf("%-34s %14s %13.2fs   (no clustered indices on the DBC/1012, §3)\n",
		"1% via clustered index", "-", gc.Elapsed.Seconds())

	tt := tm.RunSelect(tr, gamma.Eq(gamma.Unique1, n/2), teradata.HashAccess, true)
	gt := gm.RunSelect(gamma.SelectQuery{
		Scan:   gamma.ScanSpec{Rel: gr, Pred: gamma.Eq(gamma.Unique1, n/2), Path: gamma.PathClustered},
		ToHost: true,
	})
	fmt.Printf("%-34s %13.2fs %13.2fs\n", "single-tuple select", tt.Elapsed.Seconds(), gt.Elapsed.Seconds())
}
