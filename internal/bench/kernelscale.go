package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

func init() {
	register("kernelscale", "EOT kernel scaling: window occupancy and speedup across hardware generations", runKernelScale)
}

// kscalePoint is one (generation, worker count) kernel run: the deterministic
// simulation outcome plus the host wall time it took to compute it.
type kscalePoint struct {
	events int64
	end    sim.Time
	wall   time.Duration
	ws     sim.WindowStats
}

// buildScaleRing wires a synthetic token ring tuned to stress the window
// scheduler rather than the Gamma model: nodes shards, one token starting on
// each, every token making hops trips to its successor. A token's arrival
// triggers a burst of work events one microsecond apart — the shard promises
// the burst up front (it provably sends nothing until the last event) — and
// the final event forwards the token across the ring channel, whose delivery
// floor is the generation's network latency. The declared lookahead is a
// deliberately useless 1µs: every usable window comes from the promises and
// the per-channel floors, which is exactly the regime a fast fabric puts the
// kernel in.
func buildScaleRing(s *sim.Sim, nodes, hops, work int, floor sim.Dur) {
	shards := make([]*sim.Shard, nodes)
	for i := range shards {
		if i == 0 {
			shards[i] = s.DefaultShard()
		} else {
			shards[i] = s.AddShard()
		}
	}
	for i, sh := range shards {
		next := shards[(i+1)%nodes]
		sh.SetOutFloor(floor) // the ring channel is this shard's only exit
		sh.SetChannelFloor(next, floor)
	}
	var hop func(i, remaining int) func()
	hop = func(i, remaining int) func() {
		return func() {
			sh := shards[i]
			// The burst's first event fires at the arrival instant, so the
			// forwarding send initiates work-1 steps from now — promise
			// exactly that, making the whole burst one window.
			sh.Promise(sh.Now() + sim.Dur(work-1))
			n := work
			var step func()
			step = func() {
				n--
				if n > 0 {
					sh.After(1, step)
				} else if remaining > 0 {
					next := (i + 1) % nodes
					sh.Send(shards[next], sh.Now()+floor, hop(next, remaining-1))
				}
			}
			step()
		}
	}
	// All tokens launch in phase: arrivals then land in shared cohorts, so
	// one barrier serves the whole ring per hop instead of one per straggler.
	for i := range shards {
		shards[i].At(0, hop(i, hops))
	}
}

// kprobePoint is one real-query probe run: the ring point's fields plus the
// query's simulated elapsed time.
type kprobePoint struct {
	kscalePoint
	elapsed sim.Dur
}

// kscaleRealProbe runs one real Gamma query — a 10% non-indexed selection on
// an 8-node machine — under a pinned kernel configuration, independent of the
// suite's kernel knobs. The synthetic ring above reports occupancy near 1.0
// because every shard hosts a token; a real Gamma query leaves most nodes
// idle most rounds (operators finish at different instants, the host
// serializes scheduling), which is the regime the adaptive fusion policy
// exists for. workers <= 1 is the serial oracle; fused and unfused w4 runs
// must reproduce its event count, end time, and query elapsed exactly.
func kscaleRealProbe(o Options, prm config.Params, tuples, workers int, f sim.Fusion) kprobePoint {
	spec := heapRel("Kprobe", tuples, 11)
	build := func(s *sim.Sim) *core.Machine {
		m := core.NewMachine(s, &prm, 8, 0)
		loadSpecRel(m, spec)
		return m
	}
	var ev atomic.Int64
	var wc sim.WindowCounters
	s := sim.New()
	s.Partition(prm.Net.MinLatency)
	s.SetWorkers(workers)
	s.SetFusion(f)
	s.SetEventCounter(&ev)
	s.SetWindowCounters(&wc)
	var m *core.Machine
	setupStart := time.Now()
	if o.images != nil {
		key := imageKey{nDisk: 8, prm: prm, rels: relsKey([]relSpec{spec})}
		snap, hit := o.images.get(key, func() *core.Snapshot {
			return build(sim.New()).Snapshot()
		})
		o.noteImage(hit)
		m = core.RestoreMachine(s, snap)
	} else {
		m = build(s)
	}
	o.addSetup(setupStart)
	r, ok := m.Relation(spec.name)
	if !ok {
		panic("kernelscale: probe relation missing from machine image")
	}
	start := time.Now()
	res := m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: r, Pred: pct(rel.Unique2, tuples, 10), Path: core.PathHeap},
	})
	wall := time.Since(start)
	if res.Err != nil {
		panic(fmt.Sprintf("kernelscale: probe query failed: %v", res.Err))
	}
	if o.events != nil {
		o.events.Add(ev.Load())
	}
	if o.windows != nil {
		o.windows.Add(wc.Stats())
	}
	return kprobePoint{
		kscalePoint: kscalePoint{events: ev.Load(), end: s.Now(), wall: wall, ws: wc.Stats()},
		elapsed:     res.Elapsed,
	}
}

// runKernelScale sweeps the EOT window scheduler across the hardware
// generations and worker counts on the synthetic ring above. The serial
// kernel (one worker) is the oracle and the baseline; two- and four-worker
// runs must execute the identical event count and reach the identical end
// time, and their host wall times yield the speedup metrics. On gamma1988
// the 4.3ms network floor alone grants enormous windows; on rdma the static
// floor is 2µs and every window the scheduler finds comes from promises and
// earliest output times — the case PR 8's static-lookahead kernel
// degenerated to near-serial on.
func runKernelScale(o Options) *Table {
	gens := config.Generations()
	workersList := []int{1, 2, 4}
	nV := len(workersList)

	nodes := 8 * o.MaxProcs
	if nodes < 16 {
		nodes = 16
	}
	if nodes > 64 {
		nodes = 64
	}
	hops := o.FigureTuples / 100
	if hops < 8 {
		hops = 8
	}
	if hops > 400 {
		hops = 400
	}
	const work = 24

	// Real-query probes: the same generations, but running an actual Gamma
	// selection instead of the synthetic ring — serial oracle, unfused w4,
	// and adaptive w4. Pinned kernel configurations, so these rows are
	// byte-identical whatever kernel the suite itself runs on.
	probeTuples := o.FigureTuples
	if probeTuples > 20000 {
		probeTuples = 20000
	}
	probeCfgs := []struct {
		name    string
		workers int
		f       sim.Fusion
	}{
		{"w1", 1, sim.Fusion{Off: true}},
		{"w4-unfused", 4, sim.Fusion{Off: true}},
		{"w4-adaptive", 4, sim.Fusion{}},
	}
	nP := len(probeCfgs)

	pts := parMap(o, len(gens)*nV, func(i int) kscalePoint {
		gen, v := gens[i/nV], i%nV
		prm := gen.Params()
		var ev atomic.Int64
		var wc sim.WindowCounters
		s := sim.New()
		s.Partition(1)
		s.SetWorkers(workersList[v])
		s.SetEventCounter(&ev)
		s.SetWindowCounters(&wc)
		buildScaleRing(s, nodes, hops, work, prm.Net.MinLatency)
		start := time.Now()
		end := s.Run()
		wall := time.Since(start)
		if o.events != nil {
			o.events.Add(ev.Load())
		}
		if o.windows != nil {
			o.windows.Add(wc.Stats())
		}
		return kscalePoint{events: ev.Load(), end: end, wall: wall, ws: wc.Stats()}
	})

	probes := parMap(o, len(gens)*nP, func(i int) kprobePoint {
		gen, c := gens[i/nP], probeCfgs[i%nP]
		return kscaleRealProbe(o, gen.Params(), probeTuples, c.workers, c.f)
	})

	t := &Table{
		ID:      "kernelscale",
		Title:   fmt.Sprintf("EOT kernel scaling (%d-shard ring, %d-event bursts)", nodes, work),
		Unit:    "counts at 4 workers (wall speedups in metrics: wall_*/speedup_*)",
		Columns: []string{"events", "simulated s", "windows", "occupancy", "events/window", "promises"},
		Metrics: map[string]float64{},
	}
	for gi, gen := range gens {
		base := pts[gi*nV] // one worker: the serial oracle
		for v := 1; v < nV; v++ {
			pt := pts[gi*nV+v]
			if pt.events != base.events || pt.end != base.end {
				panic(fmt.Sprintf("kernelscale: %s at %d workers diverged from the serial oracle: %d events to %v vs %d to %v",
					gen.Name, workersList[v], pt.events, pt.end, base.events, base.end))
			}
		}
		p4 := pts[gi*nV+nV-1]
		epw := 0.0
		if p4.ws.Windows > 0 {
			epw = float64(p4.ws.WindowEvents) / float64(p4.ws.Windows)
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%s: %s", gen.Name, gen.Desc), Cells: []Cell{
			{Measured: float64(base.events)},
			{Measured: float64(base.end) / 1e6},
			{Measured: float64(p4.ws.Windows)},
			{Measured: p4.ws.Occupancy()},
			{Measured: epw},
			{Measured: float64(p4.ws.Promises)},
		}})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: channel floor %v; %d windows at occupancy %.0f%%, %.0f events/window",
			gen.Name, gen.Params().Net.MinLatency, p4.ws.Windows, 100*p4.ws.Occupancy(), epw))

		t.Metrics["events_"+gen.Name] = float64(base.events)
		t.Metrics[fmt.Sprintf("windows_%s_w4", gen.Name)] = float64(p4.ws.Windows)
		t.Metrics[fmt.Sprintf("occupancy_%s_w4", gen.Name)] = p4.ws.Occupancy()
		t.Metrics[fmt.Sprintf("events_per_window_%s_w4", gen.Name)] = epw
		t.Metrics[fmt.Sprintf("promises_%s_w4", gen.Name)] = float64(p4.ws.Promises)
		for v, w := range workersList {
			t.Metrics[fmt.Sprintf("wall_%s_w%d", gen.Name, w)] = pts[gi*nV+v].wall.Seconds()
			if v > 0 && pts[gi*nV+v].wall > 0 {
				t.Metrics[fmt.Sprintf("speedup_%s_w%d", gen.Name, w)] =
					base.wall.Seconds() / pts[gi*nV+v].wall.Seconds()
			}
		}
	}
	// Real-query rows: occupancy and fusion activity on an actual Gamma
	// selection, where most shards sit idle most rounds — the regime the
	// synthetic ring's near-1.0 occupancy hides.
	for gi, gen := range gens {
		oracle := probes[gi*nP]
		unfused, adaptive := probes[gi*nP+1], probes[gi*nP+2]
		for v := 1; v < nP; v++ {
			pp := probes[gi*nP+v]
			if pp.events != oracle.events || pp.end != oracle.end || pp.elapsed != oracle.elapsed {
				panic(fmt.Sprintf("kernelscale: %s real probe (%s) diverged from the serial oracle: %d events to %v (query %v) vs %d to %v (query %v)",
					gen.Name, probeCfgs[v].name, pp.events, pp.end, pp.elapsed, oracle.events, oracle.end, oracle.elapsed))
			}
		}
		epw := 0.0
		if adaptive.ws.Windows > 0 {
			epw = float64(adaptive.ws.WindowEvents) / float64(adaptive.ws.Windows)
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%s: real query (8-node 10%% selection)", gen.Name),
			Cells: []Cell{
				{Measured: float64(oracle.events)},
				{Measured: float64(oracle.elapsed) / 1e6},
				{Measured: float64(adaptive.ws.Windows)},
				{Measured: adaptive.ws.Occupancy()},
				{Measured: epw},
				{Measured: float64(adaptive.ws.Promises)},
			},
		})
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s real probe: occupancy %.0f%% adaptive vs %.0f%% unfused (ring: %.0f%%), %.1f events/window, %d fuse / %d split ops",
			gen.Name, 100*adaptive.ws.Occupancy(), 100*unfused.ws.Occupancy(),
			100*pts[gi*nV+nV-1].ws.Occupancy(), epw, adaptive.ws.FuseOps, adaptive.ws.SplitOps))

		t.Metrics["real_events_"+gen.Name] = float64(oracle.events)
		t.Metrics[fmt.Sprintf("real_windows_%s_w4", gen.Name)] = float64(adaptive.ws.Windows)
		t.Metrics[fmt.Sprintf("real_occupancy_%s_w4", gen.Name)] = adaptive.ws.Occupancy()
		t.Metrics[fmt.Sprintf("real_occupancy_unfused_%s_w4", gen.Name)] = unfused.ws.Occupancy()
		t.Metrics[fmt.Sprintf("real_events_per_window_%s_w4", gen.Name)] = epw
		t.Metrics[fmt.Sprintf("real_fuse_ops_%s_w4", gen.Name)] = float64(adaptive.ws.FuseOps)
		t.Metrics[fmt.Sprintf("real_split_ops_%s_w4", gen.Name)] = float64(adaptive.ws.SplitOps)
		for v, c := range probeCfgs {
			t.Metrics[fmt.Sprintf("wall_real_%s_%s", gen.Name, c.name)] = probes[gi*nP+v].wall.Seconds()
		}
	}
	t.Notes = append(t.Notes,
		"One worker runs the serial oracle; multi-worker runs must match its event count and end time exactly.",
		"Real-query rows run a pinned 8-node Gamma selection per kernel config; cells report the adaptive-fusion w4 run.",
		"Table cells and metrics are deterministic except wall_*/speedup_*, which measure host wall time.")
	return t
}
