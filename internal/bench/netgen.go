package bench

import (
	"fmt"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
)

func init() {
	registerWindowed("netgen", "Hardware generations: the binding resource migrates as network/CPU/disk evolve", runNetgen)
}

// netgenPoint is one (generation, query) measurement: simulated seconds plus
// the bottleneck classification of the query's trace span.
type netgenPoint struct {
	secs    float64
	binding string
	res     string
	util    float64
}

// bindRank orders resource classes along the migration axis the experiment
// narrates: disk-bound → network-bound → compute/control-bound.
func bindRank(class string) float64 {
	switch class {
	case "disk":
		return 0
	case "nic":
		return 1
	case "ring":
		return 2
	case "cpu":
		return 3
	case "ctl":
		return 4
	}
	return -1
}

// runNetgen sweeps the named hardware generations (1988 Gamma, a
// GbE/SSD-era build, an RDMA-era build) through the Table 1 selections and
// the joinABprime join on the standard 8+8 machine, tracing each query and
// reporting which resource class bound it. The point of the sweep is the
// migration: the 1988 generation saturates its disks on selections and a
// worker CPU on the join (the §6.2 diagnosis); the faster generations
// collapse disk and wire until the host's serialized control/collection
// path is what binds (§5.2/§6.2 extrapolated forward).
func runNetgen(o Options) *Table {
	gens := config.Generations()
	queries := []string{"1% nonindexed selection", "10% nonindexed selection", "joinABprime (Remote)"}
	nQ := len(queries)

	pts := parMap(o, len(gens)*nQ, func(i int) netgenPoint {
		gen, q := gens[i/nQ], i%nQ
		prm := gen.Params()
		po := o
		po.Params = &prm
		n := o.FigureTuples
		g := newGamma(po, 8, 8, n, 1, heapRel("Bprime", n/10, 7))
		g.m.EnableTrace()
		var res core.Result
		switch q {
		case 0:
			res = g.m.RunSelect(core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique1, n, 1), Path: core.PathHeap}})
		case 1:
			res = g.m.RunSelect(core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique1, n, 10), Path: core.PathHeap}})
		default:
			bp := g.rel("Bprime")
			res = g.m.RunJoin(core.JoinQuery{
				Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique1,
				Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique1,
				Mode:            core.Remote,
				MemPerJoinBytes: ampleJoinMemory,
			})
		}
		pt := netgenPoint{secs: res.Elapsed.Seconds()}
		if res.Diag != nil {
			pt.binding, pt.res, pt.util = res.Diag.Binding, res.Diag.Res, res.Diag.Util
		}
		return pt
	})

	t := &Table{
		ID:      "netgen",
		Title:   "Binding resource by hardware generation (8+8 processors)",
		Unit:    "seconds (annotation = binding resource class)",
		Columns: queries,
		Metrics: map[string]float64{},
	}
	for gi, gen := range gens {
		row := Row{Label: fmt.Sprintf("%s: %s", gen.Name, gen.Desc)}
		var note string
		for q := range queries {
			pt := pts[gi*nQ+q]
			row.Cells = append(row.Cells, Cell{Measured: pt.secs, Extra: pt.binding})
			if note != "" {
				note += ", "
			}
			note += fmt.Sprintf("%s %s-bound (%s %.0f%%)", queries[q], pt.binding, pt.res, 100*pt.util)
			t.Metrics[fmt.Sprintf("bind_%s_q%d", gen.Name, q)] = bindRank(pt.binding)
		}
		t.Rows = append(t.Rows, row)
		t.Notes = append(t.Notes, gen.Name+": "+note)
	}
	t.Notes = append(t.Notes,
		"Migration: gamma1988 binds on its disks (selections) and a worker CPU (join, §6.2);",
		"faster generations collapse disk and wire, leaving the host's serialized control/collection path binding.")
	return t
}
