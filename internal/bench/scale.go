package bench

// The 100+-node scale experiment the partitioned kernel exists for: the
// paper's speedup and scaleup curves stop at 30 processors because the real
// Gamma did, and our reproduction previously stopped near the same scale
// because one serial event loop made larger clusters wall-clock-prohibitive.
// With the kernel sharded per node, the same machine model runs at 64, 128,
// and 256 simulated processors — the regime the follow-on literature
// (Rödiger et al.'s high-speed networks, Hespe et al.'s cluster OLAP)
// studies.

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/rel"
)

func init() {
	register("scale100", "Speedup and scaleup at 64/128/256 processors (beyond the paper's 30)", runScale100)
}

// scaleNodes are the cluster sizes of the scale experiment.
var scaleNodes = []int{64, 128, 256}

// runScale100 extends the paper's §5 speedup and scaleup methodology past
// its 30-processor ceiling: a fixed-size 1% non-indexed selection as the
// cluster grows (speedup), and a constant tuples-per-processor selection
// (scaleup). Both series run the standard Gamma machine model — one
// simulation shard per node on the partitioned kernel — with the 64-node
// row as the baseline. The headline measurement is negative, and honestly
// so: Gamma's serialized per-site query initiation, invisible at the
// paper's 30 processors, dominates at 100+ sites and inverts both curves
// (see the table notes).
func runScale100(o Options) *Table {
	t := &Table{
		ID:      "scale100",
		Title:   "Speedup and scaleup at 64-256 processors (1% nonindexed selection)",
		Unit:    "seconds",
		Columns: []string{"fixed DB", "speedup vs 64", "per-proc DB", "scaleup vs 64"},
		Metrics: map[string]float64{},
	}
	// Fixed database for the speedup series; per-processor density for the
	// scaleup series. The fixed database is 8x the figure size so per-site
	// fragments stay scan-dominated out to 256 sites (at the figure size
	// itself, per-site startup swamps a sub-page fragment and the curve
	// inverts). Quick options: 160,000 total and 500 per processor.
	totalN := o.FigureTuples * 8
	perProc := o.FigureTuples / 40
	if perProc < 500 {
		perProc = 500
	}
	type point struct {
		fixed, scaled float64
	}
	pts := parMap(o, len(scaleNodes), func(i int) point {
		d := scaleNodes[i]
		// Speedup: the same totalN-tuple relation declustered over d sites.
		gf := setupScale(o, d, totalN)
		fixed := gf.selectSecs(core.SelectQuery{
			Scan: core.ScanSpec{Rel: gf.rel("S"), Pred: pct(rel.Unique2, totalN, 1), Path: core.PathHeap},
		})
		// Scaleup: the database grows with the machine.
		ns := perProc * d
		gs := setupScale(o, d, ns)
		scaled := gs.selectSecs(core.SelectQuery{
			Scan: core.ScanSpec{Rel: gs.rel("S"), Pred: pct(rel.Unique2, ns, 1), Path: core.PathHeap},
		})
		return point{fixed: fixed, scaled: scaled}
	})
	for i, d := range scaleNodes {
		speedup := pts[0].fixed / pts[i].fixed
		scaleup := pts[0].scaled / pts[i].scaled
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d processors", d),
			Cells: []Cell{
				{Measured: pts[i].fixed},
				{Measured: speedup},
				{Measured: pts[i].scaled},
				{Measured: scaleup},
			},
		})
		t.Metrics[fmt.Sprintf("speedup_%d", d)] = speedup
		t.Metrics[fmt.Sprintf("scaleup_%d", d)] = scaleup
	}
	t.Notes = append(t.Notes,
		"Speedup normalizes to the 64-processor row (the paper's Figure 2 methodology, 2-8x its scale);",
		"scaleup holds tuples per processor constant, so a flat column (ratio near 1) is perfect.",
		"Measured result: both curves invert past 64 sites — the initiation wall. The 0.6-MIPS",
		"scheduler dispatches 4 control messages per operator per site (§6.2.3) serially, ~60 ms of",
		"scheduler CPU per site, which overtakes any feasible per-site scan beyond the paper's scale.",
		"This is §5's 'query initiation grows with the number of sites' extrapolated to where it bites,",
		"and exactly the coordination cost the 100+-node literature (PAPERS.md) redesigns away.")
	return t
}

// setupScale builds a d-disk-site machine loaded with one n-tuple heap
// relation (no diskless sites, no indexes — the lean geometry that keeps a
// 256-node machine cheap to image).
func setupScale(o Options, d, n int) *gammaSetup {
	return &gammaSetup{m: o.gammaMachine(d, 0, false, []relSpec{heapRel("S", n, 1)})}
}
