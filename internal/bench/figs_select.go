package bench

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/rel"
)

func init() {
	registerWindowed("fig1", "Non-indexed selections vs processors (Figure 1)", runFig1)
	registerWindowed("fig2", "Speedup of non-indexed selections (Figure 2)", runFig2)
	registerWindowed("fig3", "Indexed selections vs processors (Figure 3)", runFig3)
	registerWindowed("fig4", "Speedup of indexed selections (Figure 4)", runFig4)
	registerWindowed("fig5", "Non-indexed selections vs disk page size (Figure 5)", runFig5)
	registerWindowed("fig6", "Speedup vs disk page size, non-indexed (Figure 6)", runFig6)
	registerWindowed("fig7", "Indexed selections vs disk page size (Figure 7)", runFig7)
	registerWindowed("fig8", "Speedup vs disk page size, indexed (Figure 8)", runFig8)
}

// fig1Curves are the non-indexed selectivities of Figures 1-2.
var fig1Curves = []float64{0, 1, 10}

// fig1Data measures response time for each (processors, selectivity) point.
func fig1Data(o Options) (procs []int, data map[float64][]float64) {
	// Every processor count is an independent machine — fan the points out.
	pts := parMap(o, o.MaxProcs, func(i int) []float64 {
		d := i + 1
		g := newGamma(o, d, d, o.FigureTuples, 1)
		out := make([]float64, len(fig1Curves))
		for ci, sel := range fig1Curves {
			out[ci] = g.selectSecs(core.SelectQuery{
				Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, o.FigureTuples, sel), Path: core.PathHeap},
			})
		}
		return out
	})
	data = map[float64][]float64{}
	for i, pt := range pts {
		procs = append(procs, i+1)
		for ci, sel := range fig1Curves {
			data[sel] = append(data[sel], pt[ci])
		}
	}
	return procs, data
}

func selCols(sels []float64) []string {
	var cols []string
	for _, s := range sels {
		cols = append(cols, fmt.Sprintf("%g%% sel", s))
	}
	return cols
}

func curveTable(id, title, rowUnit string, rowLabels []string, cols []string, series [][]float64, notes []string) *Table {
	t := &Table{ID: id, Title: title, Unit: rowUnit, Columns: cols, Notes: notes}
	for i, lbl := range rowLabels {
		row := Row{Label: lbl}
		for _, s := range series {
			row.Cells = append(row.Cells, Cell{Measured: s[i]})
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func procLabels(procs []int) []string {
	var out []string
	for _, d := range procs {
		out = append(out, fmt.Sprintf("%d processors with disks", d))
	}
	return out
}

func runFig1(o Options) *Table {
	procs, data := fig1Data(o)
	var series [][]float64
	for _, sel := range fig1Curves {
		series = append(series, data[sel])
	}
	return curveTable("fig1", fmt.Sprintf("Non-indexed selections on the %d-tuple relation", o.FigureTuples),
		"seconds", procLabels(procs), selCols(fig1Curves), series,
		[]string{"Expected shape: response time falls hyperbolically with processors (paper Figure 1)."})
}

// speedups converts a response-time series to speedup relative to its first
// point (optionally scaled so the reference point has the given value).
func speedups(times []float64, refIdx int, refValue float64) []float64 {
	out := make([]float64, len(times))
	for i, v := range times {
		if v > 0 {
			out[i] = refValue * times[refIdx] / v
		}
	}
	return out
}

func runFig2(o Options) *Table {
	procs, data := fig1Data(o)
	var series [][]float64
	for _, sel := range fig1Curves {
		series = append(series, speedups(data[sel], 0, 1))
	}
	return curveTable("fig2", "Speedup of non-indexed selections (1-processor reference)",
		"speedup", procLabels(procs), selCols(fig1Curves), series,
		[]string{
			"Expected shape: near-linear speedup; the 10% curve trails because short-circuiting",
			"diminishes as processors are added and the Unibus path to the network saturates (§5.2.1).",
		})
}

// fig3Curves: the indexed selections of Figures 3-4.
type idxCurve struct {
	name string
	run  func(g *gammaSetup, n int) float64
}

var fig3Curves = []idxCurve{
	{"1% clustered idx", func(g *gammaSetup, n int) float64 {
		return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 1), Path: core.PathClustered}})
	}},
	{"10% clustered idx", func(g *gammaSetup, n int) float64 {
		return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 10), Path: core.PathClustered}})
	}},
	{"1% non-clustered idx", func(g *gammaSetup, n int) float64 {
		return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique2, n, 1), Path: core.PathNonClustered}})
	}},
	{"0% non-clustered idx", func(g *gammaSetup, n int) float64 {
		return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique2, n, 0), Path: core.PathNonClustered}})
	}},
}

func fig3Data(o Options) (procs []int, series [][]float64) {
	pts := parMap(o, o.MaxProcs, func(i int) []float64 {
		d := i + 1
		g := newGamma(o, d, d, o.FigureTuples, 1)
		out := make([]float64, len(fig3Curves))
		for ci, c := range fig3Curves {
			out[ci] = c.run(g, o.FigureTuples)
		}
		return out
	})
	series = make([][]float64, len(fig3Curves))
	for i, pt := range pts {
		procs = append(procs, i+1)
		for ci := range fig3Curves {
			series[ci] = append(series[ci], pt[ci])
		}
	}
	return procs, series
}

func idxCols() []string {
	var out []string
	for _, c := range fig3Curves {
		out = append(out, c.name)
	}
	return out
}

func runFig3(o Options) *Table {
	procs, series := fig3Data(o)
	return curveTable("fig3", "Indexed selections vs processors", "seconds",
		procLabels(procs), idxCols(), series,
		[]string{"Expected shape: the 0% non-clustered curve RISES with processors — operator",
			"initiation outweighs the 1-2 I/Os of an empty index probe (§5.2.1, 0.25s -> 0.58s)."})
}

func runFig4(o Options) *Table {
	procs, series := fig3Data(o)
	var sp [][]float64
	for _, s := range series {
		sp = append(sp, speedups(s, 0, 1))
	}
	return curveTable("fig4", "Speedup of indexed selections (1-processor reference)", "speedup",
		procLabels(procs), idxCols(), sp,
		[]string{"Expected shape: only the 1% non-clustered selection comes close to linear speedup;",
			"10% clustered saturates the network interface; 0% degrades below 1 (§5.2.1)."})
}

// --- page-size sweeps (Figures 5-8) --------------------------------------

var pageSizes = []int{2048, 4096, 8192, 16384, 32768}

func pageLabels() []string {
	var out []string
	for _, s := range pageSizes {
		out = append(out, fmt.Sprintf("%d KB pages", s/1024))
	}
	return out
}

var fig5Curves = []float64{0, 1, 10, 100}

func fig5Data(o Options) [][]float64 {
	pts := parMap(o, len(pageSizes), func(i int) []float64 {
		g := newGamma(o.withPage(pageSizes[i]), 8, 8, o.FigureTuples, 1)
		out := make([]float64, len(fig5Curves))
		for ci, sel := range fig5Curves {
			out[ci] = g.selectSecs(core.SelectQuery{
				Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, o.FigureTuples, sel), Path: core.PathHeap},
			})
		}
		return out
	})
	series := make([][]float64, len(fig5Curves))
	for _, pt := range pts {
		for ci := range fig5Curves {
			series[ci] = append(series[ci], pt[ci])
		}
	}
	return series
}

func runFig5(o Options) *Table {
	return curveTable("fig5", "Non-indexed selections vs disk page size (8 processors)", "seconds",
		pageLabels(), selCols(fig5Curves), fig5Data(o),
		[]string{"Expected shape: disk-bound at 2 KB pages, CPU-bound by 16 KB; beyond 8 KB the",
			"gain is small, and the 10%/100% curves trail as the network interface saturates (§5.2.2)."})
}

func runFig6(o Options) *Table {
	var sp [][]float64
	for _, s := range fig5Data(o) {
		sp = append(sp, speedups(s, 0, 1))
	}
	return curveTable("fig6", "Speedup vs disk page size, non-indexed (2 KB reference)", "speedup",
		pageLabels(), selCols(fig5Curves), sp, nil)
}

var fig7Curves = []idxCurve{
	fig3Curves[0], // 1% clustered
	fig3Curves[1], // 10% clustered
	fig3Curves[2], // 1% non-clustered
}

func fig7Data(o Options) [][]float64 {
	pts := parMap(o, len(pageSizes), func(i int) []float64 {
		g := newGamma(o.withPage(pageSizes[i]), 8, 8, o.FigureTuples, 1)
		out := make([]float64, len(fig7Curves))
		for ci, c := range fig7Curves {
			out[ci] = c.run(g, o.FigureTuples)
		}
		return out
	})
	series := make([][]float64, len(fig7Curves))
	for _, pt := range pts {
		for ci := range fig7Curves {
			series[ci] = append(series[ci], pt[ci])
		}
	}
	return series
}

func fig7Cols() []string {
	var out []string
	for _, c := range fig7Curves {
		out = append(out, c.name)
	}
	return out
}

func runFig7(o Options) *Table {
	return curveTable("fig7", "Indexed selections vs disk page size (8 processors)", "seconds",
		pageLabels(), fig7Cols(), fig7Data(o),
		[]string{"Expected shape: larger pages DEGRADE the 1% non-clustered selection (every tuple",
			"costs two index pages plus one data page, and transfer time grows); the clustered",
			"10% improves; clustered 1% worsens slightly past 16 KB (§5.2.2)."})
}

func runFig8(o Options) *Table {
	var sp [][]float64
	for _, s := range fig7Data(o) {
		sp = append(sp, speedups(s, 0, 1))
	}
	return curveTable("fig8", "Speedup vs disk page size, indexed (2 KB reference)", "speedup",
		pageLabels(), fig7Cols(), sp, nil)
}
