// Package bench regenerates every table and figure of the paper's
// evaluation (§5-§7): it builds the benchmark database on simulated Gamma
// and Teradata machines, runs the exact query suites, and renders the same
// rows and series the paper reports, with the paper's published numbers
// alongside for comparison.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// Options scales an experiment run.
type Options struct {
	// Sizes are the source-relation cardinalities for Tables 1-3. The
	// paper uses 10,000 / 100,000 / 1,000,000.
	Sizes []int
	// FigureTuples is the relation size for the figure sweeps (the paper
	// uses the 100,000-tuple relations).
	FigureTuples int
	// MaxProcs is the largest processor count in the speedup sweeps.
	MaxProcs int
	// Params overrides the default machine parameters.
	Params *config.Params
	// Workers is the worker-slot count RunSuite was started with (1 when
	// serial). Experiments normally don't read it — parMap consults the
	// semaphore directly — but it is visible for reporting.
	Workers int

	// Kernel selects the simulation kernel: "serial" (or empty, the
	// default) runs each machine on the single-heap serial kernel;
	// "partitioned" builds each machine on a partitioned simulation with
	// one shard per node. The Gamma network model interacts across nodes
	// at the same simulated instant, so its partition declares lookahead
	// 0 and executes serialized in merged global order — byte-identical
	// to the serial kernel, which stays available as the oracle. The
	// GAMMA_KERNEL environment variable overrides an empty Kernel.
	Kernel string
	// KernelWorkers is the worker-goroutine budget a partitioned
	// simulation may use for conservative windows (effective with positive
	// lookahead). GAMMA_KERNEL_WORKERS overrides zero.
	KernelWorkers int
	// Lookahead controls the conservative-window lookahead of windowed
	// experiments: 0 derives it from the network's delivery-latency floor
	// (Net.MinLatency, the largest value the model can prove safe), a
	// positive value is used as-is but capped at that floor, and a negative
	// value forces lookahead 0 (fully serialized scheduling, the
	// pre-windowing kernel behavior). The GAMMA_LOOKAHEAD environment
	// variable overrides zero: unset/empty = derive, "0" or negative =
	// force serialized, positive = explicit µs. Only experiments that have
	// opted into windowed execution are affected.
	Lookahead sim.Dur
	// Fusion selects the partitioned kernel's adaptive shard-fusion mode:
	// "adaptive" (or empty, the default) engages the feedback policy that
	// coalesces shards when barrier rounds run thin and re-splits them when
	// traffic returns; "off" pins one shard per group (the pre-fusion
	// scheduler); "all" starts fully fused and lets the policy probe its
	// way back out. The GAMMA_FUSION environment variable overrides an
	// empty value.
	Fusion string

	// windowedOK marks the experiment as safe for positive-lookahead
	// windowed execution: its Gamma workload routes every cross-node
	// interaction through the nose latency floor. Experiments that inject
	// faults, share machines across concurrent queries, or build Teradata
	// machines leave it false and always run at lookahead 0.
	windowedOK bool

	// CampaignSeed seeds the availability experiment's generated fault
	// campaign (0 selects the default seed) and CampaignFaults sets how
	// many faults it injects per row (0 selects the default count). Same
	// seed, same campaign, byte-identical report.
	CampaignSeed   uint64
	CampaignFaults int

	// sem is the suite-wide worker-slot semaphore shared by RunSuite and
	// parMap; nil means serial. events, when set, accumulates the number of
	// simulated events across every machine the experiment builds, and
	// windows the partitioned kernel's EOT window-scheduler statistics.
	sem     chan struct{}
	events  *atomic.Int64
	windows *sim.WindowCounters

	// images is the suite-wide machine-image cache (see imagecache.go);
	// nil means every data point builds its database from scratch, which is
	// the reference the cached path must match byte-for-byte. setup
	// accumulates machine-build wall time (nanoseconds) and imgHits /
	// imgMisses the cache counters, all per experiment.
	images             *imageCache
	setup              *atomic.Int64
	imgHits, imgMisses *atomic.Int64
}

// addSetup charges the time since start to the experiment's setup clock.
func (o Options) addSetup(start time.Time) {
	if o.setup != nil {
		o.setup.Add(int64(time.Since(start)))
	}
}

// noteImage records one image-cache lookup.
func (o Options) noteImage(hit bool) {
	switch {
	case hit && o.imgHits != nil:
		o.imgHits.Add(1)
	case !hit && o.imgMisses != nil:
		o.imgMisses.Add(1)
	}
}

// Full returns the paper-scale options.
func Full() Options {
	return Options{Sizes: []int{10000, 100000, 1000000}, FigureTuples: 100000, MaxProcs: 8}
}

// Quick returns reduced options for fast regression runs: Tables at 10k and
// 100k, figure sweeps on a 20,000-tuple relation.
func Quick() Options {
	return Options{Sizes: []int{10000, 100000}, FigureTuples: 20000, MaxProcs: 8}
}

func (o Options) params() config.Params {
	if o.Params != nil {
		return *o.Params
	}
	return config.Default()
}

// withPage returns a copy of o whose machine parameters use the given disk
// page size (the Figure 5-8 and §6.2.3 sweeps).
func (o Options) withPage(pageBytes int) Options {
	prm := o.params()
	prm.PageBytes = pageBytes
	o.Params = &prm
	return o
}

// kernel resolves the kernel knob: the explicit Options value, then the
// GAMMA_KERNEL environment variable, then the serial default.
func (o Options) kernel() string {
	if o.Kernel != "" {
		return o.Kernel
	}
	if k := os.Getenv("GAMMA_KERNEL"); k != "" {
		return k
	}
	return "serial"
}

// kernelWorkers resolves the window-worker budget (Options value, then
// GAMMA_KERNEL_WORKERS, then 1 = serialized).
func (o Options) kernelWorkers() int {
	if o.KernelWorkers > 0 {
		return o.KernelWorkers
	}
	if v := os.Getenv("GAMMA_KERNEL_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// fusion resolves the shard-fusion knob: the explicit Options value, then
// GAMMA_FUSION, then "adaptive".
func (o Options) fusion() string {
	if o.Fusion != "" {
		return o.Fusion
	}
	if f := os.Getenv("GAMMA_FUSION"); f != "" {
		return f
	}
	return "adaptive"
}

// fusionConfig maps the resolved knob to a kernel policy, or panics on an
// unknown mode (mirroring the kernel knob's strictness).
func (o Options) fusionConfig() sim.Fusion {
	switch f := o.fusion(); f {
	case "adaptive":
		return sim.Fusion{}
	case "off":
		return sim.Fusion{Off: true}
	case "all":
		return sim.Fusion{InitLevel: -1}
	default:
		panic(fmt.Sprintf("bench: unknown fusion mode %q (want adaptive, off, or all)", f))
	}
}

// windowed marks the experiment's machines as safe for positive-lookahead
// windows. Experiments opt in at the top of their Run functions.
func (o Options) windowed() Options {
	o.windowedOK = true
	return o
}

// serialized is the inverse: it pins the machines built from the returned
// options at lookahead 0 (Teradata models, fault injection, shared-machine
// concurrency).
func (o Options) serialized() Options {
	o.windowedOK = false
	return o
}

// lookaheadSetting resolves the raw lookahead knob: the explicit Options
// value, then GAMMA_LOOKAHEAD, then 0 (= derive).
func (o Options) lookaheadSetting() sim.Dur {
	if o.Lookahead != 0 {
		return o.Lookahead
	}
	if v := os.Getenv("GAMMA_LOOKAHEAD"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			if n <= 0 {
				return -1
			}
			return sim.Dur(n)
		}
	}
	return 0
}

// resolveLookahead returns the kernel lookahead this experiment's machines
// run at: 0 unless the experiment opted into windowed execution, otherwise
// the configured lookahead clamped to (0, Net.MinLatency]. The latency
// floor is the largest provably safe value — every remote delivery in the
// nose model arrives at least MinLatency after it was sent — and also the
// default.
func (o Options) resolveLookahead() sim.Dur {
	if !o.windowedOK {
		return 0
	}
	floor := o.params().Net.MinLatency
	if floor <= 0 {
		return 0
	}
	la := o.lookaheadSetting()
	switch {
	case la < 0:
		return 0
	case la == 0 || la > floor:
		return floor
	default:
		return la
	}
}

// newSim builds a simulator wired to the experiment's event counter, so the
// suite runner can report simulated events per second. With the
// "partitioned" kernel selected the simulation is partitioned before the
// machine is built, so nose.AddNode homes every node on its own shard; the
// lookahead is resolveLookahead's (positive only for experiments that opted
// into windowed execution). The "serial" kernel stays the oracle: for a
// windowed experiment it runs the identical partitioned simulation with one
// worker — same event-order keys, byte-identical traces — and for everything
// else the plain single-heap kernel.
func (o Options) newSim() *sim.Sim {
	s := sim.New()
	la := o.resolveLookahead()
	switch k := o.kernel(); k {
	case "serial":
		if la > 0 {
			s.Partition(la)
			s.SetWorkers(1)
		}
	case "partitioned":
		s.Partition(la)
		s.SetWorkers(o.kernelWorkers())
		s.SetFusion(o.fusionConfig())
	default:
		panic(fmt.Sprintf("bench: unknown kernel %q (want serial or partitioned)", k))
	}
	if o.events != nil {
		s.SetEventCounter(o.events)
	}
	if o.windows != nil {
		s.SetWindowCounters(o.windows)
	}
	return s
}

// Cell is one measured value with an optional published reference.
type Cell struct {
	Measured float64 // seconds (or unit of the table)
	Paper    float64 // 0 = not published
	Extra    string  // annotation such as an overflow count
}

// Row is one labelled line of a result table.
type Row struct {
	Label string
	Cells []Cell
}

// Table is one regenerated paper artifact.
type Table struct {
	ID      string
	Title   string
	Unit    string
	Columns []string
	Rows    []Row
	Notes   []string
	// Metrics are headline scalar results (throughput, speedup, counters)
	// for machine consumers: gammabench copies them into its -json report.
	// Render does not print them; the Rows already show the same data.
	Metrics map[string]float64
}

// Render writes the table as aligned text, showing measured values and, in
// brackets, the paper's published value where one exists.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Unit != "" {
		fmt.Fprintf(w, "   (values in %s; [brackets] = paper's published value)\n", t.Unit)
	}
	width := 10
	label := 46
	fmt.Fprintf(w, "%-*s", label, "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %*s", width+10, c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", label, r.Label)
		for _, c := range r.Cells {
			val := fmt.Sprintf("%.2f", c.Measured)
			if c.Extra != "" {
				val += "(" + c.Extra + ")"
			}
			ref := strings.Repeat(" ", 10)
			if c.Paper != 0 {
				ref = fmt.Sprintf("[%8.2f]", c.Paper)
			}
			fmt.Fprintf(w, " %*s%s", width, val, ref)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) *Table
}

var registry []Experiment

func register(id, title string, run func(o Options) *Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// registerWindowed registers an experiment whose Gamma machines are safe to
// run in positive-lookahead parallel windows: single-query-at-a-time
// workloads with no fault injection, where every cross-node interaction
// goes through the nose latency floor. The wrapper opts the experiment's
// options in; machines that must stay serialized inside it (Teradata
// references) opt back out individually.
func registerWindowed(id, title string, run func(o Options) *Table) {
	register(id, title, func(o Options) *Table { return run(o.windowed()) })
}

// Experiments lists all registered experiments in a stable order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- machine setup -------------------------------------------------------

// relSpec declares one relation of a machine image: everything Load needs,
// in a comparable/printable form so it can be part of an image-cache key.
type relSpec struct {
	name     string
	n        int
	seed     uint64
	strategy core.PartStrategy
	partAttr rel.Attr
	// indexed: clustered B-tree on unique1 plus a dense index on unique2
	// (the paper's "Aidx" physical version).
	indexed bool
}

// heapRel is the common case: a hash-declustered heap with no indexes.
func heapRel(name string, n int, seed uint64) relSpec {
	return relSpec{name: name, n: n, seed: seed, strategy: core.Hashed, partAttr: rel.Unique1}
}

// gammaRels is the standard benchmark database: the n-tuple relation in both
// physical versions (heap and fully indexed).
func gammaRels(n int, seed uint64) []relSpec {
	return []relSpec{
		{name: "Aheap", n: n, seed: seed, strategy: core.Hashed, partAttr: rel.Unique1},
		{name: "Aidx", n: n, seed: seed, strategy: core.Hashed, partAttr: rel.Unique1, indexed: true},
	}
}

// loadSpecRel applies one relSpec to a machine.
func loadSpecRel(m *core.Machine, rs relSpec) {
	spec := core.LoadSpec{Name: rs.name, Strategy: rs.strategy, PartAttr: rs.partAttr}
	if rs.indexed {
		u1 := rel.Unique1
		spec.ClusteredIndex = &u1
		spec.NonClusteredIndexes = []rel.Attr{rel.Unique2}
	}
	m.Load(spec, wisconsin.Generate(rs.n, rs.seed))
}

// gammaMachine returns a loaded Gamma machine on a fresh simulation. With an
// image cache (any RunSuite run) the database is built and snapshotted once
// per distinct (geometry, mirroring, params, relations) key and every other
// request restores the snapshot copy-on-write; without one (o.images == nil,
// the uncached reference path) it is built from scratch. Both paths are
// byte-identical downstream: loading is free and eventless, restores rebase
// onto sim t=0 with cold buffer pools, and file ids and name counters are
// preserved by the snapshot.
func (o Options) gammaMachine(nDisk, nDiskless int, mirrored bool, specs []relSpec) *core.Machine {
	defer o.addSetup(time.Now())
	build := func(s *sim.Sim) *core.Machine {
		p := o.params()
		m := core.NewMachine(s, &p, nDisk, nDiskless)
		if mirrored {
			m.EnableMirroring()
		}
		for _, rs := range specs {
			loadSpecRel(m, rs)
		}
		return m
	}
	if o.images == nil {
		return build(o.newSim())
	}
	key := imageKey{nDisk: nDisk, nDiskless: nDiskless, mirrored: mirrored,
		prm: o.params(), rels: relsKey(specs)}
	snap, hit := o.images.get(key, func() *core.Snapshot {
		// The image is built on a throwaway simulator: loading schedules no
		// events, so the suite's event counters see exactly what an uncached
		// run's would.
		return build(sim.New()).Snapshot()
	})
	o.noteImage(hit)
	return core.RestoreMachine(o.newSim(), snap)
}

// gammaSetup is one Gamma machine with the standard benchmark relations.
type gammaSetup struct {
	m *core.Machine
	// heap: no indices (the "nonindexed" rows). idx: clustered on
	// unique1, dense on unique2 (the indexed rows).
	heap *core.Relation
	idx  *core.Relation
}

// newGamma builds a Gamma machine with nDisk+nDiskless processors and loads
// an n-tuple relation in both physical versions, plus any extra relations —
// part of the image, so they cache with it.
func newGamma(o Options, nDisk, nDiskless, n int, seed uint64, extras ...relSpec) *gammaSetup {
	m := o.gammaMachine(nDisk, nDiskless, false, append(gammaRels(n, seed), extras...))
	return setupFrom(m)
}

func setupFrom(m *core.Machine) *gammaSetup {
	g := &gammaSetup{m: m}
	g.heap = g.rel("Aheap")
	g.idx = g.rel("Aidx")
	return g
}

// rel returns a relation loaded into the machine image by name.
func (g *gammaSetup) rel(name string) *core.Relation {
	r, ok := g.m.Relation(name)
	if !ok {
		panic("bench: relation " + name + " missing from machine image")
	}
	return r
}

// selectSecs runs a selection and returns simulated seconds, dropping the
// result relation so repeated queries don't accumulate state.
func (g *gammaSetup) selectSecs(q core.SelectQuery) float64 {
	res := g.m.RunSelect(q)
	if res.ResultName != "" {
		g.m.Drop(res.ResultName)
	}
	return res.Elapsed.Seconds()
}

// joinRun runs a join and drops its result relation.
func (g *gammaSetup) joinRun(q core.JoinQuery) core.Result {
	res := g.m.RunJoin(q)
	if res.ResultName != "" {
		g.m.Drop(res.ResultName)
	}
	return res
}

// genRel materializes an n-tuple Wisconsin relation.
func genRel(n int, seed uint64) []rel.Tuple { return wisconsin.Generate(n, seed) }

// pct builds the paper's selection predicates: percent of the n-tuple
// relation on the given attribute (0 => empty result).
func pct(attr rel.Attr, n int, percent float64) rel.Pred {
	k := int32(float64(n) * percent / 100)
	if k <= 0 {
		// 0% selection: an empty range on the same attribute, so index
		// plans still know which index to probe.
		return rel.Between(attr, -2, -1)
	}
	return rel.Between(attr, 0, k-1)
}
