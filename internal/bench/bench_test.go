package bench

import (
	"strings"
	"testing"

	"gamma/internal/rel"
)

func TestRegistryComplete(t *testing.T) {
	// Every artifact promised by DESIGN.md's per-experiment index.
	want := []string{
		"table1", "table2", "table3",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"aggregate", "hybrid", "bitvector", "pagesize-default", "multiuser", "placement", "recovery", "scaleup",
		"degraded", "scale100", "availability", "netgen", "kernelscale",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, DESIGN.md lists %d", len(Experiments()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted a bogus id")
	}
}

func TestRenderShowsPaperValues(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo", Unit: "seconds",
		Columns: []string{"a"},
		Rows:    []Row{{Label: "row", Cells: []Cell{{Measured: 1.5, Paper: 2.5, Extra: "ovf=3"}}}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "1.50", "2.50", "ovf=3", "a note", "seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestSpeedupsReference(t *testing.T) {
	times := []float64{100, 50, 25}
	sp := speedups(times, 0, 1)
	if sp[0] != 1 || sp[1] != 2 || sp[2] != 4 {
		t.Errorf("speedups = %v", sp)
	}
	// 2-processor reference scaled to 2.
	sp2 := speedups(times, 1, 2)
	if sp2[1] != 2 || sp2[2] != 4 || sp2[0] != 1 {
		t.Errorf("2-ref speedups = %v", sp2)
	}
}

func TestPctPredicates(t *testing.T) {
	if p := pct(rel.Unique2, 10000, 1); p.Lo != 0 || p.Hi != 99 || p.Attr != rel.Unique2 {
		t.Errorf("1%% pred = %+v", p)
	}
	p0 := pct(rel.Unique2, 10000, 0)
	if p0.Attr != rel.Unique2 {
		t.Error("0% pred lost its attribute (breaks indexed 0% plans)")
	}
	var tp rel.Tuple
	for v := int32(0); v < 100; v++ {
		tp.Set(rel.Unique2, v)
		if p0.Match(tp) {
			t.Fatal("0% pred matched a tuple")
		}
	}
}

func TestPaperValueTables(t *testing.T) {
	// Spot-check the transcribed published values against the paper text.
	if got := paperOf(paperTable1, "1% nonindexed selection", 100000, 1); got != 13.83 {
		t.Errorf("table1 gamma 100k 1%% = %v", got)
	}
	if got := paperOf(paperTable1, "10% nonindexed selection", 1000000, 0); got != 1106.86 {
		t.Errorf("table1 tera 1M 10%% = %v", got)
	}
	if got := paperOf(paperTable2, "joinABprime, non-key join attribute", 1000000, 1); got != 2938.2 {
		t.Errorf("table2 gamma 1M ABprime = %v", got)
	}
	if got := paperOf(paperTable3, "modify 1 tuple (key attribute)", 1000000, 0); got != 4.82 {
		t.Errorf("table3 tera 1M modify-key = %v", got)
	}
	if got := paperOf(paperTable1, "1% nonindexed selection", 12345, 1); got != 0 {
		t.Errorf("unknown size should give 0, got %v", got)
	}
}

// TestQuickExperimentsSane runs the cheapest experiments end-to-end at a
// tiny scale and validates structural properties of their outputs.
func TestQuickExperimentsSane(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	o := Options{Sizes: []int{10000}, FigureTuples: 10000, MaxProcs: 4}
	for _, id := range []string{"fig1", "fig2", "fig13", "bitvector", "multiuser"} {
		e, _ := Lookup(id)
		tbl := e.Run(o)
		if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
			t.Errorf("%s: empty table", id)
			continue
		}
		for _, r := range tbl.Rows {
			if len(r.Cells) != len(tbl.Columns) {
				t.Errorf("%s: row %q has %d cells for %d columns", id, r.Label, len(r.Cells), len(tbl.Columns))
			}
			for _, c := range r.Cells {
				if c.Measured < 0 {
					t.Errorf("%s: negative measurement in %q", id, r.Label)
				}
			}
		}
	}
}

// TestFig2SpeedupShape: the headline claim — near-linear selection speedup.
func TestFig2SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	o := Options{FigureTuples: 20000, MaxProcs: 4}
	e, _ := Lookup("fig2")
	tbl := e.Run(o)
	last := tbl.Rows[len(tbl.Rows)-1]
	for i, c := range last.Cells {
		if c.Measured < 3.2 || c.Measured > 4.0 {
			t.Errorf("speedup at 4 processors, curve %d = %.2f; want near-linear", i, c.Measured)
		}
	}
}
