package bench

// Shape-regression tests: the paper's qualitative claims about Tables 1-2
// and Figures 3-4, asserted on quick-scale runs so calibration drift fails
// tests instead of passing silently. The claims tested are orderings (who
// wins, which access path is cheaper, which curve rises), not absolute
// seconds — the shapes are what the paper's analysis hangs on.

import (
	"testing"
)

// cellsOf returns a row's cells by label.
func cellsOf(t *testing.T, tbl *Table, label string) []Cell {
	t.Helper()
	for _, r := range tbl.Rows {
		if r.Label == label {
			return r.Cells
		}
	}
	t.Fatalf("table %s has no row %q", tbl.ID, label)
	return nil
}

// teraGamma splits a Table 1/2-style row into (teradata, gamma) seconds for
// size index si (cells alternate Tera, Gamma per size).
func teraGamma(cells []Cell, si int) (tera, gamma float64) {
	return cells[2*si].Measured, cells[2*si+1].Measured
}

// TestTable1Shape asserts Table 1's qualitative claims at 10k and 100k
// tuples: Gamma beats Teradata on every selection row the paper publishes
// both numbers for, and the access paths order clustered < non-clustered <
// heap for the 1% selection.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Quick()
	tbl := runTable1(o)

	// Rows with a Teradata measurement: Gamma must win at every size
	// (the paper's Table 1 Gamma column is uniformly lower at 10k/100k).
	teraRows := []string{
		"1% nonindexed selection",
		"10% nonindexed selection",
		"1% selection using non-clustered index",
		"10% selection using non-clustered index",
		"single tuple select",
	}
	for _, label := range teraRows {
		cells := cellsOf(t, tbl, label)
		for si, n := range o.Sizes {
			tera, gamma := teraGamma(cells, si)
			if tera <= 0 || gamma <= 0 {
				t.Errorf("%s at %d tuples: non-positive times tera=%.3f gamma=%.3f", label, n, tera, gamma)
				continue
			}
			if gamma >= tera {
				t.Errorf("%s at %d tuples: Gamma %.2fs not faster than Teradata %.2fs", label, n, gamma, tera)
			}
		}
	}

	// Access-path ordering for the 1% selection (§5.1/§5.2): the clustered
	// index reads only the qualifying range, the non-clustered index pays
	// a random I/O per tuple but skips 99% of the relation, the heap scan
	// reads everything.
	clustered := cellsOf(t, tbl, "1% selection using clustered index")
	nonClustered := cellsOf(t, tbl, "1% selection using non-clustered index")
	heap := cellsOf(t, tbl, "1% nonindexed selection")
	for si, n := range o.Sizes {
		_, c := teraGamma(clustered, si)
		_, nc := teraGamma(nonClustered, si)
		_, h := teraGamma(heap, si)
		if !(c < nc && nc < h) {
			t.Errorf("1%% selection at %d tuples: want clustered < non-clustered < heap, got %.2f / %.2f / %.2f",
				n, c, nc, h)
		}
	}
}

// TestTable2Shape asserts Table 2's headline claim at 10k and 100k tuples:
// Gamma wins every join row (the 1M-tuple joinABprime rows, where overflow
// resolution hands Teradata the win, are outside Quick's sizes).
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Quick()
	tbl := runTable2(o)
	for _, r := range tbl.Rows {
		for si, n := range o.Sizes {
			tera, gamma := teraGamma(r.Cells, si)
			if tera <= 0 || gamma <= 0 {
				t.Errorf("%s at %d tuples: non-positive times tera=%.3f gamma=%.3f", r.Label, n, tera, gamma)
				continue
			}
			if gamma >= tera {
				t.Errorf("%s at %d tuples: Gamma %.2fs not faster than Teradata %.2fs", r.Label, n, gamma, tera)
			}
		}
	}
}

// TestFig4Anomaly asserts the Figure 3/4 anomaly: the 0% non-clustered
// selection's response time RISES with processors — operator initiation
// outweighs the 1-2 I/Os of an empty index probe — while the 1%
// non-clustered selection still speeds up (§5.2.1).
func TestFig4Anomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	procs, series := fig3Data(Quick())
	byName := map[string][]float64{}
	for i, c := range fig3Curves {
		byName[c.name] = series[i]
	}

	zero := byName["0% non-clustered idx"]
	if len(zero) != len(procs) {
		t.Fatalf("0%% series has %d points, want %d", len(zero), len(procs))
	}
	first, last := zero[0], zero[len(zero)-1]
	if last <= first {
		t.Errorf("0%% non-clustered selection: %d procs %.3fs -> %d procs %.3fs; want response time to RISE",
			procs[0], first, procs[len(procs)-1], last)
	}
	// The rise should be monotone-ish: no point below the 1-processor time.
	for i, v := range zero {
		if v < first {
			t.Errorf("0%% non-clustered selection dips below the 1-processor time at %d procs: %.3fs < %.3fs",
				procs[i], v, first)
		}
	}

	one := byName["1% non-clustered idx"]
	if one[len(one)-1] >= one[0] {
		t.Errorf("1%% non-clustered selection: %.3fs -> %.3fs; want speedup with processors",
			one[0], one[len(one)-1])
	}
}
