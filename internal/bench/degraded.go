package bench

import (
	"gamma/internal/core"
	"gamma/internal/fault"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

func init() {
	register("degraded", "Degraded-mode selections and join under failures", runDegraded)
}

// newGammaMirrored is newGamma with chained-declustered backups, the
// configuration the degraded-mode experiment runs in every column so the
// fault-free baseline carries the same storage layout. The three fault
// conditions of each row restore the same cached image: crashes and failover
// are post-restore toggles, not part of the image.
func newGammaMirrored(o Options, nDisk, nDiskless, n int, seed uint64, extras ...relSpec) *gammaSetup {
	m := o.gammaMachine(nDisk, nDiskless, true, append(gammaRels(n, seed), extras...))
	return setupFrom(m)
}

// runDegraded measures the Table 1 selection variants and joinAselB on a
// mirrored 8+8 machine in three conditions: fault-free, with one disk node
// already down, and with that node crashing halfway through the query. The
// paper's Gamma used chained declustering for exactly this availability
// argument; the columns quantify its mid-query cost.
func runDegraded(o Options) *Table {
	n := o.Sizes[0]
	const nDisk, nDiskless, crashSite = 8, 8, 1
	t := &Table{
		ID:      "degraded",
		Title:   "Degraded-mode execution (mirrored, 8 disk + 8 diskless processors)",
		Unit:    "seconds",
		Columns: []string{"fault-free", "node down", "mid-query crash"},
	}

	type rowSpec struct {
		label  string
		extras []relSpec
		run    func(g *gammaSetup, n int) float64
	}
	sel := func(q func(g *gammaSetup, n int) core.SelectQuery) func(g *gammaSetup, n int) float64 {
		return func(g *gammaSetup, n int) float64 { return g.selectSecs(q(g, n)) }
	}
	rows := []rowSpec{
		{"1% nonindexed selection", nil, sel(func(g *gammaSetup, n int) core.SelectQuery {
			return core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap}}
		})},
		{"10% nonindexed selection", nil, sel(func(g *gammaSetup, n int) core.SelectQuery {
			return core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}}
		})},
		{"1% selection using non-clustered index", nil, sel(func(g *gammaSetup, n int) core.SelectQuery {
			return core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique2, n, 1), Path: core.PathNonClustered}}
		})},
		{"10% selection using non-clustered index", nil, sel(func(g *gammaSetup, n int) core.SelectQuery {
			return core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}}
		})},
		{"1% selection using clustered index", nil, sel(func(g *gammaSetup, n int) core.SelectQuery {
			return core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 1), Path: core.PathClustered}}
		})},
		{"10% selection using clustered index", nil, sel(func(g *gammaSetup, n int) core.SelectQuery {
			return core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 10), Path: core.PathClustered}}
		})},
		{"single tuple select", nil, sel(func(g *gammaSetup, n int) core.SelectQuery {
			return core.SelectQuery{
				Scan:   core.ScanSpec{Rel: g.idx, Pred: rel.Eq(rel.Unique1, int32(n/2)), Path: core.PathClustered},
				ToHost: true,
			}
		})},
		{"joinAselB (10% selections)", []relSpec{heapRel("B", n, 8)}, func(g *gammaSetup, n int) float64 {
			b := g.rel("B")
			tenPct := pct(rel.Unique2, n, 10)
			res := g.joinRun(core.JoinQuery{
				Build: core.ScanSpec{Rel: b, Pred: tenPct, Path: core.PathHeap}, BuildAttr: rel.Unique2,
				Probe: core.ScanSpec{Rel: g.heap, Pred: tenPct, Path: core.PathHeap}, ProbeAttr: rel.Unique2,
				Mode:            core.Remote,
				MemPerJoinBytes: ampleJoinMemory,
			})
			return res.Elapsed.Seconds()
		}},
	}

	// Rows fan out; within a row the three conditions stay serial because
	// the crash time is derived from the fault-free response time.
	t.Rows = parMap(o, len(rows), func(i int) Row {
		r := rows[i]
		// Fault-free, failover machinery armed so its overhead is in the
		// baseline.
		g := newGammaMirrored(o, nDisk, nDiskless, n, 1, r.extras...)
		g.m.EnableFailover(0)
		ff := r.run(g, n)

		// One node already down before the query starts: every scan of its
		// fragment runs from the chained-declustered backup.
		g = newGammaMirrored(o, nDisk, nDiskless, n, 1, r.extras...)
		g.m.EnableFailover(0)
		g.m.CrashDisk(crashSite)
		down := r.run(g, n)

		// The same node crashes halfway through the fault-free response
		// time: detection, abort, and a full retry are all on the clock.
		g = newGammaMirrored(o, nDisk, nDiskless, n, 1, r.extras...)
		fault.Arm(g.m, fault.Schedule{Injections: []fault.Injection{
			fault.Crash(g.m.Sim.Now()+sim.Time(ff/2*float64(sim.Second)), crashSite),
		}})
		crash := r.run(g, n)

		return Row{Label: r.label, Cells: []Cell{
			{Measured: ff}, {Measured: down}, {Measured: crash},
		}}
	})
	t.Notes = append(t.Notes,
		"All columns run with chained-declustered backups loaded (mirrored machine).",
		"node down: disk site 1 crashed before the query; scans read its backup fragment.",
		"mid-query crash: site 1 crashes at half the fault-free response time; the",
		"scheduler detects the dead operators, aborts, and replays on the survivors.")
	return t
}
