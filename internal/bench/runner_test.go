package bench

import (
	"bytes"
	"sync/atomic"
	"testing"
)

// tinyOptions is small enough that the whole suite runs in seconds while
// still exercising every experiment's fan-out shape.
func tinyOptions() Options {
	return Options{Sizes: []int{2000}, FigureTuples: 2000, MaxProcs: 3}
}

func TestParMapPreservesOrder(t *testing.T) {
	o := Options{sem: make(chan struct{}, 4)}
	got := parMap(o, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParMapSerialWithoutSemaphore(t *testing.T) {
	var calls atomic.Int32
	got := parMap(Options{}, 5, func(i int) int32 { return calls.Add(1) })
	// Serial execution evaluates strictly in order.
	for i, v := range got {
		if v != int32(i+1) {
			t.Fatalf("serial parMap out of order: out[%d] = %d", i, v)
		}
	}
}

// TestSuiteSerialParallelIdentical runs a cross-section of the experiments —
// per-size tables, per-processor and per-page-size sweeps, the mirrored
// degraded-mode matrix — serially and on eight workers, and asserts the
// rendered tables are byte-identical. Each data point is an independent
// simulation with a fixed seed, so scheduling must not reach the results.
func TestSuiteSerialParallelIdentical(t *testing.T) {
	ids := []string{"table1", "table2", "table3", "fig1", "fig5", "fig9", "fig13", "scaleup", "degraded", "multiuser"}
	var exps []Experiment
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}

	render := func(reports []Report) []byte {
		var buf bytes.Buffer
		for _, r := range reports {
			r.Table.Render(&buf)
		}
		return buf.Bytes()
	}

	serial := RunSuite(exps, tinyOptions(), 1)
	parallel := RunSuite(exps, tinyOptions(), 8)

	if len(serial) != len(exps) || len(parallel) != len(exps) {
		t.Fatalf("report counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(exps))
	}
	for i := range exps {
		if serial[i].ID != exps[i].ID || parallel[i].ID != exps[i].ID {
			t.Errorf("report %d out of order: serial %q, parallel %q, want %q",
				i, serial[i].ID, parallel[i].ID, exps[i].ID)
		}
		if serial[i].Events <= 0 || parallel[i].Events <= 0 {
			t.Errorf("%s: no simulated events counted (serial %d, parallel %d)",
				exps[i].ID, serial[i].Events, parallel[i].Events)
		}
		if serial[i].Events != parallel[i].Events {
			t.Errorf("%s: event counts differ: serial %d, parallel %d",
				exps[i].ID, serial[i].Events, parallel[i].Events)
		}
	}
	sb, pb := render(serial), render(parallel)
	if !bytes.Equal(sb, pb) {
		t.Errorf("serial and parallel tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", sb, pb)
	}
}
