package bench

import (
	"fmt"
	"sync"

	"gamma/internal/config"
	"gamma/internal/core"
)

// The image cache: most of the suite's ~200 data points query an identical
// post-load database and differ only in the query, so the suite builds each
// distinct machine image once (hash declustering, heap fills, B+-tree
// builds), snapshots it, and every later data point restores the snapshot
// onto a fresh simulation in O(metadata) — copy-on-write pages keep the
// cached image immutable and the restored tables byte-identical to an
// uncached build. Images are keyed by everything that shapes the post-load
// state: machine geometry, mirroring, the full parameter set, and the exact
// relation specs (name, cardinality, seed, declustering, indexes).

// imageKey identifies one distinct machine image.
type imageKey struct {
	nDisk     int
	nDiskless int
	mirrored  bool
	prm       config.Params
	rels      string // canonical rendering of the relSpec list
}

func relsKey(specs []relSpec) string { return fmt.Sprintf("%+v", specs) }

// imageEntry is one cache slot; its sync.Once is the singleflight guard, so
// concurrent -parallel workers asking for the same image build it exactly
// once and the rest block until the snapshot is ready.
type imageEntry struct {
	once sync.Once
	snap *core.Snapshot
}

// imageCache maps image keys to snapshots. One cache serves a whole suite
// run: entries live until the run ends (the trade is memory for wall clock —
// a paper-scale suite retains a few hundred MB of frozen pages).
type imageCache struct {
	mu      sync.Mutex
	entries map[imageKey]*imageEntry
}

func newImageCache() *imageCache {
	return &imageCache{entries: map[imageKey]*imageEntry{}}
}

// get returns the snapshot for key, building it via build on first use.
// hit reports whether the image already existed (false for the builder;
// workers that blocked on the builder's singleflight count as hits — they
// skipped the load work).
func (c *imageCache) get(key imageKey, build func() *core.Snapshot) (snap *core.Snapshot, hit bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &imageEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	hit = true
	e.once.Do(func() {
		hit = false
		e.snap = build()
	})
	return e.snap, hit
}

// len reports the number of distinct images built so far.
func (c *imageCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
