package bench

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/teradata"
)

var paperTable2 = map[string][3][2]float64{
	"joinABprime, non-key join attribute":   {{34.9, 6.5}, {321.8, 47.6}, {3419.4, 2938.2}},
	"joinAselB, non-key join attribute":     {{35.6, 5.1}, {331.7, 34.9}, {3534.5, 703.1}},
	"joinCselAselB, non-key join attribute": {{27.8, 7.0}, {191.8, 38.0}, {2032.7, 731.2}},
	"joinABprime, key join attribute":       {{22.2, 5.7}, {131.3, 45.6}, {1265.1, 2926.7}},
	"joinAselB, key join attribute":         {{25.0, 5.0}, {170.3, 34.1}, {1584.3, 737.7}},
	"joinCselAselB, key join attribute":     {{23.8, 7.2}, {156.7, 37.4}, {1509.6, 712.8}},
}

func init() {
	register("table2", "Join queries (Table 2)", runTable2)
}

// gammaJoinQueries builds the three paper join queries for a given join
// attribute. Per §6.1: joinABprime probes with all of A; joinAselB carries a
// 10% selection on the join attribute of B which the optimizer propagates to
// A; joinCselAselB restricts both A and B to 10% and joins the result with C.
func gammaJoinQueries(g *gammaSetup, n int, attr rel.Attr, bprime, b, c *core.Relation) map[string]core.JoinQuery {
	tenPct := pct(attr, n, 10)
	cSpec := core.ScanSpec{Rel: c, Pred: rel.True(), Path: core.PathHeap}
	return map[string]core.JoinQuery{
		"joinABprime": {
			Build: core.ScanSpec{Rel: bprime, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: attr,
			Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: attr,
			Mode: core.Remote,
		},
		"joinAselB": {
			Build: core.ScanSpec{Rel: b, Pred: tenPct, Path: core.PathHeap}, BuildAttr: attr,
			Probe: core.ScanSpec{Rel: g.heap, Pred: tenPct, Path: core.PathHeap}, ProbeAttr: attr,
			Mode: core.Remote,
		},
		"joinCselAselB": {
			Build: core.ScanSpec{Rel: b, Pred: tenPct, Path: core.PathHeap}, BuildAttr: attr,
			Probe: core.ScanSpec{Rel: g.heap, Pred: tenPct, Path: core.PathHeap}, ProbeAttr: attr,
			Build2: &cSpec, Build2Attr: rel.Unique1, Probe2Attr: attr,
			Mode: core.Remote,
		},
	}
}

func runTable2(o Options) *Table {
	t := &Table{ID: "table2", Title: "Join Queries (execution times in seconds)", Unit: "seconds"}
	queries := []string{"joinABprime", "joinAselB", "joinCselAselB"}
	attrs := []struct {
		name string
		attr rel.Attr
	}{
		{"non-key join attribute", rel.Unique2},
		{"key join attribute", rel.Unique1},
	}
	// Each relation size is an independent pair of machines — fan them out.
	perSize := parMap(o, len(o.Sizes), func(i int) map[string][2]Cell {
		n := o.Sizes[i]

		joinRels := []relSpec{heapRel("Bprime", n/10, 7), heapRel("B", n, 8), heapRel("C", n/10, 9)}

		// Teradata machine and relations.
		ts := newTera(o, n, 1, joinRels...)
		tbp, tb, tc := ts.extra["Bprime"], ts.extra["B"], ts.extra["C"]

		// Gamma machine and relations.
		g := newGamma(o, 8, 8, n, 1, joinRels...)
		gbp, gb, gc := g.rel("Bprime"), g.rel("B"), g.rel("C")

		cells := map[string][2]Cell{}
		for _, av := range attrs {
			gq := gammaJoinQueries(g, n, av.attr, gbp, gb, gc)
			for _, qn := range queries {
				label := qn + ", " + av.name

				tq := teraJoinQuery(qn, n, av.attr, ts, tbp, tb, tc)
				tres := ts.m.RunJoin(tq)

				gres := g.joinRun(gq[qn])

				extra := ""
				if gres.Overflows > 0 {
					extra = fmt.Sprintf("ovf=%d", gres.Overflows)
				}
				cells[label] = [2]Cell{
					{Measured: tres.Elapsed.Seconds(), Paper: paperOf(paperTable2, label, n, 0)},
					{Measured: gres.Elapsed.Seconds(), Paper: paperOf(paperTable2, label, n, 1), Extra: extra},
				}
			}
		}
		return cells
	})
	measured := map[string][]Cell{}
	for i, n := range o.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d Tera", n), fmt.Sprintf("%d Gamma", n))
		for _, av := range attrs {
			for _, qn := range queries {
				label := qn + ", " + av.name
				c := perSize[i][label]
				measured[label] = append(measured[label], c[0], c[1])
			}
		}
	}
	for _, av := range attrs {
		for _, qn := range queries {
			label := qn + ", " + av.name
			t.Rows = append(t.Rows, Row{Label: label, Cells: measured[label]})
		}
	}
	t.Notes = append(t.Notes,
		"Gamma joins run in Remote mode (§6); overflow counts shown as ovf=N (max per site).",
		"Teradata joinAselB has no selection propagation; Gamma's optimizer reduces it to joinselAselB (§6.1).")
	return t
}

// teraJoinQuery maps a paper join query onto the Teradata machine.
func teraJoinQuery(name string, n int, attr rel.Attr, ts *teraSetup, bprime, b, c *teradata.Relation) teradata.JoinQuery {
	tenPct := pct(attr, n, 10)
	switch name {
	case "joinABprime":
		return teradata.JoinQuery{
			R1: ts.heap, Pred1: rel.True(), Attr1: attr,
			R2: bprime, Pred2: rel.True(), Attr2: attr,
		}
	case "joinAselB":
		// No selection propagation: A is read and redistributed whole.
		return teradata.JoinQuery{
			R1: ts.heap, Pred1: rel.True(), Attr1: attr,
			R2: b, Pred2: tenPct, Attr2: attr,
		}
	default: // joinCselAselB
		return teradata.JoinQuery{
			R1: ts.heap, Pred1: tenPct, Attr1: attr,
			R2: b, Pred2: tenPct, Attr2: attr,
			R3: c, Pred3: rel.True(), Attr3: rel.Unique1, AttrI: attr,
		}
	}
}
