package bench

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

func init() {
	register("multiuser", "Multiuser: closed-loop throughput vs multiprogramming level, shared scans on vs off", runMultiuser)
}

// The multiuser throughput experiment: a closed-loop terminal mix of 1%
// heap selections spread over several relations, swept against the
// multiprogramming level, with scan sharing off (every query drives its own
// cursor) and on (concurrent scans of a fragment ride one cursor). Two extra
// rows re-run the MPL-8 point with one terminal issuing joinABprime-style
// joins, Local vs Remote, to show sharing composes with operator placement.
//
// The mix is deliberately pool-hostile: muRels relations at twice the
// figure-sweep cardinality mean any one fragment dwarfs the 64-frame buffer
// pool and concurrent private scans rarely pair up on a file, so the drives
// thrash in random positioning — the regime where one cursor per fragment
// pays off. Ramped arrivals keep terminals phase-shifted, as real ones are.
const (
	muRels  = 4
	muDisks = 4
	muRamp  = 20 * sim.Second
)

// muRow is one sweep point of the multiuser experiment.
type muRow struct {
	label string
	mpl   int
	joins bool
	mode  core.JoinMode
}

// muRun executes one closed-loop run and returns its metrics.
func muRun(o Options, spec muRow, shared bool) core.WorkloadResult {
	nDiskless := 0
	if spec.joins {
		// Join rows need diskless processors for Remote placement; the
		// selection-only rows keep the proven 4-disk configuration.
		nDiskless = muDisks
	}
	tuples := 2 * o.FigureTuples
	specs := make([]relSpec, muRels)
	for i := range specs {
		specs[i] = relSpec{name: fmt.Sprintf("Mu%c", 'A'+i), n: tuples,
			seed: uint64(11 + i), strategy: core.RoundRobin}
	}
	if spec.joins {
		specs = append(specs, relSpec{name: "MuBprime", n: tuples / 10,
			seed: 7, strategy: core.RoundRobin})
	}
	m := o.gammaMachine(muDisks, nDiskless, false, specs)
	rels := make([]*core.Relation, muRels)
	for i := range rels {
		r, _ := m.Relation(fmt.Sprintf("Mu%c", 'A'+i))
		rels[i] = r
	}
	var bp *core.Relation
	if spec.joins {
		bp, _ = m.Relation("MuBprime")
	}
	if shared {
		m.EnableSharedScans()
	}
	span := int32(tuples / 100)
	sel := func(rng func() uint64) core.ConcurrentQuery {
		r := rels[rng()%uint64(muRels)]
		lo := int32(rng() % uint64(tuples-int(span)))
		return core.ConcurrentQuery{Select: &core.SelectQuery{
			Scan:    core.ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, lo, lo+span-1), Path: core.PathHeap},
			ToHost:  true,
			Project: []rel.Attr{rel.Unique1},
		}}
	}
	return m.RunWorkload(core.WorkloadSpec{
		Terminals:   spec.mpl,
		PerTerminal: 2,
		Ramp:        muRamp,
		Seed:        42,
		Make: func(term, q int, rng func() uint64) core.ConcurrentQuery {
			if spec.joins && term == 0 {
				return core.ConcurrentQuery{Join: &core.JoinQuery{
					Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
					Probe: core.ScanSpec{Rel: rels[0], Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
					Mode: spec.mode, MemPerJoinBytes: ampleJoinMemory,
				}}
			}
			return sel(rng)
		},
	})
}

func runMultiuser(o Options) *Table {
	t := &Table{
		ID:      "multiuser",
		Title:   "Closed-loop throughput vs multiprogramming level: private vs shared scans",
		Unit:    "queries per simulated second (utilizations of the shared run)",
		Columns: []string{"private q/s", "shared q/s", "speedup", "shared p95 (s)", "disk util", "cpu util"},
	}
	rows := []muRow{
		{label: "MPL 1", mpl: 1},
		{label: "MPL 2", mpl: 2},
		{label: "MPL 4", mpl: 4},
		{label: "MPL 8", mpl: 8},
		{label: "MPL 16", mpl: 16},
		{label: "MPL 32", mpl: 32},
		{label: "MPL 8 + joins (Local)", mpl: 8, joins: true, mode: core.Local},
		{label: "MPL 8 + joins (Remote)", mpl: 8, joins: true, mode: core.Remote},
	}
	type point struct {
		row        Row
		priv, shrd core.WorkloadResult
	}
	pts := parMap(o, len(rows), func(i int) point {
		spec := rows[i]
		priv := muRun(o, spec, false)
		shrd := muRun(o, spec, true)
		speedup := 0.0
		if priv.Throughput > 0 {
			speedup = shrd.Throughput / priv.Throughput
		}
		return point{
			row: Row{Label: spec.label, Cells: []Cell{
				{Measured: priv.Throughput},
				{Measured: shrd.Throughput},
				{Measured: speedup},
				{Measured: shrd.P95Response.Seconds()},
				{Measured: shrd.DiskUtil},
				{Measured: shrd.CPUUtil},
			}},
			priv: priv, shrd: shrd,
		}
	})
	t.Metrics = map[string]float64{}
	for i, pt := range pts {
		t.Rows = append(t.Rows, pt.row)
		if rows[i].label == "MPL 8" {
			t.Metrics["qps_private_mpl8"] = pt.priv.Throughput
			t.Metrics["qps_shared_mpl8"] = pt.shrd.Throughput
			t.Metrics["speedup_mpl8"] = pt.row.Cells[2].Measured
			t.Metrics["pool_hits_private_mpl8"] = float64(pt.priv.PoolHits)
			t.Metrics["pool_misses_private_mpl8"] = float64(pt.priv.PoolMisses)
			t.Metrics["shared_pages_saved_mpl8"] = float64(pt.shrd.SharedPagesSaved)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d heap relations of %d tuples each, round-robin over %d disk processors;",
			muRels, 2*o.FigureTuples, muDisks),
		"each terminal issues two 1% selections (join rows: terminal 0 issues joinABprime instead).",
		"Expected shape: identical at MPL 1; past MPL 4 private scans thrash the buffer pool while",
		"shared cursors bound page reads to one revolution per fragment, so throughput diverges.")
	return t
}
