package bench

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/rel"
)

func init() {
	registerWindowed("fig9", "joinABprime on key attributes vs processors (Figure 9)", runFig9)
	registerWindowed("fig10", "joinABprime on non-key attributes vs processors (Figure 10)", runFig10)
	registerWindowed("fig11", "Speedup of key-attribute joins (Figure 11)", runFig11)
	registerWindowed("fig12", "Speedup of non-key-attribute joins (Figure 12)", runFig12)
	registerWindowed("fig13", "Join overflow: response time vs memory (Figure 13)", runFig13)
	registerWindowed("fig14", "joinAselB vs disk page size (Figure 14)", runFig14)
	registerWindowed("fig15", "Speedup of joinAselB vs disk page size (Figure 15)", runFig15)
}

var joinModes = []core.JoinMode{core.Local, core.Remote, core.AllNodes}

func modeCols() []string { return []string{"Local", "Remote", "Allnodes"} }

// ampleJoinMemory avoids hash-table overflow in the configuration sweeps, as
// the paper did by giving some processors extra memory (§1 footnote).
const ampleJoinMemory = 64 << 20

// figJoinData measures joinABprime response times for each (processors,
// mode) point on the given join attribute.
func figJoinData(o Options, attr rel.Attr) (procs []int, series [][]float64) {
	// Every (processors, mode) point builds its own machine — fan them out.
	pts := parMap(o, o.MaxProcs*len(joinModes), func(i int) float64 {
		d, mode := i/len(joinModes)+1, joinModes[i%len(joinModes)]
		g := newGamma(o, d, d, o.FigureTuples, 1, heapRel("Bprime", o.FigureTuples/10, 7))
		bp := g.rel("Bprime")
		res := g.joinRun(core.JoinQuery{
			Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: attr,
			Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: attr,
			Mode:            mode,
			MemPerJoinBytes: ampleJoinMemory,
		})
		return res.Elapsed.Seconds()
	})
	series = make([][]float64, len(joinModes))
	for d := 1; d <= o.MaxProcs; d++ {
		procs = append(procs, d)
		for i := range joinModes {
			series[i] = append(series[i], pts[(d-1)*len(joinModes)+i])
		}
	}
	return procs, series
}

func runFig9(o Options) *Table {
	procs, series := figJoinData(o, rel.Unique1)
	return curveTable("fig9", "joinABprime on the partitioning (key) attribute", "seconds",
		procLabels(procs), modeCols(), series,
		[]string{"Expected shape: Local fastest (every input tuple short-circuits), then Allnodes,",
			"then Remote; all identical at one processor (§6.2.1)."})
}

func runFig10(o Options) *Table {
	procs, series := figJoinData(o, rel.Unique2)
	return curveTable("fig10", "joinABprime on a non-partitioning attribute", "seconds",
		procLabels(procs), modeCols(), series,
		[]string{"Expected shape: the mirror image of Figure 9 — Remote fastest, Local slowest,",
			"because short-circuiting no longer helps and Local competes with the selections (§6.2.1)."})
}

// joinSpeedups uses the two-processor configuration as the reference point,
// as the paper does, to avoid skew from single-processor short-circuiting.
func joinSpeedups(procs []int, series [][]float64) [][]float64 {
	refIdx := 0
	for i, d := range procs {
		if d == 2 {
			refIdx = i
		}
	}
	var out [][]float64
	for _, s := range series {
		out = append(out, speedups(s, refIdx, 2))
	}
	return out
}

func runFig11(o Options) *Table {
	procs, series := figJoinData(o, rel.Unique1)
	return curveTable("fig11", "Speedup of key-attribute joinABprime (2-processor reference)", "speedup",
		procLabels(procs), modeCols(), joinSpeedups(procs, series),
		[]string{"Expected shape: near-linear speedup (§6.2.1)."})
}

func runFig12(o Options) *Table {
	procs, series := figJoinData(o, rel.Unique2)
	return curveTable("fig12", "Speedup of non-key-attribute joinABprime (2-processor reference)", "speedup",
		procLabels(procs), modeCols(), joinSpeedups(procs, series), nil)
}

// fig13Ratios sweeps available memory as a fraction of the smaller (build)
// relation, as on the paper's x-axis.
var fig13Ratios = []float64{1.2, 1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2}

func runFig13(o Options) *Table {
	t := &Table{
		ID:      "fig13",
		Title:   "Join overflow: joinABprime (key attributes) as memory shrinks",
		Unit:    "seconds; (ovf=N) = overflow resolutions at the most-overflowed site",
		Columns: []string{"Local", "Remote"},
	}
	n := o.FigureTuples
	buildBytes := (n / 10) * 208
	fig13Modes := []core.JoinMode{core.Local, core.Remote}
	pts := parMap(o, len(fig13Ratios)*len(fig13Modes), func(i int) Cell {
		ratio, mode := fig13Ratios[i/len(fig13Modes)], fig13Modes[i%len(fig13Modes)]
		g := newGamma(o, 8, 8, n, 1, heapRel("Bprime", n/10, 7))
		bp := g.rel("Bprime")
		nJoin := len(g.m.JoinNodes(mode))
		memPer := int(ratio * float64(buildBytes) / float64(nJoin))
		res := g.joinRun(core.JoinQuery{
			Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique1,
			Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique1,
			Mode:            mode,
			MemPerJoinBytes: memPer,
		})
		return Cell{
			Measured: res.Elapsed.Seconds(),
			Extra:    fmt.Sprintf("ovf=%d", res.Overflows),
		}
	})
	for ri, ratio := range fig13Ratios {
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("memory/smaller relation = %.2f", ratio),
			Cells: pts[ri*len(fig13Modes) : (ri+1)*len(fig13Modes)],
		})
	}
	t.Notes = append(t.Notes,
		"Expected shape: flat from zero to ~2 overflows, then rapid deterioration (Simple hash join, §6.2.2);",
		"Local starts below Remote (key-attribute locality) and crosses above it once the first overflow",
		"switches hash functions and destroys that locality.")
	return t
}

func fig14Data(o Options) []float64 {
	n := o.FigureTuples
	return parMap(o, len(pageSizes), func(i int) float64 {
		g := newGamma(o.withPage(pageSizes[i]), 8, 8, n, 1, heapRel("B", n, 8))
		b := g.rel("B")
		tenPct := pct(rel.Unique2, n, 10)
		res := g.joinRun(core.JoinQuery{
			Build: core.ScanSpec{Rel: b, Pred: tenPct, Path: core.PathHeap}, BuildAttr: rel.Unique2,
			Probe: core.ScanSpec{Rel: g.heap, Pred: tenPct, Path: core.PathHeap}, ProbeAttr: rel.Unique2,
			Mode:            core.Remote,
			MemPerJoinBytes: ampleJoinMemory,
		})
		return res.Elapsed.Seconds()
	})
}

func runFig14(o Options) *Table {
	return curveTable("fig14", "joinAselB (10% selections) vs disk page size (16 query processors)", "seconds",
		pageLabels(), []string{"joinAselB"}, [][]float64{fig14Data(o)},
		[]string{"Expected shape: larger pages help strongly up to 16 KB, then level off —",
			"the join is bounded by the 10% selections of its inputs (§6.2.3)."})
}

func runFig15(o Options) *Table {
	return curveTable("fig15", "Speedup of joinAselB vs disk page size (2 KB reference)", "speedup",
		pageLabels(), []string{"joinAselB"}, [][]float64{speedups(fig14Data(o), 0, 1)}, nil)
}
