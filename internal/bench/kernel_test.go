package bench

// Kernel-equivalence acceptance tests: every experiment must produce
// byte-identical tables, JSON results, and trace streams whichever kernel
// the simulation runs on — the serial oracle or the partitioned kernel at
// any worker count. Windowed experiments derive a positive lookahead from
// the network's delivery-latency floor (Net.MinLatency) and run truly
// parallel conservative windows; the serial oracle is the same partition on
// one worker, so the dual-ord scheme makes the schedules identical and
// these tests pin that identity byte for byte. Serialized experiments
// (fault injection, shared machines, Teradata) still run at lookahead 0,
// where the merged global order is provably the single-heap order. CI runs
// this file under -race across a GOMAXPROCS × workers matrix.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// kernelVariants is the equivalence matrix: the serial oracle, the
// partitioned kernel serialized and with a worker budget, and the worker
// budget under each shard-fusion mode. An empty fusion follows the resolved
// knob (GAMMA_FUSION or adaptive), so the CI fusion matrix reaches the plain
// w4 variant too; "off" and "all" pin the extremes regardless.
var kernelVariants = []struct {
	name    string
	kernel  string
	workers int
	fusion  string
}{
	{"serial", "serial", 0, ""},
	{"partitioned-w1", "partitioned", 1, ""},
	{"partitioned-w4", "partitioned", 4, ""},
	{"partitioned-w4-unfused", "partitioned", 4, "off"},
	{"partitioned-w4-fused", "partitioned", 4, "all"},
}

// suiteArtifacts runs a cross-section of experiments on the given kernel
// and returns the rendered tables and the JSON result document (the stable
// parts of the gammabench -json report: wall-clock fields excluded).
func suiteArtifacts(t *testing.T, kernel string, workers int, fusion string) (tables, jsonDoc []byte) {
	t.Helper()
	// Windowed experiments (table1, fig1, fig9, scaleup, netgen — fig9
	// exercises joins inside parallel windows, netgen the batched exchange
	// of the fast-network generations) plus serialized ones (degraded,
	// multiuser).
	ids := []string{"table1", "fig1", "fig9", "scaleup", "netgen", "degraded", "multiuser"}
	var exps []Experiment
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	o := tinyOptions()
	o.Kernel = kernel
	o.KernelWorkers = workers
	o.Fusion = fusion
	reports := RunSuite(exps, o, 2)
	var tblBuf bytes.Buffer
	type stable struct {
		ID     string
		Events int64
		Table  *Table
	}
	var doc []stable
	for _, r := range reports {
		r.Table.Render(&tblBuf)
		doc = append(doc, stable{ID: r.ID, Events: r.Events, Table: r.Table})
	}
	js, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return tblBuf.Bytes(), js
}

// TestKernelEquivalenceSuite: the quick-suite cross-section produces
// byte-identical tables and JSON results on every kernel variant.
func TestKernelEquivalenceSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite cross-section is seconds-long; skipped in -short")
	}
	refTables, refJSON := suiteArtifacts(t, kernelVariants[0].kernel, kernelVariants[0].workers, kernelVariants[0].fusion)
	for _, v := range kernelVariants[1:] {
		tables, js := suiteArtifacts(t, v.kernel, v.workers, v.fusion)
		if !bytes.Equal(tables, refTables) {
			t.Errorf("%s: rendered tables differ from serial kernel (%d vs %d bytes)",
				v.name, len(tables), len(refTables))
		}
		if !bytes.Equal(js, refJSON) {
			t.Errorf("%s: JSON results differ from serial kernel (%d vs %d bytes)",
				v.name, len(js), len(refJSON))
		}
	}
}

// tracedWorkload builds a small traced Gamma machine on the given kernel
// at the given lookahead, runs a heap selection and an indexed selection,
// and returns the full trace stream bytes.
func tracedWorkload(t *testing.T, kernel string, workers int, fusion string, la sim.Dur) []byte {
	t.Helper()
	return tracedWorkloadOn(t, config.Default(), kernel, workers, fusion, la, nil)
}

// tracedWorkloadOn is tracedWorkload under explicit hardware parameters,
// with an optional hook run after the machine is built (floor-tightness
// tests use it to over-declare a shard's output or channel floor).
func tracedWorkloadOn(t *testing.T, prm config.Params, kernel string, workers int, fusion string, la sim.Dur, tweak func(m *core.Machine)) []byte {
	t.Helper()
	var s *sim.Sim
	switch kernel {
	case "serial":
		s = sim.New()
		if la > 0 {
			// The serial oracle for a windowed run: same partition, same
			// ord keys, one worker.
			s.Partition(la)
			s.SetWorkers(1)
		}
	case "partitioned":
		s = sim.New()
		s.Partition(la)
		s.SetWorkers(workers)
		s.SetFusion(Options{Fusion: fusion}.fusionConfig())
	default:
		t.Fatalf("unknown kernel %q", kernel)
	}
	m := core.NewMachine(s, &prm, 4, 4)
	u1 := rel.Unique1
	r := m.Load(core.LoadSpec{
		Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(5000, 1))
	if tweak != nil {
		tweak(m)
	}
	col := m.EnableTrace()
	m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 499), Path: core.PathHeap},
	})
	m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 100, 199), Path: core.PathClustered},
	})
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("traced workload emitted no events")
	}
	return buf.Bytes()
}

// TestKernelEquivalenceTraces: the full structured event stream of a traced
// Gamma workload is byte-identical on every kernel variant — the headline
// invariant of the partitioned kernel — both serialized (lookahead 0) and
// inside truly parallel windows at the derived latency-floor lookahead.
func TestKernelEquivalenceTraces(t *testing.T) {
	floor := config.Default().Net.MinLatency
	if floor <= 0 {
		t.Fatal("default params declare no latency floor")
	}
	for _, la := range []sim.Dur{0, floor} {
		ref := tracedWorkload(t, kernelVariants[0].kernel, kernelVariants[0].workers, kernelVariants[0].fusion, la)
		for _, v := range kernelVariants[1:] {
			got := tracedWorkload(t, v.kernel, v.workers, v.fusion, la)
			if !bytes.Equal(got, ref) {
				t.Errorf("%s at lookahead %v: trace stream differs from serial kernel (%d vs %d bytes)",
					v.name, la, len(got), len(ref))
			}
		}
	}
}

// TestLookaheadFloorIsTight: Net.MinLatency is the largest safe lookahead,
// globally and per channel. Running the Gamma model one microsecond above
// the floor must trip the kernel's send-site violation panic — some remote
// delivery really does arrive exactly MinLatency after it was sent — while
// the floor itself runs clean (pinned by every windowed test in this file).
// The output-floor and channel-floor cases prove the same tightness for the
// per-shard declarations: over-declaring the host's output floor, or its
// channel floor toward the scheduler alone, trips the same panic at a
// modest global lookahead. This guards the whole delivery path: a new
// remote interaction that forgets the floor turns into a crash here, not a
// silent misordering.
func TestLookaheadFloorIsTight(t *testing.T) {
	floor := config.Default().Net.MinLatency
	cases := []struct {
		name  string
		la    sim.Dur
		tweak func(m *core.Machine)
	}{
		{"global-lookahead", floor + 1, nil},
		{"output-floor", 100, func(m *core.Machine) {
			m.Host.Part.SetOutFloor(floor + 1)
		}},
		{"channel-floor", 100, func(m *core.Machine) {
			m.Host.Part.SetChannelFloor(m.Sched.Part, floor+1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic running above the latency floor")
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "violates lookahead") {
					t.Fatalf("wrong panic: %v", r)
				}
			}()
			tracedWorkloadOn(t, config.Default(), "partitioned", 1, "", tc.la, tc.tweak)
		})
	}
}

// TestKernelEquivalenceGenerations: trace byte-identity holds at every
// hardware generation's own latency floor. The fast generations are the
// hard case the EOT scheduler exists for — rdma's 2µs floor grants almost
// no static window, so nearly every parallel window there comes from
// earliest-output-time bounds and the nose's declared output floors.
func TestKernelEquivalenceGenerations(t *testing.T) {
	if testing.Short() {
		t.Skip("generation matrix is seconds-long; skipped in -short")
	}
	for _, gen := range config.Generations() {
		prm := gen.Params()
		la := prm.Net.MinLatency
		ref := tracedWorkloadOn(t, prm, kernelVariants[0].kernel, kernelVariants[0].workers, kernelVariants[0].fusion, la, nil)
		for _, v := range kernelVariants[1:] {
			got := tracedWorkloadOn(t, prm, v.kernel, v.workers, v.fusion, la, nil)
			if !bytes.Equal(got, ref) {
				t.Errorf("%s on %s: trace stream differs from serial kernel (%d vs %d bytes)",
					v.name, gen.Name, len(got), len(ref))
			}
		}
	}
}

// TestKernelKnobEnvOverride: GAMMA_KERNEL/GAMMA_KERNEL_WORKERS select the
// kernel when Options leave it empty, and an explicit Options value wins.
func TestKernelKnobEnvOverride(t *testing.T) {
	t.Setenv("GAMMA_KERNEL", "partitioned")
	t.Setenv("GAMMA_KERNEL_WORKERS", "3")
	o := Options{}
	if !o.newSim().Partitioned() {
		t.Error("GAMMA_KERNEL=partitioned ignored")
	}
	if got := o.newSim().Workers(); got != 3 {
		t.Errorf("GAMMA_KERNEL_WORKERS=3: workers = %d", got)
	}
	o.Kernel = "serial"
	if o.newSim().Partitioned() {
		t.Error("explicit Options.Kernel did not override the environment")
	}
}

// TestFusionKnob: GAMMA_FUSION selects the shard-fusion mode when Options
// leave it empty, an explicit Options value wins, and unknown modes panic.
func TestFusionKnob(t *testing.T) {
	t.Setenv("GAMMA_FUSION", "") // the CI fusion matrix sets it for the process
	o := Options{}
	if got := o.fusion(); got != "adaptive" {
		t.Errorf("default fusion mode = %q, want adaptive", got)
	}
	t.Setenv("GAMMA_FUSION", "off")
	if !o.fusionConfig().Off {
		t.Error("GAMMA_FUSION=off ignored")
	}
	o.Fusion = "all"
	if f := o.fusionConfig(); f.Off || f.InitLevel != -1 {
		t.Errorf("explicit Options.Fusion=all did not override the environment: %+v", f)
	}
	o.Fusion = "everything"
	defer func() {
		if recover() == nil {
			t.Error("unknown fusion mode did not panic")
		}
	}()
	o.fusionConfig()
}
