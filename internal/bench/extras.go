package bench

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/rel"
)

func init() {
	register("aggregate", "Aggregate queries (deferred to [DEWI88] by the paper)", runAggregate)
	registerWindowed("hybrid", "Ablation: Simple vs Hybrid hash join under memory pressure (§8)", runHybrid)
	registerWindowed("bitvector", "Ablation: Babb bit-vector filters in split tables (§2)", runBitVector)
	registerWindowed("pagesize-default", "Ablation: 4 KB vs 8 KB default page size (§8)", runPageSizeDefault)
	register("placement", "Placement: Remote joins shield concurrent selections (§6.2.1's deferred validation)", runPlacement)
	register("recovery", "Ablation: the §8 recovery server's cost on the Table 1/3 workload", runRecovery)
	registerWindowed("scaleup", "Scaleup: constant per-processor data as processors grow", runScaleup)
}

// runScaleup grows the database with the machine (12,500 tuples per disk
// processor, the paper's standard density) — the scaleup metric the Gamma
// group made standard in its later work. Perfect scaleup is a flat response
// time.
func runScaleup(o Options) *Table {
	t := &Table{
		ID:      "scaleup",
		Title:   "Scaleup: 12,500 tuples per processor as processors grow",
		Unit:    "seconds (flat = perfect scaleup)",
		Columns: []string{"1% selection", "joinABprime"},
	}
	perProc := 12500
	t.Rows = parMap(o, o.MaxProcs, func(i int) Row {
		d := i + 1
		n := perProc * d
		g := newGamma(o, d, d, n, 1, heapRel("Bprime", n/10, 7))
		bp := g.rel("Bprime")
		sel := g.selectSecs(core.SelectQuery{
			Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap},
		})
		join := g.joinRun(core.JoinQuery{
			Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
			Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
			Mode:            core.Remote,
			MemPerJoinBytes: ampleJoinMemory,
		})
		return Row{
			Label: fmt.Sprintf("%d processors, %d tuples", d, n),
			Cells: []Cell{{Measured: sel}, {Measured: join.Elapsed.Seconds()}},
		}
	})
	t.Notes = append(t.Notes,
		"Expected shape: near-flat curves; mild growth from scheduler initiation and the",
		"declining short-circuit fraction — the same effects that bend the Figure 2 speedups.")
	return t
}

// runRecovery quantifies the full-recovery machinery §8 announces: the same
// selection and update workload with and without log shipping to the
// recovery server. The paper notes Gamma's numbers benefit from its lack of
// full recovery (§4, §7) — this measures how much.
func runRecovery(o Options) *Table {
	t := &Table{
		ID:      "recovery",
		Title:   "Log shipping to a recovery server: off vs on",
		Unit:    "seconds",
		Columns: []string{"no logging", "with recovery server"},
	}
	n := o.FigureTuples
	type wl struct {
		label string
		run   func(g *gammaSetup) float64
	}
	workloads := []wl{
		{"10% nonindexed selection (stored)", func(g *gammaSetup) float64 {
			return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}})
		}},
		{"1% clustered index selection (stored)", func(g *gammaSetup) float64 {
			return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 1), Path: core.PathClustered}})
		}},
		{"append 1 tuple (one index)", func(g *gammaSetup) float64 {
			var tp rel.Tuple
			tp.Set(rel.Unique1, int32(n+3))
			tp.Set(rel.Unique2, int32(n+3))
			return g.m.RunUpdate(core.UpdateQuery{Rel: g.idx, Kind: core.AppendTuple, Tuple: tp}).Elapsed.Seconds()
		}},
	}
	t.Rows = parMap(o, len(workloads), func(i int) Row {
		w := workloads[i]
		row := Row{Label: w.label}
		for _, enable := range []bool{false, true} {
			g := newGamma(o, 8, 8, n, 1)
			if enable {
				g.m.EnableRecovery()
			}
			row.Cells = append(row.Cells, Cell{Measured: w.run(g)})
		}
		return row
	})
	t.Notes = append(t.Notes,
		"Log records for stored result tuples and update images ship to a dedicated recovery-server",
		"processor in page-sized batches; commit points force the tail of the log (§8 future work, built).")
	return t
}

// runPlacement validates the expectation §6.2.1 records for "future
// multiuser benchmarks": offloading join operators to the diskless
// processors lets the disk processors support concurrent selections better.
// (The closed-loop throughput sweep lives in the "multiuser" experiment.)
func runPlacement(o Options) *Table {
	t := &Table{
		ID:      "placement",
		Title:   "joinABprime concurrent with 1% selections: Local vs Remote placement",
		Unit:    "seconds",
		Columns: []string{"join", "selection avg"},
	}
	n := o.FigureTuples
	modes := []core.JoinMode{core.Local, core.Remote, core.AllNodes}
	t.Rows = parMap(o, len(modes), func(i int) Row {
		mode := modes[i]
		g := newGamma(o, 8, 8, n, 1, heapRel("Bprime", n/10, 7))
		bp := g.rel("Bprime")
		join := core.JoinQuery{
			Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
			Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
			Mode: mode, MemPerJoinBytes: ampleJoinMemory,
		}
		sel := core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap}}
		rs := g.m.RunConcurrent([]core.ConcurrentQuery{
			{Join: &join}, {Select: &sel}, {Select: &sel},
		})
		label := map[core.JoinMode]string{core.Local: "Local join", core.Remote: "Remote join", core.AllNodes: "Allnodes join"}[mode]
		return Row{Label: label, Cells: []Cell{
			{Measured: rs[0].Elapsed.Seconds()},
			{Measured: (rs[1].Elapsed.Seconds() + rs[2].Elapsed.Seconds()) / 2},
		}}
	})
	t.Notes = append(t.Notes,
		"Two concurrent 1% selections run alongside joinABprime (non-key attributes).",
		"Expected: selections finish fastest when the join runs Remote — §6.2.1's deferred expectation.")
	return t
}

// runAggregate measures scalar and grouped aggregates vs processors. The
// paper ran these experiments but deferred the numbers to [DEWI88]; the
// expected behaviour is selection-like speedup since aggregation is pushed
// below the network.
func runAggregate(o Options) *Table {
	n := o.FigureTuples
	t := &Table{
		ID:      "aggregate",
		Title:   fmt.Sprintf("Aggregates on the %d-tuple relation vs processors", n),
		Unit:    "seconds",
		Columns: []string{"count(*)", "min(unique1)", "sum by ten", "min by twenty"},
	}
	t.Rows = parMap(o, o.MaxProcs, func(i int) Row {
		d := i + 1
		g := newGamma(o, d, d, n, 1)
		row := Row{Label: fmt.Sprintf("%d processors with disks", d)}
		scalar := func(fn core.AggFn) float64 {
			return g.m.RunAgg(core.AggQuery{
				Scan: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap},
				Fn:   fn, Attr: rel.Unique1, Mode: core.Remote,
			}).Elapsed.Seconds()
		}
		grouped := func(fn core.AggFn, by rel.Attr) float64 {
			return g.m.RunAgg(core.AggQuery{
				Scan: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap},
				Fn:   fn, Attr: rel.Unique1, GroupBy: &by, Mode: core.Remote,
			}).Elapsed.Seconds()
		}
		row.Cells = []Cell{
			{Measured: scalar(core.Count)},
			{Measured: scalar(core.Min)},
			{Measured: grouped(core.Sum, rel.Ten)},
			{Measured: grouped(core.Min, rel.Twenty)},
		}
		return row
	})
	t.Notes = append(t.Notes,
		"Scalar aggregates are folded at the scan sites (one partial per site crosses the network);",
		"grouped aggregates hash-partition tuples on the grouping attribute across the diskless processors.")
	return t
}

// runHybrid repeats the Figure 13 memory sweep with both join algorithms.
func runHybrid(o Options) *Table {
	t := &Table{
		ID:      "hybrid",
		Title:   "joinABprime (Remote) as memory shrinks: Simple vs Hybrid hash join",
		Unit:    "seconds; (ovf=N) = overflow resolutions at the most-overflowed site",
		Columns: []string{"Simple", "Hybrid"},
	}
	n := o.FigureTuples
	buildBytes := (n / 10) * 208
	t.Rows = parMap(o, len(fig13Ratios), func(i int) Row {
		ratio := fig13Ratios[i]
		row := Row{Label: fmt.Sprintf("memory/smaller relation = %.2f", ratio)}
		for _, algo := range []core.JoinAlgorithm{core.SimpleHash, core.HybridHash} {
			g := newGamma(o, 8, 8, n, 1, heapRel("Bprime", n/10, 7))
			bp := g.rel("Bprime")
			nJoin := len(g.m.JoinNodes(core.Remote))
			res := g.joinRun(core.JoinQuery{
				Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique1,
				Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique1,
				Mode:            core.Remote,
				Algorithm:       algo,
				MemPerJoinBytes: int(ratio * float64(buildBytes) / float64(nJoin)),
			})
			row.Cells = append(row.Cells, Cell{Measured: res.Elapsed.Seconds(), Extra: fmt.Sprintf("ovf=%d", res.Overflows)})
		}
		return row
	})
	t.Notes = append(t.Notes,
		"Expected shape: identical with ample memory; under pressure Hybrid degrades gently (spilled",
		"partitions are written and read once) while Simple re-spools every pass — the replacement §8 announces.")
	return t
}

// runBitVector measures joinABprime with and without Babb filters.
func runBitVector(o Options) *Table {
	t := &Table{
		ID:      "bitvector",
		Title:   "joinABprime (Remote, non-key attributes) with and without bit-vector filters",
		Unit:    "seconds; (pkts=N) = data packets on the ring",
		Columns: []string{"no filters", "Babb filters"},
	}
	n := o.FigureTuples
	run := func(filter bool) core.Result {
		g := newGamma(o, 8, 8, n, 1, heapRel("Bprime", n/10, 7))
		bp := g.rel("Bprime")
		return g.joinRun(core.JoinQuery{
			Build: core.ScanSpec{Rel: bp, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
			Probe: core.ScanSpec{Rel: g.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
			Mode:            core.Remote,
			UseBitFilter:    filter,
			MemPerJoinBytes: ampleJoinMemory,
		})
	}
	plain := run(false)
	filtered := run(true)
	t.Rows = append(t.Rows, Row{Label: "joinABprime", Cells: []Cell{
		{Measured: plain.Elapsed.Seconds(), Extra: fmt.Sprintf("pkts=%d", plain.DataPackets)},
		{Measured: filtered.Elapsed.Seconds(), Extra: fmt.Sprintf("pkts=%d", filtered.DataPackets)},
	}})
	t.Notes = append(t.Notes,
		"Filters drop probe tuples with no possible match before they reach the network (§2);",
		"the paper's measured runs did not enable them, which is why joinABprime ships all of A.")
	return t
}

// runPageSizeDefault scores the §8 recommendation to move the default page
// size from 4 KB to 8 KB: better for scans and joins, slightly worse for
// non-clustered index selections.
func runPageSizeDefault(o Options) *Table {
	t := &Table{
		ID:      "pagesize-default",
		Title:   "Default page size: 4 KB vs 8 KB across the selection workload",
		Unit:    "seconds",
		Columns: []string{"4 KB", "8 KB"},
	}
	n := o.FigureTuples
	type workload struct {
		label string
		run   func(g *gammaSetup) float64
	}
	workloads := []workload{
		{"10% nonindexed selection", func(g *gammaSetup) float64 {
			return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}})
		}},
		{"1% clustered index selection", func(g *gammaSetup) float64 {
			return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 1), Path: core.PathClustered}})
		}},
		{"1% non-clustered index selection", func(g *gammaSetup) float64 {
			return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique2, n, 1), Path: core.PathNonClustered}})
		}},
	}
	sums := [2]float64{}
	for _, w := range workloads {
		row := Row{Label: w.label}
		for i, ps := range []int{4096, 8192} {
			g := newGamma(o.withPage(ps), 8, 8, n, 1)
			secs := w.run(g)
			sums[i] += secs
			row.Cells = append(row.Cells, Cell{Measured: secs})
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, Row{Label: "TOTAL", Cells: []Cell{{Measured: sums[0]}, {Measured: sums[1]}}})
	t.Notes = append(t.Notes,
		"§8 concludes the default should move from 4 KB to 8 KB: scans gain, index paths lose a little.")
	return t
}
