package bench

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

// renderTable renders one table to bytes.
func renderTable(tbl *Table) []byte {
	var buf bytes.Buffer
	tbl.Render(&buf)
	return buf.Bytes()
}

// TestCachedTablesMatchUncached is the acceptance contract of the image
// cache: for every experiment, the table produced with cached machine images
// (RunSuite always attaches a cache) must be byte-identical to the table
// produced with o.images == nil, where every data point loads its database
// from scratch — both serially and under -parallel workers.
func TestCachedTablesMatchUncached(t *testing.T) {
	o := tinyOptions()
	for _, e := range Experiments() {
		uncached := renderTable(e.Run(o)) // o.images == nil: from-scratch loads
		serial := RunSuite([]Experiment{e}, o, 1)
		parallel := RunSuite([]Experiment{e}, o, 8)
		if got := renderTable(serial[0].Table); !bytes.Equal(got, uncached) {
			t.Errorf("%s: cached serial table differs from uncached:\n--- cached ---\n%s--- uncached ---\n%s",
				e.ID, got, uncached)
		}
		if got := renderTable(parallel[0].Table); !bytes.Equal(got, uncached) {
			t.Errorf("%s: cached parallel table differs from uncached:\n--- cached ---\n%s--- uncached ---\n%s",
				e.ID, got, uncached)
		}
	}
}

// TestSuiteReportsCacheHits: experiments that query one image from several
// data points must restore it from the cache after the first build, every
// experiment records its setup/query wall split, and the suite as a whole
// reuses more images than it builds.
func TestSuiteReportsCacheHits(t *testing.T) {
	// These revisit an image by construction, whatever the Options: the
	// fault conditions of a degraded row, hybrid's two algorithms per ratio,
	// multiuser's private/shared pairs, fig13's memory ratios, and so on.
	// (Others — scaleup's per-processor databases, table2's one machine per
	// size — only hit via images earlier experiments built, or never.)
	intrinsicReuse := map[string]bool{
		"bitvector": true, "degraded": true, "fig13": true, "hybrid": true,
		"multiuser": true, "placement": true, "recovery": true, "pagesize-default": true,
		// kernelscale's real-query probes run three kernel configs per
		// generation against one probe image each.
		"kernelscale": true,
	}
	reports := RunSuite(Experiments(), tinyOptions(), 1)
	var hits, misses int64
	for _, r := range reports {
		hits += r.ImageHits
		misses += r.ImageMisses
		if r.ImageHits+r.ImageMisses == 0 {
			t.Errorf("%s: no image-cache lookups recorded", r.ID)
			continue
		}
		if intrinsicReuse[r.ID] && r.ImageHits == 0 {
			t.Errorf("%s: %d image misses but no hits — cache never reused an image",
				r.ID, r.ImageMisses)
		}
		if r.Setup <= 0 {
			t.Errorf("%s: setup wall time not recorded", r.ID)
		}
		if r.Setup > r.Wall {
			// Legal under parallel points, but this run is serial.
			t.Errorf("%s: serial setup %v exceeds wall %v", r.ID, r.Setup, r.Wall)
		}
	}
	if hits <= misses {
		t.Errorf("suite-wide image cache: %d hits vs %d misses; most data points should restore", hits, misses)
	}
}

// TestImageCacheSingleflight hammers one key from many goroutines: the build
// function must run exactly once, exactly one caller observes the miss, and
// every restored machine answers queries identically (run under -race).
func TestImageCacheSingleflight(t *testing.T) {
	o := tinyOptions()
	o.images = newImageCache()
	var builds atomic.Int64
	key := imageKey{nDisk: 2, nDiskless: 2, prm: o.params(), rels: relsKey(gammaRels(500, 1))}
	var wg sync.WaitGroup
	hits := make([]bool, 16)
	secs := make([]float64, 16)
	for i := range hits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, hit := o.images.get(key, func() *core.Snapshot {
				builds.Add(1)
				uncached := o
				uncached.images = nil
				return uncached.gammaMachine(2, 2, false, gammaRels(500, 1)).Snapshot()
			})
			hits[i] = hit
			// Restore concurrently and query: exercises shared frozen pages.
			g := setupFrom(core.RestoreMachine(sim.New(), snap))
			secs[i] = g.selectSecs(core.SelectQuery{
				Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, 500, 10), Path: core.PathHeap},
			})
		}(i)
	}
	wg.Wait()
	if b := builds.Load(); b != 1 {
		t.Errorf("build ran %d times, want 1", b)
	}
	misses := 0
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d goroutines reported a miss, want exactly 1", misses)
	}
	if o.images.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", o.images.len())
	}
	for i, s := range secs {
		if s != secs[0] {
			t.Errorf("concurrent restore %d measured %v, want %v", i, s, secs[0])
		}
	}
}
