package bench

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/fault"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

func init() {
	register("availability", "Availability under a seeded fault campaign: throughput dip, MTTR, self-healing", runAvailability)
}

// The availability experiment: a closed-loop selection workload runs on a
// mirrored machine while a seeded campaign of crashes, drive failures, and
// transient outages plays against it, with the healing manager detecting
// each fault, promoting backups, and re-replicating lost fragments in the
// background. Reported per cluster size: steady throughput, the worst
// 5-second throughput window during the campaign (the dip), how many queries
// finished clean / degraded / failed, and the mean and max MTTR — fault
// injection to full redundancy restored.
//
// Rows run on the partitioned kernel (one shard per node) — the scale
// configuration PR 6 introduced — and the whole report is a pure function of
// the campaign seed, which is what the CI determinism check exercises.
const (
	avDefaultSeed = 7
	avTerminals   = 8
	avRamp        = 5 * sim.Second
	avMTTF        = 8 * sim.Second
	avMeanOutage  = 4 * sim.Second
	avDipWindow   = 5 * sim.Second
	avHealSlack   = 60 * sim.Second
)

// avFaults picks the per-row campaign length: half the cluster, clamped so
// the small row isn't annihilated (permanent faults arrive at ~2/5 of the
// mix) and the large rows still see a sustained ≥10-fault campaign.
func avFaults(o Options, nDisk int) int {
	if o.CampaignFaults > 0 {
		return o.CampaignFaults
	}
	f := nDisk / 2
	if f < 4 {
		f = 4
	}
	if f > 12 {
		f = 12
	}
	return f
}

// avPoint is one row's measurements.
type avPoint struct {
	wl       core.WorkloadResult
	hs       core.HealStats
	campaign []fault.Injection
	dip      float64 // worst 5s-window throughput during the campaign
	end      float64 // throughput just after the campaign ends (recovery evidence)
}

// avWindowQPS returns completed-queries-per-second inside [from, from+w).
func avWindowQPS(completions []sim.Time, from sim.Time, w sim.Dur) float64 {
	n := 0
	for _, c := range completions {
		if c >= from && c < from+sim.Time(w) {
			n++
		}
	}
	return float64(n) / w.Seconds()
}

// avRun plays one campaign against one cluster size.
func avRun(o Options, nDisk int) avPoint {
	seed := o.CampaignSeed
	if seed == 0 {
		seed = avDefaultSeed
	}
	faults := avFaults(o, nDisk)
	n := o.FigureTuples
	// Range-partitioned on Unique1 so a 1% range selection is confined to
	// the one or two overlapping sites: queries are site-local, a fault
	// degrades the queries that touch the lost site instead of every query,
	// and initiation cost stays flat as the cluster grows. Indexed (clustered
	// on Unique1) so each query reads only the qualifying pages — light
	// queries make the fault dips sharp instead of drowning them in scan
	// time, and rebuilds must stream the index images too.
	specs := []relSpec{
		{name: "AvA", n: n, seed: 11, strategy: core.RangeUniform, partAttr: rel.Unique1, indexed: true},
		{name: "AvB", n: n, seed: 12, strategy: core.RangeUniform, partAttr: rel.Unique1, indexed: true},
	}
	m := o.gammaMachine(nDisk, 0, true, specs)
	rels := []*core.Relation{nil, nil}
	for i, name := range []string{"AvA", "AvB"} {
		r, _ := m.Relation(name)
		rels[i] = r
	}

	// MTTF is kept comfortably above the observed MTTR (a few seconds), as
	// in any plausible deployment: chained declustering loses data when both
	// chain members die inside one repair window, and a campaign tuned to
	// lose data would just measure the mix, not the healing.
	campaign := fault.Campaign(fault.CampaignSpec{
		Seed: seed, Sites: nDisk, MTTF: avMTTF, Start: avRamp + 2*sim.Second,
		Faults: faults, MeanOutage: avMeanOutage,
		CrashW: 1, DriveW: 1, OutageW: 4,
	})
	var campaignEnd sim.Time
	for _, in := range campaign {
		if end := in.At + sim.Time(in.Dur); end > campaignEnd {
			campaignEnd = end
		}
	}
	fault.Arm(m, fault.Schedule{Injections: campaign})
	m.EnableHealing(core.HealConfig{Horizon: campaignEnd + avHealSlack})

	// Size the run so terminals keep issuing well past the campaign's end
	// (the post-campaign window is what shows recovery): 1% clustered-index
	// selections on the partitioning attribute, projected to the host.
	span := int32(n / 100)
	wl := m.RunWorkload(core.WorkloadSpec{
		Terminals:   avTerminals,
		PerTerminal: 30 * faults,
		Ramp:        avRamp,
		Seed:        seed,
		Make: func(term, q int, rng func() uint64) core.ConcurrentQuery {
			r := rels[rng()%2]
			lo := int32(rng() % uint64(n-int(span)))
			return core.ConcurrentQuery{Select: &core.SelectQuery{
				Scan:    core.ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, lo, lo+span-1), Path: core.PathClustered},
				ToHost:  true,
				Project: []rel.Attr{rel.Unique1},
			}}
		},
	})

	pt := avPoint{wl: wl, hs: m.Healer().Stats(), campaign: campaign}
	if len(wl.Completions) > 0 {
		// Dip: the worst window while faults are landing. Post: the window
		// right after the last fault clears, while every terminal is still
		// active — throughput back near steady state is the recovery
		// evidence (the tail after terminals drain would dilute it).
		pt.dip = -1
		for from := campaign[0].At; from+sim.Time(avDipWindow) <= campaignEnd+sim.Time(avDipWindow); from += sim.Time(sim.Second) {
			q := avWindowQPS(wl.Completions, from, avDipWindow)
			if pt.dip < 0 || q < pt.dip {
				pt.dip = q
			}
		}
		if pt.dip < 0 {
			pt.dip = wl.Throughput
		}
		pt.end = avWindowQPS(wl.Completions, campaignEnd+sim.Time(avDipWindow), avDipWindow)
	}
	return pt
}

// mttr summarizes the restored episodes: mean and max fault-to-redundancy
// time in seconds, plus how many of the episodes closed.
func mttr(hs core.HealStats) (mean, max float64, restored int) {
	var sum sim.Dur
	for _, ep := range hs.Episodes {
		if ep.RestoredAt < 0 {
			continue
		}
		d := sim.Dur(ep.RestoredAt - ep.FaultAt)
		sum += d
		if s := d.Seconds(); s > max {
			max = s
		}
		restored++
	}
	if restored > 0 {
		mean = (sum / sim.Dur(restored)).Seconds()
	}
	return mean, max, restored
}

func runAvailability(o Options) *Table {
	// The partitioned kernel is the point of the scale rows; lookahead 0
	// keeps it byte-identical to the serial oracle.
	o.Kernel = "partitioned"
	t := &Table{
		ID:      "availability",
		Title:   "Availability under a seeded fault campaign (mirrored, self-healing)",
		Unit:    "queries per simulated second; MTTR in seconds",
		Columns: []string{"q/s", "dip q/s", "post q/s", "clean", "degraded", "failed", "MTTR mean", "MTTR max", "promote", "rebuild"},
	}
	nDisks := []int{8, 32, 64}
	if o.FigureTuples <= 20000 {
		nDisks = []int{8, 32} // quick mode: skip the 64-node row
	}
	pts := parMap(o, len(nDisks), func(i int) avPoint { return avRun(o, nDisks[i]) })
	t.Metrics = map[string]float64{}
	for i, pt := range pts {
		mean, max, restored := mttr(pt.hs)
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d disk nodes", nDisks[i]),
			Cells: []Cell{
				{Measured: pt.wl.Throughput},
				{Measured: pt.dip},
				{Measured: pt.end},
				{Measured: float64(pt.wl.Clean)},
				{Measured: float64(pt.wl.Degraded)},
				{Measured: float64(pt.wl.Failed)},
				{Measured: mean},
				{Measured: max},
				{Measured: float64(pt.hs.Promotions)},
				{Measured: float64(pt.hs.Rebuilds)},
			},
		})
		k := fmt.Sprintf("_%d", nDisks[i])
		t.Metrics["qps"+k] = pt.wl.Throughput
		t.Metrics["dip_qps"+k] = pt.dip
		t.Metrics["post_qps"+k] = pt.end
		t.Metrics["clean"+k] = float64(pt.wl.Clean)
		t.Metrics["degraded"+k] = float64(pt.wl.Degraded)
		t.Metrics["failed"+k] = float64(pt.wl.Failed)
		t.Metrics["mttr_mean"+k] = mean
		t.Metrics["mttr_max"+k] = max
		t.Metrics["restored"+k] = float64(restored)
		t.Metrics["promotions"+k] = float64(pt.hs.Promotions)
		t.Metrics["rebuilds"+k] = float64(pt.hs.Rebuilds)
		t.Metrics["pages_copied"+k] = float64(pt.hs.PagesCopied)
	}
	seed := o.CampaignSeed
	if seed == 0 {
		seed = avDefaultSeed
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("campaign seed %d; %d terminals of 1%% range selections (site-local) over two %d-tuple relations;",
			seed, avTerminals, o.FigureTuples),
		"faults are Poisson-spaced (MTTF 8 s) over crash / bad-drive / transient-outage modes;",
		"the healer promotes backups, re-replicates lost fragments with paced page copies, and",
		fmt.Sprintf("MTTR is fault injection to full redundancy restored. Campaign of the %d-node row:", nDisks[0]))
	for _, in := range pts[0].campaign {
		t.Notes = append(t.Notes, "  "+fault.FormatInjection(in))
	}
	return t
}
