package bench

import (
	"fmt"

	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/teradata"
)

var paperTable3 = map[string][3][2]float64{
	"append 1 tuple (no indices exist)":         {{0.87, 0.18}, {1.29, 0.18}, {1.47, 0.20}},
	"append 1 tuple (one index exists)":         {{0.94, 0.60}, {1.62, 0.63}, {1.73, 0.66}},
	"delete 1 tuple":                            {{0.71, 0.44}, {0.42, 0.56}, {0.71, 0.61}},
	"modify 1 tuple (key attribute)":            {{2.62, 1.01}, {2.99, 0.86}, {4.82, 1.13}},
	"modify 1 tuple (non-indexed attribute)":    {{0.49, 0.36}, {0.90, 0.36}, {1.12, 0.36}},
	"modify 1 tuple (non-clustered index used)": {{0.84, 0.50}, {1.16, 0.46}, {3.72, 0.52}},
}

func init() {
	register("table3", "Update queries (Table 3)", runTable3)
}

func runTable3(o Options) *Table {
	t := &Table{ID: "table3", Title: "Update Queries (execution times in seconds)", Unit: "seconds"}
	labels := []string{
		"append 1 tuple (no indices exist)",
		"append 1 tuple (one index exists)",
		"delete 1 tuple",
		"modify 1 tuple (key attribute)",
		"modify 1 tuple (non-indexed attribute)",
		"modify 1 tuple (non-clustered index used)",
	}
	// Each relation size is an independent pair of machines — fan them out.
	perSize := parMap(o, len(o.Sizes), func(i int) map[string][2]Cell {
		n := o.Sizes[i]

		ts := newTera(o, n, 1)
		g := newGamma(o, 8, 8, n, 1)

		var fresh rel.Tuple
		fresh.Set(rel.Unique1, int32(n+7))
		fresh.Set(rel.Unique2, int32(n+7))

		teraSecs := map[string]float64{}
		gammaSecs := map[string]float64{}

		teraSecs[labels[0]] = ts.m.RunUpdate(teradata.UpdateQuery{Rel: ts.heap, Kind: teradata.AppendTuple, Tuple: fresh}).Elapsed.Seconds()
		gammaSecs[labels[0]] = g.m.RunUpdate(core.UpdateQuery{Rel: g.heap, Kind: core.AppendTuple, Tuple: fresh}).Elapsed.Seconds()

		teraSecs[labels[1]] = ts.m.RunUpdate(teradata.UpdateQuery{Rel: ts.idx, Kind: teradata.AppendTuple, Tuple: fresh}).Elapsed.Seconds()
		gammaSecs[labels[1]] = g.m.RunUpdate(core.UpdateQuery{Rel: g.idx, Kind: core.AppendTuple, Tuple: fresh}).Elapsed.Seconds()

		teraSecs[labels[2]] = ts.m.RunUpdate(teradata.UpdateQuery{Rel: ts.idx, Kind: teradata.DeleteByKey, Key: int32(n + 7)}).Elapsed.Seconds()
		gammaSecs[labels[2]] = g.m.RunUpdate(core.UpdateQuery{Rel: g.idx, Kind: core.DeleteByKey, Key: int32(n + 7)}).Elapsed.Seconds()

		teraSecs[labels[3]] = ts.m.RunUpdate(teradata.UpdateQuery{Rel: ts.idx, Kind: teradata.ModifyKeyAttr, Key: int32(n / 3), Attr: rel.Unique1, NewValue: int32(n + 13)}).Elapsed.Seconds()
		gammaSecs[labels[3]] = g.m.RunUpdate(core.UpdateQuery{Rel: g.idx, Kind: core.ModifyKeyAttr, Key: int32(n / 3), Attr: rel.Unique1, NewValue: int32(n + 13)}).Elapsed.Seconds()

		teraSecs[labels[4]] = ts.m.RunUpdate(teradata.UpdateQuery{Rel: ts.idx, Kind: teradata.ModifyNonIndexed, Key: int32(n / 4), Attr: rel.OddOnePercent, NewValue: 1}).Elapsed.Seconds()
		gammaSecs[labels[4]] = g.m.RunUpdate(core.UpdateQuery{Rel: g.idx, Kind: core.ModifyNonIndexed, Key: int32(n / 4), Attr: rel.OddOnePercent, NewValue: 1}).Elapsed.Seconds()

		teraSecs[labels[5]] = ts.m.RunUpdate(teradata.UpdateQuery{Rel: ts.idx, Kind: teradata.ModifyIndexed, Key: int32(n / 5), Attr: rel.Unique2, NewValue: int32(n + 21)}).Elapsed.Seconds()
		gammaSecs[labels[5]] = g.m.RunUpdate(core.UpdateQuery{Rel: g.idx, Kind: core.ModifyIndexed, Key: int32(n / 5), Attr: rel.Unique2, NewValue: int32(n + 21)}).Elapsed.Seconds()

		cells := map[string][2]Cell{}
		for _, l := range labels {
			cells[l] = [2]Cell{
				{Measured: teraSecs[l], Paper: paperOf(paperTable3, l, n, 0)},
				{Measured: gammaSecs[l], Paper: paperOf(paperTable3, l, n, 1)},
			}
		}
		return cells
	})
	measured := map[string][]Cell{}
	for i, n := range o.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d Tera", n), fmt.Sprintf("%d Gamma", n))
		for _, l := range labels {
			c := perSize[i][l]
			measured[l] = append(measured[l], c[0], c[1])
		}
	}
	for _, l := range labels {
		t.Rows = append(t.Rows, Row{Label: l, Cells: measured[l]})
	}
	t.Notes = append(t.Notes,
		"Teradata runs full concurrency control and recovery; Gamma uses deferred update files for indices (§7).")
	return t
}
