package bench

import (
	"fmt"
	"time"

	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/teradata"
	"gamma/internal/wisconsin"
)

// paperTable1[row][size][machine]: published seconds; machine 0 = Teradata,
// 1 = Gamma; size index 0=10k 1=100k 2=1M; 0 = not published.
var paperTable1 = map[string][3][2]float64{
	"1% nonindexed selection":                 {{6.86, 1.63}, {28.22, 13.83}, {213.13, 134.86}},
	"10% nonindexed selection":                {{15.97, 2.11}, {110.96, 17.44}, {1106.86, 181.72}},
	"1% selection using non-clustered index":  {{7.81, 1.03}, {29.94, 5.32}, {222.65, 53.86}},
	"10% selection using non-clustered index": {{16.82, 2.16}, {111.40, 17.65}, {1107.59, 182.00}},
	"1% selection using clustered index":      {{0, 0.59}, {0, 1.25}, {0, 7.50}},
	"10% selection using clustered index":     {{0, 1.26}, {0, 7.27}, {0, 69.60}},
	"single tuple select":                     {{0, 0.15}, {1.08, 0.15}, {0, 0.20}},
}

func sizeIndex(n int) int {
	switch n {
	case 10000:
		return 0
	case 100000:
		return 1
	case 1000000:
		return 2
	}
	return -1
}

func paperOf(table map[string][3][2]float64, row string, n, machine int) float64 {
	si := sizeIndex(n)
	if si < 0 {
		return 0
	}
	return table[row][si][machine]
}

// teraSetup builds a Teradata machine with the two relation versions.
type teraSetup struct {
	m     *teradata.Machine
	heap  *teradata.Relation
	idx   *teradata.Relation
	extra map[string]*teradata.Relation
}

// newTera loads the Teradata reference machine. It is deliberately outside
// the image cache — only two data points per suite use each configuration —
// but its load time still counts as setup.
func newTera(o Options, n int, seed uint64, extras ...relSpec) *teraSetup {
	o = o.serialized() // the Teradata model predates the latency floor
	defer o.addSetup(time.Now())
	s := o.newSim()
	prm := o.params()
	m := teradata.NewMachine(s, &prm)
	ts := wisconsin.Generate(n, seed)
	setup := &teraSetup{
		m:     m,
		heap:  m.Load("Aheap", rel.Unique1, nil, ts),
		idx:   m.Load("Aidx", rel.Unique1, []rel.Attr{rel.Unique2}, ts),
		extra: map[string]*teradata.Relation{},
	}
	for _, rs := range extras {
		setup.extra[rs.name] = m.Load(rs.name, rel.Unique1, nil, wisconsin.Generate(rs.n, rs.seed))
	}
	return setup
}

func init() {
	registerWindowed("table1", "Selection queries (Table 1)", runTable1)
}

func runTable1(o Options) *Table {
	t := &Table{
		ID:    "table1",
		Title: "Selection Queries (execution times in seconds)",
		Unit:  "seconds",
	}
	type rowSpec struct {
		label string
		tera  func(ts *teraSetup) float64
		gamma func(g *gammaSetup, n int) float64
	}
	rows := []rowSpec{
		{
			"1% nonindexed selection",
			func(ts *teraSetup) float64 {
				return ts.m.RunSelect(ts.heap, pct(rel.Unique2, ts.heap.N, 1), teradata.FileScan, false).Elapsed.Seconds()
			},
			func(g *gammaSetup, n int) float64 {
				return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap}})
			},
		},
		{
			"10% nonindexed selection",
			func(ts *teraSetup) float64 {
				return ts.m.RunSelect(ts.heap, pct(rel.Unique2, ts.heap.N, 10), teradata.FileScan, false).Elapsed.Seconds()
			},
			func(g *gammaSetup, n int) float64 {
				return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}})
			},
		},
		{
			"1% selection using non-clustered index",
			func(ts *teraSetup) float64 {
				return ts.m.RunSelect(ts.idx, pct(rel.Unique2, ts.idx.N, 1), teradata.IndexScan, false).Elapsed.Seconds()
			},
			func(g *gammaSetup, n int) float64 {
				return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique2, n, 1), Path: core.PathNonClustered}})
			},
		},
		{
			"10% selection using non-clustered index",
			func(ts *teraSetup) float64 {
				// The Teradata optimizer correctly declines the index (§5.1).
				return ts.m.RunSelect(ts.idx, pct(rel.Unique2, ts.idx.N, 10), teradata.FileScan, false).Elapsed.Seconds()
			},
			func(g *gammaSetup, n int) float64 {
				// Gamma's optimizer picks a segment scan too (§5.2.1).
				return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}})
			},
		},
		{
			"1% selection using clustered index",
			nil,
			func(g *gammaSetup, n int) float64 {
				return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 1), Path: core.PathClustered}})
			},
		},
		{
			"10% selection using clustered index",
			nil,
			func(g *gammaSetup, n int) float64 {
				return g.selectSecs(core.SelectQuery{Scan: core.ScanSpec{Rel: g.idx, Pred: pct(rel.Unique1, n, 10), Path: core.PathClustered}})
			},
		},
		{
			"single tuple select",
			func(ts *teraSetup) float64 {
				return ts.m.RunSelect(ts.idx, rel.Eq(rel.Unique1, int32(ts.idx.N/2)), teradata.HashAccess, true).Elapsed.Seconds()
			},
			func(g *gammaSetup, n int) float64 {
				return g.selectSecs(core.SelectQuery{
					Scan:   core.ScanSpec{Rel: g.idx, Pred: rel.Eq(rel.Unique1, int32(n/2)), Path: core.PathClustered},
					ToHost: true,
				})
			},
		},
	}

	// Each relation size is an independent pair of machines — fan them out.
	perSize := parMap(o, len(o.Sizes), func(i int) map[string][2]Cell {
		n := o.Sizes[i]
		ts := newTera(o, n, 1)
		g := newGamma(o, 8, 8, n, 1)
		cells := map[string][2]Cell{}
		for _, r := range rows {
			tv := 0.0
			if r.tera != nil {
				tv = r.tera(ts)
			}
			gv := r.gamma(g, n)
			cells[r.label] = [2]Cell{
				{Measured: tv, Paper: paperOf(paperTable1, r.label, n, 0)},
				{Measured: gv, Paper: paperOf(paperTable1, r.label, n, 1)},
			}
		}
		return cells
	})
	measured := map[string][]Cell{}
	for i, n := range o.Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d Tera", n), fmt.Sprintf("%d Gamma", n))
		for _, r := range rows {
			c := perSize[i][r.label]
			measured[r.label] = append(measured[r.label], c[0], c[1])
		}
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, Row{Label: r.label, Cells: measured[r.label]})
	}
	t.Notes = append(t.Notes,
		"Gamma: 8 disk + 8 diskless processors, 4 KB pages; Teradata: 4 IFP / 20 AMP / 40 DSU.",
		"Teradata has no clustered indices (§3); those rows are Gamma-only, as in the paper.")
	return t
}
