package bench

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"gamma/internal/sim"
)

// Report is the outcome of one experiment in a suite run.
type Report struct {
	ID     string
	Title  string
	Table  *Table
	Wall   time.Duration
	Events int64 // simulated events executed across every machine built
	// Setup is the cumulative machine-build wall time (image builds,
	// restores, database loads) across the experiment's data points. Points
	// can run in parallel, so Setup may exceed Wall.
	Setup time.Duration
	// ImageHits / ImageMisses count machine-image cache lookups: a miss
	// built and snapshotted the database, a hit restored it copy-on-write.
	ImageHits   int64
	ImageMisses int64
	// Windows aggregates the partitioned kernel's EOT window-scheduler
	// counters across every simulation the experiment ran; all zero when
	// the experiment executed on the serial kernel.
	Windows sim.WindowStats
}

// EventsPerSec returns the simulated-event throughput of the run.
func (r Report) EventsPerSec() float64 {
	s := r.Wall.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Events) / s
}

// QueryWall is the experiment's wall time net of setup, clamped at zero
// (parallel points overlap setup with queries).
func (r Report) QueryWall() time.Duration {
	q := r.Wall - r.Setup
	if q < 0 {
		q = 0
	}
	return q
}

// RunSuite runs the experiments, fanning them — and, through parMap, their
// independent data points — across at most workers goroutines. Reports come
// back in the order the experiments were given, and every Table is identical
// to a serial run: each data point is its own single-threaded simulation
// with a fixed seed, so scheduling cannot reach the results. workers <= 1
// runs everything on the calling goroutine.
func RunSuite(exps []Experiment, o Options, workers int) []Report {
	if workers > 1 {
		o.Workers = workers
		o.sem = make(chan struct{}, workers)
	}
	if o.images == nil {
		// One machine-image cache serves the whole suite: experiments that
		// build identical databases (the figure pairs, the table sizes)
		// share images across experiment boundaries.
		o.images = newImageCache()
	}
	reports := make([]Report, len(exps))
	run := func(i int, e Experiment, oo Options) {
		var ev, su, ih, im atomic.Int64
		var wc sim.WindowCounters
		oo.events = &ev
		oo.setup = &su
		oo.imgHits = &ih
		oo.imgMisses = &im
		oo.windows = &wc
		start := time.Now()
		var tbl *Table
		// Label the experiment's goroutine (and every worker it spawns) so
		// CPU profiles break down per experiment — `gammabench -cpuprofile`
		// plus `go tool pprof -tags` attributes window-scheduler cost to the
		// experiment that paid it, which is the data the fusion policy's
		// thresholds were tuned from.
		pprof.Do(context.Background(), pprof.Labels("experiment", e.ID), func(context.Context) {
			tbl = e.Run(oo)
		})
		reports[i] = Report{ID: e.ID, Title: e.Title, Table: tbl,
			Wall: time.Since(start), Events: ev.Load(),
			Setup: time.Duration(su.Load()), ImageHits: ih.Load(), ImageMisses: im.Load(),
			Windows: wc.Stats()}
	}
	if o.sem == nil {
		for i, e := range exps {
			run(i, e, o)
		}
		return reports
	}
	var wg sync.WaitGroup
	for i, e := range exps {
		// Blocking acquire: experiments enter in order as slots free up.
		// Each in-flight experiment holds one slot; its inner parMap calls
		// borrow further free slots without ever waiting for one.
		o.sem <- struct{}{}
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			defer func() { <-o.sem }()
			run(i, e, o)
		}(i, e)
	}
	wg.Wait()
	return reports
}

// parMap evaluates fn(0) .. fn(n-1) and returns the results in index order.
// Under a parallel Options it fans calls across free worker slots and runs
// inline when none is free — a caller already holding a slot (RunSuite's
// experiment goroutine) therefore can never deadlock, and a serial Options
// degenerates to a plain loop. Each fn must build its own simulator; points
// share nothing, which is what makes the fan-out order-independent.
func parMap[T any](o Options, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if o.sem == nil || n <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	for i := range out {
		select {
		case o.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-o.sem }()
				out[i] = fn(i)
			}(i)
		default:
			out[i] = fn(i)
		}
	}
	wg.Wait()
	return out
}
