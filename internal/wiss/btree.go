package wiss

import (
	"sort"

	"gamma/internal/rel"
	"gamma/internal/sim"
)

// IndexKind distinguishes the two WiSS index organizations used in the paper.
type IndexKind int

const (
	// Clustered: the data file is sorted on the key and the B-tree is a
	// sparse index mapping keys to data pages (index order = key order).
	Clustered IndexKind = iota
	// NonClustered: a dense B-tree with one (key, RID) entry per tuple
	// (index order != file order).
	NonClustered
)

func (k IndexKind) String() string {
	if k == Clustered {
		return "clustered"
	}
	return "non-clustered"
}

// BTree is a B+-tree index over one attribute of a heap file. Node accesses
// are charged to the node's drive through the buffer pool, with the tree's
// pages living in their own file-id space so that drive-position modeling
// sees index and data accesses as distinct extents.
type BTree struct {
	st        *Store
	file      *File
	Attr      rel.Attr
	Kind      IndexKind
	idxFileID int
	fanout    int
	root      *bnode
	firstLeaf *bnode
	nextPage  int
	height    int
	entries   int
	// shared marks a tree whose bnodes belong to a snapshot image (or were
	// handed to one): reads are safe, but the first structural mutation must
	// deep-clone the node graph first (ensureOwned).
	shared bool
}

type bnode struct {
	pageNo   int
	leaf     bool
	keys     []int32
	rids     []RID    // leaf, NonClustered: one RID per key
	dataPage []int32  // leaf, Clustered: one data page per key
	children []*bnode // internal
	next     *bnode   // leaf chain
}

// NewBTree builds an index over every tuple currently in f. A Clustered
// index requires f to be sorted on attr (File.LoadDirect with a sort key).
// Building is free in simulated time: benchmarks start with indices already
// in place, as in the paper.
func NewBTree(f *File, attr rel.Attr, kind IndexKind) *BTree {
	st := f.st
	st.nextID++
	t := &BTree{
		st:        st,
		file:      f,
		Attr:      attr,
		Kind:      kind,
		idxFileID: st.nextID,
		fanout:    st.prm.IndexFanout(),
	}
	if t.fanout < 4 {
		t.fanout = 4
	}
	t.bulkBuild()
	return t
}

// File returns the indexed data file.
func (t *BTree) File() *File { return t.file }

// Height returns the number of levels (0 for an empty tree).
func (t *BTree) Height() int { return t.height }

// Entries returns the number of leaf entries.
func (t *BTree) Entries() int { return t.entries }

// Fanout returns the per-node entry capacity (a function of page size).
func (t *BTree) Fanout() int { return t.fanout }

type entry struct {
	key  int32
	rid  RID
	page int32
}

func (t *BTree) collectEntries() []entry {
	var es []entry
	if t.Kind == Clustered {
		if !t.file.Sorted || t.file.SortKey != t.Attr {
			panic("wiss: clustered index over unsorted file")
		}
		for i, pg := range t.file.pages {
			if len(pg.Tuples) == 0 {
				continue
			}
			es = append(es, entry{key: pg.Tuples[0].Get(t.Attr), page: int32(i)})
		}
		return es
	}
	for i, pg := range t.file.pages {
		for s, tp := range pg.Tuples {
			if !pg.Live(s) {
				continue
			}
			es = append(es, entry{key: tp.Get(t.Attr), rid: RID{Page: int32(i), Slot: int32(s)}})
		}
	}
	// Entries were collected in (page, slot) order, so a stable sort on key
	// alone yields the (key, page, slot) total order.
	keys := make([]int32, len(es))
	for i := range es {
		keys[i] = es[i].key
	}
	sorted := make([]entry, len(es))
	for i, j := range rel.RadixPermutation(keys) {
		sorted[i] = es[j]
	}
	return sorted
}

// bulkBuild constructs the tree bottom-up. Internal pages are numbered
// before leaf pages so that a left-to-right leaf walk touches consecutive
// page numbers (sequential on disk).
func (t *BTree) bulkBuild() {
	es := t.collectEntries()
	t.entries = len(es)
	if len(es) == 0 {
		t.root = nil
		t.firstLeaf = nil
		t.height = 0
		return
	}
	// Leaves.
	var leaves []*bnode
	for start := 0; start < len(es); start += t.fanout {
		end := start + t.fanout
		if end > len(es) {
			end = len(es)
		}
		n := &bnode{leaf: true}
		for _, e := range es[start:end] {
			n.keys = append(n.keys, e.key)
			if t.Kind == Clustered {
				n.dataPage = append(n.dataPage, e.page)
			} else {
				n.rids = append(n.rids, e.rid)
			}
		}
		leaves = append(leaves, n)
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	t.firstLeaf = leaves[0]
	// Internal levels.
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var up []*bnode
		for start := 0; start < len(level); start += t.fanout {
			end := start + t.fanout
			if end > len(level) {
				end = len(level)
			}
			n := &bnode{children: append([]*bnode(nil), level[start:end]...)}
			for _, c := range n.children[1:] {
				n.keys = append(n.keys, c.minKey())
			}
			up = append(up, n)
		}
		level = up
		t.height++
	}
	t.root = level[0]
	// Page numbering: internal nodes first (top-down), then leaves
	// left-to-right so leaf chains are sequential extents.
	t.nextPage = 0
	t.numberInternal(t.root)
	for _, l := range leaves {
		l.pageNo = t.nextPage
		t.nextPage++
	}
}

func (n *bnode) minKey() int32 {
	if n.leaf {
		return n.keys[0]
	}
	return n.children[0].minKey()
}

func (t *BTree) numberInternal(n *bnode) {
	if n == nil || n.leaf {
		return
	}
	n.pageNo = t.nextPage
	t.nextPage++
	for _, c := range n.children {
		t.numberInternal(c)
	}
}

// readNode charges one index-page access to the calling process.
func (t *BTree) readNode(p *sim.Proc, n *bnode) {
	st := t.st
	st.node.UseCPU(p, st.prm.Engine.InstrPerIndexNode)
	st.node.UseCPU(p, st.prm.Engine.InstrPerPageIO)
	if st.pool.Get(t.idxFileID, n.pageNo) {
		return
	}
	st.pool.Put(t.idxFileID, n.pageNo)
	st.node.Drive.Read(p, t.idxFileID, n.pageNo, st.prm.PageBytes)
}

// writeNode charges one index-page write.
func (t *BTree) writeNode(p *sim.Proc, n *bnode) {
	st := t.st
	st.node.UseCPU(p, st.prm.Engine.InstrPerPageIO)
	st.node.Drive.Write(p, t.idxFileID, n.pageNo, st.prm.PageBytes)
	st.pool.Put(t.idxFileID, n.pageNo)
}

// descend walks root→leaf toward key, charging a read per level, and
// returns the leaf and the path of internal nodes above it.
func (t *BTree) descend(p *sim.Proc, key int32) (*bnode, []*bnode) {
	if t.root == nil {
		return nil, nil
	}
	var path []*bnode
	n := t.root
	for !n.leaf {
		t.readNode(p, n)
		path = append(path, n)
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n = n.children[i]
	}
	t.readNode(p, n)
	return n, path
}

// SearchRIDs returns the RIDs of tuples with the exact key (NonClustered).
func (t *BTree) SearchRIDs(p *sim.Proc, key int32) []RID {
	if t.Kind != NonClustered {
		panic("wiss: SearchRIDs on clustered index")
	}
	var out []RID
	leaf, _ := t.descend(p, key)
	for leaf != nil {
		i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= key })
		if i == len(leaf.keys) {
			leaf = t.nextLeaf(p, leaf)
			continue
		}
		for ; i < len(leaf.keys) && leaf.keys[i] == key; i++ {
			out = append(out, leaf.rids[i])
		}
		if i < len(leaf.keys) {
			break
		}
		leaf = t.nextLeaf(p, leaf)
	}
	return out
}

func (t *BTree) nextLeaf(p *sim.Proc, leaf *bnode) *bnode {
	if leaf.next == nil {
		return nil
	}
	t.readNode(p, leaf.next)
	return leaf.next
}

// RangeRIDs streams the RIDs of tuples with lo <= key <= hi to emit, walking
// the leaf chain (NonClustered). Every leaf page touched is charged.
func (t *BTree) RangeRIDs(p *sim.Proc, lo, hi int32, emit func(RID)) {
	if t.Kind != NonClustered {
		panic("wiss: RangeRIDs on clustered index")
	}
	leaf, _ := t.descend(p, lo)
	for leaf != nil {
		i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= lo })
		for ; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return
			}
			emit(leaf.rids[i])
		}
		leaf = t.nextLeaf(p, leaf)
	}
}

// StartPage returns the data page at which a clustered range scan for keys
// >= lo must begin, charging the root→leaf traversal.
func (t *BTree) StartPage(p *sim.Proc, lo int32) int {
	if t.Kind != Clustered {
		panic("wiss: StartPage on non-clustered index")
	}
	leaf, _ := t.descend(p, lo)
	if leaf == nil {
		return 0
	}
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] > lo })
	if i > 0 {
		i--
	}
	return int(leaf.dataPage[i])
}

// InsertEntry adds (key, rid) to a NonClustered index, splitting leaves as
// needed. Charges the traversal reads plus the leaf (and any split) writes.
func (t *BTree) InsertEntry(p *sim.Proc, key int32, rid RID) {
	if t.Kind != NonClustered {
		panic("wiss: InsertEntry on clustered index")
	}
	t.insertLeafEntry(p, key, func(leaf *bnode, i int) {
		leaf.rids = append(leaf.rids, RID{})
		copy(leaf.rids[i+1:], leaf.rids[i:])
		leaf.rids[i] = rid
	})
}

// InsertClusteredEntry adds a (key -> data page) entry to a Clustered index,
// registering a new data page created by an overflow insert.
func (t *BTree) InsertClusteredEntry(p *sim.Proc, key int32, page int32) {
	if t.Kind != Clustered {
		panic("wiss: InsertClusteredEntry on non-clustered index")
	}
	t.insertLeafEntry(p, key, func(leaf *bnode, i int) {
		leaf.dataPage = append(leaf.dataPage, 0)
		copy(leaf.dataPage[i+1:], leaf.dataPage[i:])
		leaf.dataPage[i] = page
	})
}

// ensureOwned gives the tree a private copy of its node graph before the
// first mutation of a shared (snapshot-backed) tree. Cloning charges no
// simulated time: it models nothing the 1988 machine did — it is host-side
// bookkeeping that keeps the frozen image immutable.
func (t *BTree) ensureOwned() {
	if !t.shared {
		return
	}
	t.shared = false
	if t.root == nil {
		return
	}
	clones := make(map[*bnode]*bnode)
	t.root = cloneSubtree(t.root, clones)
	// The leaf chain threads through the clones in the same order.
	for old, cl := range clones {
		if old.next != nil {
			cl.next = clones[old.next]
		}
	}
	t.firstLeaf = clones[t.firstLeaf]
}

func cloneSubtree(n *bnode, clones map[*bnode]*bnode) *bnode {
	cl := &bnode{
		pageNo:   n.pageNo,
		leaf:     n.leaf,
		keys:     append([]int32(nil), n.keys...),
		rids:     append([]RID(nil), n.rids...),
		dataPage: append([]int32(nil), n.dataPage...),
	}
	clones[n] = cl
	if len(n.children) > 0 {
		cl.children = make([]*bnode, len(n.children))
		for i, c := range n.children {
			cl.children[i] = cloneSubtree(c, clones)
		}
	}
	return cl
}

func (t *BTree) insertLeafEntry(p *sim.Proc, key int32, place func(leaf *bnode, i int)) {
	t.ensureOwned()
	t.entries++
	if t.root == nil {
		t.root = &bnode{leaf: true, pageNo: t.allocPage()}
		t.firstLeaf = t.root
		t.height = 1
	}
	leaf, path := t.descend(p, key)
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] > key })
	leaf.keys = append(leaf.keys, 0)
	copy(leaf.keys[i+1:], leaf.keys[i:])
	leaf.keys[i] = key
	place(leaf, i)
	t.writeNode(p, leaf)
	if len(leaf.keys) > t.fanout {
		t.splitLeaf(p, leaf, path)
	}
}

func (t *BTree) allocPage() int {
	pg := t.nextPage
	t.nextPage++
	return pg
}

func (t *BTree) splitLeaf(p *sim.Proc, leaf *bnode, path []*bnode) {
	// Never divide a run of equal keys across two leaves: search descends
	// strictly right of a separator for equal keys, so a run spanning the
	// split point would become unreachable. Runs longer than a page stay
	// on one (oversize) leaf, standing in for WiSS overflow chains.
	mid := len(leaf.keys) / 2
	for mid < len(leaf.keys) && leaf.keys[mid] == leaf.keys[mid-1] {
		mid++
	}
	if mid == len(leaf.keys) {
		mid = len(leaf.keys) / 2
		for mid > 1 && leaf.keys[mid] == leaf.keys[mid-1] {
			mid--
		}
		if mid <= 1 && leaf.keys[0] == leaf.keys[len(leaf.keys)-1] {
			return // single run fills the leaf; keep it oversize
		}
	}
	right := &bnode{
		leaf:   true,
		pageNo: t.allocPage(),
		keys:   append([]int32(nil), leaf.keys[mid:]...),
		next:   leaf.next,
	}
	leaf.keys = leaf.keys[:mid]
	if leaf.rids != nil {
		right.rids = append([]RID(nil), leaf.rids[mid:]...)
		leaf.rids = leaf.rids[:mid]
	}
	if leaf.dataPage != nil {
		right.dataPage = append([]int32(nil), leaf.dataPage[mid:]...)
		leaf.dataPage = leaf.dataPage[:mid]
	}
	leaf.next = right
	t.writeNode(p, leaf)
	t.writeNode(p, right)
	t.insertIntoParent(p, leaf, right.keys[0], right, path)
}

func (t *BTree) insertIntoParent(p *sim.Proc, left *bnode, sep int32, right *bnode, path []*bnode) {
	if len(path) == 0 {
		newRoot := &bnode{pageNo: t.allocPage(), keys: []int32{sep}, children: []*bnode{left, right}}
		t.root = newRoot
		t.height++
		t.writeNode(p, newRoot)
		return
	}
	parent := path[len(path)-1]
	i := 0
	for ; i < len(parent.children); i++ {
		if parent.children[i] == left {
			break
		}
	}
	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	t.writeNode(p, parent)
	if len(parent.children) > t.fanout {
		t.splitInternal(p, parent, path[:len(path)-1])
	}
}

func (t *BTree) splitInternal(p *sim.Proc, n *bnode, path []*bnode) {
	mid := len(n.children) / 2
	sep := n.keys[mid-1]
	right := &bnode{
		pageNo:   t.allocPage(),
		keys:     append([]int32(nil), n.keys[mid:]...),
		children: append([]*bnode(nil), n.children[mid:]...),
	}
	n.keys = n.keys[:mid-1]
	n.children = n.children[:mid]
	t.writeNode(p, n)
	t.writeNode(p, right)
	t.insertIntoParent(p, n, sep, right, path)
}

// DeleteEntry removes one (key, rid) pair from a NonClustered index (lazy
// deletion: leaves are never merged, matching the single-tuple update
// workloads the paper measures).
func (t *BTree) DeleteEntry(p *sim.Proc, key int32, rid RID) bool {
	if t.Kind != NonClustered {
		panic("wiss: DeleteEntry on clustered index")
	}
	t.ensureOwned()
	leaf, _ := t.descend(p, key)
	for leaf != nil {
		i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= key })
		for ; i < len(leaf.keys) && leaf.keys[i] == key; i++ {
			if leaf.rids[i] == rid {
				leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
				leaf.rids = append(leaf.rids[:i], leaf.rids[i+1:]...)
				t.writeNode(p, leaf)
				t.entries--
				return true
			}
		}
		if i < len(leaf.keys) {
			return false
		}
		leaf = t.nextLeaf(p, leaf)
	}
	return false
}

// Rebuild reconstructs the index from the current file contents (used after
// bulk file mutations that bypass entry-level maintenance). A shared tree
// simply abandons the image's nodes: bulkBuild allocates a fresh graph.
func (t *BTree) Rebuild() {
	t.shared = false
	t.bulkBuild()
}

// CheckInvariants verifies B+-tree structural invariants; tests use it.
func (t *BTree) CheckInvariants() error {
	if t.root == nil {
		return nil
	}
	return t.check(t.root, nil, nil, t.height)
}

func (t *BTree) check(n *bnode, lo, hi *int32, level int) error {
	for i, k := range n.keys {
		if lo != nil && k < *lo {
			return errOrder(n, i, "key below lower bound")
		}
		if hi != nil && k > *hi {
			return errOrder(n, i, "key above upper bound")
		}
		if i > 0 && n.keys[i-1] > k {
			return errOrder(n, i, "keys out of order")
		}
	}
	if n.leaf {
		if level != 1 {
			return errOrder(n, 0, "leaf at wrong depth")
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return errOrder(n, 0, "child/key count mismatch")
	}
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		}
		if err := t.check(c, clo, chi, level-1); err != nil {
			return err
		}
	}
	return nil
}

type btreeError struct{ msg string }

func (e btreeError) Error() string { return "btree: " + e.msg }

func errOrder(n *bnode, i int, msg string) error {
	return btreeError{msg: msg}
}
