package wiss

import (
	"testing"

	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

func TestWrapScannerFullRevolutionFromMidFile(t *testing.T) {
	s, st, prm := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(500, 3), nil)
	n := f.Pages()
	start := n / 2
	var order []int
	seen := map[int32]int{}
	run(t, s, func(p *sim.Proc) {
		ws := f.NewWrapScanner(start)
		for i := 0; i < n; i++ {
			idx := ws.NextIdx()
			pg := ws.NextPage(p, i+1 < n)
			order = append(order, idx)
			for _, tp := range pg.Tuples {
				seen[tp.Get(rel.Unique1)]++
			}
		}
		if ws.NextIdx() != start {
			t.Errorf("cursor after full revolution at page %d, want %d", ws.NextIdx(), start)
		}
	})
	for i, idx := range order {
		if want := (start + i) % n; idx != want {
			t.Fatalf("visit %d read page %d, want %d", i, idx, want)
		}
	}
	if len(seen) != 500 {
		t.Errorf("distinct tuples = %d, want 500", len(seen))
	}
	for u, c := range seen {
		if c != 1 {
			t.Errorf("tuple %d delivered %d times", u, c)
		}
	}
	_ = prm
}

func TestWrapScannerEmptyFile(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("empty")
	run(t, s, func(p *sim.Proc) {
		ws := f.NewWrapScanner(0)
		if pg := ws.NextPage(p, true); pg != nil {
			t.Errorf("NextPage on empty file = %v, want nil", pg)
		}
	})
}

func TestWrapScannerPrefetchSurvivesHandoff(t *testing.T) {
	// The read-ahead state lives in the scanner: a second process picking up
	// the cursor must consume the pending prefetch, not issue a second read
	// of the same page.
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(100, 4), nil)
	ws := f.NewWrapScanner(0)
	s.Spawn("first", func(p *sim.Proc) {
		ws.NextPage(p, true) // leaves page 1 prefetched
	})
	s.Run()
	s.Spawn("second", func(p *sim.Proc) {
		ws.NextPage(p, false)
	})
	s.Run()
	hits, misses := st.Pool().Stats()
	// Page 0 and page 1 each read exactly once: two misses, and the
	// hand-off consumed the prefetch instead of re-reading (no hits).
	if misses != 2 || hits != 0 {
		t.Errorf("pool stats hits=%d misses=%d, want 0/2", hits, misses)
	}
}
