package wiss

import (
	"container/heap"

	"gamma/internal/rel"
	"gamma/internal/sim"
)

// SortCosts gives the per-tuple CPU charges of the sort utility.
type SortCosts struct {
	InstrPerTupleRun   int // quicksort during run formation
	InstrPerTupleMerge int // heap maintenance during a merge pass
}

// SortFile sorts src on key into a new file on the same store using external
// merge sort with memBytes of sort memory, charging all I/O and CPU to p.
// It reproduces the cost structure of WiSS's sort utility and of the
// Teradata AMPs' sort phase: sequential run formation, then merge passes
// whose interleaved run reads are random I/Os.
func SortFile(p *sim.Proc, src *File, key rel.Attr, memBytes int, costs SortCosts) *File {
	st := src.st
	pageBytes := st.prm.PageBytes
	tuplesPerMem := memBytes / st.prm.SlotBytes
	if tuplesPerMem < st.prm.TuplesPerPage() {
		tuplesPerMem = st.prm.TuplesPerPage()
	}

	// Pass 0: run formation.
	var runs []*File
	var buf []rel.Tuple
	flushRun := func() {
		if len(buf) == 0 {
			return
		}
		st.node.UseCPU(p, costs.InstrPerTupleRun*len(buf))
		rel.SortByAttr(buf, key)
		run := st.CreateFile(src.Name + ".run")
		ap := run.NewAppender()
		for _, t := range buf {
			ap.Append(p, t)
		}
		ap.Close(p)
		run.Sorted, run.SortKey = true, key
		runs = append(runs, run)
		buf = buf[:0]
	}
	sc := src.NewScanner()
	for pg := sc.NextPage(p); pg != nil; pg = sc.NextPage(p) {
		for s, t := range pg.Tuples {
			if !pg.Live(s) {
				continue
			}
			buf = append(buf, t)
			if len(buf) >= tuplesPerMem {
				flushRun()
			}
		}
	}
	flushRun()
	if len(runs) == 0 {
		out := st.CreateFile(src.Name + ".sorted")
		out.Sorted, out.SortKey = true, key
		return out
	}

	// Merge passes.
	fanin := memBytes/pageBytes - 1
	if fanin < 2 {
		fanin = 2
	}
	for len(runs) > 1 {
		var next []*File
		for start := 0; start < len(runs); start += fanin {
			end := start + fanin
			if end > len(runs) {
				end = len(runs)
			}
			merged := mergeRuns(p, st, src.Name, runs[start:end], key, costs)
			next = append(next, merged)
		}
		for _, r := range runs {
			st.DropFile(r)
		}
		runs = next
	}
	out := runs[0]
	out.Name = src.Name + ".sorted"
	return out
}

type runCursor struct {
	f    *File
	page int
	slot int
	cur  *Page
}

func (rc *runCursor) tuple() rel.Tuple { return rc.cur.Tuples[rc.slot] }

// advance moves to the next tuple, reading pages as needed. Reports false at
// end of run.
func (rc *runCursor) advance(p *sim.Proc) bool {
	rc.slot++
	if rc.cur != nil && rc.slot < len(rc.cur.Tuples) {
		return true
	}
	rc.page++
	rc.slot = 0
	if rc.page >= rc.f.Pages() {
		rc.cur = nil
		return false
	}
	rc.cur = rc.f.ReadPage(p, rc.page)
	return len(rc.cur.Tuples) > 0
}

func (rc *runCursor) open(p *sim.Proc) bool {
	rc.page, rc.slot = -1, 0
	rc.cur = nil
	rc.page = 0
	if rc.f.Pages() == 0 {
		return false
	}
	rc.cur = rc.f.ReadPage(p, 0)
	return len(rc.cur.Tuples) > 0
}

type mergeHeap struct {
	cursors []*runCursor
	key     rel.Attr
}

func (h mergeHeap) Len() int { return len(h.cursors) }
func (h mergeHeap) Less(i, j int) bool {
	return h.cursors[i].tuple().Get(h.key) < h.cursors[j].tuple().Get(h.key)
}
func (h mergeHeap) Swap(i, j int) { h.cursors[i], h.cursors[j] = h.cursors[j], h.cursors[i] }
func (h *mergeHeap) Push(x any)   { h.cursors = append(h.cursors, x.(*runCursor)) }
func (h *mergeHeap) Pop() any {
	old := h.cursors
	n := len(old)
	c := old[n-1]
	h.cursors = old[:n-1]
	return c
}

func mergeRuns(p *sim.Proc, st *Store, name string, runs []*File, key rel.Attr, costs SortCosts) *File {
	out := st.CreateFile(name + ".merge")
	out.Sorted, out.SortKey = true, key
	ap := out.NewAppender()
	h := &mergeHeap{key: key}
	for _, r := range runs {
		rc := &runCursor{f: r}
		if rc.open(p) {
			h.cursors = append(h.cursors, rc)
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		rc := h.cursors[0]
		st.node.UseCPU(p, costs.InstrPerTupleMerge)
		ap.Append(p, rc.tuple())
		if rc.advance(p) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	ap.Close(p)
	return out
}
