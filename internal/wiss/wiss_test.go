package wiss

import (
	"testing"

	"gamma/internal/config"
	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// testStore builds a single-node store with the default parameters.
func testStore(t *testing.T) (*sim.Sim, *Store, *config.Params) {
	t.Helper()
	s := sim.New()
	prm := config.Default()
	n := nose.NewNetwork(s, prm.Net, prm.CPU)
	node := n.AddNode(true, prm.Disk)
	return s, NewStore(node, &prm), &prm
}

func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc)) sim.Time {
	t.Helper()
	s.Spawn("test", fn)
	return s.Run()
}

func TestLoadDirectPaging(t *testing.T) {
	_, st, prm := testStore(t)
	f := st.CreateFile("r")
	ts := wisconsin.Generate(1000, 1)
	f.LoadDirect(ts, nil)
	wantPages := (1000 + prm.TuplesPerPage() - 1) / prm.TuplesPerPage()
	if f.Pages() != wantPages {
		t.Errorf("pages = %d, want %d", f.Pages(), wantPages)
	}
	if f.Len() != 1000 {
		t.Errorf("len = %d", f.Len())
	}
	if prm.TuplesPerPage() != 17 {
		t.Errorf("tuples per 4KB page = %d, want 17 (paper §5.1)", prm.TuplesPerPage())
	}
}

func TestScannerVisitsEveryTupleOnce(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(500, 2), nil)
	seen := map[int32]bool{}
	run(t, s, func(p *sim.Proc) {
		sc := f.NewScanner()
		for pg := sc.NextPage(p); pg != nil; pg = sc.NextPage(p) {
			for _, tp := range pg.Tuples {
				u := tp.Get(rel.Unique1)
				if seen[u] {
					t.Errorf("tuple %d seen twice", u)
				}
				seen[u] = true
			}
		}
	})
	if len(seen) != 500 {
		t.Errorf("saw %d tuples, want 500", len(seen))
	}
}

func TestScanIsMostlySequentialOnDisk(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(2000, 3), nil)
	run(t, s, func(p *sim.Proc) {
		sc := f.NewScanner()
		for pg := sc.NextPage(p); pg != nil; pg = sc.NextPage(p) {
			_ = pg
		}
	})
	ds := st.Node().Drive.Stats()
	if ds.RandReads != 1 || ds.SeqReads != int64(f.Pages()-1) {
		t.Errorf("drive stats = %+v, want 1 random + %d sequential", ds, f.Pages()-1)
	}
}

func TestAppenderRoundTrip(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("out")
	ts := wisconsin.Generate(100, 4)
	run(t, s, func(p *sim.Proc) {
		ap := f.NewAppender()
		for _, tp := range ts {
			ap.Append(p, tp)
		}
		if n := ap.Close(p); n != 100 {
			t.Errorf("appended %d", n)
		}
	})
	if f.Len() != 100 {
		t.Errorf("len = %d", f.Len())
	}
	// Appender must have written every full page plus the final partial.
	ds := st.Node().Drive.Stats()
	if ds.Writes() != int64(f.Pages()) {
		t.Errorf("writes = %d, want %d", ds.Writes(), f.Pages())
	}
}

func TestBufferPoolAvoidsSecondRead(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(50, 5), nil)
	run(t, s, func(p *sim.Proc) {
		f.ReadPage(p, 0)
		before := st.Node().Drive.Stats().Reads()
		f.ReadPage(p, 0)
		if after := st.Node().Drive.Stats().Reads(); after != before {
			t.Errorf("second read hit the drive (%d -> %d reads)", before, after)
		}
	})
}

func TestBufferPoolLRUEviction(t *testing.T) {
	bp := NewBufferPool(2)
	bp.Put(1, 0)
	bp.Put(1, 1)
	bp.Get(1, 0) // make page 0 MRU
	bp.Put(1, 2) // evicts page 1
	if !bp.Get(1, 0) {
		t.Error("page 0 should be resident")
	}
	if bp.Get(1, 1) {
		t.Error("page 1 should have been evicted")
	}
	if !bp.Get(1, 2) {
		t.Error("page 2 should be resident")
	}
}

func TestUpdateAndFetchRID(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(40, 6), nil)
	run(t, s, func(p *sim.Proc) {
		rid := RID{Page: 1, Slot: 3}
		tp := f.FetchRID(p, rid)
		tp.Set(rel.Ten, 999)
		f.UpdateRID(p, rid, tp)
		if got := f.FetchRID(p, rid); got.Get(rel.Ten) != 999 {
			t.Errorf("update lost: %v", got.Get(rel.Ten))
		}
	})
}

func TestDeleteRID(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(40, 7), nil)
	run(t, s, func(p *sim.Proc) {
		before := f.Len()
		f.DeleteRID(p, RID{Page: 0, Slot: 0})
		if f.Len() != before-1 {
			t.Errorf("len = %d, want %d", f.Len(), before-1)
		}
	})
}
