package wiss

import (
	"gamma/internal/config"
	"gamma/internal/nose"
	"gamma/internal/sim"
)

// testParams returns a fresh default parameter set for tests.
func testParams() config.Params { return config.Default() }

// storeOn creates a one-node network and returns a store on its disk node.
func storeOn(s *sim.Sim, prm *config.Params) *Store {
	net := nose.NewNetwork(s, prm.Net, prm.CPU)
	node := net.AddNode(true, prm.Disk)
	return NewStore(node, prm)
}
