package wiss

// BufferPool is a per-node LRU page cache. Because tuple data lives in host
// memory either way, the pool tracks only residency: Get reports whether a
// page access is a hit (no simulated I/O) or a miss.
//
// Residency is an intrusive doubly-linked list (head = LRU victim, tail =
// MRU) with a map for lookup, so Get/Put/touch are O(1). Evicted nodes are
// recycled through a freelist, so steady-state page traffic allocates
// nothing.
type BufferPool struct {
	frames     int
	index      map[poolKey]*frameNode
	head, tail *frameNode // head = least recently used
	n          int        // resident pages
	free       *frameNode // recycled nodes (chained via next)

	hits, misses int64
}

type poolKey struct {
	file int
	page int
}

type frameNode struct {
	key        poolKey
	prev, next *frameNode
}

// NewBufferPool creates a pool with the given number of page frames.
func NewBufferPool(frames int) *BufferPool {
	if frames < 1 {
		frames = 1
	}
	return &BufferPool{frames: frames, index: make(map[poolKey]*frameNode)}
}

// Get reports whether (file, page) is resident, updating recency and
// hit/miss counters.
func (bp *BufferPool) Get(file, page int) bool {
	if nd, ok := bp.index[poolKey{file, page}]; ok {
		bp.touch(nd)
		bp.hits++
		return true
	}
	bp.misses++
	return false
}

// Put makes (file, page) resident, evicting the LRU page if the pool is full.
func (bp *BufferPool) Put(file, page int) {
	k := poolKey{file, page}
	if nd, ok := bp.index[k]; ok {
		bp.touch(nd)
		return
	}
	if bp.n >= bp.frames {
		evict := bp.head
		bp.unlink(evict)
		delete(bp.index, evict.key)
		bp.n--
		bp.recycle(evict)
	}
	nd := bp.alloc(k)
	bp.pushBack(nd)
	bp.index[k] = nd
	bp.n++
}

// touch moves nd to the MRU end.
func (bp *BufferPool) touch(nd *frameNode) {
	if bp.tail == nd {
		return
	}
	bp.unlink(nd)
	bp.pushBack(nd)
}

func (bp *BufferPool) unlink(nd *frameNode) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		bp.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		bp.tail = nd.prev
	}
	nd.prev, nd.next = nil, nil
}

func (bp *BufferPool) pushBack(nd *frameNode) {
	nd.prev = bp.tail
	nd.next = nil
	if bp.tail != nil {
		bp.tail.next = nd
	} else {
		bp.head = nd
	}
	bp.tail = nd
}

func (bp *BufferPool) alloc(k poolKey) *frameNode {
	if nd := bp.free; nd != nil {
		bp.free = nd.next
		nd.key = k
		nd.prev, nd.next = nil, nil
		return nd
	}
	return &frameNode{key: k}
}

func (bp *BufferPool) recycle(nd *frameNode) {
	nd.prev = nil
	nd.next = bp.free
	bp.free = nd
}

// InvalidateFile drops every resident page of the file (file deletion).
func (bp *BufferPool) InvalidateFile(file int) {
	for nd := bp.head; nd != nil; {
		next := nd.next
		if nd.key.file == file {
			bp.unlink(nd)
			delete(bp.index, nd.key)
			bp.n--
			bp.recycle(nd)
		}
		nd = next
	}
}

// Reset empties the pool (used between benchmark queries so every query
// starts cold, matching the paper's single-user methodology).
func (bp *BufferPool) Reset() {
	for nd := bp.head; nd != nil; {
		next := nd.next
		bp.recycle(nd)
		nd = next
	}
	bp.head, bp.tail = nil, nil
	bp.n = 0
	clear(bp.index)
}

// Stats returns cumulative hit/miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) { return bp.hits, bp.misses }

// Len returns the number of resident pages.
func (bp *BufferPool) Len() int { return bp.n }
