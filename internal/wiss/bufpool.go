package wiss

// BufferPool is a per-node LRU page cache. Because tuple data lives in host
// memory either way, the pool tracks only residency: Get reports whether a
// page access is a hit (no simulated I/O) or a miss.
type BufferPool struct {
	frames int
	lru    []poolKey // front = least recently used
	index  map[poolKey]int

	hits, misses int64
}

type poolKey struct {
	file int
	page int
}

// NewBufferPool creates a pool with the given number of page frames.
func NewBufferPool(frames int) *BufferPool {
	if frames < 1 {
		frames = 1
	}
	return &BufferPool{frames: frames, index: make(map[poolKey]int)}
}

// Get reports whether (file, page) is resident, updating recency and
// hit/miss counters.
func (bp *BufferPool) Get(file, page int) bool {
	k := poolKey{file, page}
	if _, ok := bp.index[k]; ok {
		bp.touch(k)
		bp.hits++
		return true
	}
	bp.misses++
	return false
}

// Put makes (file, page) resident, evicting the LRU page if the pool is full.
func (bp *BufferPool) Put(file, page int) {
	k := poolKey{file, page}
	if _, ok := bp.index[k]; ok {
		bp.touch(k)
		return
	}
	if len(bp.lru) >= bp.frames {
		evict := bp.lru[0]
		bp.lru = bp.lru[1:]
		delete(bp.index, evict)
		bp.reindex()
	}
	bp.lru = append(bp.lru, k)
	bp.index[k] = len(bp.lru) - 1
}

// touch moves k to the MRU end.
func (bp *BufferPool) touch(k poolKey) {
	i := bp.index[k]
	bp.lru = append(append(bp.lru[:i:i], bp.lru[i+1:]...), k)
	bp.reindex()
}

func (bp *BufferPool) reindex() {
	for i, k := range bp.lru {
		bp.index[k] = i
	}
}

// InvalidateFile drops every resident page of the file (file deletion).
func (bp *BufferPool) InvalidateFile(file int) {
	keep := bp.lru[:0]
	for _, k := range bp.lru {
		if k.file == file {
			delete(bp.index, k)
		} else {
			keep = append(keep, k)
		}
	}
	bp.lru = keep
	bp.reindex()
}

// Reset empties the pool (used between benchmark queries so every query
// starts cold, matching the paper's single-user methodology).
func (bp *BufferPool) Reset() {
	bp.lru = nil
	bp.index = make(map[poolKey]int)
}

// Stats returns cumulative hit/miss counts.
func (bp *BufferPool) Stats() (hits, misses int64) { return bp.hits, bp.misses }

// Len returns the number of resident pages.
func (bp *BufferPool) Len() int { return len(bp.lru) }
