package wiss

import (
	"testing"

	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

var testCosts = SortCosts{InstrPerTupleRun: 400, InstrPerTupleMerge: 200}

func TestSortFileProducesSortedOutput(t *testing.T) {
	s, st, prm := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(5000, 21), nil)
	var out *File
	s.Spawn("sort", func(p *sim.Proc) {
		out = SortFile(p, f, rel.Unique2, 16*prm.PageBytes, testCosts)
	})
	s.Run()
	if out.Len() != 5000 {
		t.Fatalf("sorted file has %d tuples, want 5000", out.Len())
	}
	last := int32(-1)
	for i := 0; i < out.Pages(); i++ {
		for _, tp := range out.page(i).Tuples {
			k := tp.Get(rel.Unique2)
			if k < last {
				t.Fatalf("output not sorted: %d after %d", k, last)
			}
			last = k
		}
	}
	if !out.Sorted || out.SortKey != rel.Unique2 {
		t.Error("output not marked sorted")
	}
}

func TestSortNeedsMultipleRunsWhenMemorySmall(t *testing.T) {
	s, st, prm := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(2000, 22), nil)
	var small, large sim.Dur
	s.Spawn("sort", func(p *sim.Proc) {
		start := p.Now()
		SortFile(p, f, rel.Unique1, 2*prm.PageBytes, testCosts) // tiny memory
		small = p.Now() - start
		start = p.Now()
		SortFile(p, f, rel.Unique1, 1024*prm.PageBytes, testCosts) // plentiful
		large = p.Now() - start
	})
	s.Run()
	if small <= large {
		t.Errorf("small-memory sort (%v) should cost more than large-memory sort (%v)", small, large)
	}
}

func TestSortEmptyFile(t *testing.T) {
	s, st, prm := testStore(t)
	f := st.CreateFile("empty")
	var out *File
	s.Spawn("sort", func(p *sim.Proc) {
		out = SortFile(p, f, rel.Unique1, 8*prm.PageBytes, testCosts)
	})
	s.Run()
	if out.Len() != 0 {
		t.Errorf("len = %d", out.Len())
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	s, st, prm := testStore(t)
	f := st.CreateFile("r")
	ts := wisconsin.Generate(3000, 23)
	f.LoadDirect(ts, nil)
	var out *File
	s.Spawn("sort", func(p *sim.Proc) {
		out = SortFile(p, f, rel.Ten, 4*prm.PageBytes, testCosts)
	})
	s.Run()
	counts := map[rel.Tuple]int{}
	for _, tp := range ts {
		counts[tp]++
	}
	for i := 0; i < out.Pages(); i++ {
		for _, tp := range out.page(i).Tuples {
			counts[tp]--
		}
	}
	for _, c := range counts {
		if c != 0 {
			t.Fatal("sorted output is not a permutation of the input")
		}
	}
}
