// Package wiss reproduces the Wisconsin Storage System (WiSS) that Gamma's
// file services are built on (§2, [CHOU85]): structured sequential (heap)
// files, clustered and non-clustered B+-tree indices, an external sort
// utility, and a per-node LRU buffer pool.
//
// Tuples are held in memory (the host machine plays the role of the disk
// platter), but every page access is charged to the owning node's simulated
// drive and CPU, so response times reflect the paper's hardware.
package wiss

import (
	"fmt"

	"gamma/internal/config"
	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

// RID identifies a tuple by page number and slot within its file.
type RID struct {
	Page int32
	Slot int32
}

// Page is one disk page of tuples. Slots are stable: deletion tombstones a
// slot rather than moving tuples, so RIDs held by secondary indexes stay
// valid across updates.
//
// A frozen page belongs to a machine image (Store.Snapshot): it may be shared
// by any number of restored stores, so it must never be written in place.
// Every mutation path goes through File.mutPage, which clones a frozen page
// before the first write (copy-on-write).
type Page struct {
	Tuples []rel.Tuple
	dead   []bool // nil when every slot is live (the common case)
	frozen bool   // shared with a snapshot image; clone before writing
}

// clone returns a private, writable copy of the page.
func (pg *Page) clone() *Page {
	cl := &Page{Tuples: append([]rel.Tuple(nil), pg.Tuples...)}
	if pg.dead != nil {
		cl.dead = append([]bool(nil), pg.dead...)
	}
	return cl
}

// Live reports whether slot holds a live tuple.
func (pg *Page) Live(slot int) bool {
	return pg.dead == nil || slot >= len(pg.dead) || !pg.dead[slot]
}

// Kill tombstones a slot. It reports whether the slot was live.
func (pg *Page) Kill(slot int) bool {
	if !pg.Live(slot) {
		return false
	}
	if pg.dead == nil {
		pg.dead = make([]bool, len(pg.Tuples))
	}
	for len(pg.dead) < len(pg.Tuples) {
		pg.dead = append(pg.dead, false)
	}
	pg.dead[slot] = true
	return true
}

// LiveTuples appends the page's live tuples to dst and returns it.
func (pg *Page) LiveTuples(dst []rel.Tuple) []rel.Tuple {
	if pg.dead == nil {
		return append(dst, pg.Tuples...)
	}
	for i, t := range pg.Tuples {
		if pg.Live(i) {
			dst = append(dst, t)
		}
	}
	return dst
}

// Store is the WiSS instance on one node: a file-id space, the files
// themselves, and the buffer pool in front of the node's drive.
type Store struct {
	node   *nose.Node
	prm    *config.Params
	pool   *BufferPool
	nextID int
	files  map[int]*File
	// cowClones counts pages cloned by copy-on-write since the store was
	// created (always 0 on a store that never restored or froze an image).
	cowClones int64
}

// NewStore creates the storage manager for a node. The node must have a
// drive (diskless processors have no Store; they spool via a remote one).
func NewStore(node *nose.Node, prm *config.Params) *Store {
	if node.Drive == nil {
		panic("wiss: NewStore on diskless node")
	}
	frames := prm.Memory.BufferPoolBytes / prm.PageBytes
	if frames < 4 {
		frames = 4
	}
	return &Store{
		node:  node,
		prm:   prm,
		pool:  NewBufferPool(frames),
		files: make(map[int]*File),
	}
}

// Node returns the owning node.
func (st *Store) Node() *nose.Node { return st.node }

// Params returns the machine parameters.
func (st *Store) Params() *config.Params { return st.prm }

// Pool returns the node's buffer pool.
func (st *Store) Pool() *BufferPool { return st.pool }

// COWClones returns the number of shared (frozen) pages this store has cloned
// on first write since creation.
func (st *Store) COWClones() int64 { return st.cowClones }

// CreateFile allocates an empty heap file.
func (st *Store) CreateFile(name string) *File {
	st.nextID++
	f := &File{st: st, ID: st.nextID, Name: name}
	st.files[f.ID] = f
	return f
}

// DropFile releases a file and purges its pages from the buffer pool. §4:
// aborting a "retrieve into" only requires deleting the result files — this
// is the cheap QUEL recovery path.
func (st *Store) DropFile(f *File) {
	delete(st.files, f.ID)
	st.pool.InvalidateFile(f.ID)
}

// File is a heap file: a sequence of pages each holding up to
// Params.TuplesPerPage() tuples. If Sorted is set the file is maintained in
// SortKey order (the base of a clustered index).
type File struct {
	st      *Store
	ID      int
	Name    string
	pages   []*Page
	nTuples int
	Sorted  bool
	SortKey rel.Attr
	// Unordered is set when an overflow insert appended a page out of key
	// order; clustered range scans then lose their early-stop guarantee.
	Unordered bool
	// SlotBytes overrides the machine-wide per-tuple page footprint for
	// this file (projected result relations have narrower tuples); 0
	// means Params.SlotBytes.
	SlotBytes int
}

// Pages returns the number of pages in the file.
func (f *File) Pages() int { return len(f.pages) }

// Len returns the number of tuples in the file.
func (f *File) Len() int { return f.nTuples }

// Store returns the owning storage manager.
func (f *File) Store() *Store { return f.st }

func (f *File) String() string {
	return fmt.Sprintf("%s(id=%d pages=%d tuples=%d)", f.Name, f.ID, len(f.pages), f.nTuples)
}

// capacity is tuples per page at the current page size and tuple width.
func (f *File) capacity() int {
	slot := f.SlotBytes
	if slot <= 0 {
		slot = f.st.prm.SlotBytes
	}
	n := f.st.prm.PageBytes / slot
	if n < 1 {
		n = 1
	}
	return n
}

// LoadDirect bulk-places tuples into pages without charging simulated time;
// it is used to set up benchmark relations ("the database already exists"
// when an experiment begins). If sortKey is non-nil the tuples are sorted
// first and the file marked Sorted.
func (f *File) LoadDirect(tuples []rel.Tuple, sortKey *rel.Attr) {
	if sortKey != nil {
		rel.SortByAttr(tuples, *sortKey)
		f.Sorted, f.SortKey = true, *sortKey
	}
	cap := f.capacity()
	f.pages = nil
	// One backing copy for the whole file; each page is a capacity-capped
	// sub-slice, so a later append to one page reallocates instead of
	// clobbering its neighbor.
	backing := append([]rel.Tuple(nil), tuples...)
	for start := 0; start < len(tuples); start += cap {
		end := start + cap
		if end > len(tuples) {
			end = len(tuples)
		}
		pg := &Page{Tuples: backing[start:end:end]}
		f.pages = append(f.pages, pg)
	}
	f.nTuples = len(tuples)
}

// page returns page i without charging any cost (internal use).
func (f *File) page(i int) *Page { return f.pages[i] }

// mutPage returns page i for writing, cloning it first if it is frozen
// (shared with a snapshot image). The clone replaces the shared page in this
// file's page directory; the image and every other restored store keep the
// original.
func (f *File) mutPage(i int) *Page {
	pg := f.pages[i]
	if !pg.frozen {
		return pg
	}
	cl := pg.clone()
	f.pages[i] = cl
	f.st.cowClones++
	return cl
}

// LoadAppend adds one tuple to the end of the file without charging
// simulated time; callers that model their own insertion costs (the
// Teradata INSERT INTO path) use it for bookkeeping.
func (f *File) LoadAppend(t rel.Tuple) {
	if len(f.pages) == 0 || len(f.pages[len(f.pages)-1].Tuples) >= f.capacity() {
		f.pages = append(f.pages, &Page{})
	}
	pg := f.mutPage(len(f.pages) - 1)
	pg.Tuples = append(pg.Tuples, t)
	f.nTuples++
}

// PageTuples returns the tuples of page i without charging simulated cost
// (verification and test helper); tombstoned slots are included.
func (f *File) PageTuples(i int) []rel.Tuple { return f.pages[i].Tuples }

// Page returns page i without charging simulated cost (verification helper).
func (f *File) Page(i int) *Page { return f.pages[i] }

// ReadPage returns page i, charging buffer-pool CPU and (on a miss) a drive
// read to the calling process.
func (f *File) ReadPage(p *sim.Proc, i int) *Page {
	f.chargeRead(p, i, true)
	return f.pages[i]
}

// ReadPageAsync issues the drive read for page i without blocking and
// returns the page plus the simulated time at which it is ready. Used for
// double-buffered sequential scans: issue page i+1 while processing page i.
func (f *File) ReadPageAsync(p *sim.Proc, i int) (*Page, sim.Time) {
	ready := f.chargeRead(p, i, false)
	return f.pages[i], ready
}

func (f *File) chargeRead(p *sim.Proc, i int, block bool) sim.Time {
	st := f.st
	st.node.UseCPU(p, st.prm.Engine.InstrPerPageIO)
	if st.pool.Get(f.ID, i) {
		return p.Now() // buffer hit: no I/O
	}
	st.pool.Put(f.ID, i)
	if block {
		st.node.Drive.Read(p, f.ID, i, st.prm.PageBytes)
		return p.Now()
	}
	return st.node.Drive.ReadAsync(f.ID, i, st.prm.PageBytes)
}

// WritePage writes page i back (read-modify-write path of update queries).
func (f *File) WritePage(p *sim.Proc, i int) {
	st := f.st
	st.node.UseCPU(p, st.prm.Engine.InstrPerPageIO)
	st.node.Drive.Write(p, f.ID, i, st.prm.PageBytes)
	st.pool.Put(f.ID, i)
}

// FetchRID returns the tuple at rid, charging a page read.
func (f *File) FetchRID(p *sim.Proc, rid RID) rel.Tuple {
	pg := f.ReadPage(p, int(rid.Page))
	return pg.Tuples[rid.Slot]
}

// UpdateRID overwrites the tuple at rid in place (read page, modify, write).
func (f *File) UpdateRID(p *sim.Proc, rid RID, t rel.Tuple) {
	f.chargeRead(p, int(rid.Page), true)
	pg := f.mutPage(int(rid.Page))
	pg.Tuples[rid.Slot] = t
	f.WritePage(p, int(rid.Page))
}

// DeleteRID tombstones the tuple at rid (read page, mark, write back).
// Slots are stable, so index entries for other tuples remain valid; index
// entries for the deleted tuple must be removed by the caller.
func (f *File) DeleteRID(p *sim.Proc, rid RID) {
	f.chargeRead(p, int(rid.Page), true)
	pg := f.mutPage(int(rid.Page))
	if pg.Kill(int(rid.Slot)) {
		f.nTuples--
	}
	f.WritePage(p, int(rid.Page))
}

// InsertIntoPage places t in the first free slot of page pageNo, reporting
// failure if the page is full. Used for clustered (sorted) files: the tuple
// joins the page its key range maps to, preserving page-level clustering.
func (f *File) InsertIntoPage(p *sim.Proc, pageNo int, t rel.Tuple) (RID, bool) {
	pg := f.ReadPage(p, pageNo)
	if len(pg.Tuples) >= f.capacity() {
		return RID{}, false
	}
	pg = f.mutPage(pageNo)
	pg.Tuples = append(pg.Tuples, t)
	f.nTuples++
	f.WritePage(p, pageNo)
	return RID{Page: int32(pageNo), Slot: int32(len(pg.Tuples) - 1)}, true
}

// AppendNewPage creates a fresh page at the end of the file holding t (the
// overflow path when a clustered page is full) and returns its RID.
func (f *File) AppendNewPage(p *sim.Proc, t rel.Tuple) RID {
	if f.Sorted {
		f.Unordered = true
	}
	pageNo := len(f.pages)
	f.pages = append(f.pages, &Page{Tuples: []rel.Tuple{t}})
	f.nTuples++
	st := f.st
	st.node.UseCPU(p, st.prm.Engine.InstrPerPageIO)
	st.node.Drive.Write(p, f.ID, pageNo, st.prm.PageBytes)
	st.pool.Put(f.ID, pageNo)
	return RID{Page: int32(pageNo), Slot: 0}
}

// Appender buffers tuples into a page image and writes each page as it
// fills. Store operators and spool writers use it; Close flushes the final
// partial page and waits for all outstanding writes.
type Appender struct {
	f       *File
	cur     *Page
	lastIO  sim.Time
	written int
}

// NewAppender starts appending at the end of the file.
func (f *File) NewAppender() *Appender { return &Appender{f: f} }

// Append adds one tuple, writing the page to disk when it fills. The write
// is asynchronous (write-behind): the appender only blocks when the drive
// falls an entire page behind.
func (a *Appender) Append(p *sim.Proc, t rel.Tuple) {
	f := a.f
	if a.cur == nil {
		a.cur = &Page{Tuples: make([]rel.Tuple, 0, f.capacity())}
	}
	a.cur.Tuples = append(a.cur.Tuples, t)
	f.nTuples++
	a.written++
	if len(a.cur.Tuples) == f.capacity() {
		a.flush(p)
	}
}

func (a *Appender) flush(p *sim.Proc) {
	f := a.f
	st := f.st
	pageNo := len(f.pages)
	f.pages = append(f.pages, a.cur)
	a.cur = nil
	st.node.UseCPU(p, st.prm.Engine.InstrPerPageIO)
	// Wait for the previous write-behind to finish before issuing the
	// next (one page of write buffering).
	p.WaitUntil(a.lastIO)
	a.lastIO = st.node.Drive.WriteAsync(f.ID, pageNo, st.prm.PageBytes)
	st.pool.Put(f.ID, pageNo)
}

// Close flushes the final partial page and blocks until the drive is idle on
// this appender's writes. Returns the number of tuples appended.
func (a *Appender) Close(p *sim.Proc) int {
	if a.cur != nil && len(a.cur.Tuples) > 0 {
		a.flush(p)
	}
	p.WaitUntil(a.lastIO)
	return a.written
}

// Scanner iterates a file's tuples sequentially with one page of read-ahead
// (the drive fetches page i+1 while the CPU works on page i).
type Scanner struct {
	f        *File
	nextPage int
	cur      *Page
	curReady sim.Time
	slot     int
	started  bool
}

// NewScanner returns a scanner positioned before the first tuple.
func (f *File) NewScanner() *Scanner { return &Scanner{f: f} }

// NewScannerAt returns a scanner positioned at the start of page pageNo
// (used by clustered-index range scans).
func (f *File) NewScannerAt(pageNo int) *Scanner { return &Scanner{f: f, nextPage: pageNo} }

// NextPage advances to the next page and returns it, or nil at EOF. The
// caller processes the returned page's tuples, charging its own CPU.
func (s *Scanner) NextPage(p *sim.Proc) *Page {
	f := s.f
	if !s.started {
		s.started = true
		if s.nextPage >= len(f.pages) {
			return nil
		}
		s.cur, s.curReady = f.ReadPageAsync(p, s.nextPage)
		s.nextPage++
	}
	if s.cur == nil {
		return nil
	}
	pg, ready := s.cur, s.curReady
	// Prefetch the next page before blocking on the current one.
	if s.nextPage < len(f.pages) {
		s.cur, s.curReady = f.ReadPageAsync(p, s.nextPage)
		s.nextPage++
	} else {
		s.cur = nil
	}
	p.WaitUntil(ready)
	return pg
}

// WrapScanner is a circular page cursor: it starts at an arbitrary page and
// wraps past the end of the file back to page 0, never terminating on its
// own. Shared scans use it — each rider tracks how many pages it has seen
// and detaches after a full revolution, while the cursor itself keeps
// turning for later arrivals. The one-page read-ahead state lives in the
// scanner, not the driving process, so the cursor can be handed between
// processes without losing a pending prefetch.
type WrapScanner struct {
	f          *File
	next       int
	pending    *Page
	pendingIdx int
	pendingAt  sim.Time
	hasPending bool
}

// NewWrapScanner returns a circular cursor positioned at page start
// (modulo the file length).
func (f *File) NewWrapScanner(start int) *WrapScanner {
	ws := &WrapScanner{f: f}
	if n := len(f.pages); n > 0 {
		ws.next = ((start % n) + n) % n
	}
	return ws
}

// NextIdx returns the page number the next NextPage call will deliver.
func (ws *WrapScanner) NextIdx() int { return ws.next }

// NextPage reads the cursor's next page (wrapping at EOF), optionally
// issuing a read-ahead for the page after it, and advances the cursor.
// Returns nil only for an empty file.
func (ws *WrapScanner) NextPage(p *sim.Proc, prefetch bool) *Page {
	f := ws.f
	n := len(f.pages)
	if n == 0 {
		return nil
	}
	idx := ws.next
	ws.next = (idx + 1) % n
	var pg *Page
	var ready sim.Time
	if ws.hasPending && ws.pendingIdx == idx {
		pg, ready = ws.pending, ws.pendingAt
	} else {
		pg, ready = f.ReadPageAsync(p, idx)
	}
	ws.hasPending = false
	if prefetch {
		ws.pending, ws.pendingAt = f.ReadPageAsync(p, ws.next)
		ws.pendingIdx = ws.next
		ws.hasPending = true
	}
	p.WaitUntil(ready)
	return pg
}
