package wiss

import (
	"sort"
	"testing"
	"testing/quick"

	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

func buildIndexed(t *testing.T, n int, kind IndexKind, attr rel.Attr) (*sim.Sim, *Store, *File, *BTree) {
	t.Helper()
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	ts := wisconsin.Generate(n, 11)
	if kind == Clustered {
		a := attr
		f.LoadDirect(ts, &a)
	} else {
		f.LoadDirect(ts, nil)
	}
	bt := NewBTree(f, attr, kind)
	return s, st, f, bt
}

func TestClusteredIndexHeight(t *testing.T) {
	_, _, _, bt := buildIndexed(t, 12500, Clustered, rel.Unique1)
	// 12,500 tuples at 17/page = 736 data pages; sparse entries at fanout
	// 256 -> 3 leaves + root = height 2, matching §5.2.1's "2 levels".
	if bt.Height() != 2 {
		t.Errorf("height = %d, want 2", bt.Height())
	}
}

func TestNonClusteredIndexIsDense(t *testing.T) {
	_, _, f, bt := buildIndexed(t, 2000, NonClustered, rel.Unique2)
	if bt.Entries() != f.Len() {
		t.Errorf("entries = %d, want %d (dense index, §3)", bt.Entries(), f.Len())
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNonClusteredSearchFindsEveryTuple(t *testing.T) {
	s, _, f, bt := buildIndexed(t, 1000, NonClustered, rel.Unique2)
	s.Spawn("search", func(p *sim.Proc) {
		for key := int32(0); key < 1000; key += 97 {
			rids := bt.SearchRIDs(p, key)
			if len(rids) != 1 {
				t.Fatalf("key %d: %d rids", key, len(rids))
			}
			if got := f.FetchRID(p, rids[0]); got.Get(rel.Unique2) != key {
				t.Errorf("key %d: fetched tuple with unique2=%d", key, got.Get(rel.Unique2))
			}
		}
	})
	s.Run()
}

func TestNonClusteredRangeMatchesScan(t *testing.T) {
	s, _, f, bt := buildIndexed(t, 3000, NonClustered, rel.Unique2)
	lo, hi := int32(100), int32(399)
	var viaIndex []int32
	s.Spawn("range", func(p *sim.Proc) {
		bt.RangeRIDs(p, lo, hi, func(r RID) {
			viaIndex = append(viaIndex, f.page(int(r.Page)).Tuples[r.Slot].Get(rel.Unique2))
		})
	})
	s.Run()
	if len(viaIndex) != int(hi-lo+1) {
		t.Fatalf("index range returned %d tuples, want %d", len(viaIndex), hi-lo+1)
	}
	if !sort.SliceIsSorted(viaIndex, func(i, j int) bool { return viaIndex[i] < viaIndex[j] }) {
		t.Error("index range not in key order")
	}
}

func TestClusteredRangeScanTouchesOnlyNeededPages(t *testing.T) {
	s, st, f, bt := buildIndexed(t, 10000, Clustered, rel.Unique1)
	// 1% selection: 100 tuples = ~6 data pages instead of all 589.
	s.Spawn("scan", func(p *sim.Proc) {
		start := bt.StartPage(p, 5000)
		before := st.Node().Drive.Stats().Reads()
		sc := f.NewScannerAt(start)
		count := 0
		for pg := sc.NextPage(p); pg != nil; pg = sc.NextPage(p) {
			stop := false
			for _, tp := range pg.Tuples {
				k := tp.Get(rel.Unique1)
				if k >= 5000 && k <= 5099 {
					count++
				}
				if k > 5099 {
					stop = true
				}
			}
			if stop {
				break
			}
		}
		if count != 100 {
			t.Errorf("range scan found %d tuples, want 100", count)
		}
		dataReads := st.Node().Drive.Stats().Reads() - before
		if dataReads > 10 {
			t.Errorf("clustered 1%% scan read %d pages, want <= 10", dataReads)
		}
	})
	s.Run()
}

func TestInsertEntryMaintainsInvariants(t *testing.T) {
	s, _, _, bt := buildIndexed(t, 500, NonClustered, rel.Unique2)
	s.Spawn("insert", func(p *sim.Proc) {
		for i := int32(0); i < 300; i++ {
			bt.InsertEntry(p, 500+i, RID{Page: 0, Slot: 0})
		}
	})
	s.Run()
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if bt.Entries() != 800 {
		t.Errorf("entries = %d, want 800", bt.Entries())
	}
}

func TestInsertThenSearchProperty(t *testing.T) {
	f := func(keys []int16) bool {
		s := sim.New()
		prm := testParams()
		st := storeOn(s, &prm)
		file := st.CreateFile("r")
		bt := NewBTree(file, rel.Unique2, NonClustered)
		ok := true
		s.Spawn("p", func(p *sim.Proc) {
			counts := map[int32]int{}
			for i, k := range keys {
				bt.InsertEntry(p, int32(k), RID{Page: int32(i), Slot: 0})
				counts[int32(k)]++
			}
			if err := bt.CheckInvariants(); err != nil {
				ok = false
				return
			}
			for k, want := range counts {
				if got := len(bt.SearchRIDs(p, k)); got != want {
					ok = false
					return
				}
			}
		})
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeleteEntry(t *testing.T) {
	s, _, _, bt := buildIndexed(t, 400, NonClustered, rel.Unique2)
	s.Spawn("del", func(p *sim.Proc) {
		rids := bt.SearchRIDs(p, 123)
		if len(rids) != 1 {
			t.Fatalf("rids = %v", rids)
		}
		if !bt.DeleteEntry(p, 123, rids[0]) {
			t.Fatal("delete failed")
		}
		if got := bt.SearchRIDs(p, 123); len(got) != 0 {
			t.Errorf("key still present after delete: %v", got)
		}
	})
	s.Run()
	if err := bt.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestIndexTraversalChargesIO(t *testing.T) {
	s, st, _, bt := buildIndexed(t, 10000, NonClustered, rel.Unique2)
	var elapsed sim.Dur
	s.Spawn("lookup", func(p *sim.Proc) {
		st.Pool().Reset()
		start := p.Now()
		bt.SearchRIDs(p, 4242)
		elapsed = p.Now() - start
	})
	s.Run()
	if elapsed == 0 {
		t.Error("index search took zero simulated time")
	}
	if bt.Height() < 2 {
		t.Errorf("height = %d, want >= 2 for 10k dense entries", bt.Height())
	}
	_ = st
}

func TestLargerPagesIncreaseFanoutAndReduceHeight(t *testing.T) {
	s := sim.New()
	prm := testParams()
	prm.PageBytes = 32 * 1024
	st := storeOn(s, &prm)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(100000, 12), nil)
	bt := NewBTree(f, rel.Unique2, NonClustered)
	if bt.Height() > 2 {
		t.Errorf("height = %d at 32KB pages, want <= 2", bt.Height())
	}
}
