package wiss

import (
	"testing"

	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

func TestScannerOverlapsIOAndCPU(t *testing.T) {
	// With one page of read-ahead, a scan whose per-page CPU work is
	// smaller than a page I/O must finish in ~disk time, not disk+CPU.
	s, st, prm := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(2000, 41), nil)
	perPageCPU := prm.Disk.SeqPos / 2
	var elapsed sim.Dur
	s.Spawn("scan", func(p *sim.Proc) {
		start := p.Now()
		sc := f.NewScanner()
		for pg := sc.NextPage(p); pg != nil; pg = sc.NextPage(p) {
			st.Node().CPU.Use(p, perPageCPU)
		}
		elapsed = p.Now() - start
	})
	s.Run()
	pages := sim.Dur(f.Pages())
	diskOnly := pages * (prm.Disk.SeqPos + prm.Disk.TransferTime(prm.PageBytes))
	serial := diskOnly + pages*perPageCPU
	if elapsed >= serial {
		t.Errorf("scan %v did not overlap CPU with I/O (serial bound %v)", elapsed, serial)
	}
	if elapsed < diskOnly {
		t.Errorf("scan %v beat the disk-only bound %v", elapsed, diskOnly)
	}
}

func TestLoadAppendBookkeeping(t *testing.T) {
	_, st, prm := testStore(t)
	f := st.CreateFile("r")
	for i := 0; i < 40; i++ {
		var tp rel.Tuple
		tp.Set(rel.Unique1, int32(i))
		f.LoadAppend(tp)
	}
	if f.Len() != 40 {
		t.Errorf("len = %d", f.Len())
	}
	want := (40 + prm.TuplesPerPage() - 1) / prm.TuplesPerPage()
	if f.Pages() != want {
		t.Errorf("pages = %d, want %d", f.Pages(), want)
	}
}

func TestInsertIntoPageRespectsCapacity(t *testing.T) {
	s, st, prm := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(prm.TuplesPerPage(), 42), nil) // page 0 exactly full
	s.Spawn("ins", func(p *sim.Proc) {
		var tp rel.Tuple
		if _, ok := f.InsertIntoPage(p, 0, tp); ok {
			t.Error("insert into a full page succeeded")
		}
		rid := f.AppendNewPage(p, tp)
		if rid.Page != 1 || rid.Slot != 0 {
			t.Errorf("overflow rid = %+v", rid)
		}
	})
	s.Run()
}

func TestAppendNewPageMarksSortedFileUnordered(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	key := rel.Unique1
	f.LoadDirect(wisconsin.Generate(100, 43), &key)
	if f.Unordered {
		t.Fatal("fresh sorted file marked unordered")
	}
	s.Spawn("ins", func(p *sim.Proc) {
		var tp rel.Tuple
		tp.Set(rel.Unique1, 5)
		f.AppendNewPage(p, tp)
	})
	s.Run()
	if !f.Unordered {
		t.Error("overflow page did not mark the file unordered")
	}
}

func TestTombstonesExcludedFromLiveTuples(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	f.LoadDirect(wisconsin.Generate(30, 44), nil)
	s.Spawn("del", func(p *sim.Proc) {
		f.DeleteRID(p, RID{Page: 0, Slot: 2})
		f.DeleteRID(p, RID{Page: 0, Slot: 2}) // double delete is a no-op
	})
	s.Run()
	if f.Len() != 29 {
		t.Errorf("len = %d, want 29", f.Len())
	}
	live := f.Page(0).LiveTuples(nil)
	if len(live) != len(f.PageTuples(0))-1 {
		t.Errorf("live = %d of %d", len(live), len(f.PageTuples(0)))
	}
}

func TestBufferPoolByteBudgetScalesWithPageSize(t *testing.T) {
	small := testParams()
	small.PageBytes = 4096
	big := testParams()
	big.PageBytes = 32768
	sSmall := storeOn(sim.New(), &small)
	sBig := storeOn(sim.New(), &big)
	// Fill both pools beyond any plausible frame count.
	for i := 0; i < 1000; i++ {
		sSmall.Pool().Put(1, i)
		sBig.Pool().Put(1, i)
	}
	if sSmall.Pool().Len() <= sBig.Pool().Len() {
		t.Errorf("4KB pool (%d frames) should hold more pages than 32KB pool (%d)",
			sSmall.Pool().Len(), sBig.Pool().Len())
	}
}

func TestClusteredIndexAfterOverflowInsertStillFindsEverything(t *testing.T) {
	s, st, _ := testStore(t)
	f := st.CreateFile("r")
	key := rel.Unique1
	f.LoadDirect(wisconsin.Generate(500, 45), &key)
	bt := NewBTree(f, rel.Unique1, Clustered)
	s.Spawn("ins", func(p *sim.Proc) {
		// Force an overflow page and register it in the index.
		var tp rel.Tuple
		tp.Set(rel.Unique1, 250)
		rid := f.AppendNewPage(p, tp)
		bt.InsertClusteredEntry(p, 250, rid.Page)
	})
	s.Run()
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 501 {
		t.Errorf("len = %d", f.Len())
	}
}
