package wiss

import (
	"sort"

	"gamma/internal/config"
	"gamma/internal/nose"
	"gamma/internal/rel"
)

// Machine images. A Store can freeze itself into a StoreImage — an immutable
// record of its file directory and page arrays — and any number of Stores can
// later be restored from that image onto fresh simulated nodes. Restored
// stores share the frozen pages (and B-tree node graphs) with the image and
// with each other; the copy-on-write paths in wiss.go (File.mutPage) and
// btree.go (BTree.ensureOwned) clone on first write, so a restore is
// O(file count + page directory), not O(data), and the image stays pristine.
//
// Taking a snapshot freezes the source store's pages too: the source keeps
// working, but its next in-place write also goes through copy-on-write.

// FileImage is the frozen state of one heap file.
type FileImage struct {
	id        int
	name      string
	pages     []*Page // every page frozen
	nTuples   int
	sorted    bool
	sortKey   rel.Attr
	unordered bool
	slotBytes int
}

// StoreImage is the frozen state of one node's Store: the file-id space and
// every file's image, ordered by file id.
type StoreImage struct {
	nextID int
	files  []*FileImage
}

// Snapshot freezes every page of the file and returns its image.
func (f *File) Snapshot() *FileImage {
	for _, pg := range f.pages {
		pg.frozen = true
	}
	return &FileImage{
		id:        f.ID,
		name:      f.Name,
		pages:     append([]*Page(nil), f.pages...),
		nTuples:   f.nTuples,
		sorted:    f.Sorted,
		sortKey:   f.SortKey,
		unordered: f.Unordered,
		slotBytes: f.SlotBytes,
	}
}

// Snapshot freezes the store into an immutable image. The store remains
// usable; its pages are now copy-on-write.
func (st *Store) Snapshot() *StoreImage {
	img := &StoreImage{nextID: st.nextID}
	ids := make([]int, 0, len(st.files))
	for id := range st.files {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		img.files = append(img.files, st.files[id].Snapshot())
	}
	return img
}

// RestoreStore materializes a working Store from an image onto a node. File
// ids (and the id allocator) are preserved exactly — buffer-pool keys and
// drive-extent modeling depend on them — and the buffer pool starts empty
// with zeroed hit/miss counters, exactly like a store whose relations were
// just loaded. Pages are shared with the image until first write.
func RestoreStore(node *nose.Node, prm *config.Params, img *StoreImage) *Store {
	st := NewStore(node, prm)
	st.nextID = img.nextID
	for _, fi := range img.files {
		f := &File{
			st:        st,
			ID:        fi.id,
			Name:      fi.name,
			nTuples:   fi.nTuples,
			Sorted:    fi.sorted,
			SortKey:   fi.sortKey,
			Unordered: fi.unordered,
			SlotBytes: fi.slotBytes,
		}
		// Exact-capacity copy: an append to the restored file reallocates
		// its page directory instead of scribbling past the image's slice.
		f.pages = make([]*Page, len(fi.pages))
		copy(f.pages, fi.pages)
		st.files[f.ID] = f
	}
	return st
}

// FileByID returns the store's file with the given id (restore-time lookup:
// core's fragment directory records files by id).
func (st *Store) FileByID(id int) (*File, bool) {
	f, ok := st.files[id]
	return f, ok
}

// AdoptFile materializes a working copy of a file image on st under a FRESH
// file id, sharing the image's pages copy-on-write. Unlike RestoreStore —
// which rebuilds a whole store and must preserve ids — adoption grafts one
// file into a store that already has its own id space (re-replication
// streams a surviving fragment's image to a live node), so reusing the
// source id could collide with an unrelated file there.
func (st *Store) AdoptFile(img *FileImage) *File {
	st.nextID++
	f := &File{
		st:        st,
		ID:        st.nextID,
		Name:      img.name,
		nTuples:   img.nTuples,
		Sorted:    img.sorted,
		SortKey:   img.sortKey,
		Unordered: img.unordered,
		SlotBytes: img.slotBytes,
	}
	f.pages = make([]*Page, len(img.pages))
	copy(f.pages, img.pages)
	st.files[f.ID] = f
	return f
}

// AdoptBTree materializes a working copy of an index image over the adopted
// file f on st, under a fresh index file id (same collision argument as
// AdoptFile), sharing the node graph copy-on-write.
func (st *Store) AdoptBTree(f *File, img *BTreeImage) *BTree {
	st.nextID++
	return &BTree{
		st:        st,
		file:      f,
		Attr:      img.attr,
		Kind:      img.kind,
		idxFileID: st.nextID,
		fanout:    img.fanout,
		root:      img.root,
		firstLeaf: img.firstLeaf,
		nextPage:  img.nextPage,
		height:    img.height,
		entries:   img.entries,
		shared:    true,
	}
}

// Pages returns the number of pages in the imaged file (rebuild pacing needs
// the copy length without materializing the file).
func (img *FileImage) Pages() int { return len(img.pages) }

// BTreeImage is the frozen state of one B+-tree index: the node graph is
// shared, not copied, and every tree holding it (source or restored) clones
// it on first mutation.
type BTreeImage struct {
	attr      rel.Attr
	kind      IndexKind
	idxFileID int
	fanout    int
	root      *bnode
	firstLeaf *bnode
	nextPage  int
	height    int
	entries   int
}

// Snapshot freezes the tree into an image. The source tree keeps working but
// becomes copy-on-write: its next structural mutation deep-clones the graph.
func (t *BTree) Snapshot() *BTreeImage {
	t.shared = true
	return &BTreeImage{
		attr:      t.Attr,
		kind:      t.Kind,
		idxFileID: t.idxFileID,
		fanout:    t.fanout,
		root:      t.root,
		firstLeaf: t.firstLeaf,
		nextPage:  t.nextPage,
		height:    t.height,
		entries:   t.entries,
	}
}

// RestoreBTree materializes a working index over the restored file f on store
// st, sharing the image's node graph copy-on-write. The index file id is
// preserved so pool keys and drive extents match the original exactly.
func RestoreBTree(st *Store, f *File, img *BTreeImage) *BTree {
	return &BTree{
		st:        st,
		file:      f,
		Attr:      img.attr,
		Kind:      img.kind,
		idxFileID: img.idxFileID,
		fanout:    img.fanout,
		root:      img.root,
		firstLeaf: img.firstLeaf,
		nextPage:  img.nextPage,
		height:    img.height,
		entries:   img.entries,
		shared:    true,
	}
}
