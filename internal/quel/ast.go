package quel

// Statement ASTs for the QUEL front end. Parse (quel.go) is purely
// syntactic — it resolves attribute names and validates term shapes but
// touches no catalog or session state — so every Stmt can be printed with
// String and re-parsed. The printed form is canonical: parsing it and
// printing again yields the identical string, a fixed point the fuzz
// harness (fuzz_test.go) locks in.

import (
	"strconv"
	"strings"

	"gamma/internal/core"
	"gamma/internal/rel"
)

// Stmt is one parsed QUEL statement.
type Stmt interface {
	// String renders the statement in canonical form: lowercase keywords,
	// single spaces, names and constants as parsed.
	String() string
	stmt()
}

func (*RangeStmt) stmt()    {}
func (*RetrieveStmt) stmt() {}
func (*AppendStmt) stmt()   {}
func (*DeleteStmt) stmt()   {}
func (*ReplaceStmt) stmt()  {}

// Operand is one side of a comparison: an integer constant or var.attr.
type Operand struct {
	Var     string
	Attr    rel.Attr
	Const   int64
	IsConst bool
}

func (o Operand) String() string {
	if o.IsConst {
		return strconv.FormatInt(o.Const, 10)
	}
	return o.Var + "." + o.Attr.String()
}

// Term is one comparison of a qualification's conjunction.
type Term struct {
	Left  Operand
	Op    string // =, <, <=, >, >=
	Right Operand
}

func (t Term) String() string {
	return t.Left.String() + " " + t.Op + " " + t.Right.String()
}

// whereString renders ` where a and b and ...`, or "" for an empty list.
func whereString(terms []Term) string {
	if len(terms) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" where ")
	for i, t := range terms {
		if i > 0 {
			b.WriteString(" and ")
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// RangeStmt is `range of <var> is <relation>`.
type RangeStmt struct {
	Var string
	Rel string
}

func (s *RangeStmt) String() string {
	return "range of " + s.Var + " is " + s.Rel
}

// AggTarget is an aggregate target list entry: fn(var.attr).
type AggTarget struct {
	Fn   core.AggFn
	Var  string
	Attr rel.Attr
}

func (a AggTarget) String() string {
	return a.Fn.String() + "(" + a.Var + "." + a.Attr.String() + ")"
}

// RetrieveStmt is `retrieve [into name] (<target>) [by var.attr] [where ...]`
// where the target is `var.all`, a projection list, or an aggregate.
type RetrieveStmt struct {
	Into    string // "" when absent
	Var     string // the target list's range variable
	Agg     *AggTarget
	All     bool // target is var.all
	Project []rel.Attr
	GroupBy *rel.Attr // grouping attribute of Var
	Where   []Term
}

func (s *RetrieveStmt) String() string {
	var b strings.Builder
	b.WriteString("retrieve")
	if s.Into != "" {
		b.WriteString(" into ")
		b.WriteString(s.Into)
	}
	b.WriteString(" (")
	switch {
	case s.Agg != nil:
		b.WriteString(s.Agg.String())
	case s.All:
		b.WriteString(s.Var + ".all")
	default:
		for i, a := range s.Project {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.Var + "." + a.String())
		}
	}
	b.WriteString(")")
	if s.GroupBy != nil {
		b.WriteString(" by " + s.Var + "." + s.GroupBy.String())
	}
	b.WriteString(whereString(s.Where))
	return b.String()
}

// SetClause is one `attr = value` assignment in append or replace.
type SetClause struct {
	Attr rel.Attr
	Val  int64
}

func (c SetClause) String() string {
	return c.Attr.String() + " = " + strconv.FormatInt(c.Val, 10)
}

// AppendStmt is `append to <relation> (attr = val, ...)`.
type AppendStmt struct {
	Rel  string
	Sets []SetClause
}

func (s *AppendStmt) String() string {
	var b strings.Builder
	b.WriteString("append to ")
	b.WriteString(s.Rel)
	b.WriteString(" (")
	for i, c := range s.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(")")
	return b.String()
}

// DeleteStmt is `delete <var> where <qual>`.
type DeleteStmt struct {
	Var   string
	Where []Term
}

func (s *DeleteStmt) String() string {
	return "delete " + s.Var + whereString(s.Where)
}

// ReplaceStmt is `replace <var> (attr = val) where <qual>`.
type ReplaceStmt struct {
	Var   string
	Set   SetClause
	Where []Term
}

func (s *ReplaceStmt) String() string {
	return "replace " + s.Var + " (" + s.Set.String() + ")" + whereString(s.Where)
}
