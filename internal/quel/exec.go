package quel

import (
	"fmt"
	"slices"
	"strings"

	"gamma/internal/core"
	"gamma/internal/rel"
)

// Session holds range-variable bindings against one machine.
type Session struct {
	m      *core.Machine
	ranges map[string]*core.Relation
	// Mode is the join placement used for joins and aggregates.
	Mode core.JoinMode
}

// NewSession starts a session on m.
func NewSession(m *core.Machine) *Session {
	return &Session{m: m, ranges: map[string]*core.Relation{}, Mode: core.Remote}
}

// Output is the result of executing one statement.
type Output struct {
	// Message is a human-readable summary.
	Message string
	// Result holds the engine result for retrieve/append/delete/replace.
	Result *core.Result
	// Agg holds the result of an aggregate retrieve.
	Agg *core.AggResult
}

// Exec parses and runs one statement.
func (s *Session) Exec(line string) (Output, error) {
	st, err := Parse(line)
	if err != nil {
		return Output{}, err
	}
	if st == nil {
		return Output{Message: ""}, nil
	}
	return s.Run(st)
}

// Run executes a parsed statement against the session's machine.
func (s *Session) Run(st Stmt) (Output, error) {
	switch st := st.(type) {
	case *RangeStmt:
		return s.runRange(st)
	case *RetrieveStmt:
		return s.runRetrieve(st)
	case *AppendStmt:
		return s.runAppend(st)
	case *DeleteStmt:
		return s.runDelete(st)
	case *ReplaceStmt:
		return s.runReplace(st)
	}
	return Output{}, fmt.Errorf("quel: unsupported statement %T", st)
}

// runRange binds a range variable to a catalogued relation.
func (s *Session) runRange(st *RangeStmt) (Output, error) {
	r, ok := s.m.Relation(st.Rel)
	if !ok {
		return Output{}, fmt.Errorf("quel: unknown relation %q", st.Rel)
	}
	s.ranges[st.Var] = r
	return Output{Message: fmt.Sprintf("range variable %s bound to %s (%d tuples)", st.Var, st.Rel, r.N)}, nil
}

// runRetrieve dispatches plain, into, join, and aggregate retrieves.
func (s *Session) runRetrieve(st *RetrieveStmt) (Output, error) {
	q := buildQual(st.Where)
	if st.Agg != nil {
		return s.runAgg(st.Agg, st.GroupBy, q)
	}
	if q.hasJoin {
		if st.Project != nil {
			return Output{}, fmt.Errorf("quel: projection on joins is not supported; use .all")
		}
		return s.runJoin(st.Var, st.Into, q)
	}
	return s.runSelect(st.Var, st.Into, st.Project, q)
}

func (s *Session) relOf(v string) (*core.Relation, error) {
	r, ok := s.ranges[v]
	if !ok {
		return nil, fmt.Errorf("quel: unbound range variable %q", v)
	}
	return r, nil
}

func (s *Session) runSelect(v, into string, project []rel.Attr, q *qual) (Output, error) {
	r, err := s.relOf(v)
	if err != nil {
		return Output{}, err
	}
	res := s.m.RunSelect(core.SelectQuery{
		Scan:       core.ScanSpec{Rel: r, Pred: q.pred(v, r.N)},
		ResultName: into,
		ToHost:     into == "",
		Project:    project,
	})
	msg := fmt.Sprintf("%d tuples in %.3fs", res.Tuples, res.Elapsed.Seconds())
	if into != "" {
		msg += " -> " + res.ResultName
	}
	return Output{Message: msg, Result: &res}, nil
}

func (s *Session) runJoin(tvar, into string, q *qual) (Output, error) {
	ra, err := s.relOf(q.av)
	if err != nil {
		return Output{}, err
	}
	rb, err := s.relOf(q.bv)
	if err != nil {
		return Output{}, err
	}
	// Propagate range restrictions across the join term (§6.1).
	pa := q.pred(q.av, ra.N)
	pb := q.pred(q.bv, rb.N)
	if prop, ok := core.PropagateSelection(q.aattr, q.battr, pb); ok && pa.IsTrue() {
		pa = prop
	}
	if prop, ok := core.PropagateSelection(q.battr, q.aattr, pa); ok && pb.IsTrue() {
		pb = prop
	}
	// Build on the (estimated) smaller input.
	buildRel, buildPred, buildAttr := rb, pb, q.battr
	probeRel, probePred, probeAttr := ra, pa, q.aattr
	if float64(ra.N)*pa.Selectivity(ra.N) < float64(rb.N)*pb.Selectivity(rb.N) {
		buildRel, buildPred, buildAttr, probeRel, probePred, probeAttr =
			ra, pa, q.aattr, rb, pb, q.battr
	}
	res := s.m.RunJoin(core.JoinQuery{
		Build: core.ScanSpec{Rel: buildRel, Pred: buildPred}, BuildAttr: buildAttr,
		Probe: core.ScanSpec{Rel: probeRel, Pred: probePred}, ProbeAttr: probeAttr,
		Mode:       s.Mode,
		ResultName: into,
	})
	msg := fmt.Sprintf("%d tuples in %.3fs (join, build=%s)", res.Tuples, res.Elapsed.Seconds(), buildRel.Name)
	if res.Overflows > 0 {
		msg += fmt.Sprintf(", %d overflow resolutions", res.Overflows)
	}
	return Output{Message: msg, Result: &res}, nil
}

func (s *Session) runAgg(a *AggTarget, groupBy *rel.Attr, q *qual) (Output, error) {
	r, err := s.relOf(a.Var)
	if err != nil {
		return Output{}, err
	}
	res := s.m.RunAgg(core.AggQuery{
		Scan:    core.ScanSpec{Rel: r, Pred: q.pred(a.Var, r.N)},
		Fn:      a.Fn,
		Attr:    a.Attr,
		GroupBy: groupBy,
		Mode:    s.Mode,
	})
	var b strings.Builder
	if groupBy == nil {
		fmt.Fprintf(&b, "%s(%s) = %d", a.Fn, a.Attr, res.Groups[0])
	} else {
		keys := make([]int32, 0, len(res.Groups))
		for k := range res.Groups {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%d: %d\n", *groupBy, k, res.Groups[k])
		}
	}
	fmt.Fprintf(&b, "  (%.3fs)", res.Elapsed.Seconds())
	return Output{Message: b.String(), Agg: &res}, nil
}

// runAppend builds the tuple from the set list and appends it.
func (s *Session) runAppend(st *AppendStmt) (Output, error) {
	r, ok := s.m.Relation(st.Rel)
	if !ok {
		return Output{}, fmt.Errorf("quel: unknown relation %q", st.Rel)
	}
	var t rel.Tuple
	for _, c := range st.Sets {
		t.Set(c.Attr, clamp32(c.Val))
	}
	res := s.m.RunUpdate(core.UpdateQuery{Rel: r, Kind: core.AppendTuple, Tuple: t})
	return Output{Message: fmt.Sprintf("appended %d tuple in %.3fs", res.Tuples, res.Elapsed.Seconds()), Result: &res}, nil
}

// runDelete requires an exact predicate on the partitioning attribute.
func (s *Session) runDelete(st *DeleteStmt) (Output, error) {
	r, err := s.relOf(st.Var)
	if err != nil {
		return Output{}, err
	}
	q := buildQual(st.Where)
	key, ok := exactKey(q, st.Var, r.PartAttr)
	if !ok {
		return Output{}, fmt.Errorf("quel: delete requires an exact predicate on %s", r.PartAttr)
	}
	res := s.m.RunUpdate(core.UpdateQuery{Rel: r, Kind: core.DeleteByKey, Key: key})
	return Output{Message: fmt.Sprintf("deleted %d tuple in %.3fs", res.Tuples, res.Elapsed.Seconds()), Result: &res}, nil
}

// runReplace picks the update kind from the modified attribute and indexes.
func (s *Session) runReplace(st *ReplaceStmt) (Output, error) {
	r, err := s.relOf(st.Var)
	if err != nil {
		return Output{}, err
	}
	q := buildQual(st.Where)
	attr, newVal := st.Set.Attr, clamp32(st.Set.Val)

	uq := core.UpdateQuery{Rel: r, Attr: attr, NewValue: newVal}
	switch {
	case attr == r.PartAttr:
		key, ok := exactKey(q, st.Var, r.PartAttr)
		if !ok {
			return Output{}, fmt.Errorf("quel: key modification requires an exact predicate on %s", r.PartAttr)
		}
		uq.Kind, uq.Key = core.ModifyKeyAttr, key
	default:
		if key, ok := exactKey(q, st.Var, attr); ok && indexedNonClustered(r, attr) {
			// Locate through the attribute's own dense index.
			uq.Kind, uq.Key = core.ModifyIndexed, key
		} else if key, ok := exactKey(q, st.Var, r.PartAttr); ok {
			uq.Kind, uq.Key = core.ModifyNonIndexed, key
		} else {
			return Output{}, fmt.Errorf("quel: replace requires an exact predicate on %s or on the modified indexed attribute", r.PartAttr)
		}
	}
	res := s.m.RunUpdate(uq)
	return Output{Message: fmt.Sprintf("replaced %d tuple in %.3fs (%s)", res.Tuples, res.Elapsed.Seconds(), uq.Kind), Result: &res}, nil
}

func indexedNonClustered(r *core.Relation, attr rel.Attr) bool {
	bt, ok := r.Index(attr)
	return ok && !r.ClusteredOn(attr) && bt != nil
}

func exactKey(q *qual, v string, attr rel.Attr) (int32, bool) {
	b, ok := q.bounds[v][attr]
	if !ok || b[0] != b[1] {
		return 0, false
	}
	return clamp32(b[0]), true
}
