package quel

import (
	"fmt"
	"sort"
	"strings"

	"gamma/internal/core"
	"gamma/internal/rel"
)

// execRange handles `range of <var> is <relation>`.
func (s *Session) execRange(p *parser) (Output, error) {
	p.next() // range
	if err := p.expect("of"); err != nil {
		return Output{}, err
	}
	v := p.next()
	if err := p.expect("is"); err != nil {
		return Output{}, err
	}
	relName := p.next()
	r, ok := s.m.Relation(relName)
	if !ok {
		return Output{}, fmt.Errorf("quel: unknown relation %q", relName)
	}
	if !p.done() {
		return Output{}, fmt.Errorf("quel: trailing input after range statement")
	}
	s.ranges[v] = r
	return Output{Message: fmt.Sprintf("range variable %s bound to %s (%d tuples)", v, relName, r.N)}, nil
}

// aggSpec is a parsed aggregate target: fn(var.attr).
type aggSpec struct {
	fn   core.AggFn
	v    string
	attr rel.Attr
}

var aggNames = map[string]core.AggFn{
	"count": core.Count, "sum": core.Sum, "min": core.Min, "max": core.Max, "avg": core.Avg,
}

// execRetrieve handles plain, into, join, and aggregate retrieves.
func (s *Session) execRetrieve(p *parser) (Output, error) {
	p.next() // retrieve
	into := ""
	if strings.EqualFold(p.peek(), "into") {
		p.next()
		into = p.next()
	}
	if err := p.expect("("); err != nil {
		return Output{}, err
	}

	// Target list: `v.all`, a projection list `v.a1, v.a2, ...`, or an
	// aggregate `fn(v.attr)`.
	var agg *aggSpec
	var project []rel.Attr
	var tvar string
	first := p.next()
	if fn, ok := aggNames[strings.ToLower(first)]; ok {
		if err := p.expect("("); err != nil {
			return Output{}, err
		}
		v := p.next()
		if err := p.expect("."); err != nil {
			return Output{}, err
		}
		attr, ok := rel.AttrByName(p.next())
		if !ok {
			return Output{}, fmt.Errorf("quel: unknown attribute in aggregate")
		}
		if err := p.expect(")"); err != nil {
			return Output{}, err
		}
		agg = &aggSpec{fn: fn, v: v, attr: attr}
		tvar = v
	} else {
		tvar = first
		if err := p.expect("."); err != nil {
			return Output{}, err
		}
		name := p.next()
		if !strings.EqualFold(name, "all") {
			attr, ok := rel.AttrByName(name)
			if !ok {
				return Output{}, fmt.Errorf("quel: unknown attribute %q in target list", name)
			}
			project = append(project, attr)
			for p.peek() == "," {
				p.next()
				v := p.next()
				if v != tvar {
					return Output{}, fmt.Errorf("quel: target list mixes range variables")
				}
				if err := p.expect("."); err != nil {
					return Output{}, err
				}
				attr, ok := rel.AttrByName(p.next())
				if !ok {
					return Output{}, fmt.Errorf("quel: unknown attribute in target list")
				}
				project = append(project, attr)
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return Output{}, err
	}

	// Optional `by v.attr` (grouped aggregate).
	var groupBy *rel.Attr
	if strings.EqualFold(p.peek(), "by") {
		p.next()
		v := p.next()
		if err := p.expect("."); err != nil {
			return Output{}, err
		}
		attr, ok := rel.AttrByName(p.next())
		if !ok {
			return Output{}, fmt.Errorf("quel: unknown grouping attribute")
		}
		if v != tvar {
			return Output{}, fmt.Errorf("quel: grouping variable must match the aggregate's")
		}
		groupBy = &attr
	}

	// Optional qualification.
	q := newQual()
	if strings.EqualFold(p.peek(), "where") {
		p.next()
		var err error
		q, err = p.parseQual()
		if err != nil {
			return Output{}, err
		}
	} else if !p.done() {
		return Output{}, fmt.Errorf("quel: trailing input %q", p.peek())
	}

	if agg != nil {
		return s.runAgg(agg, groupBy, q)
	}
	if q.hasJoin {
		if project != nil {
			return Output{}, fmt.Errorf("quel: projection on joins is not supported; use .all")
		}
		return s.runJoin(tvar, into, q)
	}
	return s.runSelect(tvar, into, project, q)
}

func (s *Session) relOf(v string) (*core.Relation, error) {
	r, ok := s.ranges[v]
	if !ok {
		return nil, fmt.Errorf("quel: unbound range variable %q", v)
	}
	return r, nil
}

func (s *Session) runSelect(v, into string, project []rel.Attr, q *qual) (Output, error) {
	r, err := s.relOf(v)
	if err != nil {
		return Output{}, err
	}
	res := s.m.RunSelect(core.SelectQuery{
		Scan:       core.ScanSpec{Rel: r, Pred: q.pred(v, r.N)},
		ResultName: into,
		ToHost:     into == "",
		Project:    project,
	})
	msg := fmt.Sprintf("%d tuples in %.3fs", res.Tuples, res.Elapsed.Seconds())
	if into != "" {
		msg += " -> " + res.ResultName
	}
	return Output{Message: msg, Result: &res}, nil
}

func (s *Session) runJoin(tvar, into string, q *qual) (Output, error) {
	ra, err := s.relOf(q.av)
	if err != nil {
		return Output{}, err
	}
	rb, err := s.relOf(q.bv)
	if err != nil {
		return Output{}, err
	}
	// Propagate range restrictions across the join term (§6.1).
	pa := q.pred(q.av, ra.N)
	pb := q.pred(q.bv, rb.N)
	if prop, ok := core.PropagateSelection(q.aattr, q.battr, pb); ok && pa.IsTrue() {
		pa = prop
	}
	if prop, ok := core.PropagateSelection(q.battr, q.aattr, pa); ok && pb.IsTrue() {
		pb = prop
	}
	// Build on the (estimated) smaller input.
	buildRel, buildPred, buildAttr := rb, pb, q.battr
	probeRel, probePred, probeAttr := ra, pa, q.aattr
	if float64(ra.N)*pa.Selectivity(ra.N) < float64(rb.N)*pb.Selectivity(rb.N) {
		buildRel, buildPred, buildAttr, probeRel, probePred, probeAttr =
			ra, pa, q.aattr, rb, pb, q.battr
	}
	res := s.m.RunJoin(core.JoinQuery{
		Build: core.ScanSpec{Rel: buildRel, Pred: buildPred}, BuildAttr: buildAttr,
		Probe: core.ScanSpec{Rel: probeRel, Pred: probePred}, ProbeAttr: probeAttr,
		Mode:       s.Mode,
		ResultName: into,
	})
	msg := fmt.Sprintf("%d tuples in %.3fs (join, build=%s)", res.Tuples, res.Elapsed.Seconds(), buildRel.Name)
	if res.Overflows > 0 {
		msg += fmt.Sprintf(", %d overflow resolutions", res.Overflows)
	}
	return Output{Message: msg, Result: &res}, nil
}

func (s *Session) runAgg(a *aggSpec, groupBy *rel.Attr, q *qual) (Output, error) {
	r, err := s.relOf(a.v)
	if err != nil {
		return Output{}, err
	}
	res := s.m.RunAgg(core.AggQuery{
		Scan:    core.ScanSpec{Rel: r, Pred: q.pred(a.v, r.N)},
		Fn:      a.fn,
		Attr:    a.attr,
		GroupBy: groupBy,
		Mode:    s.Mode,
	})
	var b strings.Builder
	if groupBy == nil {
		fmt.Fprintf(&b, "%s(%s) = %d", a.fn, a.attr, res.Groups[0])
	} else {
		keys := make([]int32, 0, len(res.Groups))
		for k := range res.Groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%d: %d\n", *groupBy, k, res.Groups[k])
		}
	}
	fmt.Fprintf(&b, "  (%.3fs)", res.Elapsed.Seconds())
	return Output{Message: b.String(), Agg: &res}, nil
}

// execAppend handles `append to <rel> (attr = val, ...)`.
func (s *Session) execAppend(p *parser) (Output, error) {
	p.next() // append
	if err := p.expect("to"); err != nil {
		return Output{}, err
	}
	r, ok := s.m.Relation(p.next())
	if !ok {
		return Output{}, fmt.Errorf("quel: unknown relation")
	}
	if err := p.expect("("); err != nil {
		return Output{}, err
	}
	var t rel.Tuple
	for {
		attr, ok := rel.AttrByName(p.next())
		if !ok {
			return Output{}, fmt.Errorf("quel: unknown attribute in append")
		}
		if err := p.expect("="); err != nil {
			return Output{}, err
		}
		v, err := parseInt(p.next())
		if err != nil {
			return Output{}, err
		}
		t.Set(attr, v)
		if p.peek() == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return Output{}, err
	}
	res := s.m.RunUpdate(core.UpdateQuery{Rel: r, Kind: core.AppendTuple, Tuple: t})
	return Output{Message: fmt.Sprintf("appended %d tuple in %.3fs", res.Tuples, res.Elapsed.Seconds()), Result: &res}, nil
}

// execDelete handles `delete <var> where <var>.<partattr> = <val>`.
func (s *Session) execDelete(p *parser) (Output, error) {
	p.next() // delete
	v := p.next()
	r, err := s.relOf(v)
	if err != nil {
		return Output{}, err
	}
	if err := p.expect("where"); err != nil {
		return Output{}, err
	}
	q, err := p.parseQual()
	if err != nil {
		return Output{}, err
	}
	key, ok := exactKey(q, v, r.PartAttr)
	if !ok {
		return Output{}, fmt.Errorf("quel: delete requires an exact predicate on %s", r.PartAttr)
	}
	res := s.m.RunUpdate(core.UpdateQuery{Rel: r, Kind: core.DeleteByKey, Key: key})
	return Output{Message: fmt.Sprintf("deleted %d tuple in %.3fs", res.Tuples, res.Elapsed.Seconds()), Result: &res}, nil
}

// execReplace handles `replace <var> (attr = val) where <qual>`.
func (s *Session) execReplace(p *parser) (Output, error) {
	p.next() // replace
	v := p.next()
	r, err := s.relOf(v)
	if err != nil {
		return Output{}, err
	}
	if err := p.expect("("); err != nil {
		return Output{}, err
	}
	attr, ok := rel.AttrByName(p.next())
	if !ok {
		return Output{}, fmt.Errorf("quel: unknown attribute in replace")
	}
	if err := p.expect("="); err != nil {
		return Output{}, err
	}
	newVal, err := parseInt(p.next())
	if err != nil {
		return Output{}, err
	}
	if err := p.expect(")"); err != nil {
		return Output{}, err
	}
	if err := p.expect("where"); err != nil {
		return Output{}, err
	}
	q, err := p.parseQual()
	if err != nil {
		return Output{}, err
	}

	uq := core.UpdateQuery{Rel: r, Attr: attr, NewValue: newVal}
	switch {
	case attr == r.PartAttr:
		key, ok := exactKey(q, v, r.PartAttr)
		if !ok {
			return Output{}, fmt.Errorf("quel: key modification requires an exact predicate on %s", r.PartAttr)
		}
		uq.Kind, uq.Key = core.ModifyKeyAttr, key
	default:
		if key, ok := exactKey(q, v, attr); ok && indexedNonClustered(r, attr) {
			// Locate through the attribute's own dense index.
			uq.Kind, uq.Key = core.ModifyIndexed, key
		} else if key, ok := exactKey(q, v, r.PartAttr); ok {
			uq.Kind, uq.Key = core.ModifyNonIndexed, key
		} else {
			return Output{}, fmt.Errorf("quel: replace requires an exact predicate on %s or on the modified indexed attribute", r.PartAttr)
		}
	}
	res := s.m.RunUpdate(uq)
	return Output{Message: fmt.Sprintf("replaced %d tuple in %.3fs (%s)", res.Tuples, res.Elapsed.Seconds(), uq.Kind), Result: &res}, nil
}

func indexedNonClustered(r *core.Relation, attr rel.Attr) bool {
	bt, ok := r.Index(attr)
	return ok && !r.ClusteredOn(attr) && bt != nil
}

func exactKey(q *qual, v string, attr rel.Attr) (int32, bool) {
	b, ok := q.bounds[v][attr]
	if !ok || b[0] != b[1] {
		return 0, false
	}
	return clamp32(b[0]), true
}

func parseInt(tok string) (int32, error) {
	var v int64
	_, err := fmt.Sscanf(tok, "%d", &v)
	if err != nil {
		return 0, fmt.Errorf("quel: expected integer, got %q", tok)
	}
	return clamp32(v), nil
}
