package quel

import (
	"strings"
	"testing"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s := sim.New()
	prm := config.Default()
	m := core.NewMachine(s, &prm, 4, 4)
	u1 := rel.Unique1
	m.Load(core.LoadSpec{
		Name: "tenktup", Strategy: core.Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(2000, 1))
	m.Load(core.LoadSpec{Name: "bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(200, 7))
	ses := NewSession(m)
	mustExec(t, ses, "range of t is tenktup")
	mustExec(t, ses, "range of b is bprime")
	return ses
}

func mustExec(t *testing.T, s *Session, stmt string) Output {
	t.Helper()
	out, err := s.Exec(stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	return out
}

func TestRangeAndRetrieve(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve (t.all) where t.unique2 < 20")
	if out.Result.Tuples != 20 {
		t.Errorf("tuples = %d, want 20", out.Result.Tuples)
	}
}

func TestRetrieveInto(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve into res (t.all) where t.unique1 >= 100 and t.unique1 <= 199")
	if out.Result.Tuples != 100 {
		t.Errorf("tuples = %d, want 100", out.Result.Tuples)
	}
	if _, ok := s.m.Relation("res"); !ok {
		t.Error("result relation not catalogued")
	}
}

func TestConjunctionTightensBounds(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve (t.all) where t.unique2 < 50 and t.unique2 >= 40")
	if out.Result.Tuples != 10 {
		t.Errorf("tuples = %d, want 10", out.Result.Tuples)
	}
	// Reversed operand order must work too.
	out = mustExec(t, s, "retrieve (t.all) where 50 > t.unique2 and 40 <= t.unique2")
	if out.Result.Tuples != 10 {
		t.Errorf("flipped: tuples = %d, want 10", out.Result.Tuples)
	}
}

func TestJoinRetrieve(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve into j (t.all) where t.unique2 = b.unique2")
	if out.Result.Tuples != 200 {
		t.Errorf("join tuples = %d, want 200", out.Result.Tuples)
	}
}

func TestJoinWithSelectionPropagation(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve into j (t.all) where t.unique2 = b.unique2 and b.unique2 < 50")
	if out.Result.Tuples != 50 {
		t.Errorf("join tuples = %d, want 50", out.Result.Tuples)
	}
}

func TestScalarAggregates(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve (count(t.unique1))")
	if out.Agg.Groups[0] != 2000 {
		t.Errorf("count = %d", out.Agg.Groups[0])
	}
	out = mustExec(t, s, "retrieve (max(t.unique2)) where t.unique2 < 100")
	if out.Agg.Groups[0] != 99 {
		t.Errorf("max = %d", out.Agg.Groups[0])
	}
}

func TestGroupedAggregate(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve (count(t.unique1)) by t.ten")
	if len(out.Agg.Groups) != 10 {
		t.Fatalf("groups = %d", len(out.Agg.Groups))
	}
	for _, v := range out.Agg.Groups {
		if v != 200 {
			t.Errorf("group count = %d, want 200", v)
		}
	}
}

func TestAppendDeleteReplace(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "append to tenktup (unique1 = 9999, unique2 = 9999)")
	if out.Result.Tuples != 1 {
		t.Fatal("append failed")
	}
	out = mustExec(t, s, "retrieve (t.all) where t.unique1 = 9999")
	if out.Result.Tuples != 1 {
		t.Fatal("appended tuple not found")
	}
	mustExec(t, s, "replace t (ten = 5) where t.unique1 = 9999")
	mustExec(t, s, "replace t (unique2 = 8888) where t.unique2 = 9999")
	out = mustExec(t, s, "retrieve (t.all) where t.unique2 = 8888")
	if out.Result.Tuples != 1 {
		t.Fatal("indexed replace lost the tuple")
	}
	out = mustExec(t, s, "delete t where t.unique1 = 9999")
	if out.Result.Tuples != 1 {
		t.Fatal("delete failed")
	}
	out = mustExec(t, s, "retrieve (t.all) where t.unique1 = 9999")
	if out.Result.Tuples != 0 {
		t.Fatal("tuple still present after delete")
	}
}

func TestParseErrors(t *testing.T) {
	s := newSession(t)
	bad := []string{
		"frobnicate",
		"range of x is nosuchrel",
		"retrieve (t.all) where t.bogus = 1",
		"retrieve (q.all)",
		"retrieve (t.all) where t.unique1 < b.unique1", // non-equijoin
		"retrieve (t.all) where 1 = 2",
		"delete t where t.unique2 < 5", // not an exact key
	}
	for _, stmt := range bad {
		if _, err := s.Exec(stmt); err == nil {
			t.Errorf("Exec(%q) should have failed", stmt)
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "RETRIEVE (t.all) WHERE t.unique2 < 10")
	if out.Result.Tuples != 10 {
		t.Errorf("tuples = %d", out.Result.Tuples)
	}
}

func TestProjectionTargetList(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve into narrow (t.unique1, t.unique2) where t.unique2 < 100")
	if out.Result.Tuples != 100 {
		t.Fatalf("tuples = %d", out.Result.Tuples)
	}
	r, ok := s.m.Relation("narrow")
	if !ok || r.Width != 8 {
		t.Errorf("projected width = %d, want 8", r.Width)
	}
	// Mixing range variables in a target list is rejected.
	if _, err := s.Exec("retrieve (t.unique1, b.unique2)"); err == nil {
		t.Error("mixed target list accepted")
	}
	// Projection on joins is rejected with a clear error.
	if _, err := s.Exec("retrieve (t.unique1) where t.unique2 = b.unique2"); err == nil {
		t.Error("join projection accepted")
	}
}

func TestJoinMessageMentionsBuildSide(t *testing.T) {
	s := newSession(t)
	out := mustExec(t, s, "retrieve into j2 (t.all) where t.unique2 = b.unique2")
	if !strings.Contains(out.Message, "build=bprime") {
		t.Errorf("expected smaller relation as build side, got %q", out.Message)
	}
}
