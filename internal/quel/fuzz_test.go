package quel

// Round-trip fuzzing of the QUEL parser: any accepted input must print to a
// canonical form that parses again and is a fixed point of print∘parse. The
// seed corpus mirrors the gammaql \help examples plus one variant per
// statement form; CI runs FuzzParseRoundTrip as a short smoke on top of the
// deterministic corpus test.

import (
	"testing"
)

// seedStatements are the gammaql examples and grammar-corner variants.
var seedStatements = []string{
	"range of t is tenktup",
	"retrieve (t.all) where t.unique2 < 100",
	"retrieve into res (t.all) where t.unique1 >= 100 and t.unique1 <= 199",
	"retrieve (t.unique1, t.unique2) where t.unique2 < 100",
	"retrieve (count(t.unique1)) by t.ten",
	"retrieve (max(t.unique2)) where t.unique2 < 100",
	"retrieve into j (a.all) where a.unique2 = b.unique2 and b.unique2 < 1000",
	"append to tenktup (unique1 = 7, unique2 = 12)",
	"delete t where t.unique1 = 55",
	"replace t (ten = 3) where t.unique1 = 55",
	"RETRIEVE (T.all) WHERE 50 > T.unique2 AND -5 <= T.unique2",
	"retrieve (avg(t.onePercent)) by t.twenty where t.fiftyPercent = 0",
	"",
	"   ",
}

// roundTrip asserts the fixed-point property for one accepted statement and
// returns its canonical form.
func roundTrip(t *testing.T, line string) string {
	t.Helper()
	st, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	if st == nil {
		return ""
	}
	canon := st.String()
	st2, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical form %q (of %q) fails to parse: %v", canon, line, err)
	}
	if again := st2.String(); again != canon {
		t.Fatalf("print/parse is not a fixed point:\n input %q\n canon %q\n again %q", line, canon, again)
	}
	return canon
}

// TestParseSeedCorpus keeps the fuzz seeds passing deterministically, so the
// corpus stays valid even when no fuzz engine runs.
func TestParseSeedCorpus(t *testing.T) {
	for _, line := range seedStatements {
		roundTrip(t, line)
	}
}

// TestParseCanonical pins the canonical spelling: lowercase keywords, single
// spaces, normalized integer constants, names verbatim.
func TestParseCanonical(t *testing.T) {
	tests := []struct{ in, want string }{
		{"range  OF t IS tenktup", "range of t is tenktup"},
		{"RETRIEVE(t.ALL)WHERE t.unique2<007", "retrieve (t.all) where t.unique2 < 7"},
		{"retrieve into j (a.all) where a.unique2=b.unique2", "retrieve into j (a.all) where a.unique2 = b.unique2"},
		{"retrieve ( COUNT ( t . unique1 ) ) BY t.ten", "retrieve (count(t.unique1)) by t.ten"},
		{"retrieve (t.unique1,t.unique2)", "retrieve (t.unique1, t.unique2)"},
		{"append to r(unique1=-0,two=12)", "append to r (unique1 = 0, two = 12)"},
		{"delete t where 55=t.unique1", "delete t where 55 = t.unique1"},
		{"replace t ( ten=3 ) where t.unique1>=55", "replace t (ten = 3) where t.unique1 >= 55"},
	}
	for _, tc := range tests {
		st, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := st.String(); got != tc.want {
			t.Errorf("canonical(%q) = %q, want %q", tc.in, got, tc.want)
		}
		roundTrip(t, tc.in)
	}
}

// TestParseRejects pins the syntax errors Parse must produce without any
// session state.
func TestParseRejects(t *testing.T) {
	bad := []string{
		"frobnicate",
		"range of , is tenktup",
		"retrieve (t.all) where t.bogus = 1",
		"retrieve (t.all) where 1 = 2",
		"retrieve (t.all) where t.unique1 < b.unique1",
		"retrieve (t.all) where t.unique1 = b.unique1 and t.unique2 = b.unique2",
		"retrieve (t.unique1, b.unique2)",
		"retrieve (t.all) extra",
		"delete t",
		"replace t (ten = x) where t.unique1 = 5",
		"append to r (unique1 = )",
		"range of t is tenktup garbage",
	}
	for _, line := range bad {
		if st, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) = %v, want error", line, st)
		}
	}
}

// FuzzParseRoundTrip feeds arbitrary lines through Parse; whatever is
// accepted must print to a canonical form that re-parses to the same string.
func FuzzParseRoundTrip(f *testing.F) {
	for _, s := range seedStatements {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		st, err := Parse(line)
		if err != nil || st == nil {
			return
		}
		canon := st.String()
		st2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) fails to parse: %v", canon, line, err)
		}
		if again := st2.String(); again != canon {
			t.Fatalf("print/parse is not a fixed point:\n input %q\n canon %q\n again %q", line, canon, again)
		}
	})
}
