// Package quel implements a small QUEL front end for the Gamma machine —
// the paper's Gamma speaks "an extended version of the query language QUEL"
// (§4, [STON76]). Supported statements:
//
//	range of t is tenktup
//	retrieve [into name] (t.all) [where <qual>]
//	retrieve (count(t.unique1)) [by t.ten] [where <qual>]
//	retrieve into name (a.all) where a.unique2 = b.unique2 [and <qual>]
//	append to tenktup (unique1 = 7, unique2 = 12)
//	delete t where t.unique1 = 55
//	replace t (ten = 3) where t.unique1 = 55
//
// A qualification is a conjunction ("and") of comparisons between an
// attribute and a constant (=, <, <=, >, >=) or an equijoin term between two
// range variables' attributes. Range restrictions on one side of a join term
// are propagated to the other, as Gamma's optimizer does (§6.1).
package quel

import (
	"fmt"
	"strconv"
	"strings"

	"gamma/internal/core"
	"gamma/internal/rel"
)

// Session holds range-variable bindings against one machine.
type Session struct {
	m      *core.Machine
	ranges map[string]*core.Relation
	// Mode is the join placement used for joins and aggregates.
	Mode core.JoinMode
}

// NewSession starts a session on m.
func NewSession(m *core.Machine) *Session {
	return &Session{m: m, ranges: map[string]*core.Relation{}, Mode: core.Remote}
}

// Output is the result of executing one statement.
type Output struct {
	// Message is a human-readable summary.
	Message string
	// Result holds the engine result for retrieve/append/delete/replace.
	Result *core.Result
	// Agg holds the result of an aggregate retrieve.
	Agg *core.AggResult
}

// Exec parses and runs one statement.
func (s *Session) Exec(line string) (Output, error) {
	toks, err := lex(line)
	if err != nil {
		return Output{}, err
	}
	if len(toks) == 0 {
		return Output{Message: ""}, nil
	}
	p := &parser{toks: toks}
	switch strings.ToLower(toks[0].text) {
	case "range":
		return s.execRange(p)
	case "retrieve":
		return s.execRetrieve(p)
	case "append":
		return s.execAppend(p)
	case "delete":
		return s.execDelete(p)
	case "replace":
		return s.execReplace(p)
	default:
		return Output{}, fmt.Errorf("quel: unknown statement %q", toks[0].text)
	}
}

// --- lexer ---------------------------------------------------------------

type token struct {
	text string
	pos  int
}

func lex(line string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '=':
			toks = append(toks, token{string(c), i})
			i++
		case c == '<' || c == '>':
			if i+1 < len(line) && line[i+1] == '=' {
				toks = append(toks, token{line[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{string(c), i})
				i++
			}
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(line) && line[j] >= '0' && line[j] <= '9' {
				j++
			}
			toks = append(toks, token{line[i:j], i})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(line) && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{line[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("quel: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// --- parser --------------------------------------------------------------

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() string {
	if p.i < len(p.toks) {
		return p.toks[p.i].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.i++
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); !strings.EqualFold(got, want) {
		return fmt.Errorf("quel: expected %q, got %q", want, got)
	}
	return nil
}

func (p *parser) done() bool { return p.i >= len(p.toks) }

// --- qualifications ------------------------------------------------------

// qual is a parsed conjunction: per-variable range restrictions plus at most
// one equijoin term.
type qual struct {
	// bounds[var][attr] = [lo, hi]
	bounds map[string]map[rel.Attr][2]int64
	// join term: av.aattr = bv.battr
	hasJoin      bool
	av, bv       string
	aattr, battr rel.Attr
}

func newQual() *qual {
	return &qual{bounds: map[string]map[rel.Attr][2]int64{}}
}

func (q *qual) restrict(v string, a rel.Attr, lo, hi int64) {
	m := q.bounds[v]
	if m == nil {
		m = map[rel.Attr][2]int64{}
		q.bounds[v] = m
	}
	b, ok := m[a]
	if !ok {
		b = [2]int64{-1 << 31, 1<<31 - 1}
	}
	if lo > b[0] {
		b[0] = lo
	}
	if hi < b[1] {
		b[1] = hi
	}
	m[a] = b
}

// pred extracts the single-attribute predicate for a variable (the engine
// compiles one range predicate per scan; the most selective attribute wins).
func (q *qual) pred(v string, n int) rel.Pred {
	m := q.bounds[v]
	if len(m) == 0 {
		return rel.True()
	}
	best := rel.True()
	bestSel := 2.0
	for a, b := range m {
		pr := rel.Pred{Attr: a, Lo: clamp32(b[0]), Hi: clamp32(b[1])}
		if sel := pr.Selectivity(n); sel < bestSel {
			best, bestSel = pr, sel
		}
	}
	return best
}

func clamp32(v int64) int32 {
	if v < -1<<31 {
		v = -1 << 31
	}
	if v > 1<<31-1 {
		v = 1<<31 - 1
	}
	return int32(v)
}

// parseQual parses `<term> [and <term>]...` where a term is
// `var.attr OP const`, `const OP var.attr`, or `var.attr = var.attr`.
func (p *parser) parseQual() (*qual, error) {
	q := newQual()
	for {
		if err := p.parseTerm(q); err != nil {
			return nil, err
		}
		if strings.EqualFold(p.peek(), "and") {
			p.next()
			continue
		}
		break
	}
	if !p.done() {
		return nil, fmt.Errorf("quel: trailing input %q", p.peek())
	}
	return q, nil
}

func (p *parser) parseTerm(q *qual) error {
	lv, lattr, lconst, lIsConst, err := p.parseOperand()
	if err != nil {
		return err
	}
	op := p.next()
	switch op {
	case "=", "<", "<=", ">", ">=":
	default:
		return fmt.Errorf("quel: expected comparison operator, got %q", op)
	}
	rv, rattr, rconst, rIsConst, err := p.parseOperand()
	if err != nil {
		return err
	}
	switch {
	case lIsConst && rIsConst:
		return fmt.Errorf("quel: constant comparison is not useful")
	case !lIsConst && !rIsConst:
		if op != "=" {
			return fmt.Errorf("quel: only equijoins are supported")
		}
		if q.hasJoin {
			return fmt.Errorf("quel: at most one join term per query")
		}
		q.hasJoin = true
		q.av, q.aattr, q.bv, q.battr = lv, lattr, rv, rattr
	case lIsConst:
		// const OP var.attr: flip.
		q.applyCmp(rv, rattr, flip(op), lconst)
	default:
		q.applyCmp(lv, lattr, op, rconst)
	}
	return nil
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func (q *qual) applyCmp(v string, a rel.Attr, op string, c int64) {
	switch op {
	case "=":
		q.restrict(v, a, c, c)
	case "<":
		q.restrict(v, a, -1<<31, c-1)
	case "<=":
		q.restrict(v, a, -1<<31, c)
	case ">":
		q.restrict(v, a, c+1, 1<<31-1)
	case ">=":
		q.restrict(v, a, c, 1<<31-1)
	}
}

// parseOperand parses `var.attr` or an integer constant.
func (p *parser) parseOperand() (v string, a rel.Attr, c int64, isConst bool, err error) {
	t := p.next()
	if t == "" {
		return "", 0, 0, false, fmt.Errorf("quel: unexpected end of input")
	}
	if n, convErr := strconv.ParseInt(t, 10, 64); convErr == nil {
		return "", 0, n, true, nil
	}
	if p.peek() != "." {
		return "", 0, 0, false, fmt.Errorf("quel: expected var.attr or constant, got %q", t)
	}
	p.next()
	attrName := p.next()
	attr, ok := rel.AttrByName(attrName)
	if !ok {
		return "", 0, 0, false, fmt.Errorf("quel: unknown attribute %q", attrName)
	}
	return t, attr, 0, false, nil
}
