// Package quel implements a small QUEL front end for the Gamma machine —
// the paper's Gamma speaks "an extended version of the query language QUEL"
// (§4, [STON76]). Supported statements:
//
//	range of t is tenktup
//	retrieve [into name] (t.all) [where <qual>]
//	retrieve (count(t.unique1)) [by t.ten] [where <qual>]
//	retrieve into name (a.all) where a.unique2 = b.unique2 [and <qual>]
//	append to tenktup (unique1 = 7, unique2 = 12)
//	delete t where t.unique1 = 55
//	replace t (ten = 3) where t.unique1 = 55
//
// A qualification is a conjunction ("and") of comparisons between an
// attribute and a constant (=, <, <=, >, >=) or an equijoin term between two
// range variables' attributes. Range restrictions on one side of a join term
// are propagated to the other, as Gamma's optimizer does (§6.1).
//
// Parsing and execution are separate layers: Parse turns a line into a Stmt
// (ast.go) with no catalog access, and Session.Run executes a Stmt against a
// machine. Session.Exec composes the two.
package quel

import (
	"fmt"
	"strconv"
	"strings"

	"gamma/internal/core"
	"gamma/internal/rel"
)

// Parse parses one statement into its AST without touching any session or
// catalog state. An all-whitespace line parses to (nil, nil).
func Parse(line string) (Stmt, error) {
	toks, err := lex(line)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, nil
	}
	p := &parser{toks: toks}
	var st Stmt
	switch strings.ToLower(toks[0].text) {
	case "range":
		st, err = p.parseRange()
	case "retrieve":
		st, err = p.parseRetrieve()
	case "append":
		st, err = p.parseAppend()
	case "delete":
		st, err = p.parseDelete()
	case "replace":
		st, err = p.parseReplace()
	default:
		return nil, fmt.Errorf("quel: unknown statement %q", toks[0].text)
	}
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("quel: trailing input %q", p.peek())
	}
	return st, nil
}

// --- lexer ---------------------------------------------------------------

type token struct {
	text string
	pos  int
}

func lex(line string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '=':
			toks = append(toks, token{string(c), i})
			i++
		case c == '<' || c == '>':
			if i+1 < len(line) && line[i+1] == '=' {
				toks = append(toks, token{line[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{string(c), i})
				i++
			}
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(line) && line[j] >= '0' && line[j] <= '9' {
				j++
			}
			toks = append(toks, token{line[i:j], i})
			i = j
		case isIdentChar(c):
			j := i
			for j < len(line) && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{line[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("quel: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// --- parser --------------------------------------------------------------

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() string {
	if p.i < len(p.toks) {
		return p.toks[p.i].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.i++
	return t
}

func (p *parser) expect(want string) error {
	if got := p.next(); !strings.EqualFold(got, want) {
		return fmt.Errorf("quel: expected %q, got %q", want, got)
	}
	return nil
}

// ident consumes a name token: relation, range-variable, or result names.
func (p *parser) ident() (string, error) {
	t := p.next()
	if t == "" {
		return "", fmt.Errorf("quel: unexpected end of input")
	}
	if c := t[0]; c != '_' && !(c >= 'a' && c <= 'z') && !(c >= 'A' && c <= 'Z') {
		return "", fmt.Errorf("quel: expected identifier, got %q", t)
	}
	return t, nil
}

// attr consumes an attribute name token.
func (p *parser) attr() (rel.Attr, error) {
	t := p.next()
	a, ok := rel.AttrByName(t)
	if !ok {
		return 0, fmt.Errorf("quel: unknown attribute %q", t)
	}
	return a, nil
}

func (p *parser) done() bool { return p.i >= len(p.toks) }

// --- statement parsers ---------------------------------------------------

// parseRange parses `range of <var> is <relation>`.
func (p *parser) parseRange() (Stmt, error) {
	p.next() // range
	if err := p.expect("of"); err != nil {
		return nil, err
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("is"); err != nil {
		return nil, err
	}
	rn, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &RangeStmt{Var: v, Rel: rn}, nil
}

var aggNames = map[string]core.AggFn{
	"count": core.Count, "sum": core.Sum, "min": core.Min, "max": core.Max, "avg": core.Avg,
}

// parseRetrieve parses plain, into, join, and aggregate retrieves.
func (p *parser) parseRetrieve() (Stmt, error) {
	p.next() // retrieve
	st := &RetrieveStmt{}
	if strings.EqualFold(p.peek(), "into") {
		p.next()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Into = name
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}

	// Target list: `v.all`, a projection list `v.a1, v.a2, ...`, or an
	// aggregate `fn(v.attr)`.
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	if fn, ok := aggNames[strings.ToLower(first)]; ok {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		a, err := p.attr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Agg = &AggTarget{Fn: fn, Var: v, Attr: a}
		st.Var = v
	} else {
		st.Var = first
		if err := p.expect("."); err != nil {
			return nil, err
		}
		name := p.next()
		if strings.EqualFold(name, "all") {
			st.All = true
		} else {
			a, ok := rel.AttrByName(name)
			if !ok {
				return nil, fmt.Errorf("quel: unknown attribute %q in target list", name)
			}
			st.Project = append(st.Project, a)
			for p.peek() == "," {
				p.next()
				v, err := p.ident()
				if err != nil {
					return nil, err
				}
				if v != st.Var {
					return nil, fmt.Errorf("quel: target list mixes range variables")
				}
				if err := p.expect("."); err != nil {
					return nil, err
				}
				a, err := p.attr()
				if err != nil {
					return nil, err
				}
				st.Project = append(st.Project, a)
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}

	// Optional `by v.attr` (grouped aggregate).
	if strings.EqualFold(p.peek(), "by") {
		p.next()
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		a, err := p.attr()
		if err != nil {
			return nil, err
		}
		if v != st.Var {
			return nil, fmt.Errorf("quel: grouping variable must match the aggregate's")
		}
		st.GroupBy = &a
	}

	// Optional qualification.
	if strings.EqualFold(p.peek(), "where") {
		p.next()
		st.Where, err = p.parseWhere()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseAppend parses `append to <rel> (attr = val, ...)`.
func (p *parser) parseAppend() (Stmt, error) {
	p.next() // append
	if err := p.expect("to"); err != nil {
		return nil, err
	}
	rn, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &AppendStmt{Rel: rn}
	for {
		c, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, c)
		if p.peek() == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return st, nil
}

// parseDelete parses `delete <var> where <qual>`.
func (p *parser) parseDelete() (Stmt, error) {
	p.next() // delete
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("where"); err != nil {
		return nil, err
	}
	terms, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &DeleteStmt{Var: v, Where: terms}, nil
}

// parseReplace parses `replace <var> (attr = val) where <qual>`.
func (p *parser) parseReplace() (Stmt, error) {
	p.next() // replace
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	set, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("where"); err != nil {
		return nil, err
	}
	terms, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &ReplaceStmt{Var: v, Set: set, Where: terms}, nil
}

// parseSet parses one `attr = value` assignment.
func (p *parser) parseSet() (SetClause, error) {
	a, err := p.attr()
	if err != nil {
		return SetClause{}, err
	}
	if err := p.expect("="); err != nil {
		return SetClause{}, err
	}
	tok := p.next()
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return SetClause{}, fmt.Errorf("quel: expected integer, got %q", tok)
	}
	return SetClause{Attr: a, Val: v}, nil
}

// --- qualifications ------------------------------------------------------

// parseWhere parses `<term> [and <term>]...` where a term is
// `var.attr OP const`, `const OP var.attr`, or `var.attr = var.attr`.
func (p *parser) parseWhere() ([]Term, error) {
	var terms []Term
	joins := 0
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		switch {
		case t.Left.IsConst && t.Right.IsConst:
			return nil, fmt.Errorf("quel: constant comparison is not useful")
		case !t.Left.IsConst && !t.Right.IsConst:
			if t.Op != "=" {
				return nil, fmt.Errorf("quel: only equijoins are supported")
			}
			if joins++; joins > 1 {
				return nil, fmt.Errorf("quel: at most one join term per query")
			}
		}
		terms = append(terms, t)
		if strings.EqualFold(p.peek(), "and") {
			p.next()
			continue
		}
		return terms, nil
	}
}

func (p *parser) parseTerm() (Term, error) {
	l, err := p.parseOperand()
	if err != nil {
		return Term{}, err
	}
	op := p.next()
	switch op {
	case "=", "<", "<=", ">", ">=":
	default:
		return Term{}, fmt.Errorf("quel: expected comparison operator, got %q", op)
	}
	r, err := p.parseOperand()
	if err != nil {
		return Term{}, err
	}
	return Term{Left: l, Op: op, Right: r}, nil
}

// parseOperand parses `var.attr` or an integer constant.
func (p *parser) parseOperand() (Operand, error) {
	t := p.next()
	if t == "" {
		return Operand{}, fmt.Errorf("quel: unexpected end of input")
	}
	if n, convErr := strconv.ParseInt(t, 10, 64); convErr == nil {
		return Operand{Const: n, IsConst: true}, nil
	}
	if c := t[0]; c != '_' && !(c >= 'a' && c <= 'z') && !(c >= 'A' && c <= 'Z') {
		return Operand{}, fmt.Errorf("quel: expected var.attr or constant, got %q", t)
	}
	if p.peek() != "." {
		return Operand{}, fmt.Errorf("quel: expected var.attr or constant, got %q", t)
	}
	p.next()
	a, err := p.attr()
	if err != nil {
		return Operand{}, err
	}
	return Operand{Var: t, Attr: a}, nil
}

// qual is a folded conjunction: per-variable range restrictions plus at most
// one equijoin term. The executor builds it from a Stmt's Term list.
type qual struct {
	// bounds[var][attr] = [lo, hi]
	bounds map[string]map[rel.Attr][2]int64
	// join term: av.aattr = bv.battr
	hasJoin      bool
	av, bv       string
	aattr, battr rel.Attr
}

func newQual() *qual {
	return &qual{bounds: map[string]map[rel.Attr][2]int64{}}
}

// buildQual folds a validated term list into per-variable bounds and the
// join term. Parse has already rejected malformed shapes, so this cannot
// fail.
func buildQual(terms []Term) *qual {
	q := newQual()
	for _, t := range terms {
		switch {
		case !t.Left.IsConst && !t.Right.IsConst:
			q.hasJoin = true
			q.av, q.aattr = t.Left.Var, t.Left.Attr
			q.bv, q.battr = t.Right.Var, t.Right.Attr
		case t.Left.IsConst:
			// const OP var.attr: flip.
			q.applyCmp(t.Right.Var, t.Right.Attr, flip(t.Op), t.Left.Const)
		default:
			q.applyCmp(t.Left.Var, t.Left.Attr, t.Op, t.Right.Const)
		}
	}
	return q
}

func (q *qual) restrict(v string, a rel.Attr, lo, hi int64) {
	m := q.bounds[v]
	if m == nil {
		m = map[rel.Attr][2]int64{}
		q.bounds[v] = m
	}
	b, ok := m[a]
	if !ok {
		b = [2]int64{-1 << 31, 1<<31 - 1}
	}
	if lo > b[0] {
		b[0] = lo
	}
	if hi < b[1] {
		b[1] = hi
	}
	m[a] = b
}

// pred extracts the single-attribute predicate for a variable (the engine
// compiles one range predicate per scan; the most selective attribute wins).
func (q *qual) pred(v string, n int) rel.Pred {
	m := q.bounds[v]
	if len(m) == 0 {
		return rel.True()
	}
	best := rel.True()
	bestSel := 2.0
	for a, b := range m {
		pr := rel.Pred{Attr: a, Lo: clamp32(b[0]), Hi: clamp32(b[1])}
		if sel := pr.Selectivity(n); sel < bestSel {
			best, bestSel = pr, sel
		}
	}
	return best
}

func clamp32(v int64) int32 {
	if v < -1<<31 {
		v = -1 << 31
	}
	if v > 1<<31-1 {
		v = 1<<31 - 1
	}
	return int32(v)
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func (q *qual) applyCmp(v string, a rel.Attr, op string, c int64) {
	switch op {
	case "=":
		q.restrict(v, a, c, c)
	case "<":
		q.restrict(v, a, -1<<31, c-1)
	case "<=":
		q.restrict(v, a, -1<<31, c)
	case ">":
		q.restrict(v, a, c+1, 1<<31-1)
	case ">=":
		q.restrict(v, a, c, 1<<31-1)
	}
}
