package wisconsin

import (
	"testing"
	"testing/quick"

	"gamma/internal/rel"
)

func TestPermIsBijective(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 1000, 4096} {
		p := NewPerm(n, 42)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := p.At(i)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: At(%d) = %d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: value %d produced twice", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermBijectiveProperty(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		m := int(n%500) + 1
		p := NewPerm(m, seed)
		seen := make(map[int]bool, m)
		for i := 0; i < m; i++ {
			v := p.At(i)
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPermDeterministic(t *testing.T) {
	a, b := NewPerm(1000, 7), NewPerm(1000, 7)
	for i := 0; i < 1000; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("perm not deterministic at %d", i)
		}
	}
	c := NewPerm(1000, 8)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.At(i) == c.At(i) {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds agree on %d/1000 positions", same)
	}
}

func TestUniqueAttributesAreUniqueAndUncorrelated(t *testing.T) {
	const n = 10000
	ts := Generate(n, 1)
	seen1 := make([]bool, n)
	seen2 := make([]bool, n)
	equal := 0
	for _, tp := range ts {
		u1, u2 := int(tp.Get(rel.Unique1)), int(tp.Get(rel.Unique2))
		if seen1[u1] || seen2[u2] {
			t.Fatal("duplicate unique attribute value")
		}
		seen1[u1], seen2[u2] = true, true
		if u1 == u2 {
			equal++
		}
	}
	// Under independence, E[matches] = 1; allow generous slack.
	if equal > 20 {
		t.Errorf("unique1 == unique2 in %d tuples; attributes look correlated", equal)
	}
}

func TestDerivedAttributes(t *testing.T) {
	ts := Generate(1000, 3)
	for _, tp := range ts {
		u1 := tp.Get(rel.Unique1)
		checks := []struct {
			attr rel.Attr
			want int32
		}{
			{rel.Two, u1 % 2},
			{rel.Four, u1 % 4},
			{rel.Ten, u1 % 10},
			{rel.Twenty, u1 % 20},
			{rel.OnePercent, u1 % 100},
			{rel.TenPercent, u1 % 10},
			{rel.TwentyPercent, u1 % 5},
			{rel.FiftyPercent, u1 % 2},
			{rel.Unique3, u1},
			{rel.EvenOnePercent, (u1 % 100) * 2},
			{rel.OddOnePercent, (u1%100)*2 + 1},
		}
		for _, c := range checks {
			if got := tp.Get(c.attr); got != c.want {
				t.Fatalf("%v = %d, want %d (unique1=%d)", c.attr, got, c.want, u1)
			}
		}
	}
}

func TestTupleMatchesGenerate(t *testing.T) {
	const n = 500
	ts := Generate(n, 9)
	for _, i := range []int{0, 1, 250, 499} {
		if Tuple(i, n, 9) != ts[i] {
			t.Errorf("Tuple(%d) != Generate[%d]", i, i)
		}
	}
}

func TestSelectivityOfRangePredicates(t *testing.T) {
	const n = 10000
	ts := Generate(n, 5)
	pred := rel.Between(rel.Unique2, 0, n/100-1) // 1% selection
	matched := 0
	for _, tp := range ts {
		if pred.Match(tp) {
			matched++
		}
	}
	if matched != n/100 {
		t.Errorf("1%% predicate matched %d tuples, want %d", matched, n/100)
	}
}
