// Package wisconsin generates the Wisconsin benchmark relations of [BITT83]
// as used in §4 of the paper: 10,000 / 100,000 / 1,000,000-tuple relations
// whose unique1 and unique2 attributes are independent pseudo-random
// permutations of [0, n), guaranteeing uniqueness and no correlation.
//
// Generation is deterministic: a relation is fully determined by its
// cardinality and seed, so experiments are reproducible and fragments can be
// regenerated without storing source data.
package wisconsin

import (
	"sync"

	"gamma/internal/rel"
)

// Perm is a pseudo-random permutation of [0, n) built from a four-round
// Feistel network with cycle-walking, so even the million-tuple relations
// need no materialized shuffle.
type Perm struct {
	n        uint64
	halfBits uint
	mask     uint64
	keys     [4]uint64
}

// NewPerm returns the permutation of [0, n) selected by seed.
func NewPerm(n int, seed uint64) *Perm {
	if n <= 0 {
		panic("wisconsin: NewPerm with n <= 0")
	}
	bits := uint(1)
	for 1<<(2*bits) < uint64(n) {
		bits++
	}
	p := &Perm{n: uint64(n), halfBits: bits, mask: 1<<bits - 1}
	x := seed
	for i := range p.keys {
		// SplitMix64 to derive round keys.
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.keys[i] = z ^ (z >> 31)
	}
	return p
}

func (p *Perm) round(half uint64, key uint64) uint64 {
	x := half*0x9e3779b97f4a7c15 + key
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	x ^= x >> 32
	return x & p.mask
}

// encryptOnce applies the Feistel network to a value in [0, 2^(2*halfBits)).
func (p *Perm) encryptOnce(v uint64) uint64 {
	l := v >> p.halfBits
	r := v & p.mask
	for _, k := range p.keys {
		l, r = r, l^p.round(r, k)
	}
	return l<<p.halfBits | r
}

// At returns the image of i under the permutation.
func (p *Perm) At(i int) int {
	v := uint64(i)
	for {
		v = p.encryptOnce(v)
		if v < p.n {
			return int(v)
		}
	}
}

// Tuple returns tuple i of an n-tuple relation with the given seed. The
// derived attributes follow the standard Wisconsin definitions.
func Tuple(i, n int, seed uint64) rel.Tuple {
	p1 := NewPerm(n, seed*2+1)
	p2 := NewPerm(n, seed*2+2)
	return makeTuple(p1.At(i), p2.At(i))
}

func makeTuple(u1, u2 int) rel.Tuple {
	var t rel.Tuple
	t.Set(rel.Unique1, int32(u1))
	t.Set(rel.Unique2, int32(u2))
	t.Set(rel.Two, int32(u1%2))
	t.Set(rel.Four, int32(u1%4))
	t.Set(rel.Ten, int32(u1%10))
	t.Set(rel.Twenty, int32(u1%20))
	t.Set(rel.OnePercent, int32(u1%100))
	t.Set(rel.TenPercent, int32(u1%10))
	t.Set(rel.TwentyPercent, int32(u1%5))
	t.Set(rel.FiftyPercent, int32(u1%2))
	t.Set(rel.Unique3, int32(u1))
	t.Set(rel.EvenOnePercent, int32((u1%100)*2))
	t.Set(rel.OddOnePercent, int32((u1%100)*2+1))
	return t
}

// genKey identifies one generated relation shape for the memo cache.
type genKey struct {
	n    int
	seed uint64
}

var genMu sync.Mutex
var genCache = map[genKey][]rel.Tuple{}
var genCacheTuples int

// genCacheLimit bounds the memo to a handful of full-size benchmark
// relations (~10M tuples at 52 B each ≈ 500 MB worst case, far below that
// in practice since the suite reuses a few shapes).
const genCacheLimit = 12 << 20

// Generate materializes all n tuples of a relation.
//
// The bench suite builds the same (n, seed) relations dozens of times —
// once per machine configuration — so results are memoized. Callers get a
// fresh copy each time: Machine.Load sorts and repartitions its input, so
// the cached master must never be aliased. The memo is guarded by a mutex
// for the parallel bench runner; generation itself stays deterministic
// because the tuple content depends only on (n, seed).
func Generate(n int, seed uint64) []rel.Tuple {
	key := genKey{n, seed}
	genMu.Lock()
	master, ok := genCache[key]
	genMu.Unlock()
	if ok {
		return append([]rel.Tuple(nil), master...)
	}
	p1 := NewPerm(n, seed*2+1)
	p2 := NewPerm(n, seed*2+2)
	out := make([]rel.Tuple, n)
	for i := range out {
		out[i] = makeTuple(p1.At(i), p2.At(i))
	}
	genMu.Lock()
	if _, dup := genCache[key]; !dup && genCacheTuples+n <= genCacheLimit {
		genCache[key] = out
		genCacheTuples += n
		master = out
	} else {
		master = nil
	}
	genMu.Unlock()
	if master != nil {
		// out is now the shared master; hand the caller a copy.
		return append([]rel.Tuple(nil), out...)
	}
	return out
}
