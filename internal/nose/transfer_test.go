package nose

import (
	"testing"

	"gamma/internal/sim"
)

func TestTransferBulkChargesBothNICs(t *testing.T) {
	s, n := testNet(t, 2)
	a, b := n.Nodes()[0], n.Nodes()[1]
	var elapsed sim.Dur
	s.Spawn("mover", func(p *sim.Proc) {
		start := p.Now()
		n.TransferBulk(p, a, b, 4096)
		elapsed = p.Now() - start
	})
	s.Run()
	cfg := n.Config()
	want := 2*cfg.NICTime(4096) + cfg.RingTime(4096)
	if elapsed != want {
		t.Errorf("bulk transfer took %v, want %v", elapsed, want)
	}
	if st := n.Stats(); st.RingBytes != 4096 {
		t.Errorf("ring bytes = %d", st.RingBytes)
	}
}

func TestTransferBulkSameNodeIsFree(t *testing.T) {
	s, n := testNet(t, 1)
	a := n.Nodes()[0]
	var elapsed sim.Dur
	s.Spawn("mover", func(p *sim.Proc) {
		start := p.Now()
		n.TransferBulk(p, a, a, 1<<20)
		elapsed = p.Now() - start
	})
	s.Run()
	if elapsed != 0 {
		t.Errorf("same-node transfer took %v", elapsed)
	}
}

func TestPerConnectionFIFODelivery(t *testing.T) {
	// Messages sent on one connection must be received in send order —
	// the property that makes end-of-stream a reliable stream terminator.
	s, n := testNet(t, 2)
	a, b := n.Nodes()[0], n.Nodes()[1]
	port := b.NewPort("p")
	const total = 50
	var got []int
	s.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			m := port.Recv(p)
			got = append(got, m.Payload.(int))
		}
	})
	s.Spawn("send", func(p *sim.Proc) {
		c := a.Dial(port)
		for i := 0; i < total; i++ {
			c.Send(p, Data, i, 512)
		}
	})
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d arrived at position %d", v, i)
		}
	}
}

func TestSharedNICSerializesTwoSenders(t *testing.T) {
	// Two processes on one node share its Unibus path: their sends must
	// serialize on the NIC.
	s, n := testNet(t, 2)
	a, b := n.Nodes()[0], n.Nodes()[1]
	port := b.NewPort("p")
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn("send", func(p *sim.Proc) {
			c := a.Dial(port)
			c.Send(p, Data, i, 2048)
			done[i] = p.Now()
		})
	}
	s.Spawn("recv", func(p *sim.Proc) {
		port.Recv(p)
		port.Recv(p)
	})
	s.Run()
	nicTime := n.Config().NICTime(2048)
	later := done[0]
	if done[1] > later {
		later = done[1]
	}
	if later < 2*nicTime {
		t.Errorf("two 2KB sends finished by %v; NIC (%v each) did not serialize", later, nicTime)
	}
}
