package nose

import (
	"testing"

	"gamma/internal/sim"
)

func TestLossRecoveredByRetransmission(t *testing.T) {
	s, n := testNet(t, 2)
	n.InjectLoss(1, 4) // drop every 4th packet
	a, b := n.Nodes()[0], n.Nodes()[1]
	port := b.NewPort("p")
	const total = 40
	var got []int
	s.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			m := port.Recv(p)
			got = append(got, m.Payload.(int))
		}
	})
	s.Spawn("send", func(p *sim.Proc) {
		c := a.Dial(port)
		for i := 0; i < total; i++ {
			c.Send(p, Data, i, 1024)
		}
	})
	s.Run()
	if len(got) != total {
		t.Fatalf("received %d of %d messages despite retransmission", len(got), total)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("message %d delivered twice", v)
		}
		seen[v] = true
	}
	if n.Retransmits() == 0 {
		t.Error("no retransmissions recorded; loss injection inactive")
	}
}

func TestLossCostsTime(t *testing.T) {
	run := func(lossy bool) sim.Time {
		s, n := testNet(t, 2)
		if lossy {
			n.InjectLoss(1, 3)
		}
		a, b := n.Nodes()[0], n.Nodes()[1]
		port := b.NewPort("p")
		s.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				port.Recv(p)
			}
		})
		s.Spawn("send", func(p *sim.Proc) {
			c := a.Dial(port)
			for i := 0; i < 30; i++ {
				c.Send(p, Data, i, 2048)
			}
		})
		return s.Run()
	}
	clean, lossy := run(false), run(true)
	if lossy <= clean {
		t.Errorf("lossy network (%v) should be slower than clean (%v)", lossy, clean)
	}
}

func TestNoLossByDefault(t *testing.T) {
	_, n := testNet(t, 2)
	nd := n.Nodes()[0]
	for i := 0; i < 1000; i++ {
		if nd.dropNext() {
			t.Fatal("packet dropped with loss injection disabled")
		}
	}
}
