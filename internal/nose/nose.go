// Package nose models NOSE, the operating system Gamma is built on (§2):
// processors connected by a token ring, lightweight processes, ports, and a
// reliable sliding-window datagram service.
//
// The cost structure follows the paper's analysis:
//
//   - The 80 Mbit/s Proteon ring itself is "never a bottleneck"; the 4 Mbit/s
//     Unibus path from memory to the network interface is (§5.2.1). Each node
//     therefore has a NIC resource capped at Unibus bandwidth, shared by
//     inbound and outbound traffic.
//   - Messages between processes on the same processor are short-circuited by
//     the communications software (§2) and cost only a little CPU.
//   - The sliding-window protocol bounds the packets a sender may have
//     outstanding to one destination; a slow consumer therefore stalls its
//     producers, which is how a saturated NIC pushes back on a disk scan
//     (§5.2.1's explanation of the 10% selection speedup curve).
package nose

import (
	"fmt"

	"gamma/internal/config"
	"gamma/internal/disk"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// MsgKind distinguishes the three message classes of §2.
type MsgKind int

const (
	// Data is a packet of tuples flowing through a split table.
	Data MsgKind = iota
	// EndOfStream closes one producer's output stream to a port.
	EndOfStream
	// Control is a scheduler/operator control message.
	Control
)

func (k MsgKind) String() string {
	switch k {
	case Data:
		return "data"
	case EndOfStream:
		return "eos"
	default:
		return "control"
	}
}

// Message is a datagram delivered to a Port.
type Message struct {
	From    *Node
	Kind    MsgKind
	Payload any
	// release returns the sender's window credit; set on remote sends and
	// invoked when the receiver consumes the message.
	release func()
}

// Stats aggregates network activity.
type Stats struct {
	DataPackets int64 // packets that crossed the ring
	LocalMsgs   int64 // messages short-circuited on one node
	CtlMsgs     int64 // inter-node control messages
	RingBytes   int64
}

// Network is the token ring plus every node attached to it.
type Network struct {
	sim   *sim.Sim
	cfg   config.Net
	cpu   config.CPU
	ring  *sim.Resource
	nodes []*Node
	stats Stats
	// Fault injection: lossNum/lossDen packets are dropped in transit and
	// recovered by the sliding-window protocol's timeout retransmission.
	lossNum, lossDen int
	lossCtr          int
	retransmits      int64
}

// retransmitTimeout is the sliding-window protocol's retransmission timer.
const retransmitTimeout = 50 * sim.Millisecond

// InjectLoss makes every (den/num)-th data packet vanish in transit,
// deterministically, exercising the NOSE protocol's reliability machinery
// (§2: "reliable, datagram communication services using a multiple bit,
// sliding window protocol"). num 0 disables loss.
func (n *Network) InjectLoss(num, den int) {
	n.lossNum, n.lossDen = num, den
	n.lossCtr = 0
}

// Retransmits reports how many packets the protocol had to resend.
func (n *Network) Retransmits() int64 { return n.retransmits }

// dropNext deterministically decides whether the next packet is lost.
func (n *Network) dropNext() bool {
	if n.lossNum <= 0 || n.lossDen <= 0 {
		return false
	}
	n.lossCtr++
	return n.lossCtr%((n.lossDen+n.lossNum-1)/n.lossNum) == 0
}

// NewNetwork creates an empty ring.
func NewNetwork(s *sim.Sim, cfg config.Net, cpu config.CPU) *Network {
	return &Network{sim: s, cfg: cfg, cpu: cpu, ring: s.NewResource("ring")}
}

// Sim returns the simulation the network runs on.
func (n *Network) Sim() *sim.Sim { return n.sim }

// Config returns the network cost parameters.
func (n *Network) Config() config.Net { return n.cfg }

// Stats returns a copy of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// Nodes returns all attached nodes in attachment order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Ring exposes the shared token-ring resource (for utilization reports).
func (n *Network) Ring() *sim.Resource { return n.ring }

// Node is one processor: a CPU, a network interface, and optionally a disk
// drive (§2: 8 of Gamma's 17 processors have disks).
type Node struct {
	ID  int
	net *Network
	// Part is the simulation shard the node's resources and processes are
	// homed on: its own shard on a partitioned simulation (one partition
	// per node), the default shard otherwise.
	Part *sim.Shard
	CPU  *sim.Resource
	NIC  *sim.Resource
	// Drive is nil on diskless processors.
	Drive *disk.Drive
	// SpoolNode is where this node's temporary files live: itself for
	// disk nodes, an assigned disk node for diskless processors (join
	// overflow resolution spools partitions to temporary files, §6).
	SpoolNode *Node

	failed bool
	ports  []*Port
}

// Fail marks the node crashed: every existing port is closed (queued and
// future messages are dropped with their window credits returned to the
// senders) and ports created later start closed. The caller is responsible
// for killing the node's processes and failing its drive; Fail only severs
// the node from the network. Idempotent.
func (nd *Node) Fail() {
	if nd.failed {
		return
	}
	nd.failed = true
	for _, pt := range nd.ports {
		pt.Close()
	}
}

// Failed reports whether the node has crashed.
func (nd *Node) Failed() bool { return nd.failed }

// Recover reattaches a failed node (the rejoin half of a transient outage):
// ports created from now on open normally. Ports closed by the failure stay
// closed — their receivers are gone — and the caller is responsible for
// restarting processes and repairing the drive, mirroring Fail. Idempotent.
func (nd *Node) Recover() { nd.failed = false }

// AddNode attaches a node; diskCfg is used only when withDisk is true. On a
// partitioned simulation every node gets its own shard (the default shard
// stays for machine-global objects like the ring, the scheduler, and the
// host), so the node's CPU, NIC, drive, ports, and operator processes all
// live in one partition. The ring network interacts across nodes at the
// same simulated instant, so a Gamma simulation must be partitioned with
// lookahead 0 — structurally sharded, serialized in merged global order.
func (n *Network) AddNode(withDisk bool, diskCfg config.Disk) *Node {
	id := len(n.nodes)
	part := n.sim.DefaultShard()
	if n.sim.Partitioned() {
		part = n.sim.AddShard()
	}
	nd := &Node{
		ID:   id,
		net:  n,
		Part: part,
		CPU:  part.NewResource(fmt.Sprintf("cpu%d", id)),
		NIC:  part.NewResource(fmt.Sprintf("nic%d", id)),
	}
	if withDisk {
		nd.Drive = disk.NewOn(part, fmt.Sprintf("disk%d", id), diskCfg)
		nd.SpoolNode = nd
	}
	n.nodes = append(n.nodes, nd)
	return nd
}

// Network returns the ring the node is attached to.
func (nd *Node) Network() *Network { return nd.net }

// UseCPU charges instr instructions to the node's CPU on behalf of p.
func (nd *Node) UseCPU(p *sim.Proc, instr int) {
	if instr > 0 {
		nd.CPU.Use(p, nd.net.cpu.Time(instr))
	}
}

// Port is a well-known mailbox on a node. Operator processes receive their
// input streams and control packets through ports.
type Port struct {
	node   *Node
	name   string
	queue  []Message
	recvq  *sim.WaitQ
	closed bool
}

// NewPort creates a named port on the node. A port created on a failed node
// starts closed.
func (nd *Node) NewPort(name string) *Port {
	pt := &Port{node: nd, name: name, recvq: nd.Part.NewWaitQ("port:" + name), closed: nd.failed}
	nd.ports = append(nd.ports, pt)
	return pt
}

// Close shuts the mailbox: queued messages are discarded and future
// deliveries are dropped, in both cases returning the senders' window
// credits so no producer blocks forever on a dead consumer. The receiver
// must not be parked on the port when it closes (operators close their own
// port on exit; crashed nodes' receivers are killed before their ports
// close). Idempotent.
func (pt *Port) Close() {
	if pt.closed {
		return
	}
	pt.closed = true
	for _, m := range pt.queue {
		if m.release != nil {
			m.release()
		}
	}
	pt.queue = nil
}

// Closed reports whether the port has been closed.
func (pt *Port) Closed() bool { return pt.closed }

// Node returns the port's home node.
func (pt *Port) Node() *Node { return pt.node }

// Name returns the port name.
func (pt *Port) Name() string { return pt.name }

// Pending returns the number of queued, undelivered messages.
func (pt *Port) Pending() int { return len(pt.queue) }

// deliver enqueues m and wakes one waiting receiver. Kernel context.
// Delivery to a closed port drops the message, immediately returning the
// sender's window credit.
func (pt *Port) deliver(m Message) {
	if pt.closed {
		if m.release != nil {
			m.release()
		}
		return
	}
	pt.queue = append(pt.queue, m)
	pt.recvq.WakeOne()
}

// Recv blocks p until a message is available and returns it. Receiving a
// remote data packet charges the protocol-processing CPU cost to p.
func (pt *Port) Recv(p *sim.Proc) Message {
	for len(pt.queue) == 0 {
		pt.recvq.Park(p)
	}
	m := pt.queue[0]
	pt.queue = pt.queue[1:]
	if m.From != nil && m.From != pt.node && m.Kind == Data {
		pt.node.UseCPU(p, pt.node.net.cfg.InstrPerPacket)
	}
	if m.release != nil {
		m.release()
		m.release = nil
	}
	return m
}

// RecvTimeout is Recv with a deadline: it blocks p until a message arrives
// or d elapses, reporting false on timeout. Used by a failover-armed
// scheduler to detect a dead operator by silence on its inbox.
func (pt *Port) RecvTimeout(p *sim.Proc, d sim.Dur) (Message, bool) {
	deadline := pt.node.net.sim.Now() + d
	for len(pt.queue) == 0 {
		if !pt.recvq.ParkTimeout(p, deadline-pt.node.net.sim.Now()) && len(pt.queue) == 0 {
			return Message{}, false
		}
	}
	return pt.Recv(p), true
}

// TryRecv returns a queued message without blocking, if one is available.
func (pt *Port) TryRecv(p *sim.Proc) (Message, bool) {
	if len(pt.queue) == 0 {
		return Message{}, false
	}
	return pt.Recv(p), true
}

// Conn is a sender's sliding-window connection to a destination port. Each
// (producer process, destination) pair uses its own Conn.
type Conn struct {
	from    *Node
	to      *Port
	credits int
	waitq   *sim.WaitQ
}

// Dial opens a connection from nd to the port.
func (nd *Node) Dial(to *Port) *Conn {
	w := nd.net.cfg.Window
	if w <= 0 {
		w = 1
	}
	return &Conn{from: nd, to: to, credits: w, waitq: nd.Part.NewWaitQ("win")}
}

// Local reports whether the connection short-circuits (same node).
func (c *Conn) Local() bool { return c.from == c.to.node }

// Send transmits a data packet of the given byte size carrying payload.
// Same-node sends short-circuit: a little CPU and immediate delivery.
// Remote sends consume a window credit (blocking when the window is full),
// the sender's protocol CPU, the sender's NIC, the ring, and the receiver's
// NIC; the credit returns when the receiver consumes the packet.
func (c *Conn) Send(p *sim.Proc, kind MsgKind, payload any, bytes int) {
	net := c.from.net
	if c.Local() {
		c.from.UseCPU(p, net.cfg.InstrPerLocalMsg)
		net.stats.LocalMsgs++
		if net.sim.Tracing() {
			net.sim.Emit(trace.Event{
				At: int64(net.sim.Now()), Kind: trace.KindLocalMsg,
				Class: kind.String(), Node: c.from.ID, Bytes: bytes,
			})
		}
		c.to.deliver(Message{From: c.from, Kind: kind, Payload: payload})
		return
	}
	for c.credits == 0 {
		c.waitq.Park(p)
	}
	c.credits--
	c.from.UseCPU(p, net.cfg.InstrPerPacket)
	c.from.NIC.Use(p, net.cfg.NICTime(bytes))
	net.stats.DataPackets++
	net.stats.RingBytes += int64(bytes)
	if net.sim.Tracing() {
		net.sim.Emit(trace.Event{
			At: int64(net.sim.Now()), Kind: trace.KindPacket,
			Class: kind.String(), From: c.from.ID, To: c.to.node.ID, Bytes: bytes,
		})
	}
	ringDone := net.ring.UseAsync(net.cfg.RingTime(bytes))
	conn := c
	release := func() {
		conn.credits++
		conn.waitq.WakeOne()
	}
	c.transmit(ringDone, kind, payload, bytes, release)
}

// transmit schedules the in-flight half of a remote send: ring transit,
// receiver NIC, and delivery. A packet the fault injector drops is resent
// after the protocol's retransmission timeout (charging the ring and both
// NICs again, asynchronously — the sender's process is not re-blocked, as
// the window already accounts for the unacknowledged packet).
func (c *Conn) transmit(ringDone sim.Time, kind MsgKind, payload any, bytes int, release func()) {
	net := c.from.net
	net.sim.At(ringDone, func() {
		if net.dropNext() {
			net.retransmits++
			net.sim.Emit(trace.Event{
				At: int64(net.sim.Now()), Kind: trace.KindRetransmit,
				From: c.from.ID, To: c.to.node.ID, Bytes: bytes,
			})
			retry := c.from.NIC.UseAsync(net.cfg.NICTime(bytes))
			if t := net.sim.Now() + retransmitTimeout; t > retry {
				retry = t
			}
			ringRetry := net.ring.UseAsync(net.cfg.RingTime(bytes))
			if ringRetry < retry {
				ringRetry = retry
			}
			c.transmit(ringRetry, kind, payload, bytes, release)
			return
		}
		nicDone := c.to.node.NIC.UseAsync(net.cfg.NICTime(bytes))
		net.sim.At(nicDone, func() {
			// The credit returns only when the receiving process
			// consumes the packet (Port.Recv), so a slow consumer
			// stalls its producers once the window fills.
			c.to.deliver(Message{From: c.from, Kind: kind, Payload: payload, release: release})
		})
	})
}

// TransferBulk charges p for moving bytes between two nodes outside the
// port/window machinery (spool-file traffic of diskless processors). It is
// a no-op between a node and itself.
func (n *Network) TransferBulk(p *sim.Proc, from, to *Node, bytes int) {
	if from == to || from == nil || to == nil {
		return
	}
	from.NIC.Use(p, n.cfg.NICTime(bytes))
	n.ring.Use(p, n.cfg.RingTime(bytes))
	to.NIC.Use(p, n.cfg.NICTime(bytes))
	n.stats.RingBytes += int64(bytes)
}

// SendCtl sends a small control message. Inter-node control messages cost
// the sender CtlMsg of CPU time (§6.2.3's 7 ms), which serializes a
// scheduler initiating operators across many nodes; same-node control
// messages short-circuit.
func SendCtl(p *sim.Proc, from *Node, to *Port, payload any) {
	net := from.net
	if from == to.node {
		from.UseCPU(p, net.cfg.InstrPerLocalMsg)
		net.stats.LocalMsgs++
		if net.sim.Tracing() {
			net.sim.Emit(trace.Event{
				At: int64(net.sim.Now()), Kind: trace.KindLocalMsg,
				Class: Control.String(), Node: from.ID,
			})
		}
		to.deliver(Message{From: from, Kind: Control, Payload: payload})
		return
	}
	from.CPU.Use(p, net.cfg.CtlMsg)
	net.stats.CtlMsgs++
	if net.sim.Tracing() {
		net.sim.Emit(trace.Event{
			At: int64(net.sim.Now()), Kind: trace.KindCtlMsg,
			From: from.ID, To: to.node.ID,
		})
	}
	to.deliver(Message{From: from, Kind: Control, Payload: payload})
}
