// Package nose models NOSE, the operating system Gamma is built on (§2):
// processors connected by a token ring, lightweight processes, ports, and a
// reliable sliding-window datagram service.
//
// The cost structure follows the paper's analysis:
//
//   - The 80 Mbit/s Proteon ring itself is "never a bottleneck"; the 4 Mbit/s
//     Unibus path from memory to the network interface is (§5.2.1). Each node
//     therefore has a NIC resource capped at Unibus bandwidth, shared by
//     inbound and outbound traffic, while the ring contributes only transit
//     latency (it is accounted, never contended).
//   - Messages between processes on the same processor are short-circuited by
//     the communications software (§2) and cost only a little CPU.
//   - The sliding-window protocol bounds the packets a sender may have
//     outstanding to one destination; a slow consumer therefore stalls its
//     producers, which is how a saturated NIC pushes back on a disk scan
//     (§5.2.1's explanation of the 10% selection speedup curve).
//
// Every remote delivery — data, end-of-stream, control, bulk transfer — is
// floored at Net.MinLatency after its send instant and crosses shards via
// Shard.Send, so on a partitioned simulation no node can affect another
// sooner than MinLatency ahead. That bound is exactly the conservative
// lookahead the parallel kernel windows run under: the Gamma model derives
// its lookahead from MinLatency and its shards then execute concurrently.
// Window credits return to the sender the same way (one MinLatency hop back),
// and all activity counters are per-node, mutated only from the owning
// node's shard.
//
// When Net.BatchPackets > 1 a single Send may carry several packets' worth
// of tuples (the batched exchange of Rödiger et al.): it consumes one window
// credit and one protocol-CPU charge per packet but crosses the simulation
// as one event, collapsing the per-packet event storm on fast networks.
package nose

import (
	"fmt"

	"gamma/internal/config"
	"gamma/internal/disk"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// MsgKind distinguishes the three message classes of §2.
type MsgKind int

const (
	// Data is a packet of tuples flowing through a split table.
	Data MsgKind = iota
	// EndOfStream closes one producer's output stream to a port.
	EndOfStream
	// Control is a scheduler/operator control message.
	Control
)

func (k MsgKind) String() string {
	switch k {
	case Data:
		return "data"
	case EndOfStream:
		return "eos"
	default:
		return "control"
	}
}

// Message is a datagram delivered to a Port.
type Message struct {
	From    *Node
	Kind    MsgKind
	Payload any
	// packets is how many wire packets the message occupied (batched
	// exchange coalesces several); 0 means 1. Drives the receiver's
	// protocol CPU charge and the number of window credits returned.
	packets int
	// release returns the sender's window credits; set on remote sends and
	// invoked when the receiver consumes the message.
	release func()
}

// Stats aggregates network activity.
type Stats struct {
	DataPackets int64 // packets that crossed the ring
	LocalMsgs   int64 // messages short-circuited on one node
	CtlMsgs     int64 // inter-node control messages
	RingBytes   int64
}

// Network is the token ring plus every node attached to it.
type Network struct {
	sim   *sim.Sim
	cfg   config.Net
	cpu   config.CPU
	nodes []*Node
	// Fault injection: lossNum/lossDen packets are dropped in transit and
	// recovered by the sliding-window protocol's timeout retransmission.
	// The drop counters themselves live per sender node.
	lossNum, lossDen int
}

// retransmitTimeout is the sliding-window protocol's retransmission timer.
const retransmitTimeout = 50 * sim.Millisecond

// InjectLoss makes every (den/num)-th data packet of each sender vanish in
// transit, deterministically, exercising the NOSE protocol's reliability
// machinery (§2: "reliable, datagram communication services using a multiple
// bit, sliding window protocol"). num 0 disables loss.
func (n *Network) InjectLoss(num, den int) {
	n.lossNum, n.lossDen = num, den
	for _, nd := range n.nodes {
		nd.lossCtr = 0
	}
}

// Retransmits reports how many packets the protocol had to resend, across
// all nodes.
func (n *Network) Retransmits() int64 {
	var total int64
	for _, nd := range n.nodes {
		total += nd.retransmits
	}
	return total
}

// NewNetwork creates an empty ring.
func NewNetwork(s *sim.Sim, cfg config.Net, cpu config.CPU) *Network {
	return &Network{sim: s, cfg: cfg, cpu: cpu}
}

// Sim returns the simulation the network runs on.
func (n *Network) Sim() *sim.Sim { return n.sim }

// Config returns the network cost parameters.
func (n *Network) Config() config.Net { return n.cfg }

// Stats sums the per-node activity counters.
func (n *Network) Stats() Stats {
	var s Stats
	for _, nd := range n.nodes {
		s.DataPackets += nd.stats.DataPackets
		s.LocalMsgs += nd.stats.LocalMsgs
		s.CtlMsgs += nd.stats.CtlMsgs
		s.RingBytes += nd.stats.RingBytes
	}
	return s
}

// Nodes returns all attached nodes in attachment order.
func (n *Network) Nodes() []*Node { return n.nodes }

// RingBusy sums the token-ring transit time charged across all nodes — the
// ring's cumulative busy time for utilization reports. The ring is modeled
// as pure latency (§5.2.1: "never a bottleneck"), so this is accounting,
// not a contended resource.
func (n *Network) RingBusy() sim.Dur {
	var busy sim.Dur
	for _, nd := range n.nodes {
		busy += nd.ringBusy
	}
	return busy
}

// Node is one processor: a CPU, a network interface, and optionally a disk
// drive (§2: 8 of Gamma's 17 processors have disks).
type Node struct {
	ID  int
	net *Network
	// Part is the simulation shard the node's resources and processes are
	// homed on: its own shard on a partitioned simulation (one partition
	// per disk node; diskless processors share their spool node's shard),
	// the default shard otherwise.
	Part *sim.Shard
	CPU  *sim.Resource
	NIC  *sim.Resource
	// Drive is nil on diskless processors.
	Drive *disk.Drive
	// SpoolNode is where this node's temporary files live: itself for
	// disk nodes, an assigned disk node for diskless processors (join
	// overflow resolution spools partitions to temporary files, §6).
	SpoolNode *Node

	// Activity counters, mutated only from this node's shard (the sender
	// owns every counter a send touches), so parallel windows never race.
	stats       Stats
	ringBusy    sim.Dur
	lossCtr     int
	retransmits int64

	failed bool
	ports  []*Port
}

// Fail marks the node crashed: every existing port is closed (queued and
// future messages are dropped with their window credits returned to the
// senders) and ports created later start closed. The caller is responsible
// for killing the node's processes and failing its drive; Fail only severs
// the node from the network. Only supported on serialized simulations
// (lookahead 0) — fault experiments run there. Idempotent.
func (nd *Node) Fail() {
	if nd.failed {
		return
	}
	nd.failed = true
	for _, pt := range nd.ports {
		pt.Close()
	}
}

// Failed reports whether the node has crashed.
func (nd *Node) Failed() bool { return nd.failed }

// Recover reattaches a failed node (the rejoin half of a transient outage):
// ports created from now on open normally. Ports closed by the failure stay
// closed — their receivers are gone — and the caller is responsible for
// restarting processes and repairing the drive, mirroring Fail. Idempotent.
func (nd *Node) Recover() { nd.failed = false }

// AddNode attaches a node; diskCfg is used only when withDisk is true. On a
// partitioned simulation every node gets its own shard (the default shard
// stays for machine-global objects), so the node's CPU, NIC, drive, ports,
// and operator processes all live in one partition. Remote deliveries are
// floored at Net.MinLatency, so the partition runs correctly under any
// kernel lookahead up to MinLatency — including truly parallel windows.
func (n *Network) AddNode(withDisk bool, diskCfg config.Disk) *Node {
	part := n.sim.DefaultShard()
	if n.sim.Partitioned() {
		part = n.sim.AddShard()
	}
	return n.addNode(part, withDisk, diskCfg)
}

// AddNodeOn attaches a diskless node homed on an existing node's shard and
// spooling to that node's drive. Colocating a diskless processor with its
// spool node keeps join-overflow spooling (file create/append/read on the
// spool drive) shard-local, which is what lets joins run inside parallel
// windows.
func (n *Network) AddNodeOn(spool *Node) *Node {
	nd := n.addNode(spool.Part, false, config.Disk{})
	nd.SpoolNode = spool
	return nd
}

func (n *Network) addNode(part *sim.Shard, withDisk bool, diskCfg config.Disk) *Node {
	id := len(n.nodes)
	nd := &Node{
		ID:   id,
		net:  n,
		Part: part,
		CPU:  part.NewResource(fmt.Sprintf("cpu%d", id)),
		NIC:  part.NewResource(fmt.Sprintf("nic%d", id)),
	}
	// Every remote effect a node initiates — data packets (Conn.arrival),
	// credit returns, control messages, retries — is floored at MinLatency
	// past its send instant, so the shard can declare that floor to the EOT
	// window scheduler even when the simulation's global lookahead is
	// smaller (a sub-floor -lookahead, or a fast-fabric generation).
	part.SetOutFloor(n.cfg.MinLatency)
	if withDisk {
		nd.Drive = disk.NewOn(part, fmt.Sprintf("disk%d", id), diskCfg)
		nd.SpoolNode = nd
	}
	n.nodes = append(n.nodes, nd)
	return nd
}

// Network returns the ring the node is attached to.
func (nd *Node) Network() *Network { return nd.net }

// UseCPU charges instr instructions to the node's CPU on behalf of p.
func (nd *Node) UseCPU(p *sim.Proc, instr int) {
	if instr > 0 {
		nd.CPU.Use(p, nd.net.cpu.Time(instr))
	}
}

// dropNext deterministically decides whether this node's next data packet
// is lost in transit.
func (nd *Node) dropNext() bool {
	net := nd.net
	if net.lossNum <= 0 || net.lossDen <= 0 {
		return false
	}
	nd.lossCtr++
	return nd.lossCtr%((net.lossDen+net.lossNum-1)/net.lossNum) == 0
}

// Port is a well-known mailbox on a node. Operator processes receive their
// input streams and control packets through ports.
type Port struct {
	node   *Node
	name   string
	queue  []Message
	recvq  *sim.WaitQ
	closed bool
}

// NewPort creates a named port on the node. A port created on a failed node
// starts closed. The node's port registry (used only by Fail) is maintained
// on serialized simulations; under positive lookahead ports may be created
// cross-shard mid-window, and Fail is not supported there.
func (nd *Node) NewPort(name string) *Port {
	pt := &Port{node: nd, name: name, recvq: nd.Part.NewWaitQ("port:" + name), closed: nd.failed}
	if nd.net.sim.Lookahead() == 0 {
		nd.ports = append(nd.ports, pt)
	}
	return pt
}

// Close shuts the mailbox: queued messages are discarded and future
// deliveries are dropped, in both cases returning the senders' window
// credits so no producer blocks forever on a dead consumer. The receiver
// must not be parked on the port when it closes (operators close their own
// port on exit; crashed nodes' receivers are killed before their ports
// close). Idempotent.
func (pt *Port) Close() {
	if pt.closed {
		return
	}
	pt.closed = true
	for _, m := range pt.queue {
		if m.release != nil {
			m.release()
		}
	}
	pt.queue = nil
}

// Closed reports whether the port has been closed.
func (pt *Port) Closed() bool { return pt.closed }

// Node returns the port's home node.
func (pt *Port) Node() *Node { return pt.node }

// Name returns the port name.
func (pt *Port) Name() string { return pt.name }

// Pending returns the number of queued, undelivered messages.
func (pt *Port) Pending() int { return len(pt.queue) }

// deliver enqueues m and wakes one waiting receiver. Kernel context, on the
// port's shard. Delivery to a closed port drops the message, immediately
// returning the sender's window credits.
func (pt *Port) deliver(m Message) {
	if pt.closed {
		if m.release != nil {
			m.release()
		}
		return
	}
	pt.queue = append(pt.queue, m)
	pt.recvq.WakeOne()
}

// Recv blocks p until a message is available and returns it. Receiving a
// remote data message charges the protocol-processing CPU cost to p, once
// per wire packet the message occupied.
func (pt *Port) Recv(p *sim.Proc) Message {
	for len(pt.queue) == 0 {
		pt.recvq.Park(p)
	}
	m := pt.queue[0]
	pt.queue = pt.queue[1:]
	if m.From != nil && m.From != pt.node && m.Kind == Data {
		np := m.packets
		if np < 1 {
			np = 1
		}
		pt.node.UseCPU(p, pt.node.net.cfg.InstrPerPacket*np)
	}
	if m.release != nil {
		m.release()
		m.release = nil
	}
	return m
}

// RecvTimeout is Recv with a deadline: it blocks p until a message arrives
// or d elapses, reporting false on timeout. Used by a failover-armed
// scheduler to detect a dead operator by silence on its inbox.
func (pt *Port) RecvTimeout(p *sim.Proc, d sim.Dur) (Message, bool) {
	sh := pt.node.Part
	deadline := sh.Now() + d
	for len(pt.queue) == 0 {
		if !pt.recvq.ParkTimeout(p, deadline-sh.Now()) && len(pt.queue) == 0 {
			return Message{}, false
		}
	}
	return pt.Recv(p), true
}

// TryRecv returns a queued message without blocking, if one is available.
func (pt *Port) TryRecv(p *sim.Proc) (Message, bool) {
	if len(pt.queue) == 0 {
		return Message{}, false
	}
	return pt.Recv(p), true
}

// Conn is a sender's sliding-window connection to a destination port. Each
// (producer process, destination) pair uses its own Conn.
type Conn struct {
	from    *Node
	to      *Port
	credits int
	waitq   *sim.WaitQ
	// lastArr is the latest arrival scheduled on this connection. The
	// window protocol delivers in order, so a later message never arrives
	// before an earlier one — without this floor a small end-of-stream
	// message could overtake a deep batched data message whose ring
	// transit dominates its arrival time.
	lastArr sim.Time
}

// Dial opens a connection from nd to the port.
func (nd *Node) Dial(to *Port) *Conn {
	w := nd.net.cfg.Window
	if w <= 0 {
		w = 1
	}
	return &Conn{from: nd, to: to, credits: w, waitq: nd.Part.NewWaitQ("win")}
}

// Local reports whether the connection short-circuits (same node).
func (c *Conn) Local() bool { return c.from == c.to.node }

// Send transmits a data message of the given byte size carrying payload.
// Same-node sends short-circuit: a little CPU and immediate delivery.
// Remote sends occupy ceil(bytes/PacketBytes) wire packets: they consume
// that many window credits (blocking while the window lacks them), the
// sender's protocol CPU and NIC, and the ring's transit latency; the
// arrival is floored at MinLatency after the send instant, the receiver's
// NIC is charged on arrival, and the credits return one MinLatency hop
// after the receiver consumes the message.
func (c *Conn) Send(p *sim.Proc, kind MsgKind, payload any, bytes int) {
	net := c.from.net
	if c.Local() {
		c.from.UseCPU(p, net.cfg.InstrPerLocalMsg)
		c.from.stats.LocalMsgs++
		if net.sim.Tracing() {
			p.Emit(trace.Event{
				At: int64(p.Now()), Kind: trace.KindLocalMsg,
				Class: kind.String(), Node: c.from.ID, Bytes: bytes,
			})
		}
		c.to.deliver(Message{From: c.from, Kind: kind, Payload: payload})
		return
	}
	npackets := 1
	if pb := net.cfg.PacketBytes; pb > 0 && bytes > pb {
		npackets = (bytes + pb - 1) / pb
	}
	window := net.cfg.Window
	if window <= 0 {
		window = 1
	}
	if npackets > window {
		panic(fmt.Sprintf("nose: %d-packet message exceeds window %d (batch too deep)", npackets, window))
	}
	for c.credits < npackets {
		c.waitq.Park(p)
	}
	c.credits -= npackets
	c.from.UseCPU(p, net.cfg.InstrPerPacket*npackets)
	t0 := p.Now()
	nicDone := c.from.NIC.UseAsync(net.cfg.NICTime(bytes))
	c.from.stats.DataPackets += int64(npackets)
	c.from.stats.RingBytes += int64(bytes)
	c.from.ringBusy += net.cfg.RingTime(bytes)
	if net.sim.Tracing() {
		e := trace.Event{
			At: int64(t0), Kind: trace.KindPacket,
			Class: kind.String(), From: c.from.ID, To: c.to.node.ID, Bytes: bytes,
		}
		if npackets > 1 {
			e.N = npackets
		}
		p.Emit(e)
	}
	arr := c.arrival(t0, nicDone, bytes)
	release := c.releaseFn(npackets)
	if c.from.dropNext() {
		c.scheduleRetry(arr+retransmitTimeout, kind, payload, bytes, npackets, release)
	} else {
		c.deliverAt(arr, kind, payload, bytes, npackets, release)
	}
	// The sender's process is occupied while its Unibus pushes the message
	// out, exactly as the old blocking NIC charge behaved.
	p.WaitUntil(nicDone)
}

// arrival computes when a message sent at t0 whose sender-NIC copy finishes
// at nicDone reaches the destination node: ring transit after the NIC,
// floored at MinLatency past the send instant, and never before any
// arrival already scheduled on this connection (the channel is FIFO).
func (c *Conn) arrival(t0 sim.Time, nicDone sim.Time, bytes int) sim.Time {
	net := c.from.net
	arr := nicDone + net.cfg.RingTime(bytes)
	if min := t0 + net.cfg.MinLatency; arr < min {
		arr = min
	}
	if arr < c.lastArr {
		arr = c.lastArr
	}
	c.lastArr = arr
	return arr
}

// releaseFn builds the consume callback for a remote message: it runs on
// the receiver's shard and routes the window-credit ACK back to the sender
// one MinLatency hop later.
func (c *Conn) releaseFn(npackets int) func() {
	return func() {
		recv := c.to.node.Part
		recv.Send(c.from.Part, recv.Now()+c.from.net.cfg.MinLatency, func() {
			c.credits += npackets
			c.waitq.WakeOne()
		})
	}
}

// deliverAt schedules the arrival on the receiver's shard: the message
// crosses the receiving Unibus, then lands in the port.
func (c *Conn) deliverAt(arr sim.Time, kind MsgKind, payload any, bytes, npackets int, release func()) {
	net := c.from.net
	to := c.to
	from := c.from
	c.from.Part.Send(to.node.Part, arr, func() {
		nicDone := to.node.NIC.UseAsync(net.cfg.NICTime(bytes))
		to.node.Part.At(nicDone, func() {
			// The credits return only when the receiving process
			// consumes the message (Port.Recv), so a slow consumer
			// stalls its producers once the window fills.
			to.deliver(Message{From: from, Kind: kind, Payload: payload, packets: npackets, release: release})
		})
	})
}

// scheduleRetry resends a dropped message after the protocol's timeout: the
// sender's NIC and the ring are charged again, the resend may itself be
// dropped, and the sender's process is not re-blocked (the window already
// accounts for the unacknowledged packets). Runs on the sender's shard.
func (c *Conn) scheduleRetry(at sim.Time, kind MsgKind, payload any, bytes, npackets int, release func()) {
	net := c.from.net
	c.from.Part.At(at, func() {
		c.from.retransmits++
		if net.sim.Tracing() {
			c.from.Part.Emit(trace.Event{
				At: int64(c.from.Part.Now()), Kind: trace.KindRetransmit,
				From: c.from.ID, To: c.to.node.ID, Bytes: bytes,
			})
		}
		t0 := c.from.Part.Now()
		nicDone := c.from.NIC.UseAsync(net.cfg.NICTime(bytes))
		c.from.stats.RingBytes += int64(bytes)
		c.from.ringBusy += net.cfg.RingTime(bytes)
		arr := c.arrival(t0, nicDone, bytes)
		if c.from.dropNext() {
			c.scheduleRetry(arr+retransmitTimeout, kind, payload, bytes, npackets, release)
			return
		}
		c.deliverAt(arr, kind, payload, bytes, npackets, release)
	})
}

// TransferBulk charges p for moving bytes between two nodes outside the
// port/window machinery (spool-file traffic of diskless processors). It is
// a no-op between a node and itself. The transfer occupies both NICs in
// sequence with ring transit (floored at MinLatency) between them; inside
// parallel windows callers must be shard-colocated with both endpoints
// (diskless nodes are homed on their spool node's shard for this reason).
func (n *Network) TransferBulk(p *sim.Proc, from, to *Node, bytes int) {
	if from == to || from == nil || to == nil {
		return
	}
	t0 := p.Now()
	from.NIC.Use(p, n.cfg.NICTime(bytes))
	from.stats.RingBytes += int64(bytes)
	from.ringBusy += n.cfg.RingTime(bytes)
	arr := p.Now() + n.cfg.RingTime(bytes)
	if min := t0 + n.cfg.MinLatency; arr < min {
		arr = min
	}
	p.WaitUntil(arr)
	to.NIC.Use(p, n.cfg.NICTime(bytes))
}

// SendCtl sends a small control message. An inter-node control message
// costs the sender CtlMsg of CPU time (§6.2.3's 7 ms) — which is what
// serializes a scheduler initiating operators across many nodes, since each
// initiation occupies the scheduler's CPU before the next can start — and
// then crosses the wire with the MinLatency floor like any other remote
// send. The trace event carries the CtlMsg cost in Dur so Diagnose can
// attribute control-plane time (the "ctl" pseudo-class). Same-node control
// messages short-circuit.
func SendCtl(p *sim.Proc, from *Node, to *Port, payload any) {
	net := from.net
	if from == to.node {
		from.UseCPU(p, net.cfg.InstrPerLocalMsg)
		from.stats.LocalMsgs++
		if net.sim.Tracing() {
			p.Emit(trace.Event{
				At: int64(p.Now()), Kind: trace.KindLocalMsg,
				Class: Control.String(), Node: from.ID,
			})
		}
		to.deliver(Message{From: from, Kind: Control, Payload: payload})
		return
	}
	from.CPU.Use(p, net.cfg.CtlMsg)
	from.stats.CtlMsgs++
	if net.sim.Tracing() {
		p.Emit(trace.Event{
			At: int64(p.Now()), Kind: trace.KindCtlMsg,
			From: from.ID, To: to.node.ID, Dur: int64(net.cfg.CtlMsg),
		})
	}
	target := to
	src := from
	from.Part.Send(to.node.Part, p.Now()+net.cfg.MinLatency, func() {
		target.deliver(Message{From: src, Kind: Control, Payload: payload})
	})
}
