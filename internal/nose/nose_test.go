package nose

import (
	"testing"

	"gamma/internal/config"
	"gamma/internal/sim"
)

func testNet(t *testing.T, nodes int) (*sim.Sim, *Network) {
	t.Helper()
	s := sim.New()
	p := config.Default()
	n := NewNetwork(s, p.Net, p.CPU)
	for i := 0; i < nodes; i++ {
		n.AddNode(false, p.Disk)
	}
	return s, n
}

func TestLocalSendShortCircuits(t *testing.T) {
	s, n := testNet(t, 1)
	nd := n.Nodes()[0]
	port := nd.NewPort("p")
	var got any
	s.Spawn("recv", func(p *sim.Proc) {
		m := port.Recv(p)
		got = m.Payload
	})
	s.Spawn("send", func(p *sim.Proc) {
		c := nd.Dial(port)
		if !c.Local() {
			t.Error("expected local connection")
		}
		c.Send(p, Data, "hello", 2048)
	})
	s.Run()
	if got != "hello" {
		t.Errorf("payload = %v", got)
	}
	st := n.Stats()
	if st.LocalMsgs != 1 || st.DataPackets != 0 {
		t.Errorf("stats = %+v, want short-circuit only", st)
	}
}

func TestRemoteSendCrossesRingAndNICs(t *testing.T) {
	s, n := testNet(t, 2)
	a, b := n.Nodes()[0], n.Nodes()[1]
	port := b.NewPort("p")
	var delivered sim.Time
	s.Spawn("recv", func(p *sim.Proc) {
		port.Recv(p)
		delivered = p.Now()
	})
	s.Spawn("send", func(p *sim.Proc) {
		a.Dial(port).Send(p, Data, nil, 2048)
	})
	s.Run()
	// Sender CPU (protocol) + sender NIC (2 KB Unibus = 4096us) + ring +
	// receiver NIC must all have elapsed.
	cfg := n.Config()
	minT := cfg.NICTime(2048)*2 + cfg.RingTime(2048)
	if delivered < minT {
		t.Errorf("delivered at %v, want >= %v", delivered, minT)
	}
	if st := n.Stats(); st.DataPackets != 1 {
		t.Errorf("stats = %+v, want 1 data packet", st)
	}
}

func TestWindowBackpressureStallsSender(t *testing.T) {
	s, n := testNet(t, 2)
	a, b := n.Nodes()[0], n.Nodes()[1]
	port := b.NewPort("p")
	window := n.Config().Window

	const total = 20
	var lastSendDone sim.Time
	consumeEvery := sim.Dur(100 * sim.Millisecond)

	s.Spawn("slow-recv", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			port.Recv(p)
			p.Sleep(consumeEvery)
		}
	})
	s.Spawn("fast-send", func(p *sim.Proc) {
		c := a.Dial(port)
		for i := 0; i < total; i++ {
			c.Send(p, Data, i, 2048)
		}
		lastSendDone = p.Now()
	})
	s.Run()
	// With a window of `window`, the sender can run at most `window`
	// packets ahead of the consumer, so the last send cannot start before
	// the consumer has consumed total-window-1 packets (the consumer
	// receives packet k at roughly k*consumeEvery).
	minT := sim.Dur(total-window-1) * consumeEvery
	if lastSendDone < minT {
		t.Errorf("sender finished at %v; window failed to throttle (want >= %v)", lastSendDone, minT)
	}
}

func TestManySendersFIFOIntoOnePort(t *testing.T) {
	s, n := testNet(t, 4)
	dst := n.Nodes()[3]
	port := dst.NewPort("sink")
	var got []int
	s.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			m := port.Recv(p)
			got = append(got, m.Payload.(int))
		}
	})
	for i := 0; i < 3; i++ {
		src := n.Nodes()[i]
		val := i
		s.Spawn("send", func(p *sim.Proc) {
			c := src.Dial(port)
			c.Send(p, Data, val, 2048)
			c.Send(p, Data, val+10, 2048)
		})
	}
	s.Run()
	if len(got) != 6 {
		t.Fatalf("received %d messages, want 6", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		seen[v] = true
	}
	for _, want := range []int{0, 1, 2, 10, 11, 12} {
		if !seen[want] {
			t.Errorf("missing message %d", want)
		}
	}
}

func TestCtlMsgCostsSenderSevenMS(t *testing.T) {
	s, n := testNet(t, 2)
	a, b := n.Nodes()[0], n.Nodes()[1]
	port := b.NewPort("ctl")
	var sendDone sim.Time
	s.Spawn("recv", func(p *sim.Proc) { port.Recv(p) })
	s.Spawn("sched", func(p *sim.Proc) {
		SendCtl(p, a, port, "initiate")
		sendDone = p.Now()
	})
	s.Run()
	if sendDone != n.Config().CtlMsg {
		t.Errorf("control send took %v, want %v", sendDone, n.Config().CtlMsg)
	}
	if st := n.Stats(); st.CtlMsgs != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCtlMsgSerializesAtScheduler(t *testing.T) {
	s, n := testNet(t, 9)
	sched := n.Nodes()[0]
	var done sim.Time
	ports := make([]*Port, 8)
	for i := 0; i < 8; i++ {
		ports[i] = n.Nodes()[i+1].NewPort("op")
		pt := ports[i]
		s.Spawn("op", func(p *sim.Proc) { pt.Recv(p) })
	}
	s.Spawn("sched", func(p *sim.Proc) {
		for _, pt := range ports {
			SendCtl(p, sched, pt, "go")
		}
		done = p.Now()
	})
	s.Run()
	if want := 8 * n.Config().CtlMsg; done != want {
		t.Errorf("scheduling 8 nodes took %v, want %v", done, want)
	}
}

func TestTryRecv(t *testing.T) {
	s, n := testNet(t, 1)
	nd := n.Nodes()[0]
	port := nd.NewPort("p")
	s.Spawn("p", func(p *sim.Proc) {
		if _, ok := port.TryRecv(p); ok {
			t.Error("TryRecv on empty port returned a message")
		}
		nd.Dial(port).Send(p, Data, 7, 64)
		m, ok := port.TryRecv(p)
		if !ok || m.Payload.(int) != 7 {
			t.Errorf("TryRecv = %v %v", m, ok)
		}
	})
	s.Run()
}

func TestNodeSpoolAssignment(t *testing.T) {
	s := sim.New()
	p := config.Default()
	n := NewNetwork(s, p.Net, p.CPU)
	withDisk := n.AddNode(true, p.Disk)
	diskless := n.AddNode(false, p.Disk)
	if withDisk.Drive == nil || withDisk.SpoolNode != withDisk {
		t.Error("disk node should spool to itself")
	}
	if diskless.Drive != nil || diskless.SpoolNode != nil {
		t.Error("diskless node should start with no drive and no spool target")
	}
}
