package rel

import (
	"testing"
	"testing/quick"
)

func TestPredMatch(t *testing.T) {
	var tp Tuple
	tp.Set(Unique1, 50)
	cases := []struct {
		p    Pred
		want bool
	}{
		{True(), true},
		{False(), false},
		{Eq(Unique1, 50), true},
		{Eq(Unique1, 51), false},
		{Between(Unique1, 0, 49), false},
		{Between(Unique1, 0, 50), true},
		{Between(Unique1, 50, 100), true},
		{Between(Unique1, 51, 100), false},
	}
	for _, c := range cases {
		if got := c.p.Match(tp); got != c.want {
			t.Errorf("%v.Match(unique1=50) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSelectivity(t *testing.T) {
	cases := []struct {
		p    Pred
		n    int
		want float64
	}{
		{Between(Unique2, 0, 99), 10000, 0.01},
		{Between(Unique2, 0, 999), 10000, 0.1},
		{Eq(Unique2, 5), 10000, 0.0001},
		{True(), 10000, 1.0},
		{False(), 10000, 0},
		{Between(Unique2, -100, 99), 10000, 0.01}, // clamped below
		{Between(Unique2, 9900, 20000), 10000, 0.01},
		{True(), 0, 0},
	}
	for _, c := range cases {
		if got := c.p.Selectivity(c.n); got != c.want {
			t.Errorf("%v.Selectivity(%d) = %v, want %v", c.p, c.n, got, c.want)
		}
	}
}

func TestAttrByName(t *testing.T) {
	for a := Attr(0); a < NAttrs; a++ {
		got, ok := AttrByName(a.String())
		if !ok || got != a {
			t.Errorf("AttrByName(%q) = %v %v", a.String(), got, ok)
		}
	}
	if _, ok := AttrByName("nonsense"); ok {
		t.Error("AttrByName accepted a bogus name")
	}
}

func TestPredStrings(t *testing.T) {
	if True().String() != "true" {
		t.Errorf("True() = %q", True().String())
	}
	if False().String() != "false" {
		t.Errorf("False() = %q", False().String())
	}
	if s := Eq(Ten, 3).String(); s != "ten = 3" {
		t.Errorf("Eq = %q", s)
	}
}

// Property: Match agrees with Selectivity over uniform attribute values —
// the fraction of [0,n) matching a clamped range equals its selectivity.
func TestSelectivityCountsMatches(t *testing.T) {
	f := func(lo, hi int16) bool {
		const n = 1000
		p := Between(Unique1, int32(lo), int32(hi))
		count := 0
		for i := 0; i < n; i++ {
			var tp Tuple
			tp.Set(Unique1, int32(i))
			if p.Match(tp) {
				count++
			}
		}
		return float64(count)/n == p.Selectivity(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Hash64 distributes uniform keys evenly across buckets.
func TestHashDistribution(t *testing.T) {
	const n, buckets = 100000, 8
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[Hash64(int32(i), 1)%buckets]++
	}
	for b, c := range counts {
		if c < n/buckets*9/10 || c > n/buckets*11/10 {
			t.Errorf("bucket %d has %d keys, want ~%d", b, c, n/buckets)
		}
	}
}

// Property: different seeds give (nearly) independent hash routings — the
// basis of the overflow hash-function switch.
func TestHashSeedsIndependent(t *testing.T) {
	same := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if Hash64(int32(i), 1)%8 == Hash64(int32(i), 2)%8 {
			same++
		}
	}
	// Expect ~1/8 agreement.
	if same < n/16 || same > n/4 {
		t.Errorf("seeds agree on %d/%d routings; want ~%d", same, n, n/8)
	}
}
