// Package rel defines the relational model shared by the storage layer, the
// Wisconsin benchmark generator, and both machine simulators: fixed-schema
// tuples, attributes, predicates, and projection.
//
// The Wisconsin benchmark schema (§4 of the paper) has thirteen 4-byte
// integer attributes and three 52-byte string attributes. The integers are
// materialized; the strings are pure padding in every benchmark query, so
// they are accounted (every tuple occupies its full 208 logical bytes in
// pages and packets) but not stored. See DESIGN.md §1.
package rel

import "fmt"

// Attr identifies one of the thirteen integer attributes.
type Attr int

// The Wisconsin benchmark integer attributes, in schema order.
const (
	Unique1        Attr = iota // candidate key; partitioning attribute
	Unique2                    // candidate key, uncorrelated with Unique1
	Two                        // Unique1 mod 2
	Four                       // Unique1 mod 4
	Ten                        // Unique1 mod 10
	Twenty                     // Unique1 mod 20
	OnePercent                 // Unique1 mod 100
	TenPercent                 // Unique1 mod 10 (percentile form)
	TwentyPercent              // Unique1 mod 5
	FiftyPercent               // Unique1 mod 2
	Unique3                    // copy of Unique1
	EvenOnePercent             // 2 * OnePercent
	OddOnePercent              // 2 * OnePercent + 1
	NAttrs                     // number of integer attributes
)

var attrNames = [NAttrs]string{
	"unique1", "unique2", "two", "four", "ten", "twenty",
	"onePercent", "tenPercent", "twentyPercent", "fiftyPercent",
	"unique3", "evenOnePercent", "oddOnePercent",
}

func (a Attr) String() string {
	if a >= 0 && a < NAttrs {
		return attrNames[a]
	}
	return fmt.Sprintf("attr(%d)", int(a))
}

// AttrByName resolves an attribute name (as used by the QUEL front end).
func AttrByName(name string) (Attr, bool) {
	for i, n := range attrNames {
		if n == name {
			return Attr(i), true
		}
	}
	return 0, false
}

// Tuple is one Wisconsin benchmark record. Its logical on-disk and on-wire
// size is 208 bytes (config.Params.TupleBytes); only the integer attributes
// carry information.
type Tuple struct {
	A [NAttrs]int32
}

// Get returns the value of attribute a.
func (t Tuple) Get(a Attr) int32 { return t.A[a] }

// Set assigns attribute a.
func (t *Tuple) Set(a Attr, v int32) { t.A[a] = v }

// Pred is a compiled range predicate: Lo <= t.Get(Attr) <= Hi.
// The zero Attr with Lo > Hi never matches; use True for a tautology.
type Pred struct {
	Attr   Attr
	Lo, Hi int32
}

// True is a predicate every tuple satisfies.
func True() Pred { return Pred{Attr: Unique1, Lo: -1 << 31, Hi: 1<<31 - 1} }

// False is a predicate no tuple satisfies.
func False() Pred { return Pred{Attr: Unique1, Lo: 1, Hi: 0} }

// Eq matches tuples whose attribute a equals v.
func Eq(a Attr, v int32) Pred { return Pred{Attr: a, Lo: v, Hi: v} }

// Between matches tuples with lo <= a <= hi.
func Between(a Attr, lo, hi int32) Pred { return Pred{Attr: a, Lo: lo, Hi: hi} }

// Match reports whether t satisfies the predicate.
func (p Pred) Match(t Tuple) bool {
	v := t.A[p.Attr]
	return v >= p.Lo && v <= p.Hi
}

// IsTrue reports whether the predicate accepts every tuple.
func (p Pred) IsTrue() bool { return p.Lo == -1<<31 && p.Hi == 1<<31-1 }

// Selectivity estimates the fraction of a relation of cardinality n that the
// predicate selects, assuming the attribute is uniform on [0, n) — true for
// unique1/unique2 by construction. Used by the access-path heuristic.
func (p Pred) Selectivity(n int) float64 {
	if n <= 0 {
		return 0
	}
	lo, hi := int64(p.Lo), int64(p.Hi)
	if lo < 0 {
		lo = 0
	}
	if hi >= int64(n) {
		hi = int64(n) - 1
	}
	if hi < lo {
		return 0
	}
	return float64(hi-lo+1) / float64(n)
}

func (p Pred) String() string {
	switch {
	case p.IsTrue():
		return "true"
	case p.Lo > p.Hi:
		return "false"
	case p.Lo == p.Hi:
		return fmt.Sprintf("%s = %d", p.Attr, p.Lo)
	default:
		return fmt.Sprintf("%d <= %s <= %d", p.Lo, p.Attr, p.Hi)
	}
}

// JoinKey is the attribute pair a join matches on.
type JoinKey struct {
	Left, Right Attr
}

// Hash64 mixes a 32-bit attribute value with a seed; it is the hash function
// used by split tables, hash partitioning, and join tables. Gamma uses the
// same function when loading relations and when joining (§6.2.1), which is
// what makes Local joins on the partitioning attribute short-circuit; the
// seed changes after a hash-table overflow (§6.2.2).
func Hash64(v int32, seed uint64) uint64 {
	x := uint64(uint32(v)) + seed*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
