package rel

// RadixPermutation returns the permutation that orders keys ascending,
// stable among equal keys: applying perm (out[i] = in[perm[i]]) yields the
// stably-sorted sequence. LSD radix over four 8-bit digits — O(n) with no
// comparisons, which beats comparison sorts by a wide margin when the
// elements being permuted are fat (52-byte tuples) and only a 4-byte key
// decides the order.
func RadixPermutation(keys []int32) []int32 {
	n := len(keys)
	ka := make([]uint32, n)
	ia := make([]int32, n)
	for i, k := range keys {
		// Flip the sign bit so signed order matches unsigned digit order.
		ka[i] = uint32(k) ^ 0x80000000
		ia[i] = int32(i)
	}
	kb := make([]uint32, n)
	ib := make([]int32, n)
	var count [256]int
	for shift := uint(0); shift < 32; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range ka {
			count[(k>>shift)&0xff]++
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for i, k := range ka {
			b := (k >> shift) & 0xff
			kb[count[b]] = k
			ib[count[b]] = ia[i]
			count[b]++
		}
		ka, kb = kb, ka
		ia, ib = ib, ia
	}
	// Four swaps: the final permutation sits in the original ia.
	return ia
}

// SortByAttr sorts tuples by attribute k, ascending and stable among equal
// keys. The key column is extracted once, a radix permutation computed, and
// the tuples gathered in a single pass — far cheaper than a comparison sort
// that swaps 52-byte structs O(n log n) times.
func SortByAttr(tuples []Tuple, k Attr) {
	n := len(tuples)
	if n < 2 {
		return
	}
	keys := make([]int32, n)
	for i := range tuples {
		keys[i] = tuples[i].Get(k)
	}
	perm := RadixPermutation(keys)
	out := make([]Tuple, n)
	for i, j := range perm {
		out[i] = tuples[j]
	}
	copy(tuples, out)
}
