package fault

// Seeded fault campaigns: reproducible sequences of crash / bad-drive /
// node-outage injections with Poisson-spaced arrival times drawn from an
// MTTF model. A campaign is a pure function of its spec — the same seed
// always yields the same injections, each of which round-trips through
// ParseInjection/FormatInjection — so an availability experiment (and its
// CI determinism check) can reference a campaign by seed alone.

import (
	"math"

	"gamma/internal/sim"
)

// CampaignSpec parameterizes one generated fault campaign.
type CampaignSpec struct {
	// Seed derives the whole sequence; same seed, same campaign.
	Seed uint64
	// Sites is the number of disk sites faults may target (victims are
	// drawn uniformly from [0, Sites)).
	Sites int
	// MTTF is the mean time between faults (the Poisson process's mean
	// inter-arrival gap, for the cluster as a whole).
	MTTF sim.Dur
	// Start is when the first gap begins (faults land after Start, leaving
	// a warm-up window for the workload to reach steady state).
	Start sim.Time
	// Faults is how many injections to generate.
	Faults int
	// MeanOutage is the mean dwell time of a NodeOutage before the node
	// rejoins (exponentially distributed).
	MeanOutage sim.Dur
	// CrashW, DriveW, and OutageW weight the fault-mode mix. All zero
	// selects the default 1:1:3 — outage-heavy, so a long campaign keeps
	// returning capacity to the cluster instead of grinding it to nothing.
	CrashW, DriveW, OutageW int
}

// campaignRNG wraps splitmix64 (the repo's deterministic generator; workload
// terminals use the same one).
type campaignRNG struct{ state uint64 }

func (r *campaignRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit returns a uniform draw in (0, 1] — never zero, so ln(u) is finite.
func (r *campaignRNG) unit() float64 {
	return (float64(r.next()>>11) + 1) / float64(1<<53)
}

// exp returns an exponential draw with the given mean, floored at one
// microsecond (a zero-length gap or outage would not be an event at all).
func (r *campaignRNG) exp(mean sim.Dur) sim.Dur {
	d := sim.Dur(math.Round(-float64(mean) * math.Log(r.unit())))
	if d < 1 {
		d = 1
	}
	return d
}

// Campaign generates the spec's injection sequence in firing order. Times
// are clamped to the spec grammar's bound, so every generated injection
// survives FormatInjection → ParseInjection unchanged.
func Campaign(spec CampaignSpec) []Injection {
	if spec.Sites <= 0 || spec.Faults <= 0 {
		return nil
	}
	mttf := spec.MTTF
	if mttf <= 0 {
		mttf = 10 * sim.Second
	}
	meanOut := spec.MeanOutage
	if meanOut <= 0 {
		meanOut = 5 * sim.Second
	}
	cw, dw, ow := spec.CrashW, spec.DriveW, spec.OutageW
	if cw <= 0 && dw <= 0 && ow <= 0 {
		cw, dw, ow = 1, 1, 3
	}
	total := uint64(cw + dw + ow)
	rng := &campaignRNG{state: spec.Seed}
	maxAt := sim.Time(maxSpecSeconds * float64(sim.Second))
	out := make([]Injection, 0, spec.Faults)
	at := spec.Start
	for len(out) < spec.Faults {
		at += sim.Time(rng.exp(mttf))
		if at > maxAt {
			at = maxAt
		}
		site := int(rng.next() % uint64(spec.Sites))
		pick := int64(rng.next() % total)
		switch {
		case pick < int64(cw):
			out = append(out, Crash(at, site))
		case pick < int64(cw+dw):
			out = append(out, BadDrive(at, site))
		default:
			d := rng.exp(meanOut)
			if sim.Dur(maxAt-at) < d {
				d = sim.Dur(maxAt - at)
				if d < 1 {
					d = 1
				}
			}
			out = append(out, Outage(at, site, d))
		}
	}
	return out
}
