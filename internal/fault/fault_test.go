package fault_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/fault"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// setup is one mirrored test machine with the two physical versions of the
// Wisconsin relation (heap and indexed), mirroring bench.newGamma.
type setup struct {
	m    *core.Machine
	heap *core.Relation
	idx  *core.Relation
	n    int
}

func newSetup(nDisk, nDiskless, n int) *setup {
	s := sim.New()
	prm := config.Default()
	m := core.NewMachine(s, &prm, nDisk, nDiskless)
	m.EnableMirroring()
	ts := wisconsin.Generate(n, 1)
	u1 := rel.Unique1
	st := &setup{m: m, n: n}
	st.heap = m.Load(core.LoadSpec{Name: "Aheap", Strategy: core.Hashed, PartAttr: rel.Unique1}, ts)
	st.idx = m.Load(core.LoadSpec{
		Name: "Aidx", Strategy: core.Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, ts)
	return st
}

// pct is a predicate on attr selecting k percent of an n-tuple relation.
func pct(attr rel.Attr, n, k int) rel.Pred {
	return rel.Between(attr, 0, int32(n*k/100-1))
}

// tuplesOf reads the multiset of tuples stored in a catalogued relation.
func tuplesOf(t *testing.T, m *core.Machine, name string) map[rel.Tuple]int {
	t.Helper()
	r, ok := m.Relation(name)
	if !ok {
		t.Fatalf("relation %q not in catalog", name)
	}
	out := map[rel.Tuple]int{}
	for _, fr := range r.Frags {
		for i := 0; i < fr.File.Pages(); i++ {
			for _, tp := range fr.File.Page(i).LiveTuples(nil) {
				out[tp]++
			}
		}
	}
	return out
}

// expectSelect is the multiset a selection must produce, computed directly
// from the generated data.
func expectSelect(n int, pred rel.Pred) map[rel.Tuple]int {
	out := map[rel.Tuple]int{}
	for _, tp := range wisconsin.Generate(n, 1) {
		if pred.Match(tp) {
			out[tp]++
		}
	}
	return out
}

func diffMultisets(t *testing.T, label string, want, got map[rel.Tuple]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d distinct tuples, want %d", label, len(got), len(want))
	}
	for tp, w := range want {
		if g := got[tp]; g != w {
			t.Errorf("%s: tuple u1=%d appears %d times, want %d", label, tp.Get(rel.Unique1), g, w)
			return
		}
	}
	for tp, g := range got {
		if _, ok := want[tp]; !ok {
			t.Errorf("%s: unexpected tuple u1=%d (×%d)", label, tp.Get(rel.Unique1), g)
			return
		}
	}
}

// table1Variants are the seven Table 1 selection queries.
func table1Variants(st *setup) []struct {
	label string
	q     core.SelectQuery
} {
	n := st.n
	return []struct {
		label string
		q     core.SelectQuery
	}{
		{"1% nonindexed", core.SelectQuery{Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap}}},
		{"10% nonindexed", core.SelectQuery{Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}}},
		{"1% non-clustered index", core.SelectQuery{Scan: core.ScanSpec{Rel: st.idx, Pred: pct(rel.Unique2, n, 1), Path: core.PathNonClustered}}},
		{"10% segment scan of indexed", core.SelectQuery{Scan: core.ScanSpec{Rel: st.idx, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}}},
		{"1% clustered index", core.SelectQuery{Scan: core.ScanSpec{Rel: st.idx, Pred: pct(rel.Unique1, n, 1), Path: core.PathClustered}}},
		{"10% clustered index", core.SelectQuery{Scan: core.ScanSpec{Rel: st.idx, Pred: pct(rel.Unique1, n, 10), Path: core.PathClustered}}},
		{"single tuple select", core.SelectQuery{
			Scan:   core.ScanSpec{Rel: st.idx, Pred: rel.Eq(rel.Unique1, int32(n/2)), Path: core.PathClustered},
			ToHost: true,
		}},
	}
}

// TestSelectFailoverAllVariants crashes a disk node mid-query for every
// Table 1 selection variant and checks the retried result is exactly the
// fault-free answer.
func TestSelectFailoverAllVariants(t *testing.T) {
	const nDisk, nDiskless, n = 4, 2, 10000
	base := newSetup(nDisk, nDiskless, n)
	for vi, v := range table1Variants(base) {
		// Fault-free timing reference on a fresh machine.
		ref := newSetup(nDisk, nDiskless, n)
		refQ := table1Variants(ref)[vi].q
		refRes := ref.m.RunSelect(refQ)

		// Crash the site serving the scan (or site 1 for multi-site
		// scans) halfway through the fault-free response time.
		site := 1
		if v.q.ToHost {
			site = int(rel.Hash64(int32(n/2), core.LoadSeed) % uint64(nDisk))
		}
		st := newSetup(nDisk, nDiskless, n)
		q := table1Variants(st)[vi].q
		at := st.m.Sim.Now() + sim.Time(refRes.Elapsed/2)
		fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{fault.Crash(at, site)}})
		res := st.m.RunSelect(q)

		if v.q.ToHost {
			if res.Tuples != refRes.Tuples {
				t.Errorf("%s: %d tuples to host, want %d", v.label, res.Tuples, refRes.Tuples)
			}
			continue
		}
		want := expectSelect(n, v.q.Scan.Pred)
		got := tuplesOf(t, st.m, res.ResultName)
		diffMultisets(t, v.label, want, got)
		if res.Tuples != refRes.Tuples {
			t.Errorf("%s: res.Tuples = %d, want %d", v.label, res.Tuples, refRes.Tuples)
		}
		if res.Elapsed <= refRes.Elapsed {
			t.Errorf("%s: degraded elapsed %v not above fault-free %v", v.label, res.Elapsed, refRes.Elapsed)
		}
	}
}

// joinAselB joins the full A relation against a 10% selection of B.
func joinAselB(st *setup, b *core.Relation, mem int) core.JoinQuery {
	return core.JoinQuery{
		Build: core.ScanSpec{Rel: b, Pred: pct(rel.Unique2, b.N, 10), Path: core.PathHeap}, BuildAttr: rel.Unique1,
		Probe: core.ScanSpec{Rel: st.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique1,
		Mode: core.Remote, MemPerJoinBytes: mem,
	}
}

// expectJoinAselB computes the join's answer multiset directly: the probe
// tuple is emitted once per matching build tuple.
func expectJoinAselB(nA, nB int) map[rel.Tuple]int {
	bPred := pct(rel.Unique2, nB, 10)
	matches := map[int32]int{}
	for _, tp := range wisconsin.Generate(nB, 8) {
		if bPred.Match(tp) {
			matches[tp.Get(rel.Unique1)]++
		}
	}
	out := map[rel.Tuple]int{}
	for _, tp := range wisconsin.Generate(nA, 1) {
		if c := matches[tp.Get(rel.Unique1)]; c > 0 {
			out[tp] += c
		}
	}
	return out
}

// TestJoinFailoverMidQuery crashes a disk node mid-join (with ample memory,
// and under memory pressure so overflow rounds are in flight) and checks
// the answer is exact.
func TestJoinFailoverMidQuery(t *testing.T) {
	const nDisk, nDiskless, nA, nB = 4, 2, 10000, 2000
	for _, mem := range []int{64 << 20, 24 << 10} {
		label := fmt.Sprintf("mem=%d", mem)
		ref := newSetup(nDisk, nDiskless, nA)
		refB := ref.m.Load(core.LoadSpec{Name: "B", Strategy: core.Hashed, PartAttr: rel.Unique1}, wisconsin.Generate(nB, 8))
		refRes := ref.m.RunJoin(joinAselB(ref, refB, mem))

		st := newSetup(nDisk, nDiskless, nA)
		b := st.m.Load(core.LoadSpec{Name: "B", Strategy: core.Hashed, PartAttr: rel.Unique1}, wisconsin.Generate(nB, 8))
		at := st.m.Sim.Now() + sim.Time(refRes.Elapsed/2)
		fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{fault.Crash(at, 2)}})
		res := st.m.RunJoin(joinAselB(st, b, mem))

		want := expectJoinAselB(nA, nB)
		got := tuplesOf(t, st.m, res.ResultName)
		diffMultisets(t, label, want, got)
		if res.Tuples != refRes.Tuples {
			t.Errorf("%s: res.Tuples = %d, want %d", label, res.Tuples, refRes.Tuples)
		}
	}
}

// TestDriveFailover fails only a drive (processor survives) mid-query:
// detection is operator-driven and the answer must still be exact.
func TestDriveFailover(t *testing.T) {
	const nDisk, nDiskless, n = 4, 2, 10000
	q := func(st *setup) core.SelectQuery {
		return core.SelectQuery{Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}}
	}
	ref := newSetup(nDisk, nDiskless, n)
	refRes := ref.m.RunSelect(q(ref))

	st := newSetup(nDisk, nDiskless, n)
	tr := st.m.EnableTrace()
	at := st.m.Sim.Now() + sim.Time(refRes.Elapsed/2)
	fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{fault.BadDrive(at, 1)}})
	res := st.m.RunSelect(q(st))

	diffMultisets(t, "drive-fail", expectSelect(n, pct(rel.Unique2, n, 10)), tuplesOf(t, st.m, res.ResultName))
	if len(tr.Faults()) != 1 || tr.Faults()[0].Class != "drive-fail" {
		t.Errorf("faults = %v, want one drive-fail", tr.Faults())
	}
	retries := 0
	for _, e := range tr.Failovers() {
		if e.Class == "retry" {
			retries++
		}
	}
	if retries == 0 {
		t.Error("no retry recorded in trace")
	}
	if res.Diag == nil || len(res.Diag.Faults) == 0 || res.Diag.Retries == 0 {
		t.Errorf("diagnosis does not explain the degraded run: %+v", res.Diag)
	}
}

// TestNICOutage: a transient NIC outage delays a query without failover and
// without changing its answer.
func TestNICOutage(t *testing.T) {
	const nDisk, nDiskless, n = 4, 2, 10000
	q := func(st *setup) core.SelectQuery {
		return core.SelectQuery{Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}}
	}
	ref := newSetup(nDisk, nDiskless, n)
	refRes := ref.m.RunSelect(q(ref))

	st := newSetup(nDisk, nDiskless, n)
	tr := st.m.EnableTrace()
	at := st.m.Sim.Now() + sim.Time(refRes.Elapsed/4)
	fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{
		fault.NICStall(at, st.m.Disk[1].ID, 1*sim.Second),
	}})
	res := st.m.RunSelect(q(st))

	diffMultisets(t, "nic-outage", expectSelect(n, pct(rel.Unique2, n, 10)), tuplesOf(t, st.m, res.ResultName))
	if res.Elapsed <= refRes.Elapsed {
		t.Errorf("outage elapsed %v not above fault-free %v", res.Elapsed, refRes.Elapsed)
	}
	if len(tr.Failovers()) != 0 {
		t.Errorf("NIC outage triggered failover: %v", tr.Failovers())
	}
}

// TestCrashAfterCompletion: a crash scheduled after the query finishes must
// not change the result at all.
func TestCrashAfterCompletion(t *testing.T) {
	const nDisk, nDiskless, n = 4, 2, 10000
	q := func(st *setup) core.SelectQuery {
		return core.SelectQuery{Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap}}
	}
	ref := newSetup(nDisk, nDiskless, n)
	refRes := ref.m.RunSelect(q(ref))

	st := newSetup(nDisk, nDiskless, n)
	st.m.EnableFailover(0)
	res := st.m.RunSelect(q(st))
	st.m.CrashDisk(1)

	if res.Elapsed != refRes.Elapsed || res.Tuples != refRes.Tuples {
		t.Errorf("post-completion crash changed result: %+v vs %+v", res, refRes)
	}
	diffMultisets(t, "post-crash", expectSelect(n, pct(rel.Unique2, n, 1)), tuplesOf(t, st.m, res.ResultName))
}

// TestDegradedShape: the degraded response is worse than fault-free but
// bounded — a detection timeout plus a replay, not a timeout cliff.
func TestDegradedShape(t *testing.T) {
	const nDisk, nDiskless, n = 4, 2, 10000
	q := func(st *setup) core.SelectQuery {
		return core.SelectQuery{Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 10), Path: core.PathHeap}}
	}
	ref := newSetup(nDisk, nDiskless, n)
	t0 := ref.m.RunSelect(q(ref)).Elapsed

	st := newSetup(nDisk, nDiskless, n)
	at := st.m.Sim.Now() + sim.Time(t0/2)
	fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{fault.Crash(at, 1)}})
	t1 := st.m.RunSelect(q(st)).Elapsed

	if t1 <= t0 {
		t.Errorf("degraded %v not above fault-free %v", t1, t0)
	}
	// Bound: half a run + detection timeout + a full degraded replay.
	bound := 3*t0 + 2*core.DefaultFailoverDetect
	if t1 > bound {
		t.Errorf("degraded %v exceeds bound %v (fault-free %v) — timeout cliff?", t1, bound, t0)
	}
}

// TestFaultDeterminism: identical seed and fault schedule produce a
// byte-identical trace and identical Results, run to run.
func TestFaultDeterminism(t *testing.T) {
	const nDisk, nDiskless, nA, nB = 4, 2, 10000, 2000
	run := func() (core.Result, []byte) {
		st := newSetup(nDisk, nDiskless, nA)
		tr := st.m.EnableTrace()
		b := st.m.Load(core.LoadSpec{Name: "B", Strategy: core.Hashed, PartAttr: rel.Unique1}, wisconsin.Generate(nB, 8))
		fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{
			fault.Crash(st.m.Sim.Now()+400*sim.Millisecond, 2),
			fault.NICStall(st.m.Sim.Now()+100*sim.Millisecond, st.m.Diskless[0].ID, 50*sim.Millisecond),
		}})
		res := st.m.RunJoin(joinAselB(st, b, 64<<20))
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	res1, trace1 := run()
	res2, trace2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("results differ:\n%+v\n%+v", res1, res2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("traces differ (%d vs %d bytes)", len(trace1), len(trace2))
	}
}

func TestParseInjection(t *testing.T) {
	good := map[string]fault.Injection{
		"2@1.5":         {At: sim.Time(1.5 * float64(sim.Second)), Kind: fault.NodeCrash, Site: 2},
		"crash:0@0":     {Kind: fault.NodeCrash, Site: 0},
		"drive:3@0.25":  {At: sim.Time(0.25 * float64(sim.Second)), Kind: fault.DriveFail, Site: 3},
		"nic:1@0.5+0.2": {At: sim.Time(0.5 * float64(sim.Second)), Kind: fault.NICOutage, Site: 1, Dur: sim.Dur(0.2 * float64(sim.Second))},
	}
	for s, want := range good {
		got, err := fault.ParseInjection(s)
		if err != nil {
			t.Errorf("ParseInjection(%q): %v", s, err)
		} else if got != want {
			t.Errorf("ParseInjection(%q) = %+v, want %+v", s, got, want)
		}
	}
	for _, s := range []string{"", "x", "a@1", "-1@2", "burn:1@2", "nic:1@0.5", "1@-3", "nic:1@1+0"} {
		if _, err := fault.ParseInjection(s); err == nil {
			t.Errorf("ParseInjection(%q): no error", s)
		}
	}
}
