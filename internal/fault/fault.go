// Package fault schedules deterministic hardware failures against the
// simulation clock. It is the composition layer between the machine's
// failure entry points (core.Machine.CrashDisk, FailDrive, NICOutage) and
// experiments: a Schedule is armed once, the injections fire at exact
// simulated instants, and because the simulation is deterministic the same
// seed plus the same schedule always produces the same run — byte-identical
// traces included.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gamma/internal/core"
	"gamma/internal/sim"
)

// Kind is the failure mode of one injection.
type Kind int

const (
	// NodeCrash fails a disk site completely: processor, ports, and drive.
	// Queries fail over to the site's chained-declustered backups.
	NodeCrash Kind = iota
	// DriveFail fails only the site's drive; the processor survives, so
	// operators report the loss immediately instead of timing out.
	DriveFail
	// NICOutage blocks a node's network interface for Dur; traffic queues
	// behind the outage and drains afterwards. No failover is involved.
	NICOutage
	// NodeOutage crashes a disk site like NodeCrash, then rejoins it Dur
	// later: the node comes back with a cold buffer pool and immediately
	// eligible as a re-replication target (a transient power loss or
	// partition, against NodeCrash's permanent loss).
	NodeOutage
)

func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case DriveFail:
		return "drive-fail"
	case NICOutage:
		return "nic-outage"
	case NodeOutage:
		return "outage"
	default:
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
}

// Injection is one scheduled failure.
type Injection struct {
	At   sim.Time // simulated instant the failure takes effect
	Kind Kind
	// Site is a disk-site index (NodeCrash, DriveFail, NodeOutage) or a
	// node ID (NICOutage, which can hit any processor).
	Site int
	// Dur is the outage length (NICOutage and NodeOutage only).
	Dur sim.Dur
}

func (in Injection) String() string {
	s := fmt.Sprintf("%s@%d t=%.3fs", in.Kind, in.Site, float64(in.At)/float64(sim.Second))
	if in.Kind == NICOutage || in.Kind == NodeOutage {
		s += fmt.Sprintf(" for %.3fs", float64(in.Dur)/float64(sim.Second))
	}
	return s
}

// Schedule is a fault-injection plan: the failover detection timeout and
// the failures to stage.
type Schedule struct {
	// Detect is the scheduler's operator-silence timeout; <= 0 selects
	// core.DefaultFailoverDetect.
	Detect sim.Dur
	// Injections fire in At order (the simulator orders same-instant
	// events by scheduling order, i.e. slice order here).
	Injections []Injection
}

// Crash returns a node-crash injection against a disk site.
func Crash(at sim.Time, site int) Injection {
	return Injection{At: at, Kind: NodeCrash, Site: site}
}

// BadDrive returns a drive-failure injection against a disk site.
func BadDrive(at sim.Time, site int) Injection {
	return Injection{At: at, Kind: DriveFail, Site: site}
}

// Outage returns a transient node-outage injection against a disk site: a
// crash at `at` and a cold rejoin d later.
func Outage(at sim.Time, site int, d sim.Dur) Injection {
	return Injection{At: at, Kind: NodeOutage, Site: site, Dur: d}
}

// NICStall returns a NIC-outage injection against a node ID (the network
// interface stalls for d; no failover is involved).
func NICStall(at sim.Time, node int, d sim.Dur) Injection {
	return Injection{At: at, Kind: NICOutage, Site: node, Dur: d}
}

// Arm enables mid-query failover on the machine and stages every injection
// as a simulator event. Call it before the queries whose lifetime the
// schedule overlaps; injections whose instant has already passed fire
// immediately (the simulator clamps to now).
func Arm(m *core.Machine, s Schedule) {
	m.EnableFailover(s.Detect)
	for _, in := range s.Injections {
		in := in
		m.Sim.At(in.At, func() {
			switch in.Kind {
			case NodeCrash:
				m.CrashDisk(in.Site)
			case DriveFail:
				m.FailDrive(in.Site)
			case NICOutage:
				m.NICOutage(in.Site, in.Dur)
			case NodeOutage:
				m.OutageDisk(in.Site, in.Dur)
			default:
				panic("fault: unknown injection kind " + in.Kind.String())
			}
		})
	}
}

// maxSpecSeconds bounds the times a schedule spec may carry: one simulated
// year, far beyond any experiment, and small enough that the
// seconds-to-microseconds conversion can never overflow or lose the
// fractional microsecond to float error.
const maxSpecSeconds = 365 * 24 * 3600.0

// secsToDur converts spec seconds to simulated microseconds, rounding to
// the nearest microsecond. Rounding (not truncation) makes the conversion
// exact for every decimal spelling with up to six fractional digits, which
// is what lets FormatInjection round-trip losslessly.
func secsToDur(sec float64) sim.Dur {
	return sim.Dur(math.Round(sec * float64(sim.Second)))
}

// parseSpecSeconds parses a non-negative, finite, bounded seconds value.
// NaN, infinities, and out-of-range magnitudes are rejected — a schedule
// instant must always land on a representable simulated microsecond.
func parseSpecSeconds(s string) (float64, error) {
	sec, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(sec) || sec < 0 || sec > maxSpecSeconds {
		return 0, fmt.Errorf("seconds %q out of range [0, %g]", s, maxSpecSeconds)
	}
	return sec, nil
}

// ParseInjection parses the command-line form "site@seconds" (node crash),
// "drive:site@seconds", "nic:node@seconds+dur", or "outage:site@seconds+dur",
// e.g. "2@1.5", "nic:3@0.5+0.2", or "outage:1@2+5".
func ParseInjection(s string) (Injection, error) {
	kind := NodeCrash
	rest := s
	if k, r, ok := strings.Cut(s, ":"); ok {
		switch k {
		case "crash":
			kind = NodeCrash
		case "drive":
			kind = DriveFail
		case "nic":
			kind = NICOutage
		case "outage":
			kind = NodeOutage
		default:
			return Injection{}, fmt.Errorf("unknown fault kind %q (want crash, drive, nic, or outage)", k)
		}
		rest = r
	}
	siteStr, atStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Injection{}, fmt.Errorf("fault %q: want site@seconds", s)
	}
	site, err := strconv.Atoi(siteStr)
	if err != nil || site < 0 {
		return Injection{}, fmt.Errorf("fault %q: bad site %q", s, siteStr)
	}
	var dur sim.Dur
	if kind == NICOutage || kind == NodeOutage {
		var durStr string
		atStr, durStr, ok = strings.Cut(atStr, "+")
		if !ok {
			return Injection{}, fmt.Errorf("fault %q: %s wants site@seconds+dur", s, kind)
		}
		durSec, err := parseSpecSeconds(durStr)
		if err != nil || durSec <= 0 {
			return Injection{}, fmt.Errorf("fault %q: bad outage duration %q", s, durStr)
		}
		dur = secsToDur(durSec)
		if dur == 0 {
			return Injection{}, fmt.Errorf("fault %q: outage duration %q rounds to zero", s, durStr)
		}
	}
	atSec, err := parseSpecSeconds(atStr)
	if err != nil {
		return Injection{}, fmt.Errorf("fault %q: bad time %q", s, atStr)
	}
	return Injection{
		At:   sim.Time(secsToDur(atSec)),
		Kind: kind,
		Site: site,
		Dur:  dur,
	}, nil
}

// FormatInjection renders an injection in the canonical spec form
// ParseInjection accepts: explicit kind prefix, seconds with the minimal
// decimal spelling. Parse∘Format is the identity on every injection Parse
// can produce (the fuzz harness pins this).
func FormatInjection(in Injection) string {
	sec := func(d sim.Dur) string {
		return strconv.FormatFloat(float64(d)/float64(sim.Second), 'f', -1, 64)
	}
	var kind string
	switch in.Kind {
	case NodeCrash:
		kind = "crash"
	case DriveFail:
		kind = "drive"
	case NICOutage:
		return fmt.Sprintf("nic:%d@%s+%s", in.Site, sec(in.At), sec(in.Dur))
	case NodeOutage:
		return fmt.Sprintf("outage:%d@%s+%s", in.Site, sec(in.At), sec(in.Dur))
	default:
		panic("fault: unknown injection kind " + in.Kind.String())
	}
	return fmt.Sprintf("%s:%d@%s", kind, in.Site, sec(in.At))
}
