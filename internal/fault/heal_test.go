package fault_test

// Tests of the self-healing layer: typed unavailability instead of panics
// when a fragment loses both chain members, outage rejoin semantics, heal
// correctness (a healed machine answers exactly like a fresh load, including
// through a snapshot/restore), sustained seeded campaigns with zero panics,
// and campaign determinism.

import (
	"errors"
	"reflect"
	"testing"

	"gamma/internal/core"
	"gamma/internal/fault"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
	"gamma/internal/wisconsin"
)

// hashSite is where a Unique1 key lands on a hash-declustered relation.
func hashSite(key int32, nDisk int) int {
	return int(rel.Hash64(key, core.LoadSeed) % uint64(nDisk))
}

// TestBothChainMembersDown is the regression for the old
// "core: fragment ... unavailable" panic: killing a chained pair (a
// fragment's primary site and the next site holding its backup) must fail
// the affected query with a typed *core.ErrUnavailable — not crash the
// process — and leave the machine serving queries that avoid the dead
// fragment.
func TestBothChainMembersDown(t *testing.T) {
	const nDisk, nDiskless, n = 4, 2, 10000
	st := newSetup(nDisk, nDiskless, n)
	// Fragment 1's primary is on site 1 and its backup on site 2.
	fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{
		fault.Crash(sim.Time(1*sim.Millisecond), 1),
		fault.Crash(sim.Time(2*sim.Millisecond), 2),
	}})

	res := st.m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap},
	})
	if res.Err == nil {
		t.Fatal("full scan over a doubly-failed fragment returned no error")
	}
	var ue *core.ErrUnavailable
	if !errors.As(res.Err, &ue) {
		t.Fatalf("res.Err = %v (%T), want *core.ErrUnavailable", res.Err, res.Err)
	}

	// The machine survives: an exact-match query routed to a live site
	// still answers, repeatedly.
	key := int32(-1)
	for k := int32(0); k < int32(n); k++ {
		if s := hashSite(k, nDisk); s != 1 && s != 2 {
			key = k
			break
		}
	}
	if key < 0 {
		t.Fatal("no key hashes to a live site")
	}
	for i := 0; i < 2; i++ {
		one := st.m.RunSelect(core.SelectQuery{
			Scan:   core.ScanSpec{Rel: st.heap, Pred: rel.Eq(rel.Unique1, key), Path: core.PathHeap},
			ToHost: true,
		})
		if one.Err != nil {
			t.Fatalf("single-site query after double failure: %v", one.Err)
		}
		if one.Tuples != 1 {
			t.Fatalf("single-site query returned %d tuples, want 1", one.Tuples)
		}
	}
}

// TestOutageRejoin covers fault.Outage's rejoin semantics with healing
// active: the node comes back cold and immediately eligible as a
// re-replication target. A crash during the outage must heal around the
// down node, and a crash after the rejoin must be able to land its rebuild
// on the rejoined node.
func TestOutageRejoin(t *testing.T) {
	const nDisk, nDiskless, n = 4, 2, 10000
	st := newSetup(nDisk, nDiskless, n)
	tr := st.m.EnableTrace()
	h := st.m.EnableHealing(core.HealConfig{Horizon: sim.Time(120 * sim.Second)})

	// Crash site 2 at 1 s; site 3 is in outage 1.2 s – 4.2 s, so the rebuild
	// of site 2's fragments must route around it (outage during heal). The
	// second crash lands at 40 s, after the first wave has fully restored
	// redundancy (rebuilds finish ~25 s): with every fragment doubly held
	// again, losing any single node is survivable, and the ring now routes
	// some of the new rebuilds onto the rejoined site 3.
	fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{
		fault.Crash(sim.Time(1*sim.Second), 2),
		fault.Outage(sim.Time(1200*sim.Millisecond), 3, 3*sim.Second),
		fault.Crash(sim.Time(40*sim.Second), 0),
	}})
	st.m.Sim.Run()

	stats := h.Stats()
	if len(stats.Episodes) != 3 {
		t.Fatalf("episodes = %d, want 3", len(stats.Episodes))
	}
	for _, ep := range stats.Episodes {
		if ep.DetectedAt < 0 || ep.RestoredAt < 0 {
			t.Errorf("episode %+v never detected/restored", ep)
		}
	}

	rejoinAt := sim.Time(-1)
	for _, e := range tr.Heals() {
		if e.Kind == trace.KindHeal && e.Class == "rejoin" && e.Site == 3 {
			rejoinAt = sim.Time(e.At)
		}
	}
	if rejoinAt < 0 {
		t.Fatal("no rejoin event for site 3")
	}
	landedOnRejoined := false
	for _, e := range tr.Heals() {
		if e.Kind == trace.KindRebuild && e.Class == "done" &&
			e.To == st.m.Disk[3].ID && sim.Time(e.At) > rejoinAt {
			landedOnRejoined = true
		}
	}
	if !landedOnRejoined {
		t.Error("no rebuild landed on the rejoined node")
	}

	// The healed directory still answers exactly.
	res := st.m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: st.heap, Pred: pct(rel.Unique2, n, 1), Path: core.PathHeap},
	})
	if res.Err != nil {
		t.Fatalf("post-heal selection failed: %v", res.Err)
	}
	diffMultisets(t, "post-heal 1%", expectSelect(n, pct(rel.Unique2, n, 1)), tuplesOf(t, st.m, res.ResultName))
}

// TestHealCorrectness: crash a node, let the healer promote and re-replicate,
// snapshot the healed machine, restore it onto a fresh simulator, and check
// every Table 1 selection plus a join answer with multisets identical to a
// fresh mirrored load.
func TestHealCorrectness(t *testing.T) {
	const nDisk, nDiskless, n, nB = 4, 2, 10000, 2000
	st := newSetup(nDisk, nDiskless, n)
	b := st.m.Load(core.LoadSpec{Name: "B", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(nB, 8))
	_ = b
	h := st.m.EnableHealing(core.HealConfig{Horizon: sim.Time(120 * sim.Second)})
	fault.Arm(st.m, fault.Schedule{Injections: []fault.Injection{
		fault.Crash(sim.Time(1*sim.Second), 1),
	}})
	st.m.Sim.Run()
	for _, ep := range h.Stats().Episodes {
		if ep.RestoredAt < 0 {
			t.Fatalf("healing incomplete before snapshot: %+v", ep)
		}
	}

	snap := st.m.Snapshot()
	m2 := core.RestoreMachine(sim.New(), snap)
	st2 := &setup{m: m2, n: n}
	var ok bool
	if st2.heap, ok = m2.Relation("Aheap"); !ok {
		t.Fatal("restored machine lost Aheap")
	}
	if st2.idx, ok = m2.Relation("Aidx"); !ok {
		t.Fatal("restored machine lost Aidx")
	}

	for _, v := range table1Variants(st2) {
		res := m2.RunSelect(v.q)
		if res.Err != nil {
			t.Fatalf("%s on healed machine: %v", v.label, res.Err)
		}
		if v.q.ToHost {
			if res.Tuples != 1 {
				t.Errorf("%s: %d tuples to host, want 1", v.label, res.Tuples)
			}
			continue
		}
		want := expectSelect(n, v.q.Scan.Pred)
		diffMultisets(t, v.label, want, tuplesOf(t, m2, res.ResultName))
	}

	b2, ok := m2.Relation("B")
	if !ok {
		t.Fatal("restored machine lost B")
	}
	jres := m2.RunJoin(core.JoinQuery{
		Build: core.ScanSpec{Rel: b2, Pred: pct(rel.Unique2, nB, 10), Path: core.PathHeap}, BuildAttr: rel.Unique1,
		Probe: core.ScanSpec{Rel: st2.heap, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique1,
		Mode: core.Remote, MemPerJoinBytes: 64 << 20,
	})
	if jres.Err != nil {
		t.Fatalf("join on healed machine: %v", jres.Err)
	}
	diffMultisets(t, "joinAselB", expectJoinAselB(n, nB), tuplesOf(t, m2, jres.ResultName))
}

// campaignWorkload runs one seeded campaign against a 32-node mirrored
// machine under a closed-loop workload and returns the workload result and
// healer stats — the sustained-campaign smoke and its determinism check.
func campaignWorkload(t *testing.T, seed uint64) (core.WorkloadResult, core.HealStats) {
	t.Helper()
	const nDisk, n = 32, 8000
	st := newSetup(nDisk, 0, n)
	camp := fault.Campaign(fault.CampaignSpec{
		Seed: seed, Sites: nDisk, Faults: 12,
		MTTF: 2 * sim.Second, Start: sim.Time(500 * sim.Millisecond),
		MeanOutage: 1 * sim.Second,
	})
	if len(camp) < 10 {
		t.Fatalf("campaign too short: %d faults", len(camp))
	}
	var end sim.Time
	for _, in := range camp {
		if e := in.At + sim.Time(in.Dur); e > end {
			end = e
		}
	}
	fault.Arm(st.m, fault.Schedule{Injections: camp})
	st.m.EnableHealing(core.HealConfig{Horizon: end + sim.Time(20*sim.Second)})
	wl := st.m.RunWorkload(core.WorkloadSpec{
		Terminals:   4,
		PerTerminal: 16,
		Ramp:        sim.Second,
		Seed:        seed,
		Make: func(term, q int, rng func() uint64) core.ConcurrentQuery {
			lo := int32(rng() % uint64(n-100))
			return core.ConcurrentQuery{Select: &core.SelectQuery{
				Scan:   core.ScanSpec{Rel: st.heap, Pred: rel.Between(rel.Unique2, lo, lo+99), Path: core.PathHeap},
				ToHost: true, Project: []rel.Attr{rel.Unique1},
			}}
		},
	})
	return wl, st.m.Healer().Stats()
}

// TestSustainedCampaign: a ≥10-fault seeded campaign at 32 nodes completes
// with zero process panics, classifies every query, and is deterministic —
// the same seed reproduces the identical workload result and heal history.
func TestSustainedCampaign(t *testing.T) {
	wl1, hs1 := campaignWorkload(t, 99)
	if got := wl1.Clean + wl1.Degraded + wl1.Failed; got != wl1.Queries {
		t.Errorf("clean %d + degraded %d + failed %d = %d, want %d queries",
			wl1.Clean, wl1.Degraded, wl1.Failed, got, wl1.Queries)
	}
	if hs1.Detections == 0 || hs1.Promotions == 0 {
		t.Errorf("campaign healed nothing: %+v", hs1)
	}
	wl2, hs2 := campaignWorkload(t, 99)
	if !reflect.DeepEqual(wl1, wl2) {
		t.Error("same seed produced different workload results")
	}
	if !reflect.DeepEqual(hs1, hs2) {
		t.Error("same seed produced different heal histories")
	}
}

// TestCampaignDeterminism: Campaign is a pure function of its spec, distinct
// seeds diverge, and every generated injection round-trips through the spec
// grammar unchanged.
func TestCampaignDeterminism(t *testing.T) {
	spec := fault.CampaignSpec{Seed: 7, Sites: 16, Faults: 40}
	c1 := fault.Campaign(spec)
	c2 := fault.Campaign(spec)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("same spec produced different campaigns")
	}
	spec.Seed = 8
	if reflect.DeepEqual(c1, fault.Campaign(spec)) {
		t.Fatal("different seeds produced identical campaigns")
	}
	last := sim.Time(0)
	for _, in := range c1 {
		if in.At < last {
			t.Fatalf("campaign not in firing order: %v", c1)
		}
		last = in.At
		if in.Site < 0 || in.Site >= 16 {
			t.Errorf("victim %d out of range", in.Site)
		}
		back, err := fault.ParseInjection(fault.FormatInjection(in))
		if err != nil {
			t.Fatalf("injection %+v does not round-trip: %v", in, err)
		}
		if back != in {
			t.Fatalf("round-trip changed injection: %+v -> %+v", in, back)
		}
	}
}
