package fault_test

// Round-trip fuzzing of the fault-schedule parser, mirroring the QUEL
// parser fuzz from the query layer: any accepted spec must format to a
// canonical spelling that parses back to the identical Injection and is a
// fixed point of format∘parse. The seed corpus is the schedules the fault
// and CLI tests use; CI runs FuzzParseInjection as a short smoke on top of
// the deterministic corpus test.

import (
	"testing"

	"gamma/internal/fault"
)

// seedSpecs are the schedule spellings used across the test suite and the
// gammatrace -fault documentation, plus grammar corners (bare crash form,
// zero time, sub-microsecond rounding, exponent notation, junk).
var seedSpecs = []string{
	"2@1.5",
	"crash:0@0",
	"crash:12@0.75",
	"drive:3@0.25",
	"drive:0@10",
	"nic:1@0.5+0.2",
	"nic:3@0.5+0.25",
	"nic:0@0+0.000001",
	"outage:1@2+5",
	"outage:0@0.5+0.000001",
	"outage:4@10+0.25",
	"7@2.999999",
	"crash:1@1e-3",
	"drive:2@0.1234567",
	"nic:1@Inf+1",
	"nic:1@1+NaN",
	"1@9e99",
	"-1@2",
	"burn:1@2",
	"nic:1@0.5",
	"",
}

// roundTrip asserts the fixed-point property for one accepted spec.
func roundTrip(t *testing.T, spec string) {
	t.Helper()
	in, err := fault.ParseInjection(spec)
	if err != nil {
		return // rejected inputs have no canonical form
	}
	canon := fault.FormatInjection(in)
	in2, err := fault.ParseInjection(canon)
	if err != nil {
		t.Fatalf("canonical form %q (of %q) fails to parse: %v", canon, spec, err)
	}
	if in2 != in {
		t.Fatalf("format/parse not lossless:\n input %q -> %+v\n canon %q -> %+v", spec, in, canon, in2)
	}
	if again := fault.FormatInjection(in2); again != canon {
		t.Fatalf("format∘parse is not a fixed point:\n input %q\n canon %q\n again %q", spec, canon, again)
	}
	// An accepted injection is always usable: non-negative instant, a
	// positive duration exactly when the kind carries one (NIC or node
	// outage).
	if in.At < 0 || in.Site < 0 {
		t.Fatalf("accepted spec %q produced invalid injection %+v", spec, in)
	}
	hasDur := in.Kind == fault.NICOutage || in.Kind == fault.NodeOutage
	if hasDur != (in.Dur > 0) {
		t.Fatalf("accepted spec %q has inconsistent duration: %+v", spec, in)
	}
}

// TestParseInjectionSeedCorpus keeps the fuzz seeds passing
// deterministically, so the corpus stays valid even when no fuzz engine
// runs.
func TestParseInjectionSeedCorpus(t *testing.T) {
	accepted := 0
	for _, spec := range seedSpecs {
		if _, err := fault.ParseInjection(spec); err == nil {
			accepted++
		}
		roundTrip(t, spec)
	}
	if accepted < 10 {
		t.Fatalf("only %d/%d seed specs accepted; corpus has rotted", accepted, len(seedSpecs))
	}
}

// TestParseInjectionRejectsNonFinite pins the hardening the fuzz harness
// drove in: NaN and infinite times or durations must be rejected, as must
// magnitudes that would overflow the microsecond clock.
func TestParseInjectionRejectsNonFinite(t *testing.T) {
	for _, spec := range []string{
		"1@NaN", "1@Inf", "1@+Inf", "crash:1@1e308", "1@9e99",
		"nic:1@Inf+1", "nic:1@1+Inf", "nic:1@1+NaN", "nic:1@1+1e308",
		"nic:1@1+0.0000001", // rounds to zero microseconds
	} {
		if in, err := fault.ParseInjection(spec); err == nil {
			t.Errorf("ParseInjection(%q) = %+v, want error", spec, in)
		}
	}
}

// FuzzParseInjection feeds arbitrary specs through ParseInjection; whatever
// is accepted must round-trip losslessly through FormatInjection.
func FuzzParseInjection(f *testing.F) {
	for _, spec := range seedSpecs {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		roundTrip(t, spec)
	})
}
