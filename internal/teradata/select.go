package teradata

import (
	"gamma/internal/rel"
	"gamma/internal/sim"
)

// SelectKind is the physical plan of a Teradata selection.
type SelectKind int

const (
	// FileScan reads the entire hash file at every AMP — the only option
	// for range predicates on unindexed attributes (§3).
	FileScan SelectKind = iota
	// IndexScan scans the ENTIRE dense secondary index (its rows are
	// hashed, not sorted, §3) and fetches each qualifying tuple's data
	// block with a random access.
	IndexScan
	// HashAccess is a single-tuple exact-match on the primary key: one
	// disk access at one AMP.
	HashAccess
)

// RunSelect executes a selection and stores its result via INSERT INTO
// (with per-tuple logging) unless toHost is set.
func (m *Machine) RunSelect(r *Relation, pred rel.Pred, kind SelectKind, toHost bool) Result {
	tc := m.Prm.Tera
	var out *Relation
	if !toHost {
		out = &Relation{Name: "result", KeyAttr: rel.Unique1, Secondary: map[rel.Attr]bool{}}
		for _, nd := range m.AMPs {
			st := m.stores[nd.ID]
			out.Frags = append(out.Frags, &Fragment{Node: nd, File: st.CreateFile("result")})
		}
	}
	total := 0
	elapsed := m.run(tc.HostStartup, func(p *sim.Proc) {
		if kind == HashAccess {
			amp := int(rel.Hash64(pred.Lo, hashSeed) % uint64(len(m.AMPs)))
			nd := m.AMPs[amp]
			fr := r.Frags[amp]
			// One hash access locates the block (§3).
			nd.UseCPU(p, tc.InstrPerTupleScan)
			m.ioSeq += 2
			nd.Drive.Read(p, fr.File.ID, m.ioSeq, m.ampPrm.PageBytes)
			for pg := 0; pg < fr.File.Pages(); pg++ {
				for s, t := range fr.File.PageTuples(pg) {
					if fr.File.Page(pg).Live(s) && pred.Match(t) {
						total++
					}
				}
			}
			m.Net.TransferBulk(p, nd, m.Host, m.Prm.TupleBytes)
			return
		}
		counts := make([]int, len(m.AMPs))
		m.fanout(p, func(ap *sim.Proc, amp int) {
			fr := r.Frags[amp]
			nd := m.AMPs[amp]
			n := 0
			emit := func(t rel.Tuple) {
				n++
				if out != nil {
					m.insertResult(ap, amp, t, out)
				}
			}
			switch kind {
			case FileScan:
				sc := fr.File.NewScanner()
				for pg := sc.NextPage(ap); pg != nil; pg = sc.NextPage(ap) {
					nd.UseCPU(ap, tc.InstrPerTupleScan*len(pg.Tuples))
					for s, t := range pg.Tuples {
						if pg.Live(s) && pred.Match(t) {
							emit(t)
						}
					}
				}
			case IndexScan:
				if !r.Secondary[pred.Attr] {
					panic("teradata: IndexScan without a secondary index on " + pred.Attr.String())
				}
				// The whole index is scanned: same number of
				// comparisons as a file scan, fewer sequential
				// I/Os (§5.1).
				entries := fr.File.Len()
				idxPages := entries*m.Prm.IndexEntryBytes/m.ampPrm.PageBytes + 1
				for i := 0; i < idxPages; i++ {
					nd.Drive.Read(ap, -200-amp, i, m.ampPrm.PageBytes)
				}
				nd.UseCPU(ap, tc.InstrPerTupleScan*entries)
				for pg := 0; pg < fr.File.Pages(); pg++ {
					page := fr.File.Page(pg)
					for s, t := range fr.File.PageTuples(pg) {
						if page.Live(s) && pred.Match(t) {
							// Each qualifying tuple: one random data-block access.
							m.ioSeq += 2
							nd.Drive.Read(ap, fr.File.ID, m.ioSeq, m.ampPrm.PageBytes)
							emit(t)
						}
					}
				}
			}
			counts[amp] = n
		})
		for _, c := range counts {
			total += c
		}
	})
	if out != nil {
		m.catalog[out.Name] = out
		out.N = total
	}
	return Result{Elapsed: elapsed, Tuples: total}
}
