package teradata

import (
	"testing"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

func newTera(t *testing.T, n int) (*Machine, *Relation) {
	t.Helper()
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm)
	r := m.Load("A", rel.Unique1, []rel.Attr{rel.Unique2}, wisconsin.Generate(n, 1))
	return m, r
}

func TestLoadHashPartitions(t *testing.T) {
	m, r := newTera(t, 2000)
	if len(r.Frags) != 20 {
		t.Fatalf("fragments = %d, want 20 AMPs", len(r.Frags))
	}
	total := 0
	for _, fr := range r.Frags {
		total += fr.File.Len()
	}
	if total != 2000 {
		t.Errorf("total = %d", total)
	}
	_ = m
}

func TestFileScanSelection(t *testing.T) {
	m, r := newTera(t, 2000)
	res := m.RunSelect(r, rel.Between(rel.Unique2, 0, 19), FileScan, false)
	if res.Tuples != 20 {
		t.Errorf("tuples = %d, want 20", res.Tuples)
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed")
	}
	out, _ := m.Relation("result")
	if out.N != 20 {
		t.Errorf("stored %d", out.N)
	}
}

func TestIndexScanNoFasterThanFileScan(t *testing.T) {
	// §5.1: hashed dense index rows force a full index scan plus random
	// fetches, so a 1% indexed selection costs about as much as a scan.
	m, r := newTera(t, 5000)
	idx := m.RunSelect(r, rel.Between(rel.Unique2, 0, 49), IndexScan, false)
	m2, r2 := newTera(t, 5000)
	scan := m2.RunSelect(r2, rel.Between(rel.Unique2, 0, 49), FileScan, false)
	_ = m
	ratio := idx.Elapsed.Seconds() / scan.Elapsed.Seconds()
	if ratio < 0.5 || ratio > 1.6 {
		t.Errorf("index/scan ratio = %.2f; Table 1 shows they are nearly equal", ratio)
	}
	if idx.Tuples != scan.Tuples {
		t.Errorf("tuples differ: %d vs %d", idx.Tuples, scan.Tuples)
	}
}

func TestHashAccessSingleTuple(t *testing.T) {
	m, r := newTera(t, 2000)
	res := m.RunSelect(r, rel.Eq(rel.Unique1, 777), HashAccess, true)
	if res.Tuples != 1 {
		t.Errorf("tuples = %d", res.Tuples)
	}
	if res.Elapsed.Seconds() > 2.0 {
		t.Errorf("single-tuple select took %.2fs; Table 1 shows ~1.08s", res.Elapsed.Seconds())
	}
}

func TestJoinCorrectness(t *testing.T) {
	m, a := newTera(t, 2000)
	bp := wisconsin.Generate(200, 7)
	b := m.Load("Bprime", rel.Unique1, nil, bp)
	// Non-key join on unique2: every Bprime tuple matches exactly one A.
	res := m.RunJoin(JoinQuery{
		R1: a, Pred1: rel.True(), Attr1: rel.Unique2,
		R2: b, Pred2: rel.True(), Attr2: rel.Unique2,
	})
	if res.Tuples != 200 {
		t.Errorf("join returned %d tuples, want 200", res.Tuples)
	}
}

func TestKeyJoinSkipsRedistribution(t *testing.T) {
	m, a := newTera(t, 4000)
	b := m.Load("Bprime", rel.Unique1, nil, wisconsin.Generate(400, 7))
	key := m.RunJoin(JoinQuery{
		R1: a, Pred1: rel.True(), Attr1: rel.Unique1,
		R2: b, Pred2: rel.True(), Attr2: rel.Unique1,
	})
	m2, a2 := newTera(t, 4000)
	b2 := m2.Load("Bprime", rel.Unique1, nil, wisconsin.Generate(400, 7))
	nonkey := m2.RunJoin(JoinQuery{
		R1: a2, Pred1: rel.True(), Attr1: rel.Unique2,
		R2: b2, Pred2: rel.True(), Attr2: rel.Unique2,
	})
	if key.Tuples != nonkey.Tuples {
		t.Errorf("cardinality differs: %d vs %d", key.Tuples, nonkey.Tuples)
	}
	if key.Elapsed >= nonkey.Elapsed {
		t.Errorf("key join (%v) should beat non-key join (%v) — §6.1's 25-50%%", key.Elapsed, nonkey.Elapsed)
	}
}

func TestTwoStageJoin(t *testing.T) {
	m, a := newTera(t, 2000)
	b := m.Load("B", rel.Unique1, nil, wisconsin.Generate(2000, 21))
	c := m.Load("C", rel.Unique1, nil, wisconsin.Generate(200, 22))
	sel := rel.Between(rel.Unique2, 0, 199)
	res := m.RunJoin(JoinQuery{
		R1: a, Pred1: sel, Attr1: rel.Unique2,
		R2: b, Pred2: sel, Attr2: rel.Unique2,
		R3: c, Pred3: rel.True(), Attr3: rel.Unique1, AttrI: rel.Unique2,
	})
	if res.Tuples != 200 {
		t.Errorf("two-stage join returned %d, want 200 (|C|)", res.Tuples)
	}
}

func TestFallbackCostsMore(t *testing.T) {
	// §4: the benchmark relations were loaded NO FALLBACK; with FALLBACK
	// every inserted row is duplicated on a second AMP.
	run := func(fb bool) Result {
		m, r := newTera(t, 3000)
		m.SetFallback(fb)
		return m.RunSelect(r, rel.Between(rel.Unique2, 0, 299), FileScan, false)
	}
	off := run(false)
	on := run(true)
	if on.Tuples != off.Tuples {
		t.Fatalf("fallback changed results: %d vs %d", on.Tuples, off.Tuples)
	}
	if on.Elapsed <= off.Elapsed {
		t.Errorf("FALLBACK (%v) should cost more than NO FALLBACK (%v)", on.Elapsed, off.Elapsed)
	}
}

func TestInsertLoggingDominatesLargeResults(t *testing.T) {
	// The Table 1 phenomenon: the 10% selection costs far more than 10x
	// the I/O difference because every stored tuple pays ~3 logged I/Os.
	m, r := newTera(t, 5000)
	one := m.RunSelect(r, rel.Between(rel.Unique2, 0, 49), FileScan, false)
	ten := m.RunSelect(r, rel.Between(rel.Unique2, 0, 499), FileScan, false)
	perTuple := (ten.Elapsed - one.Elapsed).Seconds() / 450
	if perTuple < 0.005 {
		t.Errorf("insert path costs %.4fs/tuple; should dominate (§4)", perTuple)
	}
}

func TestUpdates(t *testing.T) {
	m, r := newTera(t, 2000)
	var tp rel.Tuple
	tp.Set(rel.Unique1, 9999)
	tp.Set(rel.Unique2, 9999)
	app := m.RunUpdate(UpdateQuery{Rel: r, Kind: AppendTuple, Tuple: tp})
	if app.Tuples != 1 || r.N != 2001 {
		t.Errorf("append: changed=%d N=%d", app.Tuples, r.N)
	}
	del := m.RunUpdate(UpdateQuery{Rel: r, Kind: DeleteByKey, Key: 9999})
	if del.Tuples != 1 || r.N != 2000 {
		t.Errorf("delete: changed=%d N=%d", del.Tuples, r.N)
	}
	modNon := m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyNonIndexed, Key: 5, Attr: rel.OddOnePercent, NewValue: 3})
	if modNon.Tuples != 1 {
		t.Errorf("modify-nonindexed: changed=%d", modNon.Tuples)
	}
	modIdx := m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyIndexed, Key: 10, Attr: rel.Unique2, NewValue: 8888})
	if modIdx.Tuples != 1 {
		t.Errorf("modify-indexed: changed=%d", modIdx.Tuples)
	}
	modKey := m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyKeyAttr, Key: 6, Attr: rel.Unique1, NewValue: 7500})
	if modKey.Tuples != 1 {
		t.Errorf("modify-key: changed=%d", modKey.Tuples)
	}
	// Table 3 ordering: modifying the key (relocation + index updates) is
	// the most expensive Teradata update.
	if modKey.Elapsed <= modNon.Elapsed {
		t.Errorf("modify-key (%v) should exceed modify-nonindexed (%v)", modKey.Elapsed, modNon.Elapsed)
	}
}
