package teradata

import (
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wiss"
)

// UpdateKind mirrors the Table 3 single-tuple update workload.
type UpdateKind int

const (
	AppendTuple UpdateKind = iota
	DeleteByKey
	ModifyKeyAttr
	ModifyNonIndexed
	ModifyIndexed
)

// UpdateQuery is one single-tuple update against the Teradata machine.
type UpdateQuery struct {
	Rel      *Relation
	Kind     UpdateKind
	Tuple    rel.Tuple
	Key      int32
	Attr     rel.Attr
	NewValue int32
}

// RunUpdate executes a single-tuple update with full concurrency control and
// recovery (§7): every mutated row is logged (InsertIOs), hash access
// locates rows by primary key in one I/O, and secondary-index maintenance
// adds hashed index-row updates.
func (m *Machine) RunUpdate(q UpdateQuery) Result {
	tc := m.Prm.Tera
	changed := 0
	startup := tc.UpdateStartup
	if q.Kind == ModifyKeyAttr {
		// Relocating a row between AMPs is a cross-AMP transaction and
		// takes the full host/IFP coordination path (Table 3 row 4 is
		// the most expensive Teradata update by far).
		startup = tc.HostStartup
	}
	elapsed := m.run(startup, func(p *sim.Proc) {
		switch q.Kind {
		case AppendTuple:
			amp := m.ampFor(q.Tuple.Get(q.Rel.KeyAttr))
			m.logWrite(p, amp, tc.InsertIOs)
			q.Rel.Frags[amp].File.LoadAppend(q.Tuple)
			q.Rel.N++
			changed = 1
			for range q.Rel.Secondary {
				m.indexRowUpdate(p, amp)
			}

		case DeleteByKey:
			amp := m.ampFor(q.Key)
			if rid, t, ok := m.hashLocate(p, amp, q.Rel, q.Key); ok {
				m.logWrite(p, amp, tc.InsertIOs-1)
				q.Rel.Frags[amp].File.DeleteRID(p, rid)
				q.Rel.N--
				changed = 1
				for a := range q.Rel.Secondary {
					_ = a
					m.indexRowUpdate(p, amp)
				}
				_ = t
			}

		case ModifyKeyAttr:
			// The row moves to the AMP its new key hashes to, and
			// every secondary index row must be rewritten (§7 row 4,
			// the most expensive case).
			oldAmp := m.ampFor(q.Key)
			newAmp := m.ampFor(q.NewValue)
			if rid, t, ok := m.hashLocate(p, oldAmp, q.Rel, q.Key); ok {
				m.logWrite(p, oldAmp, tc.InsertIOs)
				q.Rel.Frags[oldAmp].File.DeleteRID(p, rid)
				t.Set(q.Rel.KeyAttr, q.NewValue)
				m.Net.TransferBulk(p, m.AMPs[oldAmp], m.AMPs[newAmp], m.Prm.TupleBytes)
				m.logWrite(p, newAmp, tc.InsertIOs)
				q.Rel.Frags[newAmp].File.LoadAppend(t)
				changed = 1
				for range q.Rel.Secondary {
					m.indexRowUpdate(p, oldAmp)
					m.indexRowUpdate(p, newAmp)
				}
			}

		case ModifyNonIndexed:
			amp := m.ampFor(q.Key)
			if rid, t, ok := m.hashLocate(p, amp, q.Rel, q.Key); ok {
				t.Set(q.Attr, q.NewValue)
				q.Rel.Frags[amp].File.UpdateRID(p, rid, t)
				m.logWrite(p, amp, 1)
				changed = 1
			}

		case ModifyIndexed:
			// The hashed secondary index locates the row in one index
			// access (exact match on the indexed value), then the row
			// and its index row are both rewritten.
			if !q.Rel.Secondary[q.Attr] {
				panic("teradata: ModifyIndexed without index")
			}
			for amp, fr := range q.Rel.Frags {
				nd := m.AMPs[amp]
				m.ioSeq += 2
				nd.Drive.Read(p, -200-amp, m.ioSeq, m.ampPrm.PageBytes)
				for pg := 0; pg < fr.File.Pages() && changed == 0; pg++ {
					page := fr.File.Page(pg)
					for s, t := range fr.File.PageTuples(pg) {
						if page.Live(s) && t.Get(q.Attr) == q.Key {
							t.Set(q.Attr, q.NewValue)
							fr.File.UpdateRID(p, wiss.RID{Page: int32(pg), Slot: int32(s)}, t)
							m.logWrite(p, amp, 1)
							m.indexRowUpdate(p, amp)
							changed = 1
							break
						}
					}
				}
				if changed > 0 {
					break
				}
			}
		}
	})
	return Result{Elapsed: elapsed, Tuples: changed}
}

func (m *Machine) ampFor(key int32) int {
	return int(rel.Hash64(key, hashSeed) % uint64(len(m.AMPs)))
}

// hashLocate finds the row with the given primary key: one hash access (§3).
func (m *Machine) hashLocate(p *sim.Proc, amp int, r *Relation, key int32) (wiss.RID, rel.Tuple, bool) {
	nd := m.AMPs[amp]
	fr := r.Frags[amp]
	nd.UseCPU(p, m.Prm.Tera.InstrPerTupleScan)
	m.ioSeq += 2
	nd.Drive.Read(p, fr.File.ID, m.ioSeq, m.ampPrm.PageBytes)
	for pg := 0; pg < fr.File.Pages(); pg++ {
		page := fr.File.Page(pg)
		for s, t := range fr.File.PageTuples(pg) {
			if page.Live(s) && t.Get(r.KeyAttr) == key {
				return wiss.RID{Page: int32(pg), Slot: int32(s)}, t, true
			}
		}
	}
	return wiss.RID{}, rel.Tuple{}, false
}

// logWrite charges n logging I/Os at an AMP.
func (m *Machine) logWrite(p *sim.Proc, amp int, n int) {
	nd := m.AMPs[amp]
	nd.UseCPU(p, m.Prm.Tera.InstrPerInsert/2)
	for i := 0; i < n; i++ {
		m.ioSeq += 2
		nd.Drive.Write(p, -1-amp, m.ioSeq, m.Prm.TupleBytes)
	}
}

// indexRowUpdate charges one hashed secondary-index row rewrite.
func (m *Machine) indexRowUpdate(p *sim.Proc, amp int) {
	nd := m.AMPs[amp]
	m.ioSeq += 2
	nd.Drive.Read(p, -200-amp, m.ioSeq, m.ampPrm.PageBytes)
	m.ioSeq += 2
	nd.Drive.Write(p, -200-amp, m.ioSeq, m.ampPrm.PageBytes)
}
