package teradata

import (
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wiss"
)

// JoinQuery describes a (possibly two-stage) Teradata join. Selections are
// applied while scanning; there is no selection propagation (§6.1 relies on
// this to explain why joinABprime beats joinAselB on the Teradata machine).
type JoinQuery struct {
	R1    *Relation // the larger/probe-side relation (A)
	Pred1 rel.Pred
	Attr1 rel.Attr
	R2    *Relation // the build-side relation (Bprime / selB)
	Pred2 rel.Pred
	Attr2 rel.Attr

	// Optional second join (joinCselAselB): the intermediate result is
	// joined with R3 on AttrI (an attribute of the stage-one output
	// tuple) = Attr3 (an attribute of R3).
	R3    *Relation
	Pred3 rel.Pred
	Attr3 rel.Attr
	AttrI rel.Attr
}

// RunJoin executes the AMP join algorithm of §6: redistribute both source
// relations by hashing on the join attribute (skipped when the join
// attribute is the primary key), sort each AMP's partitions into temporary
// files, merge-join them, and INSERT INTO the result with logging.
func (m *Machine) RunJoin(q JoinQuery) Result {
	tc := m.Prm.Tera
	nA := len(m.AMPs)
	out := &Relation{Name: "result", KeyAttr: rel.Unique1, Secondary: map[rel.Attr]bool{}}
	for _, nd := range m.AMPs {
		st := m.stores[nd.ID]
		out.Frags = append(out.Frags, &Fragment{Node: nd, File: st.CreateFile("result")})
	}
	total := 0
	elapsed := m.run(tc.HostStartup, func(p *sim.Proc) {
		// Phase 1: scan + (maybe) redistribute both relations.
		side1 := make([][]rel.Tuple, nA)
		side2 := make([][]rel.Tuple, nA)
		m.fanout(p, func(ap *sim.Proc, amp int) {
			m.scanRoute(ap, amp, q.R1, q.Pred1, q.Attr1, side1)
			m.scanRoute(ap, amp, q.R2, q.Pred2, q.Attr2, side2)
		})

		// Phase 2: per-AMP sort-merge join.
		inter := make([][]rel.Tuple, nA)
		m.fanout(p, func(ap *sim.Proc, amp int) {
			inter[amp] = m.sortMerge(ap, amp, side1[amp], q.Attr1, side2[amp], q.Attr2)
		})

		if q.R3 != nil {
			// Stage 2: redistribute the intermediate on AttrI and R3
			// on Attr3, then sort-merge again.
			i1 := make([][]rel.Tuple, nA)
			i2 := make([][]rel.Tuple, nA)
			m.fanout(p, func(ap *sim.Proc, amp int) {
				for _, t := range inter[amp] {
					dst := int(rel.Hash64(t.Get(q.AttrI), hashSeed^0xbeef) % uint64(nA))
					m.tempInsert(ap, amp, dst)
					i1[dst] = append(i1[dst], t)
				}
				m.scanRouteSeed(ap, amp, q.R3, q.Pred3, q.Attr3, i2, hashSeed^0xbeef, true)
			})
			m.fanout(p, func(ap *sim.Proc, amp int) {
				inter[amp] = m.sortMerge(ap, amp, i1[amp], q.AttrI, i2[amp], q.Attr3)
			})
		}

		// Result storage with INSERT INTO logging.
		counts := make([]int, nA)
		m.fanout(p, func(ap *sim.Proc, amp int) {
			for _, t := range inter[amp] {
				m.insertResult(ap, amp, t, out)
			}
			counts[amp] = len(inter[amp])
		})
		for _, c := range counts {
			total += c
		}
	})
	m.catalog[out.Name] = out
	out.N = total
	return Result{Elapsed: elapsed, Tuples: total}
}

// scanRoute scans one AMP's fragment of r, applies pred, and routes
// qualifying tuples by hashing attr. When attr is the relation's primary key
// the tuples are already correctly placed and redistribution is skipped
// entirely (§6.1's 25-50% improvement).
func (m *Machine) scanRoute(ap *sim.Proc, amp int, r *Relation, pred rel.Pred, attr rel.Attr, dest [][]rel.Tuple) {
	m.scanRouteSeed(ap, amp, r, pred, attr, dest, hashSeed, attr != r.KeyAttr)
}

func (m *Machine) scanRouteSeed(ap *sim.Proc, amp int, r *Relation, pred rel.Pred, attr rel.Attr, dest [][]rel.Tuple, seed uint64, redistribute bool) {
	tc := m.Prm.Tera
	fr := r.Frags[amp]
	nd := m.AMPs[amp]
	sc := fr.File.NewScanner()
	for pg := sc.NextPage(ap); pg != nil; pg = sc.NextPage(ap) {
		nd.UseCPU(ap, tc.InstrPerTupleScan*len(pg.Tuples))
		for s, t := range pg.Tuples {
			if !pg.Live(s) || !pred.Match(t) {
				continue
			}
			if !redistribute {
				dest[amp] = append(dest[amp], t)
				continue
			}
			dst := int(rel.Hash64(t.Get(attr), seed) % uint64(len(m.AMPs)))
			m.tempInsert(ap, amp, dst)
			dest[dst] = append(dest[dst], t)
		}
	}
}

// sortMerge sorts both tuple sets into temporary files and merge-joins
// them, returning one output tuple (the side-1 tuple) per matching pair.
func (m *Machine) sortMerge(ap *sim.Proc, amp int, s1 []rel.Tuple, a1 rel.Attr, s2 []rel.Tuple, a2 rel.Attr) []rel.Tuple {
	tc := m.Prm.Tera
	st := m.stores[m.AMPs[amp].ID]
	nd := m.AMPs[amp]
	costs := wiss.SortCosts{InstrPerTupleRun: tc.InstrPerTupleSort, InstrPerTupleMerge: tc.InstrPerTupleMerge}
	sortMem := m.Prm.Memory.NodeBytes / 2

	mk := func(ts []rel.Tuple, attr rel.Attr, name string) *wiss.File {
		f := st.CreateFile(name)
		f.LoadDirect(ts, nil)
		return wiss.SortFile(ap, f, attr, sortMem, costs)
	}
	f1 := mk(s1, a1, "join.s1")
	f2 := mk(s2, a2, "join.s2")

	// Merge pass: read both sorted files sequentially.
	t1 := fileTuples(ap, f1)
	t2 := fileTuples(ap, f2)
	nd.UseCPU(ap, tc.InstrPerTupleMerge*(len(t1)+len(t2)))
	var outT []rel.Tuple
	i, j := 0, 0
	for i < len(t1) && j < len(t2) {
		v1, v2 := t1[i].Get(a1), t2[j].Get(a2)
		switch {
		case v1 < v2:
			i++
		case v1 > v2:
			j++
		default:
			// Emit the cross product of the equal runs.
			j2 := j
			for j2 < len(t2) && t2[j2].Get(a2) == v1 {
				outT = append(outT, t1[i])
				j2++
			}
			i++
		}
	}
	st.DropFile(f1)
	st.DropFile(f2)
	return outT
}

// fileTuples reads a whole file sequentially (charged) into memory.
func fileTuples(ap *sim.Proc, f *wiss.File) []rel.Tuple {
	var out []rel.Tuple
	sc := f.NewScanner()
	for pg := sc.NextPage(ap); pg != nil; pg = sc.NextPage(ap) {
		out = pg.LiveTuples(out)
	}
	return out
}
