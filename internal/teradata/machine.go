// Package teradata simulates the Teradata DBC/1012 database machine the
// paper uses as its baseline (§3): 4 Interface Processors and 20 Access
// Module Processors on a Y-net, with hash files as the only physical
// organization.
//
// The simulator reproduces the four software properties the paper's analysis
// identifies as decisive:
//
//  1. Relations are hash-partitioned on the primary key and stored in
//     hash-key order; exact-match queries cost one disk access, but there is
//     no clustered index, so every range selection scans the file.
//  2. Secondary indices are dense and themselves hashed, so a range query
//     over an indexed attribute scans the entire index (§5.1's "puzzling"
//     Table 1 rows).
//  3. Joins redistribute both relations by hashing the join attribute; each
//     AMP stores arriving tuples in temporary files in hash-key order
//     (expensive per tuple) and then sort-merge joins them. Joins on the
//     primary key skip redistribution (25-50% faster, §6.1).
//  4. INSERT INTO logs every inserted tuple (at least 3 I/Os each, §4), so
//     storing a query's result dominates many response times.
package teradata

import (
	"gamma/internal/config"
	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wiss"
)

// hashSeed is the Teradata primary-key hash function.
const hashSeed uint64 = 0x7e4ada7a

// Machine is one DBC/1012 configuration.
type Machine struct {
	Sim     *sim.Sim
	Prm     *config.Params
	ampPrm  config.Params // derived parameters for AMP-side storage
	Net     *nose.Network
	Host    *nose.Node
	AMPs    []*nose.Node
	stores  map[int]*wiss.Store
	catalog map[string]*Relation
	// ioSeq spaces out the page numbers of logging/temp-file writes so
	// the drive model treats them as random accesses.
	ioSeq int
	// fallback enables FALLBACK row copies (§4 loaded NO FALLBACK).
	fallback bool
}

// ampParams derives the parameter set AMP-side WiSS machinery runs with:
// the Intel 80286 CPU, the Hitachi drives, and the Teradata page size.
func ampParams(p *config.Params) config.Params {
	d := *p
	d.CPU = config.CPU{MIPS: p.Tera.MIPS}
	d.PageBytes = p.Tera.PageBytes
	d.Disk = config.Disk{
		SeqPos:     p.Tera.SeqPos,
		RandPos:    p.Tera.RandPos,
		USPerKB:    p.Tera.USPerKB,
		TrackBytes: p.Disk.TrackBytes,
	}
	d.Net.RingUSPerKB = p.Tera.YNetUSPerKB
	// The Y-net interfaces are not Unibus-limited; approximate them as
	// matching the net's aggregate rate.
	d.Net.NICUSPerKB = p.Tera.YNetUSPerKB
	return d
}

// NewMachine builds the paper's test configuration (§3): 20 AMPs, each
// modeled with one drive standing in for its two 525 MB Hitachi DSUs.
func NewMachine(s *sim.Sim, prm *config.Params) *Machine {
	m := &Machine{
		Sim:     s,
		Prm:     prm,
		ampPrm:  ampParams(prm),
		stores:  make(map[int]*wiss.Store),
		catalog: make(map[string]*Relation),
	}
	m.Net = nose.NewNetwork(s, m.ampPrm.Net, m.ampPrm.CPU)
	m.Host = m.Net.AddNode(false, m.ampPrm.Disk)
	for i := 0; i < prm.Tera.AMPs; i++ {
		nd := m.Net.AddNode(true, m.ampPrm.Disk)
		m.AMPs = append(m.AMPs, nd)
		m.stores[nd.ID] = wiss.NewStore(nd, &m.ampPrm)
	}
	return m
}

// Relation is a hash-partitioned Teradata relation.
type Relation struct {
	Name    string
	N       int
	KeyAttr rel.Attr // the primary (hash) key
	Frags   []*Fragment
	// SecondaryOn lists dense secondary index attributes.
	Secondary map[rel.Attr]bool
}

// Fragment is one AMP's portion: the base file in hash-key order plus the
// local rows of any dense secondary index (modeled as entry counts; the
// index rows are themselves hashed, so only their volume matters — a range
// query must scan all of them, §3).
type Fragment struct {
	Node *nose.Node
	File *wiss.File
}

// Load creates a relation hash-partitioned on key across all AMPs. Loading
// charges no simulated time.
func (m *Machine) Load(name string, key rel.Attr, secondary []rel.Attr, tuples []rel.Tuple) *Relation {
	k := len(m.AMPs)
	parts := make([][]rel.Tuple, k)
	for _, t := range tuples {
		j := int(rel.Hash64(t.Get(key), hashSeed) % uint64(k))
		parts[j] = append(parts[j], t)
	}
	r := &Relation{Name: name, N: len(tuples), KeyAttr: key, Secondary: map[rel.Attr]bool{}}
	for _, a := range secondary {
		r.Secondary[a] = true
	}
	for i, nd := range m.AMPs {
		st := m.stores[nd.ID]
		f := st.CreateFile(name)
		f.LoadDirect(parts[i], nil)
		r.Frags = append(r.Frags, &Fragment{Node: nd, File: f})
	}
	m.catalog[name] = r
	return r
}

// Relation returns a catalogued relation.
func (m *Machine) Relation(name string) (*Relation, bool) {
	r, ok := m.catalog[name]
	return r, ok
}

// ResetPools clears all AMP buffer pools so queries start cold.
func (m *Machine) ResetPools() {
	for _, st := range m.stores {
		st.Pool().Reset()
	}
}

// Result is a Teradata query outcome.
type Result struct {
	Elapsed sim.Dur
	Tuples  int
}

// run executes body as the host process and returns the elapsed time.
func (m *Machine) run(startup sim.Dur, body func(p *sim.Proc)) sim.Dur {
	m.ResetPools()
	start := m.Sim.Now()
	var elapsed sim.Dur
	m.Sim.Spawn("tera-host", func(p *sim.Proc) {
		m.Host.CPU.Use(p, startup)
		body(p)
		elapsed = p.Now() - start
	})
	m.Sim.Run()
	if end := m.Sim.Now() - start; end > elapsed {
		elapsed = end
	}
	return elapsed
}

// fanout runs fn concurrently on every AMP (one process each) and blocks the
// host until all complete.
func (m *Machine) fanout(p *sim.Proc, fn func(ap *sim.Proc, amp int)) {
	done := m.Sim.NewWaitQ("tera-barrier")
	remaining := len(m.AMPs)
	for i := range m.AMPs {
		amp := i
		m.Sim.Spawn("amp", func(ap *sim.Proc) {
			fn(ap, amp)
			remaining--
			if remaining == 0 {
				done.WakeAll()
			}
		})
	}
	if remaining > 0 {
		done.Park(p)
	}
}

// Fallback mirrors Teradata's FALLBACK option: every row is also written to
// a "fallback" copy on a second AMP. §4 notes the benchmark relations were
// loaded NO FALLBACK; enabling it roughly doubles insert-side work.
var fallbackOffset = 7 // fallback copy lands on AMP (primary+7) mod n

// Fallback toggles fallback-copy maintenance for subsequent queries.
func (m *Machine) SetFallback(on bool) { m.fallback = on }

// insertResult charges the INSERT INTO path for one result tuple arriving at
// the destination AMP chosen by hashing the result's primary key: Y-net
// transfer plus the logging I/Os and CPU (§4). The caller is the producing
// AMP's process; the destination's drive and CPU serialize contention.
func (m *Machine) insertResult(p *sim.Proc, fromAMP int, t rel.Tuple, out *Relation) {
	tc := m.Prm.Tera
	dst := int(rel.Hash64(t.Get(out.KeyAttr), hashSeed) % uint64(len(m.AMPs)))
	from, to := m.AMPs[fromAMP], m.AMPs[dst]
	m.Net.TransferBulk(p, from, to, m.Prm.TupleBytes)
	to.CPU.Use(p, m.ampPrm.CPU.Time(tc.InstrPerInsert))
	for i := 0; i < tc.InsertIOs; i++ {
		// Logging and data-block writes land in distinct areas: random.
		m.ioSeq += 2
		to.Drive.Write(p, -1-dst, m.ioSeq, m.Prm.TupleBytes)
	}
	fr := out.Frags[dst]
	fr.File.LoadAppend(t)
	if m.fallback {
		// FALLBACK: ship and write the row's fallback copy on another
		// AMP (asynchronously; the primary insert does not wait).
		fb := (dst + fallbackOffset) % len(m.AMPs)
		fbNode := m.AMPs[fb]
		m.Net.TransferBulk(p, to, fbNode, m.Prm.TupleBytes)
		fbNode.CPU.UseAsync(m.ampPrm.CPU.Time(tc.InstrPerInsert / 2))
		for i := 0; i < tc.InsertIOs; i++ {
			m.ioSeq += 2
			fbNode.Drive.WriteAsync(-300-fb, m.ioSeq, m.Prm.TupleBytes)
		}
	}
}

// tempInsert charges one tuple of join redistribution: Y-net transfer plus
// the "store in temporary file in hash-key order" cost at the receiver (§6).
func (m *Machine) tempInsert(p *sim.Proc, fromAMP, toAMP int) {
	tc := m.Prm.Tera
	from, to := m.AMPs[fromAMP], m.AMPs[toAMP]
	m.Net.TransferBulk(p, from, to, m.Prm.TupleBytes)
	// The receiving AMP's work is not acknowledged per tuple: it queues on
	// the destination's CPU and drive (the sort phase that follows reads
	// from the same drive, so unfinished temp writes still delay it).
	to.CPU.UseAsync(m.ampPrm.CPU.Time(tc.InstrPerTempInsert))
	for i := 0; i < tc.TempInsertIOs; i++ {
		m.ioSeq += 2
		to.Drive.WriteAsync(-100-toAMP, m.ioSeq, m.Prm.TupleBytes)
	}
}
