package sim

import (
	"gamma/internal/trace"
)

// Shard is one partition of a simulation: a private event heap and clock
// plus the Resources, WaitQs, and Procs homed on it. An unpartitioned
// simulation is exactly one shard (shard 0). Under the window scheduler a
// shard's entire state is touched only by the worker currently running its
// window; cross-shard sends are staged in the sender's private outbox and
// moved into the destination heaps by the coordinator between windows, so
// the kernel runs its parallel windows with no locks at all.
type Shard struct {
	id int
	s  *Sim

	events eventHeap
	now    Time
	stamp  uint64 // per-shard scheduling counter (ord source when lookahead > 0)

	// Hand-off channel for this shard's process discipline: a process
	// signals it after parking; the shard's executor blocks on it after
	// resuming a process.
	yield   chan struct{}
	parked  int
	procs   int
	failure any // panic value escaped from a process or event on this shard

	executed uint64

	// Earliest-output-time (EOT) state, read by the window scheduler at
	// each barrier (see Sim.runWindows).
	//
	// quiet is the shard's standing promise: it will initiate no
	// cross-shard send before this absolute instant. Raised by Promise,
	// enforced at the send site, and it expires naturally as the shard's
	// clock reaches it. promised counts Promise calls for WindowStats.
	quiet    Time
	promised uint64
	// outFloor and chanFloor are the shard's declared delivery floors:
	// every cross-shard send from this shard arrives at least
	// max(lookahead, outFloor) after the sender's clock — or the
	// per-destination chanFloor entry toward destinations that declare a
	// larger one. Both are raise-only (see SetOutFloor).
	outFloor  Dur
	chanFloor map[int]Dur
	maxChan   Dur // largest chanFloor entry; the scheduler skips the exact per-destination terms when no entry exceeds the base floor

	// outbox stages the cross-shard sends this shard makes during a
	// parallel window, bucketed per destination with pooled buffers.
	outbox outbox

	// grp is the fusion group this shard currently belongs to under the
	// window scheduler (see fusion.go); rebuilt by the coordinator between
	// windows, read by schedule to route intra-group sends directly.
	grp *group

	// Window-scoped trace state: events emitted while firing are buffered
	// with the firing event's key; the coordinator merges every buffered
	// event that can no longer be preceded into the sink at each barrier
	// (ragged EOT windows leave a tail buffered across barriers).
	tbuf      []trace.Keyed
	firingOrd uint64
	emitIdx   int
	bound     Time   // exclusive upper time bound of the current window
	wEvents   uint64 // events fired inside parallel windows (WindowStats)
}

func newShard(s *Sim, id int) *Shard {
	return &Shard{id: id, s: s, yield: make(chan struct{})}
}

// ID returns the shard's index (0 for the default shard).
func (sh *Shard) ID() int { return sh.id }

// Sim returns the simulation the shard belongs to.
func (sh *Shard) Sim() *Sim { return sh.s }

// Now returns the shard's view of the current simulated time: its own
// clock inside a parallel window, the global clock otherwise.
func (sh *Shard) Now() Time { return sh.s.clockOf(sh) }

// At schedules fn at absolute time t on this shard, from this shard's
// context. Safe in every execution mode; inside a parallel window the
// caller must be executing on this shard.
func (sh *Shard) At(t Time, fn func()) { sh.s.schedule(sh, sh, t, nil, fn) }

// After schedules fn d from now on this shard.
func (sh *Shard) After(d Dur, fn func()) { sh.At(sh.Now()+d, fn) }

// Send schedules fn at absolute time t on shard dst, from this shard's
// context. With positive lookahead t must be at least the sender's clock
// plus the effective channel floor — the declared lookahead raised by the
// sender's output floor and any per-channel floor toward dst (the
// conservative contract; violations panic). During a parallel window the
// event is staged in this shard's outbox and becomes visible at the next
// barrier.
func (sh *Shard) Send(dst *Shard, t Time, fn func()) { sh.s.schedule(sh, dst, t, nil, fn) }

// Spawn starts fn as a new process homed on this shard at the shard's
// current time, from this shard's context.
func (sh *Shard) Spawn(name string, fn func(p *Proc)) *Proc {
	return sh.s.spawnOn(sh, sh.Now(), name, fn)
}

// Emit forwards a structured event to the sink, attributed to this shard —
// safe in every execution mode, including parallel windows.
func (sh *Shard) Emit(e trace.Event) { sh.s.emitOn(sh, e) }

// Promise asserts that this shard will initiate no cross-shard send before
// absolute time t: the model knows what it is occupied with until then — a
// disk service in flight, a computation burst, a control-path gap — and the
// EOT window scheduler may extend every other shard's window past this
// shard's next local event accordingly. A promise is raise-only while
// pending (Promise with t at or below the current promise, or in the past,
// is a no-op) and expires naturally once the shard's clock reaches it; a
// cross-shard send initiated while the clock is still short of the promise
// panics, like any other conservative-contract violation. Promises only
// influence scheduling under positive lookahead, but they are legal — and
// identically counted — in every execution mode, so a model that promises
// stays byte-identical between the serial oracle and parallel windows.
func (sh *Shard) Promise(t Time) {
	sh.promised++
	if t > sh.quiet {
		sh.quiet = t
	}
}

// Promised returns the shard's current promise: the earliest instant it may
// initiate a cross-shard send (zero when it never promised or every promise
// has expired into the past).
func (sh *Shard) Promised() Time { return sh.quiet }

// SetOutFloor declares that every cross-shard send initiated by this shard
// arrives at least d after the sender's clock — a per-sender delivery floor
// the model can prove (the nose network floors every remote arrival at
// Net.MinLatency, whatever the simulation's declared lookahead). The window
// scheduler adds the floor to the shard's earliest output time when bounding
// its neighbors, and the send site enforces it. Raise-only: a smaller d is
// ignored, because neighbors may already hold windows computed from the
// higher floor — lowering a declared floor can never be proven safe.
func (sh *Shard) SetOutFloor(d Dur) {
	if d > sh.outFloor {
		sh.outFloor = d
	}
}

// OutFloor returns the declared per-sender delivery floor.
func (sh *Shard) OutFloor() Dur { return sh.outFloor }

// SetChannelFloor declares a per-channel delivery floor: sends from this
// shard to dst arrive at least d after the sender's clock. It refines
// SetOutFloor for one destination (the effective floor of a send is the
// largest of the lookahead, the output floor, and the channel floor), which
// lets a model with one slow link and many fast ones grant large windows
// across the slow channel without overstating the fast ones. Raise-only,
// like SetOutFloor. Declaring a floor toward the shard itself is a no-op —
// same-shard scheduling is unconstrained.
func (sh *Shard) SetChannelFloor(dst *Shard, d Dur) {
	if dst == sh {
		return
	}
	if d > sh.chanFloor[dst.id] {
		if sh.chanFloor == nil {
			sh.chanFloor = make(map[int]Dur)
		}
		sh.chanFloor[dst.id] = d
		if d > sh.maxChan {
			sh.maxChan = d
		}
	}
}

// baseFloor returns the shard's generic output floor: the declared
// lookahead raised by its output floor (per-channel floors can only raise
// it further toward specific destinations, so this is the minimum over all
// outgoing channels).
func (sh *Shard) baseFloor() Dur {
	if sh.outFloor > sh.s.lookahead {
		return sh.outFloor
	}
	return sh.s.lookahead
}

// eot returns the shard's earliest output time ignoring floors: the
// earliest instant it could initiate a cross-shard send — never before its
// next pending event fires, nor before its standing promise expires.
// infTime when the heap is empty (an idle shard initiates nothing until a
// delivery at the next barrier wakes it).
func (sh *Shard) eot() Time {
	t, ok := sh.events.peek()
	if !ok {
		return infTime
	}
	if sh.quiet > t {
		t = sh.quiet
	}
	return t
}

// eotPlusBase is the earliest instant a send from this shard could arrive
// anywhere, ignoring per-channel floors.
func (sh *Shard) eotPlusBase() Time {
	t := sh.eot()
	if t == infTime {
		return infTime
	}
	return t + sh.baseFloor()
}

// floorTo returns the effective conservative floor on sends from sh to dst:
// the declared lookahead raised by the shard's output floor and any
// per-channel floor toward dst.
func (sh *Shard) floorTo(dst *Shard) Dur {
	f := sh.s.lookahead
	if sh.outFloor > f {
		f = sh.outFloor
	}
	if sh.chanFloor != nil {
		if cf := sh.chanFloor[dst.id]; cf > f {
			f = cf
		}
	}
	return f
}

// outbox stages one window's cross-shard sends, bucketed by destination
// shard. Destination buckets and the active list are pooled, so a steady
// message rate allocates nothing after the first few windows, and the
// structure is strictly shard-private: the owner appends during its window,
// the coordinator drains between windows. Replacing the old mutex-guarded
// per-destination inbox with sender-side batching removed the last lock
// from the kernel.
type outbox struct {
	idx []int32   // idx[dst] = bucket index + 1; 0 = dst inactive this window
	dst []int32   // active destination shard ids, in first-send order
	evs [][]event // evs[k] holds the window's events for destination dst[k]
}

// put stages e for delivery to shard dst, opening a bucket on first use.
func (o *outbox) put(nshards, dst int, e event) {
	if len(o.idx) < nshards {
		o.idx = append(o.idx, make([]int32, nshards-len(o.idx))...)
	}
	k := o.idx[dst]
	if k == 0 {
		o.dst = append(o.dst, int32(dst))
		if len(o.evs) < len(o.dst) {
			o.evs = append(o.evs, nil)
		}
		k = int32(len(o.dst))
		o.idx[dst] = k
	}
	o.evs[k-1] = append(o.evs[k-1], e)
}
