package sim

import (
	"sync"

	"gamma/internal/trace"
)

// Shard is one partition of a simulation: a private event heap and clock
// plus the Resources, WaitQs, and Procs homed on it. An unpartitioned
// simulation is exactly one shard (shard 0). Under the window scheduler a
// shard's entire state is touched only by the worker currently running its
// window, so shard-local operations need no synchronization; the only
// cross-shard channels are the inbox (mutex-guarded timestamped events) and
// the barrier-merged trace buffer.
type Shard struct {
	id int
	s  *Sim

	events eventHeap
	now    Time
	stamp  uint64 // per-shard scheduling counter (ord source when lookahead > 0)

	// Hand-off channel for this shard's process discipline: a process
	// signals it after parking; the shard's executor blocks on it after
	// resuming a process.
	yield  chan struct{}
	parked int
	procs  int
	failure any // panic value escaped from a process or event on this shard

	executed uint64

	// inbox receives cross-shard events during parallel windows; the
	// coordinator drains it into the heap at each barrier.
	inbox inbox

	// Window-scoped trace state: events emitted while firing are buffered
	// with the firing event's key and merged into the sink at the barrier.
	tbuf      []trace.Keyed
	firingOrd uint64
	emitIdx   int
	bound     Time // exclusive upper time bound of the current window
}

func newShard(s *Sim, id int) *Shard {
	return &Shard{id: id, s: s, yield: make(chan struct{})}
}

// ID returns the shard's index (0 for the default shard).
func (sh *Shard) ID() int { return sh.id }

// Sim returns the simulation the shard belongs to.
func (sh *Shard) Sim() *Sim { return sh.s }

// Now returns the shard's view of the current simulated time: its own
// clock inside a parallel window, the global clock otherwise.
func (sh *Shard) Now() Time { return sh.s.clockOf(sh) }

// At schedules fn at absolute time t on this shard, from this shard's
// context. Safe in every execution mode; inside a parallel window the
// caller must be executing on this shard.
func (sh *Shard) At(t Time, fn func()) { sh.s.schedule(sh, sh, t, nil, fn) }

// After schedules fn d from now on this shard.
func (sh *Shard) After(d Dur, fn func()) { sh.At(sh.Now()+d, fn) }

// Send schedules fn at absolute time t on shard dst, from this shard's
// context. With positive lookahead t must be at least the sender's clock
// plus the lookahead (the conservative contract; violations panic). During
// a parallel window the event travels through dst's inbox and becomes
// visible at the next barrier.
func (sh *Shard) Send(dst *Shard, t Time, fn func()) { sh.s.schedule(sh, dst, t, nil, fn) }

// Spawn starts fn as a new process homed on this shard at the shard's
// current time, from this shard's context.
func (sh *Shard) Spawn(name string, fn func(p *Proc)) *Proc {
	return sh.s.spawnOn(sh, sh.Now(), name, fn)
}

// Emit forwards a structured event to the sink, attributed to this shard —
// safe in every execution mode, including parallel windows.
func (sh *Shard) Emit(e trace.Event) { sh.s.emitOn(sh, e) }

// drainInbox moves buffered cross-shard events into the heap. Called by
// the coordinator between windows, when no worker touches the shard. The
// drained buffer is recycled so a steady message rate allocates nothing.
func (sh *Shard) drainInbox() {
	sh.inbox.mu.Lock()
	evs := sh.inbox.evs
	sh.inbox.evs = sh.inbox.spare
	sh.inbox.mu.Unlock()
	for _, e := range evs {
		sh.events.push(e)
	}
	clear(evs)
	sh.inbox.spare = evs[:0]
}

// inbox is the one mutex in the kernel: a bounded staging buffer for
// events sent into a shard from other shards' windows. Contention is a
// couple of inter-node messages per window, not per event.
type inbox struct {
	mu    sync.Mutex
	evs   []event
	spare []event // recycled drained buffer
}

func (b *inbox) put(e event) {
	b.mu.Lock()
	b.evs = append(b.evs, e)
	b.mu.Unlock()
}
