package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvancesOnSleep(t *testing.T) {
	s := New()
	var woke Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		woke = p.Now()
	})
	end := s.Run()
	if woke != 5*Millisecond {
		t.Errorf("woke at %v, want 5ms", woke)
	}
	if end != 5*Millisecond {
		t.Errorf("run ended at %v, want 5ms", end)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestEqualTimeEventsFireInScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestResourceSerializesRequests(t *testing.T) {
	s := New()
	r := s.NewResource("disk")
	var finish []Time
	for i := 0; i < 3; i++ {
		s.Spawn("user", func(p *Proc) {
			r.Use(p, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	s.Run()
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("finish[%d] = %v, want %v", i, finish[i], want[i])
		}
	}
	busy, n, waited := r.Stats()
	if busy != 30*Millisecond || n != 3 {
		t.Errorf("stats busy=%v n=%d, want 30ms, 3", busy, n)
	}
	if waited != 30*Millisecond { // 0 + 10 + 20
		t.Errorf("waited = %v, want 30ms", waited)
	}
}

func TestResourceIsFIFOAcrossArrivalTimes(t *testing.T) {
	s := New()
	r := s.NewResource("r")
	var order []string
	spawnAt := func(at Time, name string) {
		s.At(at, func() {
			s.Spawn(name, func(p *Proc) {
				r.Use(p, 5*Millisecond)
				order = append(order, name)
			})
		})
	}
	spawnAt(0, "a")
	spawnAt(1, "b")
	spawnAt(2, "c")
	s.Run()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v, want [a b c]", order)
	}
}

func TestUseAsyncDoesNotBlockCaller(t *testing.T) {
	s := New()
	r := s.NewResource("r")
	var tAfter Time
	var done Time
	s.Spawn("p", func(p *Proc) {
		done = r.UseAsync(8 * Millisecond)
		tAfter = p.Now()
	})
	s.Run()
	if tAfter != 0 {
		t.Errorf("caller advanced to %v, want 0", tAfter)
	}
	if done != 8*Millisecond {
		t.Errorf("completion = %v, want 8ms", done)
	}
}

func TestWaitQParkAndWake(t *testing.T) {
	s := New()
	q := s.NewWaitQ("q")
	var consumed Time
	s.Spawn("consumer", func(p *Proc) {
		q.Park(p)
		consumed = p.Now()
	})
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(42 * Millisecond)
		q.WakeOne()
	})
	s.Run()
	if consumed != 42*Millisecond {
		t.Errorf("consumer resumed at %v, want 42ms", consumed)
	}
}

func TestWaitQWakeAll(t *testing.T) {
	s := New()
	q := s.NewWaitQ("q")
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			q.Park(p)
			woken++
		})
	}
	s.Spawn("boss", func(p *Proc) {
		p.Sleep(1)
		if n := q.WakeAll(); n != 5 {
			t.Errorf("WakeAll woke %d, want 5", n)
		}
	})
	s.Run()
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := New()
	q := s.NewWaitQ("q")
	s.Spawn("stuck", func(p *Proc) { q.Park(p) })
	s.Run()
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected process panic to propagate")
		}
	}()
	s := New()
	s.Spawn("bad", func(p *Proc) { panic("boom") })
	s.Run()
}

func TestRunUntilAdvancesClockOnly(t *testing.T) {
	s := New()
	fired := false
	s.At(100, func() { fired = true })
	s.RunUntil(50)
	if fired {
		t.Error("event at t=100 fired before deadline 50")
	}
	if s.Now() != 50 {
		t.Errorf("clock = %v, want 50", s.Now())
	}
	s.RunUntil(200)
	if !fired {
		t.Error("event at t=100 did not fire by deadline 200")
	}
}

// TestDeterminism: the same program produces the same schedule every run.
func TestDeterminism(t *testing.T) {
	runOnce := func() []Time {
		s := New()
		r := s.NewResource("r")
		var ts []Time
		for i := 0; i < 20; i++ {
			d := Dur((i*37)%11 + 1)
			s.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				r.Use(p, d*2)
				ts = append(ts, p.Now())
			})
		}
		s.Run()
		return ts
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: a FIFO resource's total busy time equals the sum of service
// demands, and the final completion horizon is at least that sum.
func TestResourceConservationProperty(t *testing.T) {
	f := func(demands []uint16) bool {
		s := New()
		r := s.NewResource("r")
		var sum Dur
		for _, d := range demands {
			d := Dur(d)
			sum += d
			s.Spawn("p", func(p *Proc) { r.Use(p, d) })
		}
		end := s.Run()
		busy, n, _ := r.Stats()
		return busy == sum && n == int64(len(demands)) && end == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Sleep(d) always advances the clock by exactly d regardless of
// other concurrent sleepers.
func TestSleepExactProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		s := New()
		ok := true
		for _, d := range ds {
			d := Dur(d)
			s.Spawn("p", func(p *Proc) {
				start := p.Now()
				p.Sleep(d)
				if p.Now()-start != d {
					ok = false
				}
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v", got)
	}
}
