package sim

import "testing"

func TestWaitUntilFutureAndPast(t *testing.T) {
	s := New()
	var at1, at2 Time
	s.Spawn("p", func(p *Proc) {
		p.WaitUntil(25)
		at1 = p.Now()
		p.WaitUntil(10) // already past: no-op
		at2 = p.Now()
	})
	s.Run()
	if at1 != 25 || at2 != 25 {
		t.Errorf("WaitUntil: %v, %v", at1, at2)
	}
}

func TestWaitUntilWithAsyncResource(t *testing.T) {
	// The UseAsync + WaitUntil pair is the read-ahead idiom: issue work,
	// continue, then block until it completes.
	s := New()
	r := s.NewResource("disk")
	var overlapped Time
	s.Spawn("p", func(p *Proc) {
		done := r.UseAsync(20 * Millisecond)
		p.Sleep(15 * Millisecond) // "CPU work" overlapping the I/O
		p.WaitUntil(done)
		overlapped = p.Now()
	})
	s.Run()
	if overlapped != 20*Millisecond {
		t.Errorf("overlap finished at %v, want 20ms (not 35ms)", overlapped)
	}
}

func TestTraceHook(t *testing.T) {
	s := New()
	var lines int
	s.SetTrace(func(at Time, format string, args ...any) { lines++ })
	s.Spawn("p", func(p *Proc) {
		p.Tracef("hello %d", 1)
		p.Sleep(1)
		p.Tracef("world")
	})
	s.Run()
	if lines != 2 {
		t.Errorf("trace lines = %d", lines)
	}
	s.SetTrace(nil)
}

func TestSpawnAtFuture(t *testing.T) {
	s := New()
	var started Time
	s.SpawnAt(100, "late", func(p *Proc) { started = p.Now() })
	s.Run()
	if started != 100 {
		t.Errorf("started at %v", started)
	}
}
