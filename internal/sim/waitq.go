package sim

// WaitQ is a FIFO queue of parked processes, the building block for
// condition-style blocking (mailboxes, flow-control windows, barriers).
//
// The queue is a slice with a head cursor: dequeues advance head, removals
// (timeouts, kills) tombstone their slot via the index cached on the Proc,
// so both WakeOne and remove are O(1). The backing slice is recycled each
// time the queue drains, so a steady park/wake cycle allocates nothing.
// A wait queue is homed on a shard; under the window scheduler it must only
// be touched from that shard's context (its state is shard-private and
// unlocked).
type WaitQ struct {
	sim   *Sim
	shard *Shard
	name  string
	procs []*Proc // procs[head:] holds waiters in FIFO order; nil = removed
	head  int     // index of the longest-waiting live entry
	n     int     // number of live (non-nil) entries
}

// NewWaitQ creates a named wait queue homed on the scheduling context's
// shard.
func (s *Sim) NewWaitQ(name string) *WaitQ {
	return &WaitQ{sim: s, shard: s.ctxShard(), name: name}
}

// NewWaitQ creates a named wait queue homed on this shard.
func (sh *Shard) NewWaitQ(name string) *WaitQ {
	return &WaitQ{sim: sh.s, shard: sh, name: name}
}

// enqueue appends p and records its slot for O(1) removal.
func (q *WaitQ) enqueue(p *Proc) {
	p.wqIdx = len(q.procs)
	q.procs = append(q.procs, p)
	q.n++
}

// Park suspends p until another process calls WakeOne or WakeAll.
func (q *WaitQ) Park(p *Proc) {
	p.parkSeq++
	p.wq = q
	q.enqueue(p)
	p.park()
	p.wq = nil
}

// ParkTimeout parks p until woken or until d elapses, whichever comes first.
// It reports true if the process was woken normally and false on timeout.
// The timer and a WakeOne/WakeAll/Kill race for the wake; whoever dequeues
// the process first owns it, so the process is never woken twice.
func (q *WaitQ) ParkTimeout(p *Proc, d Dur) bool {
	p.parkSeq++
	p.wq = q
	seq := p.parkSeq
	q.enqueue(p)
	timedOut := false
	q.shard.After(d, func() {
		// The parkSeq check makes a timer from an earlier, already-woken
		// park harmless even if p has since re-parked on this queue.
		if p.wq == q && p.parkSeq == seq && q.remove(p) {
			timedOut = true
			p.wq = nil
			p.wake(q.sim.clockOf(q.shard))
		}
	})
	p.park()
	p.wq = nil
	return !timedOut
}

// remove deletes p from the queue without waking it, reporting whether it
// was queued. The slot index cached at enqueue makes this O(1); the identity
// check rejects stale indexes left over from earlier parks.
func (q *WaitQ) remove(p *Proc) bool {
	if p.wqIdx < q.head || p.wqIdx >= len(q.procs) || q.procs[p.wqIdx] != p {
		return false
	}
	q.procs[p.wqIdx] = nil
	q.n--
	q.compact()
	return true
}

// WakeOne resumes the longest-waiting parked process, if any, at the current
// time. It reports whether a process was woken.
func (q *WaitQ) WakeOne() bool {
	for q.head < len(q.procs) {
		p := q.procs[q.head]
		q.procs[q.head] = nil
		q.head++
		if p != nil {
			q.n--
			q.compact()
			p.wake(q.sim.clockOf(q.shard))
			return true
		}
	}
	q.compact()
	return false
}

// WakeAll resumes every parked process at the current time and returns how
// many were woken.
func (q *WaitQ) WakeAll() int {
	woken := 0
	now := q.sim.clockOf(q.shard)
	for i := q.head; i < len(q.procs); i++ {
		if p := q.procs[i]; p != nil {
			p.wake(now)
			woken++
		}
	}
	q.procs = q.procs[:0]
	q.head = 0
	q.n = 0
	return woken
}

// compact recycles the backing slice once the queue drains, so the next
// park reuses slot 0 instead of growing the slice forever.
func (q *WaitQ) compact() {
	if q.n == 0 {
		q.procs = q.procs[:0]
		q.head = 0
	}
}

// Len returns the number of parked processes.
func (q *WaitQ) Len() int { return q.n }
