package sim

// WaitQ is a FIFO queue of parked processes, the building block for
// condition-style blocking (mailboxes, flow-control windows, barriers).
type WaitQ struct {
	sim   *Sim
	name  string
	procs []*Proc
}

// NewWaitQ creates a named wait queue on s.
func (s *Sim) NewWaitQ(name string) *WaitQ {
	return &WaitQ{sim: s, name: name}
}

// Park suspends p until another process calls WakeOne or WakeAll.
func (q *WaitQ) Park(p *Proc) {
	q.procs = append(q.procs, p)
	p.park()
}

// WakeOne resumes the longest-waiting parked process, if any, at the current
// time. It reports whether a process was woken.
func (q *WaitQ) WakeOne() bool {
	if len(q.procs) == 0 {
		return false
	}
	p := q.procs[0]
	q.procs = q.procs[1:]
	p.wake(q.sim.now)
	return true
}

// WakeAll resumes every parked process at the current time and returns how
// many were woken.
func (q *WaitQ) WakeAll() int {
	n := len(q.procs)
	for _, p := range q.procs {
		p.wake(q.sim.now)
	}
	q.procs = nil
	return n
}

// Len returns the number of parked processes.
func (q *WaitQ) Len() int { return len(q.procs) }
