package sim

// WaitQ is a FIFO queue of parked processes, the building block for
// condition-style blocking (mailboxes, flow-control windows, barriers).
type WaitQ struct {
	sim   *Sim
	name  string
	procs []*Proc
}

// NewWaitQ creates a named wait queue on s.
func (s *Sim) NewWaitQ(name string) *WaitQ {
	return &WaitQ{sim: s, name: name}
}

// Park suspends p until another process calls WakeOne or WakeAll.
func (q *WaitQ) Park(p *Proc) {
	p.parkSeq++
	p.wq = q
	q.procs = append(q.procs, p)
	p.park()
	p.wq = nil
}

// ParkTimeout parks p until woken or until d elapses, whichever comes first.
// It reports true if the process was woken normally and false on timeout.
// The timer and a WakeOne/WakeAll/Kill race for the wake; whoever dequeues
// the process first owns it, so the process is never woken twice.
func (q *WaitQ) ParkTimeout(p *Proc, d Dur) bool {
	p.parkSeq++
	p.wq = q
	seq := p.parkSeq
	q.procs = append(q.procs, p)
	timedOut := false
	q.sim.After(d, func() {
		// The parkSeq check makes a timer from an earlier, already-woken
		// park harmless even if p has since re-parked on this queue.
		if p.wq == q && p.parkSeq == seq && q.remove(p) {
			timedOut = true
			p.wq = nil
			p.wake(q.sim.now)
		}
	})
	p.park()
	p.wq = nil
	return !timedOut
}

// remove deletes p from the queue without waking it, reporting whether it
// was queued.
func (q *WaitQ) remove(p *Proc) bool {
	for i, queued := range q.procs {
		if queued == p {
			q.procs = append(q.procs[:i], q.procs[i+1:]...)
			return true
		}
	}
	return false
}

// WakeOne resumes the longest-waiting parked process, if any, at the current
// time. It reports whether a process was woken.
func (q *WaitQ) WakeOne() bool {
	if len(q.procs) == 0 {
		return false
	}
	p := q.procs[0]
	q.procs = q.procs[1:]
	p.wake(q.sim.now)
	return true
}

// WakeAll resumes every parked process at the current time and returns how
// many were woken.
func (q *WaitQ) WakeAll() int {
	n := len(q.procs)
	for _, p := range q.procs {
		p.wake(q.sim.now)
	}
	q.procs = nil
	return n
}

// Len returns the number of parked processes.
func (q *WaitQ) Len() int { return len(q.procs) }
