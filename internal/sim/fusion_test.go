package sim

import (
	"bytes"
	"fmt"
	"testing"

	"gamma/internal/trace"
)

// testFusion is an aggressive policy configuration for tests: short
// evaluation periods and frequent probes so fuse/split transitions happen
// within small workloads.
func testFusion() Fusion {
	return Fusion{FuseBelow: 24, SplitAbove: 256, EvalRounds: 4, ProbePeriods: 2, Quantum: 512}
}

// buildPhasedRing is buildKernelCluster with a workload phase change: each
// node runs thinHops rounds of a single local event per hop (windows far
// thinner than any fuse threshold), then heavyHops rounds of heavyWork
// chained events per hop (windows far thicker than any split threshold).
// The thin phase drives the adaptive policy up to full fusion; the heavy
// phase must make it split back down.
func buildPhasedRing(s *Sim, nodes, thinHops, heavyHops, heavyWork int) {
	shards := make([]*Shard, nodes)
	cpus := make([]*Resource, nodes)
	for i := 0; i < nodes; i++ {
		sh := s.DefaultShard()
		if s.Partitioned() && i > 0 {
			sh = s.AddShard()
		}
		shards[i] = sh
		cpus[i] = sh.NewResource(fmt.Sprintf("cpu%d", i))
	}
	var hop func(i, remaining int) func()
	hop = func(i, remaining int) func() {
		return func() {
			sh := shards[i]
			n := 1
			if remaining < heavyHops {
				n = heavyWork
			}
			var step func()
			step = func() {
				cpus[i].UseAsync(1)
				n--
				if n > 0 {
					sh.After(0, step)
				} else if remaining > 0 {
					next := (i + 1) % len(shards)
					sh.Send(shards[next], sh.Now()+kernelLookahead, hop(next, remaining-1))
				}
			}
			step()
		}
	}
	for i := range shards {
		shards[i].At(Time(i%4), hop(i, thinHops+heavyHops))
	}
}

// runPhasedRing runs the phased ring under a kernel/fusion configuration
// and returns the trace bytes, stats, executed count, and final clock.
// workers <= 1 is the serial oracle (fusion never engages: runWindows only
// runs with workers > 1).
func runPhasedRing(t testing.TB, workers int, f Fusion, traced bool) (traceBytes []byte, ws WindowStats, executed uint64, end Time) {
	t.Helper()
	s := New()
	s.Partition(kernelLookahead)
	s.SetWorkers(workers)
	s.SetFusion(f)
	var col *trace.Collector
	if traced {
		col = trace.NewCollector()
		s.SetSink(col)
	}
	buildPhasedRing(s, 8, 64, 24, 400)
	end = s.Run()
	ws = s.WindowStats()
	executed = s.Executed()
	if traced {
		var buf bytes.Buffer
		if err := col.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		traceBytes = buf.Bytes()
	}
	return traceBytes, ws, executed, end
}

// TestFusionTraceByteIdentity: the adaptive scheduler must produce
// byte-identical traces, event counts, and final clocks at every fusion
// configuration — off, adaptive (with transitions firing), and starting
// fully fused — against the serial oracle.
func TestFusionTraceByteIdentity(t *testing.T) {
	ref, _, refExec, refEnd := runPhasedRing(t, 1, Fusion{Off: true}, true)
	if len(ref) == 0 {
		t.Fatal("reference run emitted no trace")
	}
	cases := []struct {
		name string
		f    Fusion
	}{
		{"off", Fusion{Off: true}},
		{"adaptive", testFusion()},
		{"all", func() Fusion { f := testFusion(); f.InitLevel = -1; return f }()},
	}
	for _, w := range []int{2, 4} {
		for _, tc := range cases {
			got, ws, exec, end := runPhasedRing(t, w, tc.f, true)
			if exec != refExec {
				t.Errorf("workers=%d fusion=%s: executed %d events, serial %d", w, tc.name, exec, refExec)
			}
			if end != refEnd {
				t.Errorf("workers=%d fusion=%s: final clock %v, serial %v", w, tc.name, end, refEnd)
			}
			if !bytes.Equal(got, ref) {
				t.Errorf("workers=%d fusion=%s: trace differs from serial oracle (%d vs %d bytes)", w, tc.name, len(got), len(ref))
			}
			if tc.name == "adaptive" && ws.FuseOps == 0 {
				t.Errorf("workers=%d: thin phase never fused (stats %+v)", w, ws)
			}
			if tc.name != "off" && ws.SplitOps == 0 {
				t.Errorf("workers=%d fusion=%s: heavy phase never split (stats %+v)", w, tc.name, ws)
			}
		}
	}
}

// TestFusionStatsConsistency: the WindowStats invariants survive fuse and
// split transitions — every round accounts all shards, every event fires
// inside a window, group dispatches never exceed shard dispatches, promise
// counts stay mode-independent — and two identical adaptive runs agree
// counter for counter.
func TestFusionStatsConsistency(t *testing.T) {
	_, ws, exec, _ := runPhasedRing(t, 4, testFusion(), false)
	if ws.FuseOps == 0 || ws.SplitOps == 0 {
		t.Fatalf("workload did not exercise both transitions: %+v", ws)
	}
	if ws.ShardRounds != ws.Windows*8 {
		t.Errorf("ShardRounds %d != Windows %d x 8 shards", ws.ShardRounds, ws.Windows)
	}
	if ws.WindowEvents != int64(exec) {
		t.Errorf("WindowEvents %d != Executed %d: some events fired outside windows", ws.WindowEvents, exec)
	}
	if ws.GroupWindows <= 0 || ws.GroupWindows > ws.ShardWindows {
		t.Errorf("GroupWindows %d outside (0, ShardWindows %d]", ws.GroupWindows, ws.ShardWindows)
	}
	if ws.ShardWindows <= 0 || ws.ShardWindows > ws.ShardRounds {
		t.Errorf("ShardWindows %d outside (0, ShardRounds %d]", ws.ShardWindows, ws.ShardRounds)
	}
	_, ws2, _, _ := runPhasedRing(t, 4, testFusion(), false)
	if ws != ws2 {
		t.Errorf("adaptive stats differ across identical runs:\n  %+v\n  %+v", ws, ws2)
	}
	// The serial oracle records no window activity but the same model-side
	// promise count (none in this ring) and event total.
	_, wsSerial, execSerial, _ := runPhasedRing(t, 1, testFusion(), false)
	if execSerial != exec {
		t.Errorf("serial executed %d, windowed %d", execSerial, exec)
	}
	if wsSerial.Windows != 0 || wsSerial.FuseOps != 0 {
		t.Errorf("serial run recorded window activity: %+v", wsSerial)
	}
	if wsSerial.Promises != ws.Promises {
		t.Errorf("promise count mode-dependent: serial %d, windowed %d", wsSerial.Promises, ws.Promises)
	}
}

// TestFusionLevelDegeneratesToMerged: a fully fused simulation reports a
// single group covering every shard and still drains the calendar; the
// level is observable through FusionLevel.
func TestFusionLevelDegeneratesToMerged(t *testing.T) {
	s := New()
	s.Partition(kernelLookahead)
	s.SetWorkers(4)
	f := testFusion()
	f.InitLevel = -1
	// Pin full fusion: thresholds no thin workload can cross downward.
	f.SplitAbove = 1 << 30
	f.ProbePeriods = 1 << 30
	s.SetFusion(f)
	buildKernelCluster(s, 8, 16, 4)
	s.Run()
	if s.FusionLevel() != 3 {
		t.Errorf("FusionLevel = %d, want 3 (8 shards fully fused)", s.FusionLevel())
	}
	ws := s.WindowStats()
	if ws.GroupWindows != ws.Windows {
		t.Errorf("fully fused: GroupWindows %d != Windows %d (exactly one group per round)", ws.GroupWindows, ws.Windows)
	}
}

// TestOutboxSendPathZeroAllocs pins the cross-shard send path at zero
// allocations per event in steady state: outbox buckets and destination
// lists are pooled, and drainOutbox returns them with capacity retained, so
// a sustained message rate allocates nothing after warmup.
func TestOutboxSendPathZeroAllocs(t *testing.T) {
	s := New()
	s.Partition(10)
	a, b := s.AddShard(), s.AddShard()
	sh0 := s.DefaultShard()
	// Warm up: open buckets toward both destinations and let the heaps and
	// bucket slices reach steady capacity.
	cycle := func() {
		for i := 0; i < 16; i++ {
			sh0.outbox.put(len(s.shards), a.id, event{at: Time(i)})
			sh0.outbox.put(len(s.shards), b.id, event{at: Time(i)})
		}
		s.drainOutbox(sh0)
		for a.events.len() > 0 {
			a.events.pop()
		}
		for b.events.len() > 0 {
			b.events.pop()
		}
	}
	for i := 0; i < 4; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("cross-shard send path allocates %.1f allocs per window, want 0", avg)
	}
}
