package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gamma/internal/trace"
)

// tick emits an order-sensitive trace record on sh: it embeds the current
// value of *state, so any execution order that diverges from the serial
// oracle — not just a different merge order — changes the trace bytes.
func tick(sh *Shard, label string, state *int) {
	sh.Emit(trace.Event{At: int64(sh.Now()), Kind: "tick", Res: label, N: *state})
}

// traceBytes runs the simulation and returns the collected JSONL trace.
func traceBytes(t testing.TB, s *Sim, col *trace.Collector) []byte {
	t.Helper()
	s.Run()
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestEOTReactionChainIdentity pins the subtlest soundness requirement of
// the EOT bound: an idle shard is not a silent shard. Shard A streams local
// events far past t=20 while shard B — empty at the first barrier — receives
// A's early message at t=10 and *reacts*, mutating state on A at t=20. The
// window scheduler must cap A's window at the reaction chain's earliest
// arrival (vMin plus one floor), not at B's next pending event (infinity),
// or A's later ticks read the un-mutated state and the trace diverges from
// the serial oracle.
func TestEOTReactionChainIdentity(t *testing.T) {
	const lookahead = 10
	build := func(s *Sim) {
		a := s.DefaultShard()
		b := s.AddShard()
		x := new(int)
		a.At(0, func() {
			a.Send(b, a.Now()+lookahead, func() {
				tick(b, "b-got", x)
				b.Send(a, b.Now()+lookahead, func() {
					*x = 7
					tick(a, "a-reply", x)
				})
			})
		})
		// A's local stream: 200 ticks every 3µs, well past the t=20 reply.
		var chain func(n int) func()
		chain = func(n int) func() {
			return func() {
				tick(a, "a-local", x)
				if n > 0 {
					a.After(3, chain(n-1))
				}
			}
		}
		a.At(0, chain(200))
	}
	run := func(workers int) ([]byte, uint64, Time) {
		s := New()
		s.Partition(lookahead)
		s.SetWorkers(workers)
		col := trace.NewCollector()
		s.SetSink(col)
		build(s)
		tb := traceBytes(t, s, col)
		return tb, s.Executed(), s.Now()
	}
	ref, refExec, refEnd := run(1)
	if !bytes.Contains(ref, []byte(`"n":7`)) {
		t.Fatal("reference trace never observed the reaction's mutation")
	}
	for _, workers := range []int{2, 4} {
		got, exec, end := run(workers)
		if exec != refExec || end != refEnd {
			t.Errorf("workers=%d: executed/end %d/%v, serial %d/%v", workers, exec, end, refExec, refEnd)
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: trace differs from serial oracle (%d vs %d bytes)", workers, len(got), len(ref))
		}
	}
}

// promiseRing builds a 4-shard token ring (one token per shard) where every
// arrival starts a burst of `work` step-1µs local events before forwarding
// the token one floor ahead. With promise=true each arrival promises the
// burst's end — the send is initiated exactly when the promise expires,
// mid-window — so the scheduler can size windows by bursts instead of by
// event heads.
func promiseRing(s *Sim, promise bool) {
	const floor, hops, work = Dur(10), 6, 50
	shards := make([]*Shard, 4)
	for i := range shards {
		shards[i] = s.DefaultShard()
		if s.Partitioned() && i > 0 {
			shards[i] = s.AddShard()
		}
	}
	zero := new(int)
	var hop func(i, remaining int) func()
	hop = func(i, remaining int) func() {
		return func() {
			sh := shards[i]
			if promise {
				// The burst's first step fires at the arrival instant, so
				// the token forwards at now + work - 1 — exactly when this
				// promise expires.
				sh.Promise(sh.Now() + Dur(work-1))
			}
			n := work
			var step func()
			step = func() {
				tick(sh, fmt.Sprintf("n%d", i), zero)
				n--
				if n > 0 {
					sh.After(1, step)
				} else if remaining > 0 {
					next := (i + 1) % len(shards)
					sh.Send(shards[next], sh.Now()+floor, hop(next, remaining-1))
				}
			}
			step()
		}
	}
	for i := range shards {
		shards[i].At(Time(i), hop(i, hops))
	}
}

// TestPromiseExtendsWindows: promises must not change what the simulation
// computes — traces stay byte-identical to the serial oracle and to the
// promise-free run — but they must let the EOT scheduler run strictly fewer,
// larger windows. This also covers promise expiry mid-window: every token
// hop sends at the exact instant its promise expires, inside a window whose
// bound extends past it.
func TestPromiseExtendsWindows(t *testing.T) {
	run := func(workers int, promise bool) ([]byte, WindowStats) {
		s := New()
		s.Partition(10)
		s.SetWorkers(workers)
		col := trace.NewCollector()
		s.SetSink(col)
		promiseRing(s, promise)
		tb := traceBytes(t, s, col)
		return tb, s.WindowStats()
	}
	ref, _ := run(1, false)
	plain, plainStats := run(4, false)
	promised, promStats := run(4, true)
	if !bytes.Equal(plain, ref) {
		t.Error("promise-free parallel trace differs from serial oracle")
	}
	if !bytes.Equal(promised, ref) {
		t.Error("promised parallel trace differs from serial oracle")
	}
	if plainStats.Windows == 0 || promStats.Windows == 0 {
		t.Fatalf("expected parallel windows, got %+v and %+v", plainStats, promStats)
	}
	if promStats.Windows >= plainStats.Windows {
		t.Errorf("promises did not reduce windows: %d with vs %d without",
			promStats.Windows, plainStats.Windows)
	}
	if promStats.Promises == 0 {
		t.Error("promise calls not counted")
	}
}

// TestPromiseViolationPanics: initiating a cross-shard send while the
// shard's clock is still short of its standing promise breaks the
// conservative contract in both execution modes.
func TestPromiseViolationPanics(t *testing.T) {
	for _, workers := range []int{1, 2} {
		func() {
			s := New()
			s.Partition(10)
			s.SetWorkers(workers)
			a, b := s.AddShard(), s.AddShard()
			a.At(0, func() {
				a.Promise(100)
				a.Send(b, a.Now()+50, func() {}) // legal floor, illegal promise
			})
			b.At(0, func() {})
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: no panic on promise violation", workers)
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "violates the shard's promise") {
					t.Fatalf("workers=%d: unexpected panic: %v", workers, msg)
				}
			}()
			s.Run()
		}()
	}
}

// TestFloorViolationPanics: output floors and per-channel floors raise the
// enforced lookahead at the send site, not just the scheduler's bounds.
func TestFloorViolationPanics(t *testing.T) {
	cases := []struct {
		name    string
		declare func(a, b *Shard)
	}{
		{"out-floor", func(a, b *Shard) { a.SetOutFloor(50) }},
		{"channel-floor", func(a, b *Shard) { a.SetChannelFloor(b, 50) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			s.Partition(10)
			s.SetWorkers(2)
			a, b := s.AddShard(), s.AddShard()
			tc.declare(a, b)
			a.At(0, func() {
				a.Send(b, a.Now()+20, func() {}) // 20 clears lookahead 10, not floor 50
			})
			b.At(0, func() {})
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic on floor violation")
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "violates lookahead") || !strings.Contains(msg, "0.000050s") {
					t.Fatalf("unexpected panic: %v", msg)
				}
			}()
			s.Run()
		})
	}
}

// TestChannelFloorExtendsWindows: declaring the floor a model already obeys
// changes nothing about the computation — byte-identical traces — but lets
// the scheduler run fewer, larger windows across that channel.
func TestChannelFloorExtendsWindows(t *testing.T) {
	const floor = Dur(50)
	build := func(s *Sim, declare bool) {
		a, b := s.DefaultShard(), s.AddShard()
		if declare {
			a.SetChannelFloor(b, floor)
			b.SetChannelFloor(a, floor)
		}
		zero := new(int)
		var hop func(sh, other *Shard, label string, remaining int) func()
		hop = func(sh, other *Shard, label string, remaining int) func() {
			return func() {
				n := 40
				var step func()
				step = func() {
					tick(sh, label, zero)
					n--
					if n > 0 {
						sh.After(1, step)
					} else if remaining > 0 {
						sh.Send(other, sh.Now()+floor, hop(other, sh, label, remaining-1))
					}
				}
				step()
			}
		}
		a.At(0, hop(a, b, "a", 5))
		b.At(0, hop(b, a, "b", 5))
	}
	run := func(workers int, declare bool) ([]byte, WindowStats) {
		s := New()
		s.Partition(10)
		s.SetWorkers(workers)
		col := trace.NewCollector()
		s.SetSink(col)
		build(s, declare)
		tb := traceBytes(t, s, col)
		return tb, s.WindowStats()
	}
	ref, _ := run(1, false)
	plain, plainStats := run(2, false)
	floored, floorStats := run(2, true)
	if !bytes.Equal(plain, ref) || !bytes.Equal(floored, ref) {
		t.Error("parallel traces differ from serial oracle")
	}
	if floorStats.Windows >= plainStats.Windows {
		t.Errorf("channel floors did not reduce windows: %d with vs %d without",
			floorStats.Windows, plainStats.Windows)
	}
}

// TestWindowStatsAndCounters: the scheduler's statistics are internally
// consistent, zero on the oracle path (except promise counts, which are
// mode-independent), and flush into shared WindowCounters like the event
// counter does.
func TestWindowStatsAndCounters(t *testing.T) {
	s := New()
	s.Partition(10)
	s.SetWorkers(4)
	promiseRing(s, true)
	s.Run()
	ws := s.WindowStats()
	if ws.Windows <= 0 {
		t.Fatalf("no windows recorded: %+v", ws)
	}
	if ws.ShardRounds != ws.Windows*int64(s.Shards()) {
		t.Errorf("ShardRounds %d != Windows %d x shards %d", ws.ShardRounds, ws.Windows, s.Shards())
	}
	if ws.ShardWindows <= 0 || ws.ShardWindows > ws.ShardRounds {
		t.Errorf("ShardWindows %d outside (0, %d]", ws.ShardWindows, ws.ShardRounds)
	}
	if occ := ws.Occupancy(); occ <= 0 || occ > 1 {
		t.Errorf("occupancy %v outside (0, 1]", occ)
	}
	if ws.WindowEvents != int64(s.Executed()) {
		t.Errorf("WindowEvents %d != Executed %d (everything fires in windows here)", ws.WindowEvents, s.Executed())
	}
	if ws.Promises != 4*7 {
		t.Errorf("Promises %d, want one per token arrival (4 tokens x 7 hops incl. start)", ws.Promises)
	}

	// Serial oracle: no windows, same promise count.
	ser := New()
	ser.Partition(10)
	ser.SetWorkers(1)
	promiseRing(ser, true)
	ser.Run()
	sws := ser.WindowStats()
	if sws.Windows != 0 || sws.ShardWindows != 0 || sws.WindowEvents != 0 {
		t.Errorf("serial run recorded window activity: %+v", sws)
	}
	if sws.Promises != ws.Promises {
		t.Errorf("promise count differs by mode: serial %d, windowed %d", sws.Promises, ws.Promises)
	}

	// Shared counters: Run flushes and zeroes the per-sim statistics.
	var wc WindowCounters
	cs := New()
	cs.Partition(10)
	cs.SetWorkers(4)
	cs.SetWindowCounters(&wc)
	promiseRing(cs, true)
	cs.Run()
	if got := wc.Stats(); got != ws {
		t.Errorf("flushed counters %+v, want %+v", got, ws)
	}
	if got := cs.WindowStats(); got != (WindowStats{}) {
		t.Errorf("per-sim stats not zeroed after flush: %+v", got)
	}
}

// TestFloorsAreRaiseOnly: a floor or promise can never be lowered once
// declared — a neighbor may already hold a window computed from it.
func TestFloorsAreRaiseOnly(t *testing.T) {
	s := New()
	s.Partition(10)
	a, b := s.AddShard(), s.AddShard()
	a.SetOutFloor(100)
	a.SetOutFloor(40)
	if a.OutFloor() != 100 {
		t.Errorf("OutFloor lowered to %v", a.OutFloor())
	}
	a.SetChannelFloor(b, 200)
	a.SetChannelFloor(b, 60)
	if got := a.floorTo(b); got != 200 {
		t.Errorf("floorTo after lowering attempt = %v, want 200", got)
	}
	a.SetChannelFloor(a, 500) // toward itself: no-op
	if got := a.floorTo(a); got != 100 {
		t.Errorf("self channel floor took effect: %v", got)
	}
	a.Promise(80)
	a.Promise(30)
	if a.Promised() != 80 {
		t.Errorf("promise lowered to %v", a.Promised())
	}
}

// TestSameInstantChildKeepsSerialOrder pins the trace-merge fidelity the
// (At, Ord) key alone cannot provide: ords are per-shard stamps, so a fresh
// shard's same-instant child of a cross-shard arrival carries a *smaller*
// ord than both the arrival (minted from the busy sender's large stamp) and
// a third shard's contemporaneous event — yet serially it fires last of the
// three, because it is not even scheduled until the arrival's turn. Sorting
// buffered emissions by key would hoist the child's output to the front;
// the heads-merge with per-firing sentinels must reproduce the serial
// interleave instead.
func TestSameInstantChildKeepsSerialOrder(t *testing.T) {
	const floor = Dur(10)
	const T = Time(50)
	build := func(workers int) (*Sim, *trace.Collector) {
		s := New()
		s.Partition(floor)
		s.SetWorkers(workers)
		a := s.DefaultShard()
		b := s.AddShard()
		c := s.AddShard()
		// Inflate A's stamp counter so its send carries a large ord.
		for i := 0; i < 100; i++ {
			a.At(Time(i%7), func() {})
		}
		// The arrival on fresh shard B emits nothing itself, but schedules a
		// same-instant child (B's first-ever schedule: tiny stamp) that does.
		a.Send(b, T, func() {
			n := 1
			b.At(b.Now(), func() { tick(b, "child", &n) })
		})
		// C's contemporaneous event: ord between the child's and the
		// arrival's. Serially it fires first of the three.
		m := 2
		c.At(T, func() { tick(c, "bystander", &m) })
		col := trace.NewCollector()
		s.SetSink(col)
		return s, col
	}
	serial, col := build(1)
	want := traceBytes(t, serial, col)
	if i, j := bytes.Index(want, []byte("bystander")), bytes.Index(want, []byte("child")); i < 0 || j < 0 || i > j {
		t.Fatalf("serial oracle order unexpected (bystander at %d, child at %d):\n%s", i, j, want)
	}
	for _, w := range []int{2, 3} {
		s, col := build(w)
		if got := traceBytes(t, s, col); !bytes.Equal(got, want) {
			t.Errorf("workers=%d trace differs from serial:\n got: %s\nwant: %s", w, got, want)
		}
	}
}
