package sim

import "testing"

// BenchmarkAfter measures the steady-state schedule/fire cycle: one event
// pushed and popped per iteration. The acceptance bar is zero allocs/op —
// the calendar must not box events or build closures on the hot path.
func BenchmarkAfter(b *testing.B) {
	s := New()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, nop)
		s.Run()
	}
}

// BenchmarkAfterDeep keeps a large pending set in the calendar, exercising
// the 4-ary heap at the depth the multi-user experiments reach.
func BenchmarkAfterDeep(b *testing.B) {
	s := New()
	nop := func() {}
	for i := 0; i < 4096; i++ {
		s.After(Dur(1+i%97), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Dur(1+i%97), nop)
		s.fire(s.events.pop())
	}
	b.StopTimer()
	s.Run()
}

// BenchmarkResourceUse measures a full park/wake round trip through a FIFO
// resource: enqueue, grant, sleep-to-completion, resume. Steady state must
// be zero allocs/op.
func BenchmarkResourceUse(b *testing.B) {
	s := New()
	r := s.NewResource("r")
	s.Spawn("user", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Use(p, 1)
		}
	})
	s.Run()
}

// BenchmarkWaitQPingPong measures two processes alternating park/wake
// through a pair of wait queues — the mailbox pattern the network and
// operator processes use constantly.
func BenchmarkWaitQPingPong(b *testing.B) {
	s := New()
	ping := s.NewWaitQ("ping")
	pong := s.NewWaitQ("pong")
	s.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Park(p)
			pong.WakeOne()
		}
	})
	s.Spawn("b", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ping.WakeOne()
			pong.Park(p)
		}
	})
	s.Run()
}
