package sim

import (
	"fmt"
	"testing"
)

// BenchmarkAfter measures the steady-state schedule/fire cycle: one event
// pushed and popped per iteration. The acceptance bar is zero allocs/op —
// the calendar must not box events or build closures on the hot path.
func BenchmarkAfter(b *testing.B) {
	s := New()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, nop)
		s.Run()
	}
}

// BenchmarkAfterDeep keeps a large pending set in the calendar, exercising
// the 4-ary heap at the depth the multi-user experiments reach.
func BenchmarkAfterDeep(b *testing.B) {
	s := New()
	sh := s.sh0
	nop := func() {}
	for i := 0; i < 4096; i++ {
		s.After(Dur(1+i%97), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Dur(1+i%97), nop)
		s.fireSerial(sh, sh.events.pop())
	}
	b.StopTimer()
	s.Run()
}

// BenchmarkResourceUse measures a full park/wake round trip through a FIFO
// resource: enqueue, grant, sleep-to-completion, resume. Steady state must
// be zero allocs/op.
func BenchmarkResourceUse(b *testing.B) {
	s := New()
	r := s.NewResource("r")
	s.Spawn("user", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Use(p, 1)
		}
	})
	s.Run()
}

// BenchmarkWaitQPingPong measures two processes alternating park/wake
// through a pair of wait queues — the mailbox pattern the network and
// operator processes use constantly.
func BenchmarkWaitQPingPong(b *testing.B) {
	s := New()
	ping := s.NewWaitQ("ping")
	pong := s.NewWaitQ("pong")
	s.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Park(p)
			pong.WakeOne()
		}
	})
	s.Spawn("b", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ping.WakeOne()
			pong.Park(p)
		}
	})
	s.Run()
}

// kernelLookahead is the modeled network latency of the benchmark cluster.
const kernelLookahead = 10 * Microsecond

// buildKernelCluster constructs the partitioned-kernel benchmark model: a
// ring of nodes, one shard each, where every node runs `hops` rounds of a
// burst of `work` chained local events (each charging a CPU Resource)
// followed by one timestamped message to its right neighbor carrying the
// declared lookahead. Shard-local work dominates cross-shard traffic — one
// message per node per lookahead interval — which is the regime the
// conservative window scheduler is built for (and the regime a sharded
// Gamma cluster would be in: exchange packets are rare next to per-tuple
// CPU and disk events).
func buildKernelCluster(s *Sim, nodes, hops, work int) {
	shards := make([]*Shard, nodes)
	cpus := make([]*Resource, nodes)
	for i := 0; i < nodes; i++ {
		sh := s.DefaultShard()
		if s.Partitioned() && i > 0 {
			sh = s.AddShard()
		}
		shards[i] = sh
		cpus[i] = sh.NewResource(fmt.Sprintf("cpu%d", i))
	}
	var hop func(i, remaining int) func()
	hop = func(i, remaining int) func() {
		return func() {
			sh := shards[i]
			n := work
			var step func()
			step = func() {
				cpus[i].UseAsync(1)
				n--
				if n > 0 {
					sh.After(0, step)
				} else if remaining > 0 {
					next := (i + 1) % len(shards)
					sh.Send(shards[next], sh.Now()+kernelLookahead, hop(next, remaining-1))
				}
			}
			step()
		}
	}
	for i := range shards {
		shards[i].At(Time(i%4), hop(i, hops))
	}
}

// benchKernel runs the ring model at a given node count in either kernel
// mode. workers == 0 selects the serial (unpartitioned) oracle kernel.
func benchKernel(b *testing.B, nodes, workers int) {
	const (
		hops = 32
		work = 128
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		if workers > 0 {
			s.Partition(kernelLookahead)
			s.SetWorkers(workers)
		}
		buildKernelCluster(s, nodes, hops, work)
		s.Run()
	}
}

// BenchmarkKernel compares serial vs partitioned Run on the ring model at
// 8/64/256 simulated nodes. The partitioned kernel at >=4 workers must beat
// serial at >=64 nodes (BENCH_6.json records the measured numbers).
func BenchmarkKernel(b *testing.B) {
	for _, nodes := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("serial/nodes=%d", nodes), func(b *testing.B) {
			benchKernel(b, nodes, 0)
		})
		for _, w := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("part/nodes=%d/workers=%d", nodes, w), func(b *testing.B) {
				benchKernel(b, nodes, w)
			})
		}
	}
}
