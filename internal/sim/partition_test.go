package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gamma/internal/trace"
)

// runKernelCluster builds the ring-of-shards model (shared with the kernel
// benchmarks), runs it with the given worker count, and returns the trace
// bytes, the executed-event count, and the final clock. workers == 0 builds
// the model on an unpartitioned simulation — the pre-partitioning kernel.
func runKernelCluster(t testing.TB, nodes, hops, work, workers int) (traceBytes []byte, executed uint64, end Time) {
	t.Helper()
	s := New()
	if workers > 0 {
		s.Partition(kernelLookahead)
		s.SetWorkers(workers)
	}
	col := trace.NewCollector()
	s.SetSink(col)
	buildKernelCluster(s, nodes, hops, work)
	end = s.Run()
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes(), s.Executed(), end
}

// TestPartitionedTraceByteIdentity is the headline oracle: the partitioned
// kernel must produce byte-identical trace streams, event counts, and final
// clocks at every worker count, with the serialized run (workers=1) as the
// reference. Run under -race in CI at several GOMAXPROCS values.
func TestPartitionedTraceByteIdentity(t *testing.T) {
	const nodes, hops, work = 16, 12, 24
	ref, refExec, refEnd := runKernelCluster(t, nodes, hops, work, 1)
	if len(ref) == 0 {
		t.Fatal("reference run emitted no trace")
	}
	for _, workers := range []int{2, 4, 8} {
		got, exec, end := runKernelCluster(t, nodes, hops, work, workers)
		if exec != refExec {
			t.Errorf("workers=%d: executed %d events, serialized executed %d", workers, exec, refExec)
		}
		if end != refEnd {
			t.Errorf("workers=%d: final clock %v, serialized %v", workers, end, refEnd)
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: trace differs from serialized run (%d vs %d bytes)", workers, len(got), len(ref))
		}
	}
}

// TestPartitionedDeterminism runs the same parallel configuration twice;
// the traces must be byte-identical run-to-run, not just mode-to-mode.
func TestPartitionedDeterminism(t *testing.T) {
	a, _, _ := runKernelCluster(t, 16, 12, 24, 4)
	b, _, _ := runKernelCluster(t, 16, 12, 24, 4)
	if !bytes.Equal(a, b) {
		t.Error("two identical parallel runs produced different traces")
	}
}

// TestZeroLookaheadMatchesUnpartitioned: with lookahead 0 the partitioned
// kernel serializes in global (at, seq) order — the exact pre-partitioning
// kernel. A model built identically on an unpartitioned sim and on a
// partitioned(0) sim with one shard per node must trace byte-identically.
func TestZeroLookaheadMatchesUnpartitioned(t *testing.T) {
	build := func(s *Sim) {
		nshards := 4
		shards := make([]*Shard, nshards)
		for i := range shards {
			shards[i] = s.DefaultShard()
			if s.Partitioned() && i > 0 {
				shards[i] = s.AddShard()
			}
		}
		ress := make([]*Resource, nshards)
		for i, sh := range shards {
			ress[i] = sh.NewResource(fmt.Sprintf("r%d", i))
		}
		// Same-instant cross-shard interaction, legal only at lookahead 0:
		// every process round-robins over every shard's resource.
		for i, sh := range shards {
			i := i
			sh.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 8; k++ {
					ress[(i+k)%nshards].Use(p, Dur(1+k%3))
				}
			})
		}
	}
	run := func(partition bool) []byte {
		s := New()
		if partition {
			s.Partition(0)
		}
		col := trace.NewCollector()
		s.SetSink(col)
		build(s)
		s.Run()
		var buf bytes.Buffer
		if err := col.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	plain := run(false)
	parted := run(true)
	if len(plain) == 0 {
		t.Fatal("unpartitioned run emitted no trace")
	}
	if !bytes.Equal(plain, parted) {
		t.Errorf("partitioned(0) trace differs from unpartitioned (%d vs %d bytes)", len(parted), len(plain))
	}
}

// TestZeroLookaheadIgnoresWorkers: a zero-lookahead partition admits no
// conservative window, so SetWorkers must not change execution (or results).
func TestZeroLookaheadIgnoresWorkers(t *testing.T) {
	run := func(workers int) Time {
		s := New()
		s.Partition(0)
		s.SetWorkers(workers)
		a, b := s.AddShard(), s.AddShard()
		ra, rb := a.NewResource("a"), b.NewResource("b")
		a.Spawn("p", func(p *Proc) {
			ra.Use(p, 5)
			rb.Use(p, 7) // cross-shard at the same instant: needs serialization
		})
		return s.Run()
	}
	if t1, t8 := run(1), run(8); t1 != t8 {
		t.Errorf("zero-lookahead run changed with workers: %v vs %v", t1, t8)
	}
}

// TestLookaheadViolationPanics: a cross-shard send closer than the declared
// lookahead breaks the conservative contract and must panic with a
// diagnostic naming both shards.
func TestLookaheadViolationPanics(t *testing.T) {
	s := New()
	s.Partition(10)
	s.SetWorkers(2)
	a, b := s.AddShard(), s.AddShard()
	a.At(0, func() {
		a.Send(b, a.Now()+5, func() {}) // 5 < lookahead 10
	})
	b.At(0, func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on lookahead violation")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "violates lookahead") {
			t.Fatalf("unexpected panic: %v", msg)
		}
	}()
	s.Run()
}

// TestContextFreeSchedulingPanicsInWindow: Sim.At and friends cannot
// attribute themselves to a shard inside a parallel window; the kernel must
// fail loudly rather than corrupt another shard's heap.
func TestContextFreeSchedulingPanicsInWindow(t *testing.T) {
	s := New()
	s.Partition(10)
	s.SetWorkers(2)
	a := s.AddShard()
	b := s.AddShard()
	a.At(0, func() {
		s.At(100, func() {}) // context-free inside a window
	})
	b.At(0, func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on context-free scheduling inside a window")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "parallel window") {
			t.Fatalf("unexpected panic: %v", msg)
		}
	}()
	s.Run()
}

// TestPartitionedProcessPanicPropagates: a process panic inside a parallel
// window must surface from Run with the same message a serialized run
// produces.
func TestPartitionedProcessPanicPropagates(t *testing.T) {
	run := func(workers int) (msg string) {
		defer func() { msg = fmt.Sprint(recover()) }()
		s := New()
		s.Partition(10)
		s.SetWorkers(workers)
		a, b := s.AddShard(), s.AddShard()
		a.Spawn("boom", func(p *Proc) {
			p.Sleep(5)
			panic("kaboom")
		})
		b.At(0, func() {})
		s.Run()
		return "no panic"
	}
	serial, parallel := run(1), run(2)
	if !strings.Contains(serial, `process "boom" panicked: kaboom`) {
		t.Fatalf("serialized panic message: %q", serial)
	}
	if serial != parallel {
		t.Errorf("panic message differs: serialized %q, parallel %q", serial, parallel)
	}
}

// TestPartitionedRunUntil: RunUntil on a partitioned simulation executes
// serialized and advances every shard clock to the deadline.
func TestPartitionedRunUntil(t *testing.T) {
	s := New()
	s.Partition(10)
	s.SetWorkers(4)
	a, b := s.AddShard(), s.AddShard()
	var fired int
	a.At(5, func() { fired++ })
	b.At(50, func() { fired++ })
	if end := s.RunUntil(20); end != 20 {
		t.Fatalf("RunUntil returned %v, want 20", end)
	}
	if fired != 1 {
		t.Fatalf("fired %d events by t=20, want 1", fired)
	}
	if a.Now() != 20 || b.Now() != 20 {
		t.Fatalf("shard clocks %v/%v, want 20/20", a.Now(), b.Now())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}
