// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated activities ("processes") are ordinary goroutines, but they run
// under a strict hand-off discipline: exactly one goroutine — either the
// kernel event loop or a single process — executes at any moment, so process
// code needs no locking and every run of a simulation is deterministic.
// Processes advance the virtual clock only by blocking in kernel primitives
// (Sleep, Resource.Use, WaitQ.Park); pure computation takes zero simulated
// time unless it is explicitly charged to a Resource.
//
// The kernel is the substrate on which the Gamma and Teradata machine models
// are built: CPUs, disks, and network interfaces are Resources, and operator
// processes are Procs.
package sim

import (
	"fmt"
	"sync/atomic"

	"gamma/internal/trace"
)

// Time is a point in simulated time, in microseconds since Run started.
type Time int64

// Dur is a span of simulated time, in microseconds.
type Dur = Time

// Common durations.
const (
	Microsecond Dur = 1
	Millisecond Dur = 1000
	Second      Dur = 1000000
)

// Seconds converts a simulated time span to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a simulated duration.
func FromSeconds(s float64) Dur { return Dur(s * float64(Second)) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Sim is a discrete-event simulation instance. The zero value is not usable;
// create one with New.
type Sim struct {
	now      Time
	events   eventHeap
	seq      uint64
	yield    chan struct{} // process -> kernel: "I have parked or finished"
	parked   int           // number of live processes currently parked
	procs    int           // number of live processes
	failure  any           // panic value escaped from a process
	executed uint64        // events fired so far
	counter  *atomic.Int64 // optional shared executed-event counter
	trace    func(t Time, format string, args ...any)
	sink     trace.Sink
}

// New returns an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// SetTrace installs a trace hook invoked by Proc.Tracef; nil disables tracing.
func (s *Sim) SetTrace(fn func(t Time, format string, args ...any)) { s.trace = fn }

// SetSink installs a structured event sink (typically a *trace.Collector)
// that receives typed records from the kernel and every model built on it;
// nil disables structured tracing.
func (s *Sim) SetSink(sink trace.Sink) { s.sink = sink }

// Sink returns the installed structured event sink, or nil.
func (s *Sim) Sink() trace.Sink { return s.sink }

// Emit forwards a structured event to the sink, if one is installed.
// Emitters that compute event fields eagerly should check Tracing first.
func (s *Sim) Emit(e trace.Event) {
	if s.sink != nil {
		s.sink.Emit(e)
	}
}

// Tracing reports whether a structured event sink is installed.
func (s *Sim) Tracing() bool { return s.sink != nil }

// At schedules fn to run at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Dur, fn func()) { s.At(s.now+d, fn) }

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. All Proc methods must be called from the process's own goroutine,
// except Kill, which is called from kernel context.
type Proc struct {
	sim     *Sim
	name    string
	resume  chan struct{}
	killed  bool
	wq      *WaitQ // wait queue the process is parked on, if any
	wqIdx   int    // slot in wq.procs, cached for O(1) removal
	parkSeq uint64 // increments per park; lets timed wakes detect staleness
}

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.sim.now }

// Tracef reports a trace event if tracing is enabled on the simulation.
func (p *Proc) Tracef(format string, args ...any) {
	if p.sim.trace != nil {
		p.sim.trace(p.sim.now, "["+p.name+"] "+format, args...)
	}
}

// park suspends the process until some event calls wake. It transfers
// control back to the kernel loop.
func (p *Proc) park() {
	p.sim.parked++
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// killSentinel unwinds a killed process's stack; the spawn wrapper absorbs
// it so a kill is a clean exit, not a simulation failure.
type killSentinel struct{}

// Kill terminates the process: if it is parked it is unwound the next time
// it would resume (immediately when parked on a WaitQ; at its pending wake
// when sleeping or queued on a Resource), and if it has not started yet its
// body never runs. Must be called from kernel context (an event function or
// another process). Killing a dead or already-killed process is a no-op.
func (p *Proc) Kill() {
	if p.killed {
		return
	}
	p.killed = true
	if p.wq != nil {
		p.wq.remove(p)
		p.wq = nil
		p.wake(p.sim.now)
	}
}

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// wake schedules the process to resume at time t. It must be called exactly
// once per park, from kernel context (an event function or another process).
// The event carries the process directly — the kernel loop performs the
// hand-off itself, so a park/wake cycle allocates no closure.
func (p *Proc) wake(t Time) {
	s := p.sim
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, p: p})
}

// Sleep advances the process's virtual time by d.
func (p *Proc) Sleep(d Dur) {
	p.wake(p.sim.now + d)
	p.park()
}

// WaitUntil blocks the process until absolute time t (no-op if t has passed).
// It is the synchronization half of Resource.UseAsync: issue work early,
// then wait for its completion time when the result is needed.
func (p *Proc) WaitUntil(t Time) {
	if t > p.sim.now {
		p.Sleep(t - p.sim.now)
	}
}

// Spawn starts fn as a new process at the current simulated time.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt starts fn as a new process at absolute simulated time t.
func (s *Sim) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.procs++
	go func() {
		<-p.resume
		defer func() {
			s.procs--
			if r := recover(); r != nil {
				if _, wasKilled := r.(killSentinel); !wasKilled && s.failure == nil {
					s.failure = procPanic{name: name, val: r}
				}
			}
			s.yield <- struct{}{}
		}()
		if !p.killed {
			fn(p)
		}
	}()
	// The start is an ordinary wake: the goroutine above is "parked" on its
	// resume channel until the start event fires.
	s.parked++
	p.wake(t)
	return p
}

type procPanic struct {
	name string
	val  any
}

func (e procPanic) String() string { return fmt.Sprintf("process %q panicked: %v", e.name, e.val) }

// fire dispatches one event: a wake event hands control to its process (the
// coalesced park/wake path — no closure, no extra event), a callback event
// runs its function in kernel context.
func (s *Sim) fire(e event) {
	s.now = e.at
	s.executed++
	if e.p != nil {
		s.parked--
		e.p.resume <- struct{}{}
		<-s.yield
	} else {
		e.fn()
	}
	if s.failure != nil {
		panic(s.failure.(procPanic).String())
	}
}

// Run executes events until none remain, then returns the final clock value.
// It panics if a process panicked, or if live processes remain parked with no
// pending events (a simulated deadlock).
func (s *Sim) Run() Time {
	for s.events.len() > 0 {
		s.fire(s.events.pop())
	}
	if s.parked > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events", s.parked))
	}
	s.flushCounter()
	return s.now
}

// RunUntil executes events with timestamps <= deadline and advances the clock
// to deadline. Parked processes may legitimately remain.
func (s *Sim) RunUntil(deadline Time) Time {
	for {
		t, ok := s.events.peek()
		if !ok || t > deadline {
			break
		}
		s.fire(s.events.pop())
	}
	if s.now < deadline {
		s.now = deadline
	}
	s.flushCounter()
	return s.now
}

// Executed returns the number of events fired so far.
func (s *Sim) Executed() uint64 { return s.executed }

// SetEventCounter installs a shared counter that accumulates the number of
// events this simulation fires; Run and RunUntil flush into it on return.
// The bench runner uses one counter per experiment to report simulated
// events/sec even when an experiment runs many sims across goroutines.
func (s *Sim) SetEventCounter(c *atomic.Int64) { s.counter = c }

// flushCounter adds events fired since the last flush to the shared counter.
func (s *Sim) flushCounter() {
	if s.counter != nil && s.executed > 0 {
		s.counter.Add(int64(s.executed))
		s.executed = 0
	}
}
