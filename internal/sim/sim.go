// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated activities ("processes") are ordinary goroutines, but they run
// under a strict hand-off discipline: exactly one goroutine — either the
// kernel event loop or a single process — executes at any moment, so process
// code needs no locking and every run of a simulation is deterministic.
// Processes advance the virtual clock only by blocking in kernel primitives
// (Sleep, Resource.Use, WaitQ.Park); pure computation takes zero simulated
// time unless it is explicitly charged to a Resource.
//
// The kernel is the substrate on which the Gamma and Teradata machine models
// are built: CPUs, disks, and network interfaces are Resources, and operator
// processes are Procs.
package sim

import (
	"container/heap"
	"fmt"

	"gamma/internal/trace"
)

// Time is a point in simulated time, in microseconds since Run started.
type Time int64

// Dur is a span of simulated time, in microseconds.
type Dur = Time

// Common durations.
const (
	Microsecond Dur = 1
	Millisecond Dur = 1000
	Second      Dur = 1000000
)

// Seconds converts a simulated time span to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a simulated duration.
func FromSeconds(s float64) Dur { return Dur(s * float64(Second)) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (Time, bool) { // only valid when non-empty
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Sim is a discrete-event simulation instance. The zero value is not usable;
// create one with New.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	yield   chan struct{} // process -> kernel: "I have parked or finished"
	parked  int           // number of live processes currently parked
	procs   int           // number of live processes
	failure any           // panic value escaped from a process
	trace   func(t Time, format string, args ...any)
	sink    trace.Sink
}

// New returns an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// SetTrace installs a trace hook invoked by Proc.Tracef; nil disables tracing.
func (s *Sim) SetTrace(fn func(t Time, format string, args ...any)) { s.trace = fn }

// SetSink installs a structured event sink (typically a *trace.Collector)
// that receives typed records from the kernel and every model built on it;
// nil disables structured tracing.
func (s *Sim) SetSink(sink trace.Sink) { s.sink = sink }

// Sink returns the installed structured event sink, or nil.
func (s *Sim) Sink() trace.Sink { return s.sink }

// Emit forwards a structured event to the sink, if one is installed.
// Emitters that compute event fields eagerly should check Tracing first.
func (s *Sim) Emit(e trace.Event) {
	if s.sink != nil {
		s.sink.Emit(e)
	}
}

// Tracing reports whether a structured event sink is installed.
func (s *Sim) Tracing() bool { return s.sink != nil }

// At schedules fn to run at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d Dur, fn func()) { s.At(s.now+d, fn) }

// Proc is a simulated process: a goroutine scheduled cooperatively by the
// kernel. All Proc methods must be called from the process's own goroutine,
// except Kill, which is called from kernel context.
type Proc struct {
	sim     *Sim
	name    string
	resume  chan struct{}
	killed  bool
	wq      *WaitQ // wait queue the process is parked on, if any
	parkSeq uint64 // increments per park; lets timed wakes detect staleness
}

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.sim.now }

// Tracef reports a trace event if tracing is enabled on the simulation.
func (p *Proc) Tracef(format string, args ...any) {
	if p.sim.trace != nil {
		p.sim.trace(p.sim.now, "["+p.name+"] "+format, args...)
	}
}

// park suspends the process until some event calls wake. It transfers
// control back to the kernel loop.
func (p *Proc) park() {
	p.sim.parked++
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// killSentinel unwinds a killed process's stack; the spawn wrapper absorbs
// it so a kill is a clean exit, not a simulation failure.
type killSentinel struct{}

// Kill terminates the process: if it is parked it is unwound the next time
// it would resume (immediately when parked on a WaitQ; at its pending wake
// when sleeping or queued on a Resource), and if it has not started yet its
// body never runs. Must be called from kernel context (an event function or
// another process). Killing a dead or already-killed process is a no-op.
func (p *Proc) Kill() {
	if p.killed {
		return
	}
	p.killed = true
	if p.wq != nil {
		p.wq.remove(p)
		p.wq = nil
		p.wake(p.sim.now)
	}
}

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// wake schedules the process to resume at time t. It must be called exactly
// once per park, from kernel context (an event function or another process).
func (p *Proc) wake(t Time) {
	s := p.sim
	s.At(t, func() {
		s.parked--
		p.resume <- struct{}{}
		<-s.yield
	})
}

// Sleep advances the process's virtual time by d.
func (p *Proc) Sleep(d Dur) {
	p.wake(p.sim.now + d)
	p.park()
}

// WaitUntil blocks the process until absolute time t (no-op if t has passed).
// It is the synchronization half of Resource.UseAsync: issue work early,
// then wait for its completion time when the result is needed.
func (p *Proc) WaitUntil(t Time) {
	if t > p.sim.now {
		p.Sleep(t - p.sim.now)
	}
}

// Spawn starts fn as a new process at the current simulated time.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt starts fn as a new process at absolute simulated time t.
func (s *Sim) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.procs++
	go func() {
		<-p.resume
		defer func() {
			s.procs--
			if r := recover(); r != nil {
				if _, wasKilled := r.(killSentinel); !wasKilled && s.failure == nil {
					s.failure = procPanic{name: name, val: r}
				}
			}
			s.yield <- struct{}{}
		}()
		if !p.killed {
			fn(p)
		}
	}()
	s.At(t, func() {
		p.resume <- struct{}{}
		<-s.yield
	})
	return p
}

type procPanic struct {
	name string
	val  any
}

func (e procPanic) String() string { return fmt.Sprintf("process %q panicked: %v", e.name, e.val) }

// Run executes events until none remain, then returns the final clock value.
// It panics if a process panicked, or if live processes remain parked with no
// pending events (a simulated deadlock).
func (s *Sim) Run() Time {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		if s.failure != nil {
			panic(s.failure.(procPanic).String())
		}
	}
	if s.parked > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events", s.parked))
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline and advances the clock
// to deadline. Parked processes may legitimately remain.
func (s *Sim) RunUntil(deadline Time) Time {
	for {
		t, ok := s.events.peek()
		if !ok || t > deadline {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		if s.failure != nil {
			panic(s.failure.(procPanic).String())
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}
