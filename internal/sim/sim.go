// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated activities ("processes") are ordinary goroutines, but they run
// under a strict hand-off discipline: within one shard, exactly one
// goroutine — either the shard's event loop or a single process — executes
// at any moment, so process code needs no locking and every run of a
// simulation is deterministic. Processes advance the virtual clock only by
// blocking in kernel primitives (Sleep, Resource.Use, WaitQ.Park); pure
// computation takes zero simulated time unless it is explicitly charged to
// a Resource.
//
// The kernel is the substrate on which the Gamma and Teradata machine models
// are built: CPUs, disks, and network interfaces are Resources, and operator
// processes are Procs.
//
// # Partitioned execution
//
// A simulation is normally one shard — one event heap, one clock. Partition
// splits it into shards (one per simulated node), each owning a private
// event heap, clock, and the Resources, WaitQs, and Procs homed on it.
// Shards synchronize conservatively: a cross-shard event must be scheduled
// at least the declared lookahead L > 0 after its sender's clock, raised by
// any per-sender output floor (Shard.SetOutFloor) or per-channel floor
// (Shard.SetChannelFloor) the model declares. Run computes each shard's
// earliest output time — its next pending event or its standing promise
// (Shard.Promise), whichever is later — and grants every shard a window
// bounded by the earliest instant any *other* shard could reach it, chained
// reactions included. Safe shards fan across worker goroutines, cross-shard
// sends are staged in sender-private outboxes the coordinator delivers at
// the next barrier, and trace emission is merge-ordered so the sink sees
// exactly the emission order a serial run would produce.
//
// With lookahead 0 (a model that interacts across shards at the same
// instant, like the 1988 Gamma network model) no concurrency is admissible;
// Run executes the shards' heaps in merged global order on one goroutine,
// byte-identical to the unpartitioned kernel. Either way the serialized
// path — Run with Workers <= 1 — is the oracle any worker count must match.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"gamma/internal/trace"
)

// Time is a point in simulated time, in microseconds since Run started.
type Time int64

// Dur is a span of simulated time, in microseconds.
type Dur = Time

// Common durations.
const (
	Microsecond Dur = 1
	Millisecond Dur = 1000
	Second      Dur = 1000000
)

// infTime is an unreachable deadline (Run's "no deadline" sentinel).
const infTime = Time(1) << 62

// Seconds converts a simulated time span to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a simulated duration.
func FromSeconds(s float64) Dur { return Dur(s * float64(Second)) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// shardIDBits is the width of the shard-id field in a lookahead-mode ord:
// the low 20 bits carry the scheduling shard's id, the high 44 bits its
// stamp counter. Up to ~1M shards and ~17T scheduling actions per shard.
const shardIDBits = 20

// Sim is a discrete-event simulation instance. The zero value is not usable;
// create one with New.
type Sim struct {
	shards []*Shard
	sh0    *Shard // shards[0], the default home for untagged objects

	// Partitioning state (see Partition).
	partitioned bool
	lookahead   Dur
	workers     int

	// Serialized-execution state: the global clock, the global schedule
	// counter (the ord source when lookahead is 0), and the shard whose
	// event is currently firing.
	now Time
	seq uint64
	cur *Shard

	// inWindow is true while worker goroutines execute a conservative
	// window in parallel. It is written by the coordinator between
	// barriers only, and every reader is sequenced after the write by the
	// window dispatch channels, so it needs no atomics.
	inWindow bool

	// dirty collects shards whose heaps received pushes during the current
	// event, so the merged serial loop can refresh its shard-order heap.
	dirty []*Shard
	tops  topHeap

	// streams and cuts are scratch space for the barrier trace flush:
	// streams collects the flushable per-shard prefixes, cuts[id] records
	// each shard's prefix length until the post-merge compaction.
	streams [][]trace.Keyed
	cuts    []int

	// EOT window-scheduler statistics (see WindowStats).
	wWindows      uint64
	wShardWindows uint64
	wShardRounds  uint64
	wGroupWindows uint64
	wFuseOps      uint64
	wSplitOps     uint64
	wcount        *WindowCounters

	// Adaptive shard fusion state (see fusion.go). groups is the window
	// scheduler's current partition of the shards into scheduling units;
	// glevel is the fusion level (group size 2^glevel). The f* fields are
	// the policy's events-per-round accumulator and probe bookkeeping.
	fusion     Fusion
	fuseOn     bool
	groups     []*group
	glevel     int
	fRounds    uint64
	fEvents    uint64
	fProbing   bool
	fProbeWait int
	fBaseLevel int

	executed uint64
	counter  *atomic.Int64 // optional shared executed-event counter
	trace    func(t Time, format string, args ...any)
	sink     trace.Sink
}

// New returns an empty, single-shard simulation with the clock at zero.
func New() *Sim {
	s := &Sim{fusion: Fusion{}.withDefaults()}
	s.sh0 = newShard(s, 0)
	s.shards = []*Shard{s.sh0}
	return s
}

// Now returns the current simulated time. In a parallel window shards have
// independent clocks; use Proc.Now or Shard.Now there.
func (s *Sim) Now() Time { return s.now }

// SetTrace installs a trace hook invoked by Proc.Tracef; nil disables
// tracing. The hook is serial-only: Run panics if it is set on a simulation
// about to execute parallel windows.
func (s *Sim) SetTrace(fn func(t Time, format string, args ...any)) { s.trace = fn }

// SetSink installs a structured event sink (typically a *trace.Collector)
// that receives typed records from the kernel and every model built on it;
// nil disables structured tracing. Under parallel windows the kernel
// buffers per-shard streams and merges them into the sink at each window
// barrier, so the sink observes exactly the serialized emission order at
// any worker count.
func (s *Sim) SetSink(sink trace.Sink) { s.sink = sink }

// Sink returns the installed structured event sink, or nil.
func (s *Sim) Sink() trace.Sink { return s.sink }

// Emit forwards a structured event to the sink, if one is installed.
// Emitters that compute event fields eagerly should check Tracing first.
// Emit is a serialized-context primitive; inside a parallel window use
// Proc.Emit or Shard.Emit, which route through the emitting shard's
// merge-ordered buffer.
func (s *Sim) Emit(e trace.Event) {
	if s.inWindow {
		panic("sim: Sim.Emit inside a parallel window; use Proc.Emit or Shard.Emit")
	}
	if s.sink != nil {
		s.sink.Emit(e)
	}
}

// Tracing reports whether a structured event sink is installed.
func (s *Sim) Tracing() bool { return s.sink != nil }

// emitOn forwards a structured event attributed to shard sh. During a
// parallel window it is buffered with the firing event's (at, ord) key and
// merged into the sink at the barrier; otherwise it goes straight through.
func (s *Sim) emitOn(sh *Shard, e trace.Event) {
	if s.inWindow {
		if s.sink == nil {
			return
		}
		sh.tbuf = append(sh.tbuf, trace.Keyed{At: int64(sh.now), Ord: sh.firingOrd, Sub: sh.emitIdx, E: e})
		sh.emitIdx++
		return
	}
	if s.sink != nil {
		s.sink.Emit(e)
	}
}

// Partition declares that the simulation will be partitioned into shards
// with the given conservative lookahead: a cross-shard event must be
// scheduled at least lookahead after its sender's clock. Lookahead 0 is
// legal and declares "cross-shard interaction may be instantaneous"; such a
// simulation always executes serialized (in merged global order), because
// no conservative window is safe. Partition must be called before any
// events are scheduled or processes spawned; AddShard then creates one
// shard per simulated node as the model is built.
func (s *Sim) Partition(lookahead Dur) {
	if s.sh0.events.len() > 0 || s.sh0.procs > 0 || s.now != 0 || s.seq != 0 {
		panic("sim: Partition must be called on a fresh simulation")
	}
	if lookahead < 0 {
		panic("sim: negative lookahead")
	}
	s.partitioned = true
	s.lookahead = lookahead
}

// Partitioned reports whether Partition has been called.
func (s *Sim) Partitioned() bool { return s.partitioned }

// Lookahead returns the declared conservative lookahead.
func (s *Sim) Lookahead() Dur { return s.lookahead }

// SetWorkers sets the number of worker goroutines Run may use to execute
// conservative windows in parallel. It only takes effect on a partitioned
// simulation with positive lookahead; otherwise Run stays serialized (the
// oracle path). n <= 1 selects serialized execution explicitly.
func (s *Sim) SetWorkers(n int) { s.workers = n }

// Workers returns the configured worker count (0 or 1 = serialized).
func (s *Sim) Workers() int { return s.workers }

// AddShard creates a new shard (partition) and returns its handle. Only
// valid on a partitioned simulation.
func (s *Sim) AddShard() *Shard {
	if !s.partitioned {
		panic("sim: AddShard on an unpartitioned simulation (call Partition first)")
	}
	sh := newShard(s, len(s.shards))
	if sh.id >= 1<<shardIDBits {
		panic("sim: too many shards")
	}
	s.shards = append(s.shards, sh)
	return sh
}

// DefaultShard returns shard 0, the home of every object not explicitly
// created on a shard.
func (s *Sim) DefaultShard() *Shard { return s.sh0 }

// Shards returns the number of shards (1 for an unpartitioned simulation).
func (s *Sim) Shards() int { return len(s.shards) }

// ctxShard resolves the scheduling context of a context-free primitive
// (At/After/Spawn): the shard whose event is currently firing, or shard 0
// during setup. Context-free primitives cannot attribute themselves inside
// a parallel window; shard- and proc-scoped methods exist for that.
func (s *Sim) ctxShard() *Shard {
	if s.inWindow {
		panic("sim: context-free scheduling (At/After/Spawn) inside a parallel window; use Shard or Proc methods")
	}
	if s.cur != nil {
		return s.cur
	}
	return s.sh0
}

// clockOf returns the scheduling context's view of "now": the shard clock
// inside a parallel window, the global clock otherwise.
func (s *Sim) clockOf(sh *Shard) Time {
	if s.inWindow {
		return sh.now
	}
	return s.now
}

// schedule enqueues an event on shard home, stamped from scheduling context
// src. It is the single ordering point of the kernel: every At, wake, and
// spawn passes through here, and the (at, ord) keys it assigns are
// identical whether the run is serialized or windowed — per-shard stamp
// counters advance with the shard's own deterministic execution, never with
// wall-clock scheduling.
func (s *Sim) schedule(src, home *Shard, at Time, p *Proc, fn func()) {
	if now := s.clockOf(src); at < now {
		at = now
	}
	var ord uint64
	if s.lookahead > 0 {
		src.stamp++
		ord = src.stamp<<shardIDBits | uint64(src.id)
		if home != src {
			// The conservative contract, checked identically in serialized
			// and windowed execution so the oracle and the parallel run
			// agree on every violation: the sender must be past its standing
			// promise, and the event must respect the effective channel
			// floor (lookahead raised by output/per-channel floors).
			now := s.clockOf(src)
			if now < src.quiet {
				panic(fmt.Sprintf("sim: cross-shard send from shard %d to shard %d at clock %v violates the shard's promise of no output before %v",
					src.id, home.id, now, src.quiet))
			}
			if floor := src.floorTo(home); at < now+floor {
				panic(fmt.Sprintf("sim: cross-shard event from shard %d to shard %d at %v violates lookahead %v (sender clock %v)",
					src.id, home.id, at, floor, now))
			}
		}
	} else {
		// Serialized execution: a single global schedule counter, exactly
		// the pre-partitioning kernel's FIFO-among-equal-times order.
		s.seq++
		ord = s.seq
	}
	e := event{at: at, ord: ord, p: p, fn: fn}
	if s.inWindow && home != src {
		if g := src.grp; g != nil && g == home.grp {
			// Intra-group send under fusion: deliver straight into the
			// member's heap so it can fire inside the same merged window —
			// the arrival is at least one positive floor past the sender's
			// clock, so it sorts strictly after the group's current merged
			// position (see runGroupMerged).
			home.events.push(e)
			g.dirty = append(g.dirty, home)
			return
		}
		src.outbox.put(len(s.shards), home.id, e)
		return
	}
	home.events.push(e)
	if len(s.shards) > 1 && !s.inWindow && home != s.cur {
		// Pushes to the currently firing shard need no dirty entry: the
		// merged serial loop re-registers the fired shard unconditionally.
		s.dirty = append(s.dirty, home)
	}
}

// At schedules fn to run at absolute time t (clamped to now) on the
// scheduling context's shard.
func (s *Sim) At(t Time, fn func()) {
	sh := s.ctxShard()
	s.schedule(sh, sh, t, nil, fn)
}

// After schedules fn to run d from now.
func (s *Sim) After(d Dur, fn func()) { s.At(s.now+d, fn) }

// Proc is a simulated process: a goroutine scheduled cooperatively by its
// home shard. All Proc methods must be called from the process's own
// goroutine, except Kill, which is called from kernel context.
type Proc struct {
	sim     *Sim
	shard   *Shard
	name    string
	resume  chan struct{}
	killed  bool
	wq      *WaitQ // wait queue the process is parked on, if any
	wqIdx   int    // slot in wq.procs, cached for O(1) removal
	parkSeq uint64 // increments per park; lets timed wakes detect staleness
}

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Shard returns the process's home shard.
func (p *Proc) Shard() *Shard { return p.shard }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time as the process observes it: its
// shard's clock inside a parallel window, the global clock otherwise.
func (p *Proc) Now() Time { return p.sim.clockOf(p.shard) }

// Emit forwards a structured event to the sink, attributed to the process's
// shard — safe in every execution mode, including parallel windows.
func (p *Proc) Emit(e trace.Event) { p.sim.emitOn(p.shard, e) }

// Tracef reports a trace event if tracing is enabled on the simulation.
func (p *Proc) Tracef(format string, args ...any) {
	if p.sim.trace != nil {
		p.sim.trace(p.Now(), "["+p.name+"] "+format, args...)
	}
}

// park suspends the process until some event calls wake. It transfers
// control back to the shard's event loop.
func (p *Proc) park() {
	sh := p.shard
	sh.parked++
	sh.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// killSentinel unwinds a killed process's stack; the spawn wrapper absorbs
// it so a kill is a clean exit, not a simulation failure.
type killSentinel struct{}

// Kill terminates the process: if it is parked it is unwound the next time
// it would resume (immediately when parked on a WaitQ; at its pending wake
// when sleeping or queued on a Resource), and if it has not started yet its
// body never runs. Must be called from kernel context (an event function or
// another process). In a parallel window the caller must be on the
// process's own shard. Killing a dead or already-killed process is a no-op.
func (p *Proc) Kill() {
	if p.killed {
		return
	}
	p.killed = true
	if p.wq != nil {
		p.wq.remove(p)
		p.wq = nil
		p.wake(p.sim.clockOf(p.shard))
	}
}

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// wake schedules the process to resume at time t. It must be called exactly
// once per park, from kernel context (an event function or another process
// on the same shard). The event carries the process directly — the shard
// loop performs the hand-off itself, so a park/wake cycle allocates no
// closure.
func (p *Proc) wake(t Time) {
	p.sim.schedule(p.shard, p.shard, t, p, nil)
}

// Sleep advances the process's virtual time by d.
func (p *Proc) Sleep(d Dur) {
	p.wake(p.Now() + d)
	p.park()
}

// WaitUntil blocks the process until absolute time t (no-op if t has passed).
// It is the synchronization half of Resource.UseAsync: issue work early,
// then wait for its completion time when the result is needed.
func (p *Proc) WaitUntil(t Time) {
	if now := p.Now(); t > now {
		p.Sleep(t - now)
	}
}

// Spawn starts fn as a new process at the current simulated time, homed on
// the scheduling context's shard.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt starts fn as a new process at absolute simulated time t.
func (s *Sim) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	return s.spawnOn(s.ctxShard(), t, name, fn)
}

// SpawnOn starts fn as a new process at the current simulated time, homed
// on shard sh: its events live in sh's heap and it executes under sh's
// hand-off discipline. Serialized contexts only; inside a parallel window
// use Shard.Spawn.
func (s *Sim) SpawnOn(sh *Shard, name string, fn func(p *Proc)) *Proc {
	s.ctxShard() // assert serialized context
	return s.spawnOn(sh, s.now, name, fn)
}

// spawnOn starts fn as a process homed on sh, first resumed at time t.
func (s *Sim) spawnOn(sh *Shard, t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, shard: sh, name: name, resume: make(chan struct{})}
	sh.procs++
	go func() {
		<-p.resume
		defer func() {
			sh.procs--
			if r := recover(); r != nil {
				if _, wasKilled := r.(killSentinel); !wasKilled && sh.failure == nil {
					sh.failure = procPanic{name: name, val: r}
				}
			}
			sh.yield <- struct{}{}
		}()
		if !p.killed {
			fn(p)
		}
	}()
	// The start is an ordinary wake: the goroutine above is "parked" on its
	// resume channel until the start event fires.
	sh.parked++
	p.wake(t)
	return p
}

type procPanic struct {
	name string
	val  any
}

func (e procPanic) String() string { return fmt.Sprintf("process %q panicked: %v", e.name, e.val) }

// fireSerial dispatches one event of shard sh in serialized execution: a
// wake event hands control to its process (the coalesced park/wake path —
// no closure, no extra event), a callback event runs its function in kernel
// context.
func (s *Sim) fireSerial(sh *Shard, e event) {
	s.now = e.at
	sh.now = e.at
	s.cur = sh
	s.executed++
	if e.p != nil {
		sh.parked--
		e.p.resume <- struct{}{}
		<-sh.yield
	} else {
		e.fn()
	}
	if sh.failure != nil {
		panic(sh.failure.(procPanic).String())
	}
}

// Run executes events until none remain, then returns the final clock
// value. On a partitioned simulation with positive lookahead and Workers
// > 1, shards execute conservative windows on a worker pool; in every
// other case (the oracle path) events fire one at a time in global
// (at, ord) order. It panics if a process panicked, or if live processes
// remain parked with no pending events (a simulated deadlock).
func (s *Sim) Run() Time {
	if s.partitioned && s.lookahead > 0 && s.workers > 1 && len(s.shards) > 1 {
		s.runWindows()
	} else {
		s.runSerial(infTime)
	}
	if n := s.parkedTotal(); n > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events", n))
	}
	s.flushCounter()
	return s.now
}

// RunUntil executes events with timestamps <= deadline and advances the
// clock to deadline. Parked processes may legitimately remain. RunUntil
// always executes serialized (it is a debugging/driver primitive, not the
// throughput path).
func (s *Sim) RunUntil(deadline Time) Time {
	s.runSerial(deadline)
	if s.now < deadline {
		s.setNow(deadline)
	}
	s.flushCounter()
	return s.now
}

// setNow advances the global clock and every shard clock to t.
func (s *Sim) setNow(t Time) {
	s.now = t
	for _, sh := range s.shards {
		if sh.now < t {
			sh.now = t
		}
	}
}

// runSerial fires events in global (at, ord) order on the calling
// goroutine until the calendar drains or every pending event lies beyond
// the deadline. One shard uses a tight loop on its heap; several use a
// lazy top-heap merged loop over the per-shard heaps.
func (s *Sim) runSerial(deadline Time) {
	defer func() { s.cur = nil }()
	if len(s.shards) == 1 {
		sh := s.sh0
		for sh.events.len() > 0 {
			if t, _ := sh.events.peek(); t > deadline {
				break
			}
			s.fireSerial(sh, sh.events.pop())
		}
		return
	}
	s.rebuildTops()
	for {
		sh, ok := s.minShard(deadline)
		if !ok {
			break
		}
		s.fireSerial(sh, sh.events.pop())
		// Fast path: refire the same shard while no other shard received a
		// push and its next head is still at or below the top heap's
		// minimum. Stale top entries only understate that minimum (a pushed
		// head always has a fresh entry via dirty; the fired shard needs
		// none while it is the one firing), so the comparison may leave the
		// fast path early but never fires out of order. This keeps a query
		// whose activity sits on one shard for a stretch — the common case
		// in the serialized experiments — from paying a heap round trip per
		// event.
		for len(s.dirty) == 0 {
			at, ord, ok := sh.events.head()
			if !ok || at > deadline {
				break
			}
			if len(s.tops) > 0 {
				top := s.tops[0]
				if top.at < at || (top.at == at && top.ord < ord) {
					break
				}
			}
			s.fireSerial(sh, sh.events.pop())
		}
		s.refreshTops(sh)
	}
}

// topEntry orders shards by the key of their earliest pending event.
// Entries are lazy: a shard's heap may have changed since its entry was
// pushed, so entries are validated against the live heap head on pop and
// discarded when stale.
type topEntry struct {
	at  Time
	ord uint64
	sh  *Shard
}

type topHeap []topEntry

func (h topHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].ord < h[j].ord
}

func (h *topHeap) push(e topEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *topHeap) pop() topEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = topEntry{}
	*h = old[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(c+1, c) {
			c++
		}
		if !h.less(c, i) {
			break
		}
		(*h)[i], (*h)[c] = (*h)[c], (*h)[i]
		i = c
	}
	return top
}

// rebuildTops seeds the shard-order heap from every non-empty shard.
func (s *Sim) rebuildTops() {
	s.tops = s.tops[:0]
	s.dirty = s.dirty[:0]
	for _, sh := range s.shards {
		if at, ord, ok := sh.events.head(); ok {
			s.tops.push(topEntry{at: at, ord: ord, sh: sh})
		}
	}
}

// refreshTops re-registers the fired shard and every shard whose heap
// received pushes during the event, then clears the dirty list.
func (s *Sim) refreshTops(fired *Shard) {
	if at, ord, ok := fired.events.head(); ok {
		s.tops.push(topEntry{at: at, ord: ord, sh: fired})
	}
	for _, sh := range s.dirty {
		if sh == fired {
			continue
		}
		if at, ord, ok := sh.events.head(); ok {
			s.tops.push(topEntry{at: at, ord: ord, sh: sh})
		}
	}
	s.dirty = s.dirty[:0]
}

// minShard returns the shard holding the globally earliest event at or
// before the deadline, discarding stale top entries on the way.
func (s *Sim) minShard(deadline Time) (*Shard, bool) {
	for len(s.tops) > 0 {
		top := s.tops[0]
		at, ord, ok := top.sh.events.head()
		if !ok || at != top.at || ord != top.ord {
			// Stale: the shard's head changed since this entry was pushed.
			// If the shard still has events it also has a fresher entry
			// (pushes refresh via dirty), so dropping is safe.
			s.tops.pop()
			continue
		}
		if at > deadline {
			return nil, false
		}
		s.tops.pop()
		return top.sh, true
	}
	return nil, false
}

// parkedTotal sums parked processes across shards.
func (s *Sim) parkedTotal() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.parked
	}
	return n
}

// Executed returns the number of events fired so far.
func (s *Sim) Executed() uint64 {
	n := s.executed
	for _, sh := range s.shards {
		n += sh.executed
	}
	return n
}

// SetEventCounter installs a shared counter that accumulates the number of
// events this simulation fires; Run and RunUntil flush into it on return.
// The bench runner uses one counter per experiment to report simulated
// events/sec even when an experiment runs many sims across goroutines.
func (s *Sim) SetEventCounter(c *atomic.Int64) { s.counter = c }

// flushCounter adds events fired since the last flush to the shared event
// counter, and window statistics to the shared window counters.
func (s *Sim) flushCounter() {
	if s.counter != nil {
		if n := s.Executed(); n > 0 {
			s.counter.Add(int64(n))
			s.executed = 0
			for _, sh := range s.shards {
				sh.executed = 0
			}
		}
	}
	if s.wcount != nil {
		if ws := s.WindowStats(); ws != (WindowStats{}) {
			s.wcount.Add(ws)
			s.wWindows, s.wShardWindows, s.wShardRounds = 0, 0, 0
			s.wGroupWindows, s.wFuseOps, s.wSplitOps = 0, 0, 0
			for _, sh := range s.shards {
				sh.wEvents, sh.promised = 0, 0
			}
		}
	}
}

// WindowStats aggregates the EOT window scheduler's activity for one
// simulation: how many parallel window rounds ran, how full they were, and
// how much promise traffic the model supplied. All fields stay zero on
// serialized runs (the oracle path executes no windows; promises are
// counted but flushed with the rest).
type WindowStats struct {
	Windows      int64 // barrier rounds that dispatched at least one shard
	ShardWindows int64 // shard-window dispatches (occupancy numerator)
	ShardRounds  int64 // rounds × shard count (occupancy denominator)
	WindowEvents int64 // events fired inside parallel windows
	Promises     int64 // Shard.Promise calls
	GroupWindows int64 // group dispatches (== ShardWindows when unfused)
	FuseOps      int64 // adaptive fusion level raises adopted
	SplitOps     int64 // adaptive fusion level drops adopted
}

// Occupancy returns the mean fraction of shards dispatched per window round
// (0 when no windows ran).
func (ws WindowStats) Occupancy() float64 {
	if ws.ShardRounds == 0 {
		return 0
	}
	return float64(ws.ShardWindows) / float64(ws.ShardRounds)
}

// WindowStats returns the scheduler statistics accumulated since the last
// flush into shared WindowCounters (or since the run started, when none are
// installed).
func (s *Sim) WindowStats() WindowStats {
	ws := WindowStats{
		Windows:      int64(s.wWindows),
		ShardWindows: int64(s.wShardWindows),
		ShardRounds:  int64(s.wShardRounds),
		GroupWindows: int64(s.wGroupWindows),
		FuseOps:      int64(s.wFuseOps),
		SplitOps:     int64(s.wSplitOps),
	}
	for _, sh := range s.shards {
		ws.WindowEvents += int64(sh.wEvents)
		ws.Promises += int64(sh.promised)
	}
	return ws
}

// WindowCounters accumulates WindowStats across many simulations; Run and
// RunUntil flush into the installed set on return, mirroring
// SetEventCounter. The bench runner installs one set per experiment so
// -json can report window occupancy even when an experiment runs many sims
// across goroutines.
type WindowCounters struct {
	Windows, ShardWindows, ShardRounds, WindowEvents, Promises atomic.Int64
	GroupWindows, FuseOps, SplitOps                            atomic.Int64
}

// Add folds ws into the counters.
func (c *WindowCounters) Add(ws WindowStats) {
	c.Windows.Add(ws.Windows)
	c.ShardWindows.Add(ws.ShardWindows)
	c.ShardRounds.Add(ws.ShardRounds)
	c.WindowEvents.Add(ws.WindowEvents)
	c.Promises.Add(ws.Promises)
	c.GroupWindows.Add(ws.GroupWindows)
	c.FuseOps.Add(ws.FuseOps)
	c.SplitOps.Add(ws.SplitOps)
}

// Stats returns the accumulated totals.
func (c *WindowCounters) Stats() WindowStats {
	return WindowStats{
		Windows:      c.Windows.Load(),
		ShardWindows: c.ShardWindows.Load(),
		ShardRounds:  c.ShardRounds.Load(),
		WindowEvents: c.WindowEvents.Load(),
		Promises:     c.Promises.Load(),
		GroupWindows: c.GroupWindows.Load(),
		FuseOps:      c.FuseOps.Load(),
		SplitOps:     c.SplitOps.Load(),
	}
}

// SetWindowCounters installs a shared window-statistics accumulator; Run
// and RunUntil flush into it on return and zero the per-sim counters.
func (s *Sim) SetWindowCounters(c *WindowCounters) { s.wcount = c }

// runWindows executes the partitioned simulation with conservative
// earliest-output-time (EOT) windows on a worker pool, in the
// Chandy–Misra–Bryant style. Each barrier the coordinator delivers the
// previous window's staged cross-shard sends, flushes every trace event
// that can no longer be preceded, and computes per-shard window bounds:
//
// A shard's earliest output time is eot_i = max(head_i, quiet_i) — it
// cannot initiate a cross-shard send before its next pending event fires,
// nor before its standing promise (Shard.Promise) expires. A send from i
// arrives no earlier than eot_i + floor(i→dst), where the floor is the
// declared lookahead raised by i's output floor and any per-channel floor.
// But a shard can also *react*: a message arriving at i at time a can
// trigger a send initiated at a, so the true earliest initiation is the
// fixpoint E_i = min(eot_i, min_k≠i(E_k + floor(k→i))). Every chained term
// passes through some first sender's eot + base floor, so with
// vMin = min over all shards of (eot_k + base_k) the understatement
// Ẽ_i = min(eot_i, vMin) ≤ E_i is sound, and shard j may fire every event
// strictly below
//
//	bound_j = min over i≠j of (Ẽ_i + floor(i→j)).
//
// The min is computed as a (min, second-min) pass over the shards without
// per-channel floors — so the frontier shard is bounded by the runner-up
// rather than by itself — followed by exact terms for the few shards that
// declare per-channel floors. bound_j is never below the old static
// T0 + lookahead, and when every other shard is idle or promised far ahead
// it reaches vMin + floor: two floors past the global frontier, which is
// what keeps windows large on fabrics whose latency floor is tiny.
//
// Windows are ragged (each shard has its own bound), so trace emissions are
// buffered per shard and flushed at each barrier only up to the global heap
// floor — below it nothing can fire again, so merged (at, ord, sub) order
// is final. Cross-shard sends made inside a window are staged in the
// sender's private outbox and delivered by the coordinator at the next
// barrier: the parallel phase touches only shard-private state and runs
// with no locks at all.
func (s *Sim) runWindows() {
	if s.trace != nil {
		panic("sim: SetTrace hook is serial-only; remove it before running with workers > 1")
	}
	s.glevel = s.initLevel()
	s.rebuildGroups()
	s.fRounds, s.fEvents = 0, 0
	s.fProbing = false
	s.fProbeWait = s.fusion.ProbePeriods

	nw := s.workers
	if nw > len(s.shards) {
		nw = len(s.shards)
	}
	// Epoch barrier: each round the coordinator publishes the runnable
	// groups and releases min(workers, runnable) tokens; workers claim
	// groups with an atomic cursor and the last engaged worker signals the
	// round done. Compared with a channel-per-group hand-off plus
	// WaitGroup, a thin round costs one token send and one atomic per
	// worker instead of a channel round trip per shard.
	b := &winBarrier{gate: make(chan struct{}, nw), done: make(chan struct{}, 1)}
	for i := 0; i < nw; i++ {
		go func() {
			for range b.gate {
				for {
					k := b.next.Add(1) - 1
					if k >= int64(len(b.queue)) {
						break
					}
					s.runGroup(b.queue[k])
				}
				if b.pending.Add(-1) == 0 {
					b.done <- struct{}{}
				}
			}
		}()
	}
	defer close(b.gate)

	runnable := make([]*group, 0, len(s.shards))
	chanGroups := make([]*group, 0, 4)
	for {
		// Barrier: deliver staged cross-shard sends, then flush every
		// buffered trace event below the global heap floor.
		for _, sh := range s.shards {
			s.drainOutbox(sh)
		}
		t0 := infTime
		for _, sh := range s.shards {
			if t, ok := sh.events.peek(); ok && t < t0 {
				t0 = t
			}
		}
		s.flushWindowTrace(t0)
		if t0 == infTime {
			break
		}

		// Adaptive fusion: between rounds (heaps settled, outboxes empty)
		// the policy may regroup the shards.
		s.fusionTick()

		// vMin: the earliest possible first hop anywhere in the cluster.
		// Bounds are computed per group; at fusion level 0 every group is
		// a singleton and this is exactly the per-shard computation.
		vMin := infTime
		for _, g := range s.groups {
			g.refresh()
			if g.eot != infTime {
				if v := g.eot + g.base; v < vMin {
					vMin = v
				}
			}
		}
		// (min, second-min) of Ẽ_g + base_g over groups whose outgoing
		// floors are uniform; groups with a member channel floor above its
		// base floor contribute exact per-destination terms instead. A
		// shard whose channel floors never exceed its base floor has
		// floorTo == baseFloor toward every destination, so the generic
		// term is exact for it too — that keeps the common
		// all-channels-equal topology (every nose NIC, the kernelscale
		// ring) out of the O(groups²) per-destination loop.
		u1, u2 := infTime, infTime
		var argU *group
		chanGroups = chanGroups[:0]
		for _, g := range s.groups {
			if g.chanOver {
				chanGroups = append(chanGroups, g)
				continue
			}
			u := g.eot
			if vMin < u {
				u = vMin
			}
			u += g.base
			if u < u1 {
				u1, u2, argU = u, u1, g
			} else if u < u2 {
				u2 = u
			}
		}
		runnable = runnable[:0]
		for _, g := range s.groups {
			if g.head == infTime {
				continue
			}
			bound := u1
			if g == argU {
				bound = u2
			}
			for _, src := range chanGroups {
				if src == g {
					continue
				}
				e := src.eot
				if vMin < e {
					e = vMin
				}
				if c := e + src.minFloorTo(g); c < bound {
					bound = c
				}
			}
			if g.head < bound {
				g.bound = bound
				g.fired = 0
				g.active = 0
				for _, sh := range g.members {
					if t, ok := sh.events.peek(); ok && t < bound {
						g.active++
					}
				}
				runnable = append(runnable, g)
			}
		}
		if len(runnable) == 0 {
			// Unreachable: the group holding the globally earliest event
			// always clears its own bound, because every inbound term is at
			// least t0 plus a positive floor. Fail loudly rather than spin.
			panic("sim: EOT window scheduler stalled with pending events")
		}
		s.wWindows++
		s.wShardRounds += uint64(len(s.shards))
		s.wGroupWindows += uint64(len(runnable))
		for _, g := range runnable {
			s.wShardWindows += uint64(g.active)
		}
		s.inWindow = true
		if len(runnable) == 1 {
			// A lone runnable group needs no hand-off; run it inline under
			// the same window semantics so ord stamping and clamping are
			// identical to the dispatched path.
			s.runGroup(runnable[0])
		} else {
			b.queue = runnable
			b.next.Store(0)
			k := nw
			if k > len(runnable) {
				k = len(runnable)
			}
			b.pending.Store(int64(k))
			for i := 0; i < k; i++ {
				b.gate <- struct{}{}
			}
			<-b.done
		}
		s.inWindow = false
		s.fRounds++
		for _, g := range runnable {
			s.fEvents += uint64(g.fired)
		}
		for _, sh := range s.shards {
			if sh.failure != nil {
				s.flushWindowTrace(infTime)
				panic(sh.failure.(procPanic).String())
			}
		}
	}
	// Final clock: the latest instant any shard reached.
	end := s.now
	for _, sh := range s.shards {
		if sh.now > end {
			end = sh.now
		}
	}
	s.setNow(end)
}

// winBarrier is the window scheduler's epoch barrier: queue/next publish
// the round's work, pending counts engaged workers, gate releases them and
// done reports the round complete. The coordinator writes queue before
// sending tokens (the channel send orders the writes) and reads worker
// results only after done (the last engaged worker's atomic decrement
// orders every worker's writes before the signal).
type winBarrier struct {
	queue   []*group
	next    atomic.Int64
	pending atomic.Int64
	gate    chan struct{}
	done    chan struct{}
}

// drainOutbox delivers sh's staged cross-shard sends into their destination
// heaps and resets the buckets, retaining their capacity. Coordinator
// context only — between windows, no shard is executing.
func (s *Sim) drainOutbox(sh *Shard) {
	o := &sh.outbox
	if len(o.dst) == 0 {
		return
	}
	for k, d := range o.dst {
		home := s.shards[d]
		evs := o.evs[k]
		for i := range evs {
			home.events.push(evs[i])
		}
		clear(evs) // release closure/proc references
		o.evs[k] = evs[:0]
		o.idx[d] = 0
	}
	o.dst = o.dst[:0]
}

// runShardWindow fires sh's events strictly below sh.bound. It runs on a
// worker goroutine (or inline for a lone runnable shard); everything it
// touches is shard-private, and a panic is captured into sh.failure for the
// coordinator to rethrow deterministically at the barrier.
func (s *Sim) runShardWindow(sh *Shard) {
	defer func() {
		if r := recover(); r != nil {
			if pp, ok := r.(procPanic); ok {
				if sh.failure == nil {
					sh.failure = pp
				}
			} else if sh.failure == nil {
				sh.failure = procPanic{name: fmt.Sprintf("shard%d event", sh.id), val: r}
			}
		}
	}()
	for sh.events.len() > 0 {
		if t, _ := sh.events.peek(); t >= sh.bound {
			break
		}
		e := sh.events.pop()
		sh.now = e.at
		if s.sink != nil {
			// One sentinel per firing (Sub -1, zero Event), whether or not
			// it emits: the barrier merge replays the serialized engine's
			// pick-the-min-pending-head loop, and a non-emitting firing
			// still gates that comparison — a same-time child it schedules
			// can carry a *smaller* ord (a freshly active shard's stamps
			// are small, an arrival carries its busy sender's large stamp),
			// so sorting emissions by key alone would hoist the child's
			// output above its parent's turn. See flushWindowTrace. Without
			// a sink the sentinels (and the firing bookkeeping they key)
			// are elided entirely — the merge has nothing to replay.
			sh.tbuf = append(sh.tbuf, trace.Keyed{At: int64(e.at), Ord: e.ord, Sub: -1})
			sh.firingOrd = e.ord
			sh.emitIdx = 0
		}
		sh.executed++
		sh.wEvents++
		if e.p != nil {
			sh.parked--
			e.p.resume <- struct{}{}
			<-sh.yield
		} else {
			e.fn()
		}
		if sh.failure != nil {
			return
		}
	}
}

// flushWindowTrace merges every buffered trace event with At strictly below
// safeT into the sink in exactly the serialized engine's emission order and
// retains the rest. Ragged EOT windows let a frontier shard buffer
// emissions far past its neighbors; those stay parked until no shard can
// fire below them (the caller passes the global heap floor as safeT — or
// infTime to flush everything at the end of the run).
//
// The merge is a k-way heads-merge of the per-shard buffers, each in firing
// order and carrying one record per fired event (the Sub -1 sentinels).
// That replays the serialized engine exactly: serially, the next event to
// fire is the minimum (at, ord) over the shards' pending heap heads, and
// below safeT every event has fired on its shard, so each buffer's current
// head IS that shard's heap head at the corresponding serial moment. A
// global sort by key would NOT be equivalent — a firing can schedule a
// same-time child whose ord is smaller than its own (per-shard stamps start
// small; an arrival carries its busy sender's large stamp), and serially
// that child's output still comes after its parent's turn. Buffers are
// nondecreasing in At (a shard's clock never retreats across windows), so
// the safeT split is a per-shard prefix cut.
func (s *Sim) flushWindowTrace(safeT Time) {
	if s.sink == nil {
		// No collector: sentinels are elided at the firing site, so the
		// per-shard buffers are empty and there is nothing to merge.
		return
	}
	if len(s.cuts) < len(s.shards) {
		s.cuts = make([]int, len(s.shards))
	}
	s.streams = s.streams[:0]
	any := false
	for _, sh := range s.shards {
		n := len(sh.tbuf)
		s.cuts[sh.id] = 0
		if n == 0 {
			continue
		}
		k := n
		if sh.tbuf[n-1].At >= int64(safeT) {
			k = sort.Search(n, func(i int) bool { return sh.tbuf[i].At >= int64(safeT) })
		}
		if k == 0 {
			continue
		}
		s.cuts[sh.id] = k
		any = true
		if s.sink != nil {
			s.streams = append(s.streams, sh.tbuf[:k])
		}
	}
	if !any {
		return
	}
	if len(s.streams) > 0 {
		trace.MergeKeyed(s.streams, func(e trace.Event) {
			if e.Kind != "" { // skip the per-firing sentinels
				s.sink.Emit(e)
			}
		})
	}
	for _, sh := range s.shards {
		k := s.cuts[sh.id]
		if k == 0 {
			continue
		}
		n := copy(sh.tbuf, sh.tbuf[k:])
		clear(sh.tbuf[n:]) // drop references to the emitted suffix copies
		sh.tbuf = sh.tbuf[:n]
	}
}
