// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated activities ("processes") are ordinary goroutines, but they run
// under a strict hand-off discipline: within one shard, exactly one
// goroutine — either the shard's event loop or a single process — executes
// at any moment, so process code needs no locking and every run of a
// simulation is deterministic. Processes advance the virtual clock only by
// blocking in kernel primitives (Sleep, Resource.Use, WaitQ.Park); pure
// computation takes zero simulated time unless it is explicitly charged to
// a Resource.
//
// The kernel is the substrate on which the Gamma and Teradata machine models
// are built: CPUs, disks, and network interfaces are Resources, and operator
// processes are Procs.
//
// # Partitioned execution
//
// A simulation is normally one shard — one event heap, one clock. Partition
// splits it into shards (one per simulated node), each owning a private
// event heap, clock, and the Resources, WaitQs, and Procs homed on it.
// Shards synchronize conservatively: with a declared lookahead L > 0, a
// shard may fire every event below min(all shard clocks) + L without
// consulting its neighbors, because a cross-shard event takes at least L of
// simulated time to arrive. Run then fans safe shards across worker
// goroutines, cross-shard sends travel as timestamped events through
// per-shard inboxes, and trace emission is merge-ordered so the sink sees
// the one global (at, ord) order a serial run would produce.
//
// With lookahead 0 (a model that interacts across shards at the same
// instant, like the 1988 Gamma network model) no concurrency is admissible;
// Run executes the shards' heaps in merged global order on one goroutine,
// byte-identical to the unpartitioned kernel. Either way the serialized
// path — Run with Workers <= 1 — is the oracle any worker count must match.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gamma/internal/trace"
)

// Time is a point in simulated time, in microseconds since Run started.
type Time int64

// Dur is a span of simulated time, in microseconds.
type Dur = Time

// Common durations.
const (
	Microsecond Dur = 1
	Millisecond Dur = 1000
	Second      Dur = 1000000
)

// infTime is an unreachable deadline (Run's "no deadline" sentinel).
const infTime = Time(1) << 62

// Seconds converts a simulated time span to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a simulated duration.
func FromSeconds(s float64) Dur { return Dur(s * float64(Second)) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// shardIDBits is the width of the shard-id field in a lookahead-mode ord:
// the low 20 bits carry the scheduling shard's id, the high 44 bits its
// stamp counter. Up to ~1M shards and ~17T scheduling actions per shard.
const shardIDBits = 20

// Sim is a discrete-event simulation instance. The zero value is not usable;
// create one with New.
type Sim struct {
	shards []*Shard
	sh0    *Shard // shards[0], the default home for untagged objects

	// Partitioning state (see Partition).
	partitioned bool
	lookahead   Dur
	workers     int

	// Serialized-execution state: the global clock, the global schedule
	// counter (the ord source when lookahead is 0), and the shard whose
	// event is currently firing.
	now Time
	seq uint64
	cur *Shard

	// inWindow is true while worker goroutines execute a conservative
	// window in parallel. It is written by the coordinator between
	// barriers only, and every reader is sequenced after the write by the
	// window dispatch channels, so it needs no atomics.
	inWindow bool

	// dirty collects shards whose heaps received pushes during the current
	// event, so the merged serial loop can refresh its shard-order heap.
	dirty []*Shard
	tops  topHeap

	// streams is scratch space for the per-window trace merge.
	streams [][]trace.Keyed

	executed uint64
	counter  *atomic.Int64 // optional shared executed-event counter
	trace    func(t Time, format string, args ...any)
	sink     trace.Sink
}

// New returns an empty, single-shard simulation with the clock at zero.
func New() *Sim {
	s := &Sim{}
	s.sh0 = newShard(s, 0)
	s.shards = []*Shard{s.sh0}
	return s
}

// Now returns the current simulated time. In a parallel window shards have
// independent clocks; use Proc.Now or Shard.Now there.
func (s *Sim) Now() Time { return s.now }

// SetTrace installs a trace hook invoked by Proc.Tracef; nil disables
// tracing. The hook is serial-only: Run panics if it is set on a simulation
// about to execute parallel windows.
func (s *Sim) SetTrace(fn func(t Time, format string, args ...any)) { s.trace = fn }

// SetSink installs a structured event sink (typically a *trace.Collector)
// that receives typed records from the kernel and every model built on it;
// nil disables structured tracing. Under parallel windows the kernel
// buffers per-shard streams and merges them into the sink in global
// (at, ord) order at each window barrier, so the sink observes exactly the
// serialized emission order at any worker count.
func (s *Sim) SetSink(sink trace.Sink) { s.sink = sink }

// Sink returns the installed structured event sink, or nil.
func (s *Sim) Sink() trace.Sink { return s.sink }

// Emit forwards a structured event to the sink, if one is installed.
// Emitters that compute event fields eagerly should check Tracing first.
// Emit is a serialized-context primitive; inside a parallel window use
// Proc.Emit or Shard.Emit, which route through the emitting shard's
// merge-ordered buffer.
func (s *Sim) Emit(e trace.Event) {
	if s.inWindow {
		panic("sim: Sim.Emit inside a parallel window; use Proc.Emit or Shard.Emit")
	}
	if s.sink != nil {
		s.sink.Emit(e)
	}
}

// Tracing reports whether a structured event sink is installed.
func (s *Sim) Tracing() bool { return s.sink != nil }

// emitOn forwards a structured event attributed to shard sh. During a
// parallel window it is buffered with the firing event's (at, ord) key and
// merged into the sink at the barrier; otherwise it goes straight through.
func (s *Sim) emitOn(sh *Shard, e trace.Event) {
	if s.inWindow {
		sh.tbuf = append(sh.tbuf, trace.Keyed{At: int64(sh.now), Ord: sh.firingOrd, Sub: sh.emitIdx, E: e})
		sh.emitIdx++
		return
	}
	if s.sink != nil {
		s.sink.Emit(e)
	}
}

// Partition declares that the simulation will be partitioned into shards
// with the given conservative lookahead: a cross-shard event must be
// scheduled at least lookahead after its sender's clock. Lookahead 0 is
// legal and declares "cross-shard interaction may be instantaneous"; such a
// simulation always executes serialized (in merged global order), because
// no conservative window is safe. Partition must be called before any
// events are scheduled or processes spawned; AddShard then creates one
// shard per simulated node as the model is built.
func (s *Sim) Partition(lookahead Dur) {
	if s.sh0.events.len() > 0 || s.sh0.procs > 0 || s.now != 0 || s.seq != 0 {
		panic("sim: Partition must be called on a fresh simulation")
	}
	if lookahead < 0 {
		panic("sim: negative lookahead")
	}
	s.partitioned = true
	s.lookahead = lookahead
}

// Partitioned reports whether Partition has been called.
func (s *Sim) Partitioned() bool { return s.partitioned }

// Lookahead returns the declared conservative lookahead.
func (s *Sim) Lookahead() Dur { return s.lookahead }

// SetWorkers sets the number of worker goroutines Run may use to execute
// conservative windows in parallel. It only takes effect on a partitioned
// simulation with positive lookahead; otherwise Run stays serialized (the
// oracle path). n <= 1 selects serialized execution explicitly.
func (s *Sim) SetWorkers(n int) { s.workers = n }

// Workers returns the configured worker count (0 or 1 = serialized).
func (s *Sim) Workers() int { return s.workers }

// AddShard creates a new shard (partition) and returns its handle. Only
// valid on a partitioned simulation.
func (s *Sim) AddShard() *Shard {
	if !s.partitioned {
		panic("sim: AddShard on an unpartitioned simulation (call Partition first)")
	}
	sh := newShard(s, len(s.shards))
	if sh.id >= 1<<shardIDBits {
		panic("sim: too many shards")
	}
	s.shards = append(s.shards, sh)
	return sh
}

// DefaultShard returns shard 0, the home of every object not explicitly
// created on a shard.
func (s *Sim) DefaultShard() *Shard { return s.sh0 }

// Shards returns the number of shards (1 for an unpartitioned simulation).
func (s *Sim) Shards() int { return len(s.shards) }

// ctxShard resolves the scheduling context of a context-free primitive
// (At/After/Spawn): the shard whose event is currently firing, or shard 0
// during setup. Context-free primitives cannot attribute themselves inside
// a parallel window; shard- and proc-scoped methods exist for that.
func (s *Sim) ctxShard() *Shard {
	if s.inWindow {
		panic("sim: context-free scheduling (At/After/Spawn) inside a parallel window; use Shard or Proc methods")
	}
	if s.cur != nil {
		return s.cur
	}
	return s.sh0
}

// clockOf returns the scheduling context's view of "now": the shard clock
// inside a parallel window, the global clock otherwise.
func (s *Sim) clockOf(sh *Shard) Time {
	if s.inWindow {
		return sh.now
	}
	return s.now
}

// schedule enqueues an event on shard home, stamped from scheduling context
// src. It is the single ordering point of the kernel: every At, wake, and
// spawn passes through here, and the (at, ord) keys it assigns are
// identical whether the run is serialized or windowed — per-shard stamp
// counters advance with the shard's own deterministic execution, never with
// wall-clock scheduling.
func (s *Sim) schedule(src, home *Shard, at Time, p *Proc, fn func()) {
	if now := s.clockOf(src); at < now {
		at = now
	}
	var ord uint64
	if s.lookahead > 0 {
		src.stamp++
		ord = src.stamp<<shardIDBits | uint64(src.id)
		if home != src && at < s.clockOf(src)+s.lookahead {
			panic(fmt.Sprintf("sim: cross-shard event from shard %d to shard %d at %v violates lookahead %v (sender clock %v)",
				src.id, home.id, at, s.lookahead, s.clockOf(src)))
		}
	} else {
		// Serialized execution: a single global schedule counter, exactly
		// the pre-partitioning kernel's FIFO-among-equal-times order.
		s.seq++
		ord = s.seq
	}
	e := event{at: at, ord: ord, p: p, fn: fn}
	if s.inWindow && home != src {
		home.inbox.put(e)
		return
	}
	home.events.push(e)
	if len(s.shards) > 1 && !s.inWindow {
		s.dirty = append(s.dirty, home)
	}
}

// At schedules fn to run at absolute time t (clamped to now) on the
// scheduling context's shard.
func (s *Sim) At(t Time, fn func()) {
	sh := s.ctxShard()
	s.schedule(sh, sh, t, nil, fn)
}

// After schedules fn to run d from now.
func (s *Sim) After(d Dur, fn func()) { s.At(s.now+d, fn) }

// Proc is a simulated process: a goroutine scheduled cooperatively by its
// home shard. All Proc methods must be called from the process's own
// goroutine, except Kill, which is called from kernel context.
type Proc struct {
	sim     *Sim
	shard   *Shard
	name    string
	resume  chan struct{}
	killed  bool
	wq      *WaitQ // wait queue the process is parked on, if any
	wqIdx   int    // slot in wq.procs, cached for O(1) removal
	parkSeq uint64 // increments per park; lets timed wakes detect staleness
}

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Shard returns the process's home shard.
func (p *Proc) Shard() *Shard { return p.shard }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time as the process observes it: its
// shard's clock inside a parallel window, the global clock otherwise.
func (p *Proc) Now() Time { return p.sim.clockOf(p.shard) }

// Emit forwards a structured event to the sink, attributed to the process's
// shard — safe in every execution mode, including parallel windows.
func (p *Proc) Emit(e trace.Event) { p.sim.emitOn(p.shard, e) }

// Tracef reports a trace event if tracing is enabled on the simulation.
func (p *Proc) Tracef(format string, args ...any) {
	if p.sim.trace != nil {
		p.sim.trace(p.Now(), "["+p.name+"] "+format, args...)
	}
}

// park suspends the process until some event calls wake. It transfers
// control back to the shard's event loop.
func (p *Proc) park() {
	sh := p.shard
	sh.parked++
	sh.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// killSentinel unwinds a killed process's stack; the spawn wrapper absorbs
// it so a kill is a clean exit, not a simulation failure.
type killSentinel struct{}

// Kill terminates the process: if it is parked it is unwound the next time
// it would resume (immediately when parked on a WaitQ; at its pending wake
// when sleeping or queued on a Resource), and if it has not started yet its
// body never runs. Must be called from kernel context (an event function or
// another process). In a parallel window the caller must be on the
// process's own shard. Killing a dead or already-killed process is a no-op.
func (p *Proc) Kill() {
	if p.killed {
		return
	}
	p.killed = true
	if p.wq != nil {
		p.wq.remove(p)
		p.wq = nil
		p.wake(p.sim.clockOf(p.shard))
	}
}

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// wake schedules the process to resume at time t. It must be called exactly
// once per park, from kernel context (an event function or another process
// on the same shard). The event carries the process directly — the shard
// loop performs the hand-off itself, so a park/wake cycle allocates no
// closure.
func (p *Proc) wake(t Time) {
	p.sim.schedule(p.shard, p.shard, t, p, nil)
}

// Sleep advances the process's virtual time by d.
func (p *Proc) Sleep(d Dur) {
	p.wake(p.Now() + d)
	p.park()
}

// WaitUntil blocks the process until absolute time t (no-op if t has passed).
// It is the synchronization half of Resource.UseAsync: issue work early,
// then wait for its completion time when the result is needed.
func (p *Proc) WaitUntil(t Time) {
	if now := p.Now(); t > now {
		p.Sleep(t - now)
	}
}

// Spawn starts fn as a new process at the current simulated time, homed on
// the scheduling context's shard.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt starts fn as a new process at absolute simulated time t.
func (s *Sim) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	return s.spawnOn(s.ctxShard(), t, name, fn)
}

// SpawnOn starts fn as a new process at the current simulated time, homed
// on shard sh: its events live in sh's heap and it executes under sh's
// hand-off discipline. Serialized contexts only; inside a parallel window
// use Shard.Spawn.
func (s *Sim) SpawnOn(sh *Shard, name string, fn func(p *Proc)) *Proc {
	s.ctxShard() // assert serialized context
	return s.spawnOn(sh, s.now, name, fn)
}

// spawnOn starts fn as a process homed on sh, first resumed at time t.
func (s *Sim) spawnOn(sh *Shard, t Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, shard: sh, name: name, resume: make(chan struct{})}
	sh.procs++
	go func() {
		<-p.resume
		defer func() {
			sh.procs--
			if r := recover(); r != nil {
				if _, wasKilled := r.(killSentinel); !wasKilled && sh.failure == nil {
					sh.failure = procPanic{name: name, val: r}
				}
			}
			sh.yield <- struct{}{}
		}()
		if !p.killed {
			fn(p)
		}
	}()
	// The start is an ordinary wake: the goroutine above is "parked" on its
	// resume channel until the start event fires.
	sh.parked++
	p.wake(t)
	return p
}

type procPanic struct {
	name string
	val  any
}

func (e procPanic) String() string { return fmt.Sprintf("process %q panicked: %v", e.name, e.val) }

// fireSerial dispatches one event of shard sh in serialized execution: a
// wake event hands control to its process (the coalesced park/wake path —
// no closure, no extra event), a callback event runs its function in kernel
// context.
func (s *Sim) fireSerial(sh *Shard, e event) {
	s.now = e.at
	sh.now = e.at
	s.cur = sh
	s.executed++
	if e.p != nil {
		sh.parked--
		e.p.resume <- struct{}{}
		<-sh.yield
	} else {
		e.fn()
	}
	if sh.failure != nil {
		panic(sh.failure.(procPanic).String())
	}
}

// Run executes events until none remain, then returns the final clock
// value. On a partitioned simulation with positive lookahead and Workers
// > 1, shards execute conservative windows on a worker pool; in every
// other case (the oracle path) events fire one at a time in global
// (at, ord) order. It panics if a process panicked, or if live processes
// remain parked with no pending events (a simulated deadlock).
func (s *Sim) Run() Time {
	if s.partitioned && s.lookahead > 0 && s.workers > 1 && len(s.shards) > 1 {
		s.runWindows()
	} else {
		s.runSerial(infTime)
	}
	if n := s.parkedTotal(); n > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with no pending events", n))
	}
	s.flushCounter()
	return s.now
}

// RunUntil executes events with timestamps <= deadline and advances the
// clock to deadline. Parked processes may legitimately remain. RunUntil
// always executes serialized (it is a debugging/driver primitive, not the
// throughput path).
func (s *Sim) RunUntil(deadline Time) Time {
	s.runSerial(deadline)
	if s.now < deadline {
		s.setNow(deadline)
	}
	s.flushCounter()
	return s.now
}

// setNow advances the global clock and every shard clock to t.
func (s *Sim) setNow(t Time) {
	s.now = t
	for _, sh := range s.shards {
		if sh.now < t {
			sh.now = t
		}
	}
}

// runSerial fires events in global (at, ord) order on the calling
// goroutine until the calendar drains or every pending event lies beyond
// the deadline. One shard uses a tight loop on its heap; several use a
// lazy top-heap merged loop over the per-shard heaps.
func (s *Sim) runSerial(deadline Time) {
	defer func() { s.cur = nil }()
	if len(s.shards) == 1 {
		sh := s.sh0
		for sh.events.len() > 0 {
			if t, _ := sh.events.peek(); t > deadline {
				break
			}
			s.fireSerial(sh, sh.events.pop())
		}
		return
	}
	s.rebuildTops()
	for {
		sh, ok := s.minShard(deadline)
		if !ok {
			break
		}
		s.fireSerial(sh, sh.events.pop())
		s.refreshTops(sh)
	}
}

// topEntry orders shards by the key of their earliest pending event.
// Entries are lazy: a shard's heap may have changed since its entry was
// pushed, so entries are validated against the live heap head on pop and
// discarded when stale.
type topEntry struct {
	at  Time
	ord uint64
	sh  *Shard
}

type topHeap []topEntry

func (h topHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].ord < h[j].ord
}

func (h *topHeap) push(e topEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *topHeap) pop() topEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = topEntry{}
	*h = old[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(c+1, c) {
			c++
		}
		if !h.less(c, i) {
			break
		}
		(*h)[i], (*h)[c] = (*h)[c], (*h)[i]
		i = c
	}
	return top
}

// rebuildTops seeds the shard-order heap from every non-empty shard.
func (s *Sim) rebuildTops() {
	s.tops = s.tops[:0]
	s.dirty = s.dirty[:0]
	for _, sh := range s.shards {
		if at, ord, ok := sh.events.head(); ok {
			s.tops.push(topEntry{at: at, ord: ord, sh: sh})
		}
	}
}

// refreshTops re-registers the fired shard and every shard whose heap
// received pushes during the event, then clears the dirty list.
func (s *Sim) refreshTops(fired *Shard) {
	if at, ord, ok := fired.events.head(); ok {
		s.tops.push(topEntry{at: at, ord: ord, sh: fired})
	}
	for _, sh := range s.dirty {
		if sh == fired {
			continue
		}
		if at, ord, ok := sh.events.head(); ok {
			s.tops.push(topEntry{at: at, ord: ord, sh: sh})
		}
	}
	s.dirty = s.dirty[:0]
}

// minShard returns the shard holding the globally earliest event at or
// before the deadline, discarding stale top entries on the way.
func (s *Sim) minShard(deadline Time) (*Shard, bool) {
	for len(s.tops) > 0 {
		top := s.tops[0]
		at, ord, ok := top.sh.events.head()
		if !ok || at != top.at || ord != top.ord {
			// Stale: the shard's head changed since this entry was pushed.
			// If the shard still has events it also has a fresher entry
			// (pushes refresh via dirty), so dropping is safe.
			s.tops.pop()
			continue
		}
		if at > deadline {
			return nil, false
		}
		s.tops.pop()
		return top.sh, true
	}
	return nil, false
}

// parkedTotal sums parked processes across shards.
func (s *Sim) parkedTotal() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.parked
	}
	return n
}

// Executed returns the number of events fired so far.
func (s *Sim) Executed() uint64 {
	n := s.executed
	for _, sh := range s.shards {
		n += sh.executed
	}
	return n
}

// SetEventCounter installs a shared counter that accumulates the number of
// events this simulation fires; Run and RunUntil flush into it on return.
// The bench runner uses one counter per experiment to report simulated
// events/sec even when an experiment runs many sims across goroutines.
func (s *Sim) SetEventCounter(c *atomic.Int64) { s.counter = c }

// flushCounter adds events fired since the last flush to the shared counter.
func (s *Sim) flushCounter() {
	if s.counter == nil {
		return
	}
	if n := s.Executed(); n > 0 {
		s.counter.Add(int64(n))
		s.executed = 0
		for _, sh := range s.shards {
			sh.executed = 0
		}
	}
}

// runWindows executes the partitioned simulation with conservative
// synchronization on a worker pool. Each round the coordinator drains every
// shard inbox, computes the global floor T0 = min over shards of their
// earliest pending event, and releases every shard holding events below
// T0 + lookahead to the workers; such events cannot be affected by any
// neighbor, because a cross-shard event sent at or after T0 arrives no
// earlier than T0 + lookahead. Cross-shard sends made inside the window are
// buffered in the target's inbox and become visible at the next barrier;
// per-shard trace streams are merged into the sink in global (at, ord)
// order at each barrier.
func (s *Sim) runWindows() {
	if s.trace != nil {
		panic("sim: SetTrace hook is serial-only; remove it before running with workers > 1")
	}
	nw := s.workers
	if nw > len(s.shards) {
		nw = len(s.shards)
	}
	work := make(chan *Shard)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		go func() {
			for sh := range work {
				s.runShardWindow(sh)
				wg.Done()
			}
		}()
	}
	defer close(work)

	runnable := make([]*Shard, 0, len(s.shards))
	for {
		for _, sh := range s.shards {
			sh.drainInbox()
		}
		t0 := infTime
		for _, sh := range s.shards {
			if t, ok := sh.events.peek(); ok && t < t0 {
				t0 = t
			}
		}
		if t0 == infTime {
			break
		}
		bound := t0 + s.lookahead
		runnable = runnable[:0]
		for _, sh := range s.shards {
			if t, ok := sh.events.peek(); ok && t < bound {
				sh.bound = bound
				runnable = append(runnable, sh)
			}
		}
		s.inWindow = true
		if len(runnable) == 1 {
			// A lone runnable shard needs no hand-off; run it inline under
			// the same window semantics so ord stamping and clamping are
			// identical to the dispatched path.
			s.runShardWindow(runnable[0])
		} else {
			wg.Add(len(runnable))
			for _, sh := range runnable {
				work <- sh
			}
			wg.Wait()
		}
		s.inWindow = false
		s.mergeWindowTrace(runnable)
		for _, sh := range runnable {
			if sh.failure != nil {
				panic(sh.failure.(procPanic).String())
			}
		}
	}
	// Final clock: the latest instant any shard reached.
	end := s.now
	for _, sh := range s.shards {
		if sh.now > end {
			end = sh.now
		}
	}
	s.setNow(end)
}

// runShardWindow fires sh's events strictly below sh.bound. It runs on a
// worker goroutine (or inline for a lone runnable shard); everything it
// touches is shard-private, and a panic is captured into sh.failure for the
// coordinator to rethrow deterministically at the barrier.
func (s *Sim) runShardWindow(sh *Shard) {
	defer func() {
		if r := recover(); r != nil {
			if pp, ok := r.(procPanic); ok {
				if sh.failure == nil {
					sh.failure = pp
				}
			} else if sh.failure == nil {
				sh.failure = procPanic{name: fmt.Sprintf("shard%d event", sh.id), val: r}
			}
		}
	}()
	for sh.events.len() > 0 {
		if t, _ := sh.events.peek(); t >= sh.bound {
			break
		}
		e := sh.events.pop()
		sh.now = e.at
		sh.firingOrd = e.ord
		sh.emitIdx = 0
		sh.executed++
		if e.p != nil {
			sh.parked--
			e.p.resume <- struct{}{}
			<-sh.yield
		} else {
			e.fn()
		}
		if sh.failure != nil {
			return
		}
	}
}

// mergeWindowTrace merges the window's per-shard trace buffers into the
// sink in global (at, ord, sub) order and resets the buffers.
func (s *Sim) mergeWindowTrace(runnable []*Shard) {
	if s.sink == nil {
		for _, sh := range runnable {
			sh.tbuf = sh.tbuf[:0]
		}
		return
	}
	s.streams = s.streams[:0]
	for _, sh := range runnable {
		if len(sh.tbuf) > 0 {
			s.streams = append(s.streams, sh.tbuf)
		}
	}
	if len(s.streams) > 0 {
		trace.MergeKeyed(s.streams, s.sink.Emit)
	}
	for _, sh := range runnable {
		sh.tbuf = sh.tbuf[:0]
	}
}
