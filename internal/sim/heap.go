package sim

// event is one pending occurrence in a shard's calendar. Exactly one of
// p/fn is set: wake events carry the process to resume directly (no closure
// allocation per park/wake), fn events carry arbitrary kernel callbacks.
//
// ord is the global tie-break among equal-time events. In serialized
// execution it is a global schedule counter (FIFO among equal times, exactly
// the pre-partitioning kernel order); in lookahead execution it is a
// per-shard stamp composite (see Sim.schedule). Either way (at, ord) is a
// deterministic total order over all events of a run, independent of worker
// count — the invariant every byte-identical-trace guarantee rests on.
type event struct {
	at  Time
	ord uint64 // tie-break so equal-time events fire in a fixed total order
	p   *Proc  // wake event: process to resume (nil for fn events)
	fn  func() // callback event (nil for wake events)
}

// eventHeap is a 4-ary min-heap of events ordered by (at, ord). It is
// deliberately monomorphic — no container/heap, no interface boxing — so the
// steady-state schedule/fire cycle allocates nothing: Push appends into the
// backing slice (amortized growth only) and Pop shrinks it in place.
//
// A 4-ary layout halves tree depth versus binary, trading slightly more
// comparisons per level for fewer cache-missing swaps — the standard shape
// for event calendars with large pending sets (the multi-user experiments
// keep thousands of events in flight).
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

// less orders by time, then by the deterministic tie-break key.
func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// push inserts e, sifting it up from the last slot.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The vacated slot is zeroed so
// the heap does not pin dead closures or processes for the GC.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{}
	h.ev = h.ev[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

// siftDown restores heap order below slot i.
func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			return
		}
		h.ev[i], h.ev[min] = h.ev[min], h.ev[i]
		i = min
	}
}

// peek returns the earliest pending time (only valid when non-empty).
func (h *eventHeap) peek() (Time, bool) {
	if len(h.ev) == 0 {
		return 0, false
	}
	return h.ev[0].at, true
}

// head returns the key of the earliest pending event (only valid when
// non-empty). The merged serial loop and the window scheduler use it to
// order shards against each other.
func (h *eventHeap) head() (Time, uint64, bool) {
	if len(h.ev) == 0 {
		return 0, 0, false
	}
	return h.ev[0].at, h.ev[0].ord, true
}
