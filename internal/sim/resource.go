package sim

import "gamma/internal/trace"

// nopFn is the shared no-op callback for clock-advancing completion events,
// so UseAsync does not allocate a closure per request.
var nopFn = func() {}

// Resource is a non-preemptive FIFO queueing server: requests are served one
// at a time, in arrival order, each for a caller-specified service time.
// CPUs, disk drives, network interfaces, and the token ring are all modeled
// as Resources.
//
// Because arrivals are totally ordered by the deterministic event loop, FIFO
// order is captured by a single "busy until" horizon rather than an explicit
// queue.
//
// A resource is homed on a shard; under the window scheduler it must only be
// used from that shard's context (its state is shard-private and unlocked).
type Resource struct {
	sim       *Sim
	shard     *Shard
	name      string
	busyUntil Time

	// Statistics.
	busy     Dur   // total service time delivered
	requests int64 // number of requests served
	waited   Dur   // total time requests spent queued before service
}

// NewResource creates a named FIFO resource homed on the scheduling
// context's shard.
func (s *Sim) NewResource(name string) *Resource {
	return &Resource{sim: s, shard: s.ctxShard(), name: name}
}

// NewResource creates a named FIFO resource homed on this shard.
func (sh *Shard) NewResource(name string) *Resource {
	return &Resource{sim: sh.s, shard: sh, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Shard returns the shard the resource is homed on.
func (r *Resource) Shard() *Shard { return r.shard }

// Use blocks p while the resource queues and then serves a request of
// duration d. It returns after service completes.
func (r *Resource) Use(p *Proc, d Dur) {
	done := r.schedule(d)
	p.wake(done)
	p.park()
}

// UseAsync enqueues a request of duration d without blocking the caller and
// returns the simulated time at which service will complete. It models work
// handed to a device that the requesting process does not wait for (e.g. a
// write-behind disk flush). A completion event is scheduled so the clock
// always advances past the work even if nobody waits on it.
func (r *Resource) UseAsync(d Dur) Time {
	done := r.schedule(d)
	r.sim.schedule(r.shard, r.shard, done, nil, nopFn)
	return done
}

// schedule reserves the next service slot and returns its completion time.
func (r *Resource) schedule(d Dur) Time {
	if d < 0 {
		d = 0
	}
	now := r.sim.clockOf(r.shard)
	start := now
	if r.busyUntil > start {
		r.waited += r.busyUntil - start
		start = r.busyUntil
	}
	r.busyUntil = start + d
	r.busy += d
	r.requests++
	if r.sim.sink != nil {
		// Both records are emitted at schedule time: arrivals are totally
		// ordered by the event loop, so the service interval [start, end]
		// is already final. The release record's At is the completion
		// instant; the stream is therefore in emission order, not
		// timestamp order.
		r.sim.emitOn(r.shard, trace.Event{
			At: int64(now), Kind: trace.KindAcquire, Res: r.name,
			Wait: int64(start - now),
		})
		r.sim.emitOn(r.shard, trace.Event{
			At: int64(r.busyUntil), Kind: trace.KindRelease, Res: r.name,
			Start: int64(start), End: int64(r.busyUntil),
		})
	}
	return r.busyUntil
}

// BusyUntil returns the time at which all currently queued work completes.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Stats reports totals: service time delivered, requests served, and
// cumulative queueing delay.
func (r *Resource) Stats() (busy Dur, requests int64, waited Dur) {
	return r.busy, r.requests, r.waited
}

// Utilization returns the fraction of the interval [0, horizon] the resource
// spent serving requests.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / float64(horizon)
}
