package sim

import (
	"fmt"

	"gamma/internal/trace"
)

// Adaptive shard fusion.
//
// The EOT window scheduler (runWindows) pays a fixed coordination cost per
// barrier round: outbox delivery, bound computation, worker dispatch, trace
// flush. That cost is won back only when the windows it buys are thick —
// the synthetic kernelscale ring fires ~768 events per round, but the real
// query experiments run at 0.28–0.37 occupancy with ~15 events per round,
// and there the coordination dominates and the partitioned kernel loses to
// the serial oracle (BENCH_9.json, rdma generation).
//
// Fusion closes that gap by making the execution grain adaptive. Shards are
// organized into contiguous groups of 2^level members; the window scheduler
// computes bounds per *group* (the same vMin / (min, second-min) / exact
// channel-term math, with the group's earliest output time and minimum
// outgoing floor standing in for the shard's), and a multi-member group
// executes its members' heaps in merged (at, ord) order on one worker —
// intra-group sends are delivered straight into the destination heap and may
// fire inside the same window, exactly like the serial merged loop. At
// level 0 every group is a singleton and the scheduler is byte-for-byte the
// unfused one; at fusion=all the whole simulation is one group and a window
// is a bounded slice (Quantum events) of the serial merged loop with a
// cheap periodic barrier. A feedback loop on the events-per-round counter
// moves the level up when rounds run thin and back down when traffic
// returns, with hysteresis and, from full fusion (where the quantum caps
// the counter and hides returning parallelism), periodic one-level probes.
//
// Byte-identity survives every level because nothing observable depends on
// the grain: ord stamps are per-shard and advance with the shard's own
// deterministic execution; each member still fires its private heap in
// (at, ord) order; an intra-group arrival always lands strictly after the
// group's current merged position (its timestamp is at least the sender's
// clock plus a positive floor), so the merged order a group executes is the
// serial order restricted to its members; and trace sentinels are buffered
// per shard as always, so the barrier merge reconstructs the serial
// emission order unchanged. Group bounds are sound for the same reason
// shard bounds are: a group's first outward send happens no earlier than
// min(eot_g, vMin) plus its minimum outgoing floor — intra-group chains
// can only re-initiate at or after eot_g, never before.

// Fusion configures adaptive shard fusion for the window scheduler. The
// zero value selects the adaptive defaults; Off pins the scheduler at
// level 0 (one shard per group, the pre-fusion behavior). Install with
// Sim.SetFusion before Run.
type Fusion struct {
	// Off disables fusion: the scheduler always runs one shard per group.
	Off bool
	// InitLevel is the starting fusion level (group size 2^level). 0 starts
	// fully split; -1 starts fully fused (one group), the "all" mode.
	InitLevel int
	// FuseBelow: when a policy period averages fewer events per barrier
	// round than this, the level is raised (groups double). Default 64.
	FuseBelow int
	// SplitAbove: when a period averages at least this many events per
	// round and more than one group exists, the level is lowered.
	// Default 512.
	SplitAbove int
	// EvalRounds is the number of barrier rounds per policy period.
	// Default 24.
	EvalRounds int
	// ProbePeriods: from full fusion — where the quantum caps the
	// events-per-round counter and hides returning parallel traffic — the
	// policy probes one level down every this many periods and keeps the
	// split only if the probe period runs thick. Default 4.
	ProbePeriods int
	// Quantum caps the events a multi-member group fires in one window, so
	// a fully fused simulation still reaches a barrier (and the policy)
	// periodically and trace memory stays bounded. Default 2048.
	Quantum int
}

// withDefaults fills unset tuning fields with the adaptive defaults.
func (f Fusion) withDefaults() Fusion {
	if f.FuseBelow == 0 {
		f.FuseBelow = 64
	}
	if f.SplitAbove == 0 {
		f.SplitAbove = 512
	}
	if f.EvalRounds == 0 {
		f.EvalRounds = 24
	}
	if f.ProbePeriods == 0 {
		f.ProbePeriods = 4
	}
	if f.Quantum == 0 {
		f.Quantum = 2048
	}
	return f
}

// SetFusion installs the adaptive fusion policy (see Fusion). Call before
// Run; the default is no fusion, which preserves the one-shard-per-group
// scheduler exactly.
func (s *Sim) SetFusion(f Fusion) {
	s.fusion = f.withDefaults()
	s.fuseOn = !f.Off
}

// FusionLevel returns the window scheduler's current fusion level: groups
// hold 2^level shards (capped at the shard count). 0 until a windowed run
// engages the policy.
func (s *Sim) FusionLevel() int { return s.glevel }

// group is one scheduling unit of the fused window scheduler: a contiguous
// run of shards that the coordinator bounds together and one worker
// executes together. A singleton group behaves exactly like a bare shard.
type group struct {
	members []*Shard

	// Per-round scratch, written by the coordinator at each barrier.
	head     Time // earliest pending event over the members
	eot      Time // earliest outward-send instant over the members
	base     Dur  // minimum outgoing base floor over the members
	chanOver bool // some member declares a channel floor above its base
	bound    Time // exclusive window bound granted this round
	active   int  // members with a pending event below bound this round

	// fired counts the events the group fired in the current window; the
	// worker writes it, the coordinator reads it after the barrier.
	fired int

	// Merged-execution scratch (multi-member groups only): the lazy
	// member-order heap and the list of members that received intra-group
	// pushes during the current firing.
	tops  topHeap
	dirty []*Shard
}

// refresh recomputes the group's per-round summary from its members.
func (g *group) refresh() {
	g.head, g.eot, g.chanOver = infTime, infTime, false
	g.base = infTime
	for _, sh := range g.members {
		bf := sh.baseFloor()
		if bf < g.base {
			g.base = bf
		}
		if sh.maxChan > bf {
			g.chanOver = true
		}
		if t, ok := sh.events.peek(); ok {
			if t < g.head {
				g.head = t
			}
			if sh.quiet > t {
				t = sh.quiet
			}
			if t < g.eot {
				g.eot = t
			}
		}
	}
}

// minFloorTo returns the smallest effective floor on any send from a member
// of src to a member of dst (the groups are disjoint). Members without a
// raised channel floor contribute their base floor directly; only the rare
// channel-floored members walk dst's membership.
func (src *group) minFloorTo(dst *group) Dur {
	f := Dur(infTime)
	for _, i := range src.members {
		bf := i.baseFloor()
		if i.maxChan <= bf {
			if bf < f {
				f = bf
			}
			continue
		}
		for _, j := range dst.members {
			if c := i.floorTo(j); c < f {
				f = c
			}
		}
	}
	return f
}

// initLevel returns the fusion level a windowed run starts at.
func (s *Sim) initLevel() int {
	if !s.fuseOn {
		return 0
	}
	if s.fusion.InitLevel < 0 {
		l := 0
		for 1<<uint(l) < len(s.shards) {
			l++
		}
		return l
	}
	return s.fusion.InitLevel
}

// rebuildGroups repartitions the shards into contiguous groups of
// 2^glevel members (the tail group may be short) and points each shard at
// its group. Coordinator context only — between windows, no shard is
// executing.
func (s *Sim) rebuildGroups() {
	size := 1
	if s.glevel > 0 {
		size = 1 << uint(s.glevel)
	}
	if size > len(s.shards) {
		size = len(s.shards)
	}
	s.groups = s.groups[:0]
	for i := 0; i < len(s.shards); i += size {
		j := i + size
		if j > len(s.shards) {
			j = len(s.shards)
		}
		g := &group{members: s.shards[i:j]}
		for _, sh := range g.members {
			sh.grp = g
		}
		s.groups = append(s.groups, g)
	}
}

// fusionTick runs the adaptive policy at a barrier: once per EvalRounds
// rounds it compares the period's mean events per round against the
// hysteresis band and moves the fusion level one step. From full fusion the
// events-per-round signal saturates at the quantum whether or not the
// workload would parallelize, so instead of splitting directly the policy
// probes: every ProbePeriods periods it drops one level for a single period
// and keeps the split only if that period actually ran thick.
func (s *Sim) fusionTick() {
	if !s.fuseOn || len(s.shards) < 2 {
		return
	}
	if s.fRounds < uint64(s.fusion.EvalRounds) {
		return
	}
	epr := float64(s.fEvents) / float64(s.fRounds)
	s.fRounds, s.fEvents = 0, 0
	old := s.glevel
	switch {
	case s.fProbing:
		s.fProbing = false
		if epr >= float64(s.fusion.SplitAbove) {
			// Traffic returned while probing: keep the probed (lower) level.
			s.wSplitOps++
		} else {
			s.glevel = s.fBaseLevel
		}
		s.fProbeWait = s.fusion.ProbePeriods
	case epr < float64(s.fusion.FuseBelow) && len(s.groups) > 1:
		s.glevel++
		s.wFuseOps++
		s.fProbeWait = s.fusion.ProbePeriods
	case epr >= float64(s.fusion.SplitAbove) && s.glevel > 0 && len(s.groups) > 1:
		s.glevel--
		s.wSplitOps++
	case s.glevel > 0 && len(s.groups) == 1:
		s.fProbeWait--
		if s.fProbeWait <= 0 {
			s.fProbing = true
			s.fBaseLevel = s.glevel
			s.glevel--
		}
	}
	if s.glevel != old {
		s.rebuildGroups()
	}
}

// runGroup executes one group's window: a singleton group runs the plain
// per-shard loop, a multi-member group the merged loop. Worker context (or
// inline for a lone runnable group).
func (s *Sim) runGroup(g *group) {
	if len(g.members) == 1 {
		sh := g.members[0]
		sh.bound = g.bound
		before := sh.wEvents
		s.runShardWindow(sh)
		g.fired = int(sh.wEvents - before)
		return
	}
	s.runGroupMerged(g)
}

// runGroupMerged fires the group's members in merged (at, ord) order,
// strictly below g.bound and at most Quantum events — the serial merged
// loop restricted to the group. Intra-group sends land directly in the
// destination member's heap (schedule routes them here instead of the
// outbox) and may fire inside the same window: an arrival's timestamp is at
// least the sender's clock plus a positive floor, so it always sorts
// strictly after the group's current merged position and the executed order
// remains exactly the serial order restricted to the members. Everything
// touched is group-private; a panic is captured into the firing shard's
// failure slot for the coordinator to rethrow at the barrier.
func (s *Sim) runGroupMerged(g *group) {
	var cur *Shard
	defer func() {
		if r := recover(); r != nil {
			sh := cur
			if sh == nil {
				sh = g.members[0]
			}
			if pp, ok := r.(procPanic); ok {
				if sh.failure == nil {
					sh.failure = pp
				}
			} else if sh.failure == nil {
				sh.failure = procPanic{name: fmt.Sprintf("shard%d event", sh.id), val: r}
			}
		}
	}()
	sink := s.sink != nil
	g.tops = g.tops[:0]
	g.dirty = g.dirty[:0]
	for _, sh := range g.members {
		if at, ord, ok := sh.events.head(); ok && at < g.bound {
			g.tops.push(topEntry{at: at, ord: ord, sh: sh})
		}
	}
	fired := 0
	quantum := s.fusion.Quantum
	for fired < quantum {
		// Validated minimum over the members' heads, discarding stale
		// entries (same lazy discipline as the serial merged loop: every
		// member whose head changed has a fresher entry via dirty).
		var sh *Shard
		for len(g.tops) > 0 {
			top := g.tops[0]
			a, o, ok := top.sh.events.head()
			if !ok || a != top.at || o != top.ord {
				g.tops.pop()
				continue
			}
			g.tops.pop()
			sh = top.sh
			break
		}
		if sh == nil {
			break
		}
		// Burst: keep firing sh while nothing landed on other members and
		// its next head is still at or below the heap's conservative
		// minimum (stale entries only understate it, so the comparison may
		// end a burst early but never misorder).
		for {
			e := sh.events.pop()
			sh.now = e.at
			cur = sh
			if sink {
				sh.tbuf = append(sh.tbuf, trace.Keyed{At: int64(e.at), Ord: e.ord, Sub: -1})
				sh.firingOrd = e.ord
				sh.emitIdx = 0
			}
			sh.executed++
			sh.wEvents++
			fired++
			if e.p != nil {
				sh.parked--
				e.p.resume <- struct{}{}
				<-sh.yield
			} else {
				e.fn()
			}
			if sh.failure != nil {
				g.fired = fired
				return
			}
			if len(g.dirty) > 0 {
				for _, d := range g.dirty {
					if d == sh {
						continue
					}
					if a, o, ok := d.events.head(); ok && a < g.bound {
						g.tops.push(topEntry{at: a, ord: o, sh: d})
					}
				}
				g.dirty = g.dirty[:0]
				if a, o, ok := sh.events.head(); ok && a < g.bound {
					g.tops.push(topEntry{at: a, ord: o, sh: sh})
				}
				break
			}
			if fired >= quantum {
				break
			}
			a, o, ok := sh.events.head()
			if !ok || a >= g.bound {
				break
			}
			if len(g.tops) > 0 {
				top := g.tops[0]
				if top.at < a || (top.at == a && top.ord < o) {
					g.tops.push(topEntry{at: a, ord: o, sh: sh})
					break
				}
			}
		}
	}
	g.fired = fired
}
