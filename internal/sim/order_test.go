package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEqualTimeFIFOProperty drives the rewritten 4-ary heap with random
// batches of events that share timestamps and asserts the (time, seq) total
// order: within one timestamp, events fire in exactly the order they were
// scheduled. This is the invariant every byte-identical-trace guarantee
// rests on.
func TestEqualTimeFIFOProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 50 + rng.Intn(200)
		var want, got []int
		for i := 0; i < n; i++ {
			// Few distinct timestamps -> many equal-time collisions.
			at := Time(rng.Intn(5))
			id := i
			s.At(at, func() { got = append(got, id) })
			want = append(want, int(at)*1000+i) // sortable key, stable by i
		}
		s.Run()
		// Expected order: by timestamp, then schedule order. Because ids are
		// assigned in schedule order, a stable bucket walk reproduces it.
		var expect []int
		for at := 0; at < 5; at++ {
			for i := 0; i < n; i++ {
				if want[i]/1000 == at {
					expect = append(expect, i)
				}
			}
		}
		if len(got) != len(expect) {
			return false
		}
		for i := range got {
			if got[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestWaitQFIFOProperty parks a random number of processes on a queue in a
// random arrival pattern, removes a random subset (simulating timeouts and
// kills), then wakes the rest one at a time — asserting strict FIFO order
// among the survivors. Exercises the O(1) tombstone removal path.
func TestWaitQFIFOProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		q := s.NewWaitQ("q")
		n := 2 + rng.Intn(40)
		removed := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				removed[i] = true
			}
		}
		var got []int
		var procs []*Proc
		for i := 0; i < n; i++ {
			id := i
			procs = append(procs, s.Spawn("w", func(p *Proc) {
				q.Park(p)
				got = append(got, id)
			}))
		}
		s.Spawn("driver", func(p *Proc) {
			p.Sleep(1) // let every waiter park first
			for i, kill := range procs {
				if removed[i] {
					kill.Kill()
				}
			}
			for q.Len() > 0 {
				q.WakeOne()
				p.Sleep(1) // let the woken process run before the next wake
			}
		})
		s.Run()
		var expect []int
		for i := 0; i < n; i++ {
			if !removed[i] {
				expect = append(expect, i)
			}
		}
		if len(got) != len(expect) {
			return false
		}
		for i := range got {
			if got[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestWaitQInterleavedParkWake stresses slot reuse: processes repeatedly
// re-park on the same queue while a driver wakes in bursts, checking that
// total wake count and FIFO order per round survive the compaction logic.
func TestWaitQInterleavedParkWake(t *testing.T) {
	s := New()
	q := s.NewWaitQ("q")
	const workers, rounds = 7, 20
	order := make([][]int, rounds)
	for w := 0; w < workers; w++ {
		id := w
		s.Spawn("w", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				q.Park(p)
				order[r] = append(order[r], id)
			}
		})
	}
	s.Spawn("driver", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			p.Sleep(1)
			if q.WakeAll() != workers {
				panic("short wake")
			}
		}
	})
	s.Run()
	for r := 0; r < rounds; r++ {
		if len(order[r]) != workers {
			t.Fatalf("round %d: woke %d of %d", r, len(order[r]), workers)
		}
		for w := 0; w < workers; w++ {
			if order[r][w] != w {
				t.Fatalf("round %d: FIFO violated: %v", r, order[r])
			}
		}
	}
}
