package sim

import (
	"runtime"
	"testing"
	"time"
)

// settledGoroutines samples the goroutine count, allowing a few scheduler
// ticks for exiting goroutines to be reaped.
func settledGoroutines(base int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50 && n > base; i++ {
		time.Sleep(time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// checkSettled asserts the simulation wound down completely: no parked
// processes, no live process goroutines, and the runtime goroutine count
// back to its pre-simulation baseline (no leaks).
func checkSettled(t *testing.T, s *Sim, baseline int) {
	t.Helper()
	for _, sh := range s.shards {
		if sh.parked != 0 {
			t.Errorf("shard %d: %d processes still parked", sh.id, sh.parked)
		}
		if sh.procs != 0 {
			t.Errorf("shard %d: %d process goroutines still live", sh.id, sh.procs)
		}
	}
	if n := settledGoroutines(baseline); n > baseline {
		t.Errorf("goroutine leak: %d live, baseline %d", n, baseline)
	}
}

// TestKillBeforeFirstResume kills a spawned process before Run ever starts
// it: the body must never execute and the simulation must wind down clean.
func TestKillBeforeFirstResume(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New()
	ran := false
	p := s.Spawn("victim", func(p *Proc) { ran = true })
	p.Kill()
	s.Run()
	if ran {
		t.Error("killed process body ran")
	}
	if !p.Killed() {
		t.Error("Killed() false after Kill")
	}
	checkSettled(t, s, baseline)
}

// TestDoubleKill: killing twice (before resume, while parked, or after
// death) must be a harmless no-op, not a double-wake.
func TestDoubleKill(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New()
	q := s.NewWaitQ("q")
	victim := s.Spawn("victim", func(p *Proc) {
		q.Park(p)
		t.Error("parked victim resumed past kill")
	})
	s.At(5, func() {
		victim.Kill()
		victim.Kill() // second kill: no-op
	})
	s.At(10, func() {
		victim.Kill() // kill after death: no-op
	})
	s.Run()
	if q.Len() != 0 {
		t.Errorf("wait queue still holds %d entries", q.Len())
	}
	checkSettled(t, s, baseline)
}

// TestKillWhileQueuedOnResource kills a process that is parked awaiting a
// FIFO resource grant: its pending completion wake must unwind it instead
// of resuming the body, and Run must neither deadlock-panic nor leak.
func TestKillWhileQueuedOnResource(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New()
	r := s.NewResource("disk")
	resumed := false
	var victim *Proc
	s.Spawn("holder", func(p *Proc) {
		r.Use(p, 100) // occupies the resource until t=100
	})
	victim = s.Spawn("victim", func(p *Proc) {
		r.Use(p, 10) // queued behind holder; grant completes at t=110
		resumed = true
	})
	s.At(50, func() { victim.Kill() }) // killed mid-queue
	end := s.Run()
	if resumed {
		t.Error("killed process resumed past its resource grant")
	}
	// The reserved service slot still advances the clock (FIFO horizon
	// semantics): the kill unwinds the process at its wake, not before.
	if end != 110 {
		t.Errorf("clock ended at %v, want 110", end)
	}
	checkSettled(t, s, baseline)
}

// TestKillSleepingProcess: a sleeping process dies at its pending wake.
func TestKillSleepingProcess(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New()
	reached := false
	victim := s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		reached = true
	})
	s.At(10, func() { victim.Kill() })
	s.Run()
	if reached {
		t.Error("killed sleeper ran past Sleep")
	}
	checkSettled(t, s, baseline)
}

// TestKillParkedOnWaitQ: a kill removes the process from the queue
// immediately, so a later WakeOne grants to the next waiter.
func TestKillParkedOnWaitQ(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New()
	q := s.NewWaitQ("q")
	var got string
	s.Spawn("first", func(p *Proc) {
		q.Park(p)
		t.Error("killed first waiter resumed")
	})
	s.Spawn("second", func(p *Proc) {
		q.Park(p)
		got = "second"
	})
	var first *Proc
	s.At(0, func() {})
	s.Spawn("killer", func(p *Proc) {
		p.Sleep(5)
		first = findProcOnQ(q, "first")
		first.Kill()
		p.Sleep(5)
		q.WakeOne()
	})
	s.Run()
	if got != "second" {
		t.Errorf("WakeOne woke %q, want %q", got, "second")
	}
	checkSettled(t, s, baseline)
}

// findProcOnQ fetches a parked process by name (test helper; the model
// layer holds real references).
func findProcOnQ(q *WaitQ, name string) *Proc {
	for _, p := range q.procs[q.head:] {
		if p != nil && p.name == name {
			return p
		}
	}
	return nil
}

// TestKillPartitionedWindow: kill semantics hold inside parallel windows —
// a same-shard kill unwinds the victim and every shard settles to zero.
func TestKillPartitionedWindow(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New()
	s.Partition(10)
	s.SetWorkers(2)
	a, b := s.AddShard(), s.AddShard()
	reached := false
	victim := a.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		reached = true
	})
	a.At(5, func() { victim.Kill() })
	b.Spawn("other", func(p *Proc) { p.Sleep(50) })
	s.Run()
	if reached {
		t.Error("killed sleeper ran past Sleep in partitioned run")
	}
	checkSettled(t, s, baseline)
}
