package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEventHeapPropertyOrder drives the calendar heap through randomized
// push/pop interleavings and checks the one property everything rests on:
// pops come out in strict (at, ord) order, matching a reference sort of
// whatever was pushed. Keys deliberately collide heavily on `at` so the
// ord tie-break is exercised, and some spans are popped mid-stream so the
// heap is tested at many fill levels, not just drain-after-fill.
func TestEventHeapPropertyOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h eventHeap
		var pending []event // reference multiset of currently pushed events
		var popped []event
		ord := uint64(0)
		steps := 200 + rng.Intn(800)
		for i := 0; i < steps; i++ {
			if h.len() == 0 || rng.Intn(3) > 0 {
				ord++
				e := event{at: Time(rng.Intn(16)), ord: ord}
				h.push(e)
				pending = append(pending, e)
			} else {
				popped = append(popped, h.pop())
			}
		}
		for h.len() > 0 {
			popped = append(popped, h.pop())
		}
		if len(popped) != len(pending) {
			t.Fatalf("seed %d: popped %d events, pushed %d", seed, len(popped), len(pending))
		}
		// Validate against a reference order. A heap interleaved with pops
		// is not globally sorted output, so check the strong local
		// property instead: every pop must be the minimum of what was in
		// the heap at that moment. Replaying the interleaving against a
		// sorted multiset is equivalent to re-running with a reference
		// priority queue; simplest correct check is to verify each popped
		// event is <= everything popped later that was already pushed
		// before it was popped. Since ords are unique and assigned in push
		// order, it suffices that the full drain tail is sorted and that
		// re-running the same interleaving against a sorted-slice
		// reference produces the same pop sequence.
		ref := replayReference(seed)
		for i := range popped {
			if popped[i].at != ref[i].at || popped[i].ord != ref[i].ord {
				t.Fatalf("seed %d: pop %d = (%d,%d), reference (%d,%d)",
					seed, i, popped[i].at, popped[i].ord, ref[i].at, ref[i].ord)
			}
		}
	}
}

// replayReference replays the same seeded interleaving as the test against
// a trivially correct priority queue (sorted slice, stable on ord).
func replayReference(seed int64) []event {
	rng := rand.New(rand.NewSource(seed))
	var q []event
	var popped []event
	ord := uint64(0)
	steps := 200 + rng.Intn(800)
	for i := 0; i < steps; i++ {
		if len(q) == 0 || rng.Intn(3) > 0 {
			ord++
			e := event{at: Time(rng.Intn(16)), ord: ord}
			q = append(q, e)
			sort.SliceStable(q, func(a, b int) bool {
				if q[a].at != q[b].at {
					return q[a].at < q[b].at
				}
				return q[a].ord < q[b].ord
			})
		} else {
			popped = append(popped, q[0])
			q = q[1:]
		}
	}
	for len(q) > 0 {
		popped = append(popped, q[0])
		q = q[1:]
	}
	return popped
}

// TestSchedulePastTimestampClamps checks the kernel-level companion
// property: an event scheduled in the past is clamped to "now" rather than
// rewinding the clock, and equal-time events still fire in schedule order.
func TestSchedulePastTimestampClamps(t *testing.T) {
	s := New()
	var order []int
	s.At(10, func() {
		s.At(3, func() { order = append(order, 1) })  // past: clamps to 10
		s.At(10, func() { order = append(order, 2) }) // same time, later ord
	})
	end := s.Run()
	if end != 10 {
		t.Fatalf("clock ended at %v, want 10 (past event must not rewind)", end)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("fire order %v, want [1 2]", order)
	}
}

// TestEventHeapHead checks the head accessor used by the merged serial loop
// and the window scheduler.
func TestEventHeapHead(t *testing.T) {
	var h eventHeap
	if _, _, ok := h.head(); ok {
		t.Fatal("head of empty heap reported ok")
	}
	h.push(event{at: 7, ord: 2})
	h.push(event{at: 7, ord: 1})
	h.push(event{at: 3, ord: 9})
	if at, ord, ok := h.head(); !ok || at != 3 || ord != 9 {
		t.Fatalf("head = (%d,%d,%v), want (3,9,true)", at, ord, ok)
	}
	h.pop()
	if at, ord, _ := h.head(); at != 7 || ord != 1 {
		t.Fatalf("head after pop = (%d,%d), want (7,1)", at, ord)
	}
}
