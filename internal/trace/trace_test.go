package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestResClass(t *testing.T) {
	tests := []struct{ name, want string }{
		{"cpu0", "cpu"},
		{"cpu12", "cpu"},
		{"disk5", "disk"},
		{"nic3", "nic"},
		{"ring", "ring"},
		{"42", "42"},
		{"", ""},
	}
	for _, tc := range tests {
		if got := ResClass(tc.name); got != tc.want {
			t.Errorf("ResClass(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func collect(events ...Event) *Collector {
	c := NewCollector()
	for _, e := range events {
		c.Emit(e)
	}
	return c
}

func rel(res string, start, end int64) Event {
	return Event{At: end, Kind: KindRelease, Res: res, Start: start, End: end}
}

func TestBusyWindows(t *testing.T) {
	c := collect(
		rel("disk0", 0, 10),
		rel("disk0", 10, 30),
		rel("disk0", 50, 60),
	)
	tests := []struct {
		from, to int64
		want     int64
	}{
		{0, 60, 40},
		{0, 10, 10},
		{5, 15, 10},  // straddles two intervals
		{30, 50, 0},  // idle gap
		{55, 100, 5}, // clipped tail
		{60, 60, 0},  // empty window
	}
	for _, tc := range tests {
		if got := c.Busy("disk0", tc.from, tc.to); got != tc.want {
			t.Errorf("Busy(disk0, %d, %d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
	if got := c.Busy("nope", 0, 100); got != 0 {
		t.Errorf("Busy on unknown resource = %d, want 0", got)
	}
}

func TestDiagnose(t *testing.T) {
	c := collect(
		rel("disk0", 0, 90), // 90% of [0,100]
		rel("disk1", 0, 50), // 50%
		rel("cpu0", 0, 60),  // 60%
		rel("ring", 0, 10),  // 10%
	)
	v := c.Diagnose(0, 100)
	if v.Binding != "disk" || v.Res != "disk0" {
		t.Fatalf("Diagnose: binding %s/%s, want disk/disk0 (%v)", v.Binding, v.Res, v)
	}
	if v.Util != 0.9 {
		t.Errorf("Diagnose: util %.2f, want 0.90", v.Util)
	}
	// Classes sorted by descending utilization of the busiest instance.
	var order []string
	for _, cu := range v.Classes {
		order = append(order, cu.Class)
	}
	if want := []string{"disk", "cpu", "ring"}; !reflect.DeepEqual(order, want) {
		t.Errorf("class order %v, want %v", order, want)
	}
	// Busy sums across the class, not just the busiest instance.
	if v.Classes[0].Busy != 140 {
		t.Errorf("disk class busy %d, want 140", v.Classes[0].Busy)
	}
}

func TestDiagnoseTieBreak(t *testing.T) {
	// Exact utilization tie: the scarcer class (disk before cpu) wins.
	c := collect(rel("cpu0", 0, 50), rel("disk0", 0, 50))
	if v := c.Diagnose(0, 100); v.Binding != "disk" {
		t.Errorf("tie-break binding %s, want disk", v.Binding)
	}
}

func TestDiagnoseEmpty(t *testing.T) {
	c := NewCollector()
	v := c.Diagnose(0, 100)
	if v.Binding != "" || len(v.Classes) != 0 {
		t.Errorf("empty diagnose = %+v, want idle", v)
	}
	if s := v.String(); s != "idle (no resource activity in window)" {
		t.Errorf("idle verdict string = %q", s)
	}
}

func TestVerdictString(t *testing.T) {
	c := collect(rel("disk3", 0, 97), rel("cpu1", 0, 41))
	got := c.Diagnose(0, 100).String()
	want := "disk-bound (disk3 at 97.0%); cpu 41.0%"
	if got != want {
		t.Errorf("verdict = %q, want %q", got, want)
	}
}

func TestQueryAndOpSpans(t *testing.T) {
	c := collect(
		Event{At: 0, Kind: KindQueryStart, Query: "q1"},
		Event{At: 5, Kind: KindOpStart, Op: "select", Node: 2, Site: 0},
		Event{At: 5, Kind: KindOpStart, Op: "select", Node: 3, Site: 1},
		Event{At: 40, Kind: KindOpDone, Op: "select", Node: 2, Site: 0, N: 7},
		Event{At: 45, Kind: KindOpDone, Op: "select", Node: 3, Site: 1, N: 9},
		Event{At: 50, Kind: KindQueryDone, Query: "q1"},
	)
	q, ok := c.Query("q1")
	if !ok || q.Start != 0 || q.End != 50 {
		t.Fatalf("query span = %+v, ok=%v", q, ok)
	}
	ops := c.OpSpans()
	if len(ops) != 2 {
		t.Fatalf("got %d op spans, want 2", len(ops))
	}
	if ops[1].N != 9 || ops[1].Dur() != 40 {
		t.Errorf("op span = %+v, want N=9 dur=40", ops[1])
	}
	if _, ok := c.Query("q2"); ok {
		t.Error("found nonexistent query")
	}
}

func TestMergedPhases(t *testing.T) {
	c := collect(
		Event{At: 10, Kind: KindPhaseStart, Op: "join1", Site: 0, Class: "build"},
		Event{At: 12, Kind: KindPhaseStart, Op: "join1", Site: 1, Class: "build"},
		Event{At: 30, Kind: KindPhaseDone, Op: "join1", Site: 0, Class: "build", N: 3},
		Event{At: 35, Kind: KindPhaseDone, Op: "join1", Site: 1, Class: "build", N: 4},
		Event{At: 35, Kind: KindPhaseStart, Op: "join1", Site: 0, Class: "probe"},
		Event{At: 60, Kind: KindPhaseDone, Op: "join1", Site: 0, Class: "probe", N: 11},
	)
	merged := c.MergedPhases()
	if len(merged) != 2 {
		t.Fatalf("got %d merged phases, want 2: %+v", len(merged), merged)
	}
	b := merged[0]
	if b.ID != "join1/build" || b.Start != 10 || b.End != 35 || b.N != 7 {
		t.Errorf("merged build = %+v", b)
	}
	if merged[1].ID != "join1/probe" || merged[1].N != 11 {
		t.Errorf("merged probe = %+v", merged[1])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0, Kind: KindQueryStart, Query: "q1"},
		{At: 3, Kind: KindAcquire, Res: "disk0", Wait: 2},
		{At: 9, Kind: KindRelease, Res: "disk0", Start: 5, End: 9},
		{At: 9, Kind: KindDiskOp, Res: "disk0", Class: "seq-read", Bytes: 4096, File: 1, Page: 7},
		{At: 12, Kind: KindPacket, Class: "data", From: 2, To: 4, Bytes: 2048},
		{At: 20, Kind: KindQueryDone, Query: "q1"},
	}
	c := collect(events...)
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

// errWriter fails after accepting limit bytes, forcing the buffered
// WriteJSONL path to surface the error from its final Flush.
type errWriter struct{ limit int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.limit {
		n := w.limit
		w.limit = 0
		return n, errors.New("disk full")
	}
	w.limit -= len(p)
	return len(p), nil
}

func TestWriteJSONLPropagatesWriteErrors(t *testing.T) {
	c := collect(
		Event{At: 0, Kind: KindQueryStart, Query: "q1"},
		Event{At: 20, Kind: KindQueryDone, Query: "q1"},
	)
	if err := c.WriteJSONL(&errWriter{limit: 10}); err == nil {
		t.Error("WriteJSONL swallowed the write error")
	}
}
