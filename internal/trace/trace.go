// Package trace defines the typed, structured event stream emitted by the
// simulation kernel (internal/sim), the device models (internal/disk,
// internal/nose), and the Gamma engine (internal/core), and the analysis
// built on top of it: per-resource busy-interval accounting, per-operator
// phase spans, and a bottleneck classifier (Diagnose) that reports which
// resource — disk, CPU, NIC, or ring — bound a query, the diagnostic axis of
// the paper's §5.2 and §6.2.
//
// The package is a leaf: it imports nothing from the repository, so every
// layer above it can emit events without cycles. Times are simulated
// microseconds (the unit of sim.Time); emitters convert implicitly since
// both are int64s.
//
// The event stream is strictly deterministic: the simulation kernel's
// hand-off discipline totally orders emissions, so identical seed and
// configuration produce a byte-identical JSONL export — a property the
// regression suite asserts.
package trace

// Kind discriminates event records. String-typed so JSONL lines read
// without a decoder ring.
type Kind string

const (
	// KindAcquire: a request entered a resource's FIFO queue. Wait is the
	// queueing delay it will experience before service.
	KindAcquire Kind = "acquire"
	// KindRelease: a service interval [Start, End] on a resource. Emitted
	// at schedule time with At = End (the simulated completion instant).
	KindRelease Kind = "release"
	// KindDiskOp: one page access with its positioning class
	// (seq-read/rand-read/seq-write/rand-write) in Class.
	KindDiskOp Kind = "disk-op"
	// KindPacket: a data or end-of-stream packet crossed the ring from
	// node From to node To.
	KindPacket Kind = "packet"
	// KindLocalMsg: a same-node message short-circuited by the
	// communications software (§2) — no NIC or ring involvement.
	KindLocalMsg Kind = "local-msg"
	// KindCtlMsg: an inter-node scheduler/operator control message.
	KindCtlMsg Kind = "ctl-msg"
	// KindRetransmit: the sliding-window protocol resent a dropped packet.
	KindRetransmit Kind = "retransmit"
	// KindOpStart / KindOpDone bracket one operator process (selection
	// scan, store, join, spool scan) at one site.
	KindOpStart Kind = "op-start"
	KindOpDone  Kind = "op-done"
	// KindPhaseStart / KindPhaseDone bracket one phase inside an operator
	// (join build, probe, overflow round build/probe), so the Figure 13
	// analysis can attribute time to individual join phases.
	KindPhaseStart Kind = "phase-start"
	KindPhaseDone  Kind = "phase-done"
	// KindQueryStart / KindQueryDone bracket one query's host-to-host span.
	KindQueryStart Kind = "query-start"
	KindQueryDone  Kind = "query-done"
	// KindFault: an injected hardware failure took effect. Class is the
	// failure mode ("node-crash", "drive-fail", "nic-outage"), Node the
	// victim.
	KindFault Kind = "fault"
	// KindFailover: the scheduler reacted to a detected failure. Class is
	// the step ("abort" when a query attempt is torn down, "retry" when its
	// work is re-dispatched to backup fragments); Query names the query and
	// N the attempt number.
	KindFailover Kind = "failover"
	// KindSharedScan: an operator joined ("attach") or left ("detach") a
	// shared heap-scan cursor. Op is the rider, Node/File name the cursor,
	// Page is the attach point; on detach N is the number of page reads the
	// rider saved by sharing (pages delivered minus pages it read itself).
	KindSharedScan Kind = "shared-scan"
	// KindHeal: the healing manager changed state. Class is the step:
	// "detect" when heartbeat silence (or a bad-drive report) confirmed a
	// site down, "rejoin" when a node returned from an outage, "restored"
	// when every fragment regained full redundancy (N is the µs since the
	// oldest open fault). Node is the site's node id, Site the disk index.
	KindHeal Kind = "heal"
	// KindPromote: the healer atomically promoted a fragment's backup to
	// primary in the fragment directory. Res names the relation, Site the
	// fragment index, From the dead primary's node, To the promoted copy's.
	KindPromote Kind = "promote"
	// KindRebuild: background re-replication of one fragment. Class is
	// "start" or "done" ("abort" when the source or target died mid-copy);
	// Res names the relation, Site the fragment index, From the surviving
	// copy's node, To the rebuild target; on done N is pages copied and
	// Bytes the bytes streamed.
	KindRebuild Kind = "rebuild"
)

// Event is one record of the stream. A single flat struct keeps JSONL
// encoding trivial and deterministic. Zero-valued fields are omitted from
// the JSON encoding; since Go decoding restores omitted fields to their
// zero values, round-tripping is lossless.
type Event struct {
	At    int64  `json:"at"` // simulated µs at emission
	Kind  Kind   `json:"kind"`
	Res   string `json:"res,omitempty"`   // resource name (acquire/release)
	Class string `json:"class,omitempty"` // disk positioning class, packet kind, phase label
	Op    string `json:"op,omitempty"`    // operator id (op/phase spans)
	Query string `json:"query,omitempty"` // query id (query spans)
	Node  int    `json:"node,omitempty"`  // node the event happened on
	Site  int    `json:"site,omitempty"`  // operator site index
	From  int    `json:"from,omitempty"`  // sending node (packets)
	To    int    `json:"to,omitempty"`    // receiving node (packets)
	Start int64  `json:"start,omitempty"` // service interval start (release)
	End   int64  `json:"end,omitempty"`   // service interval end (release)
	Wait  int64  `json:"wait,omitempty"`  // queueing delay (acquire)
	Bytes int    `json:"bytes,omitempty"` // payload size (disk ops, packets)
	File  int    `json:"file,omitempty"`  // file id (disk ops)
	Page  int    `json:"page,omitempty"`  // page number (disk ops)
	N     int    `json:"n,omitempty"`     // generic count (tuples produced)
	Dur   int64  `json:"dur,omitempty"`   // attributed cost µs (ctl messages)
}

// Sink receives events. The Collector is the standard sink; the interface
// exists so emitters (sim, disk, nose, core) depend only on this package.
type Sink interface {
	Emit(e Event)
}

// ResClass maps a resource name to its hardware class by stripping the
// numeric suffix: "cpu3" -> "cpu", "disk0" -> "disk", "nic12" -> "nic",
// "ring" -> "ring". Unknown names map to themselves sans digits.
func ResClass(name string) string {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == 0 {
		return name
	}
	return name[:i]
}
