package trace

import (
	"fmt"
	"sort"
	"strings"
)

// ClassUtil is one resource class's share of a diagnosis window.
type ClassUtil struct {
	Class string  // "disk", "cpu", "nic", "ring", ...
	Res   string  // the busiest individual resource of the class
	Util  float64 // that resource's utilization of the window [0, 1]
	Busy  int64   // total busy µs across ALL resources of the class
}

// Verdict is the output of the bottleneck classifier: which resource class
// bound the window, in the paper's §5.2/§6.2 sense — the resource whose
// busiest instance had the highest utilization. A query is "disk-bound"
// when a drive is the most saturated device, "CPU-bound" when a processor
// is, "NIC-bound" when a network interface (the 4 Mbit/s Unibus path) is.
type Verdict struct {
	From, To int64       // the analyzed window, µs
	Binding  string      // class of the binding resource
	Res      string      // the binding resource itself, e.g. "nic9"
	Util     float64     // its utilization of the window
	Classes  []ClassUtil // every class, sorted by descending Util

	// Degraded-run context: hardware failures that took effect inside the
	// window (formatted "mode@node<N> t=<seconds>") and how many query
	// attempts were re-dispatched to backup fragments. Both empty/zero for
	// a healthy run.
	Faults  []string
	Retries int

	// Shared-scan context: how many operators attached to a shared cursor
	// inside the window, and how many page reads riding those cursors saved
	// versus private scans. Both zero when scan sharing is off.
	SharedAttaches   int
	SharedSavedPages int

	// Healing context: backup-to-primary promotions and fragment rebuilds
	// the healing manager completed inside the window. Both zero when
	// healing is off or the window saw no faults.
	Promotions int
	Rebuilds   int
}

// classRank breaks exact utilization ties deterministically, preferring the
// physically scarcer resource (the paper's diagnosis order). "ctl" is the
// control-message pseudo-class (see Diagnose); it ranks last so real
// hardware wins exact ties.
var classRank = map[string]int{"disk": 0, "nic": 1, "cpu": 2, "ring": 3, "ctl": 4}

func rankOf(class string) int {
	if r, ok := classRank[class]; ok {
		return r
	}
	return len(classRank)
}

// Diagnose classifies the window [from, to]: for every resource class it
// finds the busiest instance, and names the class with the most saturated
// instance as the binding resource. With one query in flight this is the
// paper's per-query diagnosis; over a multiuser window it characterizes the
// mixed workload.
func (c *Collector) Diagnose(from, to int64) Verdict {
	v := Verdict{From: from, To: to}
	if to <= from {
		return v
	}
	window := float64(to - from)
	byClass := map[string]*ClassUtil{}
	var order []string
	for _, name := range c.resNames {
		busy := c.Busy(name, from, to)
		if busy == 0 {
			continue
		}
		class := ResClass(name)
		cu, ok := byClass[class]
		if !ok {
			cu = &ClassUtil{Class: class}
			byClass[class] = cu
			order = append(order, class)
		}
		cu.Busy += busy
		if u := float64(busy) / window; u > cu.Util {
			cu.Util, cu.Res = u, name
		}
	}
	// Control-message attribution: KindCtlMsg events carry their per-message
	// cost in Dur (§6.2.3's 7 ms). They are folded into a "ctl" pseudo-class
	// whose Util is the busiest *sender's* share of the window — the
	// scheduler initiating operators serially is exactly this number. The
	// time overlaps the sender's cpu class (control messages are charged to
	// the sending CPU), so ctl is an attribution, not extra hardware; it can
	// still legitimately win short queries, which is the paper's §6.2.3
	// observation that startup control traffic dominates small selections.
	if len(c.ctls) > 0 {
		perSender := map[int]int64{}
		var senders []int
		var total int64
		for _, e := range c.ctls {
			if e.At < from || e.At > to {
				continue
			}
			if _, ok := perSender[e.From]; !ok {
				senders = append(senders, e.From)
			}
			perSender[e.From] += e.Dur
			total += e.Dur
		}
		if total > 0 {
			sort.Ints(senders)
			cu := &ClassUtil{Class: "ctl", Busy: total}
			for _, nd := range senders {
				if u := float64(perSender[nd]) / window; u > cu.Util {
					cu.Util, cu.Res = u, fmt.Sprintf("ctl%d", nd)
				}
			}
			byClass["ctl"] = cu
			order = append(order, "ctl")
		}
	}
	for _, class := range order {
		v.Classes = append(v.Classes, *byClass[class])
	}
	sort.SliceStable(v.Classes, func(i, j int) bool {
		if v.Classes[i].Util != v.Classes[j].Util {
			return v.Classes[i].Util > v.Classes[j].Util
		}
		return rankOf(v.Classes[i].Class) < rankOf(v.Classes[j].Class)
	})
	if len(v.Classes) > 0 {
		v.Binding = v.Classes[0].Class
		v.Res = v.Classes[0].Res
		v.Util = v.Classes[0].Util
	}
	for _, f := range c.faults {
		if f.At >= from && f.At <= to {
			v.Faults = append(v.Faults, fmt.Sprintf("%s@node%d t=%.3fs", f.Class, f.Node, float64(f.At)/1e6))
		}
	}
	for _, f := range c.failovers {
		if f.At >= from && f.At <= to && f.Class == "retry" {
			v.Retries++
		}
	}
	for _, e := range c.shared {
		if e.At < from || e.At > to {
			continue
		}
		switch e.Class {
		case "attach":
			v.SharedAttaches++
		case "detach":
			v.SharedSavedPages += e.N
		}
	}
	for _, e := range c.heals {
		if e.At < from || e.At > to {
			continue
		}
		switch {
		case e.Kind == KindPromote:
			v.Promotions++
		case e.Kind == KindRebuild && e.Class == "done":
			v.Rebuilds++
		}
	}
	return v
}

// DiagnoseQuery classifies one collected query's span.
func (c *Collector) DiagnoseQuery(id string) (Verdict, bool) {
	q, ok := c.Query(id)
	if !ok || q.End < 0 {
		return Verdict{}, false
	}
	return c.Diagnose(q.Start, q.End), true
}

// DiagnoseSpan classifies one span (an operator phase, typically).
func (c *Collector) DiagnoseSpan(s Span) Verdict {
	return c.Diagnose(s.Start, s.End)
}

// String renders the verdict in the §5/§6 style:
//
//	disk-bound (disk3 at 97.2%); cpu 41.0%, nic 12.4%, ring 1.9%
func (v Verdict) String() string {
	if v.Binding == "" {
		return "idle (no resource activity in window)"
	}
	var rest []string
	for _, cu := range v.Classes[1:] {
		rest = append(rest, fmt.Sprintf("%s %.1f%%", cu.Class, 100*cu.Util))
	}
	s := fmt.Sprintf("%s-bound (%s at %.1f%%)", v.Binding, v.Res, 100*v.Util)
	if len(rest) > 0 {
		s += "; " + strings.Join(rest, ", ")
	}
	if len(v.Faults) > 0 || v.Retries > 0 {
		s += "; degraded: " + strings.Join(v.Faults, ", ")
		if v.Retries == 1 {
			s += " (1 retry)"
		} else if v.Retries > 1 {
			s += fmt.Sprintf(" (%d retries)", v.Retries)
		}
	}
	if v.SharedAttaches > 0 || v.SharedSavedPages > 0 {
		s += fmt.Sprintf("; shared scans: %d attaches saved %d page reads",
			v.SharedAttaches, v.SharedSavedPages)
	}
	if v.Promotions > 0 || v.Rebuilds > 0 {
		s += fmt.Sprintf("; healing: %d promotions, %d rebuilds", v.Promotions, v.Rebuilds)
	}
	return s
}
