package trace

// Keyed is an event tagged with its global ordering key: the simulated time
// and kernel ordinal of the event that emitted it, plus the emission index
// within that firing (one fired event may emit several trace records).
//
// The partitioned simulation kernel buffers each shard's emissions as Keyed
// records during a parallel window and merges the per-shard streams with
// MergeKeyed at the window barrier, so the sink observes exactly the order
// a serialized run would have produced.
type Keyed struct {
	At  int64  // simulated time of the emitting event
	Ord uint64 // kernel ordinal of the emitting event (unique per run)
	Sub int    // emission index within the firing, 0-based
	E   Event
}

// keyedLess orders by (At, Ord, Sub) — the order the merge's head-to-head
// comparisons use. This is NOT a global emission order: within one stream a
// later firing can carry a smaller Ord (stamps are per-shard), and MergeKeyed
// deliberately preserves stream order in that case.
func keyedLess(a, b Keyed) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Ord != b.Ord {
		return a.Ord < b.Ord
	}
	return a.Sub < b.Sub
}

// MergeKeyed merges streams — each in its shard's firing order, with one
// record per fired event (sentinels included) and nondecreasing At — into
// the one stream a serialized run of the same simulation would emit,
// calling emit for every event in that order. It is a heads-merge: at each
// step the stream whose current head has the least (At, Ord, Sub) key
// advances, and a stream's internal order is never reordered. Because every
// fired event below the flush horizon appears in its stream, each head is
// exactly its shard's pending-heap head at the corresponding moment of a
// serialized run, so the comparisons replay the serial engine's
// pick-the-minimum loop. It allocates only the small per-call cursor heap.
func MergeKeyed(streams [][]Keyed, emit func(Event)) {
	// Cursor heap: one entry per non-empty stream, ordered by the head
	// element's key.
	type cursor struct {
		sl []Keyed
		i  int
	}
	h := make([]cursor, 0, len(streams))
	less := func(a, b cursor) bool { return keyedLess(a.sl[a.i], b.sl[b.i]) }
	push := func(c cursor) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(h[i], h[parent]) {
				break
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	siftDown := func() {
		i, n := 0, len(h)
		for {
			c := 2*i + 1
			if c >= n {
				return
			}
			if c+1 < n && less(h[c+1], h[c]) {
				c++
			}
			if !less(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for _, sl := range streams {
		if len(sl) > 0 {
			push(cursor{sl: sl})
		}
	}
	for len(h) > 0 {
		c := &h[0]
		emit(c.sl[c.i].E)
		c.i++
		if c.i == len(c.sl) {
			n := len(h) - 1
			h[0] = h[n]
			h = h[:n]
		}
		siftDown()
	}
}
