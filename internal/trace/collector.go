package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ival is one service interval on a resource.
type ival struct {
	start, end int64
}

// Span is one bracketed region of the timeline: a query, an operator, or a
// phase inside an operator.
type Span struct {
	ID    string // query id, or "op" / "op/phase"
	Node  int
	Site  int
	Start int64
	End   int64 // -1 while still open
	N     int   // tuples produced (op/phase spans), when reported
}

// Dur returns the span length in microseconds (0 for open spans).
func (s Span) Dur() int64 {
	if s.End < 0 {
		return 0
	}
	return s.End - s.Start
}

// Collector accumulates the event stream into an in-memory timeline:
// the raw events in emission order, per-resource service intervals, and
// query/operator/phase spans. It is the standard Sink.
//
// The simulation kernel's strict hand-off discipline means Emit is never
// called concurrently, so the Collector needs no locking.
type Collector struct {
	events []Event

	// intervals holds each resource's service intervals in schedule order.
	// FIFO resources serve in arrival order from a single busy horizon, so
	// per-resource intervals are non-overlapping with non-decreasing starts.
	intervals map[string][]ival
	resNames  []string // registration order

	queries   []Span
	openQuery map[string]int // query id -> index in queries
	ops       []Span
	openOp    map[string]int // "op@site" -> index in ops
	phases    []Span
	openPhase map[string]int // "op@site/phase" -> index in phases

	faults    []Event // KindFault events, in emission order
	failovers []Event // KindFailover events, in emission order
	shared    []Event // KindSharedScan events, in emission order
	heals     []Event // KindHeal/KindPromote/KindRebuild events, in emission order
	ctls      []Event // KindCtlMsg events carrying a Dur cost, in emission order
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		intervals: map[string][]ival{},
		openQuery: map[string]int{},
		openOp:    map[string]int{},
		openPhase: map[string]int{},
	}
}

// Emit appends one event and updates the derived timeline.
func (c *Collector) Emit(e Event) {
	c.events = append(c.events, e)
	switch e.Kind {
	case KindRelease:
		if _, ok := c.intervals[e.Res]; !ok {
			c.resNames = append(c.resNames, e.Res)
		}
		c.intervals[e.Res] = append(c.intervals[e.Res], ival{e.Start, e.End})
	case KindQueryStart:
		c.openQuery[e.Query] = len(c.queries)
		c.queries = append(c.queries, Span{ID: e.Query, Start: e.At, End: -1})
	case KindQueryDone:
		if i, ok := c.openQuery[e.Query]; ok {
			c.queries[i].End = e.At
			delete(c.openQuery, e.Query)
		}
	case KindOpStart:
		k := opKey(e.Op, e.Site)
		c.openOp[k] = len(c.ops)
		c.ops = append(c.ops, Span{ID: e.Op, Node: e.Node, Site: e.Site, Start: e.At, End: -1})
	case KindOpDone:
		if i, ok := c.openOp[opKey(e.Op, e.Site)]; ok {
			c.ops[i].End = e.At
			c.ops[i].N = e.N
			delete(c.openOp, opKey(e.Op, e.Site))
		}
	case KindPhaseStart:
		k := opKey(e.Op, e.Site) + "/" + e.Class
		c.openPhase[k] = len(c.phases)
		c.phases = append(c.phases, Span{ID: e.Op + "/" + e.Class, Node: e.Node, Site: e.Site, Start: e.At, End: -1})
	case KindPhaseDone:
		k := opKey(e.Op, e.Site) + "/" + e.Class
		if i, ok := c.openPhase[k]; ok {
			c.phases[i].End = e.At
			c.phases[i].N = e.N
			delete(c.openPhase, k)
		}
	case KindCtlMsg:
		if e.Dur > 0 {
			c.ctls = append(c.ctls, e)
		}
	case KindFault:
		c.faults = append(c.faults, e)
	case KindFailover:
		c.failovers = append(c.failovers, e)
	case KindSharedScan:
		c.shared = append(c.shared, e)
	case KindHeal, KindPromote, KindRebuild:
		c.heals = append(c.heals, e)
	}
}

func opKey(op string, site int) string { return fmt.Sprintf("%s@%d", op, site) }

// Events returns the raw event stream in emission order.
func (c *Collector) Events() []Event { return c.events }

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.events) }

// Queries returns every query span in start order.
func (c *Collector) Queries() []Span { return c.queries }

// Query returns the span of a query by id.
func (c *Collector) Query(id string) (Span, bool) {
	for _, q := range c.queries {
		if q.ID == id {
			return q, true
		}
	}
	return Span{}, false
}

// OpSpans returns every operator span in start order.
func (c *Collector) OpSpans() []Span { return c.ops }

// PhaseSpans returns every operator-phase span in start order.
func (c *Collector) PhaseSpans() []Span { return c.phases }

// MergedPhases folds per-site phase spans into one span per phase label
// (earliest start, latest end, summed N) in first-seen order — the unit the
// §6.2 analysis reasons about ("the build phase", "the probe phase").
func (c *Collector) MergedPhases() []Span {
	var order []string
	merged := map[string]Span{}
	for _, ph := range c.phases {
		if ph.End < 0 {
			continue
		}
		m, ok := merged[ph.ID]
		if !ok {
			order = append(order, ph.ID)
			m = Span{ID: ph.ID, Node: -1, Site: -1, Start: ph.Start, End: ph.End}
		} else {
			if ph.Start < m.Start {
				m.Start = ph.Start
			}
			if ph.End > m.End {
				m.End = ph.End
			}
		}
		m.N += ph.N
		merged[ph.ID] = m
	}
	out := make([]Span, 0, len(order))
	for _, id := range order {
		out = append(out, merged[id])
	}
	return out
}

// Faults returns every injected-failure event in emission order.
func (c *Collector) Faults() []Event { return c.faults }

// Failovers returns every failover (abort/retry) event in emission order.
func (c *Collector) Failovers() []Event { return c.failovers }

// SharedScans returns every shared-scan attach/detach event in emission order.
func (c *Collector) SharedScans() []Event { return c.shared }

// Heals returns every healing-layer event (heal, promote, rebuild) in
// emission order.
func (c *Collector) Heals() []Event { return c.heals }

// CtlMsgs returns every control-message event that carried a Dur cost, in
// emission order. These feed the "ctl" pseudo-class of Diagnose.
func (c *Collector) CtlMsgs() []Event { return c.ctls }

// Resources returns every resource name seen, in registration order.
func (c *Collector) Resources() []string {
	return append([]string(nil), c.resNames...)
}

// Busy returns the total service time resource res delivered inside the
// window [from, to].
func (c *Collector) Busy(res string, from, to int64) int64 {
	ivs := c.intervals[res]
	// Binary-search the first interval that could overlap the window.
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].end > from })
	var busy int64
	for ; i < len(ivs); i++ {
		iv := ivs[i]
		if iv.start >= to {
			break
		}
		s, e := iv.start, iv.end
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			busy += e - s
		}
	}
	return busy
}

// WriteJSONL writes every event as one JSON object per line, in emission
// order. The output is byte-identical across runs with the same seed and
// configuration (the determinism the resume/calibration story depends on).
// Writes are buffered so a large trace costs one syscall per buffer fill
// rather than one per event; the single final Flush reports any write error.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range c.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a stream written by WriteJSONL (offline analysis).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
