package core

import (
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
	"gamma/internal/wiss"
)

// This file implements SharedDB-style scan sharing (Giannikis et al., VLDB
// 2012) for heap selections. When several in-flight queries scan the same
// fragment, one circular cursor (wiss.WrapScanner) reads each page once and
// fans it to every attached query's predicate/split pipeline. A late
// arrival attaches at the cursor's current position and detaches after a
// full revolution, so it sees every page exactly once — just not starting
// at page 0. Each rider runs selectPage itself, so per-query CPU costs
// (predicate evaluation, split-table routing) are charged exactly as a
// private scan would; only the physical page reads are amortized.
//
// Cursor duty follows the paper's self-scheduling operator style: the first
// attacher drives the cursor from its own operator process; when it
// completes its revolution it hands the cursor to the longest-waiting
// rider, so a finished query is never held hostage by later arrivals.

// scanKey identifies one shared cursor: a heap file on a node.
type scanKey struct {
	node int
	file int
}

// scanHub is the machine-wide scan-sharing registry (see EnableSharedScans).
type scanHub struct {
	m      *Machine
	active map[scanKey]*sharedScan

	// Cumulative counters: physical page reads by shared cursors, and page
	// deliveries to riders. delivered - scanned = page reads saved.
	pagesScanned   int64
	pagesDelivered int64
}

// sharedConsumer is one selection operator attached to a shared cursor.
type sharedConsumer struct {
	op    string
	site  int
	frag  *Fragment
	pred  rel.Pred
	split *splitTable

	// wq blocks the rider's operator process while another consumer holds
	// the cursor; nil for the consumer that created the scan.
	wq *sim.WaitQ

	seen      int   // pages delivered so far (done at seen == npages)
	matched   int   // qualifying tuples routed
	scanned   int64 // pages this consumer read while holding the cursor
	delivered int64 // pages this consumer received (== seen, wider type)
	done      bool
	cursor    bool // this consumer currently drives the cursor
}

// sharedScan is one live circular scan over a fragment's heap file.
type sharedScan struct {
	hub       *scanHub
	key       scanKey
	ws        *wiss.WrapScanner
	npages    int
	consumers []*sharedConsumer
	// failed holds the panic value that tore the scan down (a drive
	// failure, typically); parked riders rethrow it in their own processes
	// so each operator reports its own failure to its scheduler.
	failed any
}

// scanShared runs one query's heap selection of frag through the sharing
// layer: attach to the fragment's live cursor (or start one), receive every
// page exactly once, detach, and return the match count. Semantically
// identical to heapSelect.
func (h *scanHub) scanShared(p *sim.Proc, frag *Fragment, pred rel.Pred, split *splitTable, op string, site int) int {
	f := frag.File
	npages := f.Pages()
	if npages == 0 {
		return 0
	}
	key := scanKey{node: frag.Node.ID, file: f.ID}
	s := h.active[key]
	if s != nil && s.npages != npages {
		// The file grew or shrank under the live cursor (concurrent
		// append); fall back to a private pass rather than share a stale
		// page count.
		return heapSelect(p, h.m, frag, pred, split)
	}
	c := &sharedConsumer{op: op, site: site, frag: frag, pred: pred, split: split}
	if s == nil {
		s = &sharedScan{hub: h, key: key, ws: f.NewWrapScanner(0), npages: npages}
		h.active[key] = s
		s.consumers = append(s.consumers, c)
		c.cursor = true
		h.emit(p, "attach", c, 0)
		s.lead(p, c)
	} else {
		c.wq = h.m.Sim.NewWaitQ("sharedscan")
		s.consumers = append(s.consumers, c)
		h.emit(p, "attach", c, s.ws.NextIdx())
		for !c.done && !c.cursor {
			c.wq.Park(p)
			if s.failed != nil {
				panic(s.failed)
			}
		}
		if !c.done {
			s.lead(p, c)
		}
	}
	h.emit(p, "detach", c, 0)
	return c.matched
}

// lead drives the cursor from self's operator process until self has seen
// the whole file, delivering each page to every attached consumer, then
// hands the cursor to the longest-waiting rider (or retires it).
func (s *sharedScan) lead(p *sim.Proc, self *sharedConsumer) {
	defer s.recoverCursor(self)
	h := s.hub
	for !self.done {
		// Snapshot before the read blocks: consumers attaching while the
		// page is in flight start at the next page (the cursor position
		// advances before the read parks), so they are excluded here.
		snap := append([]*sharedConsumer(nil), s.consumers...)
		prefetch := false
		for _, c := range s.consumers {
			if c.seen+1 < s.npages {
				prefetch = true
				break
			}
		}
		pg := s.ws.NextPage(p, prefetch)
		self.scanned++
		h.pagesScanned++
		for _, c := range snap {
			if c.done {
				continue
			}
			c.matched += selectPage(p, h.m, c.frag, c.pred, c.split, pg)
			c.seen++
			c.delivered++
			h.pagesDelivered++
			if c.seen == s.npages {
				c.done = true
				s.remove(c)
				if c != self {
					c.wq.WakeOne()
				}
			}
		}
	}
	if len(s.consumers) > 0 {
		next := s.consumers[0]
		next.cursor = true
		next.wq.WakeOne()
	} else {
		delete(s.hub.active, s.key)
	}
}

// recoverCursor tears the scan down when the cursor holder panics (drive
// failure mid-read): parked riders are woken to rethrow the failure in
// their own processes, and the panic is propagated to the holder's own
// failure handler. A holder killed by a node crash re-panics its kill
// sentinel here; its riders live on the same node and were already killed
// (and dequeued), so the wakeups below are no-ops.
func (s *sharedScan) recoverCursor(self *sharedConsumer) {
	r := recover()
	if r == nil {
		return
	}
	s.failed = r
	delete(s.hub.active, s.key)
	for _, c := range s.consumers {
		if c != self && !c.done && c.wq != nil {
			c.wq.WakeOne()
		}
	}
	panic(r)
}

// remove detaches a finished consumer, preserving attach order (the
// longest-waiting rider inherits the cursor).
func (s *sharedScan) remove(c *sharedConsumer) {
	for i, x := range s.consumers {
		if x == c {
			s.consumers = append(s.consumers[:i], s.consumers[i+1:]...)
			return
		}
	}
}

// emit records a shared-scan attach/detach trace event. On detach N is the
// rider's saved page reads: pages it received minus pages it read itself.
func (h *scanHub) emit(p *sim.Proc, class string, c *sharedConsumer, page int) {
	e := trace.Event{
		At:    int64(p.Now()),
		Kind:  trace.KindSharedScan,
		Class: class,
		Op:    c.op,
		Node:  c.frag.Node.ID,
		Site:  c.site,
		File:  c.frag.File.ID,
	}
	if class == "attach" {
		e.Page = page
	} else {
		e.N = int(c.delivered - c.scanned)
	}
	p.Emit(e)
}
