package core

// The healing manager: sim-driven failure detection that is independent of
// any in-flight query, atomic promotion of chained-declustered backups to
// primaries in the fragment directory, and background re-replication that
// streams a surviving copy's pages to a live node — paced, so the rebuild
// competes with foreground queries through the normal disk, CPU, and network
// resources rather than finishing for free.
//
// Detection is push-based: every disk node runs a heartbeat process that
// reports its drive status to the healer each interval. A central prober
// pulling status would serialize one CtlMsg of scheduler CPU per node per
// round (7 ms each, §6.2.3) — a wall at 64 nodes — whereas push heartbeats
// cost each node its own 7 ms in parallel. The healer declares a site down
// when its heartbeats go silent past the timeout (confirmed against node
// state, so a beat delayed by CPU contention is never a false positive) or
// when a beat explicitly reports a failed drive.
//
// Every process the layer starts exits at a configured horizon; otherwise
// the perpetual heartbeat wake-ups would keep Sim.Run from ever returning.

import (
	"fmt"
	"sort"

	"gamma/internal/disk"
	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
	"gamma/internal/wiss"
)

// Default healing parameters: detection within ~1 s of a crash at ~3% added
// CPU per node (one 7 ms control message per 250 ms), and rebuild pacing
// that copies 8 pages per burst with a 20 ms think time between bursts.
const (
	DefaultHealInterval  = 250 * sim.Millisecond
	DefaultHealTimeout   = sim.Second
	DefaultHealPageBatch = 8
	DefaultHealPause     = 20 * sim.Millisecond
)

// HealConfig parameterizes the healing manager.
type HealConfig struct {
	// Interval is the heartbeat period (and the healer's sweep period).
	Interval sim.Dur
	// Timeout is how long a site's heartbeats must be silent before the
	// healer declares it down. Should be a few Intervals.
	Timeout sim.Dur
	// Horizon is the absolute simulated time at which the heartbeat and
	// healer processes exit. Required: without it the healing layer would
	// keep the event loop alive forever.
	Horizon sim.Time
	// PageBatch is the number of pages a rebuild copies per burst.
	PageBatch int
	// Pause is the rebuild's sleep between bursts; together with PageBatch
	// it caps the bandwidth a rebuild steals from foreground queries.
	Pause sim.Dur
}

// HealEpisode is the availability record of one fault: when it was injected,
// when the healer detected it, and when the cluster regained full redundancy
// (-1 while pending). RestoredAt - FaultAt is the episode's MTTR.
type HealEpisode struct {
	Site       int
	FaultAt    sim.Time
	DetectedAt sim.Time
	RestoredAt sim.Time
}

// HealStats is a snapshot of the healer's counters.
type HealStats struct {
	Detections  int
	Promotions  int
	Rebuilds    int
	PagesCopied int
	Episodes    []HealEpisode
}

// heartbeat is one disk node's periodic status report to the healer.
type heartbeat struct {
	site    int
	driveOK bool
}

// Healer is the machine's healing manager; see the package comment above.
type Healer struct {
	m    *Machine
	cfg  HealConfig
	port *nose.Port

	lastSeen   []sim.Time
	down       []bool          // the healer's view of each site
	rebuilding map[string]bool // "rel/frag" keys with a copy in flight

	detections  int
	promotions  int
	rebuilds    int
	pagesCopied int
	episodes    []HealEpisode
}

// EnableHealing starts the healing manager: one heartbeat process per disk
// node and the healer process on the host. Zero-valued config fields take
// the defaults above; Horizon is mandatory. Call after loading (and after
// EnableMirroring — without backups the healer can detect but not heal).
func (m *Machine) EnableHealing(cfg HealConfig) *Healer {
	if m.healer != nil {
		return m.healer
	}
	if cfg.Horizon <= m.Sim.Now() {
		panic("core: EnableHealing needs a horizon beyond the current time")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultHealInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultHealTimeout
	}
	if cfg.PageBatch <= 0 {
		cfg.PageBatch = DefaultHealPageBatch
	}
	if cfg.Pause <= 0 {
		cfg.Pause = DefaultHealPause
	}
	h := &Healer{
		m:          m,
		cfg:        cfg,
		port:       m.Host.NewPort("healer"),
		lastSeen:   make([]sim.Time, len(m.Disk)),
		down:       make([]bool, len(m.Disk)),
		rebuilding: map[string]bool{},
	}
	for i := range h.lastSeen {
		h.lastSeen[i] = m.Sim.Now()
	}
	m.healer = h
	for site := range m.Disk {
		h.spawnHeartbeat(site)
	}
	m.Sim.SpawnOn(m.Host.Part, "healer", h.run)
	return h
}

// Healer returns the machine's healing manager, nil before EnableHealing.
func (m *Machine) Healer() *Healer { return m.healer }

// Stats snapshots the healer's counters and episode records.
func (h *Healer) Stats() HealStats {
	return HealStats{
		Detections:  h.detections,
		Promotions:  h.promotions,
		Rebuilds:    h.rebuilds,
		PagesCopied: h.pagesCopied,
		Episodes:    h.sortedEpisodes(),
	}
}

// spawnHeartbeat starts site's status reporter. Registered through spawnOn,
// so a crash of the node kills it — which is exactly what makes the site go
// silent at the healer.
func (h *Healer) spawnHeartbeat(site int) {
	m := h.m
	nd := m.Disk[site]
	m.spawnOn(nil, nd, fmt.Sprintf("heartbeat@%d", nd.ID), func(p *sim.Proc) {
		for p.Now() < h.cfg.Horizon {
			nose.SendCtl(p, nd, h.port, heartbeat{site: site, driveOK: !nd.Drive.Failed()})
			p.Sleep(h.cfg.Interval)
		}
	})
}

// noteFault records a fault injection against site for MTTR accounting.
// Called by CrashDisk/FailDrive in kernel context.
func (h *Healer) noteFault(site int) {
	h.episodes = append(h.episodes, HealEpisode{
		Site: site, FaultAt: h.m.Sim.Now(), DetectedAt: -1, RestoredAt: -1,
	})
}

// noteRejoin resets the healer's view of a site returning from an outage and
// restarts its heartbeat. Called by RejoinDisk in kernel context. A short
// outage the healer never condemned may restore redundancy by itself.
func (h *Healer) noteRejoin(site int) {
	h.down[site] = false
	h.lastSeen[site] = h.m.Sim.Now()
	if h.m.Sim.Now() < h.cfg.Horizon {
		h.spawnHeartbeat(site)
	}
	h.checkRestored()
}

// run is the healer process: drain heartbeats, sweep for silence, and drive
// a healing round whenever the view changed. Level-triggered — each round
// recomputes what promotion or rebuild the directory needs from scratch —
// so a fault arriving mid-heal is simply picked up by the next round.
func (h *Healer) run(p *sim.Proc) {
	m := h.m
	for {
		now := p.Now()
		if now >= h.cfg.Horizon {
			h.port.Close()
			return
		}
		if msg, ok := h.port.RecvTimeout(p, h.cfg.Interval); ok {
			hb := msg.Payload.(heartbeat)
			h.lastSeen[hb.site] = p.Now()
			if !hb.driveOK && !h.down[hb.site] {
				h.detect(p, hb.site)
			}
		}
		// Silence sweep: a site is declared down only when its beats are
		// overdue AND the node truly cannot serve (no false positives from
		// a contended CPU delaying a beat).
		for site, nd := range m.Disk {
			if !h.down[site] && p.Now()-h.lastSeen[site] > h.cfg.Timeout && !m.driveUp(nd) {
				h.detect(p, site)
			}
		}
		h.healRound(p)
	}
}

// detect marks a site down and stamps its open episodes.
func (h *Healer) detect(p *sim.Proc, site int) {
	h.down[site] = true
	h.detections++
	p.Emit(trace.Event{
		At: int64(p.Now()), Kind: trace.KindHeal, Class: "detect",
		Node: h.m.Disk[site].ID, Site: site,
	})
	for i := range h.episodes {
		if h.episodes[i].Site == site && h.episodes[i].DetectedAt < 0 {
			h.episodes[i].DetectedAt = p.Now()
		}
	}
}

// healRound walks the catalog (sorted, for determinism) and repairs what it
// can: dead primaries with live backups are promoted, then fragments missing
// a live backup get a background rebuild if a target is available.
func (h *Healer) healRound(p *sim.Proc) {
	m := h.m
	for _, name := range m.Relations() {
		r := m.catalog[name]
		if len(r.Backups) == 0 {
			continue // unmirrored (or result) relation: nothing to heal with
		}
		for i := range r.Frags {
			h.healFrag(p, r, i)
		}
	}
}

// healFrag repairs one fragment slot.
func (h *Healer) healFrag(p *sim.Proc, r *Relation, i int) {
	m := h.m
	fr := r.Frags[i]
	if !m.driveUp(fr.Node) {
		b := r.Backups[i]
		if b == nil || !m.driveUp(b.Node) {
			return // both copies lost; only a rejoin can bring data back
		}
		// Promote: swap the directory atomically (no simulated time passes
		// inside an event), then condemn the dead primary's copy — once the
		// directory stops referencing it, a rejoining node must not serve
		// it again.
		p.Emit(trace.Event{
			At: int64(p.Now()), Kind: trace.KindPromote, Res: r.Name, Site: i,
			From: fr.Node.ID, To: b.Node.ID,
		})
		r.Frags[i], r.Backups[i] = b, nil
		m.stores[fr.Node.ID].DropFile(fr.File)
		h.promotions++
		fr = b
	}
	if b := r.Backups[i]; b != nil && !m.driveUp(b.Node) {
		// Live primary, dead backup: condemn the lost copy so the slot
		// becomes rebuildable.
		m.stores[b.Node.ID].DropFile(b.File)
		r.Backups[i] = nil
	}
	if r.Backups[i] == nil {
		h.startRebuild(p, r, i)
	}
}

// rebuildTarget picks the node to host a new backup of a fragment whose
// surviving copy lives on src: the first live disk node after src in ring
// order, re-linking the chained-declustering ring around the hole. Nil when
// src is the only live disk node.
func (h *Healer) rebuildTarget(src *nose.Node) *nose.Node {
	m := h.m
	si := 0
	for i, nd := range m.Disk {
		if nd == src {
			si = i
			break
		}
	}
	for off := 1; off < len(m.Disk); off++ {
		nd := m.Disk[(si+off)%len(m.Disk)]
		if m.driveUp(nd) {
			return nd
		}
	}
	return nil
}

// startRebuild begins re-replicating fragment i of r from its live primary,
// unless one is already in flight for the slot or no target exists. The
// copy streams a point-in-time image of the surviving copy (base relations
// are immutable, so the image equals the live data) page by page through
// the source drive, the ring, and the target drive, sleeping between
// bursts, so foreground queries see the rebuild as ordinary contention.
func (h *Healer) startRebuild(p *sim.Proc, r *Relation, i int) {
	m := h.m
	key := fmt.Sprintf("%s/%d", r.Name, i)
	if h.rebuilding[key] {
		return
	}
	src := r.Frags[i]
	tgt := h.rebuildTarget(src.Node)
	if tgt == nil {
		return // no live target; a later round retries after a rejoin
	}
	h.rebuilding[key] = true
	fimg := src.File.Snapshot()
	idxImgs := map[rel.Attr]*wiss.BTreeImage{}
	for a, bt := range src.Indexes {
		idxImgs[a] = bt.Snapshot()
	}
	st := m.stores[tgt.ID]
	newFile := st.AdoptFile(fimg)
	pages := fimg.Pages()
	pageBytes := m.Prm.PageBytes
	m.spawnOn(p, src.Node, fmt.Sprintf("rebuild:%s", key), func(cp *sim.Proc) {
		done := false
		defer func() {
			// Any exit before completion — source crash (kill), source or
			// target drive failure (disk.FailedError), target crash —
			// abandons the copy: the partial file is dropped and the slot
			// becomes rebuildable again in a later round.
			rec := recover()
			if done && rec == nil {
				return
			}
			delete(h.rebuilding, key)
			st.DropFile(newFile)
			cp.Emit(trace.Event{
				At: int64(cp.Now()), Kind: trace.KindRebuild, Class: "abort",
				Res: r.Name, Site: i, From: src.Node.ID, To: tgt.ID,
			})
			if rec != nil {
				if _, ok := rec.(disk.FailedError); ok {
					return
				}
				panic(rec)
			}
		}()
		cp.Emit(trace.Event{
			At: int64(cp.Now()), Kind: trace.KindRebuild, Class: "start",
			Res: r.Name, Site: i, From: src.Node.ID, To: tgt.ID, N: pages,
		})
		for copied := 0; copied < pages; {
			batch := h.cfg.PageBatch
			if rem := pages - copied; batch > rem {
				batch = rem
			}
			for j := 0; j < batch; j++ {
				if !m.driveUp(src.Node) || !m.driveUp(tgt) {
					return // defer emits the abort
				}
				src.Node.Drive.Read(cp, src.File.ID, copied+j, pageBytes)
				m.Net.TransferBulk(cp, src.Node, tgt, pageBytes)
				tgt.Drive.Write(cp, newFile.ID, copied+j, pageBytes)
			}
			copied += batch
			cp.Sleep(h.cfg.Pause)
		}
		// Install: adopt the index images over the copied file and link the
		// finished replica into the directory. The slot may have been
		// re-promoted meanwhile; install only if it is still empty and the
		// fragment we copied is still the one the directory serves.
		if r.Backups[i] != nil || r.Frags[i] != src || !m.driveUp(tgt) {
			return
		}
		frag := &Fragment{Node: tgt, File: newFile, Indexes: map[rel.Attr]*wiss.BTree{}}
		for a, img := range idxImgs {
			frag.Indexes[a] = st.AdoptBTree(newFile, img)
		}
		r.Backups[i] = frag
		done = true
		delete(h.rebuilding, key)
		h.rebuilds++
		h.pagesCopied += pages
		cp.Emit(trace.Event{
			At: int64(cp.Now()), Kind: trace.KindRebuild, Class: "done",
			Res: r.Name, Site: i, From: src.Node.ID, To: tgt.ID,
			N: pages, Bytes: pages * pageBytes,
		})
		h.checkRestored()
	})
}

// checkRestored closes every open episode when the cluster is back at full
// redundancy: every mirrored fragment has a live primary and a live backup.
func (h *Healer) checkRestored() {
	m := h.m
	for _, name := range m.Relations() {
		r := m.catalog[name]
		if len(r.Backups) == 0 {
			continue
		}
		for i, fr := range r.Frags {
			if !m.driveUp(fr.Node) {
				return
			}
			b := r.Backups[i]
			if b == nil || !m.driveUp(b.Node) {
				return
			}
		}
	}
	oldest := sim.Time(-1)
	restored := false
	for i := range h.episodes {
		if h.episodes[i].RestoredAt < 0 {
			if oldest < 0 || h.episodes[i].FaultAt < oldest {
				oldest = h.episodes[i].FaultAt
			}
			h.episodes[i].RestoredAt = m.Sim.Now()
			restored = true
		}
	}
	if !restored {
		return
	}
	m.Sim.Emit(trace.Event{
		At: int64(m.Sim.Now()), Kind: trace.KindHeal, Class: "restored",
		N: int(m.Sim.Now() - oldest),
	})
}

// sortedEpisodes is a test/report helper: episodes ordered by fault time.
func (h *Healer) sortedEpisodes() []HealEpisode {
	out := append([]HealEpisode(nil), h.episodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].FaultAt < out[j].FaultAt })
	return out
}
