package core

import (
	"testing"

	"gamma/internal/rel"
)

func TestRunSortProducesGlobalOrder(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 3000)
	res := m.RunSort(SortQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap},
		By:   rel.Unique2,
	})
	if res.Tuples != 3000 {
		t.Fatalf("sorted %d tuples", res.Tuples)
	}
	out, ok := m.Relation(res.ResultName)
	if !ok {
		t.Fatal("result relation missing")
	}
	last := int32(-1)
	count := 0
	for _, fr := range out.Frags {
		for pg := 0; pg < fr.File.Pages(); pg++ {
			for _, tp := range fr.File.PageTuples(pg) {
				k := tp.Get(rel.Unique2)
				if k < last {
					t.Fatalf("out of order: %d after %d", k, last)
				}
				last = k
				count++
			}
		}
	}
	if count != 3000 {
		t.Errorf("stored %d", count)
	}
}

func TestRunSortWithPredicate(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 2000)
	res := m.RunSort(SortQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 499), Path: PathClustered},
		By:   rel.Unique2,
	})
	if res.Tuples != 500 {
		t.Errorf("sorted %d tuples, want 500", res.Tuples)
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed")
	}
}

func TestRunSortEmpty(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 500)
	res := m.RunSort(SortQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, -2, -1), Path: PathHeap},
		By:   rel.Unique1,
	})
	if res.Tuples != 0 {
		t.Errorf("sorted %d tuples from empty qualification", res.Tuples)
	}
}
