package core

import (
	"testing"

	"gamma/internal/rel"
)

// TestConcurrentQueriesCorrect: queries running simultaneously must still
// produce exact results.
func TestConcurrentQueriesCorrect(t *testing.T) {
	m, a := newTestMachine(t, 4, 4, 2000)
	b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1}, genTuples(200, 7))
	s1 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 99), Path: PathHeap}}
	s2 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 100, 299), Path: PathHeap}}
	j := JoinQuery{
		Build: ScanSpec{Rel: b, Pred: rel.True(), Path: PathHeap}, BuildAttr: rel.Unique2,
		Probe: ScanSpec{Rel: a, Pred: rel.True(), Path: PathHeap}, ProbeAttr: rel.Unique2,
		Mode: Remote,
	}
	rs := m.RunConcurrent([]ConcurrentQuery{{Select: &s1}, {Select: &s2}, {Join: &j}})
	if rs[0].Tuples != 100 {
		t.Errorf("select 1 = %d tuples, want 100", rs[0].Tuples)
	}
	if rs[1].Tuples != 200 {
		t.Errorf("select 2 = %d tuples, want 200", rs[1].Tuples)
	}
	if rs[2].Tuples != 200 {
		t.Errorf("join = %d tuples, want 200", rs[2].Tuples)
	}
	for i, r := range rs {
		if r.Elapsed <= 0 {
			t.Errorf("query %d: zero elapsed", i)
		}
	}
}

// TestConcurrentSlowerThanAlone: sharing the machine must cost something.
func TestConcurrentSlowerThanAlone(t *testing.T) {
	mk := func() (*Machine, SelectQuery) {
		m, a := newTestMachine(t, 4, 0, 4000)
		return m, SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 39), Path: PathHeap}}
	}
	m1, q := mk()
	alone := m1.RunSelect(q).Elapsed

	m2, q2 := mk()
	rs := m2.RunConcurrent([]ConcurrentQuery{{Select: &q2}, {Select: &q2}, {Select: &q2}})
	if rs[0].Elapsed <= alone {
		t.Errorf("concurrent selection (%v) not slower than solo (%v)", rs[0].Elapsed, alone)
	}
}

// TestRemoteJoinsShieldConcurrentSelections validates the expectation §6.2.1
// records for future multiuser benchmarks: with the join operators offloaded
// to the diskless processors, concurrent selections on the disk processors
// complete faster than when the join runs locally.
func TestRemoteJoinsShieldConcurrentSelections(t *testing.T) {
	run := func(mode JoinMode) (selSecs float64) {
		m, a := newTestMachine(t, 4, 4, 4000)
		b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1}, genTuples(400, 7))
		sel := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 399), Path: PathHeap}}
		j := JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True(), Path: PathHeap}, BuildAttr: rel.Unique2,
			Probe: ScanSpec{Rel: a, Pred: rel.True(), Path: PathHeap}, ProbeAttr: rel.Unique2,
			Mode: mode, MemPerJoinBytes: 8 << 20,
		}
		rs := m.RunConcurrent([]ConcurrentQuery{{Join: &j}, {Select: &sel}, {Select: &sel}})
		return rs[1].Elapsed.Seconds() + rs[2].Elapsed.Seconds()
	}
	local := run(Local)
	remote := run(Remote)
	if remote >= local {
		t.Errorf("selections alongside a Remote join (%0.2fs) should beat Local (%0.2fs) — §6.2.1",
			remote, local)
	}
}
