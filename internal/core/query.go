package core

import (
	"fmt"
	"sort"

	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// SelectQuery selects tuples from one relation and stores the result in a
// new round-robin-partitioned relation (or returns them to the host).
type SelectQuery struct {
	Scan       ScanSpec
	ResultName string
	// ToHost returns result tuples to the host instead of storing them
	// (the paper's single-tuple select and aggregate results).
	ToHost bool
	// Project keeps only the listed attributes in the result; nil keeps
	// the whole 208-byte tuple. Projection narrows the stream, reducing
	// network and result-storage cost.
	Project []rel.Attr
}

// JoinQuery is a one- or two-stage hash join. Stage one builds on Build and
// probes with Probe; if Build2 is set, stage one's output stream immediately
// probes a second join whose table is built from Build2 (joinCselAselB).
type JoinQuery struct {
	Build     ScanSpec
	BuildAttr rel.Attr
	Probe     ScanSpec
	ProbeAttr rel.Attr

	// Second stage (optional). Probe2Attr is the attribute of the stage-
	// one output tuple used to probe the second table.
	Build2     *ScanSpec
	Build2Attr rel.Attr
	Probe2Attr rel.Attr

	Mode JoinMode
	// Algorithm selects the overflow strategy: the paper's SimpleHash
	// (default) or the HybridHash replacement §8 announces.
	Algorithm JoinAlgorithm
	// UseBitFilter inserts Babb bit-vector filters into the probe-side
	// split tables (§2); disabled by default, as in the paper's tests.
	UseBitFilter bool
	// MemPerJoinBytes overrides config.Memory.JoinTableBytes for each
	// join operator (the Figure 13 memory sweep).
	MemPerJoinBytes int
	ResultName      string
}

// Result reports a query's outcome and simulated cost.
type Result struct {
	Elapsed    sim.Dur
	Tuples     int
	ResultName string
	// Overflow telemetry (joins): resolutions observed at the most-
	// overflowed site, and the per-site counts.
	Overflows       int
	OverflowPerSite []int
	// Network activity during the query.
	DataPackets int64
	LocalMsgs   int64
	CtlMsgs     int64
	// Query is the trace span id ("q1", "q2", ...) assigned at launch.
	Query string
	// Diag is the bottleneck classification of the query's span, non-nil
	// when the machine has tracing enabled (Machine.EnableTrace).
	Diag *trace.Verdict
}

// initOp charges the scheduler the §6.2.3 cost of initiating one operator on
// one node: MsgsPerOperatorInit control messages of CtlMsg each, serialized
// on the scheduler's CPU.
func (m *Machine) initOp(p *sim.Proc, node *nose.Node) {
	n := m.Prm.Engine.MsgsPerOperatorInit
	m.Sched.CPU.Use(p, sim.Dur(n)*m.Prm.Net.CtlMsg)
}

// JoinNodes returns the processors that execute join operators in a mode.
func (m *Machine) JoinNodes(mode JoinMode) []*nose.Node {
	switch mode {
	case Local:
		return m.Disk
	case Remote:
		if len(m.Diskless) > 0 {
			return m.Diskless
		}
		return m.Disk
	default:
		return append(append([]*nose.Node(nil), m.Disk...), m.Diskless...)
	}
}

// inbox buffers the scheduler's incoming control messages by kind so phases
// can await specific completions while unrelated reports arrive interleaved.
type inbox struct {
	p        *sim.Proc
	port     *nose.Port
	dones    map[string][]doneMsg
	builts   map[string][]builtMsg
	probeds  map[string][]probedMsg
	stores   []storeDone
	aggParts []aggPartial
	aggDones []aggDone
	updDones []updateDone
}

func newInbox(p *sim.Proc, port *nose.Port) *inbox {
	return &inbox{
		p:       p,
		port:    port,
		dones:   map[string][]doneMsg{},
		builts:  map[string][]builtMsg{},
		probeds: map[string][]probedMsg{},
	}
}

func (ib *inbox) pump() {
	msg := ib.port.Recv(ib.p)
	switch pl := msg.Payload.(type) {
	case doneMsg:
		ib.dones[pl.op] = append(ib.dones[pl.op], pl)
	case builtMsg:
		ib.builts[pl.op] = append(ib.builts[pl.op], pl)
	case probedMsg:
		ib.probeds[pl.op] = append(ib.probeds[pl.op], pl)
	case storeDone:
		ib.stores = append(ib.stores, pl)
	case aggPartial:
		ib.aggParts = append(ib.aggParts, pl)
	case aggDone:
		ib.aggDones = append(ib.aggDones, pl)
	case updateDone:
		ib.updDones = append(ib.updDones, pl)
	default:
		panic(fmt.Sprintf("scheduler: unexpected message %T", msg.Payload))
	}
}

func (ib *inbox) waitAgg() aggDone {
	for len(ib.aggDones) == 0 {
		ib.pump()
	}
	out := ib.aggDones[0]
	ib.aggDones = ib.aggDones[1:]
	return out
}

func (ib *inbox) waitAggPartial() aggPartial {
	for len(ib.aggParts) == 0 {
		ib.pump()
	}
	out := ib.aggParts[0]
	ib.aggParts = ib.aggParts[1:]
	return out
}

func (ib *inbox) waitUpdates(n int) []updateDone {
	for len(ib.updDones) < n {
		ib.pump()
	}
	out := ib.updDones
	ib.updDones = nil
	return out
}

func (ib *inbox) waitDones(op string, n int) []doneMsg {
	for len(ib.dones[op]) < n {
		ib.pump()
	}
	out := ib.dones[op]
	delete(ib.dones, op)
	return out
}

func (ib *inbox) waitBuilts(op string, n int) []builtMsg {
	for len(ib.builts[op]) < n {
		ib.pump()
	}
	out := ib.builts[op]
	delete(ib.builts, op)
	return out
}

func (ib *inbox) waitProbeds(op string, n int) []probedMsg {
	for len(ib.probeds[op]) < n {
		ib.pump()
	}
	out := ib.probeds[op]
	delete(ib.probeds, op)
	return out
}

func (ib *inbox) waitStores(n int) []storeDone {
	for len(ib.stores) < n {
		ib.pump()
	}
	out := ib.stores
	ib.stores = nil
	return out
}

// launchQuery spawns the host and scheduler processes around `body` without
// running the simulation, so several queries can execute concurrently (each
// query gets its own scheduler, as in Gamma, where the dispatcher activates
// one idle scheduler process per query, §2).
func (m *Machine) launchQuery(res *Result, body func(p *sim.Proc, ib *inbox, schedPort *nose.Port)) {
	start := m.Sim.Now()
	m.nextQID++
	res.Query = fmt.Sprintf("q%d", m.nextQID)
	m.Sim.Emit(trace.Event{At: int64(start), Kind: trace.KindQueryStart, Query: res.Query})
	schedPort := m.Sched.NewPort("sched")
	hostPort := m.Host.NewPort("host")
	m.Sim.Spawn("scheduler", func(p *sim.Proc) {
		schedPort.Recv(p) // the compiled query arrives from the host
		ib := newInbox(p, schedPort)
		body(p, ib, schedPort)
		nose.SendCtl(p, m.Sched, hostPort, "done")
	})
	m.Sim.Spawn("host", func(p *sim.Proc) {
		m.Host.CPU.Use(p, m.Prm.Engine.HostStartup)
		nose.SendCtl(p, m.Host, schedPort, "query")
		hostPort.Recv(p)
		res.Elapsed = p.Now() - start
		m.Sim.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindQueryDone, Query: res.Query})
	})
}

// diagnose fills res.Diag from the collected trace, if tracing is enabled.
func (m *Machine) diagnose(res *Result) {
	if m.Trace == nil {
		return
	}
	if v, ok := m.Trace.DiagnoseQuery(res.Query); ok {
		res.Diag = &v
	}
}

// runQuery launches one query and runs the simulation to completion.
func (m *Machine) runQuery(res *Result, body func(p *sim.Proc, ib *inbox, schedPort *nose.Port)) {
	m.ResetPools()
	net0 := m.Net.Stats()
	m.launchQuery(res, body)
	m.Sim.Run()
	net1 := m.Net.Stats()
	res.DataPackets = net1.DataPackets - net0.DataPackets
	res.LocalMsgs = net1.LocalMsgs - net0.LocalMsgs
	res.CtlMsgs = net1.CtlMsgs - net0.CtlMsgs
	m.diagnose(res)
}

// setupStores creates the result relation (unless toHost), initiates one
// store operator per disk node (or a host collector), and returns the
// destination ports plus a closure that closes them with the final EOS count.
func (m *Machine) setupStores(p *sim.Proc, ib *inbox, schedPort *nose.Port, res *Result, resultName string, toHost bool, width int) (ports []*nose.Port, closeStores func(expectEOS int) int) {
	if toHost {
		colPort := m.Host.NewPort("collect")
		spawnCollector(m, "collect", m.Host, colPort, schedPort, nil)
		ports = []*nose.Port{colPort}
	} else {
		resRel := m.newResultRelation(resultName, width)
		res.ResultName = resRel.Name
		for i, nd := range m.Disk {
			pt := nd.NewPort(fmt.Sprintf("store%d", i))
			m.initOp(p, nd)
			spawnStore(m, "store", i, resRel.Frags[i], pt, schedPort)
			ports = append(ports, pt)
		}
	}
	closeStores = func(expectEOS int) int {
		for _, pt := range ports {
			nose.SendCtl(p, m.Sched, pt, storeClose{expectEOS: expectEOS})
		}
		stored := 0
		for _, sd := range ib.waitStores(len(ports)) {
			stored += sd.stored
		}
		return stored
	}
	return ports, closeStores
}

// RunSelect executes a selection query (§5).
func (m *Machine) RunSelect(q SelectQuery) Result {
	var res Result
	m.runQuery(&res, m.selectBody(q, &res))
	return res
}

// selectBody builds the scheduler program for a selection query.
func (m *Machine) selectBody(q SelectQuery, res *Result) func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
	scan := m.resolveScan(q.Scan)
	width := scan.Rel.width(m)
	if len(q.Project) > 0 {
		width = 4 * len(q.Project)
	}
	return func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
		storePorts, closeStores := m.setupStores(p, ib, schedPort, res, q.ResultName, q.ToHost, width)
		frags := m.scanSites(scan)
		for si, frag := range frags {
			m.initOp(p, frag.Node)
			spawnSelect(m, "select", si, frag, scan.Pred, scan.Path, func() selectOutput {
				return selectOutput{
					stream: streamStore, ports: storePorts, route: RRRoute(len(storePorts)),
					width: width, project: q.Project,
				}
			}, schedPort)
		}
		produced := 0
		for _, d := range ib.waitDones("select", len(frags)) {
			produced += d.produced
		}
		stored := closeStores(len(frags))
		if q.ToHost {
			res.Tuples = produced
		} else {
			res.Tuples = stored
		}
	}
}

// stage tracks one hash join's sites and overflow state at the scheduler.
type stage struct {
	opID      string
	nodes     []*nose.Node
	ports     []*nose.Port
	buildAttr rel.Attr
	probeAttr rel.Attr
	// pending[level][site] = spool files awaiting an overflow round.
	pending  map[int]map[int]spoolInfo
	phases   int
	perSite  []int
	produced int
}

func (m *Machine) newStage(opID string, nodes []*nose.Node, buildAttr, probeAttr rel.Attr) *stage {
	st := &stage{
		opID:      opID,
		nodes:     nodes,
		buildAttr: buildAttr,
		probeAttr: probeAttr,
		pending:   map[int]map[int]spoolInfo{},
		perSite:   make([]int, len(nodes)),
	}
	for i, nd := range nodes {
		st.ports = append(st.ports, nd.NewPort(fmt.Sprintf("%s@%d", opID, i)))
	}
	return st
}

// absorb records a probing phase's reports: result counts, overflow
// telemetry, and newly created spool partitions.
func (st *stage) absorb(reports []probedMsg) {
	for _, r := range reports {
		st.produced += r.produced
		st.perSite[r.site] = r.overflowEvents
		for _, si := range r.newSpools {
			lvl := st.pending[si.level]
			if lvl == nil {
				lvl = map[int]spoolInfo{}
				st.pending[si.level] = lvl
			}
			lvl[r.site] = si
		}
	}
	st.phases++
}

// runRounds drains the stage's overflow partitions: for each pending level,
// every site's build spool is redistributed with a fresh hash function and
// rebuilt, then the probe spools are redistributed and probed (§6.2.2).
func (m *Machine) runRounds(p *sim.Proc, ib *inbox, schedPort *nose.Port, st *stage) {
	nJ := len(st.nodes)
	for len(st.pending) > 0 {
		levels := make([]int, 0, len(st.pending))
		for l := range st.pending {
			levels = append(levels, l)
		}
		sort.Ints(levels)
		l := levels[0]
		infos := st.pending[l]
		delete(st.pending, l)

		// Round build: redistribute build spools under a new seed.
		for si := range st.nodes {
			nose.SendCtl(p, m.Sched, st.ports[si], joinCtl{kind: ctlRoundBuild, level: l})
		}
		for si, nd := range st.nodes {
			info := infos[si]
			// Spool files are rescanned by select-like operators at
			// the disk site holding them (diskless processors spooled
			// remotely), so Remote rounds pipeline across both CPU
			// sets while Local rounds stack scan and join work on the
			// same processors — the §6.2.2 crossover.
			reader := nd
			if info.owner != nil {
				reader = info.owner
			}
			m.initOp(p, reader)
			spawnSpoolScan(m, st.opID+".ovfbuild", si, info.build, info.owner, reader, func() selectOutput {
				return selectOutput{stream: roundStream(l, false), ports: st.ports, route: HashRoute(st.buildAttr, roundSeed(l), nJ)}
			}, schedPort)
		}
		ib.waitDones(st.opID+".ovfbuild", nJ)
		ib.waitBuilts(st.opID, nJ)

		// Round probe: redistribute probe spools likewise.
		for si := range st.nodes {
			nose.SendCtl(p, m.Sched, st.ports[si], joinCtl{kind: ctlRoundProbe, level: l})
		}
		for si, nd := range st.nodes {
			info := infos[si]
			reader := nd
			if info.owner != nil {
				reader = info.owner
			}
			m.initOp(p, reader)
			spawnSpoolScan(m, st.opID+".ovfprobe", si, info.probe, info.owner, reader, func() selectOutput {
				return selectOutput{stream: roundStream(l, true), ports: st.ports, route: HashRoute(st.probeAttr, roundSeed(l), nJ)}
			}, schedPort)
		}
		ib.waitDones(st.opID+".ovfprobe", nJ)
		st.absorb(ib.waitProbeds(st.opID, nJ))
	}
}

// finish releases a stage's join operators.
func (m *Machine) finishStage(p *sim.Proc, st *stage) {
	for _, pt := range st.ports {
		nose.SendCtl(p, m.Sched, pt, joinCtl{kind: ctlFinish})
	}
}

// RunJoin executes a one- or two-stage hash join query (§6).
func (m *Machine) RunJoin(q JoinQuery) Result {
	var res Result
	m.runQuery(&res, m.joinBody(q, &res))
	return res
}

// joinBody builds the scheduler program for a join query.
func (m *Machine) joinBody(q JoinQuery, res *Result) func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
	build := m.resolveScan(q.Build)
	probe := m.resolveScan(q.Probe)
	var build2 ScanSpec
	if q.Build2 != nil {
		build2 = m.resolveScan(*q.Build2)
	}
	joinNodes := m.JoinNodes(q.Mode)
	nJ := len(joinNodes)
	memPer := q.MemPerJoinBytes
	if memPer <= 0 {
		memPer = m.Prm.Memory.JoinTableBytes
	}
	// Hybrid hash join plans its partition count from the optimizer's
	// estimate of the per-site build size.
	hybridParts := 0
	if q.Algorithm == HybridHash {
		estBytes := int(float64(q.Build.Rel.N) * q.Build.Pred.Selectivity(q.Build.Rel.N) * float64(m.Prm.TupleBytes) / float64(nJ))
		if estBytes > memPer {
			hybridParts = (estBytes-1)/memPer + 1 // spilled partitions
		}
	}

	return func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
		storePorts, closeStores := m.setupStores(p, ib, schedPort, res, q.ResultName, false, 0)

		// Optional second stage, built first so stage one can stream
		// into it.
		var st2 *stage
		if q.Build2 != nil {
			st2 = m.newStage("join2", joinNodes, q.Build2Attr, q.Probe2Attr)
			b2frags := m.scanSites(build2)
			for si, nd := range joinNodes {
				m.initOp(p, nd)
				spawnJoin(joinSpec{
					m: m, opID: "join2", site: si, node: nd, port: st2.ports[si], sched: schedPort,
					buildAttr: q.Build2Attr, probeAttr: q.Probe2Attr,
					nSites: nJ, nBuild: len(b2frags), nProbe: -1, memBytes: memPer,
					outStream: streamStore, outPorts: storePorts,
					mkOutRoute: func() RouteFn { return RRRoute(len(storePorts)) },
				})
			}
			for si, frag := range b2frags {
				m.initOp(p, frag.Node)
				spawnSelect(m, "sel-build2", si, frag, build2.Pred, build2.Path, func() selectOutput {
					return selectOutput{stream: streamBuild, ports: st2.ports, route: HashRoute(q.Build2Attr, LoadSeed, nJ)}
				}, schedPort)
			}
			ib.waitDones("sel-build2", len(b2frags))
			ib.waitBuilts("join2", nJ)
		}

		// Stage one join operators.
		st1 := m.newStage("join1", joinNodes, q.BuildAttr, q.ProbeAttr)
		outPorts := storePorts
		outStream := streamStore
		mkOutRoute := func() RouteFn { return RRRoute(len(storePorts)) }
		if st2 != nil {
			outPorts = st2.ports
			outStream = streamProbe
			mkOutRoute = func() RouteFn { return HashRoute(q.Probe2Attr, LoadSeed, nJ) }
		}
		bfrags := m.scanSites(build)
		pfrags := m.scanSites(probe)
		for si, nd := range joinNodes {
			m.initOp(p, nd)
			spawnJoin(joinSpec{
				m: m, opID: "join1", site: si, node: nd, port: st1.ports[si], sched: schedPort,
				buildAttr: q.BuildAttr, probeAttr: q.ProbeAttr,
				nSites: nJ, nBuild: len(bfrags), nProbe: len(pfrags), memBytes: memPer,
				outStream: outStream, outPorts: outPorts, mkOutRoute: mkOutRoute,
				makeFilter: q.UseBitFilter, filterBits: 1 << 16,
				algo: q.Algorithm, hybridParts: hybridParts,
			})
		}

		// Build selections.
		for si, frag := range bfrags {
			m.initOp(p, frag.Node)
			spawnSelect(m, "sel-build", si, frag, build.Pred, build.Path, func() selectOutput {
				return selectOutput{stream: streamBuild, ports: st1.ports, route: HashRoute(q.BuildAttr, LoadSeed, nJ)}
			}, schedPort)
		}
		ib.waitDones("sel-build", len(bfrags))
		builts := ib.waitBuilts("join1", nJ)

		// Probe selections, with Babb filters if every site produced one.
		filters := make([]*BitFilter, nJ)
		haveFilters := q.UseBitFilter
		for _, b := range builts {
			if b.filter == nil {
				haveFilters = false
			} else {
				filters[b.site] = b.filter
			}
		}
		for si, frag := range pfrags {
			m.initOp(p, frag.Node)
			fr := frag
			spawnSelect(m, "sel-probe", si, fr, probe.Pred, probe.Path, func() selectOutput {
				out := selectOutput{stream: streamProbe, ports: st1.ports, route: HashRoute(q.ProbeAttr, LoadSeed, nJ)}
				if haveFilters {
					out.filters = filters
					out.filterAttr = q.ProbeAttr
				}
				return out
			}, schedPort)
		}
		ib.waitDones("sel-probe", len(pfrags))
		st1.absorb(ib.waitProbeds("join1", nJ))

		// Stage-one overflow rounds, then release its operators.
		m.runRounds(p, ib, schedPort, st1)
		m.finishStage(p, st1)

		finalStage := st1
		if st2 != nil {
			for _, pt := range st2.ports {
				nose.SendCtl(p, m.Sched, pt, joinCtl{kind: ctlProbeClose, expectEOS: nJ * st1.phases})
			}
			st2.absorb(ib.waitProbeds("join2", nJ))
			m.runRounds(p, ib, schedPort, st2)
			m.finishStage(p, st2)
			finalStage = st2
		}

		res.Tuples = closeStores(nJ * finalStage.phases)
		res.OverflowPerSite = append(st1.perSite[:0:0], st1.perSite...)
		if st2 != nil {
			for i, v := range st2.perSite {
				res.OverflowPerSite[i] += v
			}
		}
		for _, v := range res.OverflowPerSite {
			if v > res.Overflows {
				res.Overflows = v
			}
		}
	}
}

// ConcurrentQuery is one member of a multiuser workload: exactly one of the
// fields is set.
type ConcurrentQuery struct {
	Select *SelectQuery
	Join   *JoinQuery
}

// RunConcurrent starts every query at the same simulated instant — the
// multiuser scenario §6.2.1 defers to "future multiuser benchmarks" — and
// returns each query's response time. Each query gets its own scheduler
// process, as Gamma's dispatcher would assign.
func (m *Machine) RunConcurrent(qs []ConcurrentQuery) []Result {
	m.ResetPools()
	results := make([]Result, len(qs))
	for i, q := range qs {
		switch {
		case q.Select != nil:
			m.launchQuery(&results[i], m.selectBody(*q.Select, &results[i]))
		case q.Join != nil:
			m.launchQuery(&results[i], m.joinBody(*q.Join, &results[i]))
		default:
			panic("core: empty ConcurrentQuery")
		}
	}
	m.Sim.Run()
	for i := range results {
		m.diagnose(&results[i])
	}
	return results
}
