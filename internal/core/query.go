package core

import (
	"fmt"
	"sort"

	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// SelectQuery selects tuples from one relation and stores the result in a
// new round-robin-partitioned relation (or returns them to the host).
type SelectQuery struct {
	Scan       ScanSpec
	ResultName string
	// ToHost returns result tuples to the host instead of storing them
	// (the paper's single-tuple select and aggregate results).
	ToHost bool
	// Project keeps only the listed attributes in the result; nil keeps
	// the whole 208-byte tuple. Projection narrows the stream, reducing
	// network and result-storage cost.
	Project []rel.Attr
}

// JoinQuery is a one- or two-stage hash join. Stage one builds on Build and
// probes with Probe; if Build2 is set, stage one's output stream immediately
// probes a second join whose table is built from Build2 (joinCselAselB).
type JoinQuery struct {
	Build     ScanSpec
	BuildAttr rel.Attr
	Probe     ScanSpec
	ProbeAttr rel.Attr

	// Second stage (optional). Probe2Attr is the attribute of the stage-
	// one output tuple used to probe the second table.
	Build2     *ScanSpec
	Build2Attr rel.Attr
	Probe2Attr rel.Attr

	Mode JoinMode
	// Algorithm selects the overflow strategy: the paper's SimpleHash
	// (default) or the HybridHash replacement §8 announces.
	Algorithm JoinAlgorithm
	// UseBitFilter inserts Babb bit-vector filters into the probe-side
	// split tables (§2); disabled by default, as in the paper's tests.
	UseBitFilter bool
	// MemPerJoinBytes overrides config.Memory.JoinTableBytes for each
	// join operator (the Figure 13 memory sweep).
	MemPerJoinBytes int
	ResultName      string
}

// Result reports a query's outcome and simulated cost.
type Result struct {
	Elapsed    sim.Dur
	Tuples     int
	ResultName string
	// Overflow telemetry (joins): resolutions observed at the most-
	// overflowed site, and the per-site counts.
	Overflows       int
	OverflowPerSite []int
	// Network activity during the query.
	DataPackets int64
	LocalMsgs   int64
	CtlMsgs     int64
	// Buffer-pool activity during the query (machine-wide deltas; exact
	// per-query for serially executed queries).
	PoolHits   int64
	PoolMisses int64
	// SharedPagesSaved is the number of physical page reads the scan-sharing
	// layer avoided during the query (0 with sharing off).
	SharedPagesSaved int64
	// Query is the trace span id ("q1", "q2", ...) assigned at launch.
	Query string
	// Diag is the bottleneck classification of the query's span, non-nil
	// when the machine has tracing enabled (Machine.EnableTrace).
	Diag *trace.Verdict

	// Err is non-nil when the query could not complete: some fragment had no
	// readable copy, or failover retries were exhausted (*ErrUnavailable).
	// Only this query fails; the machine keeps serving others.
	Err error
	// Degraded reports that the successful attempt read at least one backup
	// copy in place of a lost primary — the result is correct but was
	// produced in degraded mode, and is never silently presented as healthy.
	Degraded bool
	// Attempts is the number of attempts executed (1 for a clean run).
	Attempts int
}

// initOp charges the scheduler the §6.2.3 cost of initiating one operator on
// one node: MsgsPerOperatorInit control messages of CtlMsg each, serialized
// on the scheduler's CPU. The cost is attributed in the trace as a control-
// message event so Diagnose's "ctl" class can surface scheduler-bound
// queries (§6.2.3's short-query regime).
func (m *Machine) initOp(p *sim.Proc, node *nose.Node) {
	n := m.Prm.Engine.MsgsPerOperatorInit
	cost := sim.Dur(n) * m.Prm.Net.CtlMsg
	m.Sched.CPU.Use(p, cost)
	if m.Sim.Tracing() {
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindCtlMsg, From: m.Sched.ID, To: node.ID, Dur: int64(cost)})
	}
}

// JoinNodes returns the processors that execute join operators in a mode,
// excluding crashed nodes (a node with only a failed drive still joins; its
// spooling was re-pointed at a surviving drive). It panics when no
// processor survives; the typed-error query path uses joinNodesErr.
func (m *Machine) JoinNodes(mode JoinMode) []*nose.Node {
	out, err := m.joinNodesErr(mode)
	if err != nil {
		panic("core: no surviving processor to run join operators")
	}
	return out
}

// joinNodesErr is JoinNodes for the typed-error query path: an empty
// survivor set returns *ErrUnavailable instead of panicking.
func (m *Machine) joinNodesErr(mode JoinMode) ([]*nose.Node, error) {
	var cand []*nose.Node
	switch mode {
	case Local:
		cand = m.Disk
	case Remote:
		if len(m.Diskless) > 0 {
			cand = m.Diskless
		} else {
			cand = m.Disk
		}
	default:
		cand = append(append([]*nose.Node(nil), m.Disk...), m.Diskless...)
	}
	out := make([]*nose.Node, 0, len(cand))
	for _, nd := range cand {
		if !nd.Failed() {
			out = append(out, nd)
		}
	}
	if len(out) == 0 {
		return nil, &ErrUnavailable{}
	}
	return out, nil
}

// inbox buffers the scheduler's incoming control messages by kind so phases
// can await specific completions while unrelated reports arrive interleaved.
// Completion reports are keyed by operator id; failover retries re-dispatch
// under attempt-tagged ids (".r1", ".r2", ...), so a straggling report from
// an aborted attempt can never satisfy a later attempt's wait.
type inbox struct {
	p        *sim.Proc
	port     *nose.Port
	ft       *queryFT // non-nil when mid-query failover is armed
	dones    map[string][]doneMsg
	builts   map[string][]builtMsg
	probeds  map[string][]probedMsg
	stores   map[string][]storeDone
	acked    map[string]map[int]bool // abort acks: op -> sites acked
	aggParts []aggPartial
	aggDones []aggDone
	updDones []updateDone
}

func newInbox(p *sim.Proc, port *nose.Port) *inbox {
	return &inbox{
		p:       p,
		port:    port,
		dones:   map[string][]doneMsg{},
		builts:  map[string][]builtMsg{},
		probeds: map[string][]probedMsg{},
		stores:  map[string][]storeDone{},
		acked:   map[string]map[int]bool{},
	}
}

// errSiteFailed reports mid-query loss of operator sites; the scheduler's
// attempt loop catches it, aborts, and replans against backup fragments.
type errSiteFailed struct{ sites []int }

func (e errSiteFailed) Error() string {
	return fmt.Sprintf("disk site(s) %v failed mid-query", e.sites)
}

// opFailed is an operator's report that a disk access raised a drive
// failure. Unlike a node crash (detected by scheduler timeout), a drive
// failure leaves the processor able to report, so detection is immediate.
type opFailed struct {
	op   string
	node int
}

// abortedMsg acknowledges a ctlAbort/storeAbort: the operator has dropped
// its buffered work and closed its port.
type abortedMsg struct {
	op   string
	site int
}

// pump receives and files one control message. With failover armed, the
// receive times out after the detection interval: a timeout with a failure
// newer than the attempt's snapshot (or an explicit opFailed report from an
// operator that lost its drive) returns errSiteFailed; a timeout with
// nothing newly failed is a quiet phase of a healthy run, and the wait
// simply continues.
func (ib *inbox) pump() error {
	var msg nose.Message
	if ib.ft != nil {
		for {
			var ok bool
			msg, ok = ib.port.RecvTimeout(ib.p, ib.ft.detect)
			if ok {
				break
			}
			if failed := ib.ft.newlyFailed(); len(failed) > 0 {
				return errSiteFailed{sites: failed}
			}
		}
	} else {
		msg = ib.port.Recv(ib.p)
	}
	switch pl := msg.Payload.(type) {
	case doneMsg:
		ib.dones[pl.op] = append(ib.dones[pl.op], pl)
	case builtMsg:
		ib.builts[pl.op] = append(ib.builts[pl.op], pl)
	case probedMsg:
		ib.probeds[pl.op] = append(ib.probeds[pl.op], pl)
	case storeDone:
		ib.stores[pl.op] = append(ib.stores[pl.op], pl)
	case opFailed:
		if ib.ft == nil {
			panic(fmt.Sprintf("core: operator %s on node %d lost its drive (failover not enabled)", pl.op, pl.node))
		}
		// Actionable only while a failure is newer than the attempt's
		// snapshot; afterwards it is a straggling report from an attempt
		// already aborted for that same failure.
		if failed := ib.ft.newlyFailed(); len(failed) > 0 {
			return errSiteFailed{sites: failed}
		}
	case abortedMsg:
		acks := ib.acked[pl.op]
		if acks == nil {
			acks = map[int]bool{}
			ib.acked[pl.op] = acks
		}
		acks[pl.site] = true
	case aggPartial:
		ib.aggParts = append(ib.aggParts, pl)
	case aggDone:
		ib.aggDones = append(ib.aggDones, pl)
	case updateDone:
		ib.updDones = append(ib.updDones, pl)
	default:
		panic(fmt.Sprintf("scheduler: unexpected message %T", msg.Payload))
	}
	return nil
}

// mustPump is pump for query types that do not participate in failover
// (aggregates, updates, sorts): a site failure there is fatal.
func (ib *inbox) mustPump() {
	if err := ib.pump(); err != nil {
		panic("core: " + err.Error() + " (query type does not support failover)")
	}
}

func (ib *inbox) waitAgg() aggDone {
	for len(ib.aggDones) == 0 {
		ib.mustPump()
	}
	out := ib.aggDones[0]
	ib.aggDones = ib.aggDones[1:]
	return out
}

func (ib *inbox) waitAggPartial() aggPartial {
	for len(ib.aggParts) == 0 {
		ib.mustPump()
	}
	out := ib.aggParts[0]
	ib.aggParts = ib.aggParts[1:]
	return out
}

func (ib *inbox) waitUpdates(n int) []updateDone {
	for len(ib.updDones) < n {
		ib.mustPump()
	}
	out := ib.updDones
	ib.updDones = nil
	return out
}

func (ib *inbox) waitDones(op string, n int) ([]doneMsg, error) {
	for len(ib.dones[op]) < n {
		if err := ib.pump(); err != nil {
			return nil, err
		}
	}
	out := ib.dones[op]
	delete(ib.dones, op)
	return out, nil
}

func (ib *inbox) waitBuilts(op string, n int) ([]builtMsg, error) {
	for len(ib.builts[op]) < n {
		if err := ib.pump(); err != nil {
			return nil, err
		}
	}
	out := ib.builts[op]
	delete(ib.builts, op)
	return out, nil
}

func (ib *inbox) waitProbeds(op string, n int) ([]probedMsg, error) {
	for len(ib.probeds[op]) < n {
		if err := ib.pump(); err != nil {
			return nil, err
		}
	}
	out := ib.probeds[op]
	delete(ib.probeds, op)
	return out, nil
}

func (ib *inbox) waitStores(op string, n int) ([]storeDone, error) {
	for len(ib.stores[op]) < n {
		if err := ib.pump(); err != nil {
			return nil, err
		}
	}
	out := ib.stores[op]
	delete(ib.stores, op)
	return out, nil
}

// mustDones is waitDones for non-failover query types.
func (ib *inbox) mustDones(op string, n int) []doneMsg {
	for len(ib.dones[op]) < n {
		ib.mustPump()
	}
	out := ib.dones[op]
	delete(ib.dones, op)
	return out
}

// mustStores is waitStores for non-failover query types.
func (ib *inbox) mustStores(op string, n int) []storeDone {
	for len(ib.stores[op]) < n {
		ib.mustPump()
	}
	out := ib.stores[op]
	delete(ib.stores, op)
	return out
}

// waitAborts blocks until every port in the list has either acknowledged
// the abort (an abortedMsg for op from its site index) or closed without
// acknowledging (its node crashed, or its operator died of a drive failure
// — both close the port). Failures reported meanwhile are absorbed: the
// retry replans from fresh machine state anyway.
func (ib *inbox) waitAborts(op string, ports []*nose.Port) {
	for {
		settled := true
		for i, pt := range ports {
			if !pt.Closed() && !ib.acked[op][i] {
				settled = false
				break
			}
		}
		if settled {
			delete(ib.acked, op)
			return
		}
		_ = ib.pump()
	}
}

// queryFT is one query's failover state: the detection timeout, the attempt
// counter, and a snapshot of disk-site health taken when the attempt was
// planned, so the scheduler can tell a fresh failure from one it already
// planned around.
type queryFT struct {
	m       *Machine
	detect  sim.Dur
	attempt int
	snap    []siteSnap
}

// siteSnap is one disk site's health at attempt planning time. epoch is the
// site's crash count: a site that crashed and rejoined between two detection
// sweeps still shows a changed epoch, so operators it killed are not waited
// on forever.
type siteSnap struct {
	up    bool
	epoch int
}

// newQueryFT returns failover state for one query, or nil when failover is
// not armed on the machine.
func (m *Machine) newQueryFT() *queryFT {
	if m.ftDetect <= 0 {
		return nil
	}
	return &queryFT{m: m, detect: m.ftDetect}
}

// resnap records disk-site health at the start of an attempt.
func (ft *queryFT) resnap() {
	ft.snap = ft.snap[:0]
	for i, nd := range ft.m.Disk {
		ft.snap = append(ft.snap, siteSnap{up: ft.m.driveUp(nd), epoch: ft.m.siteEpochs[i]})
	}
}

// newlyFailed lists disk sites lost since the attempt's snapshot: sites whose
// drive went down, and sites that crashed at all since planning — even if
// they already rejoined — because a crash killed any operator running there.
func (ft *queryFT) newlyFailed() []int {
	var out []int
	for i, nd := range ft.m.Disk {
		if ft.snap[i].up && (!ft.m.driveUp(nd) || ft.m.siteEpochs[i] != ft.snap[i].epoch) {
			out = append(out, i)
		}
	}
	return out
}

// tag returns the attempt suffix for operator ids: "" for the first attempt
// (so healthy runs are byte-identical to a machine without failover), ".rN"
// for retries.
func (ib *inbox) tag() string {
	if ib.ft == nil || ib.ft.attempt == 0 {
		return ""
	}
	return fmt.Sprintf(".r%d", ib.ft.attempt)
}

// beginAttempt snapshots machine health and emits the retry marker for
// re-dispatches. When attempts exceed the disk-site count — more distinct
// failures than sites means the cluster cannot serve this query — it returns
// *ErrUnavailable, bounding the retry loop with a typed per-query error.
func (ib *inbox) beginAttempt(m *Machine, res *Result) error {
	res.Attempts++
	if ib.ft == nil {
		return nil
	}
	if ib.ft.attempt > len(m.Disk) {
		return &ErrUnavailable{Attempts: ib.ft.attempt}
	}
	ib.ft.resnap()
	if ib.ft.attempt > 0 {
		ib.p.Emit(trace.Event{
			At: int64(ib.p.Now()), Kind: trace.KindFailover, Class: "retry",
			Query: res.Query, N: ib.ft.attempt,
		})
	}
	return nil
}

// retryBackoff delays a re-dispatch with exponential backoff plus
// deterministic jitter: attempt k sleeps base<<(k-1) (capped) plus a jitter
// drawn from a splitmix64 stream seeded by the query id and attempt number,
// so retries from queries that aborted at the same instant fan out instead
// of stampeding the scheduler, and identical runs remain byte-identical.
const (
	retryBackoffBase = 10 * sim.Millisecond
	retryBackoffCap  = 500 * sim.Millisecond
)

func (m *Machine) retryBackoff(p *sim.Proc, ib *inbox, res *Result) {
	if ib.ft == nil {
		return
	}
	k := ib.ft.attempt // already incremented by abortAttempt
	d := retryBackoffBase
	for i := 1; i < k && d < retryBackoffCap; i++ {
		d <<= 1
	}
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	// FNV-1a over the query id, mixed with the attempt number.
	h := uint64(14695981039346656037)
	for i := 0; i < len(res.Query); i++ {
		h = (h ^ uint64(res.Query[i])) * 1099511628211
	}
	state := h ^ uint64(k)
	jitter := sim.Dur(splitmix64(&state) % uint64(d))
	p.Sleep(d + jitter)
}

// launchQuery spawns the host and scheduler processes around `body` without
// running the simulation, so several queries can execute concurrently (each
// query gets its own scheduler, as in Gamma, where the dispatcher activates
// one idle scheduler process per query, §2).
func (m *Machine) launchQuery(res *Result, body func(p *sim.Proc, ib *inbox, schedPort *nose.Port)) {
	m.launchQueryDone(res, body, nil)
}

// launchQueryDone is launchQuery with a completion hook: onDone (if non-nil)
// runs in the host process after the query's result is final. The closed-loop
// workload driver uses it to wake the issuing terminal.
func (m *Machine) launchQueryDone(res *Result, body func(p *sim.Proc, ib *inbox, schedPort *nose.Port), onDone func()) {
	start := m.Sim.Now()
	m.nextQID++
	res.Query = fmt.Sprintf("q%d", m.nextQID)
	m.Sim.Emit(trace.Event{At: int64(start), Kind: trace.KindQueryStart, Query: res.Query})
	schedPort := m.Sched.NewPort("sched")
	hostPort := m.Host.NewPort("host")
	m.Sim.SpawnOn(m.Sched.Part, "scheduler", func(p *sim.Proc) {
		schedPort.Recv(p) // the compiled query arrives from the host
		ib := newInbox(p, schedPort)
		ib.ft = m.newQueryFT()
		body(p, ib, schedPort)
		nose.SendCtl(p, m.Sched, hostPort, "done")
	})
	m.Sim.SpawnOn(m.Host.Part, "host", func(p *sim.Proc) {
		m.Host.CPU.Use(p, m.Prm.Engine.HostStartup)
		nose.SendCtl(p, m.Host, schedPort, "query")
		hostPort.Recv(p)
		res.Elapsed = p.Now() - start
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindQueryDone, Query: res.Query})
		if onDone != nil {
			onDone()
		}
	})
}

// diagnose fills res.Diag from the collected trace, if tracing is enabled.
func (m *Machine) diagnose(res *Result) {
	if m.Trace == nil {
		return
	}
	if v, ok := m.Trace.DiagnoseQuery(res.Query); ok {
		res.Diag = &v
	}
}

// runQuery launches one query and runs the simulation to completion.
func (m *Machine) runQuery(res *Result, body func(p *sim.Proc, ib *inbox, schedPort *nose.Port)) {
	m.ResetPools()
	net0 := m.Net.Stats()
	hits0, misses0 := m.PoolStats()
	scanned0, delivered0 := m.SharedScanStats()
	m.launchQuery(res, body)
	m.Sim.Run()
	net1 := m.Net.Stats()
	res.DataPackets = net1.DataPackets - net0.DataPackets
	res.LocalMsgs = net1.LocalMsgs - net0.LocalMsgs
	res.CtlMsgs = net1.CtlMsgs - net0.CtlMsgs
	hits1, misses1 := m.PoolStats()
	res.PoolHits = hits1 - hits0
	res.PoolMisses = misses1 - misses0
	scanned1, delivered1 := m.SharedScanStats()
	res.SharedPagesSaved = (delivered1 - delivered0) - (scanned1 - scanned0)
	m.diagnose(res)
}

// storeSet is one attempt's result-storage operators: the (attempt-tagged)
// operator id and the destination ports.
type storeSet struct {
	op    string
	ports []*nose.Port
}

// setupStores creates the result relation (unless toHost) and initiates one
// store operator per surviving disk node, or a host collector. It returns
// *ErrUnavailable when no disk node survives to hold the result.
func (m *Machine) setupStores(p *sim.Proc, ib *inbox, schedPort *nose.Port, res *Result, resultName string, toHost bool, width int) (*storeSet, error) {
	ss := &storeSet{op: "store" + ib.tag()}
	if toHost {
		colPort := m.Host.NewPort(ss.op)
		spawnCollector(m, p, ss.op, m.Host, colPort, schedPort, nil)
		ss.ports = []*nose.Port{colPort}
		return ss, nil
	}
	resRel, err := m.newResultRelation(resultName, width)
	if err != nil {
		return nil, err
	}
	res.ResultName = resRel.Name
	for i, frag := range resRel.Frags {
		pt := frag.Node.NewPort(fmt.Sprintf("%s%d", ss.op, i))
		m.initOp(p, frag.Node)
		spawnStore(m, p, ss.op, i, frag, pt, schedPort)
		ss.ports = append(ss.ports, pt)
	}
	return ss, nil
}

// close sends the final EOS count to every store and awaits their reports,
// returning the total tuples stored.
func (ss *storeSet) close(m *Machine, p *sim.Proc, ib *inbox, expectEOS int) (int, error) {
	for _, pt := range ss.ports {
		nose.SendCtl(p, m.Sched, pt, storeClose{expectEOS: expectEOS})
	}
	sds, err := ib.waitStores(ss.op, len(ss.ports))
	if err != nil {
		return 0, err
	}
	stored := 0
	for _, sd := range sds {
		stored += sd.stored
	}
	return stored, nil
}

// abortAttempt tears down a failed query attempt: surviving operators are
// told to abort, their acknowledgements (or port closures — a crashed
// operator cannot acknowledge) are awaited, and the partial result relation
// is dropped, the paper's §4 cheap recovery path for "retrieve into". The
// next attempt then replans against backup fragments under a fresh tag.
func (m *Machine) abortAttempt(p *sim.Proc, ib *inbox, res *Result, stages []*stage, ss *storeSet) {
	p.Emit(trace.Event{
		At: int64(p.Now()), Kind: trace.KindFailover, Class: "abort",
		Query: res.Query, N: ib.ft.attempt,
	})
	for _, st := range stages {
		if st == nil {
			continue
		}
		for _, pt := range st.ports {
			if !pt.Closed() {
				nose.SendCtl(p, m.Sched, pt, joinCtl{kind: ctlAbort})
			}
		}
	}
	for _, pt := range ss.ports {
		if !pt.Closed() {
			nose.SendCtl(p, m.Sched, pt, storeAbort{})
		}
	}
	for _, st := range stages {
		if st != nil {
			ib.waitAborts(st.opID, st.ports)
		}
	}
	ib.waitAborts(ss.op, ss.ports)
	// Straggling completion reports from the dead attempt are keyed under
	// its tag and can never match a later wait; free them.
	ib.dones = map[string][]doneMsg{}
	ib.builts = map[string][]builtMsg{}
	ib.probeds = map[string][]probedMsg{}
	ib.stores = map[string][]storeDone{}
	if res.ResultName != "" {
		m.Drop(res.ResultName)
		res.ResultName = ""
	}
	ib.ft.attempt++
}

// RunSelect executes a selection query (§5).
func (m *Machine) RunSelect(q SelectQuery) Result {
	var res Result
	m.runQuery(&res, m.selectBody(q, &res))
	return res
}

// selectBody builds the scheduler program for a selection query: an attempt
// loop that re-dispatches against backup fragments after a mid-query site
// failure, backing off between attempts. A terminal error (no readable copy,
// retries exhausted) lands in res.Err and ends the loop.
func (m *Machine) selectBody(q SelectQuery, res *Result) func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
	scan := m.resolveScan(q.Scan)
	width := scan.Rel.width(m)
	if len(q.Project) > 0 {
		width = 4 * len(q.Project)
	}
	return func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
		for !m.trySelect(p, ib, schedPort, q, res, scan, width) {
			m.retryBackoff(p, ib, res)
		}
	}
}

// trySelect runs one attempt of a selection; false means the attempt hit a
// site failure, was aborted, and should be retried. Terminal failures
// (typed unavailability) set res.Err and return true — the query is done.
func (m *Machine) trySelect(p *sim.Proc, ib *inbox, schedPort *nose.Port, q SelectQuery, res *Result, scan ScanSpec, width int) bool {
	if err := ib.beginAttempt(m, res); err != nil {
		res.Err = err
		return true
	}
	// Plan the scan sites before committing resources: a directory with no
	// readable copy fails the attempt terminally with nothing to tear down.
	frags, degraded, err := m.scanSites(scan)
	if err != nil {
		res.Err = err
		return true
	}
	res.Degraded = degraded
	ss, err := m.setupStores(p, ib, schedPort, res, q.ResultName, q.ToHost, width)
	if err != nil {
		res.Err = err
		return true
	}
	selOp := "select" + ib.tag()
	for si, frag := range frags {
		m.initOp(p, frag.Node)
		spawnSelect(m, p, selOp, si, frag, scan.Pred, scan.Path, func() selectOutput {
			return selectOutput{
				stream: streamStore, ports: ss.ports, route: RRRoute(len(ss.ports)),
				width: width, project: q.Project,
			}
		}, schedPort)
	}
	err = func() error {
		dones, err := ib.waitDones(selOp, len(frags))
		if err != nil {
			return err
		}
		produced := 0
		for _, d := range dones {
			produced += d.produced
		}
		stored, err := ss.close(m, p, ib, len(frags))
		if err != nil {
			return err
		}
		if q.ToHost {
			res.Tuples = produced
		} else {
			res.Tuples = stored
		}
		return nil
	}()
	if err == nil {
		return true
	}
	m.abortAttempt(p, ib, res, nil, ss)
	return false
}

// stage tracks one hash join's sites and overflow state at the scheduler.
type stage struct {
	opID      string
	nodes     []*nose.Node
	ports     []*nose.Port
	buildAttr rel.Attr
	probeAttr rel.Attr
	// pending[level][site] = spool files awaiting an overflow round.
	pending  map[int]map[int]spoolInfo
	phases   int
	perSite  []int
	produced int
}

func (m *Machine) newStage(opID string, nodes []*nose.Node, buildAttr, probeAttr rel.Attr) *stage {
	st := &stage{
		opID:      opID,
		nodes:     nodes,
		buildAttr: buildAttr,
		probeAttr: probeAttr,
		pending:   map[int]map[int]spoolInfo{},
		perSite:   make([]int, len(nodes)),
	}
	for i, nd := range nodes {
		st.ports = append(st.ports, nd.NewPort(fmt.Sprintf("%s@%d", opID, i)))
	}
	return st
}

// absorb records a probing phase's reports: result counts, overflow
// telemetry, and newly created spool partitions.
func (st *stage) absorb(reports []probedMsg) {
	for _, r := range reports {
		st.produced += r.produced
		st.perSite[r.site] = r.overflowEvents
		for _, si := range r.newSpools {
			lvl := st.pending[si.level]
			if lvl == nil {
				lvl = map[int]spoolInfo{}
				st.pending[si.level] = lvl
			}
			lvl[r.site] = si
		}
	}
	st.phases++
}

// runRounds drains the stage's overflow partitions: for each pending level,
// every site's build spool is redistributed with a fresh hash function and
// rebuilt, then the probe spools are redistributed and probed (§6.2.2).
func (m *Machine) runRounds(p *sim.Proc, ib *inbox, schedPort *nose.Port, st *stage) error {
	nJ := len(st.nodes)
	for len(st.pending) > 0 {
		levels := make([]int, 0, len(st.pending))
		for l := range st.pending {
			levels = append(levels, l)
		}
		sort.Ints(levels)
		l := levels[0]
		infos := st.pending[l]
		delete(st.pending, l)

		// Round build: redistribute build spools under a new seed.
		for si := range st.nodes {
			nose.SendCtl(p, m.Sched, st.ports[si], joinCtl{kind: ctlRoundBuild, level: l})
		}
		for si, nd := range st.nodes {
			info := infos[si]
			// Spool files are rescanned by select-like operators at
			// the disk site holding them (diskless processors spooled
			// remotely), so Remote rounds pipeline across both CPU
			// sets while Local rounds stack scan and join work on the
			// same processors — the §6.2.2 crossover.
			reader := nd
			if info.owner != nil {
				reader = info.owner
			}
			m.initOp(p, reader)
			spawnSpoolScan(m, p, st.opID+".ovfbuild", si, info.build, info.owner, reader, func() selectOutput {
				return selectOutput{stream: roundStream(l, false), ports: st.ports, route: HashRoute(st.buildAttr, roundSeed(l), nJ)}
			}, schedPort)
		}
		if _, err := ib.waitDones(st.opID+".ovfbuild", nJ); err != nil {
			return err
		}
		if _, err := ib.waitBuilts(st.opID, nJ); err != nil {
			return err
		}

		// Round probe: redistribute probe spools likewise.
		for si := range st.nodes {
			nose.SendCtl(p, m.Sched, st.ports[si], joinCtl{kind: ctlRoundProbe, level: l})
		}
		for si, nd := range st.nodes {
			info := infos[si]
			reader := nd
			if info.owner != nil {
				reader = info.owner
			}
			m.initOp(p, reader)
			spawnSpoolScan(m, p, st.opID+".ovfprobe", si, info.probe, info.owner, reader, func() selectOutput {
				return selectOutput{stream: roundStream(l, true), ports: st.ports, route: HashRoute(st.probeAttr, roundSeed(l), nJ)}
			}, schedPort)
		}
		if _, err := ib.waitDones(st.opID+".ovfprobe", nJ); err != nil {
			return err
		}
		probeds, err := ib.waitProbeds(st.opID, nJ)
		if err != nil {
			return err
		}
		st.absorb(probeds)
	}
	return nil
}

// finish releases a stage's join operators.
func (m *Machine) finishStage(p *sim.Proc, st *stage) {
	for _, pt := range st.ports {
		nose.SendCtl(p, m.Sched, pt, joinCtl{kind: ctlFinish})
	}
}

// RunJoin executes a one- or two-stage hash join query (§6).
func (m *Machine) RunJoin(q JoinQuery) Result {
	var res Result
	m.runQuery(&res, m.joinBody(q, &res))
	return res
}

// joinBody builds the scheduler program for a join query: an attempt loop
// that replans join sites and scan fragments after a mid-query site failure.
func (m *Machine) joinBody(q JoinQuery, res *Result) func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
	build := m.resolveScan(q.Build)
	probe := m.resolveScan(q.Probe)
	var build2 ScanSpec
	if q.Build2 != nil {
		build2 = m.resolveScan(*q.Build2)
	}
	memPer := q.MemPerJoinBytes
	if memPer <= 0 {
		memPer = m.Prm.Memory.JoinTableBytes
	}
	return func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
		for !m.tryJoin(p, ib, schedPort, q, res, build, probe, build2, memPer) {
			m.retryBackoff(p, ib, res)
		}
	}
}

// tryJoin runs one attempt of a join query; false means the attempt hit a
// site failure, was aborted, and should be retried against the survivors.
// Terminal failures (typed unavailability) set res.Err and return true.
func (m *Machine) tryJoin(p *sim.Proc, ib *inbox, schedPort *nose.Port, q JoinQuery, res *Result, build, probe, build2 ScanSpec, memPer int) bool {
	if err := ib.beginAttempt(m, res); err != nil {
		res.Err = err
		return true
	}
	tag := ib.tag()
	// Plan everything that consults only directory state — join sites and
	// every scan's fragment list — before committing resources, so a plan
	// that cannot be satisfied fails terminally with nothing to tear down.
	joinNodes, err := m.joinNodesErr(q.Mode)
	if err != nil {
		res.Err = err
		return true
	}
	nJ := len(joinNodes)
	var b2frags []*Fragment
	degraded := false
	if q.Build2 != nil {
		var bak bool
		b2frags, bak, err = m.scanSites(build2)
		if err != nil {
			res.Err = err
			return true
		}
		degraded = degraded || bak
	}
	bfrags, bakB, err := m.scanSites(build)
	if err != nil {
		res.Err = err
		return true
	}
	pfrags, bakP, err := m.scanSites(probe)
	if err != nil {
		res.Err = err
		return true
	}
	res.Degraded = degraded || bakB || bakP
	// Hybrid hash join plans its partition count from the optimizer's
	// estimate of the per-site build size.
	hybridParts := 0
	if q.Algorithm == HybridHash {
		estBytes := int(float64(q.Build.Rel.N) * q.Build.Pred.Selectivity(q.Build.Rel.N) * float64(m.Prm.TupleBytes) / float64(nJ))
		if estBytes > memPer {
			hybridParts = (estBytes-1)/memPer + 1 // spilled partitions
		}
	}

	ss, err := m.setupStores(p, ib, schedPort, res, q.ResultName, false, 0)
	if err != nil {
		res.Err = err
		return true
	}
	var st1, st2 *stage
	err = func() error {
		// Optional second stage, built first so stage one can stream
		// into it.
		if q.Build2 != nil {
			st2 = m.newStage("join2"+tag, joinNodes, q.Build2Attr, q.Probe2Attr)
			for si, nd := range joinNodes {
				m.initOp(p, nd)
				spawnJoin(joinSpec{
					m: m, from: p, opID: st2.opID, site: si, node: nd, port: st2.ports[si], sched: schedPort,
					buildAttr: q.Build2Attr, probeAttr: q.Probe2Attr,
					nSites: nJ, nBuild: len(b2frags), nProbe: -1, memBytes: memPer,
					outStream: streamStore, outPorts: ss.ports,
					mkOutRoute: func() RouteFn { return RRRoute(len(ss.ports)) },
				})
			}
			for si, frag := range b2frags {
				m.initOp(p, frag.Node)
				spawnSelect(m, p, "sel-build2"+tag, si, frag, build2.Pred, build2.Path, func() selectOutput {
					return selectOutput{stream: streamBuild, ports: st2.ports, route: HashRoute(q.Build2Attr, LoadSeed, nJ)}
				}, schedPort)
			}
			if _, err := ib.waitDones("sel-build2"+tag, len(b2frags)); err != nil {
				return err
			}
			if _, err := ib.waitBuilts(st2.opID, nJ); err != nil {
				return err
			}
		}

		// Stage one join operators.
		st1 = m.newStage("join1"+tag, joinNodes, q.BuildAttr, q.ProbeAttr)
		outPorts := ss.ports
		outStream := streamStore
		mkOutRoute := func() RouteFn { return RRRoute(len(ss.ports)) }
		if st2 != nil {
			outPorts = st2.ports
			outStream = streamProbe
			mkOutRoute = func() RouteFn { return HashRoute(q.Probe2Attr, LoadSeed, nJ) }
		}
		for si, nd := range joinNodes {
			m.initOp(p, nd)
			spawnJoin(joinSpec{
				m: m, from: p, opID: st1.opID, site: si, node: nd, port: st1.ports[si], sched: schedPort,
				buildAttr: q.BuildAttr, probeAttr: q.ProbeAttr,
				nSites: nJ, nBuild: len(bfrags), nProbe: len(pfrags), memBytes: memPer,
				outStream: outStream, outPorts: outPorts, mkOutRoute: mkOutRoute,
				makeFilter: q.UseBitFilter, filterBits: 1 << 16,
				algo: q.Algorithm, hybridParts: hybridParts,
			})
		}

		// Build selections.
		for si, frag := range bfrags {
			m.initOp(p, frag.Node)
			spawnSelect(m, p, "sel-build"+tag, si, frag, build.Pred, build.Path, func() selectOutput {
				return selectOutput{stream: streamBuild, ports: st1.ports, route: HashRoute(q.BuildAttr, LoadSeed, nJ)}
			}, schedPort)
		}
		if _, err := ib.waitDones("sel-build"+tag, len(bfrags)); err != nil {
			return err
		}
		builts, err := ib.waitBuilts(st1.opID, nJ)
		if err != nil {
			return err
		}

		// Probe selections, with Babb filters if every site produced one.
		filters := make([]*BitFilter, nJ)
		haveFilters := q.UseBitFilter
		for _, b := range builts {
			if b.filter == nil {
				haveFilters = false
			} else {
				filters[b.site] = b.filter
			}
		}
		for si, frag := range pfrags {
			m.initOp(p, frag.Node)
			fr := frag
			spawnSelect(m, p, "sel-probe"+tag, si, fr, probe.Pred, probe.Path, func() selectOutput {
				out := selectOutput{stream: streamProbe, ports: st1.ports, route: HashRoute(q.ProbeAttr, LoadSeed, nJ)}
				if haveFilters {
					out.filters = filters
					out.filterAttr = q.ProbeAttr
				}
				return out
			}, schedPort)
		}
		if _, err := ib.waitDones("sel-probe"+tag, len(pfrags)); err != nil {
			return err
		}
		probeds, err := ib.waitProbeds(st1.opID, nJ)
		if err != nil {
			return err
		}
		st1.absorb(probeds)

		// Stage-one overflow rounds, then release its operators.
		if err := m.runRounds(p, ib, schedPort, st1); err != nil {
			return err
		}
		m.finishStage(p, st1)

		finalStage := st1
		if st2 != nil {
			for _, pt := range st2.ports {
				nose.SendCtl(p, m.Sched, pt, joinCtl{kind: ctlProbeClose, expectEOS: nJ * st1.phases})
			}
			probeds2, err := ib.waitProbeds(st2.opID, nJ)
			if err != nil {
				return err
			}
			st2.absorb(probeds2)
			if err := m.runRounds(p, ib, schedPort, st2); err != nil {
				return err
			}
			m.finishStage(p, st2)
			finalStage = st2
		}

		stored, err := ss.close(m, p, ib, nJ*finalStage.phases)
		if err != nil {
			return err
		}
		res.Tuples = stored
		res.OverflowPerSite = append(st1.perSite[:0:0], st1.perSite...)
		if st2 != nil {
			for i, v := range st2.perSite {
				res.OverflowPerSite[i] += v
			}
		}
		res.Overflows = 0
		for _, v := range res.OverflowPerSite {
			if v > res.Overflows {
				res.Overflows = v
			}
		}
		return nil
	}()
	if err == nil {
		return true
	}
	m.abortAttempt(p, ib, res, []*stage{st1, st2}, ss)
	return false
}

// ConcurrentQuery is one member of a multiuser workload: exactly one of the
// fields is set.
type ConcurrentQuery struct {
	Select *SelectQuery
	Join   *JoinQuery
}

// RunConcurrent starts every query at the same simulated instant — the
// multiuser scenario §6.2.1 defers to "future multiuser benchmarks" — and
// returns each query's response time. Each query gets its own scheduler
// process, as Gamma's dispatcher would assign.
func (m *Machine) RunConcurrent(qs []ConcurrentQuery) []Result {
	m.ResetPools()
	results := make([]Result, len(qs))
	for i, q := range qs {
		switch {
		case q.Select != nil:
			m.launchQuery(&results[i], m.selectBody(*q.Select, &results[i]))
		case q.Join != nil:
			m.launchQuery(&results[i], m.joinBody(*q.Join, &results[i]))
		default:
			panic("core: empty ConcurrentQuery")
		}
	}
	m.Sim.Run()
	for i := range results {
		m.diagnose(&results[i])
	}
	return results
}
