package core

import (
	"fmt"

	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
	"gamma/internal/wiss"
)

// AccessPath selects how a selection operator reads its fragment.
type AccessPath int

const (
	// PathAuto lets the optimizer choose (see choosePath).
	PathAuto AccessPath = iota
	// PathHeap is a sequential file (segment) scan.
	PathHeap
	// PathClustered scans only the key range through a clustered B-tree.
	PathClustered
	// PathNonClustered probes a dense secondary index and fetches each
	// qualifying tuple's data page individually.
	PathNonClustered
)

func (a AccessPath) String() string {
	switch a {
	case PathHeap:
		return "heap"
	case PathClustered:
		return "clustered-index"
	case PathNonClustered:
		return "non-clustered-index"
	default:
		return "auto"
	}
}

// ScanSpec describes one side of a query: which relation, what predicate,
// and which access path.
type ScanSpec struct {
	Rel  *Relation
	Pred rel.Pred
	Path AccessPath
}

// selectOutput tells a producer operator where its output stream goes.
type selectOutput struct {
	stream     streamID
	ports      []*nose.Port
	route      RouteFn
	filters    []*BitFilter
	filterAttr rel.Attr
	// width is the logical tuple width of the stream (0 = full tuples);
	// project lists the attributes kept when the stream is projected.
	width   int
	project []rel.Attr
}

// doneMsg is the control message an operator sends its scheduler on
// completion (§2: the third of the three control messages).
type doneMsg struct {
	op       string
	site     int
	produced int
}

// spawnSelect starts a selection operator process on the fragment's node.
// routeMaker is called inside the operator to build its split table (so
// round-robin counters are per-operator, as in Gamma).
func spawnSelect(m *Machine, from *sim.Proc, opID string, site int, frag *Fragment, pred rel.Pred, path AccessPath, mkOut func() selectOutput, sched *nose.Port) {
	m.spawnOn(from, frag.Node, fmt.Sprintf("%s@%d", opID, frag.Node.ID), func(p *sim.Proc) {
		defer reportDriveLoss(m, p, frag.Node, opID, sched)
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpStart, Op: opID, Node: frag.Node.ID, Site: site, Class: path.String()})
		out := mkOut()
		split := newSplitTable(frag.Node, m.Prm, out.stream, out.ports, out.route)
		if out.filters != nil {
			split.setFilters(out.filterAttr, out.filters)
		}
		split.setWidth(out.width)
		split.project = out.project
		n := 0
		switch path {
		case PathHeap:
			if m.scans != nil {
				n = m.scans.scanShared(p, frag, pred, split, opID, site)
			} else {
				n = heapSelect(p, m, frag, pred, split)
			}
		case PathClustered:
			n = clusteredSelect(p, m, frag, pred, split)
		case PathNonClustered:
			n = nonClusteredSelect(p, m, frag, pred, split)
		default:
			panic("core: unresolved access path " + path.String())
		}
		split.close(p)
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpDone, Op: opID, Node: frag.Node.ID, Site: site, N: n})
		nose.SendCtl(p, frag.Node, sched, doneMsg{op: opID, site: site, produced: n})
	})
}

// forEachPage streams every page of f through fn sequentially with one page
// of read-ahead — the single page-iteration loop behind heap selections and
// spool scans.
func forEachPage(p *sim.Proc, f *wiss.File, fn func(pg *wiss.Page)) {
	sc := f.NewScanner()
	for pg := sc.NextPage(p); pg != nil; pg = sc.NextPage(p) {
		fn(pg)
	}
}

// selectPage applies one query's predicate pipeline to one page: it charges
// the per-tuple scan CPU and routes live, qualifying tuples through the
// split table, returning the match count. Both private heap selections and
// shared-scan riders consume pages through this, so per-query instruction
// costs are charged identically either way.
func selectPage(p *sim.Proc, m *Machine, frag *Fragment, pred rel.Pred, split *splitTable, pg *wiss.Page) int {
	frag.Node.UseCPU(p, m.Prm.Engine.InstrPerTupleScan*len(pg.Tuples))
	n := 0
	for s, t := range pg.Tuples {
		if pg.Live(s) && pred.Match(t) {
			n++
			split.send(p, t)
		}
	}
	return n
}

// heapSelect reads every page of the fragment sequentially (with one page of
// read-ahead) and applies the compiled predicate to every tuple.
func heapSelect(p *sim.Proc, m *Machine, frag *Fragment, pred rel.Pred, split *splitTable) int {
	n := 0
	forEachPage(p, frag.File, func(pg *wiss.Page) {
		n += selectPage(p, m, frag, pred, split, pg)
	})
	return n
}

// clusteredSelect descends the clustered B-tree to the first qualifying page
// and scans forward only while tuples can still qualify (§5.1: "only that
// portion of the relation corresponding to the range of the query is
// scanned").
func clusteredSelect(p *sim.Proc, m *Machine, frag *Fragment, pred rel.Pred, split *splitTable) int {
	bt, ok := frag.Indexes[pred.Attr]
	if !ok || bt.Kind != wiss.Clustered {
		panic("core: clustered path without clustered index on " + pred.Attr.String())
	}
	eng := m.Prm.Engine
	start := bt.StartPage(p, pred.Lo)
	earlyStop := !frag.File.Unordered
	if frag.File.Unordered {
		// Overflow inserts appended pages out of key order; the whole
		// file must be visited.
		start = 0
	}
	n := 0
	sc := frag.File.NewScannerAt(start)
	for pg := sc.NextPage(p); pg != nil; pg = sc.NextPage(p) {
		frag.Node.UseCPU(p, eng.InstrPerTupleScan*len(pg.Tuples))
		beyond := true // every live tuple on the page is past the range
		for s, t := range pg.Tuples {
			if !pg.Live(s) {
				continue
			}
			k := t.Get(pred.Attr)
			if k <= pred.Hi {
				beyond = false
			}
			if k >= pred.Lo && k <= pred.Hi {
				n++
				split.send(p, t)
			}
		}
		if earlyStop && beyond {
			break
		}
	}
	return n
}

// nonClusteredSelect walks the dense index's leaf chain over the key range
// and fetches each qualifying tuple's data page individually — in the worst
// case one random I/O per tuple (§5.1).
func nonClusteredSelect(p *sim.Proc, m *Machine, frag *Fragment, pred rel.Pred, split *splitTable) int {
	bt, ok := frag.Indexes[pred.Attr]
	if !ok || bt.Kind != wiss.NonClustered {
		panic("core: non-clustered path without index on " + pred.Attr.String())
	}
	eng := m.Prm.Engine
	n := 0
	bt.RangeRIDs(p, pred.Lo, pred.Hi, func(r wiss.RID) {
		t := frag.File.FetchRID(p, r)
		frag.Node.UseCPU(p, eng.InstrPerTupleScan)
		if !frag.File.Page(int(r.Page)).Live(int(r.Slot)) {
			return // stale entry for a tombstoned slot
		}
		n++
		split.send(p, t)
	})
	return n
}

// spawnSpoolScan starts an operator on `reader` that streams a spool file
// (resident on `owner`, possibly a different node) through a split table —
// the redistribution step of join-overflow resolution (§6.2.2).
func spawnSpoolScan(m *Machine, from *sim.Proc, opID string, site int, file *wiss.File, owner, reader *nose.Node, mkOut func() selectOutput, sched *nose.Port) {
	m.spawnOn(from, reader, fmt.Sprintf("%s@%d", opID, reader.ID), func(p *sim.Proc) {
		defer reportDriveLoss(m, p, reader, opID, sched)
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpStart, Op: opID, Node: reader.ID, Site: site, Class: "spool-scan"})
		out := mkOut()
		split := newSplitTable(reader, m.Prm, out.stream, out.ports, out.route)
		n := 0
		if file != nil {
			eng := m.Prm.Engine
			forEachPage(p, file, func(pg *wiss.Page) {
				m.Net.TransferBulk(p, owner, reader, m.Prm.PageBytes)
				reader.UseCPU(p, eng.InstrPerTupleScan*len(pg.Tuples))
				for _, t := range pg.Tuples {
					n++
					split.send(p, t)
				}
			})
		}
		split.close(p)
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpDone, Op: opID, Node: reader.ID, Site: site, N: n})
		nose.SendCtl(p, reader, sched, doneMsg{op: opID, site: site, produced: n})
	})
}
