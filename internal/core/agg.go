package core

import (
	"fmt"
	"slices"

	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

// AggFn is an aggregate function. §1 of the paper ran aggregate experiments
// but deferred the numbers to [DEWI88]; the operators are implemented here
// in full and benchmarked separately.
type AggFn int

const (
	Count AggFn = iota
	Sum
	Min
	Max
	Avg
)

func (f AggFn) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "avg"
	}
}

// AggQuery computes fn(attr) over the qualifying tuples of a relation,
// optionally grouped. Scalar aggregates are computed as local partials at
// each scan site and combined on one processor; grouped aggregates hash-
// partition tuples on the grouping attribute across the aggregate
// processors, each of which folds its groups and emits one result tuple per
// group.
type AggQuery struct {
	Scan    ScanSpec
	Fn      AggFn
	Attr    rel.Attr
	GroupBy *rel.Attr
	Mode    JoinMode // which processors run the aggregate operators
}

// AggResult is the outcome of an aggregate query.
type AggResult struct {
	Elapsed sim.Dur
	// Groups maps group value -> aggregate value; scalar queries use the
	// single key 0.
	Groups map[int32]int64
	Tuples int // qualifying input tuples
}

// aggState folds values.
type aggState struct {
	count int64
	sum   int64
	min   int64
	max   int64
}

func (a *aggState) add(v int64) {
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.count++
	a.sum += v
}

func (a *aggState) merge(b *aggState) {
	if b.count == 0 {
		return
	}
	if a.count == 0 {
		*a = *b
		return
	}
	a.count += b.count
	a.sum += b.sum
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

func (a *aggState) value(fn AggFn) int64 {
	switch fn {
	case Count:
		return a.count
	case Sum:
		return a.sum
	case Min:
		return a.min
	case Max:
		return a.max
	default:
		if a.count == 0 {
			return 0
		}
		return a.sum / a.count
	}
}

// aggPartial carries per-site partial aggregates to the combiner.
type aggPartial struct {
	site   int
	groups map[int32]*aggState
	seen   int
}

// aggDone reports the combiner's final result to the scheduler.
type aggDone struct {
	groups map[int32]int64
	seen   int
}

// RunAgg executes an aggregate query.
func (m *Machine) RunAgg(q AggQuery) AggResult {
	scan := m.resolveScan(q.Scan)
	aggNodes := m.JoinNodes(q.Mode)
	var out AggResult
	var res Result
	m.runQuery(&res, func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
		frags := m.mustScanSites(scan)
		if q.GroupBy == nil {
			m.runScalarAgg(p, ib, schedPort, q, scan, frags, aggNodes[0], &out)
		} else {
			m.runGroupedAgg(p, ib, schedPort, q, scan, frags, aggNodes, &out)
		}
	})
	out.Elapsed = res.Elapsed
	return out
}

// runScalarAgg: each scan site folds its fragment locally (aggregation is
// pushed below the split table) and sends one partial to the combiner.
func (m *Machine) runScalarAgg(p *sim.Proc, ib *inbox, schedPort *nose.Port, q AggQuery, scan ScanSpec, frags []*Fragment, combiner *nose.Node, out *AggResult) {
	// The combiner is a tiny operator: it receives one control message per
	// scan site and folds the partials.
	m.initOp(p, combiner)
	comboPort := combiner.NewPort("agg-combine")
	nSites := len(frags)
	m.spawnOn(p, combiner, fmt.Sprintf("agg-combine@%d", combiner.ID), func(cp *sim.Proc) {
		total := &aggState{}
		seen := 0
		for i := 0; i < nSites; i++ {
			msg := comboPort.Recv(cp)
			part := msg.Payload.(aggPartial)
			combiner.UseCPU(cp, m.Prm.Engine.InstrPerTupleAgg)
			total.merge(part.groups[0])
			seen += part.seen
		}
		nose.SendCtl(cp, combiner, schedPort, aggDone{groups: map[int32]int64{0: total.value(q.Fn)}, seen: seen})
	})
	for si, frag := range frags {
		m.initOp(p, frag.Node)
		fr, site := frag, si
		m.spawnOn(p, fr.Node, fmt.Sprintf("agg-scan@%d", fr.Node.ID), func(sp *sim.Proc) {
			st := &aggState{}
			seen := scanFold(sp, m, fr, scan, func(t rel.Tuple) { st.add(int64(t.Get(q.Attr))) })
			conn := fr.Node.Dial(comboPort)
			conn.Send(sp, nose.Data, aggPartial{site: site, groups: map[int32]*aggState{0: st}, seen: seen}, m.Prm.TupleBytes)
		})
	}
	done := ib.waitAgg()
	out.Groups = done.groups
	out.Tuples = done.seen
}

// runGroupedAgg: scan sites split qualifying tuples by hash of the grouping
// attribute across the aggregate processors; each processor folds its groups
// and reports them.
func (m *Machine) runGroupedAgg(p *sim.Proc, ib *inbox, schedPort *nose.Port, q AggQuery, scan ScanSpec, frags []*Fragment, aggNodes []*nose.Node, out *AggResult) {
	nA := len(aggNodes)
	ports := make([]*nose.Port, nA)
	for i, nd := range aggNodes {
		ports[i] = nd.NewPort(fmt.Sprintf("agg%d", i))
	}
	groupAttr := *q.GroupBy
	nSites := len(frags)
	for ai, nd := range aggNodes {
		m.initOp(p, nd)
		node, port := nd, ports[ai]
		m.spawnOn(p, nd, fmt.Sprintf("agg@%d", nd.ID), func(ap *sim.Proc) {
			groups := map[int32]*aggState{}
			seen := 0
			recvStream(ap, port, streamStore, nSites, func(ts []rel.Tuple) {
				node.UseCPU(ap, m.Prm.Engine.InstrPerTupleAgg*len(ts))
				for _, t := range ts {
					g := t.Get(groupAttr)
					st := groups[g]
					if st == nil {
						st = &aggState{}
						groups[g] = st
					}
					st.add(int64(t.Get(q.Attr)))
					seen++
				}
			})
			nose.SendCtl(ap, node, schedPort, aggPartial{groups: groups, seen: seen})
		})
	}
	for si, frag := range frags {
		m.initOp(p, frag.Node)
		spawnSelect(m, p, "agg-select", si, frag, scan.Pred, scan.Path, func() selectOutput {
			return selectOutput{stream: streamStore, ports: ports, route: HashRoute(groupAttr, LoadSeed, nA)}
		}, schedPort)
	}
	ib.mustDones("agg-select", nSites)
	out.Groups = map[int32]int64{}
	for i := 0; i < nA; i++ {
		part := ib.waitAggPartial()
		for g, st := range part.groups {
			out.Groups[g] = st.value(q.Fn)
		}
		out.Tuples += part.seen
	}
}

// sortedGroups returns group keys in order (reporting helper).
func (r AggResult) sortedGroups() []int32 {
	keys := make([]int32, 0, len(r.Groups))
	for k := range r.Groups {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// scanFold runs an access path over a fragment, invoking fold for every
// qualifying tuple, and returns the match count. It is the aggregate
// pushdown path: no split table, no network.
func scanFold(p *sim.Proc, m *Machine, frag *Fragment, scan ScanSpec, fold func(rel.Tuple)) int {
	sink := &foldSink{fold: fold}
	split := &splitTable{node: frag.Node, prm: m.Prm, route: func(t rel.Tuple) int { sink.fold(t); sink.n++; return -1 }}
	switch scan.Path {
	case PathHeap:
		heapSelect(p, m, frag, scan.Pred, split)
	case PathClustered:
		clusteredSelect(p, m, frag, scan.Pred, split)
	case PathNonClustered:
		nonClusteredSelect(p, m, frag, scan.Pred, split)
	default:
		panic("core: unresolved path in scanFold")
	}
	split.chargePending(p)
	return sink.n
}

type foldSink struct {
	fold func(rel.Tuple)
	n    int
}
