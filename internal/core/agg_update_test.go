package core

import (
	"testing"

	"gamma/internal/rel"
)

func TestScalarAggregates(t *testing.T) {
	m, r := newTestMachine(t, 4, 4, 1000)
	cases := []struct {
		fn   AggFn
		attr rel.Attr
		want int64
	}{
		{Count, rel.Unique1, 1000},
		{Min, rel.Unique1, 0},
		{Max, rel.Unique1, 999},
		{Sum, rel.Two, 500},
		{Avg, rel.FiftyPercent, 0}, // (0+1)/2 truncated
	}
	for _, c := range cases {
		res := m.RunAgg(AggQuery{
			Scan: ScanSpec{Rel: r, Pred: rel.True()},
			Fn:   c.fn, Attr: c.attr, Mode: Remote,
		})
		if got := res.Groups[0]; got != c.want {
			t.Errorf("%v(%v) = %d, want %d", c.fn, c.attr, got, c.want)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: zero elapsed", c.fn)
		}
	}
}

func TestScalarAggregateWithPredicate(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 1000)
	res := m.RunAgg(AggQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 99)},
		Fn:   Count, Attr: rel.Unique1, Mode: Local,
	})
	if res.Groups[0] != 100 {
		t.Errorf("count = %d, want 100", res.Groups[0])
	}
	if res.Tuples != 100 {
		t.Errorf("seen = %d", res.Tuples)
	}
}

func TestGroupedAggregate(t *testing.T) {
	m, r := newTestMachine(t, 4, 4, 1000)
	g := rel.Ten
	res := m.RunAgg(AggQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.True()},
		Fn:   Count, Attr: rel.Unique1, GroupBy: &g, Mode: Remote,
	})
	if len(res.Groups) != 10 {
		t.Fatalf("groups = %d, want 10", len(res.Groups))
	}
	for k, v := range res.Groups {
		if v != 100 {
			t.Errorf("group %d count = %d, want 100", k, v)
		}
	}
	// MIN of unique1 grouped by ten: group g has minimum g.
	res2 := m.RunAgg(AggQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.True()},
		Fn:   Min, Attr: rel.Unique1, GroupBy: &g, Mode: Remote,
	})
	for k, v := range res2.Groups {
		if v != int64(k) {
			t.Errorf("min(unique1) group %d = %d, want %d", k, v, k)
		}
	}
}

func TestAppendTuple(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		m, r := func() (*Machine, *Relation) {
			if indexed {
				m, r := newTestMachine(t, 4, 0, 1000)
				return m, r
			}
			m, _ := newTestMachine(t, 4, 0, 1000)
			r := m.Load(LoadSpec{Name: "plain", Strategy: Hashed, PartAttr: rel.Unique1},
				nil)
			return m, r
		}()
		var tp rel.Tuple
		tp.Set(rel.Unique1, 5000)
		tp.Set(rel.Unique2, 5000)
		before := r.Count()
		res := m.RunUpdate(UpdateQuery{Rel: r, Kind: AppendTuple, Tuple: tp})
		if res.Tuples != 1 {
			t.Fatalf("indexed=%v: changed = %d", indexed, res.Tuples)
		}
		if r.Count() != before+1 {
			t.Errorf("indexed=%v: count %d -> %d", indexed, before, r.Count())
		}
		if indexed {
			// The appended tuple must be findable through both indexes.
			sel := m.RunSelect(SelectQuery{
				Scan:   ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique2, 5000), Path: PathNonClustered},
				ToHost: true,
			})
			if sel.Tuples != 1 {
				t.Errorf("appended tuple not found via secondary index (%d)", sel.Tuples)
			}
		}
	}
}

func TestAppendWithIndexCostsMore(t *testing.T) {
	mPlain, _ := newTestMachine(t, 4, 0, 1000)
	plain := mPlain.Load(LoadSpec{Name: "plain", Strategy: Hashed, PartAttr: rel.Unique1}, nil)
	mIdx, idx := newTestMachine(t, 4, 0, 1000)
	var tp rel.Tuple
	tp.Set(rel.Unique1, 7777)
	tp.Set(rel.Unique2, 7777)
	a := mPlain.RunUpdate(UpdateQuery{Rel: plain, Kind: AppendTuple, Tuple: tp})
	b := mIdx.RunUpdate(UpdateQuery{Rel: idx, Kind: AppendTuple, Tuple: tp})
	if b.Elapsed <= a.Elapsed {
		t.Errorf("indexed append (%v) should cost more than plain append (%v) — Table 3 rows 1-2",
			b.Elapsed, a.Elapsed)
	}
}

func TestDeleteByKey(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 1000)
	res := m.RunUpdate(UpdateQuery{Rel: r, Kind: DeleteByKey, Key: 123})
	if res.Tuples != 1 {
		t.Fatalf("changed = %d", res.Tuples)
	}
	sel := m.RunSelect(SelectQuery{
		Scan:   ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, 123), Path: PathClustered},
		ToHost: true,
	})
	if sel.Tuples != 0 {
		t.Error("deleted tuple still visible")
	}
	if r.Count() != 999 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestModifyKeyRelocatesTuple(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 1000)
	res := m.RunUpdate(UpdateQuery{
		Rel: r, Kind: ModifyKeyAttr, Key: 200, Attr: rel.Unique1, NewValue: 5000,
	})
	if res.Tuples != 1 {
		t.Fatalf("changed = %d", res.Tuples)
	}
	if r.Count() != 1000 {
		t.Errorf("count = %d", r.Count())
	}
	old := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, 200), Path: PathClustered}, ToHost: true})
	if old.Tuples != 0 {
		t.Error("old key still present")
	}
	new := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, 5000), Path: PathClustered}, ToHost: true})
	if new.Tuples != 1 {
		t.Error("new key not found")
	}
}

func TestModifyNonIndexed(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 1000)
	res := m.RunUpdate(UpdateQuery{
		Rel: r, Kind: ModifyNonIndexed, Key: 42, Attr: rel.OddOnePercent, NewValue: 9999,
	})
	if res.Tuples != 1 {
		t.Fatalf("changed = %d", res.Tuples)
	}
	for _, tp := range r.AllTuples() {
		if tp.Get(rel.Unique1) == 42 && tp.Get(rel.OddOnePercent) != 9999 {
			t.Error("modification lost")
		}
	}
}

func TestModifyIndexedMaintainsIndex(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 1000)
	res := m.RunUpdate(UpdateQuery{
		Rel: r, Kind: ModifyIndexed, Key: 77, Attr: rel.Unique2, NewValue: 8888,
	})
	if res.Tuples != 1 {
		t.Fatalf("changed = %d", res.Tuples)
	}
	oldSel := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique2, 77), Path: PathNonClustered}, ToHost: true})
	if oldSel.Tuples != 0 {
		t.Error("old index entry still returns the tuple")
	}
	newSel := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique2, 8888), Path: PathNonClustered}, ToHost: true})
	if newSel.Tuples != 1 {
		t.Error("new index entry missing")
	}
}

func TestUpdateCostOrderingMatchesTable3(t *testing.T) {
	// Table 3 ordering for Gamma: modify-nonindexed < delete < append(idx)
	// < modify-key (relocation is the most expensive).
	m, r := newTestMachine(t, 8, 0, 10000)
	var tp rel.Tuple
	tp.Set(rel.Unique1, 50000)
	tp.Set(rel.Unique2, 50000)
	appendIdx := m.RunUpdate(UpdateQuery{Rel: r, Kind: AppendTuple, Tuple: tp})
	del := m.RunUpdate(UpdateQuery{Rel: r, Kind: DeleteByKey, Key: 11})
	modNon := m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyNonIndexed, Key: 22, Attr: rel.OddOnePercent, NewValue: 1})
	modKey := m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyKeyAttr, Key: 33, Attr: rel.Unique1, NewValue: 60000})
	if !(modNon.Elapsed < del.Elapsed && del.Elapsed <= appendIdx.Elapsed*2 && appendIdx.Elapsed < modKey.Elapsed) {
		t.Errorf("cost ordering off: modNon=%v del=%v appendIdx=%v modKey=%v",
			modNon.Elapsed, del.Elapsed, appendIdx.Elapsed, modKey.Elapsed)
	}
}
