package core

import (
	"sync"

	"gamma/internal/rel"
)

// tuplePool recycles the batch buffers that carry tuples inside network
// packets. A split table takes a buffer when it starts filling a packet and
// hands it off with the Send; the consumer returns it once the batch is
// processed. Every consumer copies tuple values out of the batch (tuples
// are plain value structs), so returned buffers hold no live references.
//
// Within one simulation the kernel's hand-off discipline serializes all
// access; the sync.Pool makes recycling safe across the independent sims
// the parallel bench runner drives concurrently. Pooling cannot perturb
// determinism: buffer identity is invisible to the simulation, and every
// slot is overwritten before it is read.
var tuplePool sync.Pool

// getTupleBuf returns an empty buffer, recycling a previous packet's buffer
// when one is available.
func getTupleBuf(capHint int) []rel.Tuple {
	if v := tuplePool.Get(); v != nil {
		return (*v.(*[]rel.Tuple))[:0]
	}
	return make([]rel.Tuple, 0, capHint)
}

// putTupleBuf returns a packet buffer to the pool. The caller must not
// touch the slice afterwards.
func putTupleBuf(buf []rel.Tuple) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	tuplePool.Put(&buf)
}
