package core

import (
	"gamma/internal/config"
	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
)

// streamID tags the packets of one dataflow phase so an operator port can
// carry multiple sequential streams (build, probe, overflow rounds).
type streamID int

const (
	streamBuild streamID = iota
	streamProbe
	streamStore
	// Overflow rounds use streamRound + level.
	streamRound
)

// packet is the payload of a Data message: a batch of tuples belonging to
// one stream.
type packet struct {
	stream streamID
	tuples []rel.Tuple
}

// eosPayload closes one producer's contribution to a stream.
type eosPayload struct {
	stream streamID
}

const eosBytes = 64 // an end-of-stream message is a small packet

// RouteFn maps a tuple to a destination index, or -1 to drop it.
type RouteFn func(t rel.Tuple) int

// HashRoute routes by hashing attr with the given seed — the same function
// used to decluster relations at load time when seed == LoadSeed, which is
// what makes Local joins on the partitioning attribute short-circuit.
func HashRoute(attr rel.Attr, seed uint64, n int) RouteFn {
	return func(t rel.Tuple) int {
		return int(rel.Hash64(t.Get(attr), seed) % uint64(n))
	}
}

// RRRoute routes round-robin, Gamma's default for result relations.
func RRRoute(n int) RouteFn {
	i := -1
	return func(rel.Tuple) int {
		i++
		return i % n
	}
}

// BitFilter is a Babb bit-vector filter (§2, [BABB79]): a fixed-size bitmap
// of hashed join-attribute values that a split table can consult to drop
// probe tuples with no possible match before they reach the network.
type BitFilter struct {
	bits []uint64
	seed uint64
}

// NewBitFilter creates a filter with the given number of bits (rounded up).
func NewBitFilter(nbits int, seed uint64) *BitFilter {
	if nbits < 64 {
		nbits = 64
	}
	return &BitFilter{bits: make([]uint64, (nbits+63)/64), seed: seed}
}

// Add inserts a value.
func (b *BitFilter) Add(v int32) {
	h := rel.Hash64(v, b.seed) % uint64(len(b.bits)*64)
	b.bits[h/64] |= 1 << (h % 64)
}

// MayContain reports whether v could have been added (no false negatives).
func (b *BitFilter) MayContain(v int32) bool {
	h := rel.Hash64(v, b.seed) % uint64(len(b.bits)*64)
	return b.bits[h/64]&(1<<(h%64)) != 0
}

// Bytes returns the wire size of the filter.
func (b *BitFilter) Bytes() int { return len(b.bits) * 8 }

// Merge ORs another filter into this one.
func (b *BitFilter) Merge(o *BitFilter) {
	for i := range b.bits {
		b.bits[i] |= o.bits[i]
	}
}

// splitTable demultiplexes an operator's output stream across destination
// ports (§2). Tuples are buffered per destination and sent as network
// packets; Close flushes partial packets and sends end-of-stream to every
// destination.
type splitTable struct {
	node   *nose.Node
	prm    *config.Params
	stream streamID
	ports  []*nose.Port
	conns  []*nose.Conn
	bufs   [][]rel.Tuple
	route  RouteFn
	// tupleBytes is the logical on-wire width of this stream's tuples
	// (projected streams are narrower than the 208-byte base tuples).
	tupleBytes int
	// filters, if non-nil, holds one bit-vector filter per destination;
	// tuples whose join attribute misses the destination's filter are
	// dropped before transmission.
	filters    []*BitFilter
	filterAttr rel.Attr
	// project, if non-nil, keeps only these attributes of each routed
	// tuple (the rest are zeroed) — applied after routing and filtering,
	// both of which may need dropped attributes.
	project []rel.Attr

	// pp caches perPacket() so the per-tuple send path does no division.
	pp int
	// cap is the flush threshold in tuples: Net.BatchPackets packets' worth
	// (capped at the flow-control window), so producers on fast-network
	// generations amortize per-message latency over a burst of wire packets.
	// BatchPackets=1 reproduces the 1988 one-packet-at-a-time exchange.
	cap int
	// since records, per destination, when its buffer went non-empty;
	// Net.FlushAfter bounds how long a partial batch may age before the
	// next send to that destination flushes it (0 = no time trigger).
	since []sim.Time

	sent    int
	dropped int
	// pendingInstr accumulates per-tuple CPU work, charged in batches at
	// packet boundaries to keep the event count proportional to packets,
	// not tuples.
	pendingInstr int
}

func newSplitTable(node *nose.Node, prm *config.Params, stream streamID, ports []*nose.Port, route RouteFn) *splitTable {
	st := &splitTable{node: node, prm: prm, stream: stream, ports: ports, route: route, tupleBytes: prm.TupleBytes}
	st.pp = st.perPacket()
	st.cap = st.pp * st.batchPackets()
	for _, pt := range ports {
		st.conns = append(st.conns, node.Dial(pt))
		st.bufs = append(st.bufs, nil)
	}
	st.since = make([]sim.Time, len(ports))
	return st
}

// batchPackets returns how many wire packets one exchange message may
// coalesce: Net.BatchPackets clamped to [1, Net.Window] (a message larger
// than the flow-control window could never acquire enough credits).
func (st *splitTable) batchPackets() int {
	b := st.prm.Net.BatchPackets
	if b < 1 {
		b = 1
	}
	if w := st.prm.Net.Window; w > 0 && b > w {
		b = w
	}
	return b
}

// setWidth narrows the stream's tuple width (projection).
func (st *splitTable) setWidth(bytes int) {
	if bytes > 0 {
		st.tupleBytes = bytes
		st.pp = st.perPacket()
		st.cap = st.pp * st.batchPackets()
	}
}

// perPacket returns how many tuples of this stream fit one network packet.
func (st *splitTable) perPacket() int {
	n := st.prm.Net.PacketBytes / st.tupleBytes
	if n < 1 {
		n = 1
	}
	return n
}

// setFilters installs Babb filters (one per destination).
func (st *splitTable) setFilters(attr rel.Attr, filters []*BitFilter) {
	st.filterAttr = attr
	st.filters = filters
}

// send routes one tuple, transmitting a packet when a buffer fills.
func (st *splitTable) send(p *sim.Proc, t rel.Tuple) {
	st.pendingInstr += st.prm.Engine.InstrPerTupleRoute
	d := st.route(t)
	if d < 0 {
		return
	}
	if st.filters != nil && st.filters[d] != nil && !st.filters[d].MayContain(t.Get(st.filterAttr)) {
		st.dropped++
		return
	}
	if st.project != nil {
		var pt rel.Tuple
		for _, a := range st.project {
			pt.Set(a, t.Get(a))
		}
		t = pt
	}
	if st.bufs[d] == nil {
		st.bufs[d] = getTupleBuf(st.cap)
		st.since[d] = p.Now()
	}
	st.bufs[d] = append(st.bufs[d], t)
	if len(st.bufs[d]) >= st.cap {
		st.flush(p, d)
	} else if fa := st.prm.Net.FlushAfter; fa > 0 && p.Now()-st.since[d] >= sim.Time(fa) {
		// Time-triggered flush, piggybacked on the send path: a partial
		// batch never ages more than FlushAfter beyond the next tuple
		// routed its way, bounding the latency cost of deep batching.
		st.flush(p, d)
	}
}

// chargePending flushes accumulated per-tuple CPU to the node's CPU.
func (st *splitTable) chargePending(p *sim.Proc) {
	if st.pendingInstr > 0 {
		st.node.UseCPU(p, st.pendingInstr)
		st.pendingInstr = 0
	}
}

func (st *splitTable) flush(p *sim.Proc, d int) {
	st.chargePending(p)
	buf := st.bufs[d]
	if len(buf) == 0 {
		return
	}
	st.bufs[d] = nil
	st.sent += len(buf)
	bytes := len(buf) * st.tupleBytes
	st.conns[d].Send(p, nose.Data, packet{stream: st.stream, tuples: buf}, bytes)
}

// close flushes all partial packets and sends end-of-stream to every
// destination (§2: closing the output streams sends end-of-stream messages
// to each destination process).
func (st *splitTable) close(p *sim.Proc) {
	st.chargePending(p)
	for d := range st.conns {
		st.flush(p, d)
	}
	for d := range st.conns {
		st.conns[d].Send(p, nose.EndOfStream, eosPayload{stream: st.stream}, eosBytes)
	}
}
