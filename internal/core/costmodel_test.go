package core

import (
	"testing"

	"gamma/internal/rel"
	"gamma/internal/sim"
)

// TestCostEstimateTracksSimulation: the optimizer's closed-form estimates
// must stay within a small factor of the simulated response times — close
// enough that the access-path decisions they drive are the right ones.
func TestCostEstimateTracksSimulation(t *testing.T) {
	m, r := newMachineWithRel(8, 0, 20000)
	// EstimateScan covers scan I/O and CPU; startup (host, scheduler
	// initiation) and result delivery are path-independent and estimated
	// separately here.
	prm := m.Prm
	startup := (prm.Engine.HostStartup +
		sim.Dur(8*prm.Engine.MsgsPerOperatorInit)*prm.Net.CtlMsg +
		6*prm.Net.CtlMsg).Seconds()
	cases := []struct {
		name string
		pred rel.Pred
		path AccessPath
	}{
		{"heap 3%", rel.Between(rel.Unique2, 0, 599), PathHeap},
		{"heap 10%", rel.Between(rel.Unique2, 0, 1999), PathHeap},
		{"clustered 1%", rel.Between(rel.Unique1, 0, 199), PathClustered},
		{"clustered 10%", rel.Between(rel.Unique1, 0, 1999), PathClustered},
		{"non-clustered 1%", rel.Between(rel.Unique2, 0, 199), PathNonClustered},
	}
	for _, c := range cases {
		// Result shipping to the single host collector serializes on the
		// host's NIC and CPU; estimate it per packet.
		matches := int(c.pred.Selectivity(r.N) * float64(r.N))
		packets := matches/prm.TuplesPerPacket() + 1
		shipping := (sim.Dur(packets) *
			(2*prm.CPU.Time(prm.Net.InstrPerPacket) + 2*prm.Net.NICTime(prm.Net.PacketBytes))).Seconds()
		est := m.EstimateScan(r, c.pred, c.path).Seconds() + startup + shipping
		got := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: c.pred, Path: c.path}, ToHost: true}).Elapsed.Seconds()
		ratio := got / est
		if ratio < 0.3 || ratio > 3.0 {
			t.Errorf("%s: simulated %.2fs vs estimated %.2fs (ratio %.2f)", c.name, got, est, ratio)
		}
	}
}

// TestCostModelOrdersPathsCorrectly: whatever the absolute error, the
// estimator must rank access paths the same way the simulator does.
func TestCostModelOrdersPathsCorrectly(t *testing.T) {
	m, r := newMachineWithRel(8, 0, 20000)
	for _, sel := range []float64{0.5, 1, 2, 5, 10, 20} {
		hi := int32(float64(r.N)*sel/100) - 1
		predNC := rel.Between(rel.Unique2, 0, hi)

		estHeap := m.EstimateScan(r, predNC, PathHeap)
		estNC := m.EstimateScan(r, predNC, PathNonClustered)
		simHeap := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: predNC, Path: PathHeap}, ToHost: true}).Elapsed
		simNC := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: predNC, Path: PathNonClustered}, ToHost: true}).Elapsed

		if (estHeap < estNC) != (simHeap < simNC) {
			t.Errorf("sel=%.1f%%: estimator ranks heap<idx=%v but simulator says %v (est %.2f/%.2f, sim %.2f/%.2f)",
				sel, estHeap < estNC, simHeap < simNC,
				estHeap.Seconds(), estNC.Seconds(), simHeap.Seconds(), simNC.Seconds())
		}
	}
}

// TestClusteredAlwaysChosenWhenApplicable: with a clustered index on the
// predicate attribute, the cost model must always pick it.
func TestClusteredAlwaysChosenWhenApplicable(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 10000)
	for _, sel := range []float64{0.1, 1, 10, 50, 100} {
		hi := int32(float64(r.N)*sel/100) - 1
		got := m.resolveScan(ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, hi), Path: PathAuto}).Path
		want := PathClustered
		if sel >= 100 {
			// A full scan through the index ties the heap scan; either
			// is acceptable, just ensure no non-clustered nonsense.
			if got == PathNonClustered {
				t.Errorf("sel=%.1f%%: picked non-clustered", sel)
			}
			continue
		}
		if got != want {
			t.Errorf("sel=%.1f%%: path = %v, want %v", sel, got, want)
		}
	}
}
