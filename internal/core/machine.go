// Package core implements the Gamma database machine (§2): a shared-nothing
// multiprocessor engine in which relations are horizontally partitioned
// across all disk drives, operators run as self-scheduling processes
// connected by split tables, and queries execute in dataflow fashion under
// the control of a scheduler process.
//
// Everything executes for real — real tuples, real B-trees, real hash
// tables — on the simulated hardware of internal/sim, internal/disk, and
// internal/nose, so results are exact and response times reflect the
// calibrated 1988 cost model.
package core

import (
	"fmt"
	"slices"
	"sort"

	"gamma/internal/config"
	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
	"gamma/internal/wiss"
)

// LoadSeed is the hash seed used when declustering relations at load time.
// Split tables reuse it for joins on the partitioning attribute (§6.2.1),
// which is what lets Local joins short-circuit; overflow resolution switches
// to different seeds (§6.2.2).
const LoadSeed uint64 = 1

// PartStrategy is one of Gamma's four tuple-declustering strategies (§2).
type PartStrategy int

const (
	// RoundRobin distributes tuples cyclically; the default for relations
	// created as the result of a query.
	RoundRobin PartStrategy = iota
	// Hashed applies a randomizing function to the key attribute.
	Hashed
	// RangeUser partitions by user-specified key ranges.
	RangeUser
	// RangeUniform partitions by system-computed ranges that distribute
	// tuples uniformly.
	RangeUniform
)

func (s PartStrategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case Hashed:
		return "hashed"
	case RangeUser:
		return "range(user)"
	default:
		return "range(uniform)"
	}
}

// Machine is one Gamma configuration: a host, a scheduling processor, n
// processors with disks, and m diskless processors on a shared token ring.
type Machine struct {
	Sim      *sim.Sim
	Prm      *config.Params
	Net      *nose.Network
	Host     *nose.Node
	Sched    *nose.Node
	Disk     []*nose.Node // processors with disk drives
	Diskless []*nose.Node // join/aggregate processors
	stores   map[int]*wiss.Store
	catalog  map[string]*Relation
	nextRes  int
	nextQID  int
	rec      *Recovery

	// Fault/failover state (see fault-tolerance methods in fault.go).
	mirrored   bool
	ftDetect   sim.Dur             // operator-silence detection timeout; 0 = failover off
	procs      map[int][]*sim.Proc // live operator processes per node
	siteEpochs map[int]int         // per-disk-site crash count (bumped by CrashDisk)
	healer     *Healer             // non-nil after EnableHealing (heal.go)

	// Trace is the structured event collector, non-nil after EnableTrace.
	Trace *trace.Collector

	// scans is the scan-sharing layer, non-nil after EnableSharedScans.
	scans *scanHub
}

// NewMachine builds a machine with nDisk disk processors and nDiskless
// diskless processors (§2's standard configuration is 8 + 8, plus the
// scheduling processor and the host).
func NewMachine(s *sim.Sim, prm *config.Params, nDisk, nDiskless int) *Machine {
	if nDisk < 1 {
		panic("core: need at least one disk processor")
	}
	m := &Machine{
		Sim:        s,
		Prm:        prm,
		Net:        nose.NewNetwork(s, prm.Net, prm.CPU),
		stores:     make(map[int]*wiss.Store),
		catalog:    make(map[string]*Relation),
		procs:      make(map[int][]*sim.Proc),
		siteEpochs: make(map[int]int),
	}
	m.Host = m.Net.AddNode(false, prm.Disk)
	m.Sched = m.Net.AddNode(false, prm.Disk)
	for i := 0; i < nDisk; i++ {
		nd := m.Net.AddNode(true, prm.Disk)
		m.Disk = append(m.Disk, nd)
		m.stores[nd.ID] = wiss.NewStore(nd, prm)
	}
	for i := 0; i < nDiskless; i++ {
		// Diskless processors are homed on their spool node's shard so
		// join-overflow spooling stays shard-local inside parallel windows.
		nd := m.Net.AddNodeOn(m.Disk[i%nDisk])
		m.Diskless = append(m.Diskless, nd)
	}
	return m
}

// EnableTrace installs a structured event collector on the machine's
// simulation and returns it. Every subsequent query emits the typed event
// stream (resource intervals, disk ops, packets, operator and query spans)
// into the collector, and each Result carries a bottleneck Verdict.
// Tracing changes no simulated behavior: events are recorded synchronously
// at the instants the simulation already passes through.
func (m *Machine) EnableTrace() *trace.Collector {
	if m.Trace == nil {
		m.Trace = trace.NewCollector()
		m.Sim.SetSink(m.Trace)
	}
	return m.Trace
}

// StoreOf returns the WiSS instance of a disk node (nil for diskless nodes).
func (m *Machine) StoreOf(nd *nose.Node) *wiss.Store { return m.stores[nd.ID] }

// Relation returns a catalogued relation by name.
func (m *Machine) Relation(name string) (*Relation, bool) {
	r, ok := m.catalog[name]
	return r, ok
}

// Relations lists catalogued relation names in sorted order.
func (m *Machine) Relations() []string {
	var names []string
	for n := range m.catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResetPools empties every buffer pool, so the next query runs cold —
// matching the paper's single-user measurement methodology.
func (m *Machine) ResetPools() {
	for _, st := range m.stores {
		st.Pool().Reset()
	}
}

// EnableSharedScans turns on the scan-sharing layer (SharedDB-style): while
// it is on, concurrent heap selections of the same fragment ride one
// circular cursor instead of each paying a private disk pass. Sharing is
// strictly opt-in — single-user experiments keep the paper's cold-scan
// methodology — and changes no query results, only I/O timing. Idempotent.
func (m *Machine) EnableSharedScans() {
	if m.scans == nil {
		m.scans = &scanHub{m: m, active: make(map[scanKey]*sharedScan)}
	}
}

// SharedScansEnabled reports whether the scan-sharing layer is on.
func (m *Machine) SharedScansEnabled() bool { return m.scans != nil }

// SharedScanStats returns the cumulative shared-scan page counters: pages
// physically read by shared cursors, and page deliveries fanned to riders.
// delivered - scanned is the number of page reads sharing saved. Both zero
// when sharing is off.
func (m *Machine) SharedScanStats() (scanned, delivered int64) {
	if m.scans == nil {
		return 0, 0
	}
	return m.scans.pagesScanned, m.scans.pagesDelivered
}

// PoolStats sums the cumulative buffer-pool hit/miss counters across every
// disk node's store (counters survive ResetPools; see BufferPool.Stats).
func (m *Machine) PoolStats() (hits, misses int64) {
	for _, nd := range m.Disk {
		h, ms := m.stores[nd.ID].Pool().Stats()
		hits += h
		misses += ms
	}
	return hits, misses
}

// COWClones sums the copy-on-write page-clone counters across every disk
// node's store: how many frozen (snapshot-shared) pages this machine has had
// to privatize. Zero on a machine whose workload never wrote a shared page.
func (m *Machine) COWClones() int64 {
	var total int64
	for _, nd := range m.Disk {
		total += m.stores[nd.ID].COWClones()
	}
	return total
}

// Relation is a horizontally partitioned relation.
type Relation struct {
	Name     string
	N        int
	Strategy PartStrategy
	PartAttr rel.Attr
	// Bounds holds, for range strategies, the inclusive upper bound of
	// each fragment's key range.
	Bounds []int32
	// Width is the logical tuple width in bytes; 0 means the full
	// 208-byte Wisconsin tuple. Projected result relations are narrower.
	Width int
	Frags []*Fragment
	// Backups, when the machine is mirrored, holds the chained-declustered
	// replica of each fragment: Backups[i] is a full copy of Frags[i]'s
	// data and indexes on the next disk node, so the loss of any single
	// disk node leaves every fragment readable. Nil otherwise.
	Backups []*Fragment
	m       *Machine
}

// width resolves the relation's logical tuple width.
func (r *Relation) width(m *Machine) int {
	if r.Width > 0 {
		return r.Width
	}
	return m.Prm.TupleBytes
}

// Fragment is the portion of a relation stored at one disk node.
type Fragment struct {
	Node    *nose.Node
	File    *wiss.File
	Indexes map[rel.Attr]*wiss.BTree
}

// Index returns the index on attr at fragment 0 (all fragments are indexed
// identically), if one exists.
func (r *Relation) Index(attr rel.Attr) (*wiss.BTree, bool) {
	if len(r.Frags) == 0 {
		return nil, false
	}
	bt, ok := r.Frags[0].Indexes[attr]
	return bt, ok
}

// ClusteredOn reports whether the relation has a clustered index on attr.
func (r *Relation) ClusteredOn(attr rel.Attr) bool {
	bt, ok := r.Index(attr)
	return ok && bt.Kind == wiss.Clustered
}

// LoadSpec describes how to create and index a relation.
type LoadSpec struct {
	Name     string
	Strategy PartStrategy
	PartAttr rel.Attr
	// Bounds: for RangeUser, the inclusive upper bound per disk node
	// (the final bound is implicitly +inf).
	Bounds []int32
	// ClusteredIndex, if set, sorts each fragment on the attribute and
	// builds a clustered B-tree (the paper clusters on unique1).
	ClusteredIndex *rel.Attr
	// NonClusteredIndexes lists dense secondary index attributes (the
	// paper indexes unique2).
	NonClusteredIndexes []rel.Attr
}

// Load creates a relation from tuples per the spec. Loading takes no
// simulated time: experiments begin with the database in place (§4).
func (m *Machine) Load(spec LoadSpec, tuples []rel.Tuple) *Relation {
	k := len(m.Disk)
	r := &Relation{
		Name:     spec.Name,
		N:        len(tuples),
		Strategy: spec.Strategy,
		PartAttr: spec.PartAttr,
		m:        m,
	}
	parts := make([][]rel.Tuple, k)
	for i := range parts {
		// Pre-size near the even split; skew costs at most a few regrows.
		parts[i] = make([]rel.Tuple, 0, len(tuples)/k+1)
	}
	switch spec.Strategy {
	case RoundRobin:
		for i, t := range tuples {
			parts[i%k] = append(parts[i%k], t)
		}
	case Hashed:
		for _, t := range tuples {
			j := int(rel.Hash64(t.Get(spec.PartAttr), LoadSeed) % uint64(k))
			parts[j] = append(parts[j], t)
		}
	case RangeUser:
		if len(spec.Bounds) != k-1 && len(spec.Bounds) != k {
			panic(fmt.Sprintf("core: RangeUser needs %d or %d bounds, got %d", k-1, k, len(spec.Bounds)))
		}
		r.Bounds = rangeBounds(spec.Bounds, k)
		for _, t := range tuples {
			j := rangeSite(r.Bounds, t.Get(spec.PartAttr))
			parts[j] = append(parts[j], t)
		}
	case RangeUniform:
		r.Bounds = uniformBounds(tuples, spec.PartAttr, k)
		for _, t := range tuples {
			j := rangeSite(r.Bounds, t.Get(spec.PartAttr))
			parts[j] = append(parts[j], t)
		}
	}
	for i, nd := range m.Disk {
		r.Frags = append(r.Frags, m.buildFragment(nd, spec.Name, parts[i], spec))
	}
	if m.mirrored {
		// Chained declustering: fragment i's backup lives on disk node
		// (i+1) mod k, fully indexed, so node i's loss leaves both its
		// primary (via the backup on i+1) and its backup duty (fragment
		// i-1's primary on node i-1) covered by distinct survivors.
		for i := range parts {
			nd := m.Disk[(i+1)%k]
			r.Backups = append(r.Backups, m.buildFragment(nd, spec.Name+".bak", parts[i], spec))
		}
	}
	m.catalog[spec.Name] = r
	return r
}

// buildFragment materializes one fragment — file, optional clustering sort,
// and indexes — on a disk node (load time is not simulated, §4).
func (m *Machine) buildFragment(nd *nose.Node, fileName string, tuples []rel.Tuple, spec LoadSpec) *Fragment {
	st := m.stores[nd.ID]
	f := st.CreateFile(fileName)
	var sortKey *rel.Attr
	if spec.ClusteredIndex != nil {
		sortKey = spec.ClusteredIndex
	}
	f.LoadDirect(tuples, sortKey)
	frag := &Fragment{Node: nd, File: f, Indexes: map[rel.Attr]*wiss.BTree{}}
	if spec.ClusteredIndex != nil {
		frag.Indexes[*spec.ClusteredIndex] = wiss.NewBTree(f, *spec.ClusteredIndex, wiss.Clustered)
	}
	for _, a := range spec.NonClusteredIndexes {
		frag.Indexes[a] = wiss.NewBTree(f, a, wiss.NonClustered)
	}
	return frag
}

// rangeBounds normalizes user bounds to one inclusive upper bound per site,
// the last being MaxInt32.
func rangeBounds(user []int32, k int) []int32 {
	b := append([]int32(nil), user...)
	for len(b) < k {
		b = append(b, 1<<31-1)
	}
	b[k-1] = 1<<31 - 1
	return b[:k]
}

// uniformBounds computes bounds so each site gets ~len(tuples)/k tuples.
func uniformBounds(tuples []rel.Tuple, attr rel.Attr, k int) []int32 {
	vals := make([]int32, len(tuples))
	for i, t := range tuples {
		vals[i] = t.Get(attr)
	}
	slices.Sort(vals)
	b := make([]int32, k)
	for i := 0; i < k-1; i++ {
		idx := (i + 1) * len(vals) / k
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		b[i] = vals[idx]
	}
	b[k-1] = 1<<31 - 1
	return b
}

// rangeSite locates the fragment whose inclusive upper bound covers v.
// Bounds are sorted, so this is a binary search.
func rangeSite(bounds []int32, v int32) int {
	if i := sort.Search(len(bounds), func(i int) bool { return v <= bounds[i] }); i < len(bounds) {
		return i
	}
	return len(bounds) - 1
}

// newResultRelation registers an (initially empty) result relation whose
// fragments live on every disk node; results are distributed round-robin,
// Gamma's default for relations created by a query (§2). width narrows the
// stored tuples (projection); 0 keeps full tuples. With no surviving disk
// node it returns *ErrUnavailable — the query fails, the machine survives.
func (m *Machine) newResultRelation(name string, width int) (*Relation, error) {
	if name == "" {
		m.nextRes++
		name = fmt.Sprintf("result%d", m.nextRes)
	}
	r := &Relation{Name: name, Strategy: RoundRobin, PartAttr: rel.Unique1, m: m}
	if width > 0 && width < m.Prm.TupleBytes {
		r.Width = width
	}
	slotOverhead := m.Prm.SlotBytes - m.Prm.TupleBytes
	for _, nd := range m.Disk {
		if !m.driveUp(nd) {
			// Degraded mode: results land only on surviving drives.
			continue
		}
		st := m.stores[nd.ID]
		f := st.CreateFile(name)
		if r.Width > 0 {
			f.SlotBytes = r.Width + slotOverhead
		}
		r.Frags = append(r.Frags, &Fragment{Node: nd, File: f, Indexes: map[rel.Attr]*wiss.BTree{}})
	}
	if len(r.Frags) == 0 {
		return nil, &ErrUnavailable{Rel: name}
	}
	m.catalog[name] = r
	return r, nil
}

// Drop removes a relation and its files (the QUEL abort/cleanup path).
func (m *Machine) Drop(name string) {
	r, ok := m.catalog[name]
	if !ok {
		return
	}
	for _, fr := range r.Frags {
		if fr != nil {
			m.stores[fr.Node.ID].DropFile(fr.File)
		}
	}
	for _, fr := range r.Backups {
		// Backup slots can be nil after the healer condemned a lost copy.
		if fr != nil {
			m.stores[fr.Node.ID].DropFile(fr.File)
		}
	}
	delete(m.catalog, name)
}

// Count returns the total number of tuples across all fragments.
func (r *Relation) Count() int {
	n := 0
	for _, fr := range r.Frags {
		n += fr.File.Len()
	}
	return n
}

// AllTuples gathers every live tuple (test/verification helper; no cost).
func (r *Relation) AllTuples() []rel.Tuple {
	var out []rel.Tuple
	for _, fr := range r.Frags {
		for i := 0; i < fr.File.Pages(); i++ {
			out = fr.File.Page(i).LiveTuples(out)
		}
	}
	return out
}
