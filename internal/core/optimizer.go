package core

import (
	"gamma/internal/rel"
)

// resolveScan fills in an automatic access path using the same heuristics
// the paper attributes to Gamma's optimizer (§5.1):
//
//   - A clustered index on the predicate attribute is always preferred: only
//     the qualifying key range of the (sorted) file is read.
//   - A non-clustered index is used only when the expected number of
//     qualifying tuples costs fewer I/Os than a segment scan — roughly when
//     selectivity < 1/(tuples per page). At 4 KB pages that threshold is
//     ~5.9%, so 1% selections use the index and 10% selections do not
//     ("our optimizer is smart enough to choose a segment scan", §5.2.1).
func (m *Machine) resolveScan(s ScanSpec) ScanSpec {
	if s.Rel == nil {
		panic("core: scan without relation")
	}
	if s.Path != PathAuto {
		return s
	}
	if s.Pred.IsTrue() {
		s.Path = PathHeap
		return s
	}
	s.Path = m.cheapestPath(s.Rel, s.Pred)
	return s
}

// scanSites returns the fragments a selection must visit. Exact-match
// predicates on the partitioning attribute of hashed or range-partitioned
// relations are directed to a single site; range predicates on the
// partitioning attribute of range-partitioned relations visit only the
// overlapping sites. Everything else runs on all sites (§2). degraded
// reports that at least one site resolved to a backup copy; err is
// *ErrUnavailable when some needed fragment has no readable copy (the query
// fails, the machine survives). scanSites consults only directory state and
// costs no simulated time, so callers may invoke it before committing any
// resources to the attempt.
func (m *Machine) scanSites(s ScanSpec) (frags []*Fragment, degraded bool, err error) {
	r := s.Rel
	pr := s.Pred
	one := func(i int) ([]*Fragment, bool, error) {
		fr, bak, err := m.liveFrag(r, i)
		if err != nil {
			return nil, false, err
		}
		return []*Fragment{fr}, bak, nil
	}
	if !pr.IsTrue() && pr.Attr == r.PartAttr {
		switch r.Strategy {
		case Hashed:
			if pr.Lo == pr.Hi {
				j := int(rel.Hash64(pr.Lo, LoadSeed) % uint64(len(r.Frags)))
				return one(j)
			}
		case RangeUser, RangeUniform:
			var out []*Fragment
			prev := int64(-1) << 32 // below any int32
			for i, b := range r.Bounds {
				// Fragment i holds keys in (prev, b].
				fragLo, fragHi := prev+1, int64(b)
				if int64(pr.Hi) >= fragLo && int64(pr.Lo) <= fragHi {
					fr, bak, err := m.liveFrag(r, i)
					if err != nil {
						return nil, false, err
					}
					degraded = degraded || bak
					out = append(out, fr)
				}
				prev = fragHi
			}
			if len(out) > 0 {
				return out, degraded, nil
			}
			return one(0)
		}
	}
	out := make([]*Fragment, len(r.Frags))
	for i := range r.Frags {
		fr, bak, err := m.liveFrag(r, i)
		if err != nil {
			return nil, false, err
		}
		degraded = degraded || bak
		out[i] = fr
	}
	return out, degraded, nil
}

// mustScanSites is scanSites for call sites that predate the typed error
// path (aggregates, sorts, tests): unavailability panics, exactly like the
// pre-healing behavior.
func (m *Machine) mustScanSites(s ScanSpec) []*Fragment {
	frags, _, err := m.scanSites(s)
	if err != nil {
		panic(err.Error())
	}
	return frags
}

// PropagateSelection applies the optimizer rewrite the paper describes for
// joinAselB (§6.1): when a selection restricts the join attribute of one
// relation, the same range restriction is valid on the other relation, so
// both sides can be reduced before redistribution ("selection propagation by
// the Gamma optimizer reduces joinAselB to joinselAselB").
func PropagateSelection(joinAttrLeft, joinAttrRight rel.Attr, predRight rel.Pred) (rel.Pred, bool) {
	if predRight.IsTrue() || predRight.Attr != joinAttrRight {
		return rel.True(), false
	}
	return rel.Pred{Attr: joinAttrLeft, Lo: predRight.Lo, Hi: predRight.Hi}, true
}
