package core

import (
	"container/heap"
	"fmt"

	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wiss"
)

// SortQuery retrieves a relation in sorted order: each disk site runs the
// WiSS external sort utility over its (qualifying) fragment, then streams
// its sorted run to a merge operator that writes the globally ordered result
// to a single site — the "retrieve ... sort by" path built from the sort and
// scan utilities §2 credits to WiSS.
type SortQuery struct {
	Scan       ScanSpec
	By         rel.Attr
	ResultName string
}

// sortedRun announces one site's sorted spool file to the merge operator.
type sortedRun struct {
	site   int
	file   *wiss.File
	owner  *nose.Node
	tuples int
}

// RunSort executes a sorted retrieve.
func (m *Machine) RunSort(q SortQuery) Result {
	scan := m.resolveScan(q.Scan)
	var res Result
	m.runQuery(&res, func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
		frags := m.mustScanSites(scan)
		mergeNode := m.Disk[0]
		mergePort := mergeNode.NewPort("merge")
		resRel, rerr := m.newResultRelation(q.ResultName, 0)
		if rerr != nil {
			panic(rerr.Error()) // sorts predate the typed-error path
		}
		res.ResultName = resRel.Name

		// Phase 1: per-site filter + external sort into a local run.
		costs := wiss.SortCosts{
			InstrPerTupleRun:   m.Prm.Engine.InstrPerTupleScan * 3,
			InstrPerTupleMerge: m.Prm.Engine.InstrPerTupleScan,
		}
		for si, frag := range frags {
			m.initOp(p, frag.Node)
			site, fr := si, frag
			m.spawnOn(p, fr.Node, fmt.Sprintf("sort@%d", fr.Node.ID), func(sp *sim.Proc) {
				st := m.StoreOf(fr.Node)
				qual := st.CreateFile("sort.qual")
				ap := qual.NewAppender()
				n := scanFold(sp, m, fr, scan, func(t rel.Tuple) { ap.Append(sp, t) })
				ap.Close(sp)
				run := wiss.SortFile(sp, qual, q.By, m.Prm.Memory.NodeBytes/2, costs)
				st.DropFile(qual)
				nose.SendCtl(sp, fr.Node, schedPort, doneMsg{op: "sort", site: site, produced: n})
				nose.SendCtl(sp, fr.Node, mergePort, sortedRun{site: site, file: run, owner: fr.Node, tuples: n})
			})
		}

		// Phase 2: merge the runs at one site, reading remote run pages
		// over the network, and store the ordered result locally.
		m.initOp(p, mergeNode)
		m.spawnOn(p, mergeNode, fmt.Sprintf("merge@%d", mergeNode.ID), func(mp *sim.Proc) {
			runs := make([]sortedRun, 0, len(frags))
			for len(runs) < len(frags) {
				msg := mergePort.Recv(mp)
				runs = append(runs, msg.Payload.(sortedRun))
			}
			out := resRel.Frags[0].File
			ap := out.NewAppender()
			total := mergeSortedRuns(mp, m, mergeNode, runs, q.By, func(t rel.Tuple) {
				mergeNode.UseCPU(mp, m.Prm.Engine.InstrPerTupleStore)
				ap.Append(mp, t)
			})
			ap.Close(mp)
			out.Sorted, out.SortKey = true, q.By
			for _, r := range runs {
				m.StoreOf(r.owner).DropFile(r.file)
			}
			nose.SendCtl(mp, mergeNode, schedPort, storeDone{op: "merge", site: 0, stored: total})
		})

		ib.mustDones("sort", len(frags))
		res.Tuples = ib.mustStores("merge", 1)[0].stored
	})
	return res
}

// runCursor2 walks one sorted run page by page, paying the owner's drive and
// (for remote runs) the network per page.
type runCursor2 struct {
	run   sortedRun
	page  int
	slot  int
	cache []rel.Tuple
}

func (c *runCursor2) load(p *sim.Proc, m *Machine, reader *nose.Node) bool {
	for c.cache == nil || c.slot >= len(c.cache) {
		if c.page >= c.run.file.Pages() {
			return false
		}
		pg := c.run.file.ReadPage(p, c.page)
		m.Net.TransferBulk(p, c.run.owner, reader, m.Prm.PageBytes)
		c.cache = pg.LiveTuples(nil)
		c.page++
		c.slot = 0
	}
	return true
}

type runHeap struct {
	cs []*runCursor2
	by rel.Attr
}

func (h runHeap) Len() int { return len(h.cs) }
func (h runHeap) Less(i, j int) bool {
	return h.cs[i].cache[h.cs[i].slot].Get(h.by) < h.cs[j].cache[h.cs[j].slot].Get(h.by)
}
func (h runHeap) Swap(i, j int) { h.cs[i], h.cs[j] = h.cs[j], h.cs[i] }
func (h *runHeap) Push(x any)   { h.cs = append(h.cs, x.(*runCursor2)) }
func (h *runHeap) Pop() any {
	old := h.cs
	c := old[len(old)-1]
	h.cs = old[:len(old)-1]
	return c
}

// mergeSortedRuns merges the per-site runs in key order, invoking emit for
// every tuple, and returns the total count.
func mergeSortedRuns(p *sim.Proc, m *Machine, reader *nose.Node, runs []sortedRun, by rel.Attr, emit func(rel.Tuple)) int {
	h := &runHeap{by: by}
	for _, r := range runs {
		c := &runCursor2{run: r}
		if c.load(p, m, reader) {
			h.cs = append(h.cs, c)
		}
	}
	heap.Init(h)
	total := 0
	for h.Len() > 0 {
		c := h.cs[0]
		emit(c.cache[c.slot])
		total++
		c.slot++
		if c.load(p, m, reader) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return total
}
