package core

import (
	"testing"
	"testing/quick"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// newMachineWithRel is newTestMachine without the *testing.T (usable inside
// testing/quick properties).
func newMachineWithRel(nDisk, nDiskless, n int) (*Machine, *Relation) {
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, nDisk, nDiskless)
	u1 := rel.Unique1
	r := m.Load(LoadSpec{
		Name: "A", Strategy: Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(n, 1))
	return m, r
}

func genTuples(n int, seed uint64) []rel.Tuple { return wisconsin.Generate(n, seed) }

func TestHashRouteIsStableAndInRange(t *testing.T) {
	f := func(v int32, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		r := HashRoute(rel.Unique2, LoadSeed, n)
		var tp rel.Tuple
		tp.Set(rel.Unique2, v)
		d1, d2 := r(tp), r(tp)
		return d1 == d2 && d1 >= 0 && d1 < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashRouteMatchesLoadPartitioning(t *testing.T) {
	// The split table must send a tuple to the same index the loader
	// chose — the short-circuit invariant of Local joins (§6.2.1).
	const n = 8
	r := HashRoute(rel.Unique1, LoadSeed, n)
	for v := int32(0); v < 1000; v++ {
		var tp rel.Tuple
		tp.Set(rel.Unique1, v)
		if got, want := r(tp), int(rel.Hash64(v, LoadSeed)%n); got != want {
			t.Fatalf("route(%d) = %d, loader chose %d", v, got, want)
		}
	}
}

func TestRRRouteCycles(t *testing.T) {
	r := RRRoute(4)
	for i := 0; i < 20; i++ {
		if got := r(rel.Tuple{}); got != i%4 {
			t.Fatalf("round-robin step %d = %d", i, got)
		}
	}
}

func TestBitFilterNoFalseNegatives(t *testing.T) {
	f := func(vals []int32, probe int32) bool {
		bf := NewBitFilter(1<<12, 99)
		present := false
		for _, v := range vals {
			bf.Add(v)
			if v == probe {
				present = true
			}
		}
		// No false negatives, ever.
		return !present || bf.MayContain(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitFilterRejectsMostAbsentKeys(t *testing.T) {
	bf := NewBitFilter(1<<16, 7)
	for v := int32(0); v < 1000; v++ {
		bf.Add(v)
	}
	falsePos := 0
	for v := int32(100000); v < 110000; v++ {
		if bf.MayContain(v) {
			falsePos++
		}
	}
	if falsePos > 500 { // 1000 set bits in 65536 -> ~1.5% fp rate
		t.Errorf("false positives = %d/10000", falsePos)
	}
}

func TestBitFilterMerge(t *testing.T) {
	a := NewBitFilter(1<<10, 3)
	b := NewBitFilter(1<<10, 3)
	a.Add(1)
	b.Add(2)
	a.Merge(b)
	if !a.MayContain(1) || !a.MayContain(2) {
		t.Error("merge lost keys")
	}
}

func TestOvfBitSlicesPartitionKeySpace(t *testing.T) {
	// Within one generation the seven slices plus the survivors must
	// partition values: each value claimed by at most one slice per
	// generation.
	for round := 0; round < 3; round++ {
		counts := map[int]int{}
		for v := int32(0); v < 8000; v++ {
			claimed := 0
			for slice := 1; slice <= 7; slice++ {
				if ovfBit(v, round, slice) {
					claimed++
				}
			}
			counts[claimed]++
		}
		if counts[2] > 0 {
			t.Fatalf("round %d: %d values claimed by two slices of one generation", round, counts[2])
		}
		// ~7/8 claimed, ~1/8 survivors.
		if counts[0] < 500 || counts[0] > 1800 {
			t.Errorf("round %d: %d survivors of 8000, want ~1000", round, counts[0])
		}
	}
}

func TestJoinPropertyRandomizedMemory(t *testing.T) {
	// Property: for random relation sizes and memory budgets, the
	// distributed join (with whatever overflow behaviour results) returns
	// exactly the nested-loop reference cardinality.
	f := func(sizeRaw, memRaw uint16, modeRaw uint8) bool {
		n := int(sizeRaw%1500) + 200
		mem := int(memRaw)*16 + 4096
		mode := []JoinMode{Local, Remote, AllNodes}[modeRaw%3]
		m, a := newMachineWithRel(3, 3, n)
		btup := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1},
			genTuples(n/2, 9))
		want := expectedJoin(a.AllTuples(), btup.AllTuples(), rel.Unique2, rel.Unique2)
		res := m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: btup, Pred: rel.True()}, BuildAttr: rel.Unique2,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
			Mode:            mode,
			MemPerJoinBytes: mem,
		})
		return res.Tuples == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestHybridJoinCorrectUnderPressure(t *testing.T) {
	for _, mem := range []int{4096, 20 * 1024, 100 * 1024, 8 << 20} {
		m, a := newTestMachine(t, 3, 3, 2000)
		b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1},
			genTuples(1000, 9))
		want := expectedJoin(a.AllTuples(), b.AllTuples(), rel.Unique2, rel.Unique2)
		res := m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique2,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
			Mode:            Remote,
			Algorithm:       HybridHash,
			MemPerJoinBytes: mem,
		})
		if res.Tuples != want {
			t.Errorf("mem=%d: hybrid join = %d tuples, want %d", mem, res.Tuples, want)
		}
	}
}

func TestHybridBeatsSimpleUnderHeavyPressure(t *testing.T) {
	run := func(algo JoinAlgorithm) Result {
		m, a := newTestMachine(t, 4, 4, 4000)
		b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1},
			genTuples(2000, 9))
		return m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique2,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
			Mode:            Remote,
			Algorithm:       algo,
			MemPerJoinBytes: 2000 * 208 / 4 / 5, // ~1/5 of the build relation
		})
	}
	simple := run(SimpleHash)
	hybrid := run(HybridHash)
	if simple.Tuples != hybrid.Tuples {
		t.Fatalf("cardinality differs: %d vs %d", simple.Tuples, hybrid.Tuples)
	}
	if hybrid.Elapsed >= simple.Elapsed {
		t.Errorf("hybrid (%v) should beat simple (%v) at 1/5 memory (§8)", hybrid.Elapsed, simple.Elapsed)
	}
}

func TestEmptyRelationQueries(t *testing.T) {
	m, _ := newTestMachine(t, 4, 4, 100)
	empty := m.Load(LoadSpec{Name: "empty", Strategy: Hashed, PartAttr: rel.Unique1}, nil)
	sel := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: empty, Pred: rel.True(), Path: PathHeap}})
	if sel.Tuples != 0 {
		t.Errorf("select on empty relation returned %d", sel.Tuples)
	}
	full, _ := m.Relation("A")
	join := m.RunJoin(JoinQuery{
		Build: ScanSpec{Rel: empty, Pred: rel.True(), Path: PathHeap}, BuildAttr: rel.Unique2,
		Probe: ScanSpec{Rel: full, Pred: rel.True(), Path: PathHeap}, ProbeAttr: rel.Unique2,
		Mode: Remote,
	})
	if join.Tuples != 0 {
		t.Errorf("join with empty build returned %d", join.Tuples)
	}
	agg := m.RunAgg(AggQuery{Scan: ScanSpec{Rel: empty, Pred: rel.True(), Path: PathHeap}, Fn: Count, Attr: rel.Unique1, Mode: Remote})
	if agg.Groups[0] != 0 {
		t.Errorf("count on empty relation = %d", agg.Groups[0])
	}
}

func TestHundredPercentSelection(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 500)
	res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap}})
	if res.Tuples != 500 {
		t.Errorf("100%% selection = %d tuples", res.Tuples)
	}
	out, _ := m.Relation(res.ResultName)
	// Round-robin result distribution balances fragments (§5.2.1).
	for i, fr := range out.Frags {
		if n := fr.File.Len(); n < 100 || n > 150 {
			t.Errorf("result fragment %d = %d tuples, want ~125", i, n)
		}
	}
}
