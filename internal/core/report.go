package core

import (
	"fmt"
	"io"

	"gamma/internal/disk"
	"gamma/internal/sim"
)

// UtilSnapshot captures every resource's cumulative busy time so a query's
// own consumption can be reported as a delta.
type UtilSnapshot struct {
	at    sim.Time
	cpu   map[int]sim.Dur
	nic   map[int]sim.Dur
	drive map[int]sim.Dur
	dstat map[int]disk.Stats
	ring  sim.Dur
}

// SnapshotUtil records current resource totals. (Machine.Snapshot, in
// snapshot.go, captures the full machine image instead.)
func (m *Machine) SnapshotUtil() UtilSnapshot {
	s := UtilSnapshot{
		at:    m.Sim.Now(),
		cpu:   map[int]sim.Dur{},
		nic:   map[int]sim.Dur{},
		drive: map[int]sim.Dur{},
		dstat: map[int]disk.Stats{},
	}
	for _, nd := range m.Net.Nodes() {
		b, _, _ := nd.CPU.Stats()
		s.cpu[nd.ID] = b
		b, _, _ = nd.NIC.Stats()
		s.nic[nd.ID] = b
		if nd.Drive != nil {
			db, _, _ := nd.Drive.Resource().Stats()
			s.drive[nd.ID] = db
			s.dstat[nd.ID] = nd.Drive.Stats()
		}
	}
	s.ring = m.Net.RingBusy()
	return s
}

// nodeRole labels a node for the report.
func (m *Machine) nodeRole(id int) string {
	switch {
	case id == m.Host.ID:
		return "host"
	case id == m.Sched.ID:
		return "scheduler"
	case m.rec != nil && id == m.rec.Server.ID:
		return "recovery"
	default:
		for _, nd := range m.Disk {
			if nd.ID == id {
				return "disk"
			}
		}
		return "diskless"
	}
}

// WriteUtilization reports each resource's busy time and utilization since
// the snapshot, plus per-drive access mixes — enough to see which resource
// bound a query (the disk-bound/CPU-bound/NIC-bound transitions of §5-§6).
func (m *Machine) WriteUtilization(w io.Writer, since UtilSnapshot) {
	window := m.Sim.Now() - since.at
	if window <= 0 {
		fmt.Fprintln(w, "utilization: empty window")
		return
	}
	util := func(d sim.Dur) string {
		return fmt.Sprintf("%6.1f%%", 100*float64(d)/float64(window))
	}
	fmt.Fprintf(w, "window: %.3fs simulated\n", window.Seconds())
	fmt.Fprintf(w, "%-4s %-10s %-18s %-18s %-18s %s\n", "node", "role", "cpu", "nic", "drive", "drive access mix")
	for _, nd := range m.Net.Nodes() {
		cpu := mustDelta(nd.CPU, since.cpu[nd.ID])
		nic := mustDelta(nd.NIC, since.nic[nd.ID])
		driveCol := "        -"
		mix := ""
		if nd.Drive != nil {
			db, _, _ := nd.Drive.Resource().Stats()
			d := db - since.drive[nd.ID]
			driveCol = fmt.Sprintf("%8.3fs %s", d.Seconds(), util(d))
			now := nd.Drive.Stats()
			was := since.dstat[nd.ID]
			mix = fmt.Sprintf("seqR=%d randR=%d seqW=%d randW=%d",
				now.SeqReads-was.SeqReads, now.RandReads-was.RandReads,
				now.SeqWrites-was.SeqWrites, now.RandWrites-was.RandWrites)
		}
		fmt.Fprintf(w, "%-4d %-10s %8.3fs %s %8.3fs %s %-18s %s\n",
			nd.ID, m.nodeRole(nd.ID),
			cpu.Seconds(), util(cpu),
			nic.Seconds(), util(nic),
			driveCol, mix)
	}
	ring := m.Net.RingBusy() - since.ring
	fmt.Fprintf(w, "ring %-10s %8.3fs %s\n", "", ring.Seconds(), util(ring))
}

func mustDelta(r *sim.Resource, was sim.Dur) sim.Dur {
	now, _, _ := r.Stats()
	return now - was
}
