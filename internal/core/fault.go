package core

// Machine-level fault tolerance: chained-declustered replicas, failure
// entry points (disk-node crash, single-drive failure, transient NIC
// outage), and the bookkeeping the per-query failover protocol in query.go
// relies on. The scheduling of failures against the simulation clock lives
// one layer up, in internal/fault.

import (
	"fmt"

	"gamma/internal/disk"
	"gamma/internal/nose"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// DefaultFailoverDetect is the scheduler's operator-silence timeout when
// EnableFailover is given no explicit value. It is large against per-packet
// latencies (so quiet phases of a healthy run never look dead) but small
// against query response times, keeping the detection share of degraded
// response time bounded.
const DefaultFailoverDetect = 250 * sim.Millisecond

// EnableMirroring makes every subsequent Load build chained-declustered
// backup fragments: disk node i holds the primary of fragment i and the
// backup of fragment i-1 (the follow-on Gamma availability design). Must be
// called before the relations that should survive a failure are loaded.
func (m *Machine) EnableMirroring() { m.mirrored = true }

// Mirrored reports whether loads build chained-declustered backups.
func (m *Machine) Mirrored() bool { return m.mirrored }

// EnableFailover arms mid-query failure handling: the scheduler's inbox
// waits time out after detect of silence, newly failed sites abort the
// running attempt (partial results are dropped), and the work is
// re-dispatched against backup fragments. detect <= 0 selects
// DefaultFailoverDetect. Failover needs EnableMirroring to have something
// to re-dispatch to.
func (m *Machine) EnableFailover(detect sim.Dur) {
	if detect <= 0 {
		detect = DefaultFailoverDetect
	}
	m.ftDetect = detect
}

// CrashDisk fails disk site (index into m.Disk) completely: its operator
// processes are killed, its ports closed (returning senders' window
// credits), its drive failed, and any diskless processor spooling to it is
// re-assigned to a surviving drive. Idempotent. Kernel context (an event
// function, or between queries).
func (m *Machine) CrashDisk(site int) {
	nd := m.Disk[site]
	if nd.Failed() {
		return
	}
	m.siteEpochs[site]++
	m.Sim.Emit(trace.Event{
		At: int64(m.Sim.Now()), Kind: trace.KindFault, Class: "node-crash",
		Node: nd.ID, Site: site,
	})
	for _, p := range append([]*sim.Proc(nil), m.procs[nd.ID]...) {
		p.Kill()
	}
	nd.Fail()
	nd.Drive.Fail()
	m.reassignSpools()
	if m.healer != nil {
		m.healer.noteFault(site)
	}
}

// FailDrive fails only the drive of disk site: the processor stays up, so
// in-flight accesses raise disk.FailedError, the operator reports the loss,
// and detection is immediate rather than timeout-driven. Idempotent.
func (m *Machine) FailDrive(site int) {
	nd := m.Disk[site]
	if nd.Drive.Failed() {
		return
	}
	m.Sim.Emit(trace.Event{
		At: int64(m.Sim.Now()), Kind: trace.KindFault, Class: "drive-fail",
		Node: nd.ID, Site: site,
	})
	nd.Drive.Fail()
	m.reassignSpools()
	if m.healer != nil {
		m.healer.noteFault(site)
	}
}

// NICOutage blocks a node's network interface for d, modeling a transient
// interface fault: traffic queues behind the outage and drains afterwards.
// No failover is involved — the sliding-window protocol simply stalls — and
// it composes with Network.InjectLoss packet drops. node is a node ID (any
// processor, not just disk sites).
func (m *Machine) NICOutage(node int, d sim.Dur) {
	nd := m.Net.Nodes()[node]
	m.Sim.Emit(trace.Event{
		At: int64(m.Sim.Now()), Kind: trace.KindFault, Class: "nic-outage",
		Node: nd.ID, End: int64(m.Sim.Now() + d),
	})
	nd.NIC.UseAsync(d)
}

// OutageDisk takes disk site down exactly like CrashDisk, then schedules its
// rejoin d later: a transient power/partition outage rather than a permanent
// loss. The node comes back cold (empty buffer pool, unknown arm position)
// and immediately eligible as a re-replication target.
func (m *Machine) OutageDisk(site int, d sim.Dur) {
	m.CrashDisk(site)
	m.Sim.At(m.Sim.Now()+d, func() { m.RejoinDisk(site) })
}

// RejoinDisk returns a previously crashed disk site to service: the node and
// drive accept work again, the buffer pool is cold (its contents did not
// survive the outage), and any spool assignment it held before the crash is
// restored. Fragments whose files survived on the drive serve again as soon
// as the directory still points at them; fragments the healer condemned and
// re-replicated elsewhere stay gone — the rejoined node is simply spare
// capacity (and a rebuild target) from here on. Idempotent.
func (m *Machine) RejoinDisk(site int) {
	nd := m.Disk[site]
	if !nd.Failed() {
		return
	}
	nd.Recover()
	nd.Drive.Repair()
	if st := m.stores[nd.ID]; st != nil {
		st.Pool().Reset()
	}
	nd.SpoolNode = nd
	m.Sim.Emit(trace.Event{
		At: int64(m.Sim.Now()), Kind: trace.KindHeal, Class: "rejoin",
		Node: nd.ID, Site: site,
	})
	if m.healer != nil {
		m.healer.noteRejoin(site)
	}
}

// reassignSpools points every processor whose spool drive is gone at the
// first surviving drive (join overflow resolution must keep working in
// degraded mode).
func (m *Machine) reassignSpools() {
	var alive *nose.Node
	for _, nd := range m.Disk {
		if m.driveUp(nd) {
			alive = nd
			break
		}
	}
	if alive == nil {
		return // nothing left to spool to; queries will fail loudly
	}
	for _, nd := range m.Net.Nodes() {
		if nd.SpoolNode != nil && !m.driveUp(nd.SpoolNode) {
			nd.SpoolNode = alive
		}
	}
}

// driveUp reports whether a node can serve disk I/O: the node is running
// and its drive works.
func (m *Machine) driveUp(nd *nose.Node) bool {
	return !nd.Failed() && nd.Drive != nil && !nd.Drive.Failed()
}

// ErrUnavailable is the typed error a query returns when it cannot complete:
// some fragment it needs has no readable copy (two adjacent failures, or no
// mirroring), or its failover retries were exhausted. It fails only the
// affected query — the machine and every other query keep running.
type ErrUnavailable struct {
	// Rel and Frag name the unreadable fragment ("" when the failure is
	// retry exhaustion rather than a specific lost fragment).
	Rel  string
	Frag int
	// Attempts is how many attempts the query made before giving up.
	Attempts int
}

func (e *ErrUnavailable) Error() string {
	if e.Rel != "" {
		return fmt.Sprintf("core: fragment %d of %s unavailable (primary down, no live backup)", e.Frag, e.Rel)
	}
	return fmt.Sprintf("core: unavailable after %d failover attempts (more failures than disk sites)", e.Attempts)
}

// liveFrag returns the readable copy of fragment i of r: the primary, or —
// when the primary's node or drive is lost — its chained-declustered backup.
// backup reports that the degraded copy was chosen. When neither copy is
// readable it returns an *ErrUnavailable (data loss for this fragment; the
// query fails, the machine survives).
func (m *Machine) liveFrag(r *Relation, i int) (frag *Fragment, backup bool, err error) {
	fr := r.Frags[i]
	if m.driveUp(fr.Node) {
		return fr, false, nil
	}
	if i < len(r.Backups) {
		if b := r.Backups[i]; b != nil && m.driveUp(b.Node) {
			return b, true, nil
		}
	}
	return nil, false, &ErrUnavailable{Rel: r.Name, Frag: i}
}

// reportDriveLoss is the deferred recovery handler for operators without an
// abort protocol (selections, spool scans): a disk.FailedError raised by a
// failed drive becomes an opFailed report, so the scheduler detects the
// loss immediately instead of waiting out the silence timeout. Any other
// panic — including the kill sentinel of a crashed node — passes through.
func reportDriveLoss(m *Machine, p *sim.Proc, nd *nose.Node, opID string, sched *nose.Port) {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(disk.FailedError); ok && !nd.Failed() {
		nose.SendCtl(p, nd, sched, opFailed{op: opID, node: nd.ID})
		return
	}
	panic(r)
}

// spawnOn starts an operator process bound to a node: a crash of that node
// kills it, and a process spawned for an already-failed node never runs.
// All operator processes go through here so CrashDisk can find them.
//
// from is the process initiating the operator (the scheduler, usually); nil
// means a serialized context outside any process. On the serialized kernel
// (lookahead 0) the spawn is immediate and the process is registered so
// CrashDisk can kill it. Under a positive-lookahead kernel a cross-shard
// spawn is itself a network message: it is routed to the operator's shard
// and the process starts one latency floor later, exactly like the
// scheduler-initiation control messages it models (§6.2.3). Fault injection
// is a lookahead-0 feature, so the kill registry is skipped on that path.
func (m *Machine) spawnOn(from *sim.Proc, nd *nose.Node, name string, fn func(p *sim.Proc)) {
	if nd.Failed() {
		return
	}
	if m.Sim.Lookahead() > 0 {
		if from == nil || from.Shard() == nd.Part {
			nd.Part.Spawn(name, fn)
			return
		}
		from.Shard().Send(nd.Part, from.Now()+m.Prm.Net.MinLatency, func() {
			if !nd.Failed() {
				nd.Part.Spawn(name, fn)
			}
		})
		return
	}
	var pr *sim.Proc
	pr = m.Sim.SpawnOn(nd.Part, name, func(p *sim.Proc) {
		defer func() {
			// Deregister on any exit (normal, killed, or panicking).
			live := m.procs[nd.ID]
			for i, q := range live {
				if q == pr {
					m.procs[nd.ID] = append(live[:i], live[i+1:]...)
					break
				}
			}
		}()
		fn(p)
	})
	m.procs[nd.ID] = append(m.procs[nd.ID], pr)
}
