package core

import (
	"testing"

	"gamma/internal/rel"
)

// TestZeroPercentIndexedRisesWithProcessors is Figure 4's signature
// behaviour as a unit test: operator-initiation cost at the scheduler grows
// linearly with nodes and dominates an empty index probe.
func TestZeroPercentIndexedRisesWithProcessors(t *testing.T) {
	run := func(d int) float64 {
		m, r := newMachineWithRel(d, d, 5000)
		res := m.RunSelect(SelectQuery{
			Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, -2, -1), Path: PathNonClustered},
		})
		return res.Elapsed.Seconds()
	}
	one, eight := run(1), run(8)
	if eight <= one {
		t.Errorf("0%% indexed selection: %v at 1 proc, %v at 8; should rise (§5.2.1)", one, eight)
	}
	if eight > one*5 {
		t.Errorf("rise too steep: %v -> %v", one, eight)
	}
}

// TestSchedulerSerializesInitiation: initiating operators on n nodes costs
// ~n * 4 * 7ms of scheduler time, visible in the 0% query floor.
func TestSchedulerSerializesInitiation(t *testing.T) {
	m, _ := newMachineWithRel(8, 8, 100)
	var elapsed float64
	{
		r, _ := m.Relation("A")
		res := m.RunSelect(SelectQuery{
			Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, -2, -1), Path: PathHeap},
		})
		elapsed = res.Elapsed.Seconds()
	}
	// 8 stores + 8 selects, 4 messages each at 7ms = 448ms minimum.
	if elapsed < 0.448 {
		t.Errorf("query completed in %.3fs; scheduler initiation alone costs >= 0.448s", elapsed)
	}
}

// TestStoringResultsCostsMoreThanReturningThem: the §4 observation that
// result storage (redistribution + writes) dominates high-selectivity
// queries.
func TestStoringResultsCostsMoreThanReturningThem(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 4000)
	pred := rel.Between(rel.Unique2, 0, 399)
	stored := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred, Path: PathHeap}})
	toHost := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred, Path: PathHeap}, ToHost: true})
	if stored.Elapsed <= toHost.Elapsed {
		t.Errorf("stored (%v) should cost more than returned (%v)", stored.Elapsed, toHost.Elapsed)
	}
}

// TestRangePartitionedSelectUsesOnlyOverlappingSites: range declustering
// confines range queries on the partitioning attribute (§2).
func TestRangePartitionedSelectUsesOnlyOverlappingSites(t *testing.T) {
	m, _ := newMachineWithRel(4, 0, 100)
	r := m.Load(LoadSpec{Name: "ranged", Strategy: RangeUniform, PartAttr: rel.Unique1},
		genTuples(4000, 3))
	frags := m.mustScanSites(ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 500)})
	if len(frags) >= 4 {
		t.Errorf("range query hit %d sites; range partitioning should confine it", len(frags))
	}
	// And the confined plan still returns exact results.
	res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 500), Path: PathHeap}})
	if res.Tuples != 501 {
		t.Errorf("tuples = %d, want 501", res.Tuples)
	}
}

// TestRangeUserExactMatchSingleSite: exact match on a user-range-partitioned
// key goes to exactly one site.
func TestRangeUserExactMatchSingleSite(t *testing.T) {
	m, _ := newMachineWithRel(4, 0, 100)
	r := m.Load(LoadSpec{
		Name: "usr", Strategy: RangeUser, PartAttr: rel.Unique1,
		Bounds: []int32{999, 1999, 2999},
	}, genTuples(4000, 3))
	frags := m.mustScanSites(ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, 2500)})
	if len(frags) != 1 {
		t.Fatalf("exact match hit %d sites", len(frags))
	}
	if frags[0] != r.Frags[2] {
		t.Error("exact match routed to the wrong range fragment")
	}
}

// TestUpdateThenScanConsistency: a mixed workload — updates followed by
// every access path — stays consistent.
func TestUpdateThenScanConsistency(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 2000)
	// Delete 5, append 3, modify 2.
	for _, k := range []int32{10, 20, 30, 40, 50} {
		if res := m.RunUpdate(UpdateQuery{Rel: r, Kind: DeleteByKey, Key: k}); res.Tuples != 1 {
			t.Fatalf("delete %d failed", k)
		}
	}
	for _, k := range []int32{5000, 5001, 5002} {
		var tp rel.Tuple
		tp.Set(rel.Unique1, k)
		tp.Set(rel.Unique2, k)
		if res := m.RunUpdate(UpdateQuery{Rel: r, Kind: AppendTuple, Tuple: tp}); res.Tuples != 1 {
			t.Fatalf("append %d failed", k)
		}
	}
	m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyIndexed, Key: 100, Attr: rel.Unique2, NewValue: 7100})
	m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyKeyAttr, Key: 200, Attr: rel.Unique1, NewValue: 6200})

	if r.Count() != 2000-5+3 {
		t.Fatalf("count = %d", r.Count())
	}
	heap := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap}, ToHost: true})
	if heap.Tuples != 1998 {
		t.Errorf("heap scan sees %d tuples", heap.Tuples)
	}
	clus := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 9999), Path: PathClustered}, ToHost: true})
	if clus.Tuples != 1998 {
		t.Errorf("clustered scan sees %d tuples", clus.Tuples)
	}
	// The deleted keys are invisible on every path; survivors are found.
	for _, k := range []int32{10, 50} {
		if res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, k), Path: PathClustered}, ToHost: true}); res.Tuples != 0 {
			t.Errorf("deleted key %d still visible", k)
		}
	}
	if res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique2, 7100), Path: PathNonClustered}, ToHost: true}); res.Tuples != 1 {
		t.Errorf("modified unique2 not found via dense index (%d)", res.Tuples)
	}
}

// TestOverflowSpoolsAreFreed: spool files must not leak across rounds.
func TestOverflowSpoolsAreFreed(t *testing.T) {
	m, a := newMachineWithRel(2, 2, 3000)
	b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1}, genTuples(1500, 9))
	res := m.RunJoin(JoinQuery{
		Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique2,
		Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
		Mode:            Remote,
		MemPerJoinBytes: 30 * 1024,
	})
	if res.Overflows == 0 {
		t.Fatal("no overflow; test vacuous")
	}
	// No spool (.ovf) relations should survive in any catalog or store.
	for _, name := range m.Relations() {
		if len(name) > 4 && name[:4] == "join" {
			t.Errorf("leaked spool artifact %q", name)
		}
	}
}

// TestJoinModesAgreeUnderOverflow: overflow handling must be mode-agnostic
// in its results.
func TestJoinModesAgreeUnderOverflow(t *testing.T) {
	counts := map[JoinMode]int{}
	for _, mode := range []JoinMode{Local, Remote, AllNodes} {
		m, a := newMachineWithRel(2, 2, 2000)
		b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1}, genTuples(1000, 9))
		res := m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique1,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique1,
			Mode:            mode,
			MemPerJoinBytes: 20 * 1024,
		})
		if res.Overflows == 0 {
			t.Fatalf("mode %v: no overflow", mode)
		}
		counts[mode] = res.Tuples
	}
	if counts[Local] != counts[Remote] || counts[Remote] != counts[AllNodes] {
		t.Errorf("modes disagree under overflow: %v", counts)
	}
	if counts[Remote] != 1000 {
		t.Errorf("join = %d tuples, want 1000", counts[Remote])
	}
}
