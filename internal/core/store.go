package core

import (
	"fmt"

	"gamma/internal/disk"
	"gamma/internal/nose"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// storeClose tells a store operator how many end-of-stream messages to
// expect in total; it terminates once that many have arrived. The count is
// sent by the scheduler when the number of producer phases is finally known
// (overflow rounds make it dynamic).
type storeClose struct {
	expectEOS int
}

// storeAbort tells a store operator (or collector) to abandon its partial
// output and acknowledge — mid-query failover teardown. The scheduler
// drops the partial result relation afterwards, so no flush is paid.
type storeAbort struct{}

// storeDone reports a finished store operator.
type storeDone struct {
	op     string
	site   int
	stored int
}

// spawnStore starts a store operator on a result fragment's node: it
// receives result tuples, assigns record ids, and writes pages to the local
// drive with write-behind (§2: "store operators at each disk site assume
// responsibility for writing the result tuples to disk").
func spawnStore(m *Machine, from *sim.Proc, opID string, site int, frag *Fragment, in *nose.Port, sched *nose.Port) {
	m.spawnOn(from, frag.Node, fmt.Sprintf("%s@%d", opID, frag.Node.ID), func(p *sim.Proc) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(disk.FailedError); ok && !frag.Node.Failed() {
				nose.SendCtl(p, frag.Node, sched, opFailed{op: opID, node: frag.Node.ID})
				in.Close()
				return
			}
			panic(r)
		}()
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpStart, Op: opID, Node: frag.Node.ID, Site: site, Class: "store"})
		eng := m.Prm.Engine
		ap := frag.File.NewAppender()
		eos := 0
		expect := -1
		for expect < 0 || eos < expect {
			msg := in.Recv(p)
			switch pl := msg.Payload.(type) {
			case packet:
				frag.Node.UseCPU(p, eng.InstrPerTupleStore*len(pl.tuples))
				for _, t := range pl.tuples {
					ap.Append(p, t)
					m.logRecord(p, frag.Node, m.Prm.TupleBytes)
				}
				putTupleBuf(pl.tuples)
			case eosPayload:
				eos++
			case storeClose:
				expect = pl.expectEOS
			case storeAbort:
				nose.SendCtl(p, frag.Node, sched, abortedMsg{op: opID, site: site})
				in.Close()
				return
			default:
				panic(fmt.Sprintf("store: unexpected message %T", msg.Payload))
			}
		}
		n := ap.Close(p)
		m.logForce(p, frag.Node)
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpDone, Op: opID, Node: frag.Node.ID, Site: site, N: n})
		nose.SendCtl(p, frag.Node, sched, storeDone{op: opID, site: site, stored: n})
		in.Close()
	})
}

// spawnCollector starts a lightweight sink on a node (typically the host)
// that gathers result tuples into memory instead of storing them — used for
// single-tuple selects and aggregate results returned to the user. It obeys
// the same close protocol as a store operator.
func spawnCollector(m *Machine, from *sim.Proc, opID string, node *nose.Node, in *nose.Port, sched *nose.Port, sink func(n int)) {
	m.spawnOn(from, node, fmt.Sprintf("%s@%d", opID, node.ID), func(p *sim.Proc) {
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpStart, Op: opID, Node: node.ID, Site: 0, Class: "collect"})
		eng := m.Prm.Engine
		eos := 0
		expect := -1
		total := 0
		for expect < 0 || eos < expect {
			msg := in.Recv(p)
			switch pl := msg.Payload.(type) {
			case packet:
				node.UseCPU(p, eng.InstrPerTupleStore*len(pl.tuples))
				total += len(pl.tuples)
				putTupleBuf(pl.tuples)
			case eosPayload:
				eos++
			case storeClose:
				expect = pl.expectEOS
			case storeAbort:
				nose.SendCtl(p, node, sched, abortedMsg{op: opID, site: 0})
				in.Close()
				return
			default:
				panic(fmt.Sprintf("collector: unexpected message %T", msg.Payload))
			}
		}
		if sink != nil {
			sink(total)
		}
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpDone, Op: opID, Node: node.ID, Site: 0, N: total})
		nose.SendCtl(p, node, sched, storeDone{op: opID, site: 0, stored: total})
		in.Close()
	})
}
