package core_test

// Machine-image acceptance tests: a machine restored from a snapshot onto a
// fresh simulation must be indistinguishable — byte-for-byte in results and
// traces — from a machine that loaded the same database from scratch, no
// matter what earlier restores did to their own copies (copy-on-write).

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// benchLoad loads the paper's benchmark database (heap-partitioned "Aheap"
// shape: hashed on unique1, clustered unique1 + dense unique2 indexes) plus a
// small join relation, mirroring what internal/bench builds per data point.
func benchLoad(m *core.Machine, n int) {
	u1 := rel.Unique1
	m.Load(core.LoadSpec{
		Name:                "A",
		Strategy:            core.Hashed,
		PartAttr:            rel.Unique1,
		ClusteredIndex:      &u1,
		NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(n, 1))
	m.Load(core.LoadSpec{Name: "Bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(n/10, 7))
}

// imageWorkload runs a representative query mix — index select, heap select
// with stored result, hash join, append + non-indexed modify updates — and
// returns every Result. It drives spool files, result stores, index updates
// and page writes, i.e. all the copy-on-write paths.
func imageWorkload(m *core.Machine) []core.Result {
	a, _ := m.Relation("A")
	b, _ := m.Relation("Bprime")
	var out []core.Result
	out = append(out, m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 99), Path: core.PathNonClustered},
	}))
	out = append(out, m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: a, Pred: rel.Between(rel.Unique1, 0, 199), Path: core.PathHeap},
	}))
	out = append(out, m.RunJoin(core.JoinQuery{
		Build: core.ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique2,
		Probe: core.ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
		Mode: core.Remote,
	}))
	out = append(out, m.RunUpdate(core.UpdateQuery{
		Rel: a, Kind: core.AppendTuple, Tuple: wisconsin.Generate(1, 99)[0],
	}))
	out = append(out, m.RunUpdate(core.UpdateQuery{
		Rel: a, Kind: core.ModifyNonIndexed, Key: 42, Attr: rel.Ten, NewValue: 7,
	}))
	return out
}

// freshResults runs the workload on a from-scratch machine and returns its
// results plus the trace JSONL.
func freshResults(t *testing.T, n int) ([]core.Result, []byte) {
	t.Helper()
	prm := config.Default()
	m := core.NewMachine(sim.New(), &prm, 4, 4)
	benchLoad(m, n)
	col := m.EnableTrace()
	res := imageWorkload(m)
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return res, buf.Bytes()
}

// snapBench builds the benchmark database once and snapshots it.
func snapBench(n int) *core.Snapshot {
	prm := config.Default()
	m := core.NewMachine(sim.New(), &prm, 4, 4)
	benchLoad(m, n)
	return m.Snapshot()
}

// restoredResults restores the snapshot onto a fresh sim and runs the
// workload, returning results plus trace JSONL.
func restoredResults(t *testing.T, snap *core.Snapshot) ([]core.Result, []byte) {
	t.Helper()
	m := core.RestoreMachine(sim.New(), snap)
	col := m.EnableTrace()
	res := imageWorkload(m)
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	return res, buf.Bytes()
}

// TestRestoreMatchesFreshLoad is the tentpole determinism contract: results
// and traces from a restored machine are byte-identical to a from-scratch
// load-then-query run.
func TestRestoreMatchesFreshLoad(t *testing.T) {
	const n = 3000
	want, wantTrace := freshResults(t, n)
	got, gotTrace := restoredResults(t, snapBench(n))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored results differ from fresh load:\n got %+v\nwant %+v", got, want)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("restored trace differs from fresh load (%d vs %d bytes)", len(gotTrace), len(wantTrace))
	}
}

// TestRestoreIsolation is the COW contract: running a write-heavy workload on
// one restored machine must not perturb a later restore of the same image.
func TestRestoreIsolation(t *testing.T) {
	const n = 3000
	snap := snapBench(n)
	first, firstTrace := restoredResults(t, snap)
	// Dirty a second restore: updates, stored results, spool files, drops.
	dirty := core.RestoreMachine(sim.New(), snap)
	imageWorkload(dirty)
	a, _ := dirty.Relation("A")
	for i := 0; i < 50; i++ {
		dirty.RunUpdate(core.UpdateQuery{Rel: a, Kind: core.AppendTuple, Tuple: wisconsin.Generate(1, uint64(100+i))[0]})
		dirty.RunUpdate(core.UpdateQuery{Rel: a, Kind: core.DeleteByKey, Key: int32(i)})
	}
	// A third restore must still replay the first run byte-for-byte.
	again, againTrace := restoredResults(t, snap)
	if !reflect.DeepEqual(again, first) {
		t.Errorf("restore after dirty run differs:\n got %+v\nwant %+v", again, first)
	}
	if !bytes.Equal(againTrace, firstTrace) {
		t.Error("restore after dirty run produced a different trace")
	}
}

// TestDropOnRestoredRelationSharesPages: dropping a restored relation (and
// querying into stored results, then dropping those) must never write to
// shared pages — drop is directory metadata only.
func TestDropOnRestoredRelationSharesPages(t *testing.T) {
	snap := snapBench(1000)
	m := core.RestoreMachine(sim.New(), snap)
	a, _ := m.Relation("A")
	res := m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: a, Pred: rel.Between(rel.Unique1, 0, 99), Path: core.PathClustered},
	})
	m.Drop(res.ResultName)
	m.Drop("Bprime")
	m.Drop("A")
	if cl := m.COWClones(); cl != 0 {
		t.Errorf("drop path cloned %d shared pages; want 0", cl)
	}
	// The image must still restore intact.
	m2 := core.RestoreMachine(sim.New(), snap)
	a2, ok := m2.Relation("A")
	if !ok || a2.Count() != 1000 {
		t.Fatalf("image damaged by Drop: A missing or count wrong")
	}
}

// TestRestoreResetsPools: pool LRU state and hit/miss counters on a restored
// machine must match a fresh load exactly (satellite: stale state between
// data points).
func TestRestoreResetsPools(t *testing.T) {
	const n = 2000
	run := func(m *core.Machine) (core.Result, int64, int64) {
		a, _ := m.Relation("A")
		r := m.RunSelect(core.SelectQuery{
			Scan: core.ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 199), Path: core.PathHeap},
		})
		h, ms := m.PoolStats()
		return r, h, ms
	}
	prm := config.Default()
	fresh := core.NewMachine(sim.New(), &prm, 4, 4)
	benchLoad(fresh, n)
	wantRes, wantH, wantM := run(fresh)

	snap := snapBench(n)
	rest := core.RestoreMachine(sim.New(), snap)
	if h, ms := rest.PoolStats(); h != 0 || ms != 0 {
		t.Errorf("restored machine starts with pool stats hits=%d misses=%d; want 0,0", h, ms)
	}
	gotRes, gotH, gotM := run(rest)
	if gotH != wantH || gotM != wantM {
		t.Errorf("pool stats after query: restored hits=%d misses=%d, fresh hits=%d misses=%d",
			gotH, gotM, wantH, wantM)
	}
	if gotRes.PoolHits != wantRes.PoolHits || gotRes.PoolMisses != wantRes.PoolMisses {
		t.Errorf("Result pool counters: restored %d/%d, fresh %d/%d",
			gotRes.PoolHits, gotRes.PoolMisses, wantRes.PoolHits, wantRes.PoolMisses)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Errorf("restored query result differs from fresh:\n got %+v\nwant %+v", gotRes, wantRes)
	}
	// A second restore must see the pools cold again, not the prior restore's.
	rest2 := core.RestoreMachine(sim.New(), snap)
	gotRes2, _, _ := run(rest2)
	if !reflect.DeepEqual(gotRes2, gotRes) {
		t.Error("second restore's query differs — pool state leaked between restores")
	}
}

// TestConcurrentRestores exercises many goroutines restoring and dirtying the
// same image at once (run under -race): frozen pages and shared index graphs
// must tolerate concurrent readers while every writer clones privately.
func TestConcurrentRestores(t *testing.T) {
	const n = 2000
	snap := snapBench(n)
	want, wantTrace := restoredResults(t, snap)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, gotTrace := restoredResults(t, snap)
			if !reflect.DeepEqual(got, want) {
				t.Error("concurrent restore produced different results")
			}
			if !bytes.Equal(gotTrace, wantTrace) {
				t.Error("concurrent restore produced a different trace")
			}
		}()
	}
	wg.Wait()
}

// TestSnapshotSourceKeepsWorking: taking a snapshot must not break the source
// machine — it keeps answering queries (now via COW) with identical results.
func TestSnapshotSourceKeepsWorking(t *testing.T) {
	const n = 2000
	want, _ := freshResults(t, n)
	prm := config.Default()
	m := core.NewMachine(sim.New(), &prm, 4, 4)
	benchLoad(m, n)
	snap := m.Snapshot()
	m.EnableTrace()
	got := imageWorkload(m)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("source machine after snapshot differs:\n got %+v\nwant %+v", got, want)
	}
	// And the image it produced is still pristine.
	again, _ := restoredResults(t, snap)
	if !reflect.DeepEqual(again, want) {
		t.Error("image dirtied by source machine's post-snapshot writes")
	}
}

// TestRestoredMirroredMachine covers the chained-declustering path: backups
// must restore with the image and failover must work on the restored copy.
func TestRestoredMirroredMachine(t *testing.T) {
	build := func() *core.Machine {
		prm := config.Default()
		m := core.NewMachine(sim.New(), &prm, 4, 0)
		m.EnableMirroring()
		m.Load(core.LoadSpec{Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1},
			wisconsin.Generate(2000, 1))
		return m
	}
	query := func(m *core.Machine) core.Result {
		m.EnableFailover(0)
		m.CrashDisk(1)
		a, _ := m.Relation("A")
		return m.RunSelect(core.SelectQuery{
			Scan: core.ScanSpec{Rel: a, Pred: rel.Between(rel.Unique1, 0, 499), Path: core.PathHeap},
		})
	}
	want := query(build())
	snap := build().Snapshot()
	got := query(core.RestoreMachine(sim.New(), snap))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mirrored restore with failover differs:\n got %+v\nwant %+v", got, want)
	}
}
