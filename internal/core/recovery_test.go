package core

import (
	"testing"

	"gamma/internal/rel"
)

func TestRecoveryShipsLogRecords(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 2000)
	rec := m.EnableRecovery()
	if !m.RecoveryEnabled() {
		t.Fatal("recovery not enabled")
	}
	res := m.RunSelect(SelectQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 199), Path: PathHeap},
	})
	if res.Tuples != 200 {
		t.Fatalf("select = %d tuples", res.Tuples)
	}
	if rec.Records < 200 {
		t.Errorf("logged %d records, want >= 200 (one per stored tuple)", rec.Records)
	}
	if ds := rec.Server.Drive.Stats(); ds.Writes() == 0 {
		t.Error("recovery server drive never written")
	}
}

func TestRecoveryCostsTime(t *testing.T) {
	run := func(enable bool) float64 {
		m, r := newMachineWithRel(4, 0, 4000)
		if enable {
			m.EnableRecovery()
		}
		return m.RunSelect(SelectQuery{
			Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 399), Path: PathHeap},
		}).Elapsed.Seconds()
	}
	off, on := run(false), run(true)
	if on <= off {
		t.Errorf("logging (%v) should cost more than no logging (%v)", on, off)
	}
	if on > off*1.5 {
		t.Errorf("logging overhead too large: %v vs %v", on, off)
	}
}

func TestRecoveryDoesNotChangeResults(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 1000)
	m.EnableRecovery()
	var tp rel.Tuple
	tp.Set(rel.Unique1, 5000)
	tp.Set(rel.Unique2, 5000)
	if res := m.RunUpdate(UpdateQuery{Rel: r, Kind: AppendTuple, Tuple: tp}); res.Tuples != 1 {
		t.Fatal("append failed under recovery")
	}
	if res := m.RunUpdate(UpdateQuery{Rel: r, Kind: DeleteByKey, Key: 5000}); res.Tuples != 1 {
		t.Fatal("delete failed under recovery")
	}
	if res := m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyNonIndexed, Key: 7, Attr: rel.Ten, NewValue: 1}); res.Tuples != 1 {
		t.Fatal("modify failed under recovery")
	}
	if r.Count() != 1000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestEnableRecoveryIdempotent(t *testing.T) {
	m, _ := newMachineWithRel(2, 0, 100)
	a := m.EnableRecovery()
	b := m.EnableRecovery()
	if a != b {
		t.Error("EnableRecovery allocated two servers")
	}
}

func TestRecoveryCountsForces(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 2000)
	rec := m.EnableRecovery()
	m.RunSelect(SelectQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 199), Path: PathHeap},
	})
	// Every store operator forces its tail page at commit; background
	// page-boundary flushes are counted but not forced.
	if rec.Forces == 0 {
		t.Error("no forced flushes recorded at commit points")
	}
	if rec.Forces > rec.Flushes {
		t.Errorf("Forces (%d) exceeds total Flushes (%d)", rec.Forces, rec.Flushes)
	}
}
