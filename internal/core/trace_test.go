package core_test

// Acceptance tests for the structured tracing layer: trace.Diagnose must
// reproduce the paper's bottleneck transitions, and the event stream must be
// strictly deterministic (byte-identical JSONL across runs).

import (
	"bytes"
	"reflect"
	"testing"

	"gamma/internal/config"
	"gamma/internal/core"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// tracedSelect runs a 1% non-indexed selection on the standard 8+8 machine
// at the given page size and returns its result.
func tracedSelect(t *testing.T, pageBytes int) core.Result {
	t.Helper()
	prm := config.Default()
	prm.PageBytes = pageBytes
	m := core.NewMachine(sim.New(), &prm, 8, 8)
	r := m.Load(core.LoadSpec{Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(100000, 1))
	m.EnableTrace()
	res := m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 999), Path: core.PathHeap},
	})
	if res.Diag == nil {
		t.Fatal("traced query has no Diag verdict")
	}
	return res
}

// TestSelectionBottleneckTransition asserts the Figures 5-6 claim: a
// non-indexed (heap-scan) selection is disk-bound at 4 KB pages, and becomes
// CPU-bound as the page size grows — larger pages amortize positioning cost
// over more tuples until the 0.6-MIPS VAX predicate evaluation dominates.
func TestSelectionBottleneckTransition(t *testing.T) {
	small := tracedSelect(t, 4096)
	if small.Diag.Binding != "disk" {
		t.Errorf("4 KB pages: %s; want disk-bound (Figure 5)", small.Diag)
	}
	large := tracedSelect(t, 32768)
	if large.Diag.Binding != "cpu" {
		t.Errorf("32 KB pages: %s; want cpu-bound (Figure 6)", large.Diag)
	}
	if large.Elapsed >= small.Elapsed {
		t.Errorf("32 KB selection (%v) not faster than 4 KB (%v)", large.Elapsed, small.Elapsed)
	}
}

// tracedRemoteJoin runs joinABprime on a 1-disk + 1-diskless machine in
// Remote mode: every build and probe tuple crosses the network.
func tracedRemoteJoin(t *testing.T, mips float64, pageBytes int) core.Result {
	t.Helper()
	prm := config.Default()
	prm.CPU.MIPS = mips
	prm.PageBytes = pageBytes
	m := core.NewMachine(sim.New(), &prm, 1, 1)
	a := m.Load(core.LoadSpec{Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(20000, 1))
	b := m.Load(core.LoadSpec{Name: "Bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(2000, 7))
	m.EnableTrace()
	res := m.RunJoin(core.JoinQuery{
		Build: core.ScanSpec{Rel: b, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
		Probe: core.ScanSpec{Rel: a, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
		Mode: core.Remote,
	})
	if res.Diag == nil {
		t.Fatal("traced query has no Diag verdict")
	}
	return res
}

// TestRemoteJoinUnibusBound asserts the Figure 3 / §6.2.3 discussion: in the
// 1-processor Remote join the 4 Mbit/s Unibus NIC is the network chokepoint
// (the 80 Mbit/s ring never is), and once processors outgrow the 0.6-MIPS
// VAX the NIC becomes the binding resource outright.
func TestRemoteJoinUnibusBound(t *testing.T) {
	// At VAX speed the join CPU masks the network, but the NIC must
	// already dominate the ring by an order of magnitude: all data
	// funnels through the per-node Unibus, not the shared ring.
	vax := tracedRemoteJoin(t, 0.6, 4096)
	if vax.Diag.Binding == "ring" {
		t.Fatalf("VAX join: %s; the ring must never bind (§5.2.1)", vax.Diag)
	}
	var nicU, ringU float64
	for _, cu := range vax.Diag.Classes {
		switch cu.Class {
		case "nic":
			nicU = cu.Util
		case "ring":
			ringU = cu.Util
		}
	}
	if nicU < 10*ringU {
		t.Errorf("VAX join: nic %.1f%% vs ring %.1f%%; want Unibus >= 10x ring", 100*nicU, 100*ringU)
	}

	// §6.2.3's thought experiment: with faster processors (8x the VAX;
	// pages large enough that disk positioning no longer dominates) the
	// network interface emerges as the bottleneck.
	fast := tracedRemoteJoin(t, 4.8, 32768)
	if fast.Diag.Binding != "nic" {
		t.Errorf("fast-CPU remote join: %s; want nic-bound (§6.2.3)", fast.Diag)
	}
}

// runTracedWorkload executes a fixed seeded select + join workload on a
// fresh machine and returns the JSONL trace bytes and both results.
func runTracedWorkload() ([]byte, []core.Result) {
	prm := config.Default()
	m := core.NewMachine(sim.New(), &prm, 4, 4)
	u1 := rel.Unique1
	a := m.Load(core.LoadSpec{
		Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(10000, 1))
	b := m.Load(core.LoadSpec{Name: "Bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(1000, 7))
	col := m.EnableTrace()
	r1 := m.RunSelect(core.SelectQuery{
		Scan: core.ScanSpec{Rel: a, Pred: rel.Between(rel.Unique1, 0, 999), Path: core.PathClustered},
	})
	r2 := m.RunJoin(core.JoinQuery{
		Build: core.ScanSpec{Rel: b, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
		Probe: core.ScanSpec{Rel: a, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
		Mode: core.Remote,
	})
	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes(), []core.Result{r1, r2}
}

// TestTraceDeterminism asserts the guarantee the resume/calibration story
// depends on: the same seeded workload produces a byte-identical JSONL trace
// and identical Result fields on every run. CI additionally runs this under
// -race, which would flag any unsynchronized access breaking the kernel's
// hand-off discipline.
func TestTraceDeterminism(t *testing.T) {
	trace1, res1 := runTracedWorkload()
	trace2, res2 := runTracedWorkload()
	if len(trace1) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(trace1, trace2) {
		for i := range trace1 {
			if i >= len(trace2) || trace1[i] != trace2[i] {
				lo := i - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("JSONL traces diverge at byte %d (of %d vs %d):\n run1: …%s\n run2: …%s",
					i, len(trace1), len(trace2), trace1[lo:min(i+80, len(trace1))], trace2[lo:min(i+80, len(trace2))])
			}
		}
		t.Fatalf("JSONL traces differ in length: %d vs %d bytes", len(trace1), len(trace2))
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("results differ:\n run1: %+v\n run2: %+v", res1, res2)
	}
}

// TestTraceSpansWellFormed sanity-checks the derived timeline of a traced
// join: query span closed, every operator span closed with sane bounds, and
// the join's build phase ends no later than its probe phase at every site.
func TestTraceSpansWellFormed(t *testing.T) {
	prm := config.Default()
	m := core.NewMachine(sim.New(), &prm, 2, 2)
	a := m.Load(core.LoadSpec{Name: "A", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(5000, 1))
	b := m.Load(core.LoadSpec{Name: "Bprime", Strategy: core.Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(500, 7))
	col := m.EnableTrace()
	res := m.RunJoin(core.JoinQuery{
		Build: core.ScanSpec{Rel: b, Pred: rel.True(), Path: core.PathHeap}, BuildAttr: rel.Unique2,
		Probe: core.ScanSpec{Rel: a, Pred: rel.True(), Path: core.PathHeap}, ProbeAttr: rel.Unique2,
		Mode: core.Remote,
	})

	q, ok := col.Query(res.Query)
	if !ok {
		t.Fatalf("query %q has no span", res.Query)
	}
	if q.End < 0 || q.Dur() != int64(res.Elapsed) {
		t.Errorf("query span %+v; want closed with duration %d", q, int64(res.Elapsed))
	}
	ops := col.OpSpans()
	if len(ops) == 0 {
		t.Fatal("no operator spans")
	}
	for _, op := range ops {
		if op.End < 0 {
			t.Errorf("operator span %s@%d never closed", op.ID, op.Site)
		}
		if op.Start < q.Start || op.End > q.End {
			t.Errorf("operator span %s@%d [%d,%d] outside query span [%d,%d]",
				op.ID, op.Site, op.Start, op.End, q.Start, q.End)
		}
	}
	var sawBuild, sawProbe bool
	for _, ph := range col.PhaseSpans() {
		switch ph.ID {
		case "join1/build":
			sawBuild = true
		case "join1/probe":
			sawProbe = true
		}
		if ph.End < 0 {
			t.Errorf("phase span %s@%d never closed", ph.ID, ph.Site)
		}
	}
	if !sawBuild || !sawProbe {
		t.Errorf("missing join phases: build=%v probe=%v", sawBuild, sawProbe)
	}
	// The merged probe phase reports the join's output cardinality.
	for _, ph := range col.MergedPhases() {
		if ph.ID == "join1/probe" && ph.N != res.Tuples {
			t.Errorf("probe phase N=%d, want %d result tuples", ph.N, res.Tuples)
		}
	}
}
