package core

import (
	"reflect"
	"testing"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// newWorkloadMachine builds a machine with nRels heap-only relations, each
// big enough that a fragment dwarfs the 64-frame buffer pool — the regime
// where concurrent private scans thrash (phase-shifted streams over several
// files keep the drive in random positioning and evict each other's pages)
// and shared cursors win.
func newWorkloadMachine(t *testing.T, nDisk, nRels, tuples int, shared bool) *Machine {
	t.Helper()
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, nDisk, 0)
	for i := 0; i < nRels; i++ {
		name := string(rune('A'+i)) + "w"
		m.Load(LoadSpec{Name: name, Strategy: RoundRobin}, wisconsin.Generate(tuples, uint64(11+i)))
	}
	if shared {
		m.EnableSharedScans()
	}
	return m
}

// selectionMix draws 1%-selectivity heap selections uniformly over the
// machine's relations, returning projected tuples to the host — the
// selection-heavy multiuser mix of the throughput experiment.
func selectionMix(m *Machine, nRels, tuples int) func(term, q int, rng func() uint64) ConcurrentQuery {
	rels := make([]*Relation, nRels)
	for i := range rels {
		rels[i] = mustRel(m, string(rune('A'+i))+"w")
	}
	span := int32(tuples / 100)
	return func(term, q int, rng func() uint64) ConcurrentQuery {
		r := rels[rng()%uint64(nRels)]
		lo := int32(rng() % uint64(tuples-int(span)))
		return ConcurrentQuery{Select: &SelectQuery{
			Scan:    ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, lo, lo+span-1), Path: PathHeap},
			ToHost:  true,
			Project: []rel.Attr{rel.Unique1},
		}}
	}
}

func mustRel(m *Machine, name string) *Relation {
	r, ok := m.Relation(name)
	if !ok {
		panic("missing relation " + name)
	}
	return r
}

func workloadSpec(m *Machine, nRels, tuples, terminals int, ramp sim.Dur) WorkloadSpec {
	return WorkloadSpec{
		Terminals:   terminals,
		PerTerminal: 2,
		Ramp:        ramp,
		Seed:        42,
		Make:        selectionMix(m, nRels, tuples),
	}
}

// TestRunWorkloadDeterministic: identical machine + spec must reproduce the
// full metrics struct (every response time included) exactly.
func TestRunWorkloadDeterministic(t *testing.T) {
	run := func() WorkloadResult {
		m := newWorkloadMachine(t, 2, 2, 6000, true)
		return m.RunWorkload(workloadSpec(m, 2, 6000, 4, 5*sim.Second))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reruns differ:\n%+v\n%+v", a, b)
	}
	if a.Queries != 8 || len(a.Responses) != 8 {
		t.Errorf("queries=%d responses=%d, want 8/8", a.Queries, len(a.Responses))
	}
	if a.Throughput <= 0 || a.MeanResponse <= 0 || a.P95Response < a.MeanResponse/2 {
		t.Errorf("implausible metrics: %+v", a)
	}
}

// TestRunWorkloadAdmissionCap: MaxConcurrent bounds in-flight queries.
func TestRunWorkloadAdmissionCap(t *testing.T) {
	m := newWorkloadMachine(t, 2, 2, 4000, false)
	spec := workloadSpec(m, 2, 4000, 6, 0)
	spec.MaxConcurrent = 2
	out := m.RunWorkload(spec)
	if out.MaxInFlight > 2 {
		t.Errorf("MaxInFlight = %d, cap 2", out.MaxInFlight)
	}
	if out.MaxInFlight < 2 {
		t.Errorf("MaxInFlight = %d; six closed-loop terminals should saturate a cap of 2", out.MaxInFlight)
	}
}

// TestRunWorkloadThinkTime: think time lowers pressure without losing work.
func TestRunWorkloadThinkTime(t *testing.T) {
	m := newWorkloadMachine(t, 2, 2, 4000, false)
	spec := workloadSpec(m, 2, 4000, 3, 0)
	spec.Think = 2 * sim.Second
	out := m.RunWorkload(spec)
	if out.Queries != 6 {
		t.Errorf("queries = %d, want 6", out.Queries)
	}
	if out.Elapsed < 2*sim.Second {
		t.Errorf("elapsed %v shorter than one think time", out.Elapsed)
	}
}

// TestSharedScanThroughputGain is the PR's acceptance criterion: at
// multiprogramming level 8 on a selection-heavy mix, shared scans must at
// least double closed-loop throughput over private scans, and the result
// tuples must match exactly. The simulation is deterministic, so the
// measured gain is a constant of the code, not a flaky measurement.
func TestSharedScanThroughputGain(t *testing.T) {
	const nRels, tuples, terminals = 4, 40000, 8
	run := func(shared bool) WorkloadResult {
		m := newWorkloadMachine(t, 4, nRels, tuples, shared)
		return m.RunWorkload(workloadSpec(m, nRels, tuples, terminals, 20*sim.Second))
	}
	private := run(false)
	sharedr := run(true)
	if sharedr.Tuples != private.Tuples {
		t.Fatalf("shared mix returned %d tuples, private %d", sharedr.Tuples, private.Tuples)
	}
	gain := sharedr.Throughput / private.Throughput
	if gain < 2 {
		t.Errorf("shared/private throughput = %.2f (%.3f vs %.3f q/s), want >= 2",
			gain, sharedr.Throughput, private.Throughput)
	}
	if sharedr.SharedPagesSaved <= 0 {
		t.Errorf("shared run saved %d pages", sharedr.SharedPagesSaved)
	}
	if private.SharedPagesSaved != 0 {
		t.Errorf("private run reports %d saved pages", private.SharedPagesSaved)
	}
}
