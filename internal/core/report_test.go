package core

import (
	"strings"
	"testing"

	"gamma/internal/rel"
)

func TestUtilizationReport(t *testing.T) {
	m, r := newMachineWithRel(2, 2, 2000)
	snap := m.SnapshotUtil()
	m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 199), Path: PathHeap}})
	var sb strings.Builder
	m.WriteUtilization(&sb, snap)
	out := sb.String()
	for _, want := range []string{"host", "scheduler", "disk", "diskless", "ring", "seqR="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// A heap scan at 4 KB pages must show the drives as the busiest
	// resource class (§5.2.2: disk-bound).
	if !strings.Contains(out, "%") {
		t.Error("no utilization percentages")
	}
}

func TestSnapshotDeltasIsolateQueries(t *testing.T) {
	m, r := newMachineWithRel(2, 0, 1000)
	m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap}})
	snap := m.SnapshotUtil() // after the first query
	var sb strings.Builder
	m.WriteUtilization(&sb, snap)
	if !strings.Contains(sb.String(), "empty window") {
		t.Errorf("no-op window should report empty, got:\n%s", sb.String())
	}
}
