package core

import (
	"gamma/internal/nose"
	"gamma/internal/sim"
)

// Recovery implements the log-record collection §8 announces as future work:
// "we intend on implementing a recovery server that will collect log records
// from each processor". When enabled, every operator that mutates permanent
// data ships log records to a dedicated recovery-server processor, which
// appends them to a sequential log volume.
//
// The paper identifies Gamma's missing recovery as one of its two "most
// glaring deficiencies" and notes that its update numbers (Table 3) include
// only partial recovery; the `recovery` benchmark quantifies what the full
// machinery would have cost.
type Recovery struct {
	m      *Machine
	Server *nose.Node
	// buffered bytes per source node, flushed in log-page units.
	pending map[int]int
	logPage int
	// Stats.
	Records  int64
	LogBytes int64
	// Flushes counts every log page shipped to the server; Forces counts
	// the subset that were synchronous commit-point flushes.
	Flushes int64
	Forces  int64
}

// logRecordHeader is the per-record framing overhead.
const logRecordHeader = 16

// EnableRecovery attaches a recovery server on its own processor (with a
// drive for the log volume) and returns it. Idempotent.
func (m *Machine) EnableRecovery() *Recovery {
	if m.rec != nil {
		return m.rec
	}
	server := m.Net.AddNode(true, m.Prm.Disk)
	m.rec = &Recovery{m: m, Server: server, pending: map[int]int{}}
	return m.rec
}

// RecoveryEnabled reports whether log shipping is active.
func (m *Machine) RecoveryEnabled() bool { return m.rec != nil }

// logRecord ships one log record of the given payload size from node to the
// recovery server. Records are buffered into page-sized batches per source;
// each batch costs a network transfer plus a sequential write on the log
// volume, with the server's CPU charged asynchronously.
func (m *Machine) logRecord(p *sim.Proc, node *nose.Node, payload int) {
	r := m.rec
	if r == nil {
		return
	}
	size := payload + logRecordHeader
	r.Records++
	r.LogBytes += int64(size)
	r.pending[node.ID] += size
	if r.pending[node.ID] < m.Prm.PageBytes {
		return
	}
	r.pending[node.ID] = 0
	r.flush(p, node, false)
}

// flush sends one log page from node to the server. A forced flush (commit
// point) is synchronous — the committing operator waits for the server's CPU
// and the log write; a background flush charges both asynchronously.
func (r *Recovery) flush(p *sim.Proc, node *nose.Node, force bool) {
	m := r.m
	r.Flushes++
	m.Net.TransferBulk(p, node, r.Server, m.Prm.PageBytes)
	if force {
		r.Forces++
		r.Server.UseCPU(p, m.Prm.Engine.InstrPerPageIO)
		r.Server.Drive.Write(p, -7, r.logPage, m.Prm.PageBytes)
	} else {
		r.Server.CPU.UseAsync(m.Prm.CPU.Time(m.Prm.Engine.InstrPerPageIO))
		r.Server.Drive.WriteAsync(-7, r.logPage, m.Prm.PageBytes)
	}
	r.logPage++
}

// logForce flushes any buffered records from node (commit point).
func (m *Machine) logForce(p *sim.Proc, node *nose.Node) {
	r := m.rec
	if r == nil || r.pending[node.ID] == 0 {
		return
	}
	r.pending[node.ID] = 0
	r.flush(p, node, true)
}
