package core

import (
	"fmt"
	"sort"

	"gamma/internal/nose"
	"gamma/internal/sim"
)

// This file is the closed-loop multiuser workload driver: N simulated
// terminals each issue a stream of queries drawn from a deterministic
// per-terminal RNG, sleeping for a think time between them, with an
// admission queue capping the number of queries in flight — the classic
// closed-loop throughput harness (Gray, "A Measure of Transaction
// Processing 20 Years Later"). It reports throughput (queries/sec of
// simulated time), mean and p95 response time, and disk/CPU utilization,
// the axes the shared-scan experiment sweeps against multiprogramming
// level.

// WorkloadSpec describes one closed-loop multiuser run.
type WorkloadSpec struct {
	// Terminals is the number of concurrent simulated users (the
	// multiprogramming level when MaxConcurrent doesn't cap below it).
	Terminals int
	// PerTerminal is how many queries each terminal issues back to back.
	PerTerminal int
	// Think is the simulated pause between a query's completion and the
	// terminal's next submission (0 = closed loop at full pressure).
	Think sim.Dur
	// Ramp staggers session starts: each terminal sleeps an RNG-drawn
	// offset in [0, Ramp) before its first query, so the machine sees
	// phase-shifted arrivals (real users are not phase-locked) rather than
	// a simultaneous stampede at t=0.
	Ramp sim.Dur
	// MaxConcurrent caps queries admitted into execution at once; queued
	// submissions wait in FIFO order. 0 means no cap beyond Terminals.
	MaxConcurrent int
	// Seed derives every terminal's private RNG stream, so a run is a pure
	// function of (machine state, spec).
	Seed uint64
	// Make builds terminal term's q-th query. rng is the terminal's
	// deterministic generator; drawing from it is how workloads mix query
	// types and predicate ranges.
	Make func(term, q int, rng func() uint64) ConcurrentQuery
	// KeepResults stores each query's result relation instead of dropping
	// it as soon as the query completes (correctness tests want the
	// relations; throughput sweeps don't, and dropping bounds memory).
	KeepResults bool
}

// WorkloadResult aggregates one closed-loop run.
type WorkloadResult struct {
	Queries int     // queries completed (Terminals × PerTerminal)
	Tuples  int     // result tuples across all queries
	Elapsed sim.Dur // first submission to last completion

	Throughput   float64 // queries per simulated second
	MeanResponse sim.Dur // submission (pre-admission) to completion
	P95Response  sim.Dur

	// Responses holds every query's response time, terminal-major:
	// Responses[term*PerTerminal+q]. Byte-identical across reruns.
	Responses []sim.Dur

	// Completions holds every query's completion instant in completion
	// order, so availability experiments can compute windowed throughput
	// (and its dip around a fault) after the fact.
	Completions []sim.Time

	// Availability classification: Clean queries saw only primary copies,
	// Degraded queries completed correctly but read at least one backup (or
	// retried past a mid-query failure), Failed queries ended with a typed
	// error (no readable copy / retries exhausted). Clean+Degraded+Failed ==
	// Queries. Failed queries contribute no tuples.
	Clean    int
	Degraded int
	Failed   int

	// MaxInFlight is the highest number of concurrently executing queries
	// observed (≤ MaxConcurrent when capped).
	MaxInFlight int

	// Buffer-pool and shared-scan deltas over the run.
	PoolHits           int64
	PoolMisses         int64
	SharedPagesScanned int64
	SharedPagesSaved   int64

	// Mean utilization of the disk drives and of the disk+diskless node
	// CPUs over the run window.
	DiskUtil float64
	CPUUtil  float64
}

// splitmix64 is the per-terminal RNG: tiny, seedable, and ours — workload
// determinism must not depend on math/rand's version-to-version stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// admission is the FIFO gate capping concurrent queries.
type admission struct {
	slots    int
	wq       *sim.WaitQ
	inFlight int
	maxSeen  int
}

func (a *admission) acquire(p *sim.Proc) {
	for a.slots == 0 {
		a.wq.Park(p)
	}
	a.slots--
	a.inFlight++
	if a.inFlight > a.maxSeen {
		a.maxSeen = a.inFlight
	}
}

func (a *admission) release() {
	a.slots++
	a.inFlight--
	a.wq.WakeOne()
}

// RunWorkload executes one closed-loop multiuser run to completion and
// returns its aggregate metrics. Pools are reset once at the start (the
// steady-state mix then warms them as a real server would); the simulated
// clock is NOT reset, so a workload composes with earlier queries on the
// same machine.
func (m *Machine) RunWorkload(spec WorkloadSpec) WorkloadResult {
	if spec.Terminals <= 0 {
		panic("core: RunWorkload needs at least one terminal")
	}
	if spec.PerTerminal <= 0 {
		panic("core: RunWorkload needs PerTerminal >= 1")
	}
	if spec.Make == nil {
		panic("core: RunWorkload needs a Make function")
	}
	m.ResetPools()
	hits0, misses0 := m.PoolStats()
	scanned0, delivered0 := m.SharedScanStats()
	cpu0, disk0 := m.busySnapshot()

	slots := spec.MaxConcurrent
	if slots <= 0 || slots > spec.Terminals {
		slots = spec.Terminals
	}
	adm := &admission{slots: slots, wq: m.Sim.NewWaitQ("admission")}

	total := spec.Terminals * spec.PerTerminal
	responses := make([]sim.Dur, total)
	completions := make([]sim.Time, 0, total)
	start := m.Sim.Now()
	var lastDone sim.Time
	tuples := 0
	clean, degraded, failed := 0, 0, 0
	for term := 0; term < spec.Terminals; term++ {
		term := term
		state := spec.Seed + uint64(term)*0x9E3779B97F4A7C15 + 1
		rng := func() uint64 { return splitmix64(&state) }
		m.Sim.SpawnOn(m.Host.Part, fmt.Sprintf("terminal%d", term), func(p *sim.Proc) {
			if spec.Ramp > 0 {
				p.Sleep(sim.Dur(rng() % uint64(spec.Ramp)))
			}
			for q := 0; q < spec.PerTerminal; q++ {
				cq := spec.Make(term, q, rng)
				submitted := p.Now()
				adm.acquire(p)
				var res Result
				var body func(*sim.Proc, *inbox, *nose.Port)
				switch {
				case cq.Select != nil:
					body = m.selectBody(*cq.Select, &res)
				case cq.Join != nil:
					body = m.joinBody(*cq.Join, &res)
				default:
					panic("core: empty ConcurrentQuery from WorkloadSpec.Make")
				}
				done := false
				doneQ := m.Sim.NewWaitQ("query-done")
				m.launchQueryDone(&res, body, func() {
					done = true
					doneQ.WakeOne()
				})
				for !done {
					doneQ.Park(p)
				}
				adm.release()
				now := p.Now()
				responses[term*spec.PerTerminal+q] = now - submitted
				completions = append(completions, now)
				if now > lastDone {
					lastDone = now
				}
				switch {
				case res.Err != nil:
					failed++
				case res.Degraded || res.Attempts > 1:
					degraded++
					tuples += res.Tuples
				default:
					clean++
					tuples += res.Tuples
				}
				if !spec.KeepResults && res.ResultName != "" {
					m.Drop(res.ResultName)
				}
				if spec.Think > 0 && q+1 < spec.PerTerminal {
					p.Sleep(spec.Think)
				}
			}
		})
	}
	m.Sim.Run()

	out := WorkloadResult{
		Queries:     total,
		Tuples:      tuples,
		Elapsed:     lastDone - start,
		Responses:   responses,
		Completions: completions,
		Clean:       clean,
		Degraded:    degraded,
		Failed:      failed,
	}
	if out.Elapsed > 0 {
		out.Throughput = float64(total) / out.Elapsed.Seconds()
	}
	var sum sim.Dur
	for _, r := range responses {
		sum += r
	}
	out.MeanResponse = sum / sim.Dur(total)
	sorted := append([]sim.Dur(nil), responses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (total*95 + 99) / 100
	if idx > total {
		idx = total
	}
	out.P95Response = sorted[idx-1]
	out.MaxInFlight = adm.maxSeen

	hits1, misses1 := m.PoolStats()
	out.PoolHits = hits1 - hits0
	out.PoolMisses = misses1 - misses0
	scanned1, delivered1 := m.SharedScanStats()
	out.SharedPagesScanned = scanned1 - scanned0
	out.SharedPagesSaved = (delivered1 - delivered0) - (scanned1 - scanned0)

	cpu1, disk1 := m.busySnapshot()
	if out.Elapsed > 0 {
		nCPU := len(m.Disk) + len(m.Diskless)
		out.CPUUtil = (cpu1 - cpu0).Seconds() / (out.Elapsed.Seconds() * float64(nCPU))
		out.DiskUtil = (disk1 - disk0).Seconds() / (out.Elapsed.Seconds() * float64(len(m.Disk)))
	}
	return out
}

// busySnapshot sums cumulative busy time over the disk+diskless node CPUs
// and over the disk drives.
func (m *Machine) busySnapshot() (cpu, disk sim.Dur) {
	for _, nd := range m.Disk {
		b, _, _ := nd.CPU.Stats()
		cpu += b
		db, _, _ := nd.Drive.Resource().Stats()
		disk += db
	}
	for _, nd := range m.Diskless {
		b, _, _ := nd.CPU.Stats()
		cpu += b
	}
	return cpu, disk
}
