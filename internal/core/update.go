package core

import (
	"fmt"

	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wiss"
)

// UpdateKind is one of the Table 3 single-tuple update operations.
type UpdateKind int

const (
	// AppendTuple adds one tuple to the relation.
	AppendTuple UpdateKind = iota
	// DeleteByKey removes the tuple whose partitioning-attribute value is
	// Key, locating it through the clustered index.
	DeleteByKey
	// ModifyKeyAttr changes the partitioning attribute itself: the tuple
	// must be relocated to a different processor and every secondary
	// index updated (Table 3, row 4).
	ModifyKeyAttr
	// ModifyNonIndexed changes a non-indexed attribute of the tuple with
	// partitioning key Key (row 5).
	ModifyNonIndexed
	// ModifyIndexed changes an attribute that carries a non-clustered
	// index, using that index to locate the tuple (row 6) — the Halloween
	// problem case, handled with a deferred update file (§7).
	ModifyIndexed
)

func (k UpdateKind) String() string {
	switch k {
	case AppendTuple:
		return "append"
	case DeleteByKey:
		return "delete"
	case ModifyKeyAttr:
		return "modify-key"
	case ModifyNonIndexed:
		return "modify-nonindexed"
	default:
		return "modify-indexed"
	}
}

// UpdateQuery is a single-tuple update.
type UpdateQuery struct {
	Rel  *Relation
	Kind UpdateKind
	// Tuple is the tuple to append (AppendTuple).
	Tuple rel.Tuple
	// Key locates the victim: the partitioning-attribute value for
	// DeleteByKey / ModifyKeyAttr / ModifyNonIndexed, or the indexed
	// attribute's current value for ModifyIndexed.
	Key int32
	// Attr is the attribute modified (Modify* kinds).
	Attr rel.Attr
	// NewValue is the attribute's new value (Modify* kinds).
	NewValue int32
}

// updateDone reports a finished update operator.
type updateDone struct {
	site    int
	changed int
}

// relocated carries a tuple being moved between sites by ModifyKeyAttr.
type relocated struct {
	tuple rel.Tuple
}

// siteForValue returns the fragment index holding partitioning value v.
func (r *Relation) siteForValue(v int32) int {
	switch r.Strategy {
	case Hashed:
		return int(rel.Hash64(v, LoadSeed) % uint64(len(r.Frags)))
	case RangeUser, RangeUniform:
		return rangeSite(r.Bounds, v)
	default:
		return 0 // round-robin: no placement knowledge; caller scans
	}
}

// deferredApply models Gamma's deferred update file for index maintenance
// (§7): the index change is logged to a per-query deferred file, the file
// and its catalog entry are forced to disk, the entries are re-read at
// commit, applied to the index structure, and the updated index page is
// forced. Calibrated against the Table 3 row-1/row-2 gap (~0.42 s for one
// index), which the paper attributes entirely to this machinery.
func deferredApply(p *sim.Proc, st *wiss.Store, apply func()) {
	prm := st.Params()
	drive := st.Node().Drive
	st.Node().UseCPU(p, prm.Engine.InstrPerPageIO*6)
	f := st.CreateFile("deferred")
	drive.Write(p, f.ID, 0, prm.PageBytes) // create + log the deferred entry
	drive.Write(p, f.ID, 2, prm.PageBytes) // catalog/directory force
	drive.Write(p, f.ID, 4, prm.PageBytes) // force at commit
	drive.Read(p, f.ID, 0, prm.PageBytes)  // re-read and apply
	apply()
	drive.Write(p, f.ID, 6, prm.PageBytes) // force the applied index change
	st.DropFile(f)
}

// ccOverhead charges an update operator's concurrency-control work (§7:
// Gamma ran the update tests with full concurrency control): lock manager
// CPU plus one commit-record write.
func ccOverhead(p *sim.Proc, m *Machine, frag *Fragment) {
	st := m.StoreOf(frag.Node)
	frag.Node.UseCPU(p, 20000)
	st.Node().Drive.Write(p, -9, frag.Node.ID*2, m.Prm.PageBytes)
	m.logForce(p, frag.Node) // commit point: force shipped log records
}

// locateByClustered finds the tuple with partAttr == key through the
// clustered index (or by scanning if none exists) and returns its RID.
func locateByClustered(p *sim.Proc, m *Machine, frag *Fragment, attr rel.Attr, key int32) (wiss.RID, rel.Tuple, bool) {
	if bt, ok := frag.Indexes[attr]; ok && bt.Kind == wiss.Clustered {
		start := bt.StartPage(p, key)
		end := start + 1
		if frag.File.Unordered {
			start, end = 0, frag.File.Pages()
		}
		if end > frag.File.Pages() {
			end = frag.File.Pages()
		}
		for pn := start; pn < end; pn++ {
			pg := frag.File.ReadPage(p, pn)
			frag.Node.UseCPU(p, m.Prm.Engine.InstrPerTupleScan*len(pg.Tuples))
			for s, t := range pg.Tuples {
				if pg.Live(s) && t.Get(attr) == key {
					return wiss.RID{Page: int32(pn), Slot: int32(s)}, t, true
				}
			}
		}
		return wiss.RID{}, rel.Tuple{}, false
	}
	for pn := 0; pn < frag.File.Pages(); pn++ {
		pg := frag.File.ReadPage(p, pn)
		frag.Node.UseCPU(p, m.Prm.Engine.InstrPerTupleScan*len(pg.Tuples))
		for s, t := range pg.Tuples {
			if pg.Live(s) && t.Get(attr) == key {
				return wiss.RID{Page: int32(pn), Slot: int32(s)}, t, true
			}
		}
	}
	return wiss.RID{}, rel.Tuple{}, false
}

// insertTuple places t in the fragment, maintaining every index: through the
// clustered index into the proper page (or an overflow page), and entry
// inserts into each dense secondary index via the deferred update file.
func insertTuple(p *sim.Proc, m *Machine, frag *Fragment, t rel.Tuple) {
	m.logRecord(p, frag.Node, m.Prm.TupleBytes)
	st := m.StoreOf(frag.Node)
	var rid wiss.RID
	placed := false
	if bt, ok := clusteredIndexOf(frag); ok {
		key := t.Get(bt.Attr)
		page := bt.StartPage(p, key)
		if frag.File.Pages() > 0 {
			if r, ok := frag.File.InsertIntoPage(p, page, t); ok {
				rid, placed = r, true
			}
		}
		if !placed {
			rid = frag.File.AppendNewPage(p, t)
			bt.InsertClusteredEntry(p, key, rid.Page)
			placed = true
		}
	} else {
		// Heap: append to the last page, or start a new one.
		if n := frag.File.Pages(); n > 0 {
			if r, ok := frag.File.InsertIntoPage(p, n-1, t); ok {
				rid, placed = r, true
			}
		}
		if !placed {
			rid = frag.File.AppendNewPage(p, t)
		}
	}
	for _, bt := range frag.Indexes {
		if bt.Kind != wiss.NonClustered {
			continue
		}
		bt := bt
		deferredApply(p, st, func() {
			bt.InsertEntry(p, t.Get(bt.Attr), rid)
		})
	}
}

func clusteredIndexOf(frag *Fragment) (*wiss.BTree, bool) {
	for _, bt := range frag.Indexes {
		if bt.Kind == wiss.Clustered {
			return bt, true
		}
	}
	return nil, false
}

// deleteTuple tombstones the tuple at rid and removes its secondary index
// entries through the deferred update file.
func deleteTuple(p *sim.Proc, m *Machine, frag *Fragment, rid wiss.RID, t rel.Tuple) {
	m.logRecord(p, frag.Node, m.Prm.TupleBytes)
	st := m.StoreOf(frag.Node)
	frag.File.DeleteRID(p, rid)
	for _, bt := range frag.Indexes {
		if bt.Kind != wiss.NonClustered {
			continue
		}
		bt := bt
		deferredApply(p, st, func() {
			bt.DeleteEntry(p, t.Get(bt.Attr), rid)
		})
	}
}

// RunUpdate executes a single-tuple update query (§7, Table 3).
func (m *Machine) RunUpdate(q UpdateQuery) Result {
	var res Result
	m.runQuery(&res, func(p *sim.Proc, ib *inbox, schedPort *nose.Port) {
		switch q.Kind {
		case AppendTuple:
			site := q.Rel.siteForValue(q.Tuple.Get(q.Rel.PartAttr))
			frag := q.Rel.Frags[site]
			m.initOp(p, frag.Node)
			m.spawnOn(p, frag.Node, fmt.Sprintf("append@%d", frag.Node.ID), func(up *sim.Proc) {
				insertTuple(up, m, frag, q.Tuple)
				ccOverhead(up, m, frag)
				q.Rel.N++
				nose.SendCtl(up, frag.Node, schedPort, updateDone{site: site, changed: 1})
			})
			res.Tuples = ib.waitUpdates(1)[0].changed

		case DeleteByKey:
			site := q.Rel.siteForValue(q.Key)
			frag := q.Rel.Frags[site]
			m.initOp(p, frag.Node)
			m.spawnOn(p, frag.Node, fmt.Sprintf("delete@%d", frag.Node.ID), func(up *sim.Proc) {
				changed := 0
				if rid, t, ok := locateByClustered(up, m, frag, q.Rel.PartAttr, q.Key); ok {
					deleteTuple(up, m, frag, rid, t)
					ccOverhead(up, m, frag)
					q.Rel.N--
					changed = 1
				}
				nose.SendCtl(up, frag.Node, schedPort, updateDone{site: site, changed: changed})
			})
			res.Tuples = ib.waitUpdates(1)[0].changed

		case ModifyKeyAttr:
			oldSite := q.Rel.siteForValue(q.Key)
			newSite := q.Rel.siteForValue(q.NewValue)
			oldFrag, newFrag := q.Rel.Frags[oldSite], q.Rel.Frags[newSite]
			relocPort := newFrag.Node.NewPort("relocate")
			m.initOp(p, newFrag.Node)
			m.spawnOn(p, newFrag.Node, fmt.Sprintf("modkey-in@%d", newFrag.Node.ID), func(up *sim.Proc) {
				msg := relocPort.Recv(up)
				rl, ok := msg.Payload.(relocated)
				changed := 0
				if ok {
					insertTuple(up, m, newFrag, rl.tuple)
					ccOverhead(up, m, newFrag)
					changed = 1
				}
				nose.SendCtl(up, newFrag.Node, schedPort, updateDone{site: newSite, changed: changed})
			})
			m.initOp(p, oldFrag.Node)
			m.spawnOn(p, oldFrag.Node, fmt.Sprintf("modkey-out@%d", oldFrag.Node.ID), func(up *sim.Proc) {
				conn := oldFrag.Node.Dial(relocPort)
				if rid, t, ok := locateByClustered(up, m, oldFrag, q.Rel.PartAttr, q.Key); ok {
					deleteTuple(up, m, oldFrag, rid, t)
					t.Set(q.Rel.PartAttr, q.NewValue)
					if q.Attr != q.Rel.PartAttr {
						t.Set(q.Attr, q.NewValue)
					}
					conn.Send(up, nose.Data, relocated{tuple: t}, m.Prm.TupleBytes)
				} else {
					conn.Send(up, nose.Data, "not-found", eosBytes)
				}
				nose.SendCtl(up, oldFrag.Node, schedPort, updateDone{site: oldSite, changed: 0})
			})
			for _, d := range ib.waitUpdates(2) {
				res.Tuples += d.changed
			}

		case ModifyNonIndexed:
			site := q.Rel.siteForValue(q.Key)
			frag := q.Rel.Frags[site]
			m.initOp(p, frag.Node)
			m.spawnOn(p, frag.Node, fmt.Sprintf("modify@%d", frag.Node.ID), func(up *sim.Proc) {
				changed := 0
				if rid, t, ok := locateByClustered(up, m, frag, q.Rel.PartAttr, q.Key); ok {
					t.Set(q.Attr, q.NewValue)
					m.logRecord(up, frag.Node, 2*m.Prm.TupleBytes) // before/after images
					frag.File.UpdateRID(up, rid, t)
					ccOverhead(up, m, frag)
					changed = 1
				}
				nose.SendCtl(up, frag.Node, schedPort, updateDone{site: site, changed: changed})
			})
			res.Tuples = ib.waitUpdates(1)[0].changed

		case ModifyIndexed:
			// The victim could be on any site; every site probes its
			// dense index, but only the holder does work beyond the
			// index lookup. (The paper's benchmark relations hash on
			// unique1, so a unique2 predicate gives no placement.)
			n := len(q.Rel.Frags)
			for si, frag := range q.Rel.Frags {
				m.initOp(p, frag.Node)
				site, fr := si, frag
				m.spawnOn(p, fr.Node, fmt.Sprintf("modidx@%d", fr.Node.ID), func(up *sim.Proc) {
					changed := 0
					bt, ok := fr.Indexes[q.Attr]
					if ok && bt.Kind == wiss.NonClustered {
						st := m.StoreOf(fr.Node)
						for _, rid := range bt.SearchRIDs(up, q.Key) {
							pg := fr.File.Page(int(rid.Page))
							if !pg.Live(int(rid.Slot)) {
								continue
							}
							t := fr.File.FetchRID(up, rid)
							t.Set(q.Attr, q.NewValue)
							m.logRecord(up, fr.Node, 2*m.Prm.TupleBytes)
							fr.File.UpdateRID(up, rid, t)
							rid, bt := rid, bt
							deferredApply(up, st, func() {
								bt.DeleteEntry(up, q.Key, rid)
								bt.InsertEntry(up, q.NewValue, rid)
							})
							ccOverhead(up, m, fr)
							changed++
						}
					}
					nose.SendCtl(up, fr.Node, schedPort, updateDone{site: site, changed: changed})
				})
			}
			for _, d := range ib.waitUpdates(n) {
				res.Tuples += d.changed
			}
		}
	})
	return res
}
