package core

import (
	"math/rand"
	"testing"

	"gamma/internal/rel"
)

// TestRandomWorkloadAgainstReferenceModel runs a long, seeded-random mixed
// workload (selections on every access path, joins in every mode with random
// memory budgets, aggregates, and all five update kinds) against one machine
// and validates every result against a plain in-memory reference model.
func TestRandomWorkloadAgainstReferenceModel(t *testing.T) {
	const n = 1500
	rng := rand.New(rand.NewSource(42))
	m, r := newMachineWithRel(3, 3, n)
	b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1}, genTuples(300, 9))

	// Reference model: the current live tuples of A, keyed by unique1.
	model := map[int32]rel.Tuple{}
	for _, tp := range r.AllTuples() {
		model[tp.Get(rel.Unique1)] = tp
	}
	bTuples := b.AllTuples()

	countMatching := func(pred rel.Pred) int {
		c := 0
		for _, tp := range model {
			if pred.Match(tp) {
				c++
			}
		}
		return c
	}

	nextKey := int32(n + 1000)
	for step := 0; step < 60; step++ {
		switch rng.Intn(6) {
		case 0: // heap selection
			lo := rng.Int31n(n)
			hi := lo + rng.Int31n(n/4)
			pred := rel.Between(rel.Unique2, lo, hi)
			res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred, Path: PathHeap}, ToHost: true})
			if want := countMatching(pred); res.Tuples != want {
				t.Fatalf("step %d: heap select = %d, model = %d", step, res.Tuples, want)
			}
		case 1: // indexed selection (auto path)
			lo := rng.Int31n(n)
			attr := rel.Unique1
			if rng.Intn(2) == 0 {
				attr = rel.Unique2
			}
			pred := rel.Between(attr, lo, lo+rng.Int31n(50))
			res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred, Path: PathAuto}, ToHost: true})
			if want := countMatching(pred); res.Tuples != want {
				t.Fatalf("step %d: auto select on %v = %d, model = %d", step, attr, res.Tuples, want)
			}
		case 2: // join in a random mode with random memory
			mode := []JoinMode{Local, Remote, AllNodes}[rng.Intn(3)]
			algo := []JoinAlgorithm{SimpleHash, HybridHash}[rng.Intn(2)]
			mem := 8192 + rng.Intn(64*1024)
			res := m.RunJoin(JoinQuery{
				Build: ScanSpec{Rel: b, Pred: rel.True(), Path: PathHeap}, BuildAttr: rel.Unique2,
				Probe: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap}, ProbeAttr: rel.Unique2,
				Mode: mode, Algorithm: algo, MemPerJoinBytes: mem,
			})
			want := 0
			byVal := map[int32]int{}
			for _, tp := range bTuples {
				byVal[tp.Get(rel.Unique2)]++
			}
			for _, tp := range model {
				want += byVal[tp.Get(rel.Unique2)]
			}
			if res.Tuples != want {
				t.Fatalf("step %d: join (%v/%v/mem=%d) = %d, model = %d", step, mode, algo, mem, res.Tuples, want)
			}
			m.Drop(res.ResultName)
		case 3: // aggregate
			res := m.RunAgg(AggQuery{Scan: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap}, Fn: Count, Attr: rel.Unique1, Mode: Remote})
			if int(res.Groups[0]) != len(model) {
				t.Fatalf("step %d: count = %d, model = %d", step, res.Groups[0], len(model))
			}
		case 4: // append or delete
			if rng.Intn(2) == 0 {
				var tp rel.Tuple
				nextKey++
				tp.Set(rel.Unique1, nextKey)
				tp.Set(rel.Unique2, nextKey)
				if res := m.RunUpdate(UpdateQuery{Rel: r, Kind: AppendTuple, Tuple: tp}); res.Tuples != 1 {
					t.Fatalf("step %d: append failed", step)
				}
				model[nextKey] = tp
			} else if len(model) > 0 {
				// Delete a key known to the model.
				var victim int32 = -1
				for k := range model {
					victim = k
					break
				}
				res := m.RunUpdate(UpdateQuery{Rel: r, Kind: DeleteByKey, Key: victim})
				if res.Tuples != 1 {
					t.Fatalf("step %d: delete of existing key %d failed", step, victim)
				}
				delete(model, victim)
			}
		case 5: // modify a non-indexed attribute
			if len(model) > 0 {
				var victim int32 = -1
				for k := range model {
					victim = k
					break
				}
				newVal := rng.Int31n(1000)
				res := m.RunUpdate(UpdateQuery{Rel: r, Kind: ModifyNonIndexed, Key: victim, Attr: rel.OddOnePercent, NewValue: newVal})
				if res.Tuples != 1 {
					t.Fatalf("step %d: modify of key %d failed", step, victim)
				}
				tp := model[victim]
				tp.Set(rel.OddOnePercent, newVal)
				model[victim] = tp
			}
		}
	}
	// Final full reconciliation.
	if r.Count() != len(model) {
		t.Fatalf("final count %d, model %d", r.Count(), len(model))
	}
	seen := map[int32]rel.Tuple{}
	for _, tp := range r.AllTuples() {
		seen[tp.Get(rel.Unique1)] = tp
	}
	for k, want := range model {
		if got, ok := seen[k]; !ok || got != want {
			t.Fatalf("key %d: machine has %v, model has %v", k, got, want)
		}
	}
}
