package core

import (
	"testing"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// poolPages sums the buffer-pool residency across every disk site.
func poolPages(m *Machine) int {
	total := 0
	for _, nd := range m.Disk {
		total += m.StoreOf(nd).Pool().Len()
	}
	return total
}

// TestDropReleasesPoolPages: dropping a relation evicts every page it holds
// in the buffer pools, including its chained-declustered backups.
func TestDropReleasesPoolPages(t *testing.T) {
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, 4, 0)
	m.EnableMirroring()
	r := m.Load(LoadSpec{Name: "A", Strategy: Hashed, PartAttr: rel.Unique1}, wisconsin.Generate(2000, 1))
	if len(r.Backups) != len(r.Frags) {
		t.Fatalf("mirrored load built %d backups for %d fragments", len(r.Backups), len(r.Frags))
	}
	// Touch primaries and backups so pages are resident.
	m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap}, ToHost: true})
	m.CrashDisk(1)
	m.EnableFailover(0)
	m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.True(), Path: PathHeap}, ToHost: true})
	if poolPages(m) == 0 {
		t.Fatal("no resident pages after scans; test is vacuous")
	}
	before := poolPages(m)
	m.Drop("A")
	if _, ok := m.Relation("A"); ok {
		t.Error("relation still catalogued after Drop")
	}
	if after := poolPages(m); after >= before {
		t.Errorf("pool pages %d -> %d: Drop released nothing", before, after)
	}
}

// TestAbortCleanup: a mid-query crash aborts the first attempt; the retry
// must leave the catalog holding exactly the loaded relation plus the final
// result, and the buffer pools must not leak the aborted partial result.
func TestAbortCleanup(t *testing.T) {
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, 4, 2)
	m.EnableMirroring()
	r := m.Load(LoadSpec{Name: "A", Strategy: Hashed, PartAttr: rel.Unique1}, wisconsin.Generate(5000, 1))
	m.EnableFailover(0)

	// Fault-free timing reference for placing the crash mid-query.
	ref := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 499), Path: PathHeap}})
	m.Drop(ref.ResultName)
	m.ResetPools()

	m.Sim.At(m.Sim.Now()+sim.Time(ref.Elapsed/2), func() { m.CrashDisk(2) })
	res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 499), Path: PathHeap}})

	if res.Tuples != ref.Tuples {
		t.Errorf("retried select returned %d tuples, want %d", res.Tuples, ref.Tuples)
	}
	want := map[string]bool{"A": true, res.ResultName: true}
	for _, name := range m.Relations() {
		if !want[name] {
			t.Errorf("stray catalog entry %q after abort/retry (all: %v)", name, m.Relations())
		}
		delete(want, name)
	}
	for name := range want {
		t.Errorf("catalog missing %q after abort/retry", name)
	}

	// The retried result must be a complete, independent relation.
	got, _ := m.Relation(res.ResultName)
	if got.Count() != res.Tuples {
		t.Errorf("result fragments hold %d tuples, want %d", got.Count(), res.Tuples)
	}
}

// TestRecreateSameNameIndependent: dropping a named result and re-running
// the query under the same name yields a fresh relation, not a view of the
// dropped one's storage.
func TestRecreateSameNameIndependent(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 1000)
	q := SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 99), Path: PathHeap}, ResultName: "out"}
	res1 := m.RunSelect(q)
	first, _ := m.Relation("out")
	m.Drop("out")
	res2 := m.RunSelect(q)
	second, _ := m.Relation("out")
	if res1.Tuples != res2.Tuples {
		t.Errorf("re-created relation has %d tuples, want %d", res2.Tuples, res1.Tuples)
	}
	if second.Count() != res2.Tuples {
		t.Errorf("re-created fragments hold %d tuples, want %d", second.Count(), res2.Tuples)
	}
	for i, fr := range second.Frags {
		if i < len(first.Frags) && fr.File == first.Frags[i].File {
			t.Errorf("fragment %d shares its file with the dropped relation", i)
		}
	}
}
