package core

import (
	"reflect"
	"strings"
	"testing"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// mixedBatch is a selection-heavy concurrent mix over relation a (three heap
// selections with different, overlapping predicates) plus a join probing a —
// the SharedDB scenario: every heap pass over a's fragments can share one
// cursor.
func mixedBatch(a, b *Relation) []ConcurrentQuery {
	s1 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 99), Path: PathHeap}}
	s2 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 100, 299), Path: PathHeap}}
	s3 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 50, 149), Path: PathHeap}}
	j := JoinQuery{
		Build: ScanSpec{Rel: b, Pred: rel.True(), Path: PathHeap}, BuildAttr: rel.Unique2,
		Probe: ScanSpec{Rel: a, Pred: rel.True(), Path: PathHeap}, ProbeAttr: rel.Unique2,
		Mode: Remote,
	}
	return []ConcurrentQuery{{Select: &s1}, {Select: &s2}, {Select: &s3}, {Join: &j}}
}

// TestSharedScanResultsMatchPrivate: turning sharing on must change I/O
// timing only — every query's result set is identical to a private-scan run.
func TestSharedScanResultsMatchPrivate(t *testing.T) {
	run := func(shared bool) (*Machine, []Result) {
		m, a := newTestMachine(t, 4, 4, 2000)
		b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1}, genTuples(200, 7))
		if shared {
			m.EnableSharedScans()
		}
		return m, m.RunConcurrent(mixedBatch(a, b))
	}
	mPriv, priv := run(false)
	mShared, shared := run(true)
	for i := range priv {
		if priv[i].Tuples != shared[i].Tuples {
			t.Errorf("query %d: private %d tuples, shared %d", i, priv[i].Tuples, shared[i].Tuples)
		}
		rp, okP := mPriv.Relation(priv[i].ResultName)
		rs, okS := mShared.Relation(shared[i].ResultName)
		if okP != okS {
			t.Fatalf("query %d: result relation presence differs", i)
		}
		if !okP {
			continue
		}
		tp, ts := rp.AllTuples(), rs.AllTuples()
		rel.SortByAttr(tp, rel.Unique1)
		rel.SortByAttr(ts, rel.Unique1)
		if !reflect.DeepEqual(tp, ts) {
			t.Errorf("query %d: result tuples differ (private %d, shared %d)", i, len(tp), len(ts))
		}
	}
	if scanned, delivered := mShared.SharedScanStats(); delivered <= scanned {
		t.Errorf("shared run saved no page reads: scanned=%d delivered=%d", scanned, delivered)
	}
	if scanned, delivered := mPriv.SharedScanStats(); scanned != 0 || delivered != 0 {
		t.Errorf("private run has shared-scan counters: %d/%d", scanned, delivered)
	}
}

// TestSharedScanTraceAttribution: attach/detach events land in the trace
// and Diagnose sums saved pages over the window.
func TestSharedScanTraceAttribution(t *testing.T) {
	m, a := newTestMachine(t, 4, 0, 2000)
	col := m.EnableTrace()
	m.EnableSharedScans()
	s1 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 99), Path: PathHeap}}
	s2 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 100, 299), Path: PathHeap}}
	m.RunConcurrent([]ConcurrentQuery{{Select: &s1}, {Select: &s2}})

	evs := col.SharedScans()
	attaches, detaches := 0, 0
	for _, e := range evs {
		switch e.Class {
		case "attach":
			attaches++
		case "detach":
			detaches++
		default:
			t.Errorf("unexpected shared-scan class %q", e.Class)
		}
		if e.Kind != trace.KindSharedScan {
			t.Errorf("event kind = %q", e.Kind)
		}
	}
	// Two queries × four fragments: eight riders, each attaching once.
	if attaches != 8 || detaches != 8 {
		t.Fatalf("attaches=%d detaches=%d, want 8/8", attaches, detaches)
	}
	v := col.Diagnose(0, int64(m.Sim.Now()))
	if v.SharedAttaches != 8 {
		t.Errorf("verdict attaches = %d, want 8", v.SharedAttaches)
	}
	if v.SharedSavedPages <= 0 {
		t.Errorf("verdict saved pages = %d, want > 0", v.SharedSavedPages)
	}
	if !strings.Contains(v.String(), "shared scans:") {
		t.Errorf("verdict string missing shared-scan clause: %q", v.String())
	}
}

// TestSharedScanWrapAround: a rider that attaches mid-scan (serialized host
// startup guarantees staggered operator arrival) still sees every page
// exactly once — its result matches a solo run of the same query.
func TestSharedScanWrapAround(t *testing.T) {
	solo := func() int {
		m, a := newTestMachine(t, 2, 0, 3000)
		return m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 500, 999), Path: PathHeap}}).Tuples
	}()

	m, a := newTestMachine(t, 2, 0, 3000)
	m.EnableSharedScans()
	col := m.EnableTrace()
	q1 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 0, 1499), Path: PathHeap}}
	q2 := SelectQuery{Scan: ScanSpec{Rel: a, Pred: rel.Between(rel.Unique2, 500, 999), Path: PathHeap}}
	rs := m.RunConcurrent([]ConcurrentQuery{{Select: &q1}, {Select: &q2}})
	if rs[1].Tuples != solo {
		t.Errorf("mid-scan attacher returned %d tuples, solo run %d", rs[1].Tuples, solo)
	}
	if rs[0].Tuples != 1500 {
		t.Errorf("leader returned %d tuples, want 1500", rs[0].Tuples)
	}
	midScan := false
	for _, e := range col.SharedScans() {
		if e.Class == "attach" && e.Page != 0 {
			midScan = true
		}
	}
	if !midScan {
		t.Error("no rider attached mid-scan; wrap-around path not exercised")
	}
}

// TestSharedScanOffByDefault: a fresh machine never shares.
func TestSharedScanOffByDefault(t *testing.T) {
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, 2, 0)
	if m.SharedScansEnabled() {
		t.Fatal("sharing enabled without EnableSharedScans")
	}
	m.EnableSharedScans()
	if !m.SharedScansEnabled() {
		t.Fatal("EnableSharedScans did not stick")
	}
}
