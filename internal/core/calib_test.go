package core

import (
	"testing"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// TestCalibrationTable1 checks the standard configuration (8 disk
// processors, 4 KB pages) against Table 1's Gamma column for the 100,000
// tuple relation, within generous bands — tight agreement is recorded in
// EXPERIMENTS.md, this test is a regression guard for the cost model.
func TestCalibrationTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs the 100k relation")
	}
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, 8, 8)
	u1 := rel.Unique1
	r := m.Load(LoadSpec{
		Name: "A", Strategy: Hashed, PartAttr: rel.Unique1,
		ClusteredIndex: &u1, NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(100000, 1))

	check := func(name string, got sim.Dur, paper float64) {
		t.Logf("%-45s %8.2fs (paper %6.2fs)", name, got.Seconds(), paper)
		if got.Seconds() < paper/2.5 || got.Seconds() > paper*2.5 {
			t.Errorf("%s: %.2fs out of band vs paper %.2fs", name, got.Seconds(), paper)
		}
	}

	sel1 := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 999), Path: PathHeap}})
	check("1% nonindexed selection", sel1.Elapsed, 13.83)

	sel10 := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 9999), Path: PathHeap}})
	check("10% nonindexed selection", sel10.Elapsed, 17.44)

	selNC := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 999), Path: PathNonClustered}})
	check("1% selection non-clustered index", selNC.Elapsed, 5.32)

	selC1 := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 999), Path: PathClustered}})
	check("1% selection clustered index", selC1.Elapsed, 1.25)

	selC10 := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 9999), Path: PathClustered}})
	check("10% selection clustered index", selC10.Elapsed, 7.27)

	single := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, 4242), Path: PathClustered}, ToHost: true})
	check("single tuple select", single.Elapsed, 0.15)
}
