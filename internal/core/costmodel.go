package core

import (
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wiss"
)

// The optimizer's analytic cost model: closed-form estimates of a scan's
// per-site cost, used by resolveScan to pick access paths (the paper's
// optimizer makes exactly these trade-offs in §5.1: ~100 random I/Os for an
// indexed 1% selection vs 589 sequential pages for the segment scan).

// EstimateScan predicts the busiest site's processing time for a scan under
// a given access path — I/O and CPU only, excluding startup and result
// shipping (which are path-independent).
func (m *Machine) EstimateScan(r *Relation, pred rel.Pred, path AccessPath) sim.Dur {
	prm := m.Prm
	sites := len(r.Frags)
	if sites == 0 {
		return 0
	}
	nSite := (r.N + sites - 1) / sites
	tpp := prm.TuplesPerPage()
	pagesSite := (nSite + tpp - 1) / tpp
	matchSite := int(pred.Selectivity(r.N) * float64(nSite))

	seqPage := prm.Disk.SeqPos + prm.Disk.TransferTime(prm.PageBytes)
	randPage := prm.Disk.RandPos + prm.Disk.TransferTime(prm.PageBytes)
	cpuTuple := prm.CPU.Time(prm.Engine.InstrPerTupleScan + prm.Engine.InstrPerPageIO/tpp)

	height := sim.Dur(2) // typical B-tree height at benchmark scales
	if bt, ok := r.Index(pred.Attr); ok {
		height = sim.Dur(bt.Height())
	}

	switch path {
	case PathHeap:
		// Sequential scan with read-ahead: response ~ max(disk, CPU).
		disk := sim.Dur(pagesSite) * seqPage
		cpu := sim.Dur(nSite) * cpuTuple
		if cpu > disk {
			return cpu
		}
		return disk
	case PathClustered:
		matchPages := sim.Dur((matchSite + tpp - 1) / tpp)
		return height*randPage + matchPages*seqPage + sim.Dur(matchSite)*cpuTuple
	case PathNonClustered:
		// Leaf-chain walk plus one random data access per match, worst
		// case (§5.1: "each tuple causes a page fault").
		leafPages := sim.Dur(matchSite*prm.IndexEntryBytes/prm.PageBytes + 1)
		return height*randPage + leafPages*seqPage + sim.Dur(matchSite)*(randPage+cpuTuple)
	default:
		return 0
	}
}

// cheapestPath returns the access path with the lowest estimated cost among
// those physically available.
func (m *Machine) cheapestPath(r *Relation, pred rel.Pred) AccessPath {
	best, bestCost := PathHeap, m.EstimateScan(r, pred, PathHeap)
	if bt, ok := r.Index(pred.Attr); ok {
		path := PathNonClustered
		if bt.Kind == wiss.Clustered {
			path = PathClustered
		}
		if c := m.EstimateScan(r, pred, path); c < bestCost {
			best, bestCost = path, c
		}
	}
	return best
}
