package core

import (
	"testing"

	"gamma/internal/rel"
)

func TestProjectionKeepsOnlyListedAttributes(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 1000)
	res := m.RunSelect(SelectQuery{
		Scan:    ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 99), Path: PathHeap},
		Project: []rel.Attr{rel.Unique1, rel.Unique2},
	})
	if res.Tuples != 100 {
		t.Fatalf("tuples = %d", res.Tuples)
	}
	out, _ := m.Relation(res.ResultName)
	if out.Width != 8 {
		t.Errorf("result width = %d, want 8 (two int attributes)", out.Width)
	}
	for _, tp := range out.AllTuples() {
		if tp.Get(rel.Unique2) > 99 {
			t.Fatal("non-matching tuple in projected result")
		}
		if tp.Get(rel.Ten) != 0 || tp.Get(rel.OddOnePercent) != 0 {
			t.Fatal("non-projected attribute survived")
		}
	}
}

func TestProjectionReducesCostAndPages(t *testing.T) {
	run := func(project []rel.Attr) (float64, int) {
		m, r := newMachineWithRel(4, 0, 4000)
		res := m.RunSelect(SelectQuery{
			Scan:    ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 999), Path: PathHeap},
			Project: project,
		})
		out, _ := m.Relation(res.ResultName)
		pages := 0
		for _, fr := range out.Frags {
			pages += fr.File.Pages()
		}
		return res.Elapsed.Seconds(), pages
	}
	fullSecs, fullPages := run(nil)
	projSecs, projPages := run([]rel.Attr{rel.Unique1})
	if projSecs >= fullSecs {
		t.Errorf("projected select (%v) not cheaper than full (%v)", projSecs, fullSecs)
	}
	if projPages*5 > fullPages {
		t.Errorf("projected result uses %d pages vs %d full; want far fewer", projPages, fullPages)
	}
}

func TestProjectedResultRelationIsScannable(t *testing.T) {
	m, r := newMachineWithRel(4, 0, 1000)
	res := m.RunSelect(SelectQuery{
		Scan:       ScanSpec{Rel: r, Pred: rel.Between(rel.Unique1, 0, 499), Path: PathClustered},
		Project:    []rel.Attr{rel.Unique1},
		ResultName: "narrow",
	})
	if res.Tuples != 500 {
		t.Fatalf("stored %d", res.Tuples)
	}
	narrow, _ := m.Relation("narrow")
	res2 := m.RunSelect(SelectQuery{
		Scan:   ScanSpec{Rel: narrow, Pred: rel.Between(rel.Unique1, 0, 99), Path: PathHeap},
		ToHost: true,
	})
	if res2.Tuples != 100 {
		t.Errorf("scan of projected relation = %d tuples, want 100", res2.Tuples)
	}
}
