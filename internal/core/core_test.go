package core

import (
	"testing"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wisconsin"
)

// newTestMachine builds a machine and loads one n-tuple relation "A" hashed
// on unique1 with a clustered index on unique1 and a dense index on unique2,
// mirroring the paper's benchmark database.
func newTestMachine(t *testing.T, nDisk, nDiskless, n int) (*Machine, *Relation) {
	t.Helper()
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, nDisk, nDiskless)
	u1 := rel.Unique1
	r := m.Load(LoadSpec{
		Name:                "A",
		Strategy:            Hashed,
		PartAttr:            rel.Unique1,
		ClusteredIndex:      &u1,
		NonClusteredIndexes: []rel.Attr{rel.Unique2},
	}, wisconsin.Generate(n, 1))
	return m, r
}

func TestLoadPartitionsAllTuples(t *testing.T) {
	m, r := newTestMachine(t, 4, 4, 1000)
	if r.Count() != 1000 {
		t.Fatalf("count = %d", r.Count())
	}
	// Hashed declustering should be roughly balanced.
	for i, fr := range r.Frags {
		n := fr.File.Len()
		if n < 150 || n > 350 {
			t.Errorf("fragment %d has %d tuples; want ~250", i, n)
		}
	}
	_ = m
}

func TestSelectHeapCorrectness(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 2000)
	res := m.RunSelect(SelectQuery{
		Scan: ScanSpec{Rel: r, Pred: rel.Between(rel.Unique2, 0, 199), Path: PathHeap},
	})
	if res.Tuples != 200 {
		t.Errorf("heap select returned %d tuples, want 200", res.Tuples)
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed time")
	}
	// Result relation must actually hold the tuples.
	out, ok := m.Relation(res.ResultName)
	if !ok {
		t.Fatal("result relation missing from catalog")
	}
	for _, tp := range out.AllTuples() {
		if u2 := tp.Get(rel.Unique2); u2 > 199 {
			t.Fatalf("result contains non-matching tuple unique2=%d", u2)
		}
	}
	if out.Count() != 200 {
		t.Errorf("stored %d tuples", out.Count())
	}
}

func TestSelectPathsAgree(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 5000)
	pred1 := rel.Between(rel.Unique1, 1000, 1049) // clustered attr
	pred2 := rel.Between(rel.Unique2, 1000, 1049) // non-clustered attr
	heap1 := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred1, Path: PathHeap}})
	clus := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred1, Path: PathClustered}})
	heap2 := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred2, Path: PathHeap}})
	nonc := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: pred2, Path: PathNonClustered}})
	if heap1.Tuples != 50 || clus.Tuples != 50 || heap2.Tuples != 50 || nonc.Tuples != 50 {
		t.Errorf("tuples: heap1=%d clustered=%d heap2=%d nonclustered=%d, want 50 each",
			heap1.Tuples, clus.Tuples, heap2.Tuples, nonc.Tuples)
	}
	if clus.Elapsed >= heap1.Elapsed {
		t.Errorf("clustered select (%v) not faster than heap (%v)", clus.Elapsed, heap1.Elapsed)
	}
	if nonc.Elapsed >= heap2.Elapsed {
		t.Errorf("1%% non-clustered select (%v) not faster than heap (%v)", nonc.Elapsed, heap2.Elapsed)
	}
}

func TestOptimizerPathChoices(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 10000)
	cases := []struct {
		pred rel.Pred
		want AccessPath
	}{
		{rel.True(), PathHeap},
		{rel.Between(rel.Unique1, 0, 99), PathClustered},
		{rel.Between(rel.Unique1, 0, 999), PathClustered},
		{rel.Between(rel.Unique2, 0, 99), PathNonClustered}, // 1%: index wins
		{rel.Between(rel.Unique2, 0, 999), PathHeap},        // 10%: segment scan (§5.2.1)
		{rel.Between(rel.Ten, 3, 3), PathHeap},              // no index on ten
	}
	for _, c := range cases {
		got := m.resolveScan(ScanSpec{Rel: r, Pred: c.pred, Path: PathAuto}).Path
		if got != c.want {
			t.Errorf("pred %v: path = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestExactMatchOnPartitioningAttrUsesOneSite(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 1000)
	frags := m.mustScanSites(ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, 123)})
	if len(frags) != 1 {
		t.Fatalf("exact-match used %d sites, want 1", len(frags))
	}
	// And it must be the right site.
	res := m.RunSelect(SelectQuery{
		Scan:   ScanSpec{Rel: r, Pred: rel.Eq(rel.Unique1, 123), Path: PathClustered},
		ToHost: true,
	})
	if res.Tuples != 1 {
		t.Errorf("single-tuple select returned %d tuples", res.Tuples)
	}
}

func TestZeroPercentSelection(t *testing.T) {
	m, r := newTestMachine(t, 4, 0, 2000)
	res := m.RunSelect(SelectQuery{Scan: ScanSpec{Rel: r, Pred: rel.False(), Path: PathHeap}})
	if res.Tuples != 0 {
		t.Errorf("0%% selection returned %d tuples", res.Tuples)
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed")
	}
}

// expectedJoin computes the reference join cardinality by nested loops.
func expectedJoin(a, b []rel.Tuple, aAttr, bAttr rel.Attr) int {
	byVal := map[int32]int{}
	for _, t := range b {
		byVal[t.Get(bAttr)]++
	}
	n := 0
	for _, t := range a {
		n += byVal[t.Get(aAttr)]
	}
	return n
}

func TestJoinCorrectnessAllModes(t *testing.T) {
	for _, mode := range []JoinMode{Local, Remote, AllNodes} {
		m, a := newTestMachine(t, 4, 4, 2000)
		bt := wisconsin.Generate(200, 7)
		b := m.Load(LoadSpec{Name: "Bprime", Strategy: Hashed, PartAttr: rel.Unique1}, bt)
		want := expectedJoin(a.AllTuples(), bt, rel.Unique2, rel.Unique2)
		if want == 0 {
			t.Fatal("test setup: empty join")
		}
		res := m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique2,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
			Mode: mode,
		})
		if res.Tuples != want {
			t.Errorf("mode %v: join returned %d tuples, want %d", mode, res.Tuples, want)
		}
		if res.Overflows != 0 {
			t.Errorf("mode %v: unexpected overflow (%d)", mode, res.Overflows)
		}
	}
}

func TestJoinOnKeyAttributeShortCircuitsLocally(t *testing.T) {
	mkRes := func(mode JoinMode, attr rel.Attr) Result {
		m, a := newTestMachine(t, 4, 4, 4000)
		b := m.Load(LoadSpec{Name: "Bprime", Strategy: Hashed, PartAttr: rel.Unique1},
			wisconsin.Generate(400, 7))
		return m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: attr,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: attr,
			Mode: mode,
		})
	}
	keyLocal := mkRes(Local, rel.Unique1)
	keyRemote := mkRes(Remote, rel.Unique1)
	// Joining on the partitioning attribute locally: every input tuple
	// short-circuits, so Local beats Remote (§6.2.1, Figure 9).
	if keyLocal.Elapsed >= keyRemote.Elapsed {
		t.Errorf("local key join (%v) not faster than remote (%v)", keyLocal.Elapsed, keyRemote.Elapsed)
	}
	// Local/key short-circuits all join input; remaining packets are the
	// round-robin result-store traffic, which both modes share.
	if keyLocal.DataPackets*5 > keyRemote.DataPackets {
		t.Errorf("local key join sent %d packets vs remote %d; expected near-total short-circuit",
			keyLocal.DataPackets, keyRemote.DataPackets)
	}
	nonKeyLocal := mkRes(Local, rel.Unique2)
	nonKeyRemote := mkRes(Remote, rel.Unique2)
	// On a non-partitioning attribute the ordering flips (Figure 10).
	if nonKeyRemote.Elapsed >= nonKeyLocal.Elapsed {
		t.Errorf("remote non-key join (%v) not faster than local (%v)", nonKeyRemote.Elapsed, nonKeyLocal.Elapsed)
	}
}

func TestJoinOverflowMatchesInMemoryResult(t *testing.T) {
	run := func(mem int) Result {
		m, a := newTestMachine(t, 2, 2, 3000)
		b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1},
			wisconsin.Generate(1500, 9))
		return m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique2,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
			Mode:            Remote,
			MemPerJoinBytes: mem,
		})
	}
	big := run(64 << 20)
	small := run(40 * 1024) // force hash-table overflow
	if small.Overflows == 0 {
		t.Fatal("small-memory join did not overflow; test is vacuous")
	}
	if big.Overflows != 0 {
		t.Fatal("large-memory join overflowed")
	}
	if small.Tuples != big.Tuples {
		t.Errorf("overflow join produced %d tuples, in-memory produced %d", small.Tuples, big.Tuples)
	}
	if small.Elapsed <= big.Elapsed {
		t.Errorf("overflow join (%v) should be slower than in-memory (%v)", small.Elapsed, big.Elapsed)
	}
}

func TestTwoStageJoin(t *testing.T) {
	// joinCselAselB shape: sel(A) join sel(B) on unique2, then join C on
	// C.unique1 = intermediate.unique2.
	m, a := newTestMachine(t, 4, 4, 2000)
	b := m.Load(LoadSpec{Name: "B", Strategy: Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(2000, 21))
	c := m.Load(LoadSpec{Name: "C", Strategy: Hashed, PartAttr: rel.Unique1},
		wisconsin.Generate(200, 22))
	sel := rel.Between(rel.Unique2, 0, 199) // 10%
	cSpec := ScanSpec{Rel: c, Pred: rel.True()}
	res := m.RunJoin(JoinQuery{
		Build: ScanSpec{Rel: b, Pred: sel}, BuildAttr: rel.Unique2,
		Probe: ScanSpec{Rel: a, Pred: sel}, ProbeAttr: rel.Unique2,
		Build2: &cSpec, Build2Attr: rel.Unique1, Probe2Attr: rel.Unique2,
		Mode: Remote,
	})
	// Intermediate: 200 tuples with unique2 in [0,199]; stage-one output
	// carries the probe (A) tuple; each matches exactly one C tuple on
	// C.unique1 = A.unique2 since C has unique1 0..199.
	if res.Tuples != 200 {
		t.Errorf("two-stage join returned %d tuples, want 200", res.Tuples)
	}
}

func TestBitVectorFilterReducesTraffic(t *testing.T) {
	run := func(filter bool) Result {
		m, a := newTestMachine(t, 4, 4, 4000)
		b := m.Load(LoadSpec{Name: "Bprime", Strategy: Hashed, PartAttr: rel.Unique1},
			wisconsin.Generate(400, 7))
		return m.RunJoin(JoinQuery{
			Build: ScanSpec{Rel: b, Pred: rel.True()}, BuildAttr: rel.Unique2,
			Probe: ScanSpec{Rel: a, Pred: rel.True()}, ProbeAttr: rel.Unique2,
			Mode:         Remote,
			UseBitFilter: filter,
		})
	}
	plain := run(false)
	filtered := run(true)
	if filtered.Tuples != plain.Tuples {
		t.Errorf("filter changed result: %d vs %d", filtered.Tuples, plain.Tuples)
	}
	if filtered.DataPackets >= plain.DataPackets {
		t.Errorf("filter did not reduce packets: %d vs %d", filtered.DataPackets, plain.DataPackets)
	}
	if filtered.Elapsed >= plain.Elapsed {
		t.Errorf("filtered join (%v) not faster than plain (%v)", filtered.Elapsed, plain.Elapsed)
	}
}

func TestPartitioningStrategies(t *testing.T) {
	s := sim.New()
	prm := config.Default()
	m := NewMachine(s, &prm, 4, 0)
	ts := wisconsin.Generate(1000, 31)

	rr := m.Load(LoadSpec{Name: "rr", Strategy: RoundRobin, PartAttr: rel.Unique1}, ts)
	for i, fr := range rr.Frags {
		if fr.File.Len() != 250 {
			t.Errorf("round-robin frag %d = %d tuples, want 250", i, fr.File.Len())
		}
	}

	ru := m.Load(LoadSpec{Name: "ru", Strategy: RangeUniform, PartAttr: rel.Unique1}, ts)
	for i, fr := range ru.Frags {
		if n := fr.File.Len(); n < 200 || n > 300 {
			t.Errorf("range-uniform frag %d = %d tuples, want ~250", i, n)
		}
	}
	// Range partitioning must place each tuple within its bounds.
	prev := int64(-1) << 32
	for i, fr := range ru.Frags {
		for pg := 0; pg < fr.File.Pages(); pg++ {
			for _, tp := range fr.File.PageTuples(pg) {
				v := int64(tp.Get(rel.Unique1))
				if v <= prev || v > int64(ru.Bounds[i]) {
					t.Fatalf("range frag %d holds out-of-range key %d", i, v)
				}
			}
		}
		prev = int64(ru.Bounds[i])
	}

	usr := m.Load(LoadSpec{
		Name: "usr", Strategy: RangeUser, PartAttr: rel.Unique1,
		Bounds: []int32{99, 499, 899},
	}, ts)
	if got := usr.Frags[0].File.Len(); got != 100 {
		t.Errorf("user-range frag 0 = %d, want 100", got)
	}
	if got := usr.Frags[3].File.Len(); got != 100 {
		t.Errorf("user-range frag 3 = %d, want 100", got)
	}
}
