package core

import (
	"fmt"
	"slices"
	"sort"

	"gamma/internal/disk"
	"gamma/internal/nose"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/trace"
	"gamma/internal/wiss"
)

// JoinMode is where join operators run (§6): on the processors with disks
// (Local), on the diskless processors (Remote), or on both (Allnodes).
type JoinMode int

const (
	Remote JoinMode = iota // the paper's default for its join benchmarks
	Local
	AllNodes
)

func (m JoinMode) String() string {
	switch m {
	case Local:
		return "local"
	case Remote:
		return "remote"
	default:
		return "allnodes"
	}
}

// Overflow-resolution seeds. Round seeds differ from LoadSeed: after the
// first overflow Gamma switches hash functions so overflow tuples spread
// across all joining processors, which also destroys the locality of Local
// joins on the partitioning attribute (§6.2.2's crossover).
const (
	ovfBitSeed   uint64 = 0x0badcafe
	roundSeedOff uint64 = 0x5eed0000
)

func roundSeed(level int) uint64 { return roundSeedOff + uint64(level) }

func roundStream(level int, probe bool) streamID {
	s := streamRound + streamID(2*level)
	if probe {
		s++
	}
	return s
}

// Control messages between the scheduler and join operators.

type joinCtlKind int

const (
	ctlRoundBuild joinCtlKind = iota
	ctlRoundProbe
	ctlProbeClose
	ctlFinish
	// ctlAbort tells a join operator to discard its table and spools and
	// acknowledge with abortedMsg — part of mid-query failover teardown.
	ctlAbort
)

// abortSignal unwinds a join operator out of whatever phase it is in when a
// ctlAbort arrives; the operator's deferred handler turns it into cleanup
// plus an acknowledgement.
type abortSignal struct{}

type joinCtl struct {
	kind      joinCtlKind
	level     int
	expectEOS int // ctlProbeClose
}

// builtMsg: a join site finished (re)building its hash table.
type builtMsg struct {
	op         string
	site       int
	overflowed bool
	filter     *BitFilter // nil when overflow occurred or filters disabled
}

// probedMsg: a join site finished a probing phase.
type probedMsg struct {
	op             string
	site           int
	produced       int
	overflowEvents int
	newSpools      []spoolInfo
}

// spoolInfo hands a site's overflow partition files to the scheduler so it
// can schedule the redistribution scans of the next round.
type spoolInfo struct {
	level       int
	owner       *nose.Node
	build       *wiss.File
	probe       *wiss.File
	buildTuples int
	probeTuples int
}

// JoinAlgorithm selects the overflow strategy.
type JoinAlgorithm int

const (
	// SimpleHash is the distributed Simple hash-partitioned join the
	// paper measures ([DEWI85], §6) — it deteriorates rapidly under
	// memory pressure because each pass re-spools everything that still
	// does not fit.
	SimpleHash JoinAlgorithm = iota
	// HybridHash is the parallel Hybrid hash join §8 announces as the
	// replacement: the build relation is split up front into one
	// in-memory partition plus enough spooled partitions that each fits
	// memory, so spilled tuples are written and read exactly once.
	HybridHash
)

func (a JoinAlgorithm) String() string {
	if a == HybridHash {
		return "hybrid"
	}
	return "simple"
}

// joinSpec configures one join operator process.
type joinSpec struct {
	m          *Machine
	opID       string
	site       int
	node       *nose.Node
	port       *nose.Port
	sched      *nose.Port
	from       *sim.Proc // initiating process (the scheduler)
	buildAttr  rel.Attr
	probeAttr  rel.Attr
	nSites     int // number of join sites (round-stream producers)
	nBuild     int // build-stream producers
	nProbe     int // probe-stream producers; <0 means wait for ctlProbeClose
	memBytes   int
	outStream  streamID
	outPorts   []*nose.Port
	mkOutRoute func() RouteFn
	makeFilter bool
	filterBits int
	algo       JoinAlgorithm
	// hybridParts is the number of spooled partitions the optimizer
	// planned from its estimate of the build relation's size (HybridHash).
	hybridParts int
}

// spawnJoin starts a join operator: build phase, probe phase, then overflow
// rounds directed by the scheduler, implementing the distributed Simple
// hash-partitioned join of [DEWI85] (§6).
func spawnJoin(spec joinSpec) {
	m := spec.m
	m.spawnOn(spec.from, spec.node, fmt.Sprintf("%s@%d", spec.opID, spec.node.ID), func(p *sim.Proc) {
		phase := func(kind trace.Kind, label string, n int) {
			if !m.Sim.Tracing() {
				return
			}
			p.Emit(trace.Event{At: int64(p.Now()), Kind: kind, Op: spec.opID, Node: spec.node.ID, Site: spec.site, Class: label, N: n})
		}
		p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpStart, Op: spec.opID, Node: spec.node.ID, Site: spec.site, Class: "join"})
		jt := newJoinTable(spec)
		defer func() {
			switch r := recover().(type) {
			case nil:
			case abortSignal:
				// Scheduler-directed teardown: spool files are dropped
				// (bookkeeping only — the cheap recovery path), the abort
				// is acknowledged, and the port closes so queued senders
				// get their window credits back.
				jt.dropAllSpools()
				nose.SendCtl(p, spec.node, spec.sched, abortedMsg{op: spec.opID, site: spec.site})
				spec.port.Close()
			case disk.FailedError:
				// A spool read/write hit a failed drive: report so the
				// scheduler aborts the attempt without waiting out the
				// silence timeout.
				jt.dropAllSpools()
				nose.SendCtl(p, spec.node, spec.sched, opFailed{op: spec.opID, node: spec.node.ID})
				spec.port.Close()
			default:
				panic(r)
			}
		}()

		// Main build phase.
		phase(trace.KindPhaseStart, "build", 0)
		jt.beginPhase(0)
		recvStream(p, spec.port, streamBuild, spec.nBuild, func(ts []rel.Tuple) {
			spec.node.UseCPU(p, m.Prm.Engine.InstrPerTupleBuild*len(ts))
			for _, t := range ts {
				jt.insert(p, t)
			}
		})
		var filter *BitFilter
		if spec.makeFilter && !jt.phaseOverflowed {
			filter = jt.buildFilter(spec.filterBits)
		}
		phase(trace.KindPhaseDone, "build", 0)
		nose.SendCtl(p, spec.node, spec.sched, builtMsg{op: spec.opID, site: spec.site, overflowed: jt.phaseOverflowed, filter: filter})

		// Main probe phase.
		phase(trace.KindPhaseStart, "probe", 0)
		jt.runProbePhase(p, streamProbe, spec.nProbe)
		phase(trace.KindPhaseDone, "probe", jt.produced)

		// Overflow rounds.
		for {
			msg := spec.port.Recv(p)
			jc, ok := msg.Payload.(joinCtl)
			if !ok {
				panic(fmt.Sprintf("join: unexpected message %T between phases", msg.Payload))
			}
			switch jc.kind {
			case ctlFinish:
				p.Emit(trace.Event{At: int64(p.Now()), Kind: trace.KindOpDone, Op: spec.opID, Node: spec.node.ID, Site: spec.site})
				spec.port.Close()
				return
			case ctlAbort:
				panic(abortSignal{})
			case ctlRoundBuild:
				var label string
				if m.Sim.Tracing() {
					label = fmt.Sprintf("ovfbuild-%d", jc.level)
				}
				phase(trace.KindPhaseStart, label, 0)
				jt.beginPhase(jc.level)
				recvStream(p, spec.port, roundStream(jc.level, false), spec.nSites, func(ts []rel.Tuple) {
					spec.node.UseCPU(p, m.Prm.Engine.InstrPerTupleBuild*len(ts))
					for _, t := range ts {
						jt.insert(p, t)
					}
				})
				phase(trace.KindPhaseDone, label, 0)
				nose.SendCtl(p, spec.node, spec.sched, builtMsg{op: spec.opID, site: spec.site, overflowed: jt.phaseOverflowed})
			case ctlRoundProbe:
				var label string
				if m.Sim.Tracing() {
					label = fmt.Sprintf("ovfprobe-%d", jc.level)
				}
				phase(trace.KindPhaseStart, label, 0)
				jt.runProbePhase(p, roundStream(jc.level, true), spec.nSites)
				phase(trace.KindPhaseDone, label, jt.produced)
			default:
				panic("join: unexpected control kind")
			}
		}
	})
}

// recvStream consumes one stream: data packets and EOS messages until expect
// producers have closed. expect < 0 waits for a ctlProbeClose carrying the
// count (needed when the producer side has a dynamic number of phases).
func recvStream(p *sim.Proc, port *nose.Port, want streamID, expect int, onPacket func([]rel.Tuple)) {
	eos := 0
	for expect < 0 || eos < expect {
		msg := port.Recv(p)
		switch pl := msg.Payload.(type) {
		case packet:
			if pl.stream != want {
				panic(fmt.Sprintf("recvStream: stream %d, want %d", pl.stream, want))
			}
			onPacket(pl.tuples)
			putTupleBuf(pl.tuples)
		case eosPayload:
			if pl.stream != want {
				panic(fmt.Sprintf("recvStream: eos for stream %d, want %d", pl.stream, want))
			}
			eos++
		case joinCtl:
			switch pl.kind {
			case ctlProbeClose:
				expect = pl.expectEOS
			case ctlAbort:
				panic(abortSignal{})
			default:
				panic("recvStream: unexpected join control")
			}
		default:
			panic(fmt.Sprintf("recvStream: unexpected message %T", msg.Payload))
		}
	}
}

// joinTable is the per-site hash table with Simple hash-join overflow
// resolution: when memory fills, a second hash function splits off a
// subpartition whose build and probe tuples are spooled to temporary files
// and joined recursively (§6, [DEWI85]).
type joinTable struct {
	spec  joinSpec
	prm   int // memory budget in bytes
	table map[int32][]rel.Tuple
	bytes int

	curRound       int
	evictLevels    []int // ascending
	spools         map[int]*spoolPair
	dirtyLevels    map[int]bool
	overflowEvents int

	phaseOverflowed bool
	produced        int
}

type spoolPair struct {
	level   int
	owner   *nose.Node
	build   *wiss.File
	probe   *wiss.File
	buildAp *wiss.Appender
	probeAp *wiss.Appender
	buildN  int
	probeN  int
	// pageCredit counts tuples spooled since the last charged page
	// transfer from the join node to the spool node.
	buildCredit int
	probeCredit int
}

func newJoinTable(spec joinSpec) *joinTable {
	return &joinTable{
		spec:        spec,
		prm:         spec.memBytes,
		spools:      make(map[int]*spoolPair),
		dirtyLevels: make(map[int]bool),
	}
}

// beginPhase resets the in-memory table for a new (round) build.
func (jt *joinTable) beginPhase(round int) {
	jt.curRound = round
	jt.table = make(map[int32][]rel.Tuple)
	jt.bytes = 0
	jt.evictLevels = nil
	jt.phaseOverflowed = false
}

// ovfBit reports whether value v belongs to overflow slice `slice` of the
// given pass. Slices are eighths of the key space: each overflow resolution
// splits off one 1/8 slice (slices 1-7 use the pass's first subpartitioning
// hash, 8-14 re-split the survivors with a second, and so on), so a marginal
// overflow spools only a small fraction — the source of §6.2.2's "relative
// flatness from zero to two overflows". The hash depends on the pass so each
// round re-partitions its incoming data afresh.
func ovfBit(v int32, round, slice int) bool {
	gen := uint64((slice - 1) / 7)
	bucket := uint64(1 + (slice-1)%7)
	return rel.Hash64(v, ovfBitSeed+uint64(round)*0x51ed+gen*0x9e37)%8 == bucket
}

// spoolLevel returns the spool destination for value v: every slice evicted
// during the current phase spools into ONE overflow partition (level
// curRound+1), which the next round re-reads in full — the pass structure
// that makes the Simple hash join deteriorate so rapidly once memory is
// short ([DEWI85], §6.2.2). Returns 0 when v stays in memory.
func (jt *joinTable) spoolLevel(v int32) int {
	if jt.spec.algo == HybridHash && jt.curRound == 0 && jt.spec.hybridParts > 0 {
		// Up-front partitioning: partition 0 stays in memory, the rest
		// spool once each.
		h := int(rel.Hash64(v, ovfBitSeed^0x4b1d) % uint64(jt.spec.hybridParts+1))
		if h > 0 {
			return h
		}
		// Partition 0 can still overflow if the optimizer's estimate
		// was short; dynamic slices spill past the planned partitions.
		for _, l := range jt.evictLevels {
			if ovfBit(v, jt.curRound, l) {
				return jt.spec.hybridParts + 1
			}
		}
		return 0
	}
	for _, l := range jt.evictLevels {
		if ovfBit(v, jt.curRound, l) {
			return jt.curRound + jt.spec.hybridParts + 1
		}
	}
	return 0
}

func (jt *joinTable) insert(p *sim.Proc, t rel.Tuple) {
	v := t.Get(jt.spec.buildAttr)
	if l := jt.spoolLevel(v); l > 0 {
		jt.spool(p, l, false, t)
		return
	}
	jt.table[v] = append(jt.table[v], t)
	jt.bytes += jt.spec.m.Prm.TupleBytes
	for jt.bytes > jt.prm {
		if !jt.overflow(p) {
			break
		}
	}
}

// overflow performs one overflow resolution: pick the next subpartition
// hash bit, evict every resident tuple it claims to the spool files, and
// divert future tuples likewise. Reports whether any tuples were evicted.
func (jt *joinTable) overflow(p *sim.Proc) bool {
	next := 1
	if len(jt.evictLevels) > 0 {
		next = jt.evictLevels[len(jt.evictLevels)-1] + 1
	}
	if next > 256 {
		panic("join: overflow slicing too deep")
	}
	jt.evictLevels = append(jt.evictLevels, next)
	if !jt.phaseOverflowed {
		// One "partition overflow resolution" per pass, the unit §6.2.2
		// reports (six per diskless processor for the million-tuple
		// joins); additional slice evictions within the pass refine the
		// same resolution.
		jt.overflowEvents++
	}
	jt.phaseOverflowed = true

	var keys []int32
	for v := range jt.table {
		if ovfBit(v, jt.curRound, next) {
			keys = append(keys, v)
		}
	}
	slices.Sort(keys)
	dst := jt.curRound + jt.spec.hybridParts + 1
	for _, v := range keys {
		for _, t := range jt.table[v] {
			jt.spool(p, dst, false, t)
			jt.bytes -= jt.spec.m.Prm.TupleBytes
		}
		delete(jt.table, v)
	}
	return len(keys) > 0
}

// spool writes a tuple to the (site, level) overflow partition file. The
// file lives on the node's spool target; diskless processors pay network
// transfer per spooled page on top of the drive writes.
func (jt *joinTable) spool(p *sim.Proc, level int, probe bool, t rel.Tuple) {
	sp := jt.spools[level]
	if sp == nil {
		owner := jt.spec.node.SpoolNode
		st := jt.spec.m.StoreOf(owner)
		sp = &spoolPair{
			level: level,
			owner: owner,
			build: st.CreateFile(fmt.Sprintf("%s.ovf%d.build", jt.spec.opID, level)),
			probe: st.CreateFile(fmt.Sprintf("%s.ovf%d.probe", jt.spec.opID, level)),
		}
		jt.spools[level] = sp
	}
	jt.dirtyLevels[level] = true
	m := jt.spec.m
	perPage := m.Prm.TuplesPerPage()
	if probe {
		if sp.probeAp == nil {
			sp.probeAp = sp.probe.NewAppender()
		}
		sp.probeAp.Append(p, t)
		sp.probeN++
		sp.probeCredit++
		if sp.probeCredit >= perPage {
			sp.probeCredit = 0
			m.Net.TransferBulk(p, jt.spec.node, sp.owner, m.Prm.PageBytes)
		}
	} else {
		if sp.buildAp == nil {
			sp.buildAp = sp.build.NewAppender()
		}
		sp.buildAp.Append(p, t)
		sp.buildN++
		sp.buildCredit++
		if sp.buildCredit >= perPage {
			sp.buildCredit = 0
			m.Net.TransferBulk(p, jt.spec.node, sp.owner, m.Prm.PageBytes)
		}
	}
}

// probe matches one probe tuple against the table, emitting the result
// tuple for each match, or spools it if its subpartition overflowed.
func (jt *joinTable) probe(p *sim.Proc, out *splitTable, t rel.Tuple) {
	v := t.Get(jt.spec.probeAttr)
	if l := jt.spoolLevel(v); l > 0 {
		jt.spool(p, l, true, t)
		return
	}
	for range jt.table[v] {
		jt.produced++
		out.send(p, t)
	}
}

// runProbePhase consumes one probe stream, emits matches through a fresh
// split table, flushes spools, and reports to the scheduler.
func (jt *joinTable) runProbePhase(p *sim.Proc, stream streamID, expect int) {
	spec := jt.spec
	m := spec.m
	jt.produced = 0
	out := newSplitTable(spec.node, m.Prm, spec.outStream, spec.outPorts, spec.mkOutRoute())
	recvStream(p, spec.port, stream, expect, func(ts []rel.Tuple) {
		spec.node.UseCPU(p, m.Prm.Engine.InstrPerTupleProbe*len(ts))
		for _, t := range ts {
			jt.probe(p, out, t)
		}
	})
	out.close(p)
	news := jt.closeDirtySpools(p)
	// The spool pair just consumed by this round can never be written
	// again (new overflow levels are strictly deeper), so free it.
	if jt.curRound > 0 {
		if sp := jt.spools[jt.curRound]; sp != nil {
			st := m.StoreOf(sp.owner)
			st.DropFile(sp.build)
			st.DropFile(sp.probe)
			delete(jt.spools, jt.curRound)
		}
	}
	nose.SendCtl(p, spec.node, spec.sched, probedMsg{
		op:             spec.opID,
		site:           spec.site,
		produced:       jt.produced,
		overflowEvents: jt.overflowEvents,
		newSpools:      news,
	})
}

// closeDirtySpools flushes every spool file written during this phase and
// returns their descriptors for the scheduler's round queue.
func (jt *joinTable) closeDirtySpools(p *sim.Proc) []spoolInfo {
	var levels []int
	for l := range jt.dirtyLevels {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	var out []spoolInfo
	for _, l := range levels {
		sp := jt.spools[l]
		if sp.buildAp != nil {
			sp.buildAp.Close(p)
			sp.buildAp = nil
		}
		if sp.probeAp != nil {
			sp.probeAp.Close(p)
			sp.probeAp = nil
		}
		out = append(out, spoolInfo{
			level:       l,
			owner:       sp.owner,
			build:       sp.build,
			probe:       sp.probe,
			buildTuples: sp.buildN,
			probeTuples: sp.probeN,
		})
	}
	jt.dirtyLevels = make(map[int]bool)
	return out
}

// dropAllSpools releases every overflow partition file of an aborted join.
// Pure bookkeeping — the §4 observation that aborting a "retrieve into"
// only requires deleting files, so the abort path pays no simulated I/O.
func (jt *joinTable) dropAllSpools() {
	var levels []int
	for l := range jt.spools {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		sp := jt.spools[l]
		st := jt.spec.m.StoreOf(sp.owner)
		st.DropFile(sp.build)
		st.DropFile(sp.probe)
	}
	jt.spools = make(map[int]*spoolPair)
	jt.dirtyLevels = make(map[int]bool)
}

// buildFilter snapshots the table's keys into a Babb bit-vector filter.
func (jt *joinTable) buildFilter(bits int) *BitFilter {
	f := NewBitFilter(bits, ovfBitSeed^0xf117e4)
	for v := range jt.table {
		f.Add(v)
	}
	return f
}
