package core

import (
	"fmt"
	"sort"

	"gamma/internal/config"
	"gamma/internal/rel"
	"gamma/internal/sim"
	"gamma/internal/wiss"
)

// Snapshot is an immutable image of a machine's post-load state: the machine
// shape, catalog, fragment directories, WiSS store images (file and page
// arrays, index node graphs), and the name/query-id counters. It contains no
// references to the source machine's simulator or nodes, so one Snapshot can
// be restored any number of times — concurrently — onto fresh simulations.
//
// Feature toggles (tracing, failover detection, recovery logging, shared
// scans, armed fault schedules) are deliberately NOT captured: they are
// cheap post-load switches, and callers re-apply them after RestoreMachine
// exactly as they would after Load. Mirroring is captured, because it shaped
// the storage layout at load time.
type Snapshot struct {
	prm       config.Params
	nDisk     int
	nDiskless int
	mirrored  bool
	nextRes   int
	nextQID   int
	stores    []*wiss.StoreImage // one per disk node, in m.Disk order
	rels      []relImage
}

// relImage is the catalog entry of one relation.
type relImage struct {
	name     string
	n        int
	strategy PartStrategy
	partAttr rel.Attr
	bounds   []int32
	width    int
	frags    []fragImage
	backups  []fragImage
}

// fragImage locates one fragment: the disk-node index it lives on, its heap
// file id within that node's store, and its index images sorted by attribute.
type fragImage struct {
	site    int
	fileID  int
	indexes []idxImage
}

type idxImage struct {
	attr rel.Attr
	img  *wiss.BTreeImage
}

// Snapshot captures the machine's current state as an immutable image.
// It must be taken while the machine is quiescent (no query in flight);
// the intended moment is immediately after the last Load. The source machine
// remains fully usable — its pages and index nodes become copy-on-write.
func (m *Machine) Snapshot() *Snapshot {
	snap := &Snapshot{
		prm:       *m.Prm,
		nDisk:     len(m.Disk),
		nDiskless: len(m.Diskless),
		mirrored:  m.mirrored,
		nextRes:   m.nextRes,
		nextQID:   m.nextQID,
	}
	site := make(map[int]int, len(m.Disk)) // node id -> disk index
	for i, nd := range m.Disk {
		site[nd.ID] = i
		snap.stores = append(snap.stores, m.stores[nd.ID].Snapshot())
	}
	for _, name := range m.Relations() {
		r := m.catalog[name]
		ri := relImage{
			name:     r.Name,
			n:        r.N,
			strategy: r.Strategy,
			partAttr: r.PartAttr,
			bounds:   append([]int32(nil), r.Bounds...),
			width:    r.Width,
		}
		for _, fr := range r.Frags {
			ri.frags = append(ri.frags, snapFragment(fr, site))
		}
		for _, fr := range r.Backups {
			if fr == nil {
				// A slot the healer condemned and has not yet rebuilt:
				// recorded as a hole (site -1) and restored as one.
				ri.backups = append(ri.backups, fragImage{site: -1})
				continue
			}
			ri.backups = append(ri.backups, snapFragment(fr, site))
		}
		snap.rels = append(snap.rels, ri)
	}
	return snap
}

func snapFragment(fr *Fragment, site map[int]int) fragImage {
	fi := fragImage{site: site[fr.Node.ID], fileID: fr.File.ID}
	attrs := make([]rel.Attr, 0, len(fr.Indexes))
	for a := range fr.Indexes {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	for _, a := range attrs {
		fi.indexes = append(fi.indexes, idxImage{attr: a, img: fr.Indexes[a].Snapshot()})
	}
	return fi
}

// RestoreMachine materializes a working machine from a snapshot onto the
// given simulator — normally a fresh sim.New(), which rebases the restored
// machine to t=0 so elapsed times, tables, and traces are byte-identical to
// a from-scratch load-then-query run. Restores are O(metadata): pages and
// index nodes are shared with the image copy-on-write, buffer pools start
// empty with zeroed counters, and file ids (hence pool keys and drive
// extents) are preserved exactly.
func RestoreMachine(s *sim.Sim, snap *Snapshot) *Machine {
	prm := snap.prm // private copy; the machine may mutate Params via options
	m := NewMachine(s, &prm, snap.nDisk, snap.nDiskless)
	m.mirrored = snap.mirrored
	m.nextRes = snap.nextRes
	m.nextQID = snap.nextQID
	for i, nd := range m.Disk {
		m.stores[nd.ID] = wiss.RestoreStore(nd, m.Prm, snap.stores[i])
	}
	for _, ri := range snap.rels {
		r := &Relation{
			Name:     ri.name,
			N:        ri.n,
			Strategy: ri.strategy,
			PartAttr: ri.partAttr,
			Bounds:   append([]int32(nil), ri.bounds...),
			Width:    ri.width,
			m:        m,
		}
		for _, fi := range ri.frags {
			r.Frags = append(r.Frags, m.restoreFragment(fi))
		}
		for _, fi := range ri.backups {
			if fi.site < 0 {
				r.Backups = append(r.Backups, nil)
				continue
			}
			r.Backups = append(r.Backups, m.restoreFragment(fi))
		}
		m.catalog[r.Name] = r
	}
	return m
}

func (m *Machine) restoreFragment(fi fragImage) *Fragment {
	nd := m.Disk[fi.site]
	st := m.stores[nd.ID]
	f, ok := st.FileByID(fi.fileID)
	if !ok {
		panic(fmt.Sprintf("core: snapshot fragment references missing file id %d on site %d", fi.fileID, fi.site))
	}
	frag := &Fragment{Node: nd, File: f, Indexes: map[rel.Attr]*wiss.BTree{}}
	for _, ix := range fi.indexes {
		frag.Indexes[ix.attr] = wiss.RestoreBTree(st, f, ix.img)
	}
	return frag
}
