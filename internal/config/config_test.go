package config

import (
	"testing"

	"gamma/internal/sim"
)

func TestDefaultMatchesPaperConstants(t *testing.T) {
	p := Default()
	if p.CPU.MIPS != 0.6 {
		t.Errorf("MIPS = %v; the VAX 11/750 is 0.6 (§5.2.2)", p.CPU.MIPS)
	}
	if p.TuplesPerPage() != 17 {
		t.Errorf("tuples per 4KB page = %d, want 17 (§5.1)", p.TuplesPerPage())
	}
	if p.Net.PacketBytes != 2048 {
		t.Errorf("packet = %d, want 2KB (§5.2.1)", p.Net.PacketBytes)
	}
	if p.Net.CtlMsg != 7*sim.Millisecond {
		t.Errorf("control message = %v, want 7ms (§6.2.3)", p.Net.CtlMsg)
	}
	if p.Engine.MsgsPerOperatorInit != 4 {
		t.Errorf("init messages = %d, want 4 (§6.2.3)", p.Engine.MsgsPerOperatorInit)
	}
	if p.Tera.AMPs != 20 || p.Tera.IFPs != 4 || p.Tera.Disks != 40 {
		t.Errorf("Teradata config %d/%d/%d, want 4 IFP / 20 AMP / 40 DSU (§3)",
			p.Tera.IFPs, p.Tera.AMPs, p.Tera.Disks)
	}
	if p.Tera.InsertIOs < 3 {
		t.Errorf("insert I/Os = %d; §4 says at least 3", p.Tera.InsertIOs)
	}
	// A 10,000-tuple fragment must occupy 589 pages (§5.1).
	if pages := (10000 + p.TuplesPerPage() - 1) / p.TuplesPerPage(); pages != 589 {
		t.Errorf("10k tuples = %d pages, want 589", pages)
	}
}

func TestCPUTime(t *testing.T) {
	c := CPU{MIPS: 0.6}
	if got := c.Time(600); got != 1000 {
		t.Errorf("600 instructions at 0.6 MIPS = %v us, want 1000", got)
	}
	if got := c.Time(0); got != 0 {
		t.Errorf("Time(0) = %v", got)
	}
	if got := c.Time(-5); got != 0 {
		t.Errorf("Time(-5) = %v", got)
	}
}

func TestDiskTransferMatchesPaper(t *testing.T) {
	p := Default()
	// §5.2.2: a 32 KB page transfers in ~13 ms.
	got := p.Disk.TransferTime(32 * 1024)
	if got < 12*sim.Millisecond || got > 14*sim.Millisecond {
		t.Errorf("32KB transfer = %v, want ~13ms", got)
	}
}

func TestNICTimes(t *testing.T) {
	p := Default()
	// 4 Mbit/s Unibus: a 2 KB packet takes ~4.1 ms.
	got := p.Net.NICTime(2048)
	if got < 4000 || got > 4200 {
		t.Errorf("2KB over Unibus = %v us, want ~4096", got)
	}
	// The 80 Mbit/s ring is 20x faster.
	if ring := p.Net.RingTime(2048); ring*15 > got {
		t.Errorf("ring (%v) should be much faster than the Unibus (%v)", ring, got)
	}
}

func TestPageSizeDerivedQuantities(t *testing.T) {
	p := Default()
	for _, ps := range []int{2048, 4096, 8192, 16384, 32768} {
		p.PageBytes = ps
		if p.TuplesPerPage() != ps/240 {
			t.Errorf("page %d: tuples = %d", ps, p.TuplesPerPage())
		}
		if p.IndexFanout() != ps/16 {
			t.Errorf("page %d: fanout = %d", ps, p.IndexFanout())
		}
	}
	if p.TuplesPerPacket() != 2048/208 {
		t.Errorf("tuples per packet = %d", p.TuplesPerPacket())
	}
}
