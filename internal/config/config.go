// Package config holds the calibrated cost model for the simulated Gamma and
// Teradata machines.
//
// Every constant is either taken directly from the paper (§2, §3, §5, §6) or
// calibrated so that the standard configuration (8 disk processors, 4 KB
// pages) reproduces the absolute response times of Tables 1–3 to within a
// small factor. Derivations are given inline; EXPERIMENTS.md records the
// resulting paper-vs-measured comparison for every table and figure.
package config

import "gamma/internal/sim"

// CPU describes a processor.
type CPU struct {
	// MIPS is the instruction rate in millions of instructions per second.
	// The VAX 11/750 is rated at 0.6 MIPS (§5.2.2).
	MIPS float64
}

// Time converts an instruction count to simulated time.
func (c CPU) Time(instr int) sim.Dur {
	if instr <= 0 {
		return 0
	}
	return sim.Dur(float64(instr) / c.MIPS)
}

// Disk describes a disk drive. The model charges every page request a
// positioning cost plus a size-proportional transfer cost.
type Disk struct {
	// SeqPos is the positioning cost of a sequential page request (same
	// file, next page). WiSS issues page requests one at a time with no
	// device-level read-ahead, so a sequential request typically misses a
	// full revolution. Calibrated so a 4 KB sequential page read costs
	// ~17.5 ms, which reproduces Table 1's non-indexed selections
	// (589 pages / 8 drives at 10k tuples -> 1.63 s; 10x at 100k).
	SeqPos sim.Dur
	// RandPos is the positioning cost of a random page request: average
	// seek plus half-rotation. §5.2.2 puts the random seek near 13 ms
	// (the transfer time of a 32 KB page); half a revolution of a 3600
	// RPM drive adds ~8.3 ms.
	RandPos sim.Dur
	// USPerKB is transfer time per kilobyte. §5.2.2: a 32 KB page
	// transfers in 13 ms -> 406 us/KB (~2.46 MB/s).
	USPerKB sim.Dur
	// TrackBytes is the track size; §5.2.2 gives 40 KB.
	TrackBytes int
}

// TransferTime returns the media transfer time for n bytes.
func (d Disk) TransferTime(bytes int) sim.Dur {
	return sim.Dur(int64(d.USPerKB) * int64(bytes) / 1024)
}

// Net describes the interconnect: an 80 Mbit/s token ring reached through a
// 4 Mbit/s Unibus on each node (§2, §5.2.1).
type Net struct {
	// PacketBytes is the network packet size; §5.2.1 gives 2 KB.
	PacketBytes int
	// NICUSPerKB is the per-node memory-to-network path cost: the 4
	// Mbit/s Unibus moves 1 KB in 2048 us (500 KB/s).
	NICUSPerKB sim.Dur
	// RingUSPerKB is the shared 80 Mbit/s token ring: 1 KB in 102 us.
	RingUSPerKB sim.Dur
	// CtlMsg is the end-to-end cost of a small inter-node control
	// message; §6.2.3 assumes 7 ms.
	CtlMsg sim.Dur
	// Window is the sliding-window depth of the NOSE datagram protocol:
	// the number of unacknowledged packets a sender may have in flight
	// per destination before it stalls.
	Window int
	// InstrPerPacket is the protocol-processing cost (per side) of a data
	// packet: checksums, window bookkeeping, wakeups.
	InstrPerPacket int
	// InstrPerLocalMsg is the cost of a short-circuited (same node)
	// message: the communications software bypasses the NIC entirely (§2).
	InstrPerLocalMsg int
	// MinLatency is the minimum end-to-end delivery time of any remote
	// message — data, EOS, or control. No arrival event may land closer
	// than MinLatency after its send, which is what lets the partitioned
	// simulation kernel run node shards concurrently with lookahead
	// windows of exactly this width. For the 1988 generation it is
	// derived in Default() from the Unibus + ring service time of one
	// full packet; later generations set the NIC's advertised wire
	// latency directly.
	MinLatency sim.Dur
	// BatchPackets is how many packets' worth of tuples an exchange
	// producer coalesces per destination before flushing (the batched
	// exchange of Rödiger et al.). 1 means flush every full packet —
	// the original per-packet NOSE behavior.
	BatchPackets int
	// FlushAfter bounds how long a partially filled exchange buffer may
	// sit before the next send forces it onto the wire; 0 disables
	// time-triggered flushes (buffers still flush when full and at
	// end-of-stream).
	FlushAfter sim.Dur
}

// NICTime returns the Unibus transfer time for n bytes.
func (n Net) NICTime(bytes int) sim.Dur {
	return sim.Dur(int64(n.NICUSPerKB) * int64(bytes) / 1024)
}

// RingTime returns the token-ring transit time for n bytes.
func (n Net) RingTime(bytes int) sim.Dur {
	return sim.Dur(int64(n.RingUSPerKB) * int64(bytes) / 1024)
}

// Engine describes per-operation CPU costs of the Gamma software and the
// query startup path. Instruction counts are calibrated, not measured.
type Engine struct {
	// InstrPerTupleScan: fetch a tuple from a page slot and evaluate a
	// compiled range predicate. Calibrated so 0% selections become CPU
	// bound at 16 KB pages (Figures 5-6).
	InstrPerTupleScan int
	// InstrPerTupleRoute: apply a split-table hash and copy the tuple
	// into an outgoing packet buffer.
	InstrPerTupleRoute int
	// InstrPerTupleStore: receive a result tuple and place it in a page
	// buffer, including record-id assignment.
	InstrPerTupleStore int
	// InstrPerTupleBuild: insert a tuple into a join hash table.
	InstrPerTupleBuild int
	// InstrPerTupleProbe: probe the hash table and, on a match, compose
	// the composite result tuple.
	InstrPerTupleProbe int
	// InstrPerTupleAgg: fold one tuple into an aggregate.
	InstrPerTupleAgg int
	// InstrPerPageIO: initiate one page I/O (buffer pool and WiSS path).
	InstrPerPageIO int
	// InstrPerIndexNode: binary-search one B-tree node.
	InstrPerIndexNode int
	// MsgsPerOperatorInit: control messages needed to schedule one
	// operator on one node; §6.2.3 gives four.
	MsgsPerOperatorInit int
	// HostStartup: parse, optimize, compile, and dispatch a query from
	// the host to an idle scheduler. Calibrated from the single-tuple
	// select floor of Table 1 (0.15 s) minus the per-node costs.
	HostStartup sim.Dur
}

// Memory describes per-node memory (§2: 2 MB per processor).
type Memory struct {
	// NodeBytes is physical memory per node.
	NodeBytes int
	// BufferPoolBytes is the memory dedicated to the buffer pool; the
	// frame count is BufferPoolBytes / PageBytes, so doubling the page
	// size halves the number of resident pages — part of why large pages
	// hurt non-clustered index plans (Figure 7).
	BufferPoolBytes int
	// JoinTableBytes is the memory available for join hash tables per
	// joining processor. §6 gives 4.8 MB total for the standard
	// configuration's joins, which run on the 8 diskless processors
	// (Remote mode) = 600 KB each.
	JoinTableBytes int
}

// Teradata describes the DBC/1012 baseline (§3) and the software behaviours
// §4-§6 identify as decisive.
type Teradata struct {
	IFPs  int // interface processors (4)
	AMPs  int // access module processors (20)
	Disks int // disk storage units (40; 2 per AMP)
	// MIPS of the Intel 80286 AMP processors. Calibrated against the
	// Gamma/Teradata ratio of Table 1's non-indexed selections.
	MIPS float64
	// YNetUSPerKB: the Y-net moves 12 MB/s aggregate -> 1 KB in ~85 us.
	YNetUSPerKB sim.Dur
	// PageBytes is the AMP disk sector/page unit.
	PageBytes int
	// SeqPos, RandPos, USPerKB as for Gamma's Disk model (Hitachi 8.8"
	// 525 MB drives).
	SeqPos  sim.Dur
	RandPos sim.Dur
	USPerKB sim.Dur
	// InsertIOs is the number of I/Os the INSERT INTO recovery path
	// performs per inserted tuple (§4: "at least 3 I/Os are incurred for
	// each tuple inserted"). InstrPerInsert is the accompanying logging
	// CPU. Together they are calibrated from the Table 1 gap between the
	// 1% and 10% selections (~207 ms per stored result tuple).
	InsertIOs      int
	InstrPerInsert int
	// TempInsertIOs/InstrPerTempInsert model the redistribution phase of
	// the join algorithm: "as each AMP receives tuples, it stores them in
	// temporary files sorted in hash-key order" (§6). Calibrated from the
	// Table 2 gap between key and non-key joins (~34 ms per redistributed
	// tuple).
	TempInsertIOs      int
	InstrPerTempInsert int
	// InstrPerTupleScan / InstrPerTupleSort / InstrPerTupleMerge are the
	// per-tuple CPU costs of scans and of the redistribute+sort-merge
	// join path.
	InstrPerTupleScan  int
	InstrPerTupleSort  int
	InstrPerTupleMerge int
	// HostStartup covers AMDAHL host + IFP parse/optimize/dispatch;
	// UpdateStartup is the shorter path update queries take.
	HostStartup   sim.Dur
	UpdateStartup sim.Dur
}

// Params is the complete machine description used by a simulation run.
type Params struct {
	CPU    CPU
	Disk   Disk
	Net    Net
	Engine Engine
	Memory Memory
	Tera   Teradata

	// PageBytes is the disk page size (default 4 KB; Figures 5-8 and
	// 14-15 sweep it from 2 KB to 32 KB).
	PageBytes int
	// TupleBytes is the logical Wisconsin tuple size: thirteen 4-byte
	// integers plus three 52-byte strings = 208 bytes (§4).
	TupleBytes int
	// SlotBytes is the per-tuple page footprint including the slot entry
	// and record header. 240 bytes reproduces §5.1's "17 tuples per data
	// page" at 4 KB and "all 589 pages" for 10,000 tuples.
	SlotBytes int
	// IndexEntryBytes is the footprint of one B-tree entry (key + RID +
	// overhead), which fixes index fan-out as a function of page size.
	IndexEntryBytes int
}

// TuplesPerPage returns heap-page capacity at the configured page size.
func (p *Params) TuplesPerPage() int { return p.PageBytes / p.SlotBytes }

// TuplesPerPacket returns how many tuples ride in one network packet.
func (p *Params) TuplesPerPacket() int { return p.Net.PacketBytes / p.TupleBytes }

// IndexFanout returns B-tree node fan-out at the configured page size.
func (p *Params) IndexFanout() int { return p.PageBytes / p.IndexEntryBytes }

// Default returns the calibrated standard configuration: the paper's Gamma
// (VAX 11/750s, 4 KB pages) and Teradata (4x20x40) machines.
func Default() Params {
	p := Params{
		CPU: CPU{MIPS: 0.6},
		Disk: Disk{
			SeqPos:     15800 * sim.Microsecond,
			RandPos:    21300 * sim.Microsecond,
			USPerKB:    406 * sim.Microsecond,
			TrackBytes: 40 * 1024,
		},
		Net: Net{
			PacketBytes:      2048,
			NICUSPerKB:       2048 * sim.Microsecond,
			RingUSPerKB:      102 * sim.Microsecond,
			CtlMsg:           7 * sim.Millisecond,
			Window:           4,
			InstrPerPacket:   6000,
			InstrPerLocalMsg: 300,
			BatchPackets:     1,
		},
		Engine: Engine{
			InstrPerTupleScan:   160,
			InstrPerTupleRoute:  140,
			InstrPerTupleStore:  160,
			InstrPerTupleBuild:  1000,
			InstrPerTupleProbe:  1400,
			InstrPerTupleAgg:    120,
			InstrPerPageIO:      1200,
			InstrPerIndexNode:   400,
			MsgsPerOperatorInit: 4,
			HostStartup:         40 * sim.Millisecond,
		},
		Memory: Memory{
			NodeBytes:       2 * 1024 * 1024,
			BufferPoolBytes: 256 * 1024,
			JoinTableBytes:  600 * 1024,
		},
		Tera: Teradata{
			IFPs:               4,
			AMPs:               20,
			Disks:              40,
			MIPS:               0.5,
			YNetUSPerKB:        85 * sim.Microsecond,
			PageBytes:          8 * 1024,
			SeqPos:             14000 * sim.Microsecond,
			RandPos:            25000 * sim.Microsecond,
			USPerKB:            500 * sim.Microsecond,
			InsertIOs:          3,
			InstrPerInsert:     56000,
			TempInsertIOs:      1,
			InstrPerTempInsert: 4000,
			InstrPerTupleScan:  1520,
			InstrPerTupleSort:  400,
			InstrPerTupleMerge: 200,
			HostStartup:        1000 * sim.Millisecond,
			UpdateStartup:      500 * sim.Millisecond,
		},
		PageBytes:       4 * 1024,
		TupleBytes:      208,
		SlotBytes:       240,
		IndexEntryBytes: 16,
	}
	// The 1988 wire floor: a full packet must cross the sending Unibus and
	// the token ring before any receiver can observe it. 2048*2.048 + 2*102
	// = 4300 us — this is also the kernel lookahead the Gamma model derives.
	p.Net.MinLatency = p.Net.NICTime(p.Net.PacketBytes) + p.Net.RingTime(p.Net.PacketBytes)
	return p
}
