package config

import "gamma/internal/sim"

// Generation names a complete hardware era for the machine model: CPU
// instruction rate, disk service times, and NIC latency/bandwidth, plus the
// exchange-batching depth that era's wire makes profitable. The 1988
// generation is exactly Default(); the later generations re-run the paper's
// study on 2015-class Ethernet clusters and RDMA-class fabrics so
// trace.Diagnose can narrate where the binding resource migrates as the wire
// stops being free (Rödiger et al., "High-Speed Query Processing over
// High-Speed Networks").
//
// The simulation clock ticks in whole microseconds, so per-KB transfer rates
// saturate at 1 us/KB (~1 GB/s). Generations beyond that express their edge
// through latency (MinLatency, CtlMsg), protocol cost (InstrPerPacket), and
// batching depth instead of raw per-KB bandwidth.
//
// MinLatency does double duty for the partitioned kernel: the nose declares
// it as every node shard's output floor (and the derived lookahead), so a
// generation's floor bounds the kernel's static windows. Fast generations
// (gbe2015's 20 us, rdma's 2 us) get almost nothing from that static window
// and lean entirely on earliest-output-time promises and per-channel floors
// for their parallelism (DESIGN.md §12, the kernelscale experiment).
type Generation struct {
	Name string
	// Desc is a one-line description used by reports.
	Desc string
	// Params returns a fresh parameter set for this generation.
	Params func() Params
}

// generations is the ordered registry (oldest first).
var generations = []Generation{
	{
		Name:   "gamma1988",
		Desc:   "VAX 11/750 (0.6 MIPS), 2.5 MB/s disks, 4 Mbit/s Unibus + 80 Mbit/s ring",
		Params: Default,
	},
	{
		Name:   "gbe2015",
		Desc:   "2015 commodity cluster: fast cores, SATA SSD, 10 GbE",
		Params: gbe2015,
	},
	{
		Name:   "rdma",
		Desc:   "RDMA-class fabric: faster cores, NVMe flash, kernel-bypass NIC",
		Params: rdma,
	},
}

// Generations lists the registered hardware generations, oldest first.
func Generations() []Generation {
	return append([]Generation(nil), generations...)
}

// ByGeneration returns a fresh parameter set for a named generation.
func ByGeneration(name string) (Params, bool) {
	for _, g := range generations {
		if g.Name == name {
			return g.Params(), true
		}
	}
	return Params{}, false
}

// GenerationNames returns the registered names, oldest generation first.
func GenerationNames() []string {
	names := make([]string, len(generations))
	for i, g := range generations {
		names[i] = g.Name
	}
	return names
}

// gbe2015 models a 2015-era commodity cluster node: fast cores (flattened to
// one effective 2000 MIPS model core — multicore parallelism and memory
// stalls folded into a single instruction stream), a SATA SSD, and switched
// 10 GbE. The wire is no longer the bottleneck; scans go disk-bound on the
// SSD and per-packet protocol CPU starts to matter, which is what makes
// tuple batching (BatchPackets > 1) pay off.
func gbe2015() Params {
	p := Default()
	p.CPU.MIPS = 2000
	p.Disk = Disk{
		SeqPos:     30 * sim.Microsecond,  // SSD request setup, no seek
		RandPos:    100 * sim.Microsecond, // SSD random-read latency
		USPerKB:    2 * sim.Microsecond,   // ~500 MB/s SATA transfer
		TrackBytes: 256 * 1024,
	}
	p.Net.NICUSPerKB = 1 * sim.Microsecond // 10 GbE, at the model's 1 us/KB floor
	p.Net.RingUSPerKB = 1 * sim.Microsecond
	p.Net.MinLatency = 20 * sim.Microsecond // kernel TCP end-to-end
	p.Net.CtlMsg = 50 * sim.Microsecond
	p.Net.Window = 64
	p.Net.BatchPackets = 16
	p.Net.FlushAfter = 200 * sim.Microsecond
	return p
}

// rdma models an RDMA-class deployment: a 5000 MIPS effective core, NVMe
// flash, and a kernel-bypass fabric with single-digit-microsecond latency.
// Protocol processing collapses (InstrPerPacket) and the exchange batches
// deeply; storage and wire approach the model's resolution floor, leaving
// per-tuple CPU work and the scheduler's serialized control path as the
// remaining bottlenecks.
func rdma() Params {
	p := gbe2015()
	p.CPU.MIPS = 5000
	p.Disk.SeqPos = 2 * sim.Microsecond
	p.Disk.RandPos = 10 * sim.Microsecond
	p.Disk.USPerKB = 1 * sim.Microsecond // ~1 GB/s NVMe (model floor)
	p.Net.MinLatency = 2 * sim.Microsecond
	p.Net.CtlMsg = 5 * sim.Microsecond
	p.Net.Window = 256
	p.Net.InstrPerPacket = 600 // zero-copy, no kernel crossing
	p.Net.InstrPerLocalMsg = 100
	p.Net.BatchPackets = 64
	p.Net.FlushAfter = 50 * sim.Microsecond
	return p
}
