package disk

import (
	"testing"

	"gamma/internal/config"
	"gamma/internal/sim"
)

func testCfg() config.Disk {
	return config.Disk{
		SeqPos:     10 * sim.Millisecond,
		RandPos:    20 * sim.Millisecond,
		USPerKB:    500 * sim.Microsecond,
		TrackBytes: 40 * 1024,
	}
}

func TestSequentialVsRandomCost(t *testing.T) {
	s := sim.New()
	d := New(s, "disk", testCfg())
	var t1, t2, t3 sim.Time
	s.Spawn("reader", func(p *sim.Proc) {
		d.Read(p, 1, 0, 4096) // first access: random
		t1 = p.Now()
		d.Read(p, 1, 1, 4096) // next page: sequential
		t2 = p.Now()
		d.Read(p, 1, 5, 4096) // skip: random
		t3 = p.Now()
	})
	s.Run()
	transfer := sim.Dur(2 * sim.Millisecond) // 4 KB at 500 us/KB
	if want := 20*sim.Millisecond + transfer; t1 != want {
		t.Errorf("first read finished at %v, want %v", t1, want)
	}
	if want := t1 + 10*sim.Millisecond + transfer; t2 != want {
		t.Errorf("sequential read finished at %v, want %v", t2, want)
	}
	if want := t2 + 20*sim.Millisecond + transfer; t3 != want {
		t.Errorf("skip read finished at %v, want %v", t3, want)
	}
	st := d.Stats()
	if st.SeqReads != 1 || st.RandReads != 2 {
		t.Errorf("stats = %+v, want 1 seq / 2 rand reads", st)
	}
}

func TestInterleavedFilesAreRandom(t *testing.T) {
	s := sim.New()
	d := New(s, "disk", testCfg())
	s.Spawn("mix", func(p *sim.Proc) {
		d.Read(p, 1, 0, 4096)
		d.Write(p, 2, 0, 4096) // different file: random
		d.Read(p, 1, 1, 4096)  // would be sequential, but file 2 moved the arm
	})
	s.Run()
	st := d.Stats()
	if st.SeqReads != 0 || st.RandReads != 2 || st.RandWrites != 1 {
		t.Errorf("stats = %+v, want all random", st)
	}
}

func TestPureSequentialScanStaysSequential(t *testing.T) {
	s := sim.New()
	d := New(s, "disk", testCfg())
	s.Spawn("scan", func(p *sim.Proc) {
		for pg := 0; pg < 100; pg++ {
			d.Read(p, 7, pg, 4096)
		}
	})
	s.Run()
	st := d.Stats()
	if st.SeqReads != 99 || st.RandReads != 1 {
		t.Errorf("stats = %+v, want 99 seq / 1 rand", st)
	}
	if st.BytesRead != 100*4096 {
		t.Errorf("bytes read = %d", st.BytesRead)
	}
}

func TestWriteAsyncDoesNotBlock(t *testing.T) {
	s := sim.New()
	d := New(s, "disk", testCfg())
	var after sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		d.WriteAsync(3, 0, 4096)
		after = p.Now()
	})
	end := s.Run()
	if after != 0 {
		t.Errorf("caller advanced to %v", after)
	}
	if end != 22*sim.Millisecond {
		t.Errorf("drive finished at %v, want 22ms", end)
	}
}

func TestLargerPagesCostMoreTransfer(t *testing.T) {
	cfg := testCfg()
	s := sim.New()
	d := New(s, "disk", cfg)
	var small, large sim.Dur
	s.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		d.Read(p, 1, 0, 2048)
		small = p.Now() - start
		start = p.Now()
		d.Read(p, 2, 0, 32768)
		large = p.Now() - start
	})
	s.Run()
	if large-small != cfg.TransferTime(32768)-cfg.TransferTime(2048) {
		t.Errorf("transfer-time difference wrong: small=%v large=%v", small, large)
	}
}
