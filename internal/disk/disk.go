// Package disk models a disk drive as a FIFO resource with a positional cost
// model: every page request pays a positioning cost — sequential (same file,
// next page) or random — plus a size-proportional transfer cost.
//
// The model deliberately has no device-level read-ahead: WiSS issues one
// page request at a time, so even a "sequential" request misses most of a
// revolution (config.Disk.SeqPos). Interleaving accesses to different files
// on one drive (e.g. a selection scan and a store operator sharing a drive)
// degrades both to random positioning, which is the disk-interference effect
// behind the 1% vs 10% selection gap in Table 1.
package disk

import (
	"gamma/internal/config"
	"gamma/internal/sim"
	"gamma/internal/trace"
)

// Stats counts drive activity.
type Stats struct {
	SeqReads     int64
	RandReads    int64
	SeqWrites    int64
	RandWrites   int64
	BytesRead    int64
	BytesWritten int64
}

// Reads returns total page reads.
func (s Stats) Reads() int64 { return s.SeqReads + s.RandReads }

// Writes returns total page writes.
func (s Stats) Writes() int64 { return s.SeqWrites + s.RandWrites }

// Drive is one simulated disk drive.
type Drive struct {
	sim   *sim.Sim
	shard *sim.Shard
	name  string
	res   *sim.Resource
	cfg   config.Disk

	haveLast bool
	lastFile int
	lastPage int
	failed   bool

	stats Stats
}

// New creates a drive on s with the given cost model, homed on the default
// shard.
func New(s *sim.Sim, name string, cfg config.Disk) *Drive {
	return NewOn(s.DefaultShard(), name, cfg)
}

// NewOn creates a drive whose FIFO resource is homed on shard sh — the
// shard of the simulated node the drive is attached to, on a partitioned
// simulation.
func NewOn(sh *sim.Shard, name string, cfg config.Disk) *Drive {
	return &Drive{sim: sh.Sim(), shard: sh, name: name, res: sh.NewResource(name), cfg: cfg}
}

// FailedError is the panic value raised by any access to a failed drive.
// Operator processes recover it and report the loss to their scheduler,
// which fails the request over to a backup fragment.
type FailedError struct{ Drive string }

func (e FailedError) Error() string { return "disk: drive " + e.Drive + " has failed" }

// Fail marks the drive broken: every subsequent access panics with a
// FailedError. In-flight (already queued) requests complete.
func (d *Drive) Fail() { d.failed = true }

// Failed reports whether the drive has failed.
func (d *Drive) Failed() bool { return d.failed }

// Repair returns a failed drive to service (a node rejoining after a
// transient outage): subsequent accesses succeed again. The positional state
// is cleared — the arm position after a power cycle is unknown, so the first
// access pays a random positioning cost.
func (d *Drive) Repair() {
	d.failed = false
	d.haveLast = false
}

// Stats returns a copy of the drive's counters.
func (d *Drive) Stats() Stats { return d.stats }

// Resource exposes the underlying FIFO resource (for utilization reports).
func (d *Drive) Resource() *sim.Resource { return d.res }

// serviceTime computes the cost of accessing (file, page) and updates the
// positional state and counters.
func (d *Drive) serviceTime(file, page, bytes int, write bool) sim.Dur {
	if d.failed {
		panic(FailedError{Drive: d.name})
	}
	sequential := d.haveLast && file == d.lastFile && page == d.lastPage+1
	d.haveLast, d.lastFile, d.lastPage = true, file, page

	pos := d.cfg.RandPos
	if sequential {
		pos = d.cfg.SeqPos
	}
	if write {
		if sequential {
			d.stats.SeqWrites++
		} else {
			d.stats.RandWrites++
		}
		d.stats.BytesWritten += int64(bytes)
	} else {
		if sequential {
			d.stats.SeqReads++
		} else {
			d.stats.RandReads++
		}
		d.stats.BytesRead += int64(bytes)
	}
	if d.sim.Tracing() {
		class := "rand-"
		if sequential {
			class = "seq-"
		}
		if write {
			class += "write"
		} else {
			class += "read"
		}
		d.shard.Emit(trace.Event{
			At: int64(d.shard.Now()), Kind: trace.KindDiskOp, Res: d.name,
			Class: class, Bytes: bytes, File: file, Page: page,
		})
	}
	return pos + d.cfg.TransferTime(bytes)
}

// Read blocks p for one page read of the given size.
func (d *Drive) Read(p *sim.Proc, file, page, bytes int) {
	d.res.Use(p, d.serviceTime(file, page, bytes, false))
}

// ReadAsync queues a page read without blocking the caller and returns its
// completion time (used for scan read-ahead).
func (d *Drive) ReadAsync(file, page, bytes int) sim.Time {
	return d.res.UseAsync(d.serviceTime(file, page, bytes, false))
}

// Write blocks p for one page write of the given size.
func (d *Drive) Write(p *sim.Proc, file, page, bytes int) {
	d.res.Use(p, d.serviceTime(file, page, bytes, true))
}

// WriteAsync queues a page write without blocking the caller (write-behind)
// and returns its completion time.
func (d *Drive) WriteAsync(file, page, bytes int) sim.Time {
	return d.res.UseAsync(d.serviceTime(file, page, bytes, true))
}

// BusyUntil returns when all queued requests will have completed.
func (d *Drive) BusyUntil() sim.Time { return d.res.BusyUntil() }
